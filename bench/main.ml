(* Benchmark harness reproducing the evaluation of "Pragmatic Type
   Interoperability" (ICDCS 2003).

   E1 (§7.1) direct vs dynamic-proxy invocation
   E2 (§7.2) type-description creation / serialization / deserialization
   E3 (§7.3) object serialization / deserialization (SOAP and binary)
   E4 (§7.4) implicit structural conformance checking
   E5 (§1/§3) optimistic protocol vs eager baseline (bytes and time)
   E6 (§4.2)  rule-weakening ablation: safety vs recall
   E9 (§6)    cluster fan-out: gossip dissemination and mirror failover
   E10        fault intensity: delivery and bytes under injected faults
   E11        wire efficiency: type handles, batching, binary tdescs
   E12        systematic exploration: DPOR + state-hash pruning power
   E13        transport backends: sim vs unix-domain vs TCP sockets
   E14        population scale: the million-session flyweight simulator
   E16        hub fan-out: the sharded flyweight block across domains

   E1-E4 are Bechamel micro-benchmarks; E5/E6 are deterministic simulated
   experiments printed as tables. Absolute numbers differ from the paper's
   2002 CLR testbed; EXPERIMENTS.md records the shape comparison. *)

open Bechamel
open Pti_cts
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Config = Pti_conformance.Config
module Proxy = Pti_proxy.Dynamic_proxy
module Bin = Pti_serial.Bin_ser
module Soap = Pti_serial.Soap_ser
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Stats = Pti_net.Stats
module Demo = Pti_demo.Demo_types
module Workload = Pti_demo.Workload
module Cluster = Pti_cluster.Cluster
module Node = Pti_cluster.Node
module Metrics = Pti_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Bechamel runner                                                      *)
(* ------------------------------------------------------------------ *)

let quick = Array.exists (String.equal "--quick") Sys.argv

(* --json FILE: machine-readable run summary, one object per group mapping
   row names to the measured value (OLS ns/op for Bechamel groups, bytes
   or rates for the protocol tables). The "E14" group carries the
   population-scale rows, one "<N> <field>" entry per swept session
   count, mirroring the [scale.*] metric namespace `pti stats --scale`
   exposes: deliv/s (scale.deliveries_per_sec), p50/p99 ms
   (scale.latency_ms quantiles), tdesc hit (scale.cache.tdesc_hit_rate),
   flash tdesc (scale.flash.tdesc_fetches) and wall ms. *)
let json_file =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if String.equal Sys.argv.(i) "--json" then Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let json_acc : (string * (string * float) list) list ref = ref []

let record_group title rows =
  if json_file <> None then json_acc := (title, rows) :: !json_acc

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_number v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let write_json () =
  match json_file with
  | None -> ()
  | Some path ->
      let b = Buffer.create 4096 in
      Buffer.add_string b "{";
      List.iteri
        (fun i (group, rows) ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b (Printf.sprintf "\n  \"%s\": {" (json_escape group));
          List.iteri
            (fun j (name, v) ->
              if j > 0 then Buffer.add_string b ",";
              Buffer.add_string b
                (Printf.sprintf "\n    \"%s\": %s" (json_escape name)
                   (json_number v)))
            rows;
          Buffer.add_string b "\n  }")
        (List.rev !json_acc);
      Buffer.add_string b "\n}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents b);
      close_out oc;
      Printf.printf "wrote %s\n" path

let cfg =
  Benchmark.cfg ~limit:2000
    ~quota:(Time.second (if quick then 0.1 else 0.5))
    ~kde:None ()

let instance = Toolkit.Instance.monotonic_clock

let ols =
  Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]

(* Nanoseconds per run, estimated by ordinary least squares. *)
let measure elt =
  let result = Benchmark.run cfg [ instance ] elt in
  match Analyze.OLS.estimates (Analyze.one ols instance result) with
  | Some [ ns ] -> ns
  | Some _ | None -> nan

let hr () = print_endline (String.make 78 '-')

let bench_group title rows =
  hr ();
  Printf.printf "%s\n" title;
  hr ();
  Printf.printf "  %-44s %14s %14s\n" "benchmark" "ns/op" "ops/s";
  let results =
    List.map
      (fun (name, fn) ->
        let ns = measure (Test.Elt.unsafe_make ~name (Staged.stage fn)) in
        Printf.printf "  %-44s %14.1f %14.0f\n" name ns (1e9 /. ns);
        (name, ns))
      rows
  in
  print_newline ();
  record_group title results;
  results

let ratio results a b =
  match List.assoc_opt a results, List.assoc_opt b results with
  | Some x, Some y when y > 0. -> x /. y
  | _ -> nan

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                      *)
(* ------------------------------------------------------------------ *)

let registry =
  Demo.fresh_registry
    [ Demo.news_assembly (); Demo.social_assembly (); Demo.trap_assembly () ]

let resolver = Td.registry_resolver registry
let checker = Checker.create ~resolver ()
let cx = Proxy.create_context registry checker
let news_person_cd = Registry.find_exn registry Demo.news_person
let news_desc = Td.of_class news_person_cd
let social_desc = Td.of_class (Registry.find_exn registry Demo.social_person)
let direct_person = Demo.make_news_person registry ~name:"Bench" ~age:33

let identity_proxy =
  Proxy.wrap cx ~interest:Demo.news_person
    ~mapping:
      (Pti_conformance.Mapping.identity_mapping ~interest:Demo.news_person
         ~actual:Demo.news_person)
    direct_person

let translating_proxy =
  let target = Demo.make_social_person registry ~name:"Bench" ~age:33 in
  match Checker.check checker ~actual:social_desc ~interest:news_desc with
  | Checker.Conformant m ->
      Proxy.wrap cx ~interest:Demo.news_person ~mapping:m target
  | Checker.Not_conformant _ -> failwith "fixture: social !<= news"

let sample_person () =
  let p = Demo.make_news_person registry ~name:"Ser" ~age:7 in
  let home =
    Eval.construct registry Demo.news_address
      [ Value.Vstring "1 Main St"; Value.Vstring "Springfield" ]
  in
  ignore (Eval.call registry p "setHome" [ home ]);
  p

(* ------------------------------------------------------------------ *)
(* E1: invocation time (§7.1)                                           *)
(* ------------------------------------------------------------------ *)

let e1 () =
  let results =
    bench_group "E1 (§7.1) invocation time: getName() on a Person"
      [
        ( "direct invocation",
          fun () -> ignore (Eval.call registry direct_person "getName" []) );
        ( "proxy invocation (identity mapping)",
          fun () -> ignore (Eval.call registry identity_proxy "getName" []) );
        ( "proxy invocation (renaming + coercion)",
          fun () -> ignore (Eval.call registry translating_proxy "getName" []) );
      ]
  in
  Printf.printf
    "  proxy/direct ratio: %.1fx (translating), %.1fx (identity)\n"
    (ratio results "proxy invocation (renaming + coercion)"
       "direct invocation")
    (ratio results "proxy invocation (identity mapping)" "direct invocation");
  Printf.printf
    "  paper: direct 0.000142 ms, proxy 0.03 ms  =>  ~211x slower via proxy\n\n";
  results

(* ------------------------------------------------------------------ *)
(* E2: type descriptions (§7.2)                                         *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let xml = Td.to_xml_string news_desc in
  let results =
    bench_group
      "E2 (§7.2) type description of Person: create / serialize / deserialize"
      [
        ("create (introspection)", fun () -> ignore (Td.of_class news_person_cd));
        ( "create + serialize to XML",
          fun () -> ignore (Td.to_xml_string (Td.of_class news_person_cd)) );
        ("deserialize from XML", fun () -> ignore (Td.of_xml_string xml));
      ]
  in
  Printf.printf "  description size on the wire: %d bytes\n"
    (Td.size_bytes news_desc);
  Printf.printf
    "  serialize/deserialize ratio: %.2fx   (paper: 6.14 ms / 2.34 ms = \
     2.6x)\n\n"
    (ratio results "create + serialize to XML" "deserialize from XML");
  results

(* ------------------------------------------------------------------ *)
(* E3: object serialization (§7.3)                                      *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let p = sample_person () in
  let soap_wire = Soap.encode p in
  let bin_wire = Bin.encode p in
  let results =
    bench_group
      "E3 (§7.3) object (de)serialization of a Person (with nested Address)"
      [
        ("SOAP serialize", fun () -> ignore (Soap.encode p));
        ("SOAP deserialize", fun () -> ignore (Soap.decode registry soap_wire));
        ("binary serialize", fun () -> ignore (Bin.encode p));
        ("binary deserialize", fun () -> ignore (Bin.decode registry bin_wire));
      ]
  in
  Printf.printf "  payload sizes: SOAP %d bytes, binary %d bytes\n"
    (String.length soap_wire) (String.length bin_wire);
  Printf.printf
    "  SOAP ser/deser ratio: %.2fx   (paper: 16.68 ms / 1.32 ms = 12.6x)\n\n"
    (ratio results "SOAP serialize" "SOAP deserialize");
  results

(* ------------------------------------------------------------------ *)
(* E4: conformance testing (§7.4)                                       *)
(* ------------------------------------------------------------------ *)

let e4 ~direct_invocation_ns () =
  let results =
    bench_group
      "E4 (§7.4) implicit structural conformance: social.person <= \
       news.Person"
      [
        ( "full check (cold, cache cleared)",
          fun () ->
            Checker.clear_cache checker;
            ignore
              (Checker.check checker ~actual:social_desc ~interest:news_desc) );
        ( "full check (cached verdict)",
          fun () ->
            ignore
              (Checker.check checker ~actual:social_desc ~interest:news_desc) );
        ( "equality shortcut (same GUID)",
          fun () ->
            ignore
              (Checker.check checker ~actual:news_desc ~interest:news_desc) );
      ]
  in
  (match List.assoc_opt "full check (cold, cache cleared)" results with
  | Some cold when direct_invocation_ns > 0. ->
      Printf.printf
        "  cold check costs %.0fx a direct invocation (paper: 12.66 ms vs \
         0.000142 ms => ~89000x)\n"
        (cold /. direct_invocation_ns)
  | _ -> ());
  print_newline ();
  results

(* ------------------------------------------------------------------ *)
(* E5: the optimistic protocol vs the eager baseline                    *)
(* ------------------------------------------------------------------ *)

type protocol_outcome = {
  o_obj : int;
  o_tdesc : int;
  o_asm : int;
  o_total : int;
  o_time : float;
  o_delivered : int;
  o_rejected : int;
  o_reuse : float;
      (* receiver verdict-cache reuse: top_hits / (top_hits + top_computes) *)
  o_tdesc_hit : float;  (* receiver tdesc-cache hit rate *)
  o_evictions : int;  (* receiver verdict-cache evictions *)
}

let receiver_cache_rates receiver =
  let st = Checker.stats (Peer.checker receiver) in
  let tops = st.Checker.top_hits + st.Checker.top_computes in
  let reuse =
    if tops = 0 then 0.
    else float_of_int st.Checker.top_hits /. float_of_int tops
  in
  let td = Peer.tdesc_cache_counters receiver in
  (reuse, Pti_obs.Lru.hit_rate td, st.Checker.cache_evictions)

(* [objects] values are sent from one peer to another; the value types
   rotate over [distinct] synthetic families, of which [nonconf] are
   structurally deficient (rejected by the rules). *)
let run_protocol ?codec ?drop_rate ?reliability ?checker_cache_capacity ~mode
    ~objects ~distinct ~nonconf () =
  let net = Net.create ?drop_rate ?reliability ~seed:17L () in
  let sender = Peer.create ?codec ~mode ~net "sender" in
  let receiver =
    Peer.create ?codec ~mode ~net ?checker_cache_capacity "receiver"
  in
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  let flavors =
    Array.init distinct (fun i ->
        if i < nonconf then Workload.Trap_missing else Workload.Conformant)
  in
  Array.iteri
    (fun i flavor ->
      Peer.publish_assembly sender (Workload.family ~index:i ~flavor))
    flavors;
  for n = 0 to objects - 1 do
    let index = n mod distinct in
    let v =
      Workload.make_person (Peer.registry sender) ~index
        ~flavor:flavors.(index)
        ~name:(Printf.sprintf "p%d" n)
        ~age:n
    in
    Peer.send_value sender ~dst:"receiver" v;
    Net.run net
  done;
  let s = Net.stats net in
  let delivered, rejected =
    List.fold_left
      (fun (d, r) ev ->
        match ev with
        | Peer.Delivered _ -> (d + 1, r)
        | Peer.Rejected _ -> (d, r + 1)
        | Peer.Decode_failed _ | Peer.Load_failed _
        | Peer.Corrupt_rejected _ -> (d, r))
      (0, 0) (Peer.events receiver)
  in
  let reuse, tdesc_hit, evictions = receiver_cache_rates receiver in
  {
    o_obj = Stats.bytes s Stats.Object_msg;
    o_tdesc =
      Stats.bytes s Stats.Tdesc_request + Stats.bytes s Stats.Tdesc_reply;
    o_asm = Stats.bytes s Stats.Asm_request + Stats.bytes s Stats.Asm_reply;
    o_total = Stats.total_bytes s;
    o_time = Net.now_ms net;
    o_delivered = delivered;
    o_rejected = rejected;
    o_reuse = reuse;
    o_tdesc_hit = tdesc_hit;
    o_evictions = evictions;
  }

let rec e5 () =
  hr ();
  print_endline "E5 optimistic transport protocol (Figure 1) vs eager baseline";
  hr ();
  let objects = if quick then 20 else 60 in
  Printf.printf
    "\n\
    \  E5a: %d objects, sweeping the number of distinct (conformant) types\n\n"
    objects;
  Printf.printf "  %8s %-11s %10s %10s %10s %12s %10s %7s %7s\n" "distinct"
    "mode" "obj B" "tdesc B" "asm B" "total B" "time ms" "reuse" "td hit";
  let e5a_rows = ref [] in
  List.iter
    (fun distinct ->
      List.iter
        (fun (mode, mode_name) ->
          let o = run_protocol ~mode ~objects ~distinct ~nonconf:0 () in
          Printf.printf
            "  %8d %-11s %10d %10d %10d %12d %10.1f %6.0f%% %6.0f%%\n" distinct
            mode_name o.o_obj o.o_tdesc o.o_asm o.o_total o.o_time
            (100. *. o.o_reuse)
            (100. *. o.o_tdesc_hit);
          let key fmt = Printf.sprintf "k=%d %s %s" distinct mode_name fmt in
          e5a_rows :=
            (key "reuse", o.o_reuse)
            :: (key "total B", float_of_int o.o_total)
            :: !e5a_rows)
        [ (Peer.Optimistic, "optimistic"); (Peer.Eager, "eager") ])
    (if quick then [ 1; 5; 20 ] else [ 1; 5; 10; 20; 60 ]);
  record_group "E5a" (List.rev !e5a_rows);
  Printf.printf
    "\n\
    \  E5b: %d objects over 10 types, sweeping the non-conformant share\n\
    \  (optimistic never downloads code for rejected types)\n\n"
    objects;
  Printf.printf "  %8s %-11s %10s %10s %12s %10s %10s\n" "nonconf" "mode"
    "tdesc B" "asm B" "total B" "deliv" "reject";
  List.iter
    (fun nonconf ->
      List.iter
        (fun (mode, mode_name) ->
          let o = run_protocol ~mode ~objects ~distinct:10 ~nonconf () in
          Printf.printf "  %7d0%% %-11s %10d %10d %12d %10d %10d\n" nonconf
            mode_name o.o_tdesc o.o_asm o.o_total o.o_delivered o.o_rejected)
        [ (Peer.Optimistic, "optimistic"); (Peer.Eager, "eager") ])
    [ 0; 2; 5; 8; 10 ];
  Printf.printf
    "\n  E5c: %d objects over 10 types, payload codec comparison (Figure 3's\n\
    \  two embeddings: readable SOAP vs compact binary)\n\n"
    objects;
  Printf.printf "  %-8s %10s %12s %10s\n" "codec" "obj B" "total B" "time ms";
  List.iter
    (fun (codec, cname) ->
      let o =
        run_protocol ~codec ~mode:Peer.Optimistic ~objects ~distinct:10
          ~nonconf:0 ()
      in
      Printf.printf "  %-8s %10d %12d %10.1f\n" cname o.o_obj o.o_total o.o_time)
    [
      (Pti_serial.Envelope.Binary, "binary");
      (Pti_serial.Envelope.Soap, "soap");
    ];
  Printf.printf
    "\n  E5d: %d objects over 10 types on a lossy link with the ARQ layer\n\
    \  (loss shows up as retransmission bytes and latency, never as missing\n\
    \  deliveries)\n\n"
    objects;
  Printf.printf "  %8s %10s %12s %10s %10s %10s %10s\n" "loss" "retrans"
    "total B" "sim ms*" "p95 obj ms" "deliv" "lost";
  List.iter
    (fun drop_rate ->
      let net_probe = ref (0, 0) in
      let o =
        let net = Net.create ~drop_rate ~reliability:Net.default_reliability
            ~seed:17L () in
        let sender = Peer.create ~net "sender" in
        let receiver = Peer.create ~net "receiver" in
        Peer.install_assembly receiver (Demo.news_assembly ());
        Peer.register_interest receiver ~interest:Demo.news_person
          (fun ~from:_ _ -> ());
        for i = 0 to 9 do
          Peer.publish_assembly sender
            (Workload.family ~index:i ~flavor:Workload.Conformant)
        done;
        for n = 0 to objects - 1 do
          let index = n mod 10 in
          let v =
            Workload.make_person (Peer.registry sender) ~index
              ~flavor:Workload.Conformant
              ~name:(Printf.sprintf "p%d" n) ~age:n
          in
          Peer.send_value sender ~dst:"receiver" v;
          Net.run net
        done;
        net_probe := (Net.retransmissions net, Net.lost_messages net);
        let delivered =
          List.length
            (List.filter
               (function Peer.Delivered _ -> true | _ -> false)
               (Peer.events receiver))
        in
        let p50 =
          Option.value ~default:0.
            (Stats.latency_percentile (Net.stats net) Stats.Object_msg 0.95)
        in
        (Stats.total_bytes (Net.stats net), Net.now_ms net, p50, delivered)
      in
      let total, time, p50, deliv = o in
      let retrans, lost = !net_probe in
      Printf.printf "  %7.0f%% %10d %12d %10.1f %10.1f %10d %10d\n"
        (100. *. drop_rate) retrans total time p50 deliv lost)
    [ 0.0; 0.05; 0.1; 0.25 ];
  print_endline
    "  (*) simulated time runs until the last ARQ timer expires, so it\n\
    \  overstates delivery latency by up to one retransmit interval per\n\
    \  message; compare rows, not against E5a.";
  print_newline ();
  e5e ()

(* E5e: verdict-cache pressure under type churn. The ramp workload makes
   every round introduce one new type family and then repeat one object of
   every earlier family: round i sends i+1 objects, K rounds send
   K(K+1)/2. With keyed invalidation a new type only evicts the verdicts
   that depended on it, so the repeats stay cached and the reuse rate
   approaches (K-1)/(K+1); the pre-refactor code cleared the whole verdict
   cache on every new description, which measures ~0 on exactly this
   interleaving. Shrinking the cache capacity below K re-introduces misses
   as capacity evictions. *)
and run_ramp ~rounds ~checker_cache_capacity () =
  let net = Net.create ~seed:23L () in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net ~checker_cache_capacity "receiver" in
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  let send index n =
    let v =
      Workload.make_person (Peer.registry sender) ~index
        ~flavor:Workload.Conformant
        ~name:(Printf.sprintf "p%d" n)
        ~age:n
    in
    Peer.send_value sender ~dst:"receiver" v;
    Net.run net
  in
  let n = ref 0 in
  for i = 0 to rounds - 1 do
    Peer.publish_assembly sender
      (Workload.family ~index:i ~flavor:Workload.Conformant);
    send i !n;
    incr n;
    for j = 0 to i - 1 do
      send j !n;
      incr n
    done
  done;
  let reuse, tdesc_hit, evictions = receiver_cache_rates receiver in
  (reuse, tdesc_hit, evictions, !n)

and e5e () =
  let rounds = if quick then 10 else 25 in
  Printf.printf
    "  E5e: verdict-cache pressure -- %d ramp rounds (each round brings one\n\
    \  new type, then repeats every earlier one), sweeping the cache\n\
    \  capacity. Keyed invalidation keeps repeats cached across new-type\n\
    \  arrivals; wholesale clearing (the pre-refactor behavior) would\n\
    \  measure ~0%% reuse here.\n\n"
    rounds;
  Printf.printf "  %10s %10s %8s %8s %10s\n" "capacity" "objects" "reuse"
    "td hit" "evictions";
  let rows = ref [] in
  List.iter
    (fun capacity ->
      let reuse, tdesc_hit, evictions, sent =
        run_ramp ~rounds ~checker_cache_capacity:capacity ()
      in
      Printf.printf "  %10d %10d %7.0f%% %7.0f%% %10d\n" capacity sent
        (100. *. reuse) (100. *. tdesc_hit) evictions;
      let key fmt = Printf.sprintf "cap=%d K=%d %s" capacity rounds fmt in
      rows :=
        (key "reuse", reuse)
        :: (key "evictions", float_of_int evictions)
        :: !rows)
    (List.sort_uniq compare [ 2; 8; rounds / 2; 2048 ]);
  record_group "E5e" (List.rev !rows);
  Printf.printf
    "\n\
    \  At full capacity the reuse rate is (K-1)/(K+1) = %.2f for K=%d --\n\
    \  the hit-rate the issue's acceptance gate requires (> 0.9 full run).\n\n"
    (float_of_int (rounds - 1) /. float_of_int (rounds + 1))
    rounds

(* ------------------------------------------------------------------ *)
(* E6: rule-weakening ablation (§4.2's safety warning)                  *)
(* ------------------------------------------------------------------ *)

let e6 () =
  hr ();
  print_endline
    "E6 conformance-rule ablation: acceptance, recall and runtime safety";
  hr ();
  let population =
    List.concat
      [
        List.init 10 (fun i -> (i, Workload.Conformant));
        List.init 5 (fun i -> (i, Workload.Trap_missing));
        List.init 5 (fun i -> (i, Workload.Trap_arity));
        List.init 5 (fun i -> (i, Workload.Trap_fieldtype));
        List.init 5 (fun i -> (i, Workload.Typo 1));
        List.init 5 (fun i -> (i, Workload.Typo 2));
      ]
  in
  let good (_, flavor) =
    match flavor with
    | Workload.Conformant | Workload.Typo _ -> true
    | Workload.Trap_missing | Workload.Trap_arity
    | Workload.Trap_fieldtype ->
        false
  in
  let reg = Registry.create () in
  Assembly.load reg (Demo.news_assembly ());
  List.iter
    (fun (index, flavor) -> Assembly.load reg (Workload.family ~index ~flavor))
    population;
  let res = Td.registry_resolver reg in
  let interest = Option.get (res Demo.news_person) in
  let configs =
    [
      ("name-only (weak rule)", Config.name_only);
      ("strict (the paper's rules)", Config.strict);
      ("relaxed, distance 1", Config.relaxed ~distance:1);
      ("relaxed, distance 2", Config.relaxed ~distance:2);
      ("without rule (iv) methods",
       { Config.strict with Config.check_methods = false });
      ("without rule (v) ctors",
       { Config.strict with Config.check_ctors = false });
      ("without rule (ii) fields",
       { Config.strict with Config.check_fields = false });
    ]
  in
  let usable = List.length (List.filter good population) in
  Printf.printf "\n  population: %d types (%d usable, %d traps)\n\n"
    (List.length population) usable
    (List.length population - usable);
  Printf.printf "  %-28s %9s %8s %8s %10s\n" "rule set" "accepted" "recall"
    "unsafe" "fail rate";
  List.iter
    (fun (cname, config) ->
      let ch = Checker.create ~config ~resolver:res () in
      let pcx = Proxy.create_context reg ch in
      let accepted = ref 0 and unsafe = ref 0 and good_accepted = ref 0 in
      List.iter
        (fun ((index, flavor) as member) ->
          let qname = Workload.person_name ~index ~flavor in
          let actual = Option.get (res qname) in
          match Checker.check ch ~actual ~interest with
          | Checker.Not_conformant _ -> ()
          | Checker.Conformant m ->
              incr accepted;
              if good member then incr good_accepted;
              let target =
                Workload.make_person reg ~index ~flavor ~name:"probe" ~age:40
              in
              let proxy =
                Proxy.wrap pcx ~interest:Demo.news_person ~mapping:m target
              in
              let failed =
                List.exists
                  (fun (meth, args) ->
                    match Eval.call reg proxy meth args with
                    | _ -> false
                    | exception Eval.Runtime_error _ -> true)
                  Workload.interest_methods
              in
              if failed then incr unsafe)
        population;
      Printf.printf "  %-28s %9d %7.0f%% %8d %9.0f%%\n" cname !accepted
        (100. *. float_of_int !good_accepted /. float_of_int usable)
        !unsafe
        (if !accepted = 0 then 0.
         else 100. *. float_of_int !unsafe /. float_of_int !accepted))
    configs;
  print_newline ();
  print_endline
    "  The weak name-only rule accepts every trap and pays for it at run\n\
    \  time; the structural aspects keep the failure rate at zero even\n\
    \  when the name rule is relaxed -- the paper's safety argument. The\n\
    \  per-aspect rows locate the safety: for this population it lives in\n\
    \  rule (iv), the method aspect. Note the field-type traps accepted by\n\
    \  name-only do not even raise -- they silently corrupt values, the\n\
    \  failure mode no runtime probe reliably sees and only the static\n\
    \  rules prevent.";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E7: the strong-conformance extension (structural + behavioral)       *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let social_cd = Registry.find_exn registry Demo.social_person in
  let mapping =
    match Checker.check checker ~actual:social_desc ~interest:news_desc with
    | Checker.Conformant m -> m
    | Checker.Not_conformant _ -> failwith "fixture"
  in
  let results =
    bench_group
      "E7 strong implicit conformance (§4.1): structural check + behavioral \
       probe"
      [
        ( "structural check (cold)",
          fun () ->
            Checker.clear_cache checker;
            ignore
              (Checker.check checker ~actual:social_desc ~interest:news_desc)
        );
        ( "behavioral probe (16 samples/method)",
          fun () ->
            ignore
              (Pti_conformance.Behavioral.probe registry ~actual:social_cd
                 ~interest:news_person_cd ~mapping ()) );
        ( "behavioral probe (4 samples/method)",
          fun () ->
            ignore
              (Pti_conformance.Behavioral.probe registry ~samples:4
                 ~actual:social_cd ~interest:news_person_cd ~mapping ()) );
      ]
  in
  Printf.printf
    "  behavioral/structural cost ratio: %.1fx -- affordable, but it needs\n\
    \  the implementation loaded, so it runs as an acceptance test after\n\
    \  the optimistic download, never as a pre-download filter\n\n"
    (ratio results "behavioral probe (16 samples/method)"
       "structural check (cold)");
  results

(* ------------------------------------------------------------------ *)
(* E8: recall against the related-work baselines (§2)                   *)
(* ------------------------------------------------------------------ *)

let e8 () =
  hr ();
  print_endline
    "E8 who can interoperate? nominal (CORBA/RMI) vs Laufer vs implicit \
     rules";
  hr ();
  let module B = Builder in
  let module E = Expr in
  (* The query: an *interface* named person (Laufer requires interfaces). *)
  let iface =
    B.interface_ ~ns:[ "query" ] ~assembly:"query-asm" "person"
    |> B.abstract_method "getName" [] Ty.String
    |> B.abstract_method "getAge" [] Ty.Int
    |> B.abstract_method "greet" [] Ty.String
    |> B.abstract_method "update" [ ("n", Ty.String); ("a", Ty.Int) ] Ty.Void
    |> B.build
  in
  let person_body b =
    b
    |> B.field "name" Ty.String
    |> B.field "age" Ty.Int
    |> B.method_ "getName" [] Ty.String ~body:(E.get "name")
    |> B.method_ "getAge" [] Ty.Int ~body:(E.get "age")
    |> B.method_ "greet" [] Ty.String
         ~body:(E.Binop (E.Concat, E.str "Hello, ", E.get "name"))
    |> B.method_ "update" [ ("n", Ty.String); ("a", Ty.Int) ] Ty.Void
         ~body:(E.Seq [ E.set "name" (E.Var "n"); E.set "age" (E.Var "a"); E.null ])
  in
  let renamed_body b =
    b
    |> B.field "name" Ty.String
    |> B.field "age" Ty.Int
    |> B.method_ "GETNAME" [] Ty.String ~body:(E.get "name")
    |> B.method_ "getage" [] Ty.Int ~body:(E.get "age")
    |> B.method_ "GREET" [] Ty.String
         ~body:(E.Binop (E.Concat, E.str "Hello, ", E.get "name"))
    |> B.method_ "update" [ ("a", Ty.Int); ("n", Ty.String) ] Ty.Void
         ~body:(E.Seq [ E.set "name" (E.Var "n"); E.set "age" (E.Var "a"); E.null ])
  in
  let deficient_body b =
    b
    |> B.field "name" Ty.String
    |> B.method_ "getName" [] Ty.String ~body:(E.get "name")
  in
  let per_kind = 5 in
  let mk kind i =
    match kind with
    | `Declared ->
        person_body
          (B.class_ ~ns:[ Printf.sprintf "decl%d" i ] ~assembly:"e8"
             ~interfaces:[ "query.person" ] "Person")
        |> B.build
    | `Tagged ->
        person_body
          (B.class_ ~ns:[ Printf.sprintf "tag%d" i ] ~assembly:"e8" "person")
        |> B.build
    | `Legacy ->
        person_body
          (B.class_ ~ns:[ Printf.sprintf "leg%d" i ] ~assembly:"e8" "Person")
        |> B.build
    | `Renamed ->
        renamed_body
          (B.class_ ~ns:[ Printf.sprintf "ren%d" i ] ~assembly:"e8" "Person")
        |> B.build
    | `Deficient ->
        deficient_body
          (B.class_ ~ns:[ Printf.sprintf "def%d" i ] ~assembly:"e8" "Person")
        |> B.build
  in
  let kinds =
    [
      (`Declared, "declares query.person (shared hierarchy)");
      (`Tagged, "independent, exact signatures, tagged");
      (`Legacy, "independent, exact signatures, legacy (untagged)");
      (`Renamed, "independent, renamed + permuted members");
      (`Deficient, "missing members (must be rejected)");
    ]
  in
  let reg = Registry.create () in
  Registry.register reg iface;
  List.iter
    (fun (kind, _) ->
      for i = 0 to per_kind - 1 do
        Registry.register reg (mk kind i)
      done)
    kinds;
  let res = Td.registry_resolver reg in
  let ch = Checker.create ~resolver:res () in
  let interest = Td.of_class iface in
  let tagged name =
    (* The opt-in marker of the Laufer proposal: only these namespaces
       chose to participate. *)
    let lname = String.lowercase_ascii name in
    String.length lname >= 3
    && (String.sub lname 0 3 = "tag" || String.sub lname 0 4 = "decl")
  in
  Printf.printf "\n  interest: interface query.person; %d candidates per row\n\n"
    per_kind;
  Printf.printf "  %-44s %8s %8s %9s\n" "candidate population" "nominal"
    "laufer" "implicit";
  List.iter
    (fun (kind, label) ->
      let nominal = ref 0 and laufer = ref 0 and implicit = ref 0 in
      for i = 0 to per_kind - 1 do
        let actual = Td.of_class (mk kind i) in
        if Pti_conformance.Baselines.nominal ch ~actual ~interest then
          incr nominal;
        if
          Pti_conformance.Baselines.laufer ~resolver:res ~tagged ~actual
            ~interest
        then incr laufer;
        if Checker.verdict_ok (Checker.check ch ~actual ~interest) then
          incr implicit
      done;
      Printf.printf "  %-44s %8d %8d %9d\n" label !nominal !laufer !implicit)
    kinds;
  print_newline ();
  print_endline
    "  The implicit structural rules accept every usable population and\n\
    \  nothing else; nominal interoperability needs a shared hierarchy and\n\
    \  Laufer-style conformance additionally needs opt-in tagging and exact\n\
    \  signatures -- the restrictions Sections 2.1-2.4 call out.";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E9: cluster fan-out -- gossip dissemination and mirror failover      *)
(* ------------------------------------------------------------------ *)

type cluster_outcome = {
  c_gossip : int;  (* digest bytes all nodes sent before the transfer *)
  c_tdesc : int;  (* transfer-phase bytes, by category *)
  c_asm : int;
  c_obj : int;
  c_delivered : int;
  c_load_failed : int;
  c_failovers : int;  (* receiver failovers during the transfer *)
  c_td_known : int;  (* descriptions the receiver knows pre-transfer *)
}

(* Shared scenario: an N-peer cluster; the first peer publishes [distinct]
   type families (factor-k replicated) and, after [rounds] anti-entropy
   rounds, [objects] are streamed to a receiver that holds no replica.
   With [via_relay] the stream comes from a relay primed with one object
   per family beforehand, so the publisher can be crashed after the gossip
   phase ([crash_origin]) while traffic keeps flowing; otherwise the
   publisher sends directly. Network stats are reset after the setup
   phase, so the per-row byte columns cover only the transfer hot path;
   gossip bytes are reported separately -- they are off the object
   path. *)
let run_cluster ~mode ~peers ~factor ~rounds ~objects ~distinct ~via_relay
    ~crash_origin () =
  let net = Net.create ~seed:17L () in
  let addrs = List.init peers (fun i -> Printf.sprintf "c%d" (i + 1)) in
  let c =
    Cluster.create ~mode ~factor ~request_timeout_ms:500.
      ~probe_timeout_ms:250. ~net addrs
  in
  let origin = List.hd addrs in
  let origin_node = Cluster.node c origin in
  let families =
    Array.init distinct (fun i ->
        Workload.family ~index:i ~flavor:Workload.Conformant)
  in
  let holders =
    Array.to_list families
    |> List.concat_map (fun asm ->
           Node.placement origin_node ~assembly:asm.Assembly.asm_name
             (factor - 1))
    |> List.sort_uniq compare
  in
  let spare =
    List.filter (fun a -> a <> origin && not (List.mem a holders)) addrs
  in
  let relay, receiver =
    match (spare, List.rev addrs) with
    | a :: b :: _, _ -> (a, b)
    | [ a ], last :: _ when last <> a -> (a, last)
    | _, last :: prev :: _ -> (prev, last)
    | _ -> assert false
  in
  Array.iter (fun asm -> Node.publish origin_node asm) families;
  let sender_peer =
    if not via_relay then Cluster.peer c origin
    else begin
      let relay_peer = Cluster.peer c relay in
      Peer.install_assembly relay_peer (Demo.news_assembly ());
      Peer.register_interest relay_peer ~interest:Demo.news_person
        (fun ~from:_ _ -> ());
      Array.iteri
        (fun i _ ->
          let v =
            Workload.make_person
              (Peer.registry (Cluster.peer c origin))
              ~index:i ~flavor:Workload.Conformant
              ~name:(Printf.sprintf "seed%d" i) ~age:i
          in
          Peer.send_value (Cluster.peer c origin) ~dst:relay v)
        families;
      relay_peer
    end
  in
  Cluster.run c;
  Cluster.run_rounds c rounds;
  if crash_origin then Cluster.crash c origin;
  let receiver_peer = Cluster.peer c receiver in
  Peer.install_assembly receiver_peer (Demo.news_assembly ());
  let delivered = ref 0 in
  Peer.register_interest receiver_peer ~interest:Demo.news_person
    (fun ~from:_ _ -> incr delivered);
  let gossip_bytes =
    List.fold_left (fun acc n -> acc + Node.digest_bytes n) 0 (Cluster.nodes c)
  in
  let td_known = List.length (Peer.known_descriptions receiver_peer) in
  Stats.reset (Net.stats net);
  for n = 0 to objects - 1 do
    let index = n mod distinct in
    let v =
      Workload.make_person (Peer.registry sender_peer) ~index
        ~flavor:Workload.Conformant
        ~name:(Printf.sprintf "p%d" n)
        ~age:n
    in
    Peer.send_value sender_peer ~dst:receiver v;
    Net.run net
  done;
  let s = Net.stats net in
  let load_failed =
    List.length
      (List.filter
         (function Peer.Load_failed _ -> true | _ -> false)
         (Peer.events receiver_peer))
  in
  {
    c_gossip = gossip_bytes;
    c_tdesc =
      Stats.bytes s Stats.Tdesc_request + Stats.bytes s Stats.Tdesc_reply;
    c_asm = Stats.bytes s Stats.Asm_request + Stats.bytes s Stats.Asm_reply;
    c_obj = Stats.bytes s Stats.Object_msg;
    c_delivered = !delivered;
    c_load_failed = load_failed;
    c_failovers = Peer.fetch_failovers receiver_peer;
    c_td_known = td_known;
  }

let e9 () =
  hr ();
  print_endline
    "E9 cluster fan-out: gossip-spread type descriptions and mirror failover";
  hr ();
  let peers = 5 in
  let distinct = if quick then 4 else 8 in
  let objects = if quick then 16 else 48 in
  Printf.printf
    "\n\
    \  E9a: %d peers, %d type families, %d objects; sweeping anti-entropy\n\
    \  rounds before the transfer. Gossip moves type descriptions off the\n\
    \  object hot path: tdesc fetches -- and bytes per delivery -- fall as\n\
    \  rounds increase. Gossip bytes are the off-path dissemination cost.\n\n"
    peers distinct objects;
  Printf.printf "  %8s %-11s %8s %10s %10s %10s %10s %9s\n" "rounds" "mode"
    "td known" "gossip B" "tdesc B" "asm B" "hot B" "B/deliv";
  let e9a_rows = ref [] in
  let row rounds mode mode_name =
    let o =
      run_cluster ~mode ~peers ~factor:1 ~rounds ~objects ~distinct
        ~via_relay:false ~crash_origin:false ()
    in
    let hot = o.c_obj + o.c_tdesc + o.c_asm in
    let per_deliv =
      if o.c_delivered = 0 then 0.
      else float_of_int hot /. float_of_int o.c_delivered
    in
    Printf.printf "  %8d %-11s %8d %10d %10d %10d %10d %9.0f\n" rounds
      mode_name o.c_td_known o.c_gossip o.c_tdesc o.c_asm hot per_deliv;
    let key fmt = Printf.sprintf "rounds=%d %s %s" rounds mode_name fmt in
    e9a_rows :=
      (key "B/deliv", per_deliv)
      :: (key "tdesc B", float_of_int o.c_tdesc)
      :: !e9a_rows
  in
  List.iter
    (fun rounds -> row rounds Peer.Optimistic "optimistic")
    (if quick then [ 0; 1; 3 ] else [ 0; 1; 2; 3; 5 ]);
  row 0 Peer.Eager "eager";
  record_group "E9a" (List.rev !e9a_rows);
  let objects_b = if quick then 10 else 30 in
  let distinct_b = if quick then 2 else 4 in
  Printf.printf
    "\n\
    \  E9b: %d peers, %d families, %d objects, 4 gossip rounds; sweeping\n\
    \  the replication factor with and without crashing the publisher\n\
    \  before the transfer. Unreplicated assemblies die with their\n\
    \  publisher; with k >= 2 the receiver fails over to a gossip-learned\n\
    \  mirror and delivery stays at 100%%.\n\n"
    peers distinct_b objects_b;
  Printf.printf "  %8s %-8s %10s %10s %10s %10s\n" "factor" "crash" "deliv"
    "load-fail" "failovers" "asm B";
  let e9b_rows = ref [] in
  List.iter
    (fun (factor, crash) ->
      let o =
        run_cluster ~mode:Peer.Optimistic ~peers ~factor ~rounds:4
          ~objects:objects_b ~distinct:distinct_b ~via_relay:true
          ~crash_origin:crash ()
      in
      Printf.printf "  %8d %-8s %10d %10d %10d %10d\n" factor
        (if crash then "origin" else "none")
        o.c_delivered o.c_load_failed o.c_failovers o.c_asm;
      let key fmt =
        Printf.sprintf "k=%d crash=%b %s" factor crash fmt
      in
      e9b_rows :=
        (key "delivered", float_of_int o.c_delivered)
        :: (key "failovers", float_of_int o.c_failovers)
        :: !e9b_rows)
    [ (1, false); (1, true); (2, false); (2, true); (3, true) ];
  record_group "E9b" (List.rev !e9b_rows);
  print_newline ();
  print_endline
    "  E9a's eager row is the replicate-everything-inline alternative: no\n\
    \  gossip, no fetches, but every object carries its code. E9b row\n\
    \  (k=1, crash) is the paper's availability argument for mirrors: the\n\
    \  optimistic download has a single point of failure unless the\n\
    \  repository is replicated.";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E10: delivery and traffic under injected faults                      *)
(* ------------------------------------------------------------------ *)

module Sim = Pti_net.Sim
module Splitmix = Pti_util.Splitmix
module Fault_plan = Pti_fault.Fault_plan
module Corruptor = Pti_fault.Corruptor

type e10_out = {
  f_delivered : int;
  f_bytes : int;  (** Total wire bytes, acks included. *)
  f_retx : int;
  f_corrupt_rejects : int;
  f_integrity_drops : int;
}

(* One seeded world under a whole-run fault window: a sender publishes
   three conformant families, a receiver declares the interest, objects
   go out 60 ms apart. Mirrors come from a 4-node factor-2 cluster. *)
let e10_run ~arq ~cluster ~loss_p ~corrupt_p ~objects ~seed =
  let root = Splitmix.create seed in
  let net_seed = Splitmix.next64 root in
  let hook_seed = Splitmix.next64 root in
  let cluster_seed = Splitmix.next64 root in
  let reliability =
    if arq then Some { Net.retransmit_ms = 40.; max_retries = 12; ack_bytes = 16 }
    else None
  in
  let net = Net.create ~jitter_ms:2.0 ?reliability ~seed:net_seed () in
  let sim = Net.sim net in
  let hosts = if cluster then [ "n0"; "n1"; "n2"; "n3" ] else [ "a"; "b" ] in
  let horizon = 10. +. (60. *. float_of_int objects) +. 100. in
  let cl, sender, receiver, peers =
    if cluster then begin
      let cl =
        Cluster.create ~factor:2 ~seed:cluster_seed ~request_timeout_ms:800.
          ~fetch_retries:3 ~fetch_backoff_ms:150. ~probe_timeout_ms:300. ~net
          hosts
      in
      (Some cl, Cluster.peer cl "n0", Cluster.peer cl "n3",
       List.map (Cluster.peer cl) hosts)
    end
    else begin
      let mk a =
        Peer.create ~request_timeout_ms:800. ~fetch_retries:3
          ~fetch_backoff_ms:150. ~net a
      in
      let s = mk "a" in
      let r = mk "b" in
      (None, s, r, [ s; r ])
    end
  in
  for index = 0 to 2 do
    let asm = Workload.family ~index ~flavor:Workload.Conformant in
    match cl with
    | Some cl -> Node.publish (Cluster.node cl "n0") asm
    | None -> Peer.publish_assembly sender asm
  done;
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  (match cl with
  | None -> ()
  | Some cl ->
      List.iteri
        (fun ni node ->
          for r = 0 to (int_of_float (horizon /. 100.)) + 2 do
            Sim.schedule_at sim
              ~at:(40. +. (100. *. float_of_int r) +. (7. *. float_of_int ni))
              (fun () -> Node.tick node)
          done)
        (Cluster.nodes cl));
  for i = 0 to objects - 1 do
    let v =
      Workload.make_person (Peer.registry sender) ~index:(i mod 3)
        ~flavor:Workload.Conformant
        ~name:(Printf.sprintf "p%d" i)
        ~age:(20 + i)
    in
    Sim.schedule_at sim
      ~at:(10. +. (60. *. float_of_int i))
      (fun () -> Peer.send_value sender ~dst:(Peer.address receiver) v)
  done;
  let windows =
    (if loss_p > 0. then
       [ { Fault_plan.w_start = 0.; w_stop = horizon +. 1000.;
           w_sel = Fault_plan.Any; w_act = Fault_plan.Loss loss_p } ]
     else [])
    @
    if corrupt_p > 0. then
      [ { Fault_plan.w_start = 0.; w_stop = horizon +. 1000.;
          w_sel = Fault_plan.Any; w_act = Fault_plan.Corrupt corrupt_p } ]
    else []
  in
  Net.set_fault_hooks net
    (Some
       (Fault_plan.hooks { Fault_plan.windows }
          ~rng:(Splitmix.create hook_seed)
          ~corrupt:Corruptor.corrupt_message));
  if corrupt_p > 0. && arq then
    Net.set_integrity net (Some Corruptor.frame_intact);
  Net.run net;
  let delivered =
    List.length
      (List.filter
         (function Peer.Delivered _ -> true | _ -> false)
         (Peer.events receiver))
  in
  {
    f_delivered = delivered;
    f_bytes = Stats.total_bytes (Net.stats net);
    f_retx = Net.retransmissions net;
    f_corrupt_rejects =
      List.fold_left (fun acc p -> acc + Peer.corrupt_rejects p) 0 peers;
    f_integrity_drops = Net.integrity_drops net;
  }

let e10 () =
  hr ();
  print_endline
    "E10 fault intensity: delivery rate and wire bytes under injected faults";
  hr ();
  let objects = if quick then 8 else 12 in
  let pct o =
    100. *. float_of_int o.f_delivered /. float_of_int objects
  in
  Printf.printf
    "\n\
    \  E10a: burst loss across the whole run, %d objects. Without ARQ,\n\
    \  delivery decays with loss (and stalled tdesc fetches turn into\n\
    \  rejections); with ARQ (40ms x 12) loss converts into retransmission\n\
    \  bytes instead; mirrors (4-node cluster, factor 2) add failover.\n\n"
    objects;
  Printf.printf "  %7s | %9s %9s | %9s %9s %6s | %9s %9s %6s\n" "loss p"
    "raw del%" "bytes" "arq del%" "bytes" "retx" "clus del%" "bytes" "retx";
  let e10_rows = ref [] in
  let loss_sweep = if quick then [ 0.; 0.4; 0.8 ] else [ 0.; 0.2; 0.4; 0.6; 0.8 ] in
  List.iter
    (fun p ->
      let raw = e10_run ~arq:false ~cluster:false ~loss_p:p ~corrupt_p:0. ~objects ~seed:9L in
      let arq = e10_run ~arq:true ~cluster:false ~loss_p:p ~corrupt_p:0. ~objects ~seed:9L in
      let clu = e10_run ~arq:true ~cluster:true ~loss_p:p ~corrupt_p:0. ~objects ~seed:9L in
      Printf.printf
        "  %7.2f | %8.1f%% %9d | %8.1f%% %9d %6d | %8.1f%% %9d %6d\n" p
        (pct raw) raw.f_bytes (pct arq) arq.f_bytes arq.f_retx (pct clu)
        clu.f_bytes clu.f_retx;
      let key fmt = Printf.sprintf "loss=%.2f %s" p fmt in
      e10_rows :=
        (key "clus del%", pct clu)
        :: (key "arq bytes", float_of_int arq.f_bytes)
        :: (key "arq del%", pct arq)
        :: (key "raw del%", pct raw)
        :: !e10_rows)
    loss_sweep;
  Printf.printf
    "\n\
    \  E10b: wire corruption across the whole run (ARQ + frame integrity\n\
    \  on). Corrupt object frames are dropped pre-ack and retransmitted;\n\
    \  corrupt tdesc/assembly replies are detected by their digests and\n\
    \  re-requested (or failed over to a mirror in the cluster).\n\n";
  Printf.printf "  %9s | %9s %7s %7s %6s | %9s %7s %7s %6s\n" "corrupt p"
    "arq del%" "creject" "idrops" "retx" "clus del%" "creject" "idrops" "retx";
  let corrupt_sweep = if quick then [ 0.2; 0.6 ] else [ 0.1; 0.3; 0.5; 0.7 ] in
  List.iter
    (fun p ->
      let arq = e10_run ~arq:true ~cluster:false ~loss_p:0. ~corrupt_p:p ~objects ~seed:11L in
      let clu = e10_run ~arq:true ~cluster:true ~loss_p:0. ~corrupt_p:p ~objects ~seed:11L in
      Printf.printf "  %9.2f | %8.1f%% %7d %7d %6d | %8.1f%% %7d %7d %6d\n" p
        (pct arq) arq.f_corrupt_rejects arq.f_integrity_drops arq.f_retx
        (pct clu) clu.f_corrupt_rejects clu.f_integrity_drops clu.f_retx;
      let key fmt = Printf.sprintf "corrupt=%.2f %s" p fmt in
      e10_rows :=
        (key "clus del%", pct clu)
        :: (key "arq creject", float_of_int arq.f_corrupt_rejects)
        :: (key "arq del%", pct arq)
        :: !e10_rows)
    corrupt_sweep;
  record_group "E10" (List.rev !e10_rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E11: wire efficiency -- type handles, batching, binary tdescs        *)
(* ------------------------------------------------------------------ *)

type e11_out = {
  w_delivered : int;
  w_obj_bytes : int;  (** Object envelopes (incl. batch frames). *)
  w_ctl_bytes : int;  (** Handle NAK / re-bind control traffic. *)
  w_tdesc_bytes : int;  (** Type-description reply bytes. *)
  w_total_bytes : int;  (** Everything on the wire, acks included. *)
  w_frames : int;  (** Batch frames actually sent. *)
}

(* One seeded world sending [k] same-type objects from "a" to "b",
   scheduled in same-instant groups of [group] (groups 60 ms apart) so
   that intra-tick sends can coalesce when batching is on. K is the
   type-repeat ratio of the workload: every envelope after the first
   carries a type entry the link has already seen. *)
let e11_run ?batch_bytes ~handles ~tdesc_binary ~group ~k ~seed () =
  let net = Net.create ~seed () in
  let sim = Net.sim net in
  let mk a = Peer.create ~handles ?batch_bytes ~tdesc_binary ~net a in
  let sender = mk "a" in
  let receiver = mk "b" in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  let delivered = ref 0 in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> incr delivered);
  for i = 0 to k - 1 do
    let at = 10. +. (60. *. float_of_int (i / group)) in
    Sim.schedule_at sim ~at (fun () ->
        let v =
          Demo.make_social_person (Peer.registry sender)
            ~name:(Printf.sprintf "p%d" i)
            ~age:(20 + i)
        in
        Peer.send_value sender ~dst:"b" v)
  done;
  Net.run net;
  let stats = Net.stats net in
  {
    w_delivered = !delivered;
    w_obj_bytes = Stats.bytes stats Stats.Object_msg;
    w_ctl_bytes = Stats.bytes stats Stats.Handle_ctl;
    w_tdesc_bytes = Stats.bytes stats Stats.Tdesc_reply;
    w_total_bytes = Stats.total_bytes stats;
    w_frames = Peer.batch_messages sender;
  }

let e11 () =
  hr ();
  print_endline
    "E11 wire efficiency: negotiated type handles, envelope batching, binary \
     tdescs";
  hr ();
  let obj_per o =
    if o.w_delivered = 0 then 0.
    else
      float_of_int (o.w_obj_bytes + o.w_ctl_bytes)
      /. float_of_int o.w_delivered
  in
  let total_per o =
    if o.w_delivered = 0 then 0.
    else float_of_int o.w_total_bytes /. float_of_int o.w_delivered
  in
  let e11_rows = ref [] in
  Printf.printf
    "\n\
    \  E11a: wire bytes per completion vs the type-repeat ratio K (K\n\
    \  same-type sends over one link). The first envelope binds the type\n\
    \  entry to a handle; the other K-1 ship only the handle; batching\n\
    \  (groups of 8 per tick) amortises per-message framing; binary\n\
    \  tdescs shrink the one-time conformance probe. [obj] columns count\n\
    \  object+handle-control traffic, [all] counts every wire byte.\n\n";
  Printf.printf "  %5s | %10s %10s | %10s %6s | %10s %10s | %9s\n" "K"
    "base obj" "base all" "h+b obj" "frames" "wire obj" "wire all" "reduction";
  let ks = if quick then [ 2; 10 ] else [ 1; 2; 5; 10; 20 ] in
  List.iter
    (fun k ->
      let base =
        e11_run ~handles:false ~tdesc_binary:false ~group:1 ~k ~seed:13L ()
      in
      let hb =
        e11_run ~batch_bytes:65536 ~handles:true ~tdesc_binary:false ~group:8
          ~k ~seed:13L ()
      in
      let wire =
        e11_run ~batch_bytes:65536 ~handles:true ~tdesc_binary:true ~group:8
          ~k ~seed:13L ()
      in
      assert (base.w_delivered = k && hb.w_delivered = k && wire.w_delivered = k);
      let reduction = 100. *. (1. -. (total_per wire /. total_per base)) in
      Printf.printf
        "  %5d | %10.0f %10.0f | %10.0f %6d | %10.0f %10.0f | %8.1f%%\n" k
        (obj_per base) (total_per base) (obj_per hb) hb.w_frames
        (obj_per wire) (total_per wire) reduction;
      let key fmt = Printf.sprintf "K=%d %s" k fmt in
      e11_rows :=
        (key "reduction%", reduction)
        :: (key "wire all B/obj", total_per wire)
        :: (key "h+b obj B/obj", obj_per hb)
        :: (key "base all B/obj", total_per base)
        :: (key "base obj B/obj", obj_per base)
        :: !e11_rows)
    ks;
  Printf.printf
    "\n\
    \  E11b: batch-size sweep at K=16 (handles on). Larger same-tick\n\
    \  groups mean fewer frames and less per-message framing overhead;\n\
    \  the byte budget caps frame size, so savings flatten once a group\n\
    \  spans several frames.\n\n";
  Printf.printf "  %7s | %6s | %11s\n" "group" "frames" "bytes/obj";
  let groups = if quick then [ 1; 8 ] else [ 1; 2; 4; 8; 16 ] in
  List.iter
    (fun group ->
      let o =
        e11_run ~batch_bytes:4096 ~handles:true ~tdesc_binary:false ~group
          ~k:16 ~seed:17L ()
      in
      Printf.printf "  %7d | %6d | %11.0f\n" group o.w_frames (obj_per o);
      e11_rows :=
        (Printf.sprintf "group=%d bytes/obj" group, obj_per o) :: !e11_rows)
    groups;
  let xml = e11_run ~handles:false ~tdesc_binary:false ~group:1 ~k:1 ~seed:19L () in
  let bin = e11_run ~handles:false ~tdesc_binary:true ~group:1 ~k:1 ~seed:19L () in
  Printf.printf
    "\n\
    \  E11c: type-description codec (one cold send, probe replies only).\n\
    \  XML tdesc replies: %d bytes; binary (negotiated via binary_ok):\n\
    \  %d bytes (%.1f%% smaller).\n" xml.w_tdesc_bytes bin.w_tdesc_bytes
    (100. *. (1. -. (float_of_int bin.w_tdesc_bytes /. float_of_int xml.w_tdesc_bytes)));
  e11_rows :=
    ("tdesc binary bytes", float_of_int bin.w_tdesc_bytes)
    :: ("tdesc xml bytes", float_of_int xml.w_tdesc_bytes)
    :: !e11_rows;
  record_group "E11" (List.rev !e11_rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E12: systematic exploration -- DPOR + state-hash pruning power       *)
(* ------------------------------------------------------------------ *)

module Scenario = Pti_mc.Scenario
module Explore = Pti_mc.Explore

(* One bounded exploration of the two-peer protocol scenario; the
   explorer itself is deterministic, so these are exact schedule counts,
   not measurements. Every configuration must exhaust the same space and
   agree that it is violation-free — a pruning that changed the verdict
   would be unsound. *)
let e12_run ~kind ~objects ~depth ~dpor ~state_hash =
  let spec = Scenario.spec ~objects kind in
  let config =
    { Explore.depth; budget = 500_000; dpor; state_hash; max_seconds = 120. }
  in
  let r = Explore.run ~config (fun () -> Scenario.make spec) in
  assert r.Explore.exhausted;
  assert (r.Explore.violation = None);
  r

let e12 () =
  hr ();
  print_endline
    "E12 systematic exploration: schedules to exhaust the two-peer \
     protocol space";
  hr ();
  Printf.printf
    "\n\
    \  All interleavings of deliveries/local actions up to the depth\n\
    \  bound, naive DFS vs sleep-set DPOR vs visited-state hashing.\n\
    \  Counts are terminal states evaluated; every configuration covers\n\
    \  the same space and agrees it is violation-free.\n\n";
  Printf.printf "  %-22s | %8s | %8s | %8s | %9s | %7s\n" "scenario"
    "naive" "dpor" "hash" "dpor+hash" "factor";
  let e12_rows = ref [] in
  let cases =
    if quick then [ (Scenario.Protocol, 2, 8) ]
    else
      [
        (Scenario.Protocol, 2, 8); (Scenario.Protocol, 3, 10);
        (Scenario.Wire, 2, 8);
      ]
  in
  List.iter
    (fun (kind, objects, depth) ->
      let go ~dpor ~state_hash =
        (e12_run ~kind ~objects ~depth ~dpor ~state_hash).Explore.schedules
      in
      let naive = go ~dpor:false ~state_hash:false in
      let dpor_only = go ~dpor:true ~state_hash:false in
      let hash_only = go ~dpor:false ~state_hash:true in
      let both = go ~dpor:true ~state_hash:true in
      let factor = float_of_int naive /. float_of_int (max 1 both) in
      let label =
        Printf.sprintf "%s n=%d d=%d" (Scenario.kind_name kind) objects depth
      in
      Printf.printf "  %-22s | %8d | %8d | %8d | %9d | %6.1fx\n" label naive
        dpor_only hash_only both factor;
      e12_rows :=
        (label ^ " factor", factor)
        :: (label ^ " dpor+hash", float_of_int both)
        :: (label ^ " naive", float_of_int naive)
        :: !e12_rows)
    cases;
  record_group "E12" (List.rev !e12_rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E13: transport backends -- sim vs unix sockets vs TCP                *)
(* ------------------------------------------------------------------ *)

module Transport = Pti_transport.Transport
module Message_wire = Pti_core.Message_wire

type e13_out = {
  t_delivered : int;
  t_bytes : int;  (** Every byte the fabric charged (framed on streams). *)
  t_wall_ms : float;  (** Wall clock; logical-instant on the sim. *)
}

(* One fabric, both peers in-process: the sender streams [k] same-type
   objects at the receiver and the run ends when the last conformance
   verdict lands. Streams go through real kernel sockets (loopback TCP /
   unix-domain), so wall time includes framing, syscalls and the poll
   loop; the sim charges declared sizes in zero wall time. *)
let e13_run kind ?batch_bytes ~handles ~tdesc_binary ~k ~seed () =
  let tr =
    match kind with
    | Transport.Sim -> Transport.of_net (Net.create ~seed ())
    | Transport.Unix_socket ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "pti-bench-%d" (Unix.getpid ()))
        in
        (try Unix.mkdir dir 0o700
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Transport.create_unix ~dir ~codec:Message_wire.codec ()
    | Transport.Tcp -> Transport.create_tcp ~codec:Message_wire.codec ()
  in
  let mk a = Peer.create ~handles ?batch_bytes ~tdesc_binary ~transport:tr a in
  let receiver = mk "b" in
  let sender = mk "a" in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  (match Transport.listen_spec tr "b" with
  | Some spec -> Transport.register_remote tr "b" spec
  | None -> () (* sim: addresses resolve in-memory *));
  let delivered = ref 0 in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> incr delivered);
  let started = Unix.gettimeofday () in
  for i = 0 to k - 1 do
    let v =
      Demo.make_social_person (Peer.registry sender)
        ~name:(Printf.sprintf "p%d" i)
        ~age:(20 + i)
    in
    Peer.send_value sender ~dst:"b" v;
    ignore (Transport.poll tr ~timeout_ms:0.)
  done;
  ignore
    (Transport.drive_until tr
       ~deadline_ms:(Transport.now_ms tr +. 30_000.)
       (fun () -> !delivered = k));
  let wall_ms = 1000. *. (Unix.gettimeofday () -. started) in
  let bytes =
    Stats.total_bytes (Transport.stats tr)
    + Transport.total_received_bytes tr
  in
  Transport.close tr;
  { t_delivered = !delivered; t_bytes = bytes; t_wall_ms = wall_ms }

let e13 () =
  hr ();
  print_endline
    "E13 transport backends: the protocol stack on sim, unix-domain and \
     TCP sockets";
  hr ();
  let k = if quick then 20 else 100 in
  Printf.printf
    "\n\
    \  %d same-type objects a->b on one fabric, classic wire (XML\n\
    \  envelopes, no handles) vs negotiated wire (handles + 4 KiB\n\
    \  batching + binary tdescs). Stream bytes are actual framed wire\n\
    \  bytes (tx+rx); sim bytes are declared sizes, both directions on\n\
    \  its shared ledger. Sim wall time is the driver loop only -- the\n\
    \  simulator runs in logical time.\n\n" k;
  Printf.printf "  %-6s | %9s %9s %9s | %9s %9s %9s | %9s\n" "" "classic"
    "wall ms" "kobj/s" "wire" "wall ms" "kobj/s" "reduction";
  let e13_rows = ref [] in
  let backends =
    [ ("sim", Transport.Sim); ("unix", Transport.Unix_socket);
      ("tcp", Transport.Tcp) ]
  in
  List.iter
    (fun (name, kind) ->
      let classic =
        e13_run kind ~handles:false ~tdesc_binary:false ~k ~seed:23L ()
      in
      let wire =
        e13_run kind ~batch_bytes:4096 ~handles:true ~tdesc_binary:true ~k
          ~seed:23L ()
      in
      assert (classic.t_delivered = k && wire.t_delivered = k);
      let per o = float_of_int o.t_bytes /. float_of_int k in
      let rate o =
        if o.t_wall_ms <= 0. then 0. else float_of_int k /. o.t_wall_ms
      in
      let reduction = 100. *. (1. -. (per wire /. per classic)) in
      Printf.printf
        "  %-6s | %8.0fB %9.1f %9.1f | %8.0fB %9.1f %9.1f | %8.1f%%\n" name
        (per classic) classic.t_wall_ms (rate classic) (per wire)
        wire.t_wall_ms (rate wire) reduction;
      e13_rows :=
        (name ^ " reduction%", reduction)
        :: (name ^ " wire wall ms", wire.t_wall_ms)
        :: (name ^ " wire B/obj", per wire)
        :: (name ^ " classic wall ms", classic.t_wall_ms)
        :: (name ^ " classic B/obj", per classic)
        :: !e13_rows)
    backends;
  record_group "E13" (List.rev !e13_rows);
  (* Headline transport field: which backends completed the run. *)
  record_group "transport"
    (List.map (fun (name, _) -> (name, 1.)) backends);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E14: population scale -- the million-session flyweight simulator     *)
(* ------------------------------------------------------------------ *)

module Scale = Pti_scale.Driver

let e14 () =
  hr ();
  print_endline
    "E14 population scale: flyweight sessions over the discrete-event \
     simulator";
  hr ();
  let sweep = if quick then [ 1_000; 5_000 ] else [ 1_000; 10_000; 100_000 ] in
  Printf.printf
    "\n\
    \  N zipf(1.1) sessions, churn 0.5, 2 sends each, flash crowd at\n\
    \  30 s: a brand-new hot type hits every live session at once and\n\
    \  the in-flight dedup must hold its fetches at O(shards). All\n\
    \  shards share one Peer flyweight block. Deliveries/sec is\n\
    \  sustained simulated throughput; wall ms is host time for the\n\
    \  whole run.\n\n";
  Printf.printf "  %9s | %9s %7s %7s | %9s %11s | %9s\n" "sessions" "deliv/s"
    "p50 ms" "p99 ms" "tdesc hit" "flash tdesc" "wall ms";
  let e14_rows = ref [] in
  List.iter
    (fun sessions ->
      let cfg =
        { Scale.default_config with Scale.sessions;
          flash_at_ms = Some 30_000. }
      in
      let started = Unix.gettimeofday () in
      let r = Scale.run cfg in
      let wall_ms = 1000. *. (Unix.gettimeofday () -. started) in
      assert (r.Scale.r_undelivered = 0);
      Printf.printf "  %9d | %9.0f %7.2f %7.2f | %9.4f %11d | %9.0f\n" sessions
        r.Scale.r_deliveries_per_sec r.Scale.r_p50_ms r.Scale.r_p99_ms
        r.Scale.r_tdesc_hit_rate r.Scale.r_flash_tdesc_fetches wall_ms;
      let tag fmt = Printf.sprintf ("%d " ^^ fmt) sessions in
      e14_rows :=
        (tag "wall ms", wall_ms)
        :: (tag "flash tdesc", float_of_int r.Scale.r_flash_tdesc_fetches)
        :: (tag "tdesc hit", r.Scale.r_tdesc_hit_rate)
        :: (tag "p99 ms", r.Scale.r_p99_ms)
        :: (tag "p50 ms", r.Scale.r_p50_ms)
        :: (tag "deliv/s", r.Scale.r_deliveries_per_sec)
        :: !e14_rows)
    sweep;
  record_group "E14" (List.rev !e14_rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E16: hub fan-out -- the sharded flyweight block across domains       *)
(* ------------------------------------------------------------------ *)

let e16_shards = 4

(* One logical hub = [e16_shards] endpoints sharing one sharded
   flyweight block, each endpoint on its own simulated network with its
   own slice of the spoke population. Setup (peer construction,
   publishing, send scheduling) happens untimed on the main domain; the
   timed phase runs each endpoint's network to quiescence with D
   domains splitting the endpoints. Per envelope that is the hub hot
   path end to end: envelope decode, GUID lookup, conformance check
   against the slot's verdict cache, payload decode, delivery — with
   writes confined to each domain's own slot, plus the shared
   domain-safe metrics registry. *)
let e16_build ~m ~spokes ~sends ~families =
  let sh = Peer.create_shared ~shards:e16_shards () in
  (* Code loading is single-domain; everything is preloaded here. *)
  let boot_net : Pti_core.Message.t Net.t = Net.create ~seed:1L () in
  let boot = Peer.create ~net:boot_net ~shared:sh "boot" in
  Peer.install_assembly boot (Workload.interest_assembly ());
  for f = 0 to families - 1 do
    Peer.install_assembly boot
      (Workload.family ~index:f ~flavor:Workload.Conformant)
  done;
  (* One hub address per shard slot, found by hashing candidates. *)
  let addrs = Array.make e16_shards "" in
  let picked = ref 0 and j = ref 0 in
  while !picked < e16_shards do
    let a = "hub" ^ string_of_int !j in
    let s = Peer.shard_index sh a in
    if String.equal addrs.(s) "" then begin
      addrs.(s) <- a;
      incr picked
    end;
    incr j
  done;
  let per_slot = spokes / e16_shards in
  let slots =
    Array.mapi
      (fun k addr ->
        let net : Pti_core.Message.t Net.t =
          Net.create ~seed:(Int64.of_int (100 + k)) ()
        in
        let hub = Peer.create ~net ~metrics:m ~shared:sh addr in
        let delivered = ref 0 in
        Peer.register_interest hub ~interest:Workload.interest_person
          (fun ~from:_ _ -> incr delivered);
        for s = 0 to per_slot - 1 do
          let f = s mod families in
          let p = Peer.create ~net (Printf.sprintf "%s.spoke%d" addr s) in
          Peer.publish_assembly p
            (Workload.family ~index:f ~flavor:Workload.Conformant);
          for i = 1 to sends do
            let v =
              Workload.make_person (Peer.registry p) ~index:f
                ~flavor:Workload.Conformant
                ~name:(Printf.sprintf "s%d.%d" s i)
                ~age:i
            in
            Peer.send_value p ~dst:addr v
          done
        done;
        (net, delivered))
      addrs
  in
  (sh, slots, per_slot * e16_shards * sends)

let e16_run_domains ~domains slots =
  let started = Unix.gettimeofday () in
  let doms =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let total = ref 0 in
            Array.iteri
              (fun k (net, delivered) ->
                if k mod domains = d then begin
                  Net.run net;
                  total := !total + !delivered
                end)
              slots;
            !total))
  in
  let delivered = List.fold_left (fun a d -> a + Domain.join d) 0 doms in
  let wall_ms = 1000. *. (Unix.gettimeofday () -. started) in
  (delivered, wall_ms)

let e16 () =
  hr ();
  print_endline
    "E16 hub fan-out: one sharded flyweight block, domains split the \
     shards";
  hr ();
  let spokes = if quick then 200 else 1_000 in
  let sends = if quick then 2 else 4 in
  let families = 8 in
  Printf.printf
    "\n\
    \  1 hub as %d shard endpoints over one flyweight block, %d spokes\n\
    \  sending %d envelopes each (%d type families). D domains each own\n\
    \  shards/D endpoints and run them to quiescence in parallel; the\n\
    \  hot path writes only its own slot's caches. Host has %d core(s)\n\
    \  -- wall-clock speedup is bounded by that; equal walls on one\n\
    \  core mean the block adds no cross-domain contention.\n\n"
    e16_shards spokes sends families (Domain.recommended_domain_count ());
  Printf.printf "  %7s | %9s %9s %9s | %9s %9s\n" "domains" "delivered"
    "wall ms" "kobj/s" "reuse" "speedup";
  let rows = ref [] in
  let base_wall = ref 0. in
  List.iter
    (fun domains ->
      let m = Metrics.create () in
      let sh, slots, expected = e16_build ~m ~spokes ~sends ~families in
      let delivered, wall_ms = e16_run_domains ~domains slots in
      assert (delivered = expected);
      let reuse = Peer.shared_reuse_rate sh in
      let rate = if wall_ms <= 0. then 0. else float_of_int delivered /. wall_ms in
      if domains = 1 then base_wall := wall_ms;
      let speedup = if wall_ms > 0. then !base_wall /. wall_ms else 0. in
      Printf.printf "  %7d | %9d %9.1f %9.1f | %9.4f %8.2fx\n" domains
        delivered wall_ms rate reuse speedup;
      let tag fmt = Printf.sprintf ("%d " ^^ fmt) domains in
      rows :=
        (tag "speedup", speedup)
        :: (tag "reuse", reuse)
        :: (tag "kobj/s", rate)
        :: (tag "wall ms", wall_ms)
        :: (tag "delivered", float_of_int delivered)
        :: !rows)
    [ 1; 2; 4 ];
  record_group "E16" (List.rev !rows);
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "Pragmatic Type Interoperability -- benchmark suite%s\n\n"
    (if quick then " (quick mode)" else "");
  let e1_results = e1 () in
  ignore (e2 ());
  ignore (e3 ());
  let direct =
    Option.value ~default:0. (List.assoc_opt "direct invocation" e1_results)
  in
  ignore (e4 ~direct_invocation_ns:direct ());
  e5 ();
  e6 ();
  ignore (e7 ());
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e16 ();
  hr ();
  write_json ();
  print_endline "Done. See EXPERIMENTS.md for paper-vs-measured discussion."
