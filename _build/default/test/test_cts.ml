(* Tests for the CTS runtime: metadata, registry, evaluation, builder,
   introspection, assemblies. *)

open Pti_cts
module Demo = Pti_demo.Demo_types
module B = Builder
module E = Expr

let reg () =
  Demo.fresh_registry [ Demo.news_assembly (); Demo.social_assembly () ]

let get_string = function
  | Value.Vstring s -> s
  | v -> Alcotest.failf "expected string, got %s" (Value.type_name v)

let get_int = function
  | Value.Vint i -> i
  | v -> Alcotest.failf "expected int, got %s" (Value.type_name v)

(* ------------------------------- ty -------------------------------- *)

let test_ty_strings () =
  List.iter
    (fun (ty, s) ->
      Alcotest.(check string) s s (Ty.to_string ty);
      match Ty.of_string s with
      | Some ty' -> Alcotest.(check bool) ("parse " ^ s) true (Ty.equal ty ty')
      | None -> Alcotest.failf "failed to parse %s" s)
    [
      (Ty.Int, "int"); (Ty.Bool, "bool"); (Ty.String, "string");
      (Ty.Float, "float"); (Ty.Void, "void"); (Ty.Char, "char");
      (Ty.Named "a.B", "a.B"); (Ty.Array Ty.Int, "int[]");
      (Ty.Array (Ty.Array (Ty.Named "x.Y")), "x.Y[][]");
    ]

let test_ty_case_insensitive_named () =
  Alcotest.(check bool) "named ci" true
    (Ty.equal (Ty.Named "a.Person") (Ty.Named "A.PERSON"));
  Alcotest.(check bool) "named differs" false
    (Ty.equal (Ty.Named "a.Person") (Ty.Named "a.Persons"))

let test_ty_of_string_empty () =
  Alcotest.(check bool) "empty rejected" true (Ty.of_string "" = None);
  Alcotest.(check bool) "dangling [] rejected" true (Ty.of_string "[]" = None)

(* ------------------------------- meta ------------------------------ *)

let test_validate_rejects () =
  let base = B.class_ ~ns:[ "t" ] ~assembly:"t" "X" |> B.build in
  let field name ty =
    { Meta.f_name = name; f_ty = ty; f_mods = Meta.public_mods; f_init = None }
  in
  let bad = { base with Meta.td_name = "9bad" } in
  (match Meta.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad class name accepted");
  let dup_fields =
    { base with Meta.td_fields = [ field "name" Ty.String; field "NAME" Ty.Int ] }
  in
  (match Meta.validate dup_fields with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "case-insensitive duplicate fields accepted");
  let iface_with_body =
    {
      base with
      Meta.td_kind = Meta.Interface;
      td_methods =
        [
          {
            Meta.m_name = "m";
            m_params = [];
            m_return = Ty.Int;
            m_mods = Meta.public_mods;
            m_body = Some (E.int 1);
          };
        ];
    }
  in
  (match Meta.validate iface_with_body with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "interface method body accepted");
  (* The builder enforces validation on build. *)
  match
    B.class_ ~ns:[ "t" ] ~assembly:"t" "Y"
    |> B.field "f" Ty.Int |> B.field "F" Ty.Int |> B.build
  with
  | _ -> Alcotest.fail "builder accepted duplicate fields"
  | exception Invalid_argument _ -> ()

let test_qualified_name () =
  let cd = B.class_ ~ns:[ "a"; "b" ] ~assembly:"t" "C" |> B.build in
  Alcotest.(check string) "qname" "a.b.C" (Meta.qualified_name cd);
  let cd2 = B.class_ ~assembly:"t" "Top" |> B.build in
  Alcotest.(check string) "no ns" "Top" (Meta.qualified_name cd2)

let test_strip_bodies () =
  let cd =
    B.class_ ~ns:[ "t" ] ~assembly:"t" "C"
    |> B.field ~init:(E.int 3) "x" Ty.Int
    |> B.method_ ~body:(E.int 1) "m" [] Ty.Int
    |> B.ctor ~body:(E.null) []
    |> B.build
  in
  let stripped = Meta.strip_bodies cd in
  Alcotest.(check bool) "field init gone" true
    (List.for_all (fun f -> f.Meta.f_init = None) stripped.Meta.td_fields);
  Alcotest.(check bool) "method body gone" true
    (List.for_all (fun m -> m.Meta.m_body = None) stripped.Meta.td_methods);
  Alcotest.(check bool) "ctor body gone" true
    (List.for_all (fun c -> c.Meta.c_body = None) stripped.Meta.td_ctors)

(* ------------------------------- registry -------------------------- *)

let test_registry_lookup () =
  let r = reg () in
  Alcotest.(check bool) "find ci" true (Registry.find r "NEWSW.PERSON" <> None);
  Alcotest.(check bool) "missing" true (Registry.find r "no.Such" = None);
  let cd = Registry.find_exn r Demo.news_person in
  Alcotest.(check bool) "guid lookup" true
    (Registry.find_by_guid r cd.Meta.td_guid <> None)

let test_registry_duplicate () =
  let r = Registry.create () in
  let cd = B.class_ ~ns:[ "d" ] ~assembly:"d" "C" |> B.property "x" Ty.Int |> B.build in
  Registry.register r cd;
  (* Identical re-registration is idempotent. *)
  Registry.register r cd;
  Alcotest.(check int) "one entry" 1 (Registry.cardinal r);
  (* A different class under the same name is a conflict. *)
  let cd2 =
    B.class_ ~ns:[ "d" ] ~assembly:"other" "C" |> B.property "y" Ty.Int |> B.build
  in
  match Registry.register r cd2 with
  | () -> Alcotest.fail "conflicting registration accepted"
  | exception Registry.Duplicate _ -> ()

let test_registry_hierarchy () =
  let r = Registry.create () in
  let base =
    B.class_ ~ns:[ "h" ] ~assembly:"h" "Base" |> B.field "id" Ty.Int |> B.build
  in
  let iface =
    B.interface_ ~ns:[ "h" ] ~assembly:"h" "IThing"
    |> B.abstract_method "go" [] Ty.Void
    |> B.build
  in
  let derived =
    B.class_ ~ns:[ "h" ] ~assembly:"h" "Derived" ~super:"h.Base"
      ~interfaces:[ "h.IThing" ]
    |> B.field "name" Ty.String
    |> B.method_ "go" [] Ty.Void ~body:E.null
    |> B.build
  in
  List.iter (Registry.register r) [ base; iface; derived ];
  Alcotest.(check int) "super chain" 1
    (List.length (Registry.super_chain r derived));
  Alcotest.(check int) "interfaces" 1
    (List.length (Registry.all_interfaces r derived));
  Alcotest.(check bool) "subtype" true
    (Registry.is_subtype r ~sub:"h.Derived" ~super:"h.Base");
  Alcotest.(check bool) "subtype iface" true
    (Registry.is_subtype r ~sub:"h.Derived" ~super:"h.IThing");
  Alcotest.(check bool) "not subtype" false
    (Registry.is_subtype r ~sub:"h.Base" ~super:"h.Derived");
  (* Inherited fields. *)
  let fields = Registry.all_fields r derived in
  Alcotest.(check int) "all fields" 2 (List.length fields);
  (* Inherited method resolution. *)
  Alcotest.(check bool) "find inherited" true
    (Registry.find_method r derived "go" 0 <> None)

let test_registry_copy_isolated () =
  let r = reg () in
  let snapshot = Registry.copy r in
  let extra =
    B.class_ ~ns:[ "cp" ] ~assembly:"cp" "Extra" |> B.property "x" Ty.Int
    |> B.build
  in
  Registry.register r extra;
  Alcotest.(check bool) "original grew" true (Registry.mem r "cp.Extra");
  Alcotest.(check bool) "snapshot did not" false
    (Registry.mem snapshot "cp.Extra")

let test_missing_dependencies () =
  let r = Registry.create () in
  let cd =
    B.class_ ~ns:[ "m" ] ~assembly:"m" "Holder"
    |> B.field "x" (Ty.Named "m.Missing")
    |> B.build
  in
  Registry.register r cd;
  Alcotest.(check (list string)) "missing" [ "m.Missing" ]
    (Registry.missing_dependencies r cd)

(* ------------------------------- eval ------------------------------ *)

let test_construct_and_accessors () =
  let r = reg () in
  let p = Demo.make_news_person r ~name:"Ada" ~age:36 in
  Alcotest.(check string) "getName" "Ada" (Eval.call r p "getName" [] |> get_string);
  Alcotest.(check int) "getAge" 36 (Eval.call r p "getAge" [] |> get_int);
  ignore (Eval.call r p "setAge" [ Value.Vint 37 ]);
  Alcotest.(check int) "setAge" 37 (Eval.call r p "getAge" [] |> get_int);
  Alcotest.(check string) "greet" "Hello, Ada"
    (Eval.call r p "greet" [] |> get_string);
  Alcotest.(check int) "older" 40
    (Eval.call r p "older" [ Value.Vint 3 ] |> get_int)

let test_field_defaults () =
  let r = reg () in
  let p = Demo.make_news_person r ~name:"N" ~age:1 in
  (* spouse/home initialized to null by default. *)
  Alcotest.(check bool) "spouse null" true
    (Eval.call r p "getSpouse" [] = Value.Vnull)

let test_runtime_errors () =
  let r = reg () in
  let p = Demo.make_news_person r ~name:"N" ~age:1 in
  let expect_error f =
    match f () with
    | _ -> Alcotest.fail "expected Runtime_error"
    | exception Eval.Runtime_error _ -> ()
  in
  expect_error (fun () -> Eval.call r p "noSuchMethod" []);
  expect_error (fun () -> Eval.call r p "getName" [ Value.Vint 1 ]);
  expect_error (fun () -> Eval.construct r "no.Such" []);
  expect_error (fun () -> Eval.construct r Demo.news_person [ Value.Vint 1 ]);
  expect_error (fun () ->
      Eval.eval r ~this:None ~locals:[]
        (E.Binop (E.Div, E.int 1, E.int 0)));
  expect_error (fun () -> Eval.eval r ~this:None ~locals:[] E.This);
  expect_error (fun () ->
      Eval.eval r ~this:None ~locals:[] (E.Field_get (E.null, "x")))

let test_control_flow () =
  let r = Registry.create () in
  (* while-loop sum through assignment. *)
  let body =
    E.Let
      ( "acc",
        E.int 0,
        E.Let
          ( "i",
            E.int 0,
            E.Seq
              [
                E.While
                  ( E.Binop (E.Lt, E.Var "i", E.Var "n"),
                    E.Seq
                      [
                        E.Assign ("acc", E.Binop (E.Add, E.Var "acc", E.Var "i"));
                        E.Assign ("i", E.Binop (E.Add, E.Var "i", E.int 1));
                      ] );
                E.Var "acc";
              ] ) )
  in
  let v = Eval.eval r ~this:None ~locals:[ ("n", Value.Vint 10) ] body in
  Alcotest.(check int) "sum 0..9" 45 (get_int v);
  (* if/else both branches. *)
  let branch b =
    Eval.eval r ~this:None ~locals:[]
      (E.If (E.bool b, E.str "yes", E.str "no"))
  in
  Alcotest.(check string) "then" "yes" (get_string (branch true));
  Alcotest.(check string) "else" "no" (get_string (branch false))

let test_arrays () =
  let r = Registry.create () in
  let v =
    Eval.eval r ~this:None ~locals:[]
      (E.Let
         ( "a",
           E.New_array (Ty.Int, [ E.int 1; E.int 2; E.int 3 ]),
           E.Seq
             [
               E.Index_set (E.Var "a", E.int 1, E.int 20);
               E.Binop
                 ( E.Add,
                   E.Index_get (E.Var "a", E.int 1),
                   E.Array_length (E.Var "a") );
             ] ))
  in
  Alcotest.(check int) "array ops" 23 (get_int v);
  match
    Eval.eval r ~this:None ~locals:[]
      (E.Index_get (E.New_array (Ty.Int, []), E.int 0))
  with
  | _ -> Alcotest.fail "out of bounds should raise"
  | exception Eval.Runtime_error _ -> ()

let test_static_methods () =
  let r = Registry.create () in
  let cd =
    B.class_ ~ns:[ "s" ] ~assembly:"s" "MathUtil"
    |> B.method_
         ~mods:{ Meta.public_mods with Meta.static = true }
         "double" [ ("x", Ty.Int) ] Ty.Int
         ~body:(E.Binop (E.Mul, E.Var "x", E.int 2))
    |> B.build
  in
  Registry.register r cd;
  Alcotest.(check int) "static call" 14
    (Eval.call_static r "s.MathUtil" "double" [ Value.Vint 7 ] |> get_int);
  (* There is no instance method of that name. *)
  match Eval.call_static r "s.MathUtil" "missing" [] with
  | _ -> Alcotest.fail "missing static should raise"
  | exception Eval.Runtime_error _ -> ()

let test_virtual_dispatch () =
  let r = Registry.create () in
  let base =
    B.class_ ~ns:[ "v" ] ~assembly:"v" "Animal"
    |> B.method_ "speak" [] Ty.String ~body:(E.str "...")
    |> B.method_ "describe" [] Ty.String
         ~body:(E.Binop (E.Concat, E.str "says ", E.Call (E.This, "speak", [])))
    |> B.build
  in
  let derived =
    B.class_ ~ns:[ "v" ] ~assembly:"v" "Dog" ~super:"v.Animal"
    |> B.method_ "speak" [] Ty.String ~body:(E.str "woof")
    |> B.build
  in
  Registry.register r base;
  Registry.register r derived;
  let dog = Eval.construct r "v.Dog" [] in
  (* describe is inherited; speak dispatches to the override. *)
  Alcotest.(check string) "virtual dispatch" "says woof"
    (Eval.call r dog "describe" [] |> get_string)

let test_exceptions () =
  let r = Registry.create () in
  (* throw / try-catch round trip inside the interpreter. *)
  let caught =
    Eval.eval r ~this:None ~locals:[]
      (E.Try
         ( E.Seq [ E.Throw (E.str "boom"); E.str "unreachable" ],
           "err",
           E.Binop (E.Concat, E.str "caught: ", E.Var "err") ))
  in
  Alcotest.(check string) "caught user throw" "caught: boom" (get_string caught);
  (* Runtime errors are catchable too, as their message string. *)
  let caught_rt =
    Eval.eval r ~this:None ~locals:[]
      (E.Try (E.Binop (E.Div, E.int 1, E.int 0), "err", E.Var "err"))
  in
  Alcotest.(check string) "caught runtime error" "division by zero"
    (get_string caught_rt);
  (* Uncaught throws surface as Runtime_error at the host boundary. *)
  (match Eval.eval r ~this:None ~locals:[] (E.Throw (E.int 7)) with
  | _ -> Alcotest.fail "uncaught throw should raise"
  | exception Eval.Runtime_error msg ->
      Alcotest.(check bool) "mentions the payload" true
        (Pti_util.Strutil.starts_with ~prefix:"unhandled exception" msg));
  (* Throws cross method boundaries and are caught by outer handlers. *)
  let thrower =
    B.class_ ~ns:[ "x" ] ~assembly:"x" "Thrower"
    |> B.method_ "boom" [] Ty.Void ~body:(E.Throw (E.str "deep"))
    |> B.method_ "safe" [] Ty.String
         ~body:
           (E.Try (E.Call (E.This, "boom", []), "e", E.Var "e"))
    |> B.build
  in
  Registry.register r thrower;
  let t = Eval.construct r "x.Thrower" [] in
  Alcotest.(check string) "cross-call catch" "deep"
    (Eval.call r t "safe" [] |> get_string)

let test_builtin_methods () =
  let r = Registry.create () in
  let call v m args = Eval.call r v m args in
  Alcotest.(check int) "string length" 3
    (call (Value.Vstring "abc") "length" [] |> get_int);
  Alcotest.(check string) "toUpper" "ABC"
    (call (Value.Vstring "abc") "toUpper" [] |> get_string);
  Alcotest.(check string) "int toString" "42"
    (call (Value.Vint 42) "toString" [] |> get_string);
  Alcotest.(check bool) "contains" true
    (call (Value.Vstring "hello world") "contains" [ Value.Vstring "o w" ]
     = Value.Vbool true)

(* ------------------------------- introspect ------------------------ *)

let test_introspection () =
  let r = reg () in
  let cd = Registry.find_exn r Demo.news_person in
  let p = Demo.make_news_person r ~name:"I" ~age:5 in
  (match Introspect.type_of_value r p with
  | Some found ->
      Alcotest.(check string) "type_of_value" Demo.news_person
        (Meta.qualified_name found)
  | None -> Alcotest.fail "type_of_value failed");
  Alcotest.(check bool) "methods nonempty" true (Introspect.methods cd <> []);
  let refs = Introspect.referenced_types cd in
  Alcotest.(check bool) "references address" true
    (List.exists (Pti_util.Strutil.equal_ci "newsw.Address") refs);
  Alcotest.(check bool) "references self (spouse)" true
    (List.exists (Pti_util.Strutil.equal_ci Demo.news_person) refs)

let test_implements () =
  let r = Registry.create () in
  let iface =
    B.interface_ ~ns:[ "i" ] ~assembly:"i" "INamed"
    |> B.abstract_method "getName" [] Ty.String
    |> B.build
  in
  let yes =
    B.class_ ~ns:[ "i" ] ~assembly:"i" "A" |> B.property "name" Ty.String
    |> B.build
  in
  let no = B.class_ ~ns:[ "i" ] ~assembly:"i" "B" |> B.build in
  List.iter (Registry.register r) [ iface; yes; no ];
  Alcotest.(check bool) "implements" true (Introspect.implements r yes iface);
  Alcotest.(check bool) "not implements" false (Introspect.implements r no iface)

(* ------------------------------- assembly -------------------------- *)

let test_assembly () =
  let asm = Demo.news_assembly () in
  Alcotest.(check int) "classes" 3 (List.length asm.Assembly.asm_classes);
  Alcotest.(check bool) "stamped" true
    (List.for_all
       (fun cd -> cd.Meta.td_assembly = "news-asm")
       asm.Assembly.asm_classes);
  Alcotest.(check bool) "find_class" true
    (Assembly.find_class asm Demo.news_person <> None);
  Alcotest.(check bool) "self-contained" true
    (Assembly.external_dependencies asm = []);
  Alcotest.(check bool) "size positive" true (Assembly.size_bytes asm > 0)

let test_assembly_size_dwarfs_tdesc () =
  (* The economics of the optimistic protocol: code on the wire is much
     heavier than a description on the wire. *)
  let asm = Demo.news_assembly () in
  let r = Demo.fresh_registry [ asm ] in
  let cd = Registry.find_exn r Demo.news_person in
  let d = Pti_typedesc.Type_description.of_class cd in
  let asm_wire = String.length (Pti_serial.Assembly_xml.to_string asm) in
  Alcotest.(check bool) "asm >> tdesc" true
    (asm_wire > 2 * Pti_typedesc.Type_description.size_bytes d)

let () =
  Alcotest.run "cts"
    [
      ( "ty",
        [
          Alcotest.test_case "to/of string" `Quick test_ty_strings;
          Alcotest.test_case "named ci equality" `Quick
            test_ty_case_insensitive_named;
          Alcotest.test_case "malformed" `Quick test_ty_of_string_empty;
        ] );
      ( "meta",
        [
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "qualified name" `Quick test_qualified_name;
          Alcotest.test_case "strip bodies" `Quick test_strip_bodies;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
          Alcotest.test_case "duplicates" `Quick test_registry_duplicate;
          Alcotest.test_case "hierarchy" `Quick test_registry_hierarchy;
          Alcotest.test_case "missing deps" `Quick test_missing_dependencies;
          Alcotest.test_case "copy isolation" `Quick
            test_registry_copy_isolated;
        ] );
      ( "eval",
        [
          Alcotest.test_case "construct+accessors" `Quick
            test_construct_and_accessors;
          Alcotest.test_case "field defaults" `Quick test_field_defaults;
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "static methods" `Quick test_static_methods;
          Alcotest.test_case "virtual dispatch" `Quick test_virtual_dispatch;
          Alcotest.test_case "builtins" `Quick test_builtin_methods;
          Alcotest.test_case "exceptions" `Quick test_exceptions;
        ] );
      ( "introspect",
        [
          Alcotest.test_case "basics" `Quick test_introspection;
          Alcotest.test_case "implements" `Quick test_implements;
        ] );
      ( "assembly",
        [
          Alcotest.test_case "bundle" `Quick test_assembly;
          Alcotest.test_case "asm size >> tdesc size" `Quick
            test_assembly_size_dwarfs_tdesc;
        ] );
    ]
