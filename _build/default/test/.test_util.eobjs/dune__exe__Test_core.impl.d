test/test_core.ml: Alcotest Eval Format List Printf Pti_core Pti_cts Pti_demo Pti_net Pti_proxy Pti_serial Pti_typedesc Pti_util Registry String Value
