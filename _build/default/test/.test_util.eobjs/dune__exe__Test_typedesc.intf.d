test/test_typedesc.mli:
