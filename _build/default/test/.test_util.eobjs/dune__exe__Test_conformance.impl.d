test/test_conformance.ml: Alcotest Array Builder Expr Int64 List Meta Option Pti_conformance Pti_cts Pti_demo Pti_typedesc Pti_util QCheck QCheck_alcotest Registry String Ty
