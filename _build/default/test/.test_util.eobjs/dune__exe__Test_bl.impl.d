test/test_bl.ml: Alcotest Eval List Pti_bl Pti_core Pti_cts Pti_demo Pti_net Pti_proxy Value
