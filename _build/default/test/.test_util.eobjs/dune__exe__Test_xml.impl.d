test/test_xml.ml: Alcotest Hashtbl List Pti_xml QCheck QCheck_alcotest String
