test/test_typedesc.ml: Alcotest Array Builder Int64 List Meta Pti_cts Pti_demo Pti_typedesc Pti_util Pti_xml QCheck QCheck_alcotest Registry Ty
