test/test_tps.ml: Alcotest List Printf Pti_core Pti_cts Pti_demo Pti_net Pti_proxy Pti_tps Value
