test/test_vbdl.ml: Alcotest Assembly Eval List Meta Option Pti_conformance Pti_cts Pti_demo Pti_idl Pti_proxy Pti_serial Pti_typedesc Pti_util Registry String Ty Value
