test/test_bl.mli:
