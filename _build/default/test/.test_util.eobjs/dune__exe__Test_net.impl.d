test/test_net.ml: Alcotest Format List Pti_net String
