test/test_cts.ml: Alcotest Assembly Builder Eval Expr Introspect List Meta Pti_cts Pti_demo Pti_serial Pti_typedesc Pti_util Registry String Ty Value
