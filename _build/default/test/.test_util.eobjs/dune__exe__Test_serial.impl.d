test/test_serial.ml: Alcotest Array Assembly Eval Expr Hashtbl List Pti_cts Pti_demo Pti_serial Pti_xml QCheck QCheck_alcotest Registry Ty Value
