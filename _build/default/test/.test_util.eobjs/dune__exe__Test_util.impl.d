test/test_util.ml: Alcotest Array Int64 List Pti_util QCheck QCheck_alcotest String
