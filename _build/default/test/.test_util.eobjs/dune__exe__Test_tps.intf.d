test/test_tps.mli:
