test/test_vbdl.mli:
