test/test_idl.ml: Alcotest Assembly Eval List Meta Option Pti_conformance Pti_cts Pti_demo Pti_idl Pti_serial Pti_typedesc Pti_util Registry String Value
