test/test_proxy.ml: Alcotest Builder Eval Expr Option Pti_conformance Pti_cts Pti_demo Pti_proxy Pti_typedesc Registry Sys Ty Value
