test/test_extensions.ml: Alcotest Assembly Builder Eval Expr List Option Pti_conformance Pti_cts Pti_demo Pti_idl Pti_proxy Pti_typedesc Registry String Ty Value
