(* Tests for the borrow/lend abstraction with conformance criteria. *)

open Pti_cts
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Bl = Pti_bl.Borrow_lend
module Proxy = Pti_proxy.Dynamic_proxy
module Demo = Pti_demo.Demo_types

let get_int = function
  | Value.Vint i -> i
  | v -> Alcotest.failf "expected int, got %s" (Value.type_name v)

let setup () =
  let net = Net.create ~seed:5L () in
  let lender = Peer.create ~net "lender" in
  Peer.publish_assembly lender (Demo.printer_assembly ());
  let borrower = Peer.create ~net "borrower" in
  Peer.publish_assembly borrower (Demo.printsvc_assembly ());
  let market = Bl.create () in
  (net, market, lender, borrower)

let test_borrow_conformant_resource () =
  let _net, market, lender, borrower = setup () in
  let printer = Demo.make_printer (Peer.registry lender) ~label:"laser" in
  let _lending = Bl.lend market lender printer in
  match Bl.borrow market borrower ~interest:Demo.printsvc with
  | Error e -> Alcotest.failf "borrow failed: %a" Bl.pp_borrow_error e
  | Ok (proxy, lease) ->
      Alcotest.(check int) "borrowed count" 1 (Bl.lease_lending lease).Bl.borrowed;
      (* The borrower prints through its own vocabulary. *)
      let n =
        Eval.call (Peer.registry borrower) proxy "PRINT"
          [ Value.Vstring "report.pdf" ]
        |> get_int
      in
      Alcotest.(check int) "printed one" 1 n;
      (* Effect happened on the lender's object. *)
      Alcotest.(check int) "lender sees state" 1
        (Eval.call (Peer.registry lender) printer "getPrinted" [] |> get_int);
      Bl.return_resource market lease;
      Alcotest.(check int) "lease released" 0
        (Bl.lease_lending lease).Bl.borrowed;
      Alcotest.(check bool) "inactive" false (Bl.lease_active lease)

let test_capacity_enforced () =
  let _net, market, lender, borrower = setup () in
  let printer = Demo.make_printer (Peer.registry lender) ~label:"inkjet" in
  ignore (Bl.lend market lender ~capacity:1 printer);
  (match Bl.borrow market borrower ~interest:Demo.printsvc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first borrow failed: %a" Bl.pp_borrow_error e);
  match Bl.borrow market borrower ~interest:Demo.printsvc with
  | Error Bl.Exhausted -> ()
  | Error e -> Alcotest.failf "expected Exhausted, got %a" Bl.pp_borrow_error e
  | Ok _ -> Alcotest.fail "capacity not enforced"

let test_return_frees_capacity () =
  let _net, market, lender, borrower = setup () in
  let printer = Demo.make_printer (Peer.registry lender) ~label:"x" in
  ignore (Bl.lend market lender ~capacity:1 printer);
  let lease =
    match Bl.borrow market borrower ~interest:Demo.printsvc with
    | Ok (_, l) -> l
    | Error _ -> Alcotest.fail "borrow failed"
  in
  Bl.return_resource market lease;
  match Bl.borrow market borrower ~interest:Demo.printsvc with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "borrow after return failed"

let test_no_conformant_resource () =
  let net = Net.create ~seed:6L () in
  let lender = Peer.create ~net "lender" in
  Peer.publish_assembly lender (Demo.trap_assembly ());
  let borrower = Peer.create ~net "borrower" in
  Peer.publish_assembly borrower (Demo.printsvc_assembly ());
  let market = Bl.create () in
  let trap = Demo.make_trap_person (Peer.registry lender) in
  ignore (Bl.lend market lender trap);
  match Bl.borrow market borrower ~interest:Demo.printsvc with
  | Error (Bl.No_conformant_resource reasons) ->
      Alcotest.(check int) "one reason per listing" 1 (List.length reasons)
  | Error Bl.Exhausted -> Alcotest.fail "should be non-conformant, not exhausted"
  | Ok _ -> Alcotest.fail "trap should not satisfy a printer interest"

let test_picks_first_conformant_among_mixed () =
  let net = Net.create ~seed:8L () in
  let l1 = Peer.create ~net "l1" in
  Peer.publish_assembly l1 (Demo.trap_assembly ());
  let l2 = Peer.create ~net "l2" in
  Peer.publish_assembly l2 (Demo.printer_assembly ());
  let borrower = Peer.create ~net "borrower" in
  Peer.publish_assembly borrower (Demo.printsvc_assembly ());
  let market = Bl.create () in
  ignore (Bl.lend market l1 (Demo.make_trap_person (Peer.registry l1)));
  ignore
    (Bl.lend market l2 (Demo.make_printer (Peer.registry l2) ~label:"ok"));
  match Bl.borrow market borrower ~interest:Demo.printsvc with
  | Ok (_, lease) ->
      Alcotest.(check string) "matched the printer lender" "l2"
        (Bl.lease_lending lease).Bl.resource.Peer.rr_host
  | Error e -> Alcotest.failf "borrow failed: %a" Bl.pp_borrow_error e

let test_unlend_removes_listing () =
  let _net, market, lender, borrower = setup () in
  let printer = Demo.make_printer (Peer.registry lender) ~label:"gone" in
  let lending = Bl.lend market lender printer in
  Alcotest.(check int) "listed" 1 (List.length (Bl.lendings market));
  Bl.unlend market lending;
  Alcotest.(check int) "unlisted" 0 (List.length (Bl.lendings market));
  match Bl.borrow market borrower ~interest:Demo.printsvc with
  | Error (Bl.No_conformant_resource []) -> ()
  | Error _ | Ok _ -> Alcotest.fail "empty market should have no reasons"

let test_two_borrowers_share_state () =
  let net, market, lender, borrower = setup () in
  let borrower2 = Peer.create ~net "borrower2" in
  Peer.publish_assembly borrower2 (Demo.printer_assembly ());
  let printer = Demo.make_printer (Peer.registry lender) ~label:"shared" in
  ignore (Bl.lend market lender ~capacity:2 printer);
  let p1 =
    match Bl.borrow market borrower ~interest:Demo.printsvc with
    | Ok (p, _) -> p
    | Error _ -> Alcotest.fail "b1 failed"
  in
  let p2 =
    match Bl.borrow market borrower2 ~interest:Demo.printer with
    | Ok (p, _) -> p
    | Error _ -> Alcotest.fail "b2 failed"
  in
  ignore (Eval.call (Peer.registry borrower) p1 "PRINT" [ Value.Vstring "a" ]);
  let n =
    Eval.call (Peer.registry borrower2) p2 "print" [ Value.Vstring "b" ]
    |> get_int
  in
  Alcotest.(check int) "both borrowers hit the same object" 2 n

let test_lease_expiry () =
  let net, market, lender, borrower = setup () in
  let printer = Demo.make_printer (Peer.registry lender) ~label:"timed" in
  let lending = Bl.lend market lender ~capacity:1 printer in
  let lease =
    match Bl.borrow ~lease_ms:100. market borrower ~interest:Demo.printsvc with
    | Ok (_, l) -> l
    | Error e -> Alcotest.failf "borrow failed: %a" Bl.pp_borrow_error e
  in
  Alcotest.(check bool) "active" true (Bl.lease_active lease);
  Alcotest.(check int) "held" 1 lending.Bl.borrowed;
  (* Advance simulated time past the lease. *)
  Pti_net.Sim.run_until (Net.sim net) 1_000.;
  Alcotest.(check bool) "expired" false (Bl.lease_active lease);
  Alcotest.(check int) "capacity freed" 0 lending.Bl.borrowed;
  (* Returning after expiry is a harmless no-op. *)
  Bl.return_resource market lease;
  Alcotest.(check int) "still zero" 0 lending.Bl.borrowed

let test_double_return_idempotent () =
  let _net, market, lender, borrower = setup () in
  let printer = Demo.make_printer (Peer.registry lender) ~label:"dbl" in
  let lending = Bl.lend market lender ~capacity:1 printer in
  (match Bl.borrow market borrower ~interest:Demo.printsvc with
  | Ok (_, lease) ->
      Bl.return_resource market lease;
      Bl.return_resource market lease
  | Error _ -> Alcotest.fail "borrow failed");
  Alcotest.(check int) "not negative" 0 lending.Bl.borrowed

let () =
  Alcotest.run "borrow-lend"
    [
      ( "market",
        [
          Alcotest.test_case "borrow conformant resource" `Quick
            test_borrow_conformant_resource;
          Alcotest.test_case "lease expiry" `Quick test_lease_expiry;
          Alcotest.test_case "double return idempotent" `Quick
            test_double_return_idempotent;
          Alcotest.test_case "capacity enforced" `Quick test_capacity_enforced;
          Alcotest.test_case "return frees capacity" `Quick
            test_return_frees_capacity;
          Alcotest.test_case "no conformant resource" `Quick
            test_no_conformant_resource;
          Alcotest.test_case "first conformant among mixed" `Quick
            test_picks_first_conformant_among_mixed;
          Alcotest.test_case "unlend" `Quick test_unlend_removes_listing;
          Alcotest.test_case "two borrowers share state" `Quick
            test_two_borrowers_share_state;
        ] );
    ]
