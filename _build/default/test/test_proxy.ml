(* Tests for dynamic proxies: translation, permutation, recursive wrapping,
   optimistic forwarding and the failure modes of weakened rules. *)

open Pti_cts
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Config = Pti_conformance.Config
module Mapping = Pti_conformance.Mapping
module Proxy = Pti_proxy.Dynamic_proxy
module Demo = Pti_demo.Demo_types

let registry =
  Demo.fresh_registry
    [
      Demo.news_assembly (); Demo.social_assembly (); Demo.trap_assembly ();
      Demo.printer_assembly (); Demo.printsvc_assembly ();
    ]

let resolver = Td.registry_resolver registry
let checker = Checker.create ~resolver ()
let cx = Proxy.create_context registry checker

let desc name = Option.get (resolver name)

let mapping ~actual ~interest =
  match Checker.check checker ~actual:(desc actual) ~interest:(desc interest) with
  | Checker.Conformant m -> m
  | Checker.Not_conformant _ -> Alcotest.failf "%s !<= %s" actual interest

let get_string = function
  | Value.Vstring s -> s
  | v -> Alcotest.failf "expected string, got %s" (Value.type_name v)

let get_int = function
  | Value.Vint i -> i
  | v -> Alcotest.failf "expected int, got %s" (Value.type_name v)

let social_as_news name age =
  let target = Demo.make_social_person registry ~name ~age in
  let m = mapping ~actual:Demo.social_person ~interest:Demo.news_person in
  Proxy.wrap cx ~interest:Demo.news_person ~mapping:m target

let test_renaming_dispatch () =
  let p = social_as_news "Zoe" 28 in
  Alcotest.(check string) "getName -> getname" "Zoe"
    (Eval.call registry p "getName" [] |> get_string);
  Alcotest.(check int) "getAge -> GETAGE" 28
    (Eval.call registry p "getAge" [] |> get_int);
  ignore (Eval.call registry p "setName" [ Value.Vstring "Zo" ]);
  Alcotest.(check string) "setName effect visible" "Zo"
    (Eval.call registry p "getName" [] |> get_string)

let test_proxy_type_name () =
  let p = social_as_news "Q" 1 in
  Alcotest.(check bool) "is_proxy" true (Proxy.is_proxy p);
  Alcotest.(check string) "type name advertises interest"
    ("proxy<" ^ Demo.news_person ^ ">")
    (Value.type_name p)

let test_unwrap () =
  let target = Demo.make_social_person registry ~name:"U" ~age:2 in
  let m = mapping ~actual:Demo.social_person ~interest:Demo.news_person in
  let p = Proxy.wrap cx ~interest:Demo.news_person ~mapping:m target in
  Alcotest.(check bool) "unwrap returns target" true
    (match Proxy.unwrap p, target with
    | Value.Vobj a, Value.Vobj b -> a == b
    | _ -> false)

let test_recursive_return_wrapping () =
  (* getSpouse returns a socialw.person; through the proxy the caller sees
     it as a newsw.Person and keeps using news vocabulary. *)
  let alice = Demo.make_social_person registry ~name:"Alice" ~age:30 in
  let bob = Demo.make_social_person registry ~name:"Bob" ~age:31 in
  ignore (Eval.call registry alice "setspouse" [ bob ]);
  let m = mapping ~actual:Demo.social_person ~interest:Demo.news_person in
  let p = Proxy.wrap cx ~interest:Demo.news_person ~mapping:m alice in
  let spouse = Eval.call registry p "getSpouse" [] in
  Alcotest.(check bool) "spouse is proxied" true (Proxy.is_proxy spouse);
  Alcotest.(check string) "news vocabulary works on spouse" "Bob"
    (Eval.call registry spouse "getName" [] |> get_string)

let test_recursive_argument_wrapping () =
  (* setSpouse receives a newsw.Person object but the target is social:
     the argument must be re-wrapped so the social code can call getname
     etc. on it. *)
  let social = Demo.make_social_person registry ~name:"S" ~age:9 in
  let m = mapping ~actual:Demo.social_person ~interest:Demo.news_person in
  let p = Proxy.wrap cx ~interest:Demo.news_person ~mapping:m social in
  let news_spouse = Demo.make_news_person registry ~name:"N" ~age:8 in
  ignore (Eval.call registry p "setSpouse" [ news_spouse ]);
  let spouse_back = Eval.call registry p "getSpouse" [] in
  (* Coming back out it is presented as newsw.Person again. *)
  Alcotest.(check string) "argument survived translation" "N"
    (Eval.call registry spouse_back "getName" [] |> get_string)

let test_argument_permutation_via_ctor_types () =
  (* Method-level permutation: interest combine(string,int), actual has
     COMBINE(int,string). *)
  let module B = Builder in
  let module E = Expr in
  let a =
    B.class_ ~ns:[ "px" ] ~assembly:"px" "Fmt"
    |> B.method_ "combine" [ ("s", Ty.String); ("n", Ty.Int) ] Ty.String
         ~body:(E.str "unused")
    |> B.build
  in
  let b =
    B.class_ ~ns:[ "py" ] ~assembly:"py" "fmt"
    |> B.method_ "COMBINE" [ ("n", Ty.Int); ("s", Ty.String) ] Ty.String
         ~body:
           (E.Binop
              (E.Concat, E.Var "s", E.Call (E.Var "n", "toString", [])))
    |> B.build
  in
  let r2 = Registry.create () in
  Registry.register r2 a;
  Registry.register r2 b;
  let res = Td.registry_resolver r2 in
  let ch = Checker.create ~resolver:res () in
  let cx2 = Proxy.create_context r2 ch in
  let m =
    match
      Checker.check ch ~actual:(Option.get (res "py.fmt"))
        ~interest:(Option.get (res "px.Fmt"))
    with
    | Checker.Conformant m -> m
    | Checker.Not_conformant _ -> Alcotest.fail "fmt should conform"
  in
  let target = Eval.construct r2 "py.fmt" [] in
  let p = Proxy.wrap cx2 ~interest:"px.Fmt" ~mapping:m target in
  (* Caller passes (string, int); target expects (int, string). *)
  let out =
    Eval.call r2 p "combine" [ Value.Vstring "n="; Value.Vint 7 ]
    |> get_string
  in
  Alcotest.(check string) "permuted call" "n=7" out

let test_identity_mapping_forwards () =
  let target = Demo.make_news_person registry ~name:"Id" ~age:3 in
  let m =
    Mapping.identity_mapping ~interest:Demo.news_person
      ~actual:Demo.news_person
  in
  let p = Proxy.wrap cx ~interest:Demo.news_person ~mapping:m target in
  Alcotest.(check string) "identity forwards" "Id"
    (Eval.call registry p "getName" [] |> get_string);
  (* Even methods outside any mapping forward under identity. *)
  Alcotest.(check string) "greet forwards" "Hello, Id"
    (Eval.call registry p "greet" [] |> get_string)

let test_weak_rules_trap_explodes_at_runtime () =
  (* A name-only conformance produces an empty method mapping over the
     trap type; invocation falls through to optimistic forwarding and hits
     a missing method — the §4.2 safety failure E6 measures. *)
  let weak = Checker.create ~config:Config.name_only ~resolver () in
  let m =
    match
      Checker.check weak ~actual:(desc Demo.trap_person)
        ~interest:(desc Demo.news_person)
    with
    | Checker.Conformant m -> m
    | Checker.Not_conformant _ ->
        Alcotest.fail "name-only should accept the trap"
  in
  let trap = Demo.make_trap_person registry in
  let p = Proxy.wrap cx ~interest:Demo.news_person ~mapping:m trap in
  match Eval.call registry p "getName" [] with
  | _ -> Alcotest.fail "trap should fail at runtime"
  | exception Eval.Runtime_error _ -> ()

let test_coerce () =
  let social = Demo.make_social_person registry ~name:"C" ~age:4 in
  (* Coercing to a conformant interest wraps. *)
  let p = Proxy.coerce cx ~interest:Demo.news_person social in
  Alcotest.(check bool) "wrapped" true (Proxy.is_proxy p);
  (* Coercing to its own type is the identity. *)
  let same = Proxy.coerce cx ~interest:Demo.social_person social in
  Alcotest.(check bool) "no wrap needed" false (Proxy.is_proxy same);
  (* Primitives pass through. *)
  Alcotest.(check bool) "primitive passthrough" true
    (Proxy.coerce cx ~interest:Demo.news_person (Value.Vint 5) = Value.Vint 5);
  (* Non-conformant coercion raises. *)
  let trap = Demo.make_trap_person registry in
  match Proxy.coerce cx ~interest:Demo.printer trap with
  | _ -> Alcotest.fail "non-conformant coerce should raise"
  | exception Eval.Runtime_error _ -> ()

let test_double_wrapping_collapses () =
  (* Wrapping a proxy that already presents the interest is a no-op in
     coerce. *)
  let p = social_as_news "W" 6 in
  let p2 = Proxy.coerce cx ~interest:Demo.news_person p in
  Alcotest.(check bool) "same proxy" true (p == p2)

let test_construct_as () =
  (* Build a socialw.person through the newsw.Person constructor signature
     (name, age) -- rule (v)'s witness permutes into social's (age, name). *)
  let p =
    Proxy.construct_as cx ~interest:Demo.news_person
      ~actual:Demo.social_person
      [ Value.Vstring "Built"; Value.Vint 27 ]
  in
  Alcotest.(check bool) "wrapped" true (Proxy.is_proxy p);
  Alcotest.(check string) "name landed in the right slot" "Built"
    (Eval.call registry p "getName" [] |> get_string);
  Alcotest.(check int) "age landed in the right slot" 27
    (Eval.call registry p "getAge" [] |> get_int);
  (* Identity construction returns a bare object. *)
  let same =
    Proxy.construct_as cx ~interest:Demo.news_person ~actual:Demo.news_person
      [ Value.Vstring "Plain"; Value.Vint 1 ]
  in
  Alcotest.(check bool) "no proxy for identity" false (Proxy.is_proxy same);
  (* Non-conformant target refuses. *)
  (match
     Proxy.construct_as cx ~interest:Demo.news_person ~actual:Demo.trap_person
       [ Value.Vstring "x"; Value.Vint 0 ]
   with
  | _ -> Alcotest.fail "trap must not construct as Person"
  | exception Eval.Runtime_error _ -> ());
  (* Wrong arity refuses. *)
  match
    Proxy.construct_as cx ~interest:Demo.news_person ~actual:Demo.social_person
      [ Value.Vstring "only-one" ]
  with
  | _ -> Alcotest.fail "bad arity must refuse"
  | exception Eval.Runtime_error _ -> ()

let test_ctor_mapping_recorded () =
  let m = mapping ~actual:Demo.social_person ~interest:Demo.news_person in
  match Mapping.find_ctor m ~arity:2 with
  | None -> Alcotest.fail "ctor/2 witness missing"
  | Some cm ->
      (* social ctor is (int, string); interest is (string, int). *)
      Alcotest.(check (array int)) "permutation" [| 1; 0 |] cm.Mapping.cm_perm

let test_proxy_overhead_exists_but_small () =
  (* Sanity for E1: proxy call must cost more than a direct call, but stay
     within a couple orders of magnitude. *)
  let direct = Demo.make_social_person registry ~name:"T" ~age:1 in
  let p = social_as_news "T" 1 in
  let time f =
    let t0 = Sys.time () in
    for _ = 1 to 20_000 do
      ignore (f ())
    done;
    Sys.time () -. t0
  in
  let td = time (fun () -> Eval.call registry direct "getname" []) in
  let tp = time (fun () -> Eval.call registry p "getName" []) in
  Alcotest.(check bool) "proxy slower than direct" true (tp > td);
  Alcotest.(check bool) "but not absurdly slower" true (tp < td *. 1000.)

let () =
  Alcotest.run "proxy"
    [
      ( "dispatch",
        [
          Alcotest.test_case "renaming" `Quick test_renaming_dispatch;
          Alcotest.test_case "type name" `Quick test_proxy_type_name;
          Alcotest.test_case "unwrap" `Quick test_unwrap;
          Alcotest.test_case "recursive returns" `Quick
            test_recursive_return_wrapping;
          Alcotest.test_case "recursive arguments" `Quick
            test_recursive_argument_wrapping;
          Alcotest.test_case "argument permutation" `Quick
            test_argument_permutation_via_ctor_types;
          Alcotest.test_case "identity forwarding" `Quick
            test_identity_mapping_forwards;
          Alcotest.test_case "construct_as" `Quick test_construct_as;
          Alcotest.test_case "ctor mapping recorded" `Quick
            test_ctor_mapping_recorded;
        ] );
      ( "safety",
        [
          Alcotest.test_case "weak rules explode at runtime" `Quick
            test_weak_rules_trap_explodes_at_runtime;
          Alcotest.test_case "coerce" `Quick test_coerce;
          Alcotest.test_case "double wrapping collapses" `Quick
            test_double_wrapping_collapses;
        ] );
      ( "performance",
        [
          Alcotest.test_case "overhead sanity" `Quick
            test_proxy_overhead_exists_but_small;
        ] );
    ]
