(* Tests for the VB-flavoured definition language and, through it, the
   "different languages, one type system" story: a VB-authored type and a
   C#-authored type interoperating via implicit structural conformance. *)

open Pti_cts
module Vbdl = Pti_idl.Vbdl
module Idl = Pti_idl.Idl
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Proxy = Pti_proxy.Dynamic_proxy
module Demo = Pti_demo.Demo_types

let get_string = function
  | Value.Vstring s -> s
  | v -> Alcotest.failf "expected string, got %s" (Value.type_name v)

let get_int = function
  | Value.Vint i -> i
  | v -> Alcotest.failf "expected int, got %s" (Value.type_name v)

let parse_ok ?assembly src =
  match Vbdl.parse_classes ?assembly src with
  | Ok cds -> cds
  | Error e -> Alcotest.failf "vbdl parse failed: %a" Vbdl.pp_error e

let vb_person_src =
  {|
Assembly "vb-asm"
Namespace vbw

' A person, as a VB programmer would write one.
Class Person
  Dim name As String
  Dim age As Integer

  Sub New(n As String, a As Integer)
    name = n
    age = a
  End Sub

  Function getName() As String
    Return name
  End Function

  Sub setName(v As String)
    name = v
  End Sub

  Function getAge() As Integer
    Return age
  End Function

  Sub setAge(v As Integer)
    age = v
  End Sub

  Function greet() As String
    Return "Hello, " & name
  End Function

  Function older(years As Integer) As Integer
    Return age + years
  End Function
End Class
|}

let vb_registry () =
  let asm =
    match Vbdl.parse_assembly vb_person_src with
    | Ok a -> a
    | Error e -> Alcotest.failf "assembly parse: %a" Vbdl.pp_error e
  in
  let reg = Registry.create () in
  Assembly.load reg asm;
  reg

let test_parse_structure () =
  let cds = parse_ok vb_person_src in
  Alcotest.(check int) "one class" 1 (List.length cds);
  let p = List.hd cds in
  Alcotest.(check string) "qname" "vbw.Person" (Meta.qualified_name p);
  Alcotest.(check string) "assembly" "vb-asm" p.Meta.td_assembly;
  Alcotest.(check int) "fields" 2 (List.length p.Meta.td_fields);
  Alcotest.(check int) "ctors" 1 (List.length p.Meta.td_ctors);
  Alcotest.(check int) "methods" 6 (List.length p.Meta.td_methods);
  (* Subs are void, Functions carry their return type. *)
  let set_name =
    List.find (fun m -> m.Meta.m_name = "setName") p.Meta.td_methods
  in
  Alcotest.(check bool) "sub returns void" true
    (Ty.equal set_name.Meta.m_return Ty.Void)

let test_vb_code_runs () =
  let reg = vb_registry () in
  let p =
    Eval.construct reg "vbw.Person" [ Value.Vstring "Vera"; Value.Vint 40 ]
  in
  Alcotest.(check string) "getName" "Vera"
    (Eval.call reg p "getName" [] |> get_string);
  Alcotest.(check string) "greet (& concat)" "Hello, Vera"
    (Eval.call reg p "greet" [] |> get_string);
  Alcotest.(check int) "older" 42
    (Eval.call reg p "older" [ Value.Vint 2 ] |> get_int);
  ignore (Eval.call reg p "setAge" [ Value.Vint 41 ]);
  Alcotest.(check int) "setAge effect" 41
    (Eval.call reg p "getAge" [] |> get_int)

let test_control_flow_and_operators () =
  let src =
    {|
Class Logic
  Function classify(n As Integer) As String
    If n < 0 Then
      Return "negative"
    Else
      If n = 0 Then
        Return "zero"
      Else
        Return "positive"
      End If
    End If
  End Function

  Function sum(n As Integer) As Integer
    Dim acc = 0
    Dim i = 0
    While i < n
      acc = acc + i
      i = i + 1
    End While
    Return acc
  End Function

  Function logic(a As Boolean, b As Boolean) As Boolean
    Return a And b Or Not a
  End Function

  Function rem5(n As Integer) As Integer
    Return n Mod 5
  End Function

  Function ne(a As Integer, b As Integer) As Boolean
    Return a <> b
  End Function
End Class
|}
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg) (parse_ok src);
  let l = Eval.construct reg "Logic" [] in
  Alcotest.(check string) "negative" "negative"
    (Eval.call reg l "classify" [ Value.Vint (-3) ] |> get_string);
  Alcotest.(check string) "zero" "zero"
    (Eval.call reg l "classify" [ Value.Vint 0 ] |> get_string);
  Alcotest.(check string) "positive" "positive"
    (Eval.call reg l "classify" [ Value.Vint 9 ] |> get_string);
  Alcotest.(check int) "while sum" 45
    (Eval.call reg l "sum" [ Value.Vint 10 ] |> get_int);
  Alcotest.(check bool) "And/Or/Not" true
    (Eval.call reg l "logic" [ Value.Vbool false; Value.Vbool false ]
    = Value.Vbool true);
  Alcotest.(check int) "Mod" 3 (Eval.call reg l "rem5" [ Value.Vint 13 ] |> get_int);
  Alcotest.(check bool) "<>" true
    (Eval.call reg l "ne" [ Value.Vint 1; Value.Vint 2 ] = Value.Vbool true)

let test_interfaces_and_inheritance () =
  let src =
    {|
Namespace vh
Interface INamed
  Function getName() As String
End Interface

Class Base
  Dim id As Integer
End Class

Class Thing
  Inherits vh.Base
  Implements vh.INamed
  Dim name As String
  Function getName() As String
    Return name
  End Function
End Class
|}
  in
  let cds = parse_ok src in
  let reg = Registry.create () in
  List.iter (Registry.register reg) cds;
  let thing = Registry.find_exn reg "vh.Thing" in
  Alcotest.(check (option string)) "inherits" (Some "vh.Base")
    thing.Meta.td_super;
  Alcotest.(check (list string)) "implements" [ "vh.INamed" ]
    thing.Meta.td_interfaces;
  let iface = Registry.find_exn reg "vh.INamed" in
  Alcotest.(check bool) "interface abstract" true
    (List.for_all (fun m -> m.Meta.m_body = None) iface.Meta.td_methods)

let test_string_escapes_and_comments () =
  let src =
    {|
Class Q
  Function quote() As String
    Return "say ""hi"" ' not a comment inside"
  End Function   ' trailing comment
End Class
|}
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg) (parse_ok src);
  let q = Eval.construct reg "Q" [] in
  Alcotest.(check string) "doubled quotes" "say \"hi\" ' not a comment inside"
    (Eval.call reg q "quote" [] |> get_string)

let test_parse_errors () =
  List.iter
    (fun src ->
      match Vbdl.parse_classes src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" src)
    [
      "Class";
      "Class X";
      (* no End Class *)
      "Class X\n  Dim\nEnd Class";
      "Class X\n  Function f() As\nEnd Class";
      "Class X\n  Sub s()\n    If a Then\n  End Sub\nEnd Class";
      "Klass X\nEnd Class";
      "Class X\n  Function f() As Integer\n    Return \"open\n  End \
       Function\nEnd Class";
    ]

let test_deterministic_guids_match_idl () =
  (* The same assembly + qualified name yields the same GUID regardless of
     which front end authored it: the two languages really do meet in one
     type system. *)
  let vb = List.hd (parse_ok vb_person_src) in
  let cs =
    Idl.parse_class_exn
      {|
assembly "vb-asm";
namespace vbw;
class Person {
  field name : string;
  field age : int;
  ctor(n : string, a : int) { name = n; age = a; }
  method getName() : string { return name; }
}
|}
  in
  Alcotest.(check bool) "same guid across languages" true
    (Pti_util.Guid.equal vb.Meta.td_guid cs.Meta.td_guid)

let test_cross_language_conformance () =
  (* The VB person conforms to the builder-authored newsw.Person minus the
     members VB did not write? No — newsw.Person also has home/spouse, so
     conformance runs the other way: newsw.Person (richer) conforms to the
     VB person (smaller interest). *)
  let reg = vb_registry () in
  Assembly.load reg (Demo.news_assembly ());
  let res = Td.registry_resolver reg in
  let checker = Checker.create ~resolver:res () in
  (match
     Checker.check checker
       ~actual:(Option.get (res Demo.news_person))
       ~interest:(Option.get (res "vbw.Person"))
   with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant fs ->
      Alcotest.failf "news person should conform to the VB interest: %s"
        (String.concat "; " (List.map (fun f -> f.Checker.message) fs)));
  (* And it works end-to-end: view a news person through VB vocabulary. *)
  let cx = Proxy.create_context reg checker in
  let news = Demo.make_news_person reg ~name:"Cross" ~age:5 in
  let as_vb = Proxy.coerce cx ~interest:"vbw.Person" news in
  Alcotest.(check string) "cross-language proxy" "Cross"
    (Eval.call reg as_vb "getName" [] |> get_string)

let test_vb_survives_assembly_codec () =
  let asm =
    match Vbdl.parse_assembly vb_person_src with
    | Ok a -> a
    | Error e -> Alcotest.failf "parse: %a" Vbdl.pp_error e
  in
  match Pti_serial.Assembly_xml.of_string (Pti_serial.Assembly_xml.to_string asm) with
  | Error m -> Alcotest.failf "codec: %s" m
  | Ok asm' ->
      let reg = Registry.create () in
      Assembly.load reg asm';
      let p =
        Eval.construct reg "vbw.Person" [ Value.Vstring "Wire"; Value.Vint 1 ]
      in
      Alcotest.(check string) "still runs" "Hello, Wire"
        (Eval.call reg p "greet" [] |> get_string)

let () =
  Alcotest.run "vbdl"
    [
      ( "parsing",
        [
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "interfaces + inheritance" `Quick
            test_interfaces_and_inheritance;
          Alcotest.test_case "strings + comments" `Quick
            test_string_escapes_and_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "execution",
        [
          Alcotest.test_case "vb code runs" `Quick test_vb_code_runs;
          Alcotest.test_case "control flow + operators" `Quick
            test_control_flow_and_operators;
        ] );
      ( "interop",
        [
          Alcotest.test_case "guids match across languages" `Quick
            test_deterministic_guids_match_idl;
          Alcotest.test_case "cross-language conformance" `Quick
            test_cross_language_conformance;
          Alcotest.test_case "survives the assembly codec" `Quick
            test_vb_survives_assembly_codec;
        ] );
    ]
