(* Tests for the XML substrate: printing, parsing, escaping, queries. *)

module Xml = Pti_xml.Xml

let test_print_compact () =
  let doc =
    Xml.elt "root"
      ~attrs:[ ("a", "1"); ("b", "x&y") ]
      [ Xml.leaf "child" "hi"; Xml.elt "empty" [] ]
  in
  Alcotest.(check string) "compact"
    "<root a=\"1\" b=\"x&amp;y\"><child>hi</child><empty/></root>"
    (Xml.to_string doc)

let test_escaping () =
  Alcotest.(check string) "text" "a&lt;b&gt;c&amp;d"
    (Xml.escape_text "a<b>c&d");
  Alcotest.(check string) "attr quotes" "&quot;&apos;"
    (Xml.escape_attr "\"'")

let test_parse_simple () =
  let x = Xml.parse_exn "<a p=\"1\"><b>text</b><c/></a>" in
  Alcotest.(check (option string)) "tag" (Some "a") (Xml.tag x);
  Alcotest.(check (option string)) "attr" (Some "1") (Xml.attr "p" x);
  Alcotest.(check string) "text" "text"
    (Xml.text_content (Xml.child_exn "b" x));
  Alcotest.(check int) "children" 2 (List.length (Xml.children x))

let test_parse_entities () =
  let x = Xml.parse_exn "<a>&lt;tag&gt; &amp; &quot;quotes&quot; &#65;&#x42;</a>" in
  Alcotest.(check string) "entities" "<tag> & \"quotes\" AB" (Xml.text_content x)

let test_parse_cdata_comment () =
  let x = Xml.parse_exn "<a><!-- note --><![CDATA[<raw&stuff>]]></a>" in
  Alcotest.(check string) "cdata preserved" "<raw&stuff>" (Xml.text_content x)

let test_parse_prolog_doctype () =
  let x =
    Xml.parse_exn
      "<?xml version=\"1.0\"?><!DOCTYPE a><!-- hello --><a/><!-- bye -->"
  in
  Alcotest.(check (option string)) "root" (Some "a") (Xml.tag x)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Xml.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" s)
    [
      ""; "<a>"; "<a></b>"; "<a attr></a>"; "text only"; "<a/><b/>";
      "<a>&unknown;</a>"; "<a><![CDATA[open</a>";
    ]

let test_path_and_childs () =
  let x = Xml.parse_exn "<a><b><c k=\"v\"/></b><b/><d/></a>" in
  (match Xml.path [ "b"; "c" ] x with
  | Some c -> Alcotest.(check (option string)) "path attr" (Some "v") (Xml.attr "k" c)
  | None -> Alcotest.fail "path failed");
  Alcotest.(check int) "childs count" 2 (List.length (Xml.childs "b" x));
  Alcotest.(check bool) "path miss" true (Xml.path [ "z" ] x = None)

let test_pretty_roundtrip () =
  let doc =
    Xml.elt "envelope"
      [
        Xml.elt "type" ~attrs:[ ("name", "Person") ] [];
        Xml.elt "payload" [ Xml.leaf "obj" "data" ];
      ]
  in
  let pretty = Xml.to_string_pretty doc in
  Alcotest.(check bool) "has newlines" true (String.contains pretty '\n');
  let reparsed = Xml.parse_exn pretty in
  (* The pretty form adds whitespace text nodes; compare structure by
     element tags only. *)
  let rec tags x =
    match x with
    | Xml.Element (t, _, cs) -> t :: List.concat_map tags cs
    | _ -> []
  in
  Alcotest.(check (list string)) "structure preserved" (tags doc) (tags reparsed)

let test_attr_escaping_roundtrip () =
  let doc =
    Xml.elt "a" ~attrs:[ ("k", "quotes \" ' and <tags> & amps") ] []
  in
  let reparsed = Xml.parse_exn (Xml.to_string doc) in
  Alcotest.(check (option string)) "attribute survives"
    (Some "quotes \" ' and <tags> & amps")
    (Xml.attr "k" reparsed)

let test_size_bytes () =
  let doc = Xml.leaf "a" "xyz" in
  Alcotest.(check int) "size" (String.length "<a>xyz</a>") (Xml.size_bytes doc)

(* Generator for random XML trees with printable text. *)
let gen_xml =
  let open QCheck.Gen in
  let tag_g = oneofl [ "a"; "b"; "item"; "node"; "x1" ] in
  let text_g =
    map
      (fun s -> String.concat "" (List.map (String.make 1) s))
      (small_list (oneofl [ 'a'; 'z'; '<'; '&'; '>'; '"'; ' '; '\'' ]))
  in
  let attr_g = pair (oneofl [ "k"; "key"; "n" ]) text_g in
  (* Attributes need distinct names within an element. *)
  let attrs_g =
    map
      (fun l ->
        let seen = Hashtbl.create 4 in
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          l)
      (small_list attr_g)
  in
  fix
    (fun self depth ->
      if depth = 0 then
        map2 (fun t s -> Xml.leaf t s) tag_g text_g
      else
        map3
          (fun t attrs kids -> Xml.elt t ~attrs kids)
          tag_g attrs_g
          (list_size (int_bound 3) (self (depth - 1))))
    2

(* Adjacent text nodes merge on reparse; normalize before comparing. *)
let rec normalize x =
  match x with
  | Xml.Element (t, attrs, cs) ->
      let cs = List.filter_map normalize_child cs in
      let rec merge = function
        | Xml.Text a :: Xml.Text b :: rest -> merge (Xml.Text (a ^ b) :: rest)
        | c :: rest -> c :: merge rest
        | [] -> []
      in
      Xml.Element (t, attrs, merge cs)
  | other -> other

and normalize_child c =
  match c with
  | Xml.Text "" -> None
  | Xml.Cdata s -> Some (Xml.Text s)  (* cdata and text are equivalent *)
  | Xml.Comment _ -> None
  | _ -> Some (normalize c)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300
    (QCheck.make gen_xml) (fun doc ->
      match Xml.parse (Xml.to_string doc) with
      | Error _ -> false
      | Ok parsed -> normalize parsed = normalize doc)

let () =
  Alcotest.run "xml"
    [
      ( "print",
        [
          Alcotest.test_case "compact" `Quick test_print_compact;
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "pretty" `Quick test_pretty_roundtrip;
          Alcotest.test_case "size" `Quick test_size_bytes;
          Alcotest.test_case "attr escaping" `Quick
            test_attr_escaping_roundtrip;
        ] );
      ( "parse",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata+comments" `Quick test_parse_cdata_comment;
          Alcotest.test_case "prolog" `Quick test_parse_prolog_doctype;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "queries" `Quick test_path_and_childs;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ]);
    ]
