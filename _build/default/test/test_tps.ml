(* Tests for type-based publish/subscribe with type interoperability. *)

open Pti_cts
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Stats = Pti_net.Stats
module Tps = Pti_tps.Tps
module Proxy = Pti_proxy.Dynamic_proxy
module Demo = Pti_demo.Demo_types

let setup () =
  let net = Net.create ~seed:21L () in
  let domain = Tps.create ~net ~broker:"broker" () in
  let pub = Peer.create ~net "publisher" in
  Peer.publish_assembly pub (Demo.social_assembly ());
  (net, domain, pub)

let get_string = function
  | Value.Vstring s -> s
  | v -> Alcotest.failf "expected string, got %s" (Value.type_name v)

let publish_event domain pub headline =
  let reg = Peer.registry pub in
  let author = Demo.make_social_person reg ~name:"Ann" ~age:33 in
  Tps.publish domain pub
    (Demo.make_social_event reg ~headline ~author ~priority:2)

let test_conformant_subscriber_receives () =
  let net, domain, pub = setup () in
  let sub_peer = Peer.create ~net "sub1" in
  Peer.publish_assembly sub_peer (Demo.news_assembly ());
  let seen = ref [] in
  let sub =
    Tps.subscribe domain sub_peer ~interest:Demo.news_event
      ~handler:(fun ~from:_ v -> seen := v :: !seen)
      ()
  in
  publish_event domain pub "Peace declared";
  Tps.run domain;
  Alcotest.(check int) "one delivery" 1 (List.length (Tps.deliveries sub));
  match !seen with
  | [ v ] ->
      Alcotest.(check string) "subscriber vocabulary works" "Peace declared"
        (Pti_cts.Eval.call (Peer.registry sub_peer) v "getHeadline" []
        |> get_string)
  | _ -> Alcotest.fail "handler did not fire exactly once"

let test_non_conformant_subscriber_ignored () =
  let net, domain, pub = setup () in
  let sub_peer = Peer.create ~net "sub1" in
  (* This subscriber only knows printers; a news event must not match. *)
  Peer.publish_assembly sub_peer (Demo.printsvc_assembly ());
  let sub =
    Tps.subscribe domain sub_peer ~interest:Demo.printsvc
      ~handler:(fun ~from:_ _ ->
        Alcotest.fail "printer subscriber got a news event")
      ()
  in
  publish_event domain pub "Not for you";
  Tps.run domain;
  Alcotest.(check int) "no deliveries" 0 (List.length (Tps.deliveries sub));
  (* And it never downloaded the event code. *)
  let s = Net.stats net in
  Alcotest.(check int) "no code transfer" 0 (Stats.messages s Stats.Asm_request)

let test_multiple_subscribers_mixed () =
  let net, domain, pub = setup () in
  let s1 = Peer.create ~net "s1" in
  Peer.publish_assembly s1 (Demo.news_assembly ());
  let s2 = Peer.create ~net "s2" in
  Peer.publish_assembly s2 (Demo.news_assembly ());
  let s3 = Peer.create ~net "s3" in
  Peer.publish_assembly s3 (Demo.printsvc_assembly ());
  let sub1 = Tps.subscribe domain s1 ~interest:Demo.news_event () in
  let sub2 = Tps.subscribe domain s2 ~interest:Demo.news_event () in
  let sub3 = Tps.subscribe domain s3 ~interest:Demo.printsvc () in
  publish_event domain pub "Fan out";
  Tps.run domain;
  Alcotest.(check int) "sub1 got it" 1 (List.length (Tps.deliveries sub1));
  Alcotest.(check int) "sub2 got it" 1 (List.length (Tps.deliveries sub2));
  Alcotest.(check int) "sub3 did not" 0 (List.length (Tps.deliveries sub3))

let test_publisher_is_not_self_delivered () =
  let net, domain, pub = setup () in
  ignore net;
  (* The publisher also subscribes (to its own native type). *)
  let own =
    Tps.subscribe domain pub ~interest:Demo.social_event ()
  in
  publish_event domain pub "Echo?";
  Tps.run domain;
  Alcotest.(check int) "no self delivery" 0 (List.length (Tps.deliveries own))

let test_stream_of_events_amortizes_code_download () =
  let net, domain, pub = setup () in
  let sub_peer = Peer.create ~net "s1" in
  Peer.publish_assembly sub_peer (Demo.news_assembly ());
  let sub = Tps.subscribe domain sub_peer ~interest:Demo.news_event () in
  for i = 1 to 10 do
    publish_event domain pub (Printf.sprintf "event %d" i);
    Tps.run domain
  done;
  Alcotest.(check int) "all delivered" 10 (List.length (Tps.deliveries sub));
  let s = Net.stats net in
  (* Code and descriptions were fetched once, not per event. *)
  Alcotest.(check int) "one assembly fetch" 1
    (Stats.messages s Stats.Asm_request);
  Alcotest.(check bool) "few tdesc fetches" true
    (Stats.messages s Stats.Tdesc_request <= 6)

let test_deliveries_record_source () =
  let net, domain, pub = setup () in
  ignore net;
  let sub_peer = Peer.create ~net "s1" in
  Peer.publish_assembly sub_peer (Demo.news_assembly ());
  let sub = Tps.subscribe domain sub_peer ~interest:Demo.news_event () in
  publish_event domain pub "Origin";
  Tps.run domain;
  match Tps.deliveries sub with
  | [ (from, _) ] -> Alcotest.(check string) "source" "publisher" from
  | _ -> Alcotest.fail "expected one delivery"

let test_unsubscribe () =
  let net, domain, pub = setup () in
  ignore net;
  let sub_peer = Peer.create ~net "s1" in
  Peer.publish_assembly sub_peer (Demo.news_assembly ());
  let sub = Tps.subscribe domain sub_peer ~interest:Demo.news_event () in
  publish_event domain pub "before";
  Tps.run domain;
  Alcotest.(check int) "received before" 1 (List.length (Tps.deliveries sub));
  Tps.unsubscribe domain sub;
  Alcotest.(check int) "no longer listed" 0
    (List.length (Tps.subscriptions domain));
  publish_event domain pub "after";
  Tps.run domain;
  Alcotest.(check int) "nothing after unsubscribe" 1
    (List.length (Tps.deliveries sub));
  (* Idempotent. *)
  Tps.unsubscribe domain sub

let () =
  Alcotest.run "tps"
    [
      ( "matching",
        [
          Alcotest.test_case "conformant subscriber receives" `Quick
            test_conformant_subscriber_receives;
          Alcotest.test_case "non-conformant ignored" `Quick
            test_non_conformant_subscriber_ignored;
          Alcotest.test_case "mixed subscribers" `Quick
            test_multiple_subscribers_mixed;
          Alcotest.test_case "no self delivery" `Quick
            test_publisher_is_not_self_delivered;
          Alcotest.test_case "unsubscribe" `Quick test_unsubscribe;
        ] );
      ( "economics",
        [
          Alcotest.test_case "code download amortized" `Quick
            test_stream_of_events_amortizes_code_download;
          Alcotest.test_case "delivery records source" `Quick
            test_deliveries_record_source;
        ] );
    ]
