(* Tests for the extension features: behavioral conformance probing
   (§4.1's "implicit behavioral type conformance", primitive fragment)
   and compound types (§2.2). *)

open Pti_cts
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Behavioral = Pti_conformance.Behavioral
module Compound = Pti_conformance.Compound
module Mapping = Pti_conformance.Mapping
module Proxy = Pti_proxy.Dynamic_proxy
module Demo = Pti_demo.Demo_types
module Idl = Pti_idl.Idl

let registry =
  Demo.fresh_registry [ Demo.news_assembly (); Demo.social_assembly () ]

let resolver = Td.registry_resolver registry
let checker = Checker.create ~resolver ()

let desc name = Option.get (resolver name)

let mapping ~actual ~interest =
  match Checker.check checker ~actual:(desc actual) ~interest:(desc interest) with
  | Checker.Conformant m -> m
  | Checker.Not_conformant _ -> Alcotest.failf "%s !<= %s" actual interest

let get_string = function
  | Value.Vstring s -> s
  | v -> Alcotest.failf "expected string, got %s" (Value.type_name v)

(* ----------------------------- behavioral -------------------------- *)

let news_cd = Registry.find_exn registry Demo.news_person
let social_cd = Registry.find_exn registry Demo.social_person

let test_behavioral_agreeing_pair () =
  let m = mapping ~actual:Demo.social_person ~interest:Demo.news_person in
  let report =
    Behavioral.probe registry ~actual:social_cd ~interest:news_cd ~mapping:m ()
  in
  Alcotest.(check bool) "probed several methods" true (report.Behavioral.probed >= 4);
  Alcotest.(check (list pass)) "no disagreements" []
    report.Behavioral.disagreements;
  Alcotest.(check bool) "conformant" true (Behavioral.conformant report)

let test_behavioral_divergence_detected () =
  (* Structurally identical to newsw.Person's primitive methods, but greet
     speaks French: structural rules accept it, behavioral probing does
     not. *)
  let src =
    {|
assembly "french-asm";
namespace frenchw;
class Person {
  field name : string;
  field age : int;
  ctor(n : string, a : int) { name = n; age = a; }
  method getName() : string { return name; }
  method setName(v : string) : void { name = v; }
  method getAge() : int { return age; }
  method setAge(v : int) : void { age = v; }
  method greet() : string { return "Bonjour, " ^ name; }
  method older(years : int) : int { return age + years; }
}
|}
  in
  let asm =
    match Idl.parse_assembly src with
    | Ok a -> a
    | Error e -> Alcotest.failf "parse: %a" Idl.pp_error e
  in
  let reg = Registry.create () in
  Assembly.load reg asm;
  (* A trimmed interest type covering only the primitive methods. *)
  let interest_src =
    {|
assembly "client-asm";
namespace clientw;
class Person {
  field name : string;
  field age : int;
  ctor(n : string, a : int) { name = n; age = a; }
  method getName() : string { return name; }
  method setName(v : string) : void { name = v; }
  method getAge() : int { return age; }
  method setAge(v : int) : void { age = v; }
  method greet() : string { return "Hello, " ^ name; }
  method older(years : int) : int { return age + years; }
}
|}
  in
  let interest_asm =
    match Idl.parse_assembly interest_src with
    | Ok a -> a
    | Error e -> Alcotest.failf "parse: %a" Idl.pp_error e
  in
  Assembly.load reg interest_asm;
  let res = Td.registry_resolver reg in
  let ch = Checker.create ~resolver:res () in
  let actual_cd = Registry.find_exn reg "frenchw.Person" in
  let interest_cd = Registry.find_exn reg "clientw.Person" in
  let m =
    match
      Checker.check ch
        ~actual:(Td.of_class actual_cd)
        ~interest:(Td.of_class interest_cd)
    with
    | Checker.Conformant m -> m
    | Checker.Not_conformant _ ->
        Alcotest.fail "french person should be structurally conformant"
  in
  let report =
    Behavioral.probe reg ~actual:actual_cd ~interest:interest_cd ~mapping:m ()
  in
  Alcotest.(check bool) "divergence found" false (Behavioral.conformant report);
  Alcotest.(check bool) "greet is the culprit" true
    (List.exists
       (fun d -> d.Behavioral.d_method = "greet")
       report.Behavioral.disagreements);
  (* Agreement methods produce no disagreements. *)
  Alcotest.(check bool) "older agrees" true
    (not
       (List.exists
          (fun d -> d.Behavioral.d_method = "older")
          report.Behavioral.disagreements))

let test_behavioral_identity_mapping () =
  let m =
    Mapping.identity_mapping ~interest:Demo.news_person
      ~actual:Demo.news_person
  in
  let report =
    Behavioral.probe registry ~actual:news_cd ~interest:news_cd ~mapping:m ()
  in
  Alcotest.(check bool) "self-agreement" true (Behavioral.conformant report)

let test_behavioral_deterministic () =
  let m = mapping ~actual:Demo.social_person ~interest:Demo.news_person in
  let r1 =
    Behavioral.probe registry ~seed:9L ~actual:social_cd ~interest:news_cd
      ~mapping:m ()
  in
  let r2 =
    Behavioral.probe registry ~seed:9L ~actual:social_cd ~interest:news_cd
      ~mapping:m ()
  in
  Alcotest.(check int) "same probed" r1.Behavioral.probed r2.Behavioral.probed;
  Alcotest.(check int) "same disagreements"
    (List.length r1.Behavioral.disagreements)
    (List.length r2.Behavioral.disagreements)

(* ----------------------------- compound ---------------------------- *)

let facet_src =
  {|
assembly "facets";
namespace facets;
class Named {
  field name : string;
  ctor(n : string, a : int) { name = n; age = a; }
  field age : int;
  method getName() : string { return name; }
  method setName(v : string) : void { name = v; }
}
class Aged {
  field age : int;
  field name : string;
  ctor(n : string, a : int) { age = a; name = n; }
  method getAge() : int { return age; }
  method setAge(v : int) : void { age = v; }
}
|}

let facets_registry () =
  let asm =
    match Idl.parse_assembly facet_src with
    | Ok a -> a
    | Error e -> Alcotest.failf "parse: %a" Idl.pp_error e
  in
  let reg = Registry.create () in
  Assembly.load reg asm;
  Assembly.load reg (Demo.social_assembly ());
  reg

let test_compound_check_and_proxy () =
  (* socialw.person conforms to both facets? The facets' names ("Named",
     "Aged") do NOT conform to "person" under the name rule — compound
     facets are matched with wildcards, the natural pairing. *)
  let reg = facets_registry () in
  let res = Td.registry_resolver reg in
  let config = Pti_conformance.Config.with_wildcards in
  let ch = Checker.create ~config ~resolver:res () in
  let star d = { d with Td.ty_name = "*" } in
  let named = star (Option.get (res "facets.Named")) in
  let aged = star (Option.get (res "facets.Aged")) in
  let actual = Option.get (res Demo.social_person) in
  match Compound.check ch ~actual ~interests:[ named; aged ] with
  | Compound.Failed fs ->
      Alcotest.failf "compound should hold: %s"
        (String.concat "; "
           (List.concat_map
              (fun (n, fl) ->
                List.map (fun f -> n ^ ": " ^ f.Checker.message) fl)
              fs))
  | Compound.All_conformant pairs ->
      Alcotest.(check int) "two mappings" 2 (List.length pairs);
      let cx = Proxy.create_context reg ch in
      let target =
        Demo.make_social_person reg ~name:"Compound" ~age:51
      in
      let proxy =
        Proxy.wrap_compound cx
          ~interests:
            (List.map (fun (n, m) -> (n, m)) pairs)
          target
      in
      (* Both facets' vocabularies work on one proxy. *)
      Alcotest.(check string) "getName via Named facet" "Compound"
        (Eval.call reg proxy "getName" [] |> get_string);
      (match Eval.call reg proxy "getAge" [] with
      | Value.Vint 51 -> ()
      | v -> Alcotest.failf "getAge gave %s" (Value.to_string v));
      ignore (Eval.call reg proxy "setAge" [ Value.Vint 52 ]);
      (match Eval.call reg proxy "getAge" [] with
      | Value.Vint 52 -> ()
      | v -> Alcotest.failf "setAge not visible: %s" (Value.to_string v));
      Alcotest.(check string) "compound interface label"
        "[facets.*, facets.*]"
        (match proxy with
        | Value.Vproxy p -> p.Value.px_interface
        | _ -> "?")

let test_compound_fails_when_one_member_fails () =
  let reg = facets_registry () in
  Assembly.load reg (Demo.printer_assembly ());
  let res = Td.registry_resolver reg in
  let config = Pti_conformance.Config.with_wildcards in
  let ch = Checker.create ~config ~resolver:res () in
  let star d = { d with Td.ty_name = "*" } in
  let named = star (Option.get (res "facets.Named")) in
  let printer = star (Option.get (res Demo.printer)) in
  let actual = Option.get (res Demo.social_person) in
  match Compound.check ch ~actual ~interests:[ named; printer ] with
  | Compound.All_conformant _ ->
      Alcotest.fail "person is no printer, compound must fail"
  | Compound.Failed fs ->
      Alcotest.(check int) "exactly the failing member" 1 (List.length fs);
      Alcotest.(check string) "which one" "printw.*" (fst (List.hd fs))

let test_compound_empty_rejected () =
  let actual = desc Demo.social_person in
  match Compound.check checker ~actual ~interests:[] with
  | _ -> Alcotest.fail "empty compound should raise"
  | exception Invalid_argument _ -> ()

(* ----------------------------- baselines --------------------------- *)

let test_baselines () =
  let module B = Builder in
  let module E = Expr in
  let iface =
    B.interface_ ~ns:[ "q" ] ~assembly:"q" "person"
    |> B.abstract_method "getName" [] Ty.String
    |> B.build
  in
  let declared =
    B.class_ ~ns:[ "d" ] ~assembly:"d" "Person" ~interfaces:[ "q.person" ]
    |> B.field "name" Ty.String
    |> B.method_ "getName" [] Ty.String ~body:(E.get "name")
    |> B.build
  in
  let independent_exact =
    B.class_ ~ns:[ "i" ] ~assembly:"i" "person"
    |> B.field "name" Ty.String
    |> B.method_ "getName" [] Ty.String ~body:(E.get "name")
    |> B.build
  in
  let renamed =
    B.class_ ~ns:[ "r" ] ~assembly:"r" "Person"
    |> B.field "name" Ty.String
    |> B.method_ "GETNAME" [ ("pad", Ty.Int) ] Ty.String ~body:(E.get "name")
    |> B.build
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg)
    [ iface; declared; independent_exact; renamed ];
  let res = Td.registry_resolver reg in
  let ch = Checker.create ~resolver:res () in
  let interest = Td.of_class iface in
  let module Bl = Pti_conformance.Baselines in
  (* Nominal: only the declared implementation; reflexive on itself. *)
  Alcotest.(check bool) "nominal declared" true
    (Bl.nominal ch ~actual:(Td.of_class declared) ~interest);
  Alcotest.(check bool) "nominal reflexive" true
    (Bl.nominal ch ~actual:interest ~interest);
  Alcotest.(check bool) "nominal independent" false
    (Bl.nominal ch ~actual:(Td.of_class independent_exact) ~interest);
  (* Laufer: tagging gates everything; exact signatures required. *)
  let all_tagged _ = true and none_tagged _ = false in
  Alcotest.(check bool) "laufer tagged exact" true
    (Bl.laufer ~resolver:res ~tagged:all_tagged
       ~actual:(Td.of_class independent_exact) ~interest);
  Alcotest.(check bool) "laufer untagged" false
    (Bl.laufer ~resolver:res ~tagged:none_tagged
       ~actual:(Td.of_class independent_exact) ~interest);
  Alcotest.(check bool) "laufer arity mismatch" false
    (Bl.laufer ~resolver:res ~tagged:all_tagged ~actual:(Td.of_class renamed)
       ~interest);
  (* Laufer needs an interface as interest. *)
  Alcotest.(check bool) "laufer class interest" false
    (Bl.laufer ~resolver:res ~tagged:all_tagged
       ~actual:(Td.of_class independent_exact)
       ~interest:(Td.of_class declared));
  (* The implicit rules subsume both baselines on these candidates. *)
  Alcotest.(check bool) "implicit accepts declared" true
    (Checker.verdict_ok
       (Checker.check ch ~actual:(Td.of_class declared) ~interest));
  Alcotest.(check bool) "implicit accepts independent" true
    (Checker.verdict_ok
       (Checker.check ch ~actual:(Td.of_class independent_exact) ~interest))

let test_compound_notation () =
  Alcotest.(check string) "notation" "[a.A, b.B]"
    (Compound.notation [ "a.A"; "b.B" ])

let () =
  Alcotest.run "extensions"
    [
      ( "behavioral",
        [
          Alcotest.test_case "agreeing pair" `Quick
            test_behavioral_agreeing_pair;
          Alcotest.test_case "divergence detected" `Quick
            test_behavioral_divergence_detected;
          Alcotest.test_case "identity mapping" `Quick
            test_behavioral_identity_mapping;
          Alcotest.test_case "deterministic" `Quick
            test_behavioral_deterministic;
        ] );
      ( "compound",
        [
          Alcotest.test_case "check + proxy" `Quick
            test_compound_check_and_proxy;
          Alcotest.test_case "partial failure" `Quick
            test_compound_fails_when_one_member_fails;
          Alcotest.test_case "empty rejected" `Quick
            test_compound_empty_rejected;
          Alcotest.test_case "notation" `Quick test_compound_notation;
        ] );
      ( "baselines",
        [ Alcotest.test_case "nominal and laufer" `Quick test_baselines ] );
    ]
