(* Tests for the IDL front-end: parsing, lowering, execution of parsed
   code, and interoperability of IDL-authored types with builder-authored
   ones. *)

open Pti_cts
module Idl = Pti_idl.Idl
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Demo = Pti_demo.Demo_types

let get_string = function
  | Value.Vstring s -> s
  | v -> Alcotest.failf "expected string, got %s" (Value.type_name v)

let get_int = function
  | Value.Vint i -> i
  | v -> Alcotest.failf "expected int, got %s" (Value.type_name v)

let parse_ok ?assembly src =
  match Idl.parse_classes ?assembly src with
  | Ok cds -> cds
  | Error e -> Alcotest.failf "parse failed: %a" Idl.pp_error e

let person_src =
  {|
assembly "idl-asm";
namespace idlw;

class Address {
  property street : string;
  property city : string;
  ctor(s : string, c : string) { street = s; city = c; }
  method format() : string { return street ^ ", " ^ city; }
}

class Person {
  field name : string;
  field age : int;
  property home : idlw.Address;
  property spouse : idlw.Person;
  ctor(n : string, a : int) { name = n; age = a; }
  method getName() : string { return name; }
  method setName(v : string) : void { name = v; }
  method getAge() : int { return age; }
  method setAge(v : int) : void { age = v; }
  method greet() : string { return "Hello, " ^ name; }
  method older(years : int) : int { return age + years; }
}
|}

let idl_registry () =
  let asm =
    match Idl.parse_assembly person_src with
    | Ok a -> a
    | Error e -> Alcotest.failf "assembly parse failed: %a" Idl.pp_error e
  in
  let reg = Registry.create () in
  Assembly.load reg asm;
  reg

let test_parse_structure () =
  let cds = parse_ok person_src in
  Alcotest.(check int) "two classes" 2 (List.length cds);
  let person = List.nth cds 1 in
  Alcotest.(check string) "qname" "idlw.Person" (Meta.qualified_name person);
  Alcotest.(check string) "assembly" "idl-asm" person.Meta.td_assembly;
  (* property expands to field + accessors *)
  Alcotest.(check int) "fields" 4 (List.length person.Meta.td_fields);
  Alcotest.(check bool) "getHome exists" true
    (List.exists
       (fun m -> m.Meta.m_name = "getHome")
       person.Meta.td_methods);
  Alcotest.(check int) "one ctor" 1 (List.length person.Meta.td_ctors)

let test_parsed_code_runs () =
  let reg = idl_registry () in
  let p =
    Eval.construct reg "idlw.Person" [ Value.Vstring "Ida"; Value.Vint 28 ]
  in
  Alcotest.(check string) "getName" "Ida"
    (Eval.call reg p "getName" [] |> get_string);
  Alcotest.(check string) "greet" "Hello, Ida"
    (Eval.call reg p "greet" [] |> get_string);
  Alcotest.(check int) "older" 31 (Eval.call reg p "older" [ Value.Vint 3 ] |> get_int);
  ignore (Eval.call reg p "setName" [ Value.Vstring "Io" ]);
  Alcotest.(check string) "setName effect" "Io"
    (Eval.call reg p "getName" [] |> get_string);
  let home =
    Eval.construct reg "idlw.Address"
      [ Value.Vstring "5 Rue"; Value.Vstring "Lausanne" ]
  in
  ignore (Eval.call reg p "setHome" [ home ]);
  let back = Eval.call reg p "getHome" [] in
  Alcotest.(check string) "nested format" "5 Rue, Lausanne"
    (Eval.call reg back "format" [] |> get_string)

let test_idl_type_conforms_to_builder_type () =
  (* The IDL-authored Person is implicitly structurally conformant to the
     builder-authored newsw.Person: the front end produces first-class CTS
     metadata. *)
  let reg = idl_registry () in
  Assembly.load reg (Demo.news_assembly ());
  let res = Td.registry_resolver reg in
  let checker = Checker.create ~resolver:res () in
  match
    Checker.check checker
      ~actual:(Option.get (res "idlw.Person"))
      ~interest:(Option.get (res Demo.news_person))
  with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant fs ->
      Alcotest.failf "idl person should conform: %s"
        (String.concat "; "
           (List.map (fun f -> f.Checker.message) fs))

let test_control_flow_statements () =
  let src =
    {|
class Math {
  method sum(n : int) : int {
    let acc = 0;
    let i = 0;
    while (i < n) { acc = acc + i; i = i + 1; }
    return acc;
  }
  method clamp(x : int, lo : int, hi : int) : int {
    if (x < lo) { return lo; } else {
      if (x > hi) { return hi; } else { return x; }
    }
  }
  method parity(n : int) : string {
    if (n % 2 == 0) { return "even"; } else { return "odd"; }
  }
}
|}
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg) (parse_ok src);
  let m = Eval.construct reg "Math" [] in
  Alcotest.(check int) "while sum" 45
    (Eval.call reg m "sum" [ Value.Vint 10 ] |> get_int);
  Alcotest.(check int) "clamp low" 5
    (Eval.call reg m "clamp" [ Value.Vint 1; Value.Vint 5; Value.Vint 9 ]
    |> get_int);
  Alcotest.(check int) "clamp high" 9
    (Eval.call reg m "clamp" [ Value.Vint 50; Value.Vint 5; Value.Vint 9 ]
    |> get_int);
  Alcotest.(check string) "parity" "odd"
    (Eval.call reg m "parity" [ Value.Vint 3 ] |> get_string)

let test_throw_and_catch () =
  let src =
    {|
class Guard {
  method risky(x : int) : int {
    if (x < 0) { throw "negative input"; } else { return x * 2; }
  }
  method safe(x : int) : string {
    try { let r = this.risky(x); return "ok: " ^ r.toString(); }
    catch (e) { return "error: " ^ e; }
  }
}
|}
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg) (parse_ok src);
  let g = Eval.construct reg "Guard" [] in
  Alcotest.(check string) "happy path" "ok: 4"
    (Eval.call reg g "safe" [ Value.Vint 2 ] |> get_string);
  Alcotest.(check string) "caught" "error: negative input"
    (Eval.call reg g "safe" [ Value.Vint (-1) ] |> get_string);
  match Eval.call reg g "risky" [ Value.Vint (-5) ] with
  | _ -> Alcotest.fail "uncaught idl throw should raise"
  | exception Eval.Runtime_error _ -> ()

let test_for_and_arrays () =
  let src =
    {|
class Vec {
  method sum(n : int) : int {
    let arr = new int[] { 1, 2, 3, 4 };
    let acc = 0;
    for (let i = 0; i < arr.length(); i = i + 1) { acc = acc + arr[i]; }
    for (let j = 0; j < n; j = j + 1) { acc = acc + 100; }
    return acc;
  }
  method set_get() : int {
    let arr = new int[] { 0, 0 };
    arr[1] = 42;
    return arr[1];
  }
  method empty_len() : int {
    let arr = new string[] { };
    return arr.length();
  }
}
|}
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg) (parse_ok src);
  let v = Eval.construct reg "Vec" [] in
  Alcotest.(check int) "for over array" 210
    (Eval.call reg v "sum" [ Value.Vint 2 ] |> get_int);
  Alcotest.(check int) "index set/get" 42
    (Eval.call reg v "set_get" [] |> get_int);
  Alcotest.(check int) "empty literal" 0
    (Eval.call reg v "empty_len" [] |> get_int)

let test_static_and_new () =
  let src =
    {|
namespace s;
class Factory {
  static method fresh(n : string) : s.Widget { return new s.Widget(n); }
}
class Widget {
  field tag : string;
  ctor(t : string) { tag = t; }
  method getTag() : string { return tag; }
}
|}
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg) (parse_ok src);
  let w =
    Eval.call_static reg "s.Factory" "fresh" [ Value.Vstring "gizmo" ]
  in
  Alcotest.(check string) "factory result" "gizmo"
    (Eval.call reg w "getTag" [] |> get_string);
  (* Qualified static calls parse too. *)
  let src2 =
    {|
class Caller {
  method go() : string {
    let w = s.Factory::fresh("q");
    return w.getTag();
  }
}
|}
  in
  List.iter (Registry.register reg) (parse_ok src2);
  let c = Eval.construct reg "Caller" [] in
  Alcotest.(check string) "qualified static" "q"
    (Eval.call reg c "go" [] |> get_string)

let test_interfaces_and_inheritance () =
  let src =
    {|
namespace h;
interface INamed {
  method getName() : string;
}
class Base {
  property id : int;
}
class Thing extends h.Base implements h.INamed {
  property name : string;
}
|}
  in
  let cds = parse_ok src in
  let reg = Registry.create () in
  List.iter (Registry.register reg) cds;
  let thing = Registry.find_exn reg "h.Thing" in
  Alcotest.(check (option string)) "super" (Some "h.Base") thing.Meta.td_super;
  Alcotest.(check (list string)) "interfaces" [ "h.INamed" ]
    thing.Meta.td_interfaces;
  Alcotest.(check bool) "subtype closure" true
    (Registry.is_subtype reg ~sub:"h.Thing" ~super:"h.INamed");
  let iface = Registry.find_exn reg "h.INamed" in
  Alcotest.(check bool) "abstract method" true
    (List.for_all (fun m -> m.Meta.m_body = None) iface.Meta.td_methods)

let test_modifiers () =
  let src =
    {|
class Mods {
  private field secret : int;
  static method util() : int { return 1; }
}
|}
  in
  let cds = parse_ok src in
  let cd = List.hd cds in
  let f = List.hd cd.Meta.td_fields in
  Alcotest.(check bool) "private field" true
    (f.Meta.f_mods.Meta.visibility = Meta.Private);
  let m = List.hd cd.Meta.td_methods in
  Alcotest.(check bool) "static method" true m.Meta.m_mods.Meta.static

let test_field_initializers () =
  let src =
    {|
class Counter {
  field count : int = 42;
  method get() : int { return count; }
}
|}
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg) (parse_ok src);
  let c = Eval.construct reg "Counter" [] in
  Alcotest.(check int) "initializer ran" 42 (Eval.call reg c "get" [] |> get_int)

let test_parse_errors () =
  let cases =
    [
      ("", false) (* empty unit is fine: zero classes *);
      ("class { }", true);
      ("class X {", true);
      ("class X { field }", true);
      ("class X { method m() : int { return 1 } }", true) (* missing ';' *);
      ("class X { method m() : int { return 1; return 2; } }", true);
      ("klass X { }", true);
      ("class X { field f : ; }", true);
      ("class X { method m(: int) : void ; }", true);
      ("/* unterminated", true);
      ("class X { method m() : int { let x = \"abc; } }", true);
    ]
  in
  List.iter
    (fun (src, should_fail) ->
      match Idl.parse_classes src, should_fail with
      | Ok _, false | Error _, true -> ()
      | Ok _, true -> Alcotest.failf "should have failed: %s" src
      | Error e, false ->
          Alcotest.failf "should have parsed %s: %a" src Idl.pp_error e)
    cases

let test_error_positions () =
  match Idl.parse_classes "class X {\n  field broken\n}" with
  | Error e ->
      (* The parser reports the position of the offending token; for a
         declaration cut short that is the line of the member or the one
         after it. *)
      Alcotest.(check bool) "line in range" true
        (e.Idl.line >= 2 && e.Idl.line <= 3)
  | Ok _ -> Alcotest.fail "should not parse"

let test_deterministic_guids () =
  let a = parse_ok person_src and b = parse_ok person_src in
  List.iter2
    (fun x y ->
      Alcotest.(check bool)
        ("guid of " ^ Meta.qualified_name x)
        true
        (Pti_util.Guid.equal x.Meta.td_guid y.Meta.td_guid))
    a b

let test_operators_and_precedence () =
  let src =
    {|
class Ops {
  method arith() : int { return 2 + 3 * 4 - 10 / 2; }
  method logic(a : bool, b : bool) : bool { return a && b || !a; }
  method cmp(x : int) : bool { return 1 + x >= 3; }
  method neg(x : int) : int { return -x + 1; }
  method str(s : string) : string { return "[" ^ s ^ "]"; }
}
|}
  in
  let reg = Registry.create () in
  List.iter (Registry.register reg) (parse_ok src);
  let o = Eval.construct reg "Ops" [] in
  Alcotest.(check int) "arith" 9 (Eval.call reg o "arith" [] |> get_int);
  Alcotest.(check bool) "logic tt" true
    (Eval.call reg o "logic" [ Value.Vbool true; Value.Vbool true ]
    = Value.Vbool true);
  Alcotest.(check bool) "logic ff -> !a" true
    (Eval.call reg o "logic" [ Value.Vbool false; Value.Vbool false ]
    = Value.Vbool true);
  Alcotest.(check bool) "cmp" true
    (Eval.call reg o "cmp" [ Value.Vint 2 ] = Value.Vbool true);
  Alcotest.(check int) "neg" (-4) (Eval.call reg o "neg" [ Value.Vint 5 ] |> get_int);
  Alcotest.(check string) "concat" "[x]"
    (Eval.call reg o "str" [ Value.Vstring "x" ] |> get_string)

let test_idl_assembly_through_wire () =
  (* IDL-authored code survives the assembly XML codec (i.e., can be
     downloaded by peers). *)
  let asm =
    match Idl.parse_assembly person_src with
    | Ok a -> a
    | Error e -> Alcotest.failf "parse: %a" Idl.pp_error e
  in
  let wire = Pti_serial.Assembly_xml.to_string asm in
  match Pti_serial.Assembly_xml.of_string wire with
  | Error m -> Alcotest.failf "codec: %s" m
  | Ok asm' ->
      let reg = Registry.create () in
      Assembly.load reg asm';
      let p =
        Eval.construct reg "idlw.Person" [ Value.Vstring "W"; Value.Vint 1 ]
      in
      Alcotest.(check string) "still runs" "Hello, W"
        (Eval.call reg p "greet" [] |> get_string)

let () =
  Alcotest.run "idl"
    [
      ( "parsing",
        [
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "interfaces+inheritance" `Quick
            test_interfaces_and_inheritance;
          Alcotest.test_case "modifiers" `Quick test_modifiers;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "deterministic guids" `Quick
            test_deterministic_guids;
        ] );
      ( "execution",
        [
          Alcotest.test_case "parsed code runs" `Quick test_parsed_code_runs;
          Alcotest.test_case "control flow" `Quick test_control_flow_statements;
          Alcotest.test_case "static + new" `Quick test_static_and_new;
          Alcotest.test_case "throw/catch" `Quick test_throw_and_catch;
          Alcotest.test_case "for + arrays" `Quick test_for_and_arrays;
          Alcotest.test_case "field initializers" `Quick
            test_field_initializers;
          Alcotest.test_case "operators" `Quick test_operators_and_precedence;
        ] );
      ( "integration",
        [
          Alcotest.test_case "conforms to builder-authored type" `Quick
            test_idl_type_conforms_to_builder_type;
          Alcotest.test_case "survives the assembly codec" `Quick
            test_idl_assembly_through_wire;
        ] );
    ]
