(* Quickstart: the Person scenario of §3.1.

   Two programmers implemented "the same" Person type independently —
   different namespaces, method-name capitalisation, constructor argument
   order, GUIDs. A sender ships its person by value; the receiver, which
   only knows its own Person type, gets a usable object anyway.

   Run with:  dune exec examples/quickstart.exe *)

open Pti_cts
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Stats = Pti_net.Stats
module Demo = Pti_demo.Demo_types

let () =
  (* A tiny simulated LAN. *)
  let net = Net.create ~default_latency_ms:1.0 () in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net "receiver" in

  (* Each peer loads only its own programmer's code. *)
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());

  (* The receiver declares its type of interest: ITS OWN Person type. *)
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from person ->
      let reg = Peer.registry receiver in
      let name =
        match Eval.call reg person "getName" [] with
        | Value.Vstring s -> s
        | _ -> assert false
      in
      let greeting =
        match Eval.call reg person "greet" [] with
        | Value.Vstring s -> s
        | _ -> assert false
      in
      Printf.printf "receiver got a %s from %s\n"
        (Value.type_name person) from;
      Printf.printf "  getName()  = %S\n" name;
      Printf.printf "  greet()    = %S\n" greeting);

  (* The sender ships an instance of its own, different Person type. *)
  let alice =
    Demo.make_social_person (Peer.registry sender) ~name:"Alice" ~age:30
  in
  Printf.printf "sender ships a %s\n" (Value.type_name alice);
  Peer.send_value sender ~dst:"receiver" alice;

  (* Let the simulation run the whole Figure-1 protocol. *)
  Net.run net;

  Printf.printf "\nwire traffic:\n%s\n"
    (Format.asprintf "%a" Stats.pp (Net.stats net));
  Printf.printf "\nsimulated completion time: %.2f ms\n" (Net.now_ms net)
