(* Two languages, one type system, one wire.

   The paper's scenario at full stretch: a Person type written in the
   VB-flavoured definition language on one host, another Person written in
   the C#-flavoured one on the other, different namespaces and GUIDs —
   exchanged by value over the network and used through each side's own
   vocabulary.

   Run with:  dune exec examples/two_languages.exe *)

open Pti_cts
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Idl = Pti_idl.Idl
module Vbdl = Pti_idl.Vbdl

let vb_source =
  {|
Assembly "vb-people"
Namespace vbw

Class Person
  Dim name As String
  Dim age As Integer

  Sub New(n As String, a As Integer)
    name = n
    age = a
  End Sub

  Function getName() As String
    Return name
  End Function

  Sub setName(v As String)
    name = v
  End Sub

  Function getAge() As Integer
    Return age
  End Function

  Sub setAge(v As Integer)
    age = v
  End Sub

  Function greet() As String
    Return "G'day, " & name
  End Function
End Class
|}

let cs_source =
  {|
assembly "cs-people";
namespace csw;

class person {
  field age : int;
  field name : string;
  ctor(a : int, n : string) { age = a; name = n; }
  method GETNAME() : string { return name; }
  method SETNAME(v : string) : void { name = v; }
  method getage() : int { return age; }
  method setage(v : int) : void { age = v; }
  method GREET() : string { return "G'day, " ^ name; }
}
|}

let str = function Value.Vstring s -> s | _ -> assert false

let () =
  let vb_asm =
    match Vbdl.parse_assembly vb_source with
    | Ok a -> a
    | Error e ->
        Format.printf "VB error: %a@." Vbdl.pp_error e;
        exit 1
  in
  let cs_asm =
    match Idl.parse_assembly cs_source with
    | Ok a -> a
    | Error e ->
        Format.printf "C# error: %a@." Idl.pp_error e;
        exit 1
  in

  let net = Net.create () in
  let vb_host = Peer.create ~net "vb-host" in
  Peer.publish_assembly vb_host vb_asm;
  let cs_host = Peer.create ~net "cs-host" in
  Peer.publish_assembly cs_host cs_asm;

  (* Each host only understands its own language's Person. *)
  Peer.register_interest cs_host ~interest:"csw.person" (fun ~from v ->
      let reg = Peer.registry cs_host in
      Printf.printf "[cs-host] got %s from %s; GREET() = %S\n"
        (Value.type_name v) from
        (str (Eval.call reg v "GREET" [])));
  Peer.register_interest vb_host ~interest:"vbw.Person" (fun ~from v ->
      let reg = Peer.registry vb_host in
      Printf.printf "[vb-host] got %s from %s; greet() = %S\n"
        (Value.type_name v) from
        (str (Eval.call reg v "greet" [])));

  (* VB -> C# ... *)
  let vb_person =
    Eval.construct (Peer.registry vb_host) "vbw.Person"
      [ Value.Vstring "Vera"; Value.Vint 41 ]
  in
  Peer.send_value vb_host ~dst:"cs-host" vb_person;
  Net.run net;

  (* ... and C# -> VB. *)
  let cs_person =
    Eval.construct (Peer.registry cs_host) "csw.person"
      [ Value.Vint 33; Value.Vstring "Carl" ]
  in
  Peer.send_value cs_host ~dst:"vb-host" cs_person;
  Net.run net;

  print_endline
    "\nBoth directions conform: two programmers, two languages, two GUIDs,\n\
     one logical Person module."
