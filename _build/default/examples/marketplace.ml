(* The whole system in one scenario: a resource marketplace over a lossy
   WAN.

   - Four organisations, each with its own independently authored types
     (news / social / printer / print-service worlds).
   - Publish/subscribe: the wire agency publishes events; the newsroom
     (different event type) receives them, telemetry (printer types) never
     matches and never downloads event code.
   - Borrow/lend: the lab lends its printer; the newsroom borrows it
     through its own printer vocabulary and prints every received story.
   - The WAN loses 10% of packets; the ARQ layer keeps the protocol
     complete, at a visible byte/latency cost.

   Run with:  dune exec examples/marketplace.exe *)

open Pti_cts
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Stats = Pti_net.Stats
module Tps = Pti_tps.Tps
module Bl = Pti_bl.Borrow_lend
module Demo = Pti_demo.Demo_types

let str v = match v with Value.Vstring s -> s | _ -> assert false
let int_of v = match v with Value.Vint i -> i | _ -> assert false

let () =
  let net =
    Net.create ~default_latency_ms:5. ~drop_rate:0.10
      ~reliability:Net.default_reliability ~seed:7L ()
  in

  (* Organisations. *)
  let agency = Peer.create ~net "agency" in
  Peer.publish_assembly agency (Demo.social_assembly ());
  let newsroom = Peer.create ~net "newsroom" in
  Peer.publish_assembly newsroom (Demo.news_assembly ());
  Peer.publish_assembly newsroom (Demo.printsvc_assembly ());
  let lab = Peer.create ~net "lab" in
  Peer.publish_assembly lab (Demo.printer_assembly ());
  let telemetry = Peer.create ~net "telemetry" in
  Peer.publish_assembly telemetry (Demo.printsvc_assembly ());

  (* The lab lends its printer. *)
  let market = Bl.create () in
  let lab_printer = Demo.make_printer (Peer.registry lab) ~label:"lab-laser" in
  ignore (Bl.lend market lab ~capacity:4 lab_printer);

  (* The newsroom borrows it through its own vocabulary... *)
  let printer_proxy =
    match Bl.borrow market newsroom ~interest:Demo.printsvc with
    | Ok (proxy, _) -> proxy
    | Error e ->
        Format.printf "borrow failed: %a@." Bl.pp_borrow_error e;
        exit 1
  in

  (* ...and prints every story it receives from the agency. *)
  let domain = Tps.create ~net ~broker:"broker" () in
  let printed = ref [] in
  let _newsroom_sub =
    Tps.subscribe domain newsroom ~interest:Demo.news_event
      ~handler:(fun ~from:_ ev ->
        let reg = Peer.registry newsroom in
        let headline = str (Eval.call reg ev "getHeadline" []) in
        let job =
          int_of (Eval.call reg printer_proxy "PRINT" [ Value.Vstring headline ])
        in
        printed := (headline, job) :: !printed)
      ()
  in
  let telemetry_sub =
    Tps.subscribe domain telemetry ~interest:Demo.printsvc ()
  in

  let reg = Peer.registry agency in
  List.iteri
    (fun i (headline, author, age) ->
      let author = Demo.make_social_person reg ~name:author ~age in
      Tps.publish domain agency
        (Demo.make_social_event reg ~headline ~author ~priority:i);
      Tps.run domain)
    [
      ("Storm over the lake", "Iris", 29);
      ("Council adopts budget", "Jon", 45);
      ("Machine types unified at runtime", "Kay", 38);
    ];

  print_endline "printed stories (newsroom vocabulary over lab hardware):";
  List.iter
    (fun (headline, job) -> Printf.printf "  job #%d: %s\n" job headline)
    (List.rev !printed);
  Printf.printf "\nlab-side printer counter: %d\n"
    (int_of (Eval.call (Peer.registry lab) lab_printer "getPrinted" []));
  Printf.printf "telemetry deliveries: %d (never matched, never downloaded)\n"
    (List.length (Tps.deliveries telemetry_sub));
  Printf.printf
    "\nWAN conditions: %d attempts dropped, %d retransmissions, %d lost\n"
    (Net.dropped_messages net)
    (Net.retransmissions net)
    (Net.lost_messages net);
  Printf.printf "wire traffic:\n%s\n" (Format.asprintf "%a" Stats.pp (Net.stats net))
