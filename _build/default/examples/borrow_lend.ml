(* The borrow/lend abstraction with a conformance criterion (§8).

   A lab lends its Printer. A visiting laptop knows printers only through
   its own svcw.printer type; the borrow request is matched by implicit
   structural conformance, and invocations travel pass-by-reference to the
   lender's object.

   Run with:  dune exec examples/borrow_lend.exe *)

open Pti_cts
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Bl = Pti_bl.Borrow_lend
module Demo = Pti_demo.Demo_types

let int_of v = match v with Value.Vint i -> i | _ -> assert false
let str v = match v with Value.Vstring s -> s | _ -> assert false

let () =
  let net = Net.create ~default_latency_ms:3.0 () in
  let lab = Peer.create ~net "lab" in
  Peer.publish_assembly lab (Demo.printer_assembly ());
  let laptop = Peer.create ~net "laptop" in
  Peer.publish_assembly laptop (Demo.printsvc_assembly ());

  let market = Bl.create () in
  let printer = Demo.make_printer (Peer.registry lab) ~label:"lab-laser" in
  let _listing = Bl.lend market lab ~capacity:2 printer in
  Printf.printf "lab lends a %s\n" (Value.type_name printer);

  match Bl.borrow market laptop ~interest:Demo.printsvc with
  | Error e ->
      Format.printf "borrow failed: %a@." Bl.pp_borrow_error e
  | Ok (proxy, lease) ->
      Printf.printf "laptop borrowed it as %s\n" (Value.type_name proxy);
      let reg = Peer.registry laptop in
      (* The laptop speaks its own vocabulary: PRINT / STATUS. *)
      List.iter
        (fun doc ->
          let n = int_of (Eval.call reg proxy "PRINT" [ Value.Vstring doc ]) in
          Printf.printf "  printed %S (job #%d)\n" doc n)
        [ "thesis.pdf"; "poster.svg"; "slides.key" ];
      Printf.printf "  remote STATUS() = %S\n"
        (str (Eval.call reg proxy "STATUS" []));
      (* The state lives on the lender. *)
      Printf.printf "lab-side counter: %d\n"
        (int_of (Eval.call (Peer.registry lab) printer "getPrinted" []));
      Bl.return_resource market lease;
      Printf.printf "lease returned; simulated time %.2f ms\n" (Net.now_ms net)
