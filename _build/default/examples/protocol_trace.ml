(* Watch the optimistic protocol happen: a message trace of the §3.1
   quickstart scenario, rendered as the sequence chart of Figure 1.

   Run with:  dune exec examples/protocol_trace.exe *)

module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Trace = Pti_net.Trace
module Demo = Pti_demo.Demo_types

let () =
  let net = Net.create () in
  let trace = Trace.attach net in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());

  print_endline "=== first object of a never-seen type (Figure 1 in full) ===";
  Peer.send_value sender ~dst:"receiver"
    (Demo.make_social_person (Peer.registry sender) ~name:"Alice" ~age:30);
  Net.run net;
  Format.printf "%a@." Trace.pp_sequence trace;
  let first_count = Trace.count trace () in

  Trace.clear trace;
  print_endline "=== second object of the same type (fast path) ===";
  Peer.send_value sender ~dst:"receiver"
    (Demo.make_social_person (Peer.registry sender) ~name:"Bob" ~age:31);
  Net.run net;
  Format.printf "%a@." Trace.pp_sequence trace;

  Printf.printf
    "first object: %d messages; second: everything was cached, %d message(s)\n"
    first_count (Trace.count trace ())
