(* Compound types and behavioral probing — the two extensions the paper's
   related work and taxonomy point at (§2.2, §4.1).

   A client describes two *facets* it cares about — something Named and
   something Aged — in the textual IDL, with wildcard type names. A
   received object of a never-seen type satisfies the compound interest
   [Named, Aged] structurally; behavioral probing then double-checks that
   the mapped methods actually behave like the client's reference
   implementation before the object is put to work.

   Run with:  dune exec examples/facets.exe *)

open Pti_cts
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Config = Pti_conformance.Config
module Compound = Pti_conformance.Compound
module Behavioral = Pti_conformance.Behavioral
module Proxy = Pti_proxy.Dynamic_proxy
module Idl = Pti_idl.Idl
module Demo = Pti_demo.Demo_types

let facets_src =
  {|
assembly "client-facets";
namespace client;

// Reference facet implementations double as behavioral oracles.
class Named {
  field name : string;
  field age : int;
  ctor(n : string, a : int) { name = n; age = a; }
  method getName() : string { return name; }
  method setName(v : string) : void { name = v; }
}

class Aged {
  field name : string;
  field age : int;
  ctor(n : string, a : int) { name = n; age = a; }
  method getAge() : int { return age; }
  method setAge(v : int) : void { age = v; }
  method older(years : int) : int { return age + years; }
}
|}

let () =
  let reg = Registry.create () in
  (match Idl.parse_assembly facets_src with
  | Ok asm -> Assembly.load reg asm
  | Error e -> Format.printf "IDL error: %a@." Idl.pp_error e);
  (* The "remote" type arrives: socialw.person, unknown to the client's
     authors. *)
  Assembly.load reg (Demo.social_assembly ());

  let res = Td.registry_resolver reg in
  let checker = Checker.create ~config:Config.with_wildcards ~resolver:res () in
  let star name =
    { (Option.get (res name)) with Td.ty_name = "*" }
  in
  let named = star "client.Named" and aged = star "client.Aged" in
  let actual = Option.get (res Demo.social_person) in

  match Compound.check checker ~actual ~interests:[ named; aged ] with
  | Compound.Failed fs ->
      List.iter
        (fun (n, fl) ->
          List.iter
            (fun f -> Format.printf "%s failed: %a@." n Checker.pp_failure f)
            fl)
        fs
  | Compound.All_conformant pairs ->
      Printf.printf "structural: %s conforms to %s\n" Demo.social_person
        (Compound.notation (List.map fst pairs));

      (* Behavioral acceptance test per facet (primitive methods only). *)
      let social_cd = Registry.find_exn reg Demo.social_person in
      let probe facet_name =
        let interest_cd = Registry.find_exn reg facet_name in
        let mapping =
          match
            Checker.check checker
              ~actual:(Option.get (res Demo.social_person))
              ~interest:{ (Td.of_class interest_cd) with Td.ty_name = "*" }
          with
          | Checker.Conformant m -> m
          | Checker.Not_conformant _ -> assert false
        in
        let report =
          Behavioral.probe reg ~actual:social_cd ~interest:interest_cd
            ~mapping ()
        in
        Printf.printf "behavioral [%s]: probed %d methods, %s\n" facet_name
          report.Behavioral.probed
          (if Behavioral.conformant report then "all agree"
           else "DIVERGENT");
        Format.printf "%a@." Behavioral.pp_report report
      in
      probe "client.Named";
      probe "client.Aged";

      (* Put the compound proxy to work. *)
      let cx = Proxy.create_context reg checker in
      let target = Demo.make_social_person reg ~name:"Facet" ~age:40 in
      let proxy = Proxy.wrap_compound cx ~interests:pairs target in
      Printf.printf "\nusing the compound proxy %s:\n" (Value.type_name proxy);
      (match Eval.call reg proxy "getName" [] with
      | Value.Vstring s -> Printf.printf "  getName() = %S\n" s
      | _ -> ());
      (match Eval.call reg proxy "older" [ Value.Vint 25 ] with
      | Value.Vint n -> Printf.printf "  older(25)  = %d\n" n
      | _ -> ());
      ignore (Eval.call reg proxy "setAge" [ Value.Vint 41 ]);
      match Eval.call reg proxy "getAge" [] with
      | Value.Vint n -> Printf.printf "  after setAge(41), getAge() = %d\n" n
      | _ -> ()
