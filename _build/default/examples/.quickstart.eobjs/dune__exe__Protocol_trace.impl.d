examples/protocol_trace.ml: Format Printf Pti_core Pti_demo Pti_net
