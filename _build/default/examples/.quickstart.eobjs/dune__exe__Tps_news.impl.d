examples/tps_news.ml: Eval Format List Printf Pti_core Pti_cts Pti_demo Pti_net Pti_tps Value
