examples/polyglot.mli:
