examples/two_languages.ml: Eval Format Printf Pti_core Pti_cts Pti_idl Pti_net Value
