examples/tps_news.mli:
