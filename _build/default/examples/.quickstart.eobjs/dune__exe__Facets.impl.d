examples/facets.ml: Assembly Eval Format List Option Printf Pti_conformance Pti_cts Pti_demo Pti_idl Pti_proxy Pti_typedesc Registry Value
