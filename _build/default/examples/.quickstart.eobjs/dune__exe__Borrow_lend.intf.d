examples/borrow_lend.mli:
