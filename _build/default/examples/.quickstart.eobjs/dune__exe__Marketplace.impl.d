examples/marketplace.ml: Eval Format List Printf Pti_bl Pti_core Pti_cts Pti_demo Pti_net Pti_tps Value
