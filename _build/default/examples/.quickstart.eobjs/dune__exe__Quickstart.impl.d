examples/quickstart.ml: Eval Format Printf Pti_core Pti_cts Pti_demo Pti_net Value
