examples/marketplace.mli:
