examples/facets.mli:
