examples/quickstart.mli:
