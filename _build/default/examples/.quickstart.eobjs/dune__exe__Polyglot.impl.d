examples/polyglot.ml: Eval Format List Printf Pti_conformance Pti_core Pti_cts Pti_demo Pti_net Value
