examples/two_languages.mli:
