(* Type-based publish/subscribe with interoperable event types (§8).

   A news agency publishes events of its own NewsEvent type. Subscribers
   written by other teams — with their own structurally conformant event
   types — receive them transparently; a telemetry subscriber with an
   unrelated interest type never even downloads the event code.

   Run with:  dune exec examples/tps_news.exe *)

open Pti_cts
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Stats = Pti_net.Stats
module Tps = Pti_tps.Tps
module Demo = Pti_demo.Demo_types

let str v = match v with Value.Vstring s -> s | _ -> assert false

let () =
  let net = Net.create ~default_latency_ms:2.0 () in
  let domain = Tps.create ~net ~broker:"broker" () in

  (* The agency publishes events using the "social" team's types. *)
  let agency = Peer.create ~net "agency" in
  Peer.publish_assembly agency (Demo.social_assembly ());

  (* Subscriber 1: the "news" team — conformant but different types. *)
  let newsroom = Peer.create ~net "newsroom" in
  Peer.publish_assembly newsroom (Demo.news_assembly ());
  let newsroom_sub =
    Tps.subscribe domain newsroom ~interest:Demo.news_event
      ~handler:(fun ~from:_ ev ->
        let reg = Peer.registry newsroom in
        Printf.printf "[newsroom] %s\n"
          (str (Eval.call reg ev "summary" [])))
      ()
  in

  (* Subscriber 2: a telemetry service interested only in printers. *)
  let telemetry = Peer.create ~net "telemetry" in
  Peer.publish_assembly telemetry (Demo.printsvc_assembly ());
  let telemetry_sub =
    Tps.subscribe domain telemetry ~interest:Demo.printsvc ()
  in

  (* Publish a stream of events. *)
  let reg = Peer.registry agency in
  let reporters =
    [ ("Iris", 29); ("Jon", 45); ("Kay", 38) ]
    |> List.map (fun (name, age) -> Demo.make_social_person reg ~name ~age)
  in
  List.iteri
    (fun i author ->
      let ev =
        Demo.make_social_event reg
          ~headline:(Printf.sprintf "Dispatch #%d" (i + 1))
          ~author ~priority:i
      in
      Tps.publish domain agency ev;
      Tps.run domain)
    reporters;

  Printf.printf "\nnewsroom deliveries:  %d\n"
    (List.length (Tps.deliveries newsroom_sub));
  Printf.printf "telemetry deliveries: %d (its interest never matched)\n"
    (List.length (Tps.deliveries telemetry_sub));

  let s = Net.stats net in
  Printf.printf "\nassembly downloads: %d (code fetched once, then cached)\n"
    (Stats.messages s Stats.Asm_request);
  Printf.printf "wire traffic:\n%s\n" (Format.asprintf "%a" Stats.pp s)
