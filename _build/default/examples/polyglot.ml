(* Polyglot modules: one logical Person module, four independent authors.

   - socialw.person : structurally conformant (case, ordering, permuted
     constructor) -> accepted and proxied;
   - bogusw.Person  : missing members -> rejected before code download;
   - typow.Persom   : structurally fine, name one edit away -> rejected by
     the strict rules, accepted by a receiver configured with the paper's
     suggested Levenshtein relaxation;
   - trapw.Person   : right name, alien structure -> rejected by the full
     rules (and exactly what the weak name-only rule would let through).

   Run with:  dune exec examples/polyglot.exe *)

open Pti_cts
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Config = Pti_conformance.Config
module Demo = Pti_demo.Demo_types

let send_person net sender_name assembly make =
  let sender = Peer.create ~net sender_name in
  Peer.publish_assembly sender assembly;
  let v = make (Peer.registry sender) in
  (sender, v)

let report peer =
  List.iter
    (fun ev -> Format.printf "  %a@." Peer.pp_event ev)
    (Peer.events peer);
  Peer.clear_events peer

let () =
  let net = Net.create () in

  (* Receiver A: strict, the paper's published rules. *)
  let strict = Peer.create ~net "strict-receiver" in
  Peer.publish_assembly strict (Demo.news_assembly ());
  Peer.register_interest strict ~interest:Demo.news_person
    (fun ~from:_ _ -> ());

  (* Receiver B: Levenshtein threshold 1 (§4.2's "one could be more
     general" knob). *)
  let relaxed =
    Peer.create ~net ~config:(Config.relaxed ~distance:1) "relaxed-receiver"
  in
  Peer.publish_assembly relaxed (Demo.news_assembly ());
  Peer.register_interest relaxed ~interest:Demo.news_person
    (fun ~from:_ _ -> ());

  let senders =
    [
      ( "social-author", Demo.social_assembly (),
        fun reg -> Demo.make_social_person reg ~name:"Sue" ~age:1 );
      ( "bogus-author", Demo.bogus_assembly (),
        fun reg ->
          Eval.construct reg Demo.bogus_person [ Value.Vstring "Bo" ] );
      ( "typo-author", Demo.typo_assembly (),
        fun reg ->
          Eval.construct reg Demo.typo_person
            [ Value.Vstring "Ty"; Value.Vint 2 ] );
      ( "trap-author", Demo.trap_assembly (),
        fun reg -> Demo.make_trap_person reg );
    ]
  in

  List.iter
    (fun (name, assembly, make) ->
      let sender, v = send_person net name assembly make in
      Printf.printf "\n%s ships a %s\n" name (Value.type_name v);
      Peer.send_value sender ~dst:"strict-receiver" v;
      Peer.send_value sender ~dst:"relaxed-receiver" v;
      Net.run net;
      Printf.printf " strict receiver:\n";
      report strict;
      Printf.printf " relaxed receiver:\n";
      report relaxed)
    senders;

  print_newline ();
  print_endline
    "Note how typow.Persom flips from rejected to delivered under the \
     relaxed name rule, while bogusw/trapw stay rejected: the structural \
     aspects, not the name, are what guarantee safety."
