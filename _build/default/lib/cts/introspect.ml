module S = Pti_util.Strutil

let rec type_of_value reg v =
  match v with
  | Value.Vobj o -> Registry.find reg o.Value.cls
  | Value.Vproxy p -> type_of_value reg p.Value.px_target
  | Value.Vnull | Value.Vbool _ | Value.Vint _ | Value.Vfloat _
  | Value.Vstring _ | Value.Vchar _ | Value.Varr _ ->
      None

let methods cd = cd.Meta.td_methods
let fields cd = cd.Meta.td_fields
let constructors cd = cd.Meta.td_ctors

let all_methods reg cd =
  let chain = cd :: Registry.super_chain reg cd in
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun c ->
      List.filter
        (fun m ->
          let k =
            (String.lowercase_ascii m.Meta.m_name, Meta.arity m)
          in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        c.Meta.td_methods)
    chain

let all_fields reg cd = Registry.all_fields reg cd

let supertype_names reg cd =
  List.map Meta.qualified_name (Registry.super_chain reg cd)

let interface_names reg cd =
  List.map Meta.qualified_name (Registry.all_interfaces reg cd)

let referenced_types cd =
  let names = ref [] in
  let add_ty ty = names := Ty.named_roots ty @ !names in
  Option.iter (fun s -> names := s :: !names) cd.Meta.td_super;
  names := cd.Meta.td_interfaces @ !names;
  List.iter (fun f -> add_ty f.Meta.f_ty) cd.Meta.td_fields;
  List.iter
    (fun m ->
      add_ty m.Meta.m_return;
      List.iter (fun p -> add_ty p.Meta.param_ty) m.Meta.m_params)
    cd.Meta.td_methods;
  List.iter
    (fun c -> List.iter (fun p -> add_ty p.Meta.param_ty) c.Meta.c_params)
    cd.Meta.td_ctors;
  List.sort_uniq S.compare_ci !names

let implements reg cd iface =
  let available = all_methods reg cd in
  List.for_all
    (fun im ->
      List.exists
        (fun m ->
          S.equal_ci m.Meta.m_name im.Meta.m_name
          && Meta.arity m = Meta.arity im)
        available)
    iface.Meta.td_methods
