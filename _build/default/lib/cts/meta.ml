type visibility = Public | Protected | Private

type member_mods = { visibility : visibility; static : bool; virtual_ : bool }

let public_mods = { visibility = Public; static = false; virtual_ = true }

let equal_mods a b =
  a.visibility = b.visibility && a.static = b.static
  && a.virtual_ = b.virtual_

let visibility_to_string = function
  | Public -> "public"
  | Protected -> "protected"
  | Private -> "private"

let visibility_of_string = function
  | "public" -> Some Public
  | "protected" -> Some Protected
  | "private" -> Some Private
  | _ -> None

let pp_mods ppf m =
  Format.fprintf ppf "%s%s%s"
    (visibility_to_string m.visibility)
    (if m.static then " static" else "")
    (if m.virtual_ then " virtual" else "")

type param = { param_name : string; param_ty : Ty.t }

type field_def = {
  f_name : string;
  f_ty : Ty.t;
  f_mods : member_mods;
  f_init : Expr.t option;
}

type method_def = {
  m_name : string;
  m_params : param list;
  m_return : Ty.t;
  m_mods : member_mods;
  m_body : Expr.t option;
}

type ctor_def = {
  c_params : param list;
  c_mods : member_mods;
  c_body : Expr.t option;
}

type kind = Class | Interface

type class_def = {
  td_name : string;
  td_namespace : string list;
  td_guid : Pti_util.Guid.t;
  td_kind : kind;
  td_super : string option;
  td_interfaces : string list;
  td_fields : field_def list;
  td_ctors : ctor_def list;
  td_methods : method_def list;
  td_assembly : string;
}

let qualified_name cd =
  match cd.td_namespace with
  | [] -> cd.td_name
  | ns -> String.concat "." ns ^ "." ^ cd.td_name

let arity m = List.length m.m_params

let params_string ps =
  String.concat ", "
    (List.map (fun p -> Ty.to_string p.param_ty ^ " " ^ p.param_name) ps)

let signature m =
  Printf.sprintf "%s(%s) : %s" m.m_name (params_string m.m_params)
    (Ty.to_string m.m_return)

let ctor_signature c = Printf.sprintf "ctor(%s)" (params_string c.c_params)

let kind_to_string = function Class -> "class" | Interface -> "interface"

let kind_of_string = function
  | "class" -> Some Class
  | "interface" -> Some Interface
  | _ -> None

let strip_bodies cd =
  {
    cd with
    td_fields = List.map (fun f -> { f with f_init = None }) cd.td_fields;
    td_ctors = List.map (fun c -> { c with c_body = None }) cd.td_ctors;
    td_methods = List.map (fun m -> { m with m_body = None }) cd.td_methods;
  }

let validate cd =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let module S = Pti_util.Strutil in
  let dup_by key items =
    let seen = Hashtbl.create 8 in
    List.find_opt
      (fun x ->
        let k = String.lowercase_ascii (key x) in
        if Hashtbl.mem seen k then true
        else begin
          Hashtbl.add seen k ();
          false
        end)
      items
  in
  if not (S.is_identifier cd.td_name) then
    err "invalid class name %S" cd.td_name
  else if List.exists (fun n -> not (S.is_identifier n)) cd.td_namespace then
    err "invalid namespace component in %s" (qualified_name cd)
  else if
    List.exists (fun f -> not (S.is_identifier f.f_name)) cd.td_fields
  then err "invalid field name in %s" (qualified_name cd)
  else if
    List.exists (fun m -> not (S.is_identifier m.m_name)) cd.td_methods
  then err "invalid method name in %s" (qualified_name cd)
  else
    match dup_by (fun f -> f.f_name) cd.td_fields with
    | Some f -> err "duplicate field %S in %s" f.f_name (qualified_name cd)
    | None -> (
        let meth_key m = Printf.sprintf "%s/%d" m.m_name (arity m) in
        match dup_by meth_key cd.td_methods with
        | Some m ->
            err "duplicate method %S/%d in %s" m.m_name (arity m)
              (qualified_name cd)
        | None -> (
            match cd.td_kind with
            | Class -> Ok ()
            | Interface ->
                if cd.td_fields <> [] then
                  err "interface %s declares fields" (qualified_name cd)
                else if cd.td_ctors <> [] then
                  err "interface %s declares constructors" (qualified_name cd)
                else if
                  List.exists (fun m -> m.m_body <> None) cd.td_methods
                then
                  err "interface %s has a method body" (qualified_name cd)
                else Ok ()))
