(** Runtime values of the CTS.

    Objects carry a mutable field table and the qualified name of their
    runtime class; proxies carry an arbitrary dispatch closure, which is how
    the dynamic-proxy library interposes on invocation without a circular
    dependency on the evaluator. *)

type value =
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vchar of char
  | Vobj of obj
  | Varr of arr
  | Vproxy of proxy

and obj = {
  oid : int;  (** Host-unique object id (also used by serializers for refs). *)
  cls : string;  (** Qualified name of the runtime class. *)
  fields : (string, value) Hashtbl.t;  (** Keys are lowercased field names. *)
}

and arr = { elem_ty : Ty.t; items : value array }

and proxy = {
  px_interface : string;
      (** Qualified name of the type of interest the proxy presents as. *)
  px_target : value;  (** The wrapped, conformant object. *)
  px_invoke : string -> value list -> value;
      (** Dispatch: translates and forwards an invocation. *)
}

val fresh_oid : unit -> int
(** Monotonic id supply (per process). *)

val default_of : Ty.t -> value
(** Zero value of a type: [0], [0.], [false], [""], null for references. *)

val type_name : value -> string
(** Runtime type rendering, e.g. ["demo.Person"], ["int"], ["proxy<I>"],
    for diagnostics. *)

val get_field : obj -> string -> value option
(** Case-insensitive field read. *)

val set_field : obj -> string -> value -> unit

val truthy : value -> bool
(** [Vbool true] only; anything else raises. Conditions must be booleans.
    @raise Invalid_argument *)

val equal_shallow : value -> value -> bool
(** Primitive equality; objects/arrays/proxies compare by identity. *)

val equal_deep : value -> value -> bool
(** Structural equality on the object graph; proxies compare by target.
    Handles cycles (bounded by a visited set on object id pairs). *)

val pp : Format.formatter -> value -> unit
(** Debug rendering (cycle-safe, depth-limited). *)

val to_string : value -> string
