lib/cts/value.mli: Format Hashtbl Ty
