lib/cts/value.ml: Array Format Hashtbl List Printf Pti_util String Ty
