lib/cts/ty.mli: Format
