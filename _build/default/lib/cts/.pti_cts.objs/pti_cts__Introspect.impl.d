lib/cts/introspect.ml: Hashtbl List Meta Option Pti_util Registry String Ty Value
