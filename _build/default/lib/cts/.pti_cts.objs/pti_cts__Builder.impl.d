lib/cts/builder.ml: Char Expr List Meta Option Pti_util String Ty
