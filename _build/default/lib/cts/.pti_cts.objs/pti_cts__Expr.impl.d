lib/cts/expr.ml: Format List Ty
