lib/cts/assembly.mli: Meta Registry
