lib/cts/ty.ml: Format Printf Pti_util Stdlib String
