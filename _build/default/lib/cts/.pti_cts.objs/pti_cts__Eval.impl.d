lib/cts/eval.ml: Array Expr Hashtbl List Meta Printf Pti_util Registry String Value
