lib/cts/builder.mli: Expr Meta Pti_util Ty
