lib/cts/registry.ml: Hashtbl List Meta Option Pti_util String Ty
