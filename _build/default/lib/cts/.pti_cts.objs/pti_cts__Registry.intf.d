lib/cts/registry.mli: Meta Pti_util
