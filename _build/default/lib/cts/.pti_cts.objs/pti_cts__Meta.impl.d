lib/cts/meta.ml: Expr Format Hashtbl List Printf Pti_util String Ty
