lib/cts/introspect.mli: Meta Registry Value
