lib/cts/expr.mli: Format Ty
