lib/cts/assembly.ml: Expr Introspect List Meta Pti_util Registry String Ty
