lib/cts/eval.mli: Expr Registry Value
