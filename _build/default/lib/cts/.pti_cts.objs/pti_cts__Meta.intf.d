lib/cts/meta.mli: Expr Format Pti_util Ty
