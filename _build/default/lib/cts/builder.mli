(** Ergonomic construction of class and interface definitions.

    Stands in for the source languages of the paper's scenario: each
    "programmer" authors their types through this DSL, and the GUID is
    derived from the qualified name *and* the owning assembly, so two
    structurally identical types written independently get distinct
    identities — exactly the situation implicit conformance resolves. *)

type t

val class_ : ?ns:string list -> ?guid:Pti_util.Guid.t -> ?super:string ->
  ?interfaces:string list -> ?assembly:string -> string -> t
(** Start a class. [assembly] defaults to ["default"]. *)

val interface_ : ?ns:string list -> ?guid:Pti_util.Guid.t ->
  ?interfaces:string list -> ?assembly:string -> string -> t

val field : ?mods:Meta.member_mods -> ?init:Expr.t -> string -> Ty.t -> t -> t

val method_ : ?mods:Meta.member_mods -> ?body:Expr.t -> string ->
  (string * Ty.t) list -> Ty.t -> t -> t
(** [method_ name params return b]. On interfaces, omit [body]. *)

val abstract_method : string -> (string * Ty.t) list -> Ty.t -> t -> t
(** Interface method (no body). *)

val ctor : ?mods:Meta.member_mods -> ?body:Expr.t -> (string * Ty.t) list ->
  t -> t

val getter : string -> field:string -> Ty.t -> t -> t
(** [getter "getName" ~field:"name" Ty.String] adds a method returning the
    field. *)

val setter : string -> field:string -> Ty.t -> t -> t
(** Adds a one-argument method assigning the field; returns void. *)

val property : ?getter_name:string -> ?setter_name:string -> string -> Ty.t ->
  t -> t
(** [property "name" ty] adds the field plus [getName]/[setName]-style
    accessors (names default to [get<Name>]/[set<Name>]). *)

val build : t -> Meta.class_def
(** @raise Invalid_argument if the result fails {!Meta.validate}. *)
