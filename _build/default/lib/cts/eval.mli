(** The CTS interpreter: runs method and constructor bodies.

    Invocation here is the baseline cost the paper measures in §7.1: a
    direct call resolves the method on the receiver's runtime class and
    evaluates its body; a proxied call additionally goes through the proxy's
    dispatch closure. *)

exception Runtime_error of string
(** Any dynamic failure: unknown method/field, arity mismatch, type error in
    a primitive operation, division by zero, null dereference. This is
    precisely the failure mode the paper warns about for weakened
    conformance rules (§4.2) and that experiment E6 counts. *)

val construct : Registry.t -> string -> Value.value list -> Value.value
(** [construct reg qname args] instantiates a class: allocates the object,
    installs field defaults and initializers (base-first), then runs the
    matching constructor (by arity). A class with no declared constructor
    has an implicit zero-argument one.
    @raise Runtime_error *)

val call : Registry.t -> Value.value -> string -> Value.value list ->
  Value.value
(** [call reg recv name args] — virtual dispatch on the receiver's runtime
    class; on a proxy, forwards through the proxy dispatch closure.
    Built-in receivers (strings, arrays) support a small method set
    ([length], [substring], [toString], ...).
    @raise Runtime_error *)

val call_static : Registry.t -> string -> string -> Value.value list ->
  Value.value
(** [call_static reg qname meth args].
    @raise Runtime_error *)

val eval : Registry.t -> this:Value.value option ->
  locals:(string * Value.value) list -> Expr.t -> Value.value
(** Evaluate an expression with the given receiver and local bindings;
    exposed for tests and for field initializers in custom tooling. *)
