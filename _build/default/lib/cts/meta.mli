(** Metadata: class and interface definitions.

    This is the CTS analogue of the CLR's type metadata. Conformance rules
    compare the *description* projection of this metadata (no bodies); the
    evaluator runs the bodies. *)

type visibility = Public | Protected | Private

type member_mods = { visibility : visibility; static : bool; virtual_ : bool }

val public_mods : member_mods
(** [{ visibility = Public; static = false; virtual_ = true }] — the default
    for members built by the {!Builder} DSL. *)

val equal_mods : member_mods -> member_mods -> bool

val pp_mods : Format.formatter -> member_mods -> unit

type param = { param_name : string; param_ty : Ty.t }

type field_def = {
  f_name : string;
  f_ty : Ty.t;
  f_mods : member_mods;
  f_init : Expr.t option;  (** Evaluated at construction, before the ctor. *)
}

type method_def = {
  m_name : string;
  m_params : param list;
  m_return : Ty.t;
  m_mods : member_mods;
  m_body : Expr.t option;  (** [None] on interfaces. *)
}

type ctor_def = {
  c_params : param list;
  c_mods : member_mods;
  c_body : Expr.t option;
}

type kind = Class | Interface

type class_def = {
  td_name : string;  (** Simple name. *)
  td_namespace : string list;
  td_guid : Pti_util.Guid.t;  (** Platform type identity (§5, fn. 5). *)
  td_kind : kind;
  td_super : string option;  (** Qualified name; [None] for roots. *)
  td_interfaces : string list;  (** Qualified names. *)
  td_fields : field_def list;
  td_ctors : ctor_def list;
  td_methods : method_def list;
  td_assembly : string;  (** Owning assembly — the code download unit. *)
}

val qualified_name : class_def -> string
(** [namespace.name], the key under which the class registers. *)

val arity : method_def -> int

val signature : method_def -> string
(** Human-readable [name(ty, ..) : ret] string for diagnostics. *)

val ctor_signature : ctor_def -> string

val visibility_to_string : visibility -> string
val visibility_of_string : string -> visibility option

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val strip_bodies : class_def -> class_def
(** Drop every body and initializer — the shape that travels as a type
    description (descriptions must never carry code, §5.1). *)

val validate : class_def -> (unit, string) result
(** Structural well-formedness: valid identifiers, no duplicate fields, no
    duplicate method name+arity, interfaces carry no bodies/fields/ctors. *)
