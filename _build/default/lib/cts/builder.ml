module Guid = Pti_util.Guid

type t = Meta.class_def

let start kind ?(ns = []) ?guid ?super ?(interfaces = [])
    ?(assembly = "default") name =
  let qualified =
    match ns with [] -> name | _ -> String.concat "." ns ^ "." ^ name
  in
  let guid =
    match guid with
    | Some g -> g
    | None -> Guid.of_name (assembly ^ "!" ^ String.lowercase_ascii qualified)
  in
  {
    Meta.td_name = name;
    td_namespace = ns;
    td_guid = guid;
    td_kind = kind;
    td_super = super;
    td_interfaces = interfaces;
    td_fields = [];
    td_ctors = [];
    td_methods = [];
    td_assembly = assembly;
  }

let class_ ?ns ?guid ?super ?interfaces ?assembly name =
  start Meta.Class ?ns ?guid ?super ?interfaces ?assembly name

let interface_ ?ns ?guid ?interfaces ?assembly name =
  start Meta.Interface ?ns ?guid ?interfaces ?assembly name

let field ?(mods = Meta.public_mods) ?init name ty b =
  {
    b with
    Meta.td_fields =
      b.Meta.td_fields
      @ [ { Meta.f_name = name; f_ty = ty; f_mods = mods; f_init = init } ];
  }

let params_of = List.map (fun (n, ty) -> { Meta.param_name = n; param_ty = ty })

let method_ ?(mods = Meta.public_mods) ?body name params return b =
  {
    b with
    Meta.td_methods =
      b.Meta.td_methods
      @ [
          {
            Meta.m_name = name;
            m_params = params_of params;
            m_return = return;
            m_mods = mods;
            m_body = body;
          };
        ];
  }

let abstract_method name params return b = method_ name params return b

let ctor ?(mods = Meta.public_mods) ?body params b =
  {
    b with
    Meta.td_ctors =
      b.Meta.td_ctors
      @ [ { Meta.c_params = params_of params; c_mods = mods; c_body = body } ];
  }

let getter name ~field:f ty b = method_ ~body:(Expr.get f) name [] ty b

let setter name ~field:f ty b =
  method_
    ~body:(Expr.Seq [ Expr.set f (Expr.Var "value"); Expr.null ])
    name
    [ ("value", ty) ]
    Ty.Void b

let capitalize s =
  if s = "" then s
  else String.make 1 (Char.uppercase_ascii s.[0])
       ^ String.sub s 1 (String.length s - 1)

let property ?getter_name ?setter_name name ty b =
  let g = Option.value getter_name ~default:("get" ^ capitalize name) in
  let s = Option.value setter_name ~default:("set" ^ capitalize name) in
  b |> field name ty |> getter g ~field:name ty |> setter s ~field:name ty

let build b =
  match Meta.validate b with
  | Ok () -> b
  | Error msg -> invalid_arg ("Builder.build: " ^ msg)
