type const =
  | Cnull
  | Cbool of bool
  | Cint of int
  | Cfloat of float
  | Cstring of string
  | Cchar of char

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Concat

type unop = Neg | Not

type t =
  | Const of const
  | This
  | Var of string
  | Let of string * t * t
  | Assign of string * t
  | Field_get of t * string
  | Field_set of t * string * t
  | Call of t * string * t list
  | Static_call of string * string * t list
  | New of string * t list
  | New_array of Ty.t * t list
  | Index_get of t * t
  | Index_set of t * t * t
  | Array_length of t
  | If of t * t * t
  | While of t * t
  | Seq of t list
  | Binop of binop * t * t
  | Unop of unop * t
  | Throw of t
  | Try of t * string * t

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Eq -> "eq"
  | Neq -> "neq"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | And -> "and"
  | Or -> "or"
  | Concat -> "concat"

let unop_name = function Neg -> "neg" | Not -> "not"

let rec pp ppf e =
  let open Format in
  match e with
  | Const Cnull -> pp_print_string ppf "null"
  | Const (Cbool b) -> pp_print_bool ppf b
  | Const (Cint i) -> pp_print_int ppf i
  | Const (Cfloat f) -> fprintf ppf "%h" f
  | Const (Cstring s) -> fprintf ppf "%S" s
  | Const (Cchar c) -> fprintf ppf "'%c'" c
  | This -> pp_print_string ppf "this"
  | Var v -> pp_print_string ppf v
  | Let (v, e1, e2) -> fprintf ppf "(let %s %a %a)" v pp e1 pp e2
  | Assign (v, e1) -> fprintf ppf "(assign %s %a)" v pp e1
  | Field_get (o, f) -> fprintf ppf "(get %a %s)" pp o f
  | Field_set (o, f, v) -> fprintf ppf "(set %a %s %a)" pp o f pp v
  | Call (o, m, args) -> fprintf ppf "(call %a %s%a)" pp o m pp_args args
  | Static_call (c, m, args) ->
      fprintf ppf "(scall %s %s%a)" c m pp_args args
  | New (c, args) -> fprintf ppf "(new %s%a)" c pp_args args
  | New_array (ty, items) ->
      fprintf ppf "(array %s%a)" (Ty.to_string ty) pp_args items
  | Index_get (a, i) -> fprintf ppf "(aget %a %a)" pp a pp i
  | Index_set (a, i, v) -> fprintf ppf "(aset %a %a %a)" pp a pp i pp v
  | Array_length a -> fprintf ppf "(alen %a)" pp a
  | If (c, t, e) -> fprintf ppf "(if %a %a %a)" pp c pp t pp e
  | While (c, b) -> fprintf ppf "(while %a %a)" pp c pp b
  | Seq es -> fprintf ppf "(seq%a)" pp_args es
  | Binop (op, a, b) -> fprintf ppf "(%s %a %a)" (binop_name op) pp a pp b
  | Unop (op, a) -> fprintf ppf "(%s %a)" (unop_name op) pp a
  | Throw a -> fprintf ppf "(throw %a)" pp a
  | Try (b, v, h) -> fprintf ppf "(try %a %s %a)" pp b v pp h

and pp_args ppf = function
  | [] -> ()
  | args ->
      List.iter (fun a -> Format.fprintf ppf " %a" pp a) args

let to_string e = Format.asprintf "%a" pp e

let rec size = function
  | Const _ | This | Var _ -> 1
  | Let (_, a, b) | While (a, b) -> 1 + size a + size b
  | Assign (_, a) | Field_get (a, _) | Array_length a | Unop (_, a)
  | Throw a ->
      1 + size a
  | Field_set (a, _, b) | Index_get (a, b) | Binop (_, a, b)
  | Try (a, _, b) ->
      1 + size a + size b
  | Call (o, _, args) -> 1 + size o + sum args
  | Static_call (_, _, args) | New (_, args) -> 1 + sum args
  | New_array (_, items) -> 1 + sum items
  | Index_set (a, i, v) -> 1 + size a + size i + size v
  | If (a, b, c) -> 1 + size a + size b + size c
  | Seq es -> 1 + sum es

and sum es = List.fold_left (fun acc e -> acc + size e) 0 es

let int i = Const (Cint i)
let str s = Const (Cstring s)
let bool b = Const (Cbool b)
let null = Const Cnull
let get f = Field_get (This, f)
let set f v = Field_set (This, f, v)
