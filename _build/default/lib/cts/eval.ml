module S = Pti_util.Strutil

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type env = {
  reg : Registry.t;
  this : Value.value option;
  mutable locals : (string * Value.value ref) list;
}

let lookup env name =
  match
    List.find_opt (fun (n, _) -> S.equal_ci n name) env.locals
  with
  | Some (_, r) -> r
  | None -> fail "unbound variable %S" name

let as_obj = function
  | Value.Vobj o -> o
  | Value.Vnull -> fail "null dereference"
  | v -> fail "expected an object, got %s" (Value.type_name v)

let as_arr = function
  | Value.Varr a -> a
  | Value.Vnull -> fail "null dereference (array)"
  | v -> fail "expected an array, got %s" (Value.type_name v)

let truthy_rt = function
  | Value.Vbool b -> b
  | v -> fail "condition evaluated to %s, expected bool" (Value.type_name v)

let as_int = function
  | Value.Vint i -> i
  | v -> fail "expected int, got %s" (Value.type_name v)

let binop op a b =
  let open Value in
  match op, a, b with
  | Expr.Add, Vint x, Vint y -> Vint (x + y)
  | Expr.Add, Vfloat x, Vfloat y -> Vfloat (x +. y)
  | Expr.Sub, Vint x, Vint y -> Vint (x - y)
  | Expr.Sub, Vfloat x, Vfloat y -> Vfloat (x -. y)
  | Expr.Mul, Vint x, Vint y -> Vint (x * y)
  | Expr.Mul, Vfloat x, Vfloat y -> Vfloat (x *. y)
  | Expr.Div, Vint _, Vint 0 -> fail "division by zero"
  | Expr.Div, Vint x, Vint y -> Vint (x / y)
  | Expr.Div, Vfloat x, Vfloat y -> Vfloat (x /. y)
  | Expr.Mod, Vint _, Vint 0 -> fail "modulo by zero"
  | Expr.Mod, Vint x, Vint y -> Vint (x mod y)
  | Expr.Eq, a, b -> Vbool (Value.equal_shallow a b)
  | Expr.Neq, a, b -> Vbool (not (Value.equal_shallow a b))
  | Expr.Lt, Vint x, Vint y -> Vbool (x < y)
  | Expr.Lt, Vfloat x, Vfloat y -> Vbool (x < y)
  | Expr.Lt, Vstring x, Vstring y -> Vbool (String.compare x y < 0)
  | Expr.Le, Vint x, Vint y -> Vbool (x <= y)
  | Expr.Le, Vfloat x, Vfloat y -> Vbool (x <= y)
  | Expr.Le, Vstring x, Vstring y -> Vbool (String.compare x y <= 0)
  | Expr.Gt, Vint x, Vint y -> Vbool (x > y)
  | Expr.Gt, Vfloat x, Vfloat y -> Vbool (x > y)
  | Expr.Gt, Vstring x, Vstring y -> Vbool (String.compare x y > 0)
  | Expr.Ge, Vint x, Vint y -> Vbool (x >= y)
  | Expr.Ge, Vfloat x, Vfloat y -> Vbool (x >= y)
  | Expr.Ge, Vstring x, Vstring y -> Vbool (String.compare x y >= 0)
  | Expr.And, Vbool x, Vbool y -> Vbool (x && y)
  | Expr.Or, Vbool x, Vbool y -> Vbool (x || y)
  | Expr.Concat, Vstring x, Vstring y -> Vstring (x ^ y)
  | Expr.Concat, x, Vstring y -> Vstring (Value.to_string x ^ y)
  | Expr.Concat, Vstring x, y -> Vstring (x ^ Value.to_string y)
  | op, a, b ->
      fail "bad operands for %s: %s, %s" (Expr.binop_name op)
        (Value.type_name a) (Value.type_name b)

let unop op a =
  let open Value in
  match op, a with
  | Expr.Neg, Vint x -> Vint (-x)
  | Expr.Neg, Vfloat x -> Vfloat (-.x)
  | Expr.Not, Vbool b -> Vbool (not b)
  | op, a ->
      fail "bad operand for %s: %s" (Expr.unop_name op) (Value.type_name a)

(* Built-in methods on primitive receivers; a stand-in for the platform's
   base class library. *)
let builtin_call recv name args =
  let open Value in
  match recv, String.lowercase_ascii name, args with
  | Vstring s, "length", [] -> Some (Vint (String.length s))
  | Vstring s, "toupper", [] -> Some (Vstring (String.uppercase_ascii s))
  | Vstring s, "tolower", [] -> Some (Vstring (String.lowercase_ascii s))
  | Vstring s, "substring", [ Vint start; Vint len ] ->
      if start < 0 || len < 0 || start + len > String.length s then
        fail "substring out of range"
      else Some (Vstring (String.sub s start len))
  | Vstring s, "contains", [ Vstring sub ] ->
      let contains () =
        let ls = String.length s and lsub = String.length sub in
        if lsub = 0 then true
        else begin
          let found = ref false in
          for i = 0 to ls - lsub do
            if (not !found) && String.sub s i lsub = sub then found := true
          done;
          !found
        end
      in
      Some (Vbool (contains ()))
  | Vstring s, "tostring", [] -> Some (Vstring s)
  | Vint i, "tostring", [] -> Some (Vstring (string_of_int i))
  | Vfloat f, "tostring", [] -> Some (Vstring (Printf.sprintf "%g" f))
  | Vbool b, "tostring", [] -> Some (Vstring (string_of_bool b))
  | Varr a, "length", [] -> Some (Vint (Array.length a.items))
  | _ -> None

exception User_throw of Value.value

let rec construct_impl reg qname args =
  let cd =
    match Registry.find reg qname with
    | Some cd -> cd
    | None -> fail "unknown class %S" qname
  in
  if cd.Meta.td_kind = Meta.Interface then
    fail "cannot instantiate interface %s" qname;
  let o =
    { Value.oid = Value.fresh_oid (); cls = Meta.qualified_name cd;
      fields = Hashtbl.create 8 }
  in
  let self = Value.Vobj o in
  (* Field defaults and initializers, base class first. *)
  let chain = List.rev (cd :: Registry.super_chain reg cd) in
  List.iter
    (fun c ->
      List.iter
        (fun f ->
          Value.set_field o f.Meta.f_name (Value.default_of f.Meta.f_ty))
        c.Meta.td_fields)
    chain;
  List.iter
    (fun c ->
      List.iter
        (fun f ->
          match f.Meta.f_init with
          | None -> ()
          | Some init ->
              let v = eval_impl reg ~this:(Some self) ~locals:[] init in
              Value.set_field o f.Meta.f_name v)
        c.Meta.td_fields)
    chain;
  (* Constructor by arity. *)
  let nargs = List.length args in
  (match
     List.find_opt
       (fun c -> List.length c.Meta.c_params = nargs)
       cd.Meta.td_ctors
   with
  | None ->
      if nargs = 0 && cd.Meta.td_ctors = [] then ()
      else fail "no constructor of arity %d on %s" nargs qname
  | Some ctor -> (
      match ctor.Meta.c_body with
      | None -> ()
      | Some body ->
          let locals =
            List.map2
              (fun p v -> (p.Meta.param_name, v))
              ctor.Meta.c_params args
          in
          ignore (eval_impl reg ~this:(Some self) ~locals body)));
  self

and call_impl reg recv name args =
  match recv with
  | Value.Vproxy p -> p.Value.px_invoke name args
  | Value.Vobj o -> (
      let cd =
        match Registry.find reg o.Value.cls with
        | Some cd -> cd
        | None -> fail "receiver class %S not loaded" o.Value.cls
      in
      match Registry.find_method reg cd name (List.length args) with
      | Some (_, m) -> (
          match m.Meta.m_body with
          | None ->
              fail "method %s.%s has no body" o.Value.cls m.Meta.m_name
          | Some body ->
              let locals =
                List.map2
                  (fun p v -> (p.Meta.param_name, v))
                  m.Meta.m_params args
              in
              eval_impl reg ~this:(Some recv) ~locals body)
      | None -> (
          match builtin_call recv name args with
          | Some v -> v
          | None ->
              fail "no method %s/%d on %s" name (List.length args)
                o.Value.cls))
  | recv -> (
      match builtin_call recv name args with
      | Some v -> v
      | None ->
          fail "no method %s/%d on %s" name (List.length args)
            (Value.type_name recv))

and call_static_impl reg qname name args =
  let cd =
    match Registry.find reg qname with
    | Some cd -> cd
    | None -> fail "unknown class %S" qname
  in
  let matches m =
    S.equal_ci m.Meta.m_name name
    && Meta.arity m = List.length args
    && m.Meta.m_mods.Meta.static
  in
  match List.find_opt matches cd.Meta.td_methods with
  | None -> fail "no static method %s/%d on %s" name (List.length args) qname
  | Some m -> (
      match m.Meta.m_body with
      | None -> fail "static method %s.%s has no body" qname name
      | Some body ->
          let locals =
            List.map2 (fun p v -> (p.Meta.param_name, v)) m.Meta.m_params args
          in
          eval_impl reg ~this:None ~locals body)

and eval_impl reg ~this ~locals expr =
  let env = { reg; this; locals = List.map (fun (n, v) -> (n, ref v)) locals } in
  eval_in env expr

and eval_in env expr =
  let open Value in
  match expr with
  | Expr.Const Expr.Cnull -> Vnull
  | Expr.Const (Expr.Cbool b) -> Vbool b
  | Expr.Const (Expr.Cint i) -> Vint i
  | Expr.Const (Expr.Cfloat f) -> Vfloat f
  | Expr.Const (Expr.Cstring s) -> Vstring s
  | Expr.Const (Expr.Cchar c) -> Vchar c
  | Expr.This -> (
      match env.this with
      | Some v -> v
      | None -> fail "no `this` in a static context")
  | Expr.Var v -> !(lookup env v)
  | Expr.Let (v, e1, e2) ->
      let bound = eval_in env e1 in
      let saved = env.locals in
      env.locals <- (v, ref bound) :: env.locals;
      let result = eval_in env e2 in
      env.locals <- saved;
      result
  | Expr.Assign (v, e1) ->
      let value = eval_in env e1 in
      lookup env v := value;
      value
  | Expr.Field_get (oe, f) -> (
      let o = as_obj (eval_in env oe) in
      match Value.get_field o f with
      | Some v -> v
      | None -> fail "no field %S on %s" f o.cls)
  | Expr.Field_set (oe, f, ve) ->
      let o = as_obj (eval_in env oe) in
      let v = eval_in env ve in
      if Value.get_field o f = None then fail "no field %S on %s" f o.cls;
      Value.set_field o f v;
      v
  | Expr.Call (oe, m, args) ->
      let recv = eval_in env oe in
      let args = List.map (eval_in env) args in
      call_impl env.reg recv m args
  | Expr.Static_call (c, m, args) ->
      let args = List.map (eval_in env) args in
      call_static_impl env.reg c m args
  | Expr.New (c, args) ->
      let args = List.map (eval_in env) args in
      construct_impl env.reg c args
  | Expr.New_array (ty, items) ->
      let items = List.map (eval_in env) items in
      Varr { elem_ty = ty; items = Array.of_list items }
  | Expr.Index_get (ae, ie) ->
      let a = as_arr (eval_in env ae) in
      let i = as_int (eval_in env ie) in
      if i < 0 || i >= Array.length a.items then
        fail "array index %d out of bounds (length %d)" i
          (Array.length a.items)
      else a.items.(i)
  | Expr.Index_set (ae, ie, ve) ->
      let a = as_arr (eval_in env ae) in
      let i = as_int (eval_in env ie) in
      let v = eval_in env ve in
      if i < 0 || i >= Array.length a.items then
        fail "array index %d out of bounds (length %d)" i
          (Array.length a.items)
      else begin
        a.items.(i) <- v;
        v
      end
  | Expr.Array_length ae -> Vint (Array.length (as_arr (eval_in env ae)).items)
  | Expr.If (c, t, e) ->
      if truthy_rt (eval_in env c) then eval_in env t else eval_in env e
  | Expr.While (c, b) ->
      while truthy_rt (eval_in env c) do
        ignore (eval_in env b)
      done;
      Vnull
  | Expr.Seq es ->
      List.fold_left (fun _ e -> eval_in env e) Vnull es
  | Expr.Binop (op, a, b) ->
      let va = eval_in env a in
      (* Short-circuit boolean operators. *)
      (match op, va with
      | Expr.And, Vbool false -> Vbool false
      | Expr.Or, Vbool true -> Vbool true
      | _ -> binop op va (eval_in env b))
  | Expr.Unop (op, a) -> unop op (eval_in env a)
  | Expr.Throw e -> raise (User_throw (eval_in env e))
  | Expr.Try (body, var, handler) -> (
      let run_handler v =
        let saved = env.locals in
        env.locals <- (var, ref v) :: env.locals;
        let result = eval_in env handler in
        env.locals <- saved;
        result
      in
      try eval_in env body with
      | User_throw v -> run_handler v
      | Runtime_error msg -> run_handler (Value.Vstring msg))


(* Public boundary: an uncaught user throw becomes a runtime error, the
   way an unhandled exception crosses out of the platform. *)
let convert_throws f =
  try f ()
  with User_throw v ->
    fail "unhandled exception: %s" (Value.to_string v)

let construct reg qname args = convert_throws (fun () -> construct_impl reg qname args)
let call reg recv name args = convert_throws (fun () -> call_impl reg recv name args)

let call_static reg qname name args =
  convert_throws (fun () -> call_static_impl reg qname name args)

let eval reg ~this ~locals expr =
  convert_throws (fun () -> eval_impl reg ~this ~locals expr)
