(** Expression AST for method and constructor bodies.

    The paper's platform (the CLR) executes real method bodies; here methods
    carry a small interpreted AST so that invocation — direct or through a
    dynamic proxy — is a real, measurable operation and behavioural tests
    can observe effects. *)

type const =
  | Cnull
  | Cbool of bool
  | Cint of int
  | Cfloat of float
  | Cstring of string
  | Cchar of char

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Concat  (** String concatenation. *)

type unop = Neg | Not

type t =
  | Const of const
  | This
  | Var of string  (** Parameter or local. *)
  | Let of string * t * t
  | Assign of string * t  (** Re-binds a local/parameter; evaluates to it. *)
  | Field_get of t * string
  | Field_set of t * string * t  (** Evaluates to the assigned value. *)
  | Call of t * string * t list  (** Virtual dispatch on the receiver. *)
  | Static_call of string * string * t list  (** [class, method, args]. *)
  | New of string * t list
  | New_array of Ty.t * t list
  | Index_get of t * t
  | Index_set of t * t * t
  | Array_length of t
  | If of t * t * t
  | While of t * t  (** Evaluates to null. *)
  | Seq of t list  (** Evaluates to the last expression (null if empty). *)
  | Binop of binop * t * t
  | Unop of unop * t
  | Throw of t
      (** Raise a user exception carrying the value. Uncaught throws
          surface as {!Eval.Runtime_error} at the host boundary. *)
  | Try of t * string * t
      (** [Try (body, var, handler)]: on a user throw (or a runtime
          error, whose message is bound as a string) evaluate [handler]
          with [var] bound to the carried value. *)

val binop_name : binop -> string
val unop_name : unop -> string

val pp : Format.formatter -> t -> unit
(** S-expression-ish rendering for diagnostics and the assembly codec. *)

val to_string : t -> string

val size : t -> int
(** Node count; used to charge assembly transfer bytes proportionally. *)

(** {1 Convenience constructors} *)

val int : int -> t
val str : string -> t
val bool : bool -> t
val null : t
val get : string -> t
(** [get f] is [Field_get (This, f)]. *)

val set : string -> t -> t
(** [set f v] is [Field_set (This, f, v)]. *)
