(** Type references of the common type system.

    A type reference either names a primitive, refers to a declared class or
    interface by qualified name, or is an array of another reference.
    References are resolved against a {!Registry.t} (locally) or against a
    description resolver (remotely, during conformance checking). *)

type t =
  | Void
  | Bool
  | Int
  | Float
  | String
  | Char
  | Named of string  (** Qualified name, e.g. ["demo.Person"]. *)
  | Array of t

val equal : t -> t -> bool
(** Structural equality; [Named] comparison is case-insensitive, consistent
    with the paper's case-insensitive name rule. *)

val compare : t -> t -> int

val is_primitive : t -> bool
(** True for everything except [Named] and arrays over [Named]. *)

val to_string : t -> string
(** Wire rendering: primitives by keyword, arrays with a ["[]"] suffix. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on malformed input (e.g. dangling
    ["[]"]). *)

val of_string_exn : string -> t

val element_type : t -> t option
(** [Some e] when the reference is [Array e]. *)

val named_roots : t -> string list
(** The qualified names mentioned by the reference (at most one today, but
    kept as a list for future generic types). Used to know which type
    descriptions a conformance check may need to fetch. *)

val pp : Format.formatter -> t -> unit
