(** Reflection over the CTS — the capability §5 relies on to build type
    descriptions without shipping code.

    The CLR/Java reflection APIs the paper uses are modeled by queries over
    the registry: a host can enumerate the structure (fields, methods,
    constructors, supertypes) of any type it has loaded. *)

val type_of_value : Registry.t -> Value.value -> Meta.class_def option
(** Runtime class of an object value ([None] for primitives, nulls, and
    proxies, whose runtime type is the wrapped target's). *)

val methods : Meta.class_def -> Meta.method_def list
(** Declared (own) methods. *)

val all_methods : Registry.t -> Meta.class_def -> Meta.method_def list
(** Own + inherited methods; an override (same name and arity) hides the
    inherited one. Document order: most-derived first. *)

val fields : Meta.class_def -> Meta.field_def list
val all_fields : Registry.t -> Meta.class_def -> Meta.field_def list
val constructors : Meta.class_def -> Meta.ctor_def list

val supertype_names : Registry.t -> Meta.class_def -> string list
(** Qualified names of the transitive superclasses, nearest first. *)

val interface_names : Registry.t -> Meta.class_def -> string list

val referenced_types : Meta.class_def -> string list
(** Qualified names appearing anywhere in the class surface (sorted,
    deduplicated) — the closure seed for assembly packaging. *)

val implements : Registry.t -> Meta.class_def -> Meta.class_def -> bool
(** [implements reg cd iface]: every method of [iface] has a matching
    (name + arity, case-insensitive) method on [cd] or its ancestors. This
    is Läufer-style structural conformance against an interface — strictly
    weaker than the paper's implicit structural conformance, provided for
    comparison in tests and the E6 ablation. *)
