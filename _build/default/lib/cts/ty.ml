type t =
  | Void
  | Bool
  | Int
  | Float
  | String
  | Char
  | Named of string
  | Array of t

let rec equal a b =
  match a, b with
  | Void, Void | Bool, Bool | Int, Int | Float, Float | String, String
  | Char, Char ->
      true
  | Named x, Named y -> Pti_util.Strutil.equal_ci x y
  | Array x, Array y -> equal x y
  | (Void | Bool | Int | Float | String | Char | Named _ | Array _), _ -> false

let rec compare a b =
  let rank = function
    | Void -> 0
    | Bool -> 1
    | Int -> 2
    | Float -> 3
    | String -> 4
    | Char -> 5
    | Named _ -> 6
    | Array _ -> 7
  in
  match a, b with
  | Named x, Named y -> Pti_util.Strutil.compare_ci x y
  | Array x, Array y -> compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let rec is_primitive = function
  | Void | Bool | Int | Float | String | Char -> true
  | Named _ -> false
  | Array e -> is_primitive e

let rec to_string = function
  | Void -> "void"
  | Bool -> "bool"
  | Int -> "int"
  | Float -> "float"
  | String -> "string"
  | Char -> "char"
  | Named n -> n
  | Array e -> to_string e ^ "[]"

let rec of_string s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then None
  else if n >= 2 && String.sub s (n - 2) 2 = "[]" then
    match of_string (String.sub s 0 (n - 2)) with
    | Some e -> Some (Array e)
    | None -> None
  else
    match String.lowercase_ascii s with
    | "void" -> Some Void
    | "bool" | "boolean" -> Some Bool
    | "int" | "int32" | "int64" -> Some Int
    | "float" | "double" -> Some Float
    | "string" -> Some String
    | "char" -> Some Char
    | _ -> Some (Named s)

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ty.of_string_exn: %S" s)

let element_type = function Array e -> Some e | _ -> None

let rec named_roots = function
  | Void | Bool | Int | Float | String | Char -> []
  | Named n -> [ n ]
  | Array e -> named_roots e

let pp ppf t = Format.pp_print_string ppf (to_string t)
