type value =
  | Vnull
  | Vbool of bool
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vchar of char
  | Vobj of obj
  | Varr of arr
  | Vproxy of proxy

and obj = {
  oid : int;
  cls : string;
  fields : (string, value) Hashtbl.t;
}

and arr = { elem_ty : Ty.t; items : value array }

and proxy = {
  px_interface : string;
  px_target : value;
  px_invoke : string -> value list -> value;
}

let oid_counter = ref 0

let fresh_oid () =
  incr oid_counter;
  !oid_counter

let default_of = function
  | Ty.Void -> Vnull
  | Ty.Bool -> Vbool false
  | Ty.Int -> Vint 0
  | Ty.Float -> Vfloat 0.
  | Ty.String -> Vstring ""
  | Ty.Char -> Vchar '\000'
  | Ty.Named _ | Ty.Array _ -> Vnull

let type_name = function
  | Vnull -> "null"
  | Vbool _ -> "bool"
  | Vint _ -> "int"
  | Vfloat _ -> "float"
  | Vstring _ -> "string"
  | Vchar _ -> "char"
  | Vobj o -> o.cls
  | Varr a -> Ty.to_string (Ty.Array a.elem_ty)
  | Vproxy p -> Printf.sprintf "proxy<%s>" p.px_interface

let get_field o name = Hashtbl.find_opt o.fields (String.lowercase_ascii name)

let set_field o name v =
  Hashtbl.replace o.fields (String.lowercase_ascii name) v

let truthy = function
  | Vbool b -> b
  | v ->
      invalid_arg
        (Printf.sprintf "condition evaluated to %s, expected bool"
           (type_name v))

let equal_shallow a b =
  match a, b with
  | Vnull, Vnull -> true
  | Vbool x, Vbool y -> x = y
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Vstring x, Vstring y -> String.equal x y
  | Vchar x, Vchar y -> x = y
  | Vobj x, Vobj y -> x == y
  | Varr x, Varr y -> x == y
  | Vproxy x, Vproxy y -> x == y
  | ( ( Vnull | Vbool _ | Vint _ | Vfloat _ | Vstring _ | Vchar _ | Vobj _
      | Varr _ | Vproxy _ ),
      _ ) ->
      false

let rec strip_proxy = function Vproxy p -> strip_proxy p.px_target | v -> v

let equal_deep a b =
  let visited = Hashtbl.create 16 in
  let rec go a b =
    let a = strip_proxy a and b = strip_proxy b in
    match a, b with
    | Vobj x, Vobj y ->
        if Hashtbl.mem visited (x.oid, y.oid) then true
        else begin
          Hashtbl.add visited (x.oid, y.oid) ();
          Pti_util.Strutil.equal_ci x.cls y.cls
          && Hashtbl.length x.fields = Hashtbl.length y.fields
          && Hashtbl.fold
               (fun k v acc ->
                 acc
                 &&
                 match Hashtbl.find_opt y.fields k with
                 | Some w -> go v w
                 | None -> false)
               x.fields true
        end
    | Varr x, Varr y ->
        Ty.equal x.elem_ty y.elem_ty
        && Array.length x.items = Array.length y.items
        && begin
             let ok = ref true in
             Array.iteri
               (fun i v -> if !ok then ok := go v y.items.(i))
               x.items;
             !ok
           end
    | a, b -> equal_shallow a b
  in
  go a b

let pp ppf v =
  let rec go depth ppf v =
    if depth > 4 then Format.pp_print_string ppf "..."
    else
      match v with
      | Vnull -> Format.pp_print_string ppf "null"
      | Vbool b -> Format.pp_print_bool ppf b
      | Vint i -> Format.pp_print_int ppf i
      | Vfloat f -> Format.fprintf ppf "%g" f
      | Vstring s -> Format.fprintf ppf "%S" s
      | Vchar c -> Format.fprintf ppf "'%c'" c
      | Vobj o ->
          Format.fprintf ppf "%s#%d{" o.cls o.oid;
          let first = ref true in
          let bindings =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) o.fields []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          List.iter
            (fun (k, v) ->
              if not !first then Format.pp_print_string ppf "; ";
              first := false;
              Format.fprintf ppf "%s=%a" k (go (depth + 1)) v)
            bindings;
          Format.pp_print_string ppf "}"
      | Varr a ->
          Format.fprintf ppf "[|";
          Array.iteri
            (fun i v ->
              if i > 0 then Format.pp_print_string ppf "; ";
              go (depth + 1) ppf v)
            a.items;
          Format.fprintf ppf "|]"
      | Vproxy p ->
          Format.fprintf ppf "proxy<%s>(%a)" p.px_interface (go (depth + 1))
            p.px_target
  in
  go 0 ppf v

let to_string v = Format.asprintf "%a" pp v
