lib/idl/vbdl.mli: Format Pti_cts
