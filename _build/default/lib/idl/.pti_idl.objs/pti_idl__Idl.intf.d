lib/idl/idl.mli: Format Pti_cts
