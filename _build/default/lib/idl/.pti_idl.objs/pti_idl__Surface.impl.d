lib/idl/surface.ml: Expr List Pti_cts String Ty
