lib/idl/vbdl.ml: Assembly Buffer Expr Format List Meta Printf Pti_cts Pti_util String Surface Ty
