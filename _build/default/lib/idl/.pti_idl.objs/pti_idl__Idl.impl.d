lib/idl/idl.ml: Array Assembly Buffer Char Expr Format List Meta Printf Pti_cts Pti_util String Surface Ty
