(* Shared surface AST and lowering for the definition-language front
   ends. Both the C#-flavoured Idl and the VB-flavoured Vbdl parse into
   these statements and lower through the same rules, which is what makes
   them two languages over one common type system. *)

open Pti_cts

type sexpr =
  | Sint of int
  | Sfloat of float
  | Sstr of string
  | Sbool of bool
  | Snull
  | Sident of string
  | Sthis
  | Scall of sexpr * string * sexpr list
  | Sfieldref of sexpr * string
  | Snew of string * sexpr list
  | Sstatic of string * string * sexpr list
  | Sbinop of Expr.binop * sexpr * sexpr
  | Sneg of sexpr
  | Snot of sexpr
  | Snewarr of Ty.t * sexpr list
  | Sindex of sexpr * sexpr

type sstmt =
  | Slet of string * sexpr
  | Sthrow of sexpr
  | Stry of sstmt list * string * sstmt list
  | Sassign of string * sexpr
  | Sfieldset of sexpr * string * sexpr
  | Sif of sexpr * sstmt list * sstmt list
  | Swhile of sexpr * sstmt list
  | Sindexset of sexpr * sexpr * sexpr
  | Sfor of string * sexpr * sexpr * string * sexpr * sstmt list
  | Sexpr of sexpr
  | Sreturn of sexpr

exception Lower_error of string

let fail_plain message = raise (Lower_error message)

(* Identifiers not bound by parameters or lets are read as fields of
   [this] — the CTS resolves them (or fails) at run time, matching the
   dynamic flavour of the platform. *)
let rec lower_expr scope e =
  match e with
  | Sint i -> Expr.int i
  | Sfloat f -> Expr.Const (Expr.Cfloat f)
  | Sstr s -> Expr.str s
  | Sbool b -> Expr.bool b
  | Snull -> Expr.null
  | Sthis -> Expr.This
  | Sident name ->
      if List.exists (String.equal name) scope then Expr.Var name
      else Expr.Field_get (Expr.This, name)
  | Scall (o, m, args) ->
      Expr.Call (lower_expr scope o, m, List.map (lower_expr scope) args)
  | Sfieldref (o, f) -> Expr.Field_get (lower_expr scope o, f)
  | Snew (c, args) -> Expr.New (c, List.map (lower_expr scope) args)
  | Sstatic (c, m, args) ->
      Expr.Static_call (c, m, List.map (lower_expr scope) args)
  | Sbinop (op, a, b) -> Expr.Binop (op, lower_expr scope a, lower_expr scope b)
  | Sneg a -> Expr.Unop (Expr.Neg, lower_expr scope a)
  | Snot a -> Expr.Unop (Expr.Not, lower_expr scope a)
  | Snewarr (ty, items) ->
      Expr.New_array (ty, List.map (lower_expr scope) items)
  | Sindex (a, i) -> Expr.Index_get (lower_expr scope a, lower_expr scope i)

(* A block evaluates to its final statement's value; [return e] is sugar
   for ending a block with the expression [e]. Early return (a [return]
   that is not in tail position of its block) is rejected. *)
let rec lower_block scope stmts =
  match stmts with
  | [] -> Expr.null
  | [ Sreturn e ] -> lower_expr scope e
  | [ Slet (x, e) ] -> Expr.Let (x, lower_expr scope e, Expr.null)
  | [ s ] -> lower_stmt scope s
  | Sreturn _ :: _ -> fail_plain "'return' must be the last statement"
  | Slet (x, e) :: rest ->
      Expr.Let (x, lower_expr scope e, lower_block (x :: scope) rest)
  | s :: rest ->
      let first = lower_stmt scope s in
      let rest_e = lower_block scope rest in
      (match rest_e with
      | Expr.Seq es -> Expr.Seq (first :: es)
      | e -> Expr.Seq [ first; e ])

and lower_stmt scope = function
  | Slet _ | Sreturn _ -> assert false (* handled in lower_block *)
  | Sthrow e -> Expr.Throw (lower_expr scope e)
  | Stry (b, v, h) ->
      Expr.Try (lower_block scope b, v, lower_block (v :: scope) h)
  | Sassign (name, e) ->
      if List.exists (String.equal name) scope then
        Expr.Assign (name, lower_expr scope e)
      else Expr.Field_set (Expr.This, name, lower_expr scope e)
  | Sfieldset (o, f, v) ->
      Expr.Field_set (lower_expr scope o, f, lower_expr scope v)
  | Sindexset (a, i, v) ->
      Expr.Index_set
        (lower_expr scope a, lower_expr scope i, lower_expr scope v)
  | Sfor (var, init, cond, step_var, step, body) ->
      let inner = var :: scope in
      let step_stmt =
        if List.exists (String.equal step_var) inner then
          Expr.Assign (step_var, lower_expr inner step)
        else Expr.Field_set (Expr.This, step_var, lower_expr inner step)
      in
      Expr.Let
        ( var,
          lower_expr scope init,
          Expr.While
            ( lower_expr inner cond,
              Expr.Seq [ lower_block inner body; step_stmt ] ) )
  | Sif (c, t, e) ->
      Expr.If (lower_expr scope c, lower_block scope t, lower_block scope e)
  | Swhile (c, b) -> Expr.While (lower_expr scope c, lower_block scope b)
  | Sexpr e -> lower_expr scope e
