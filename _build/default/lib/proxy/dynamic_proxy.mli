(** Dynamic proxies: the interposition layer of §6.

    A proxy wraps a conformant object so callers can invoke it through the
    type of interest's vocabulary. Invocation translates the method name,
    permutes arguments (rule iv), and recursively wraps argument and return
    objects whose static types differ between the two sides — the
    "mismatch increases with the depth of the matching" remark of §6.2.

    Dispatch policy: an invocation found in the conformance mapping is
    translated; anything else is {e forwarded optimistically} under its own
    name and argument order. With the full rules every interest-type method
    is in the mapping, so optimistic forwarding is only exercised by
    identity mappings — or by proxies built from weakened rules, where it
    is exactly the unsafe behaviour experiment E6 quantifies. *)

open Pti_cts

type context
(** Shared machinery for a family of proxies: the registry that runs
    invocations and the checker that derives nested mappings on demand. *)

val create_context : Registry.t -> Pti_conformance.Checker.t -> context
val context_registry : context -> Registry.t

val wrap : context -> interest:string -> mapping:Pti_conformance.Mapping.t ->
  Value.value -> Value.value
(** [wrap cx ~interest ~mapping v] presents [v] as [interest]. Identity
    mappings still produce a proxy (uniform invocation path — this is the
    indirection §7.1 measures), but no translation happens inside. *)

val wrap_compound : context ->
  interests:(string * Pti_conformance.Mapping.t) list -> Value.value ->
  Value.value
(** A proxy answering the union of several interests' vocabularies
    (compound types, §2.2 of the paper): an invocation is translated by
    the first mapping that knows the method, and forwarded optimistically
    when none does. The advertised interface is the compound notation
    [\[A, B\]].
    @raise Invalid_argument on an empty list. *)

val coerce : context -> interest:string -> Value.value -> Value.value
(** [coerce cx ~interest v]: [v] unchanged when it is not an object or
    already of type [interest]; otherwise checks conformance of [v]'s
    runtime type against [interest] and wraps.
    @raise Pti_cts.Eval.Runtime_error when the check fails. *)

val construct_as : context -> interest:string -> actual:string ->
  Value.value list -> Value.value
(** [construct_as cx ~interest ~actual args] instantiates the (loaded)
    class [actual] through the {e interest} type's constructor signature:
    the rule (v) witness permutes [args] into the actual constructor's
    order, and the fresh instance comes back wrapped as [interest]. This
    is how a receiver creates objects of a downloaded conformant type in
    its own vocabulary.
    @raise Pti_cts.Eval.Runtime_error when the types do not conform or no
    constructor of that arity was matched. *)

val unwrap : Value.value -> Value.value
(** Strips proxy layers down to the underlying value. *)

val is_proxy : Value.value -> bool

val invoke : Registry.t -> Value.value -> string -> Value.value list ->
  Value.value
(** Uniform invocation: {!Pti_cts.Eval.call}, re-exported so applications
    need not know whether they hold a proxy or a direct object. *)
