open Pti_cts
module Mapping = Pti_conformance.Mapping
module Checker = Pti_conformance.Checker
module Td = Pti_typedesc.Type_description
module S = Pti_util.Strutil

type context = { cx_reg : Registry.t; cx_checker : Checker.t }

let create_context reg checker = { cx_reg = reg; cx_checker = checker }
let context_registry cx = cx.cx_reg

let rec unwrap = function
  | Value.Vproxy p -> unwrap p.Value.px_target
  | v -> v

let is_proxy = function Value.Vproxy _ -> true | _ -> false

let fail fmt = Printf.ksprintf (fun s -> raise (Eval.Runtime_error s)) fmt

(* Look up the description of a qualified name through the checker's own
   resolver (registry-backed on a peer), falling back to local code. *)
let desc_of cx name =
  match Registry.find cx.cx_reg name with
  | Some cd -> Some (Td.of_class cd)
  | None -> None

let rec wrap cx ~interest ~mapping target =
  let px_invoke name args = dispatch cx interest mapping target name args in
  Value.Vproxy { Value.px_interface = interest; px_target = target; px_invoke }

and dispatch cx _interest mapping target name args =
  match Mapping.find mapping ~name ~arity:(List.length args) with
  | None ->
      (* Optimistic forwarding: identity mappings and weakened-rule proxies
         land here. May raise Runtime_error if the target lacks the
         method — the unsafety the full rules prevent. *)
      Eval.call cx.cx_reg target name args
  | Some mm ->
      let permuted = Mapping.permute args mm.Mapping.mm_perm in
      (* Contravariant side: each argument must be usable as the actual
         method's parameter type. *)
      let coerced_args =
        List.map2
          (fun ty v -> coerce_ty cx ty v)
          mm.Mapping.mm_actual_param_tys permuted
      in
      let result =
        Eval.call cx.cx_reg target mm.Mapping.mm_actual_name coerced_args
      in
      (* Covariant side: present the result as the interest return type. *)
      coerce_ty cx mm.Mapping.mm_interest_return result

and coerce_ty cx ty v =
  match ty, v with
  | Ty.Named interest, (Value.Vobj _ | Value.Vproxy _) ->
      coerce cx ~interest v
  | _ -> v

and coerce cx ~interest v =
  match v with
  | Value.Vnull | Value.Vbool _ | Value.Vint _ | Value.Vfloat _
  | Value.Vstring _ | Value.Vchar _ | Value.Varr _ ->
      v
  | Value.Vproxy p when S.equal_ci p.Value.px_interface interest -> v
  | Value.Vproxy _ | Value.Vobj _ -> (
      let runtime_cls =
        match unwrap v with
        | Value.Vobj o -> o.Value.cls
        | _ -> assert false
      in
      if S.equal_ci runtime_cls interest then unwrap v
      else
        match desc_of cx runtime_cls, desc_of cx interest with
        | Some actual_d, Some interest_d -> (
            match
              Checker.check cx.cx_checker ~actual:actual_d ~interest:interest_d
            with
            | Checker.Conformant m ->
                if m.Mapping.identity then unwrap v
                else wrap cx ~interest ~mapping:m (unwrap v)
            | Checker.Not_conformant fs ->
                fail "cannot view %s as %s: %s" runtime_cls interest
                  (match fs with
                  | f :: _ -> f.Checker.message
                  | [] -> "not conformant"))
        | None, _ -> fail "cannot resolve runtime type %s" runtime_cls
        | _, None -> fail "cannot resolve interest type %s" interest)

let construct_as cx ~interest ~actual args =
  match desc_of cx actual, desc_of cx interest with
  | None, _ -> fail "cannot resolve actual type %s" actual
  | _, None -> fail "cannot resolve interest type %s" interest
  | Some actual_d, Some interest_d -> (
      match Checker.check cx.cx_checker ~actual:actual_d ~interest:interest_d with
      | Checker.Not_conformant fs ->
          fail "cannot construct %s as %s: %s" actual interest
            (match fs with f :: _ -> f.Checker.message | [] -> "not conformant")
      | Checker.Conformant m ->
          let arity = List.length args in
          let actual_args =
            if m.Mapping.identity then args
            else
              match Mapping.find_ctor m ~arity with
              | Some cm ->
                  List.map2
                    (fun ty v -> coerce_ty cx ty v)
                    cm.Mapping.cm_actual_param_tys
                    (Mapping.permute args cm.Mapping.cm_perm)
              | None ->
                  fail "no conformant constructor of arity %d on %s" arity
                    actual
          in
          let instance = Eval.construct cx.cx_reg actual actual_args in
          if m.Mapping.identity then instance
          else wrap cx ~interest ~mapping:m instance)

let wrap_compound cx ~interests target =
  if interests = [] then invalid_arg "Dynamic_proxy.wrap_compound: empty";
  let label =
    "[" ^ String.concat ", " (List.map fst interests) ^ "]"
  in
  let px_invoke name args =
    let arity = List.length args in
    let rec try_mappings = function
      | [] ->
          (* No interest claims the method: optimistic forwarding. *)
          Eval.call cx.cx_reg target name args
      | (interest, mapping) :: rest -> (
          match Mapping.find mapping ~name ~arity with
          | Some _ -> dispatch cx interest mapping target name args
          | None -> try_mappings rest)
    in
    try_mappings interests
  in
  Value.Vproxy { Value.px_interface = label; px_target = target; px_invoke }

let invoke = Eval.call
