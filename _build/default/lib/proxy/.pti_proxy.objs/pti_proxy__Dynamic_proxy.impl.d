lib/proxy/dynamic_proxy.ml: Eval List Printf Pti_conformance Pti_cts Pti_typedesc Pti_util Registry String Ty Value
