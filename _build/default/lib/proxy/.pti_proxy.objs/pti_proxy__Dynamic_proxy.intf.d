lib/proxy/dynamic_proxy.mli: Pti_conformance Pti_cts Registry Value
