(** RFC 4648 base64 (standard alphabet, with padding).

    The hybrid envelope of Figure 3 embeds binary-serialized payloads inside
    an XML message; binary bytes are carried as base64 text. *)

val encode : string -> string

val decode : string -> string option
(** [None] if the input is not well-formed base64 (whitespace is allowed and
    ignored, as producers may line-wrap). *)

val decode_exn : string -> string
(** @raise Invalid_argument on malformed input. *)
