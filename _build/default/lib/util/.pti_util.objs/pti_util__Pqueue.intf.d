lib/util/pqueue.mli:
