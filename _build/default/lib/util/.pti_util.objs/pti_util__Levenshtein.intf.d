lib/util/levenshtein.mli:
