lib/util/splitmix.mli:
