lib/util/levenshtein.ml: Array String
