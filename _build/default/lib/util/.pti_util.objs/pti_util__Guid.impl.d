lib/util/guid.ml: Array Buffer Bytes Char Format Int64 Printf Splitmix String
