lib/util/guid.mli: Format Splitmix
