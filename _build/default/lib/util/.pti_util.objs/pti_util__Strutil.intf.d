lib/util/strutil.mli:
