let alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = Char.code s.[!i]
    and b1 = Char.code s.[!i + 1]
    and b2 = Char.code s.[!i + 2] in
    Buffer.add_char out alphabet.[b0 lsr 2];
    Buffer.add_char out alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char out alphabet.[((b1 land 0xf) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char out alphabet.[b2 land 0x3f];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = Char.code s.[!i] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[(b0 land 0x3) lsl 4];
      Buffer.add_string out "=="
  | 2 ->
      let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
      Buffer.add_char out alphabet.[(b1 land 0xf) lsl 2];
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

let value_of = function
  | 'A' .. 'Z' as c -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' as c -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let decode s =
  let out = Buffer.create (String.length s * 3 / 4) in
  let quad = Array.make 4 0 in
  let k = ref 0 in
  let pad = ref 0 in
  let bad = ref false in
  let flush () =
    let b0 = quad.(0) and b1 = quad.(1) and b2 = quad.(2) and b3 = quad.(3) in
    Buffer.add_char out (Char.chr ((b0 lsl 2) lor (b1 lsr 4)));
    if !pad < 2 then
      Buffer.add_char out (Char.chr (((b1 land 0xf) lsl 4) lor (b2 lsr 2)));
    if !pad < 1 then
      Buffer.add_char out (Char.chr (((b2 land 0x3) lsl 6) lor b3))
  in
  String.iter
    (fun c ->
      if !bad then ()
      else
        match c with
        | ' ' | '\t' | '\n' | '\r' -> ()
        | '=' ->
            if !k < 2 then bad := true
            else begin
              quad.(!k) <- 0;
              incr k;
              incr pad;
              if !k = 4 then begin
                flush ();
                k := 0
                (* further non-whitespace after completed padding is bad;
                   handled by pad check below *)
              end
            end
        | _ -> (
            if !pad > 0 then bad := true
            else
              match value_of c with
              | Some v ->
                  quad.(!k) <- v;
                  incr k;
                  if !k = 4 then begin
                    flush ();
                    k := 0
                  end
              | None -> bad := true))
    s;
  if !bad || !k <> 0 || !pad > 2 then None else Some (Buffer.contents out)

let decode_exn s =
  match decode s with
  | Some v -> v
  | None -> invalid_arg "Base64.decode_exn: malformed input"
