let starts_with ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let split_on c s = String.split_on_char c s

let join sep parts = String.concat sep parts

let equal_ci a b =
  String.equal (String.lowercase_ascii a) (String.lowercase_ascii b)

let compare_ci a b =
  String.compare (String.lowercase_ascii a) (String.lowercase_ascii b)

let is_identifier s =
  let ok_first = function 'A' .. 'Z' | 'a' .. 'z' | '_' -> true | _ -> false in
  let ok_rest = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' -> true
    | _ -> false
  in
  String.length s > 0
  && ok_first s.[0]
  && String.for_all ok_rest (String.sub s 1 (String.length s - 1))

let common_prefix_length a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let truncate_middle ~max s =
  if max < 5 then invalid_arg "Strutil.truncate_middle: max too small";
  let n = String.length s in
  if n <= max then s
  else
    let keep = max - 3 in
    let left = (keep + 1) / 2 and right = keep / 2 in
    String.sub s 0 left ^ "..." ^ String.sub s (n - right) right
