type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Mask to OCaml's non-negative int range before reducing. *)
  let v = Int64.to_int (next64 t) land max_int in
  v mod bound

let float t =
  let v = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float v *. (1. /. 9007199254740992.)

let bool t = Int64.logand (next64 t) 1L = 1L

let split t = create (next64 t)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Splitmix.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
