(** Small string helpers shared across the middleware. *)

val starts_with : prefix:string -> string -> bool
val split_on : char -> string -> string list

val join : string -> string list -> string
(** [join sep parts] concatenates with [sep] between elements. *)

val equal_ci : string -> string -> bool
(** ASCII case-insensitive equality; identifier comparison in the CTS is
    case-insensitive, mirroring the paper's name rule. *)

val compare_ci : string -> string -> int

val is_identifier : string -> bool
(** True for [\[A-Za-z_\]\[A-Za-z0-9_\]*] — validity check used by the class
    builder DSL. *)

val common_prefix_length : string -> string -> int

val truncate_middle : max:int -> string -> string
(** Shortens long strings for log and diagnostic output, keeping both ends. *)
