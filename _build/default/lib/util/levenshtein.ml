let lower = String.lowercase_ascii

(* Classic two-row dynamic programme; O(|a|*|b|) time, O(min) space. *)
let distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    (* Keep the shorter string in the inner dimension. *)
    let a, b, la, lb = if la <= lb then a, b, la, lb else b, a, lb, la in
    let prev = Array.init (la + 1) (fun i -> i) in
    let cur = Array.make (la + 1) 0 in
    for j = 1 to lb do
      cur.(0) <- j;
      let bj = b.[j - 1] in
      for i = 1 to la do
        let cost = if a.[i - 1] = bj then 0 else 1 in
        cur.(i) <-
          min (min (cur.(i - 1) + 1) (prev.(i) + 1)) (prev.(i - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (la + 1)
    done;
    prev.(la)
  end

let distance_ci a b = distance (lower a) (lower b)

let within ~limit a b =
  if limit < 0 then invalid_arg "Levenshtein.within: negative limit";
  let a = lower a and b = lower b in
  let la = String.length a and lb = String.length b in
  if abs (la - lb) > limit then false
  else if limit = 0 then String.equal a b
  else begin
    (* Banded computation: cells further than [limit] from the diagonal can
       never contribute to a distance <= limit. *)
    let inf = max_int / 2 in
    let prev = Array.make (la + 1) inf in
    let cur = Array.make (la + 1) inf in
    for i = 0 to min la limit do
      prev.(i) <- i
    done;
    let exceeded = ref false in
    let j = ref 1 in
    while (not !exceeded) && !j <= lb do
      Array.fill cur 0 (la + 1) inf;
      if !j <= limit then cur.(0) <- !j;
      let lo = max 1 (!j - limit) and hi = min la (!j + limit) in
      let bj = b.[!j - 1] in
      let row_min = ref inf in
      for i = lo to hi do
        let cost = if a.[i - 1] = bj then 0 else 1 in
        let v =
          min (min (cur.(i - 1) + 1) (prev.(i) + 1)) (prev.(i - 1) + cost)
        in
        cur.(i) <- v;
        if v < !row_min then row_min := v
      done;
      if cur.(0) < !row_min then row_min := cur.(0);
      if !row_min > limit then exceeded := true;
      Array.blit cur 0 prev 0 (la + 1);
      incr j
    done;
    (not !exceeded) && prev.(la) <= limit
  end

let similarity a b =
  let la = String.length a and lb = String.length b in
  let m = max la lb in
  if m = 0 then 1. else 1. -. float_of_int (distance_ci a b) /. float_of_int m

let wildcard_match ~pattern s =
  let p = lower pattern and s = lower s in
  let lp = String.length p and ls = String.length s in
  (* Iterative matcher with single backtrack point per '*'; linear in
     practice, worst case O(lp*ls). *)
  let rec go pi si star_pi star_si =
    if si >= ls then
      (* Remaining pattern must be all '*'. *)
      let rec only_stars k = k >= lp || (p.[k] = '*' && only_stars (k + 1)) in
      only_stars pi
    else if pi < lp && (p.[pi] = '?' || p.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if pi < lp && p.[pi] = '*' then go (pi + 1) si (Some pi) si
    else
      match star_pi with
      | Some sp -> go (sp + 1) (star_si + 1) star_pi (star_si + 1)
      | None -> false
  in
  go 0 0 None 0
