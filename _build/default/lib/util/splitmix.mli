(** Deterministic splitmix64 pseudo-random generator.

    Every source of randomness in the repository (GUID generation, workload
    generators, property tests that need auxiliary noise) goes through this
    module so that runs are reproducible. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0; bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0.; 1.)]. *)

val bool : t -> bool

val split : t -> t
(** A statistically independent generator derived from [t]'s stream. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
