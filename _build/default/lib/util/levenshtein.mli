(** Levenshtein edit distance, used by the conformance name rule (i).

    The paper requires the case-insensitive Levenshtein distance between two
    identifiers to be [0] for them to conform; a configurable threshold and
    wildcard matching are the paper's own suggested relaxations. *)

val distance : string -> string -> int
(** [distance a b] is the minimal number of single-character insertions,
    deletions and substitutions turning [a] into [b]. Case sensitive. *)

val distance_ci : string -> string -> int
(** Case-insensitive (ASCII) variant of {!distance}. *)

val within : limit:int -> string -> string -> bool
(** [within ~limit a b] is [distance_ci a b <= limit], computed with an early
    exit: the banded computation aborts as soon as the distance provably
    exceeds [limit], making repeated conformance checks cheap. *)

val similarity : string -> string -> float
(** [similarity a b] is [1. -. distance_ci a b / max-length], in [[0.;1.]];
    [1.] for equal strings (and for two empty strings). Used by the
    [Best_score] ambiguity policy. *)

val wildcard_match : pattern:string -> string -> bool
(** Case-insensitive glob matching where ['*'] matches any run of characters
    and ['?'] exactly one — the "wildcards could be allowed" extension of
    §4.2. *)
