type t = { hi : int64; lo : int64 }

let compare a b =
  match Int64.unsigned_compare a.hi b.hi with
  | 0 -> Int64.unsigned_compare a.lo b.lo
  | c -> c

let equal a b = a.hi = b.hi && a.lo = b.lo
let hash a = Int64.to_int (Int64.logxor a.hi a.lo) land max_int
let nil = { hi = 0L; lo = 0L }

let make rng =
  let rec draw () =
    let g = { hi = Splitmix.next64 rng; lo = Splitmix.next64 rng } in
    if equal g nil then draw () else g
  in
  draw ()

(* FNV-1a 64-bit, run twice with distinct offsets to fill 128 bits. *)
let fnv1a offset s =
  let prime = 0x100000001B3L in
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let of_name s =
  let hi = fnv1a 0xCBF29CE484222325L s in
  let lo = fnv1a 0x9AE16A3B2F90404FL s in
  let g = { hi; lo } in
  if equal g nil then { hi = 1L; lo = 1L } else g

let to_string { hi; lo } =
  let b = Bytes.create 16 in
  for i = 0 to 7 do
    Bytes.set b i
      (Char.chr
         (Int64.to_int (Int64.shift_right_logical hi ((7 - i) * 8)) land 0xff))
  done;
  for i = 0 to 7 do
    Bytes.set b (8 + i)
      (Char.chr
         (Int64.to_int (Int64.shift_right_logical lo ((7 - i) * 8)) land 0xff))
  done;
  let hex = Buffer.create 36 in
  Bytes.iteri
    (fun i c ->
      if i = 4 || i = 6 || i = 8 || i = 10 then Buffer.add_char hex '-';
      Buffer.add_string hex (Printf.sprintf "%02x" (Char.code c)))
    b;
  Buffer.contents hex

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let of_string s =
  if String.length s <> 36 then None
  else begin
    let ok = ref true in
    let nibbles = Array.make 32 0 in
    let k = ref 0 in
    String.iteri
      (fun i c ->
        match i with
        | 8 | 13 | 18 | 23 -> if c <> '-' then ok := false
        | _ -> (
            match hex_val c with
            | Some v ->
                if !k < 32 then begin
                  nibbles.(!k) <- v;
                  incr k
                end
                else ok := false
            | None -> ok := false))
      s;
    if (not !ok) || !k <> 32 then None
    else begin
      let word off =
        let v = ref 0L in
        for i = off to off + 15 do
          v := Int64.logor (Int64.shift_left !v 4) (Int64.of_int nibbles.(i))
        done;
        !v
      in
      Some { hi = word 0; lo = word 16 }
    end
  end

let of_string_exn s =
  match of_string s with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Guid.of_string_exn: %S" s)

let pp ppf g = Format.pp_print_string ppf (to_string g)
