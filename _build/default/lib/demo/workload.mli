(** Synthetic type populations for the protocol (E5) and safety-ablation
    (E6) experiments.

    Each family lives in its own namespace and assembly and mimics the
    [newsw.Person]/[newsw.Address] module written by yet another
    programmer. Depending on [flavor], the family is:

    - [Conformant]: implicitly structurally conformant to [newsw.Person] —
      method names case-mangled, member order shuffled, constructor
      arguments permuted (all derived deterministically from the family
      index);
    - [Trap_missing]: the setters are missing — rejected by the full rules,
      accepted by name-only rules, and fails at run time on [setName];
    - [Trap_arity]: [getName] takes a spurious argument — same story for
      arity;
    - [Trap_fieldtype]: the [age] field (and its accessors) use [float]
      instead of [int] — caught by the field aspect (rule ii) and by the
      method aspect; with both disabled it corrupts arithmetic at run
      time;
    - [Typo of d]: structurally conformant but the class name is [d] edits
      away from ["Person"] ([1 <= d <= 3]). *)

open Pti_cts

type flavor = Conformant | Trap_missing | Trap_arity | Trap_fieldtype | Typo of int

val flavor_name : flavor -> string

val family : index:int -> flavor:flavor -> Assembly.t
(** Deterministic: equal arguments yield identical assemblies (and GUIDs). *)

val person_name : index:int -> flavor:flavor -> string
(** Qualified name of the family's person class. *)

val make_person : Registry.t -> index:int -> flavor:flavor -> name:string ->
  age:int -> Value.value
(** Construct an instance (the family's assembly must be loaded). *)

val interest_methods : (string * Value.value list) list
(** The calls a [newsw.Person] client would make — used to probe whether an
    accepted object actually works (E6's runtime-failure count). Each entry
    is a method name plus arguments. *)
