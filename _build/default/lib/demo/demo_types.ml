open Pti_cts
module B = Builder
module E = Expr

let news_person = "newsw.Person"
let news_address = "newsw.Address"
let news_event = "newsw.NewsEvent"
let social_person = "socialw.person"
let social_address = "socialw.address"
let social_event = "socialw.newsevent"
let bogus_person = "bogusw.Person"
let trap_person = "trapw.Person"
let typo_person = "typow.Persom"
let typo_address = "typow.Address"
let printer = "printw.Printer"
let printsvc = "svcw.printer"

(* ------------------------------------------------------------------ *)
(* Programmer A: the "news" world.                                      *)
(* ------------------------------------------------------------------ *)

let news_address_def asm =
  B.class_ ~ns:[ "newsw" ] ~assembly:asm "Address"
  |> B.ctor ~body:(E.Seq [ E.set "street" (E.Var "s"); E.set "city" (E.Var "c") ])
       [ ("s", Ty.String); ("c", Ty.String) ]
  |> B.property "street" Ty.String
  |> B.property "city" Ty.String
  |> B.method_ "format" [] Ty.String
       ~body:(E.Binop (E.Concat, E.get "street", E.Binop (E.Concat, E.str ", ", E.get "city")))
  |> B.build

let news_person_def asm =
  B.class_ ~ns:[ "newsw" ] ~assembly:asm "Person"
  |> B.ctor
       ~body:(E.Seq [ E.set "name" (E.Var "n"); E.set "age" (E.Var "a") ])
       [ ("n", Ty.String); ("a", Ty.Int) ]
  |> B.property "name" Ty.String
  |> B.property "age" Ty.Int
  |> B.field "home" (Ty.Named "newsw.Address")
  |> B.getter "getHome" ~field:"home" (Ty.Named "newsw.Address")
  |> B.setter "setHome" ~field:"home" (Ty.Named "newsw.Address")
  |> B.field "spouse" (Ty.Named "newsw.Person")
  |> B.getter "getSpouse" ~field:"spouse" (Ty.Named "newsw.Person")
  |> B.setter "setSpouse" ~field:"spouse" (Ty.Named "newsw.Person")
  |> B.method_ "greet" [] Ty.String
       ~body:(E.Binop (E.Concat, E.str "Hello, ", E.get "name"))
  |> B.method_ "older" [ ("years", Ty.Int) ] Ty.Int
       ~body:(E.Binop (E.Add, E.get "age", E.Var "years"))
  |> B.build

let news_event_def asm =
  B.class_ ~ns:[ "newsw" ] ~assembly:asm "NewsEvent"
  |> B.ctor
       ~body:
         (E.Seq
            [
              E.set "headline" (E.Var "h");
              E.set "author" (E.Var "a");
              E.set "priority" (E.Var "p");
            ])
       [ ("h", Ty.String); ("a", Ty.Named "newsw.Person"); ("p", Ty.Int) ]
  |> B.property "headline" Ty.String
  |> B.field "author" (Ty.Named "newsw.Person")
  |> B.getter "getAuthor" ~field:"author" (Ty.Named "newsw.Person")
  |> B.setter "setAuthor" ~field:"author" (Ty.Named "newsw.Person")
  |> B.property "priority" Ty.Int
  |> B.method_ "summary" [] Ty.String
       ~body:
         (E.Binop
            ( E.Concat,
              E.get "headline",
              E.Binop
                ( E.Concat,
                  E.str " (by ",
                  E.Binop
                    ( E.Concat,
                      E.Call (E.get "author", "getName", []),
                      E.str ")" ) ) ))
  |> B.build

let news_assembly () =
  Assembly.make ~name:"news-asm"
    [ news_address_def "news-asm"; news_person_def "news-asm";
      news_event_def "news-asm" ]

(* ------------------------------------------------------------------ *)
(* Programmer B: the "social" world — conformant but not identical.     *)
(* Differences: lowercase class names, method-name case, member order,   *)
(* permuted constructor arguments, own namespace/assembly/GUIDs.         *)
(* ------------------------------------------------------------------ *)

let social_address_def asm =
  B.class_ ~ns:[ "socialw" ] ~assembly:asm "address"
  |> B.ctor
       ~body:(E.Seq [ E.set "city" (E.Var "c"); E.set "street" (E.Var "s") ])
       [ ("c", Ty.String); ("s", Ty.String) ]
  |> B.property ~getter_name:"GETCITY" ~setter_name:"SETCITY" "city" Ty.String
  |> B.property ~getter_name:"getstreet" ~setter_name:"setstreet" "street"
       Ty.String
  |> B.method_ "FORMAT" [] Ty.String
       ~body:
         (E.Binop
            (E.Concat, E.get "street", E.Binop (E.Concat, E.str ", ", E.get "city")))
  |> B.build

let social_person_def asm =
  B.class_ ~ns:[ "socialw" ] ~assembly:asm "person"
  |> B.ctor
       ~body:(E.Seq [ E.set "age" (E.Var "a"); E.set "name" (E.Var "n") ])
       [ ("a", Ty.Int); ("n", Ty.String) ]
  |> B.field "age" Ty.Int
  |> B.getter "GETAGE" ~field:"age" Ty.Int
  |> B.setter "SETAGE" ~field:"age" Ty.Int
  |> B.field "name" Ty.String
  |> B.getter "getname" ~field:"name" Ty.String
  |> B.setter "setname" ~field:"name" Ty.String
  |> B.field "spouse" (Ty.Named "socialw.person")
  |> B.getter "getspouse" ~field:"spouse" (Ty.Named "socialw.person")
  |> B.setter "setspouse" ~field:"spouse" (Ty.Named "socialw.person")
  |> B.field "home" (Ty.Named "socialw.address")
  |> B.getter "gethome" ~field:"home" (Ty.Named "socialw.address")
  |> B.setter "sethome" ~field:"home" (Ty.Named "socialw.address")
  |> B.method_ "GREET" [] Ty.String
       ~body:(E.Binop (E.Concat, E.str "Hello, ", E.get "name"))
  |> B.method_ "OLDER" [ ("extra", Ty.Int) ] Ty.Int
       ~body:(E.Binop (E.Add, E.get "age", E.Var "extra"))
  |> B.build

let social_event_def asm =
  B.class_ ~ns:[ "socialw" ] ~assembly:asm "newsevent"
  |> B.ctor
       ~body:
         (E.Seq
            [
              E.set "priority" (E.Var "p");
              E.set "headline" (E.Var "h");
              E.set "author" (E.Var "a");
            ])
       [ ("p", Ty.Int); ("h", Ty.String); ("a", Ty.Named "socialw.person") ]
  |> B.field "priority" Ty.Int
  |> B.getter "GETPRIORITY" ~field:"priority" Ty.Int
  |> B.setter "SETPRIORITY" ~field:"priority" Ty.Int
  |> B.field "headline" Ty.String
  |> B.getter "getheadline" ~field:"headline" Ty.String
  |> B.setter "setheadline" ~field:"headline" Ty.String
  |> B.field "author" (Ty.Named "socialw.person")
  |> B.getter "getauthor" ~field:"author" (Ty.Named "socialw.person")
  |> B.setter "setauthor" ~field:"author" (Ty.Named "socialw.person")
  |> B.method_ "SUMMARY" [] Ty.String
       ~body:
         (E.Binop
            ( E.Concat,
              E.get "headline",
              E.Binop
                ( E.Concat,
                  E.str " (by ",
                  E.Binop
                    ( E.Concat,
                      E.Call (E.get "author", "getname", []),
                      E.str ")" ) ) ))
  |> B.build

let social_assembly () =
  Assembly.make ~name:"social-asm"
    [
      social_address_def "social-asm"; social_person_def "social-asm";
      social_event_def "social-asm";
    ]

(* ------------------------------------------------------------------ *)
(* Non-conformant populations                                           *)
(* ------------------------------------------------------------------ *)

(* Missing setName / setSpouse / setHome etc.: field & method aspects fail. *)
let bogus_assembly () =
  Assembly.make ~name:"bogus-asm"
    [
      (B.class_ ~ns:[ "bogusw" ] ~assembly:"bogus-asm" "Person"
      |> B.ctor ~body:(E.set "name" (E.Var "n")) [ ("n", Ty.String) ]
      |> B.field "name" Ty.String
      |> B.getter "getName" ~field:"name" Ty.String
      |> B.build);
    ]

(* The trap: right name, alien structure. Name-only rules accept it. *)
let trap_assembly () =
  Assembly.make ~name:"trap-asm"
    [
      (B.class_ ~ns:[ "trapw" ] ~assembly:"trap-asm" "Person"
      |> B.ctor ~body:(E.set "payload" (E.Var "x")) [ ("x", Ty.Int) ]
      |> B.field "payload" Ty.Int
      |> B.method_ "detonate" [] Ty.Int ~body:(E.get "payload")
      |> B.build);
    ]

(* Structurally conformant to newsw.Person but named "Persom" (LD 1). *)
let typo_assembly () =
  Assembly.make ~name:"typo-asm"
    [
      (B.class_ ~ns:[ "typow" ] ~assembly:"typo-asm" "Address"
      |> B.ctor
           ~body:(E.Seq [ E.set "street" (E.Var "s"); E.set "city" (E.Var "c") ])
           [ ("s", Ty.String); ("c", Ty.String) ]
      |> B.property "street" Ty.String
      |> B.property "city" Ty.String
      |> B.method_ "format" [] Ty.String
           ~body:
             (E.Binop
                ( E.Concat,
                  E.get "street",
                  E.Binop (E.Concat, E.str ", ", E.get "city") ))
      |> B.build);
      (B.class_ ~ns:[ "typow" ] ~assembly:"typo-asm" "Persom"
      |> B.ctor
           ~body:(E.Seq [ E.set "name" (E.Var "n"); E.set "age" (E.Var "a") ])
           [ ("n", Ty.String); ("a", Ty.Int) ]
      |> B.property "name" Ty.String
      |> B.property "age" Ty.Int
      |> B.field "home" (Ty.Named "typow.Address")
      |> B.getter "getHome" ~field:"home" (Ty.Named "typow.Address")
      |> B.setter "setHome" ~field:"home" (Ty.Named "typow.Address")
      |> B.field "spouse" (Ty.Named "typow.Persom")
      |> B.getter "getSpouse" ~field:"spouse" (Ty.Named "typow.Persom")
      |> B.setter "setSpouse" ~field:"spouse" (Ty.Named "typow.Persom")
      |> B.method_ "greet" [] Ty.String
           ~body:(E.Binop (E.Concat, E.str "Hello, ", E.get "name"))
      |> B.method_ "older" [ ("years", Ty.Int) ] Ty.Int
           ~body:(E.Binop (E.Add, E.get "age", E.Var "years"))
      |> B.build);
    ]

(* ------------------------------------------------------------------ *)
(* Borrow/lend resources                                                *)
(* ------------------------------------------------------------------ *)

let printer_assembly () =
  Assembly.make ~name:"printer-asm"
    [
      (B.class_ ~ns:[ "printw" ] ~assembly:"printer-asm" "Printer"
      |> B.ctor
           ~body:
             (E.Seq [ E.set "label" (E.Var "l"); E.set "printed" (E.int 0) ])
           [ ("l", Ty.String) ]
      |> B.property "label" Ty.String
      |> B.property "printed" Ty.Int
      |> B.method_ "print" [ ("doc", Ty.String) ] Ty.Int
           ~body:
             (E.Seq
                [
                  E.set "printed" (E.Binop (E.Add, E.get "printed", E.int 1));
                  E.get "printed";
                ])
      |> B.method_ "status" [] Ty.String
           ~body:
             (E.Binop
                ( E.Concat,
                  E.get "label",
                  E.Binop
                    ( E.Concat,
                      E.str ": ",
                      E.Call (E.get "printed", "toString", []) ) ))
      |> B.build);
    ]

(* The borrower's own idea of a printer: same structure, own spelling. *)
let printsvc_assembly () =
  Assembly.make ~name:"printsvc-asm"
    [
      (B.class_ ~ns:[ "svcw" ] ~assembly:"printsvc-asm" "printer"
      |> B.ctor
           ~body:
             (E.Seq [ E.set "printed" (E.int 0); E.set "label" (E.Var "l") ])
           [ ("l", Ty.String) ]
      |> B.field "printed" Ty.Int
      |> B.getter "GETPRINTED" ~field:"printed" Ty.Int
      |> B.setter "SETPRINTED" ~field:"printed" Ty.Int
      |> B.field "label" Ty.String
      |> B.getter "getLabel" ~field:"label" Ty.String
      |> B.setter "setLabel" ~field:"label" Ty.String
      |> B.method_ "PRINT" [ ("content", Ty.String) ] Ty.Int
           ~body:
             (E.Seq
                [
                  E.set "printed" (E.Binop (E.Add, E.get "printed", E.int 1));
                  E.get "printed";
                ])
      |> B.method_ "STATUS" [] Ty.String
           ~body:
             (E.Binop
                ( E.Concat,
                  E.get "label",
                  E.Binop
                    ( E.Concat,
                      E.str ": ",
                      E.Call (E.get "printed", "toString", []) ) ))
      |> B.build);
    ]

(* ------------------------------------------------------------------ *)
(* Instances                                                            *)
(* ------------------------------------------------------------------ *)

let make_news_person reg ~name ~age =
  Eval.construct reg news_person [ Value.Vstring name; Value.Vint age ]

let make_social_person reg ~name ~age =
  Eval.construct reg social_person [ Value.Vint age; Value.Vstring name ]

let make_trap_person reg = Eval.construct reg trap_person [ Value.Vint 13 ]

let make_news_event reg ~headline ~author ~priority =
  Eval.construct reg news_event
    [ Value.Vstring headline; author; Value.Vint priority ]

let make_social_event reg ~headline ~author ~priority =
  Eval.construct reg social_event
    [ Value.Vint priority; Value.Vstring headline; author ]

let make_printer reg ~label = Eval.construct reg printer [ Value.Vstring label ]

let fresh_registry assemblies =
  let reg = Registry.create () in
  List.iter (Assembly.load reg) assemblies;
  reg

(* silence unused warnings for names exported but not used internally *)
let _ = social_address
let _ = typo_address
