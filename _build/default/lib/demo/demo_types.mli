(** The paper's running example, authored several times over.

    §3.1 motivates type interoperability with a [Person] type written by
    different programmers. This module provides that population:

    - {!news_assembly} — programmer A's world ([newsw] namespace):
      [Address], [Person] (name/age/address/spouse, getters/setters, a
      [greet] method), [NewsEvent] (headline/author/priority).
    - {!social_assembly} — programmer B's world ([socialw]): structurally
      conformant variants — method names differing only in case, permuted
      constructor arguments, differently ordered members, own namespace and
      assembly (hence different GUIDs).
    - {!bogus_assembly} — [bogusw.Person] missing a setter: rejected by the
      full rules.
    - {!trap_assembly} — [trapw.Person]: the name conforms but nothing else
      does; accepted by name-only rules and blows up at invocation time
      (experiment E6's trap).
    - {!typo_assembly} — [typow.Persom]: structurally conformant but one
      edit away in the type name; matched only when the Levenshtein
      threshold is relaxed to 1.
    - {!printer_assembly} / {!printsvc_assembly} — lender/borrower resource
      types for the borrow/lend example.

    All GUIDs are content-derived and deterministic. *)

open Pti_cts

val news_assembly : unit -> Assembly.t
val social_assembly : unit -> Assembly.t
val bogus_assembly : unit -> Assembly.t
val trap_assembly : unit -> Assembly.t
val typo_assembly : unit -> Assembly.t
val printer_assembly : unit -> Assembly.t
val printsvc_assembly : unit -> Assembly.t

(** Qualified names, for convenience. *)

val news_person : string
val news_address : string
val news_event : string
val social_person : string
val social_event : string
val bogus_person : string
val trap_person : string
val typo_person : string
val printer : string
val printsvc : string

(** {1 Instance helpers} — construct through the CTS constructors. *)

val make_news_person : Registry.t -> name:string -> age:int -> Value.value
val make_social_person : Registry.t -> name:string -> age:int -> Value.value
val make_trap_person : Registry.t -> Value.value

val make_news_event : Registry.t -> headline:string -> author:Value.value ->
  priority:int -> Value.value

val make_social_event : Registry.t -> headline:string -> author:Value.value ->
  priority:int -> Value.value

val make_printer : Registry.t -> label:string -> Value.value

val fresh_registry : Assembly.t list -> Registry.t
(** A registry with the given assemblies loaded. *)
