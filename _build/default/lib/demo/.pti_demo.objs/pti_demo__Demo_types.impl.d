lib/demo/demo_types.ml: Assembly Builder Eval Expr List Pti_cts Registry Ty Value
