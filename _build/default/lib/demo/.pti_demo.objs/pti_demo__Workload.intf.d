lib/demo/workload.mli: Assembly Pti_cts Registry Value
