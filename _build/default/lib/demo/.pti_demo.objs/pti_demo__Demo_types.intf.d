lib/demo/demo_types.mli: Assembly Pti_cts Registry Value
