lib/demo/workload.ml: Assembly Builder Bytes Char Eval Expr Int64 List Meta Printf Pti_cts Pti_util Registry String Ty Value
