lib/tps/tps.ml: List Pti_core Pti_cts Pti_net String Value
