lib/tps/tps.mli: Pti_core Pti_cts Pti_net Value
