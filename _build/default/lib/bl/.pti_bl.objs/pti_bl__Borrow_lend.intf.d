lib/bl/borrow_lend.mli: Format Pti_core Pti_cts Value
