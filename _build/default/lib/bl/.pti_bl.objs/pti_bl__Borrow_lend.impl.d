lib/bl/borrow_lend.ml: Format List Printf Pti_core Pti_net String
