module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Sim = Pti_net.Sim

type lending = {
  lender : Peer.t;
  resource : Peer.remote_ref;
  capacity : int;
  mutable borrowed : int;
}

type lease = { lease_of : lending; mutable active : bool }

let lease_lending l = l.lease_of
let lease_active l = l.active

type borrow_error = No_conformant_resource of string list | Exhausted

let pp_borrow_error ppf = function
  | No_conformant_resource reasons ->
      Format.fprintf ppf "no conformant resource (%s)"
        (String.concat "; " reasons)
  | Exhausted -> Format.fprintf ppf "all conformant resources at capacity"

type t = { mutable listings : lending list }

let create () = { listings = [] }

let lend t lender ?(capacity = 1) value =
  let resource = Peer.export lender value in
  let lending = { lender; resource; capacity; borrowed = 0 } in
  t.listings <- t.listings @ [ lending ];
  lending

let unlend t lending =
  t.listings <- List.filter (fun l -> l != lending) t.listings

let release lease =
  if lease.active then begin
    lease.active <- false;
    let lending = lease.lease_of in
    if lending.borrowed > 0 then lending.borrowed <- lending.borrowed - 1
  end

let borrow ?lease_ms t borrower ~interest =
  let reasons = ref [] in
  let found_conformant_full = ref false in
  let rec try_listings = function
    | [] ->
        if !found_conformant_full then Error Exhausted
        else Error (No_conformant_resource (List.rev !reasons))
    | lending :: rest -> (
        match Peer.acquire borrower lending.resource ~interest with
        | Error reason ->
            reasons :=
              Printf.sprintf "%s@%s: %s" lending.resource.Peer.rr_class
                lending.resource.Peer.rr_host reason
              :: !reasons;
            try_listings rest
        | Ok proxy ->
            if lending.borrowed >= lending.capacity then begin
              found_conformant_full := true;
              reasons :=
                Printf.sprintf "%s@%s: at capacity"
                  lending.resource.Peer.rr_class lending.resource.Peer.rr_host
                :: !reasons;
              try_listings rest
            end
            else begin
              lending.borrowed <- lending.borrowed + 1;
              let lease = { lease_of = lending; active = true } in
              (match lease_ms with
              | None -> ()
              | Some delay ->
                  Sim.schedule
                    (Net.sim (Peer.net borrower))
                    ~delay
                    (fun () -> release lease));
              Ok (proxy, lease)
            end)
  in
  try_listings t.listings

let return_resource _t lease = release lease

let lendings t = t.listings
