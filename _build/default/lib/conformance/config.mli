(** Conformance-rule configuration.

    The paper's rules are fixed (§4.2); the knobs here expose (a) the
    relaxations the paper itself suggests — a Levenshtein threshold above 0
    and wildcard name patterns — and (b) selective disabling of aspects,
    used by experiment E6 to quantify how much safety each aspect buys
    (the paper's "weaker rule breaks type safety" remark). *)

type ambiguity =
  | First_match
      (** Declaration order wins — "up to the programmer" default. *)
  | Best_score
      (** Highest name-similarity (then identity permutation) wins. *)
  | Reject_ambiguous  (** More than one candidate fails the check. *)

type t = {
  name_distance : int;
      (** Max case-insensitive Levenshtein distance for names; the paper
          mandates [0]. *)
  allow_wildcards : bool;
      (** Treat ['*']/['?'] in the {e interest} type's names as wildcards. *)
  compare_namespaces : bool;
      (** Compare fully qualified names instead of simple names. Off by
          default: independently written types live in different
          namespaces. *)
  check_fields : bool;
  check_supertypes : bool;
  check_methods : bool;
  check_ctors : bool;
  check_modifiers : bool;  (** Rule (iv): "modifiers supposed to be the same". *)
  consider_permutations : bool;
      (** Rule (iv): match arguments up to permutation. *)
  ambiguity : ambiguity;
  max_depth : int;
      (** Recursion fuel for pathological hierarchies (cycles are already
          handled co-inductively). *)
}

val strict : t
(** The paper's rules: distance 0, no wildcards, all aspects on,
    permutations on, [First_match], depth 64. *)

val name_only : t
(** Only the name aspect — the explicitly warned-against weak rule. *)

val relaxed : distance:int -> t
(** [strict] with a positive Levenshtein threshold (E6 sweep). *)

val with_wildcards : t
(** [strict] plus wildcard name patterns. *)

val key : t -> string
(** Stable digest of the configuration, used in cache keys. *)

val pp : Format.formatter -> t -> unit
