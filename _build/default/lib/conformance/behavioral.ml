open Pti_cts
module Sm = Pti_util.Splitmix

type disagreement = {
  d_method : string;
  d_inputs : Value.value list;
  d_interest_result : outcome;
  d_actual_result : outcome;
}

and outcome = Returned of Value.value | Raised of string

type report = {
  probed : int;
  skipped : int;
  samples_per_method : int;
  disagreements : disagreement list;
}

let conformant r = r.disagreements = [] && r.probed > 0

let pp_outcome ppf = function
  | Returned v -> Format.fprintf ppf "returned %s" (Value.to_string v)
  | Raised msg -> Format.fprintf ppf "raised %S" msg

let pp_report ppf r =
  Format.fprintf ppf "@[<v>behavioral probe: %d methods, %d skipped, %d samples each@,"
    r.probed r.skipped r.samples_per_method;
  List.iter
    (fun d ->
      Format.fprintf ppf "  %s(%s): interest %a, actual %a@," d.d_method
        (String.concat ", " (List.map Value.to_string d.d_inputs))
        pp_outcome d.d_interest_result pp_outcome d.d_actual_result)
    r.disagreements;
  Format.fprintf ppf "@]"

(* Only scalar primitives participate; arrays and named types are the
   "rather tricky" part the paper defers. *)
let scalar = function
  | Ty.Bool | Ty.Int | Ty.Float | Ty.String | Ty.Char -> true
  | Ty.Void | Ty.Named _ | Ty.Array _ -> false

let generate rng = function
  | Ty.Bool -> Value.Vbool (Sm.bool rng)
  | Ty.Int -> Value.Vint (Sm.int rng 201 - 100)
  | Ty.Float -> Value.Vfloat (Sm.float rng *. 100.)
  | Ty.String ->
      Value.Vstring
        (Sm.pick rng [| "alpha"; "beta"; ""; "Hello"; "zz-9"; "x" |])
  | Ty.Char -> Value.Vchar (Char.chr (97 + Sm.int rng 26))
  | Ty.Void | Ty.Named _ | Ty.Array _ -> Value.Vnull

(* Match the actual ctor's parameters to the interest ctor's by type
   (greedy bijection on scalar types); None when shapes differ. *)
let ctor_permutation interest_params actual_params =
  let n = List.length interest_params in
  if n <> List.length actual_params then None
  else begin
    let ip = Array.of_list interest_params in
    let ap = Array.of_list actual_params in
    let used = Array.make n false in
    let perm = Array.make n (-1) in
    let rec assign j =
      if j >= n then true
      else begin
        let rec try_from i =
          if i >= n then false
          else if (not used.(i)) && Ty.equal ip.(i) ap.(j) then begin
            used.(i) <- true;
            perm.(j) <- i;
            if assign (j + 1) then true
            else begin
              used.(i) <- false;
              try_from (i + 1)
            end
          end
          else try_from (i + 1)
        in
        (* Prefer the aligned position for stability. *)
        if (not used.(j)) && Ty.equal ip.(j) ap.(j) then begin
          used.(j) <- true;
          perm.(j) <- j;
          if assign (j + 1) then true
          else begin
            used.(j) <- false;
            try_from 0
          end
        end
        else try_from 0
      end
    in
    if assign 0 then Some perm else None
  end

let primitive_ctor cds =
  List.find_opt
    (fun c -> List.for_all (fun p -> scalar p.Meta.param_ty) c.Meta.c_params)
    cds

exception Unprobeable of string

(* Fresh paired instances sharing logical state. *)
let make_pair reg rng ~(interest : Meta.class_def) ~(actual : Meta.class_def) =
  match interest.Meta.td_ctors, actual.Meta.td_ctors with
  | [], [] ->
      ( Eval.construct reg (Meta.qualified_name interest) [],
        Eval.construct reg (Meta.qualified_name actual) [] )
  | ics, acs -> (
      match primitive_ctor ics, primitive_ctor acs with
      | Some ic, Some ac -> (
          let itys = List.map (fun p -> p.Meta.param_ty) ic.Meta.c_params in
          let atys = List.map (fun p -> p.Meta.param_ty) ac.Meta.c_params in
          match ctor_permutation itys atys with
          | None -> raise (Unprobeable "constructors do not pair up")
          | Some perm ->
              let iargs = List.map (generate rng) itys in
              let aargs = Mapping.permute iargs perm in
              ( Eval.construct reg (Meta.qualified_name interest) iargs,
                Eval.construct reg (Meta.qualified_name actual) aargs ))
      | _ -> raise (Unprobeable "no primitive-typed constructor"))

let run_call reg recv name args =
  match Eval.call reg recv name args with
  | v -> Returned v
  | exception Eval.Runtime_error msg -> Raised msg

let outcomes_agree ~void a b =
  match a, b with
  | Raised _, Raised _ -> true
  | Returned _, Returned _ when void -> true
  | Returned x, Returned y -> Value.equal_shallow x y
  | (Returned _ | Raised _), _ -> false

let probe reg ?(samples = 16) ?(seed = 1L) ~actual ~interest ~mapping () =
  let rng = Sm.create seed in
  let probed = ref 0 and skipped = ref 0 in
  let disagreements = ref [] in
  let interest_methods =
    List.filter
      (fun m -> not m.Meta.m_mods.Meta.static)
      interest.Meta.td_methods
  in
  List.iter
    (fun (m : Meta.method_def) ->
      let name = m.Meta.m_name in
      let arity = Meta.arity m in
      let lookup =
        match Mapping.find mapping ~name ~arity with
        | Some mm -> Some mm
        | None when mapping.Mapping.identity ->
            (* Identity mappings carry no per-method entries; probe the
               method under its own name. *)
            Some
              {
                Mapping.mm_interest_name = name;
                mm_actual_name = name;
                mm_arity = arity;
                mm_perm = Array.init arity (fun i -> i);
                mm_interest_return = m.Meta.m_return;
                mm_actual_return = m.Meta.m_return;
                mm_param_tys = List.map (fun p -> p.Meta.param_ty) m.Meta.m_params;
                mm_actual_param_tys =
                  List.map (fun p -> p.Meta.param_ty) m.Meta.m_params;
              }
        | None -> None
      in
      match lookup with
      | None -> incr skipped
      | Some mm ->
          let param_tys = mm.Mapping.mm_param_tys in
          let ret = mm.Mapping.mm_interest_return in
          if
            List.for_all scalar param_tys
            && (scalar ret || Ty.equal ret Ty.Void)
          then begin
            incr probed;
            for _ = 1 to samples do
              match make_pair reg rng ~interest ~actual with
              | exception Unprobeable _ -> ()
              | i_inst, a_inst ->
                  let args = List.map (generate rng) param_tys in
                  let i_out = run_call reg i_inst name args in
                  let a_out =
                    run_call reg a_inst mm.Mapping.mm_actual_name
                      (Mapping.permute args mm.Mapping.mm_perm)
                  in
                  if
                    not (outcomes_agree ~void:(Ty.equal ret Ty.Void) i_out a_out)
                  then
                    disagreements :=
                      {
                        d_method = name;
                        d_inputs = args;
                        d_interest_result = i_out;
                        d_actual_result = a_out;
                      }
                      :: !disagreements
            done
          end
          else incr skipped)
    interest_methods;
  {
    probed = !probed;
    skipped = !skipped;
    samples_per_method = samples;
    disagreements = List.rev !disagreements;
  }
