(** The witness produced by a successful conformance check: how to translate
    invocations written against the type of interest into invocations on
    the actual (received) type. Dynamic proxies interpret exactly this. *)

open Pti_cts

type method_map = {
  mm_interest_name : string;  (** Method name as the caller writes it. *)
  mm_actual_name : string;  (** Method name on the received object. *)
  mm_arity : int;
  mm_perm : int array;
      (** [mm_perm.(j) = i]: the actual method's [j]-th argument is the
          caller's [i]-th argument. Identity for equal signatures. *)
  mm_interest_return : Ty.t;
  mm_actual_return : Ty.t;
  mm_param_tys : Ty.t list;  (** Interest-side parameter types, caller order. *)
  mm_actual_param_tys : Ty.t list;
      (** Actual-side parameter types, callee order — what each permuted
          argument must be usable as (drives recursive argument wrapping). *)
}

type ctor_map = {
  cm_arity : int;
  cm_perm : int array;
      (** [cm_perm.(j) = i]: the actual constructor's [j]-th argument is
          the caller's [i]-th argument. *)
  cm_param_tys : Ty.t list;  (** Interest-side parameter types. *)
  cm_actual_param_tys : Ty.t list;
}

type t = {
  interest : string;  (** Qualified name of the type of interest. *)
  actual : string;  (** Qualified name of the received object's type. *)
  identity : bool;
      (** True when no translation is needed (equal, equivalent or
          explicitly conformant types) — the proxy can forward as-is. *)
  methods : method_map list;
  ctors : ctor_map list;
      (** Rule (v) witnesses: how to drive the actual type's constructors
          with interest-style argument lists (used by
          {!Pti_proxy.Dynamic_proxy.construct_as}). *)
}

val identity_mapping : interest:string -> actual:string -> t

val find : t -> name:string -> arity:int -> method_map option
(** Case-insensitive lookup by interest-side name. *)

val find_ctor : t -> arity:int -> ctor_map option

val permute : 'a list -> int array -> 'a list
(** [permute args perm] reorders caller arguments into actual-method order:
    element [j] of the result is [List.nth args perm.(j)].
    @raise Invalid_argument on length mismatch. *)

val is_identity_perm : int array -> bool

val pp : Format.formatter -> t -> unit
