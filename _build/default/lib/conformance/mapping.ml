open Pti_cts
module S = Pti_util.Strutil

type method_map = {
  mm_interest_name : string;
  mm_actual_name : string;
  mm_arity : int;
  mm_perm : int array;
  mm_interest_return : Ty.t;
  mm_actual_return : Ty.t;
  mm_param_tys : Ty.t list;
  mm_actual_param_tys : Ty.t list;
}

type ctor_map = {
  cm_arity : int;
  cm_perm : int array;
  cm_param_tys : Ty.t list;
  cm_actual_param_tys : Ty.t list;
}

type t = {
  interest : string;
  actual : string;
  identity : bool;
  methods : method_map list;
  ctors : ctor_map list;
}

let identity_mapping ~interest ~actual =
  { interest; actual; identity = true; methods = []; ctors = [] }

let find t ~name ~arity =
  List.find_opt
    (fun mm -> S.equal_ci mm.mm_interest_name name && mm.mm_arity = arity)
    t.methods

let find_ctor t ~arity =
  List.find_opt (fun cm -> cm.cm_arity = arity) t.ctors

let permute args perm =
  let n = List.length args in
  if n <> Array.length perm then
    invalid_arg "Mapping.permute: arity mismatch";
  let arr = Array.of_list args in
  List.init n (fun j ->
      let i = perm.(j) in
      if i < 0 || i >= n then invalid_arg "Mapping.permute: bad index";
      arr.(i))

let is_identity_perm perm =
  let ok = ref true in
  Array.iteri (fun j i -> if i <> j then ok := false) perm;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<v>%s => %s%s@," t.interest t.actual
    (if t.identity then " (identity)" else "");
  List.iter
    (fun mm ->
      Format.fprintf ppf "  %s/%d -> %s perm=[%s]@," mm.mm_interest_name
        mm.mm_arity mm.mm_actual_name
        (String.concat ";"
           (List.map string_of_int (Array.to_list mm.mm_perm))))
    t.methods;
  Format.fprintf ppf "@]"
