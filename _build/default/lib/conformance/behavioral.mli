(** Implicit {e behavioral} type conformance (§4.1).

    The paper classifies conformance into structural and behavioral, and
    notes that behavioral conformance — comparing what methods {e do} —
    "should be feasible for types dealing only with primitive types but
    for more complex types it is rather tricky". This module implements
    exactly that feasible fragment: given two {e loaded} implementations
    and the structural mapping between them, it executes every mapped
    method whose signature involves only primitive types on deterministic
    generated inputs and compares the results.

    Combined with a {!Checker} verdict this yields the paper's "strong"
    implicit conformance (structural + behavioral). Unlike the structural
    check it requires the candidate's code, so a peer can only run it
    {e after} the optimistic download — useful as an acceptance test, not
    as a pre-download filter. *)

open Pti_cts

type disagreement = {
  d_method : string;  (** Interest-side method name. *)
  d_inputs : Value.value list;
  d_interest_result : outcome;
  d_actual_result : outcome;
}

and outcome = Returned of Value.value | Raised of string

type report = {
  probed : int;  (** Methods exercised. *)
  skipped : int;  (** Mapped methods with non-primitive signatures. *)
  samples_per_method : int;
  disagreements : disagreement list;
}

val conformant : report -> bool
(** No disagreements and at least one probed method. *)

val pp_report : Format.formatter -> report -> unit

val probe : Registry.t -> ?samples:int -> ?seed:int64 ->
  actual:Meta.class_def -> interest:Meta.class_def -> mapping:Mapping.t ->
  unit -> report
(** [probe reg ~actual ~interest ~mapping ()] builds paired fresh
    instances (through primitive-typed constructors fed identical
    generated values, permuted per the structural ctor match) and, for
    each mapped method with primitive-only parameters and return, invokes
    both sides [samples] times (default 16) with identical inputs,
    recording any difference in result or raised error. Deterministic for
    a given [seed] (default [1L]).

    Methods are probed on fresh instances each sample, so stateful
    methods (setters) are compared on like-for-like state. *)
