open Pti_cts
module Td = Pti_typedesc.Type_description
module S = Pti_util.Strutil

let nominal checker ~actual ~interest =
  Td.equals actual interest
  || Checker.explicit_conforms checker ~actual ~interest

(* Types are equal for Läufer when they are the same primitive or carry
   the same (case-insensitive) qualified name: no structural recursion,
   no renaming. *)
let rec ty_equal_nominal a b =
  match a, b with
  | Ty.Named x, Ty.Named y -> S.equal_ci x y
  | Ty.Array x, Ty.Array y -> ty_equal_nominal x y
  | _ -> Ty.equal a b

let exact_signature_match ~resolver:_ (m : Td.method_desc)
    (m' : Td.method_desc) =
  S.equal_ci m.Td.md_name m'.Td.md_name
  && Td.method_arity m = Td.method_arity m'
  && ty_equal_nominal m.Td.md_return m'.Td.md_return
  && List.for_all2
       (fun p p' -> ty_equal_nominal p.Td.pd_ty p'.Td.pd_ty)
       m.Td.md_params m'.Td.md_params

let laufer ~resolver ~tagged ~actual ~interest =
  interest.Td.ty_kind = Meta.Interface
  && tagged (Td.qualified_name actual)
  && List.for_all
       (fun (im : Td.method_desc) ->
         List.exists
           (fun (am : Td.method_desc) ->
             exact_signature_match ~resolver im am)
           actual.Td.ty_methods)
       interest.Td.ty_methods
