module Td = Pti_typedesc.Type_description

type verdict =
  | All_conformant of (string * Mapping.t) list
  | Failed of (string * Checker.failure list) list

let notation names = "[" ^ String.concat ", " names ^ "]"

let check checker ~actual ~interests =
  if interests = [] then
    invalid_arg "Compound.check: empty interest list";
  let results =
    List.map
      (fun interest ->
        ( Td.qualified_name interest,
          Checker.check checker ~actual ~interest ))
      interests
  in
  let failures =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Checker.Not_conformant fs -> Some (name, fs)
        | Checker.Conformant _ -> None)
      results
  in
  if failures <> [] then Failed failures
  else
    All_conformant
      (List.map
         (fun (name, v) ->
           match v with
           | Checker.Conformant m -> (name, m)
           | Checker.Not_conformant _ -> assert false)
         results)
