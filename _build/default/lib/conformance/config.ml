type ambiguity = First_match | Best_score | Reject_ambiguous

type t = {
  name_distance : int;
  allow_wildcards : bool;
  compare_namespaces : bool;
  check_fields : bool;
  check_supertypes : bool;
  check_methods : bool;
  check_ctors : bool;
  check_modifiers : bool;
  consider_permutations : bool;
  ambiguity : ambiguity;
  max_depth : int;
}

let strict =
  {
    name_distance = 0;
    allow_wildcards = false;
    compare_namespaces = false;
    check_fields = true;
    check_supertypes = true;
    check_methods = true;
    check_ctors = true;
    check_modifiers = true;
    consider_permutations = true;
    ambiguity = First_match;
    max_depth = 64;
  }

let name_only =
  {
    strict with
    check_fields = false;
    check_supertypes = false;
    check_methods = false;
    check_ctors = false;
    check_modifiers = false;
  }

let relaxed ~distance = { strict with name_distance = distance }
let with_wildcards = { strict with allow_wildcards = true }

let ambiguity_name = function
  | First_match -> "first"
  | Best_score -> "best"
  | Reject_ambiguous -> "reject"

let key t =
  Printf.sprintf "d%d%c%c%c%c%c%c%c%c%s%d" t.name_distance
    (if t.allow_wildcards then 'w' else '-')
    (if t.compare_namespaces then 'n' else '-')
    (if t.check_fields then 'f' else '-')
    (if t.check_supertypes then 's' else '-')
    (if t.check_methods then 'm' else '-')
    (if t.check_ctors then 'c' else '-')
    (if t.check_modifiers then 'o' else '-')
    (if t.consider_permutations then 'p' else '-')
    (ambiguity_name t.ambiguity) t.max_depth

let pp ppf t = Format.fprintf ppf "config(%s)" (key t)
