(** Compound types: conformance to several types of interest at once.

    §2.2 discusses Büchi and Weck's compound types for Java — the notation
    [\[TypeA, TypeB\]] denoting everything usable as {e both}. Combined
    with implicit structural conformance this becomes a natural query
    language over dynamically received objects: a subscriber can ask for
    events conformant to several independently authored facets.

    A compound check succeeds iff the actual type conforms to every
    member; the result is one mapping per member, which
    {!Pti_proxy.Dynamic_proxy.wrap_compound} turns into a single proxy
    answering the union of the vocabularies. *)

type verdict =
  | All_conformant of (string * Mapping.t) list
      (** Interest qualified name, mapping — in query order. *)
  | Failed of (string * Checker.failure list) list
      (** Every member that failed, with its reasons. *)

val check : Checker.t -> actual:Pti_typedesc.Type_description.t ->
  interests:Pti_typedesc.Type_description.t list -> verdict
(** @raise Invalid_argument on an empty interest list. *)

val notation : string list -> string
(** [notation ["a.A"; "b.B"]] is ["[a.A, b.B]"] — the display name used as
    the compound proxy's advertised interface. *)
