lib/conformance/behavioral.ml: Array Char Eval Format List Mapping Meta Pti_cts Pti_util String Ty Value
