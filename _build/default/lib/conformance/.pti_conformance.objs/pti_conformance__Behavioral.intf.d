lib/conformance/behavioral.mli: Format Mapping Meta Pti_cts Registry Value
