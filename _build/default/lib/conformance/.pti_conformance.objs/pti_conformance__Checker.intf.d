lib/conformance/checker.mli: Config Format Mapping Pti_cts Pti_typedesc
