lib/conformance/compound.mli: Checker Mapping Pti_typedesc
