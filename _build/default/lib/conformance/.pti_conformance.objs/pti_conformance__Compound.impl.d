lib/conformance/compound.ml: Checker List Mapping Pti_typedesc String
