lib/conformance/mapping.ml: Array Format List Pti_cts Pti_util String Ty
