lib/conformance/baselines.ml: Checker List Meta Pti_cts Pti_typedesc Pti_util Ty
