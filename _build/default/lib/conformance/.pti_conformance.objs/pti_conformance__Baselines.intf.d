lib/conformance/baselines.mli: Checker Pti_typedesc
