lib/conformance/config.ml: Format Printf
