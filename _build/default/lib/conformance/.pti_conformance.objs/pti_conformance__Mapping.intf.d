lib/conformance/mapping.mli: Format Pti_cts Ty
