lib/conformance/checker.ml: Array Config Format Hashtbl List Mapping Meta Option Printf Pti_cts Pti_typedesc Pti_util String Ty
