lib/conformance/config.mli: Format
