(** The related-work baselines the paper positions itself against (§2),
    implemented over the same type descriptions so E8 can compare recall
    on one population.

    - {!nominal}: CORBA / Java-RMI style interoperability (§2.3, §2.4) —
      an object is usable as the interest type only through {e declared}
      subtyping (the explicit-conformance short-circuit alone). Types
      written independently never interoperate.
    - {!laufer}: Läufer–Baumgartner–Russo structural conformance for Java
      (§2.1) — the interest must be an {e interface}, the candidate must
      be {e tagged} as structural-conformance-enabled, and every interface
      method must be matched {e exactly} (same name up to case, same
      parameter types in the same order, same return type). No field,
      constructor or supertype aspects; no renaming; no permutations; no
      recursion into differently-named component types. Legacy (untagged)
      types never qualify — the restriction the paper calls out.

    The paper's own relation ({!Checker.check}) strictly subsumes both on
    safe inputs, which is what experiment E8 shows. *)

module Td = Pti_typedesc.Type_description

val nominal : Checker.t -> actual:Td.t -> interest:Td.t -> bool
(** Declared subtyping through the description graph (reflexive). *)

val laufer : resolver:Td.resolver -> tagged:(string -> bool) ->
  actual:Td.t -> interest:Td.t -> bool
(** [tagged] says whether a qualified type name opted in (the [implements
    Structural] marker of the original proposal). *)

val exact_signature_match : resolver:Td.resolver ->
  Td.method_desc -> Td.method_desc -> bool
(** The Läufer method rule, exposed for tests: case-insensitive equal
    names, equal arity, parameter and return types equal by name (or both
    primitive and equal). *)
