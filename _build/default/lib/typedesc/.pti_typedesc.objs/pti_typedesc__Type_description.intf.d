lib/typedesc/type_description.mli: Format Meta Pti_cts Pti_util Pti_xml Registry Ty
