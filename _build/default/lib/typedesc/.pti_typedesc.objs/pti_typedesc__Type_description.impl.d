lib/typedesc/type_description.ml: Buffer Digest Format List Meta Option Printf Pti_cts Pti_util Pti_xml Registry Result String Ty
