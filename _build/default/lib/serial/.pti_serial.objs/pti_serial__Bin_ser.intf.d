lib/serial/bin_ser.mli: Format Pti_cts Registry Value
