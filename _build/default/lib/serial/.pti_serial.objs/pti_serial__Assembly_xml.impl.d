lib/serial/assembly_xml.ml: Assembly Char Expr Format List Meta Printf Pti_cts Pti_util Pti_xml Result String Ty
