lib/serial/bin_ser.ml: Array Bytes_io Char Format Hashtbl List Meta Printf Pti_cts Registry String Ty Value
