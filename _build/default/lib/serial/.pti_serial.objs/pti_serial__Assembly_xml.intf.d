lib/serial/assembly_xml.mli: Assembly Expr Meta Pti_cts Pti_xml
