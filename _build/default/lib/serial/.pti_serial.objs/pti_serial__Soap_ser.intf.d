lib/serial/soap_ser.mli: Format Pti_cts Pti_xml Registry Value
