lib/serial/envelope.ml: Array Bin_ser Format Hashtbl List Meta Printf Pti_cts Pti_util Pti_xml Registry Result Soap_ser String Value
