lib/serial/soap_ser.ml: Array Char Format Hashtbl List Meta Printf Pti_cts Pti_xml Registry String Ty Value
