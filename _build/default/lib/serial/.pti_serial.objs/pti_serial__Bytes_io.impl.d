lib/serial/bytes_io.ml: Buffer Char Int64 Printf String Sys
