lib/serial/bytes_io.mli:
