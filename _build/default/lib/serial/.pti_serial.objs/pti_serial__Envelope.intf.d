lib/serial/envelope.mli: Format Pti_cts Pti_util Pti_xml Registry Value
