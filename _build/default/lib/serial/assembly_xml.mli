(** XML codec for assemblies — the bytes that travel when a receiver
    downloads code (Figure 1, step 5).

    Unlike type descriptions, assemblies carry full class definitions
    including interpreted method bodies, which is what makes them an order
    of magnitude heavier on the wire. *)

open Pti_cts

val expr_to_xml : Expr.t -> Pti_xml.Xml.t
val expr_of_xml : Pti_xml.Xml.t -> (Expr.t, string) result

val class_to_xml : Meta.class_def -> Pti_xml.Xml.t
val class_of_xml : Pti_xml.Xml.t -> (Meta.class_def, string) result

val to_xml : Assembly.t -> Pti_xml.Xml.t
val of_xml : Pti_xml.Xml.t -> (Assembly.t, string) result

val to_string : Assembly.t -> string
val of_string : string -> (Assembly.t, string) result
