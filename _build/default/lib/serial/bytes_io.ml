module Writer = struct
  type t = Buffer.t

  let create ?(initial = 256) () = Buffer.create initial
  let contents = Buffer.contents
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let varint t v =
    if v < 0 then invalid_arg "Writer.varint: negative";
    let rec go v =
      if v < 0x80 then u8 t v
      else begin
        u8 t (0x80 lor (v land 0x7f));
        go (v lsr 7)
      end
    in
    go v

  let zigzag t v =
    let encoded = (v lsl 1) lxor (v asr (Sys.int_size - 1)) in
    (* The shift may overflow for extreme values; mask to a non-negative
       encoding domain by using Int64 when needed is overkill here — object
       graphs carry human-scale integers. Guard anyway. *)
    if encoded < 0 then invalid_arg "Writer.zigzag: magnitude too large"
    else varint t encoded

  let f64 t v =
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      u8 t (Int64.to_int (Int64.shift_right_logical bits (i * 8)) land 0xff)
    done

  let string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let bool t b = u8 t (if b then 1 else 0)
  let raw t s = Buffer.add_string t s
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  exception Underflow of string

  let create src = { src; pos = 0 }
  let pos t = t.pos
  let at_end t = t.pos >= String.length t.src

  let u8 t =
    if at_end t then raise (Underflow "u8 past end");
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let varint t =
    let rec go shift acc =
      if shift > Sys.int_size then raise (Underflow "varint too long");
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let zigzag t =
    let v = varint t in
    (v lsr 1) lxor (-(v land 1))

  let f64 t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 t)) (i * 8))
    done;
    Int64.float_of_bits !bits

  let string t =
    let n = varint t in
    if t.pos + n > String.length t.src then raise (Underflow "string past end");
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let bool t = u8 t <> 0

  let expect_magic t m =
    let n = String.length m in
    if t.pos + n > String.length t.src || String.sub t.src t.pos n <> m then
      raise (Underflow (Printf.sprintf "bad magic, expected %S" m));
    t.pos <- t.pos + n
end
