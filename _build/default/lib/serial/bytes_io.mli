(** Primitive binary readers/writers shared by the binary serializer.

    Integers use LEB128 varints (zigzag for signed), floats are IEEE-754
    little-endian, strings are length-prefixed. *)

module Writer : sig
  type t

  val create : ?initial:int -> unit -> t
  val contents : t -> string
  val length : t -> int
  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  (** Unsigned LEB128; value must be >= 0. *)

  val zigzag : t -> int -> unit
  (** Signed (zigzag) LEB128. *)

  val f64 : t -> float -> unit
  val string : t -> string -> unit
  val bool : t -> bool -> unit

  val raw : t -> string -> unit
  (** Append bytes verbatim (magic headers). *)
end

module Reader : sig
  type t

  exception Underflow of string
  (** Raised on truncated or malformed input. *)

  val create : string -> t
  val pos : t -> int
  val at_end : t -> bool
  val u8 : t -> int
  val varint : t -> int
  val zigzag : t -> int
  val f64 : t -> float
  val string : t -> string
  val bool : t -> bool
  val expect_magic : t -> string -> unit
end
