type category =
  | Object_msg
  | Tdesc_request
  | Tdesc_reply
  | Asm_request
  | Asm_reply
  | Invoke_request
  | Invoke_reply
  | Control

let all_categories =
  [
    Object_msg; Tdesc_request; Tdesc_reply; Asm_request; Asm_reply;
    Invoke_request; Invoke_reply; Control;
  ]

let category_name = function
  | Object_msg -> "object"
  | Tdesc_request -> "tdesc-req"
  | Tdesc_reply -> "tdesc-reply"
  | Asm_request -> "asm-req"
  | Asm_reply -> "asm-reply"
  | Invoke_request -> "invoke-req"
  | Invoke_reply -> "invoke-reply"
  | Control -> "control"

let index = function
  | Object_msg -> 0
  | Tdesc_request -> 1
  | Tdesc_reply -> 2
  | Asm_request -> 3
  | Asm_reply -> 4
  | Invoke_request -> 5
  | Invoke_reply -> 6
  | Control -> 7

type t = {
  bytes : int array;
  messages : int array;
  latencies : float list ref array;  (* reversed *)
}

let create () =
  {
    bytes = Array.make 8 0;
    messages = Array.make 8 0;
    latencies = Array.init 8 (fun _ -> ref []);
  }

let record t c ~bytes =
  let i = index c in
  t.bytes.(i) <- t.bytes.(i) + bytes;
  t.messages.(i) <- t.messages.(i) + 1

let bytes t c = t.bytes.(index c)
let messages t c = t.messages.(index c)
let total_bytes t = Array.fold_left ( + ) 0 t.bytes
let total_messages t = Array.fold_left ( + ) 0 t.messages

let reset t =
  Array.fill t.bytes 0 8 0;
  Array.fill t.messages 0 8 0;
  Array.iter (fun r -> r := []) t.latencies

let record_latency t c ~ms =
  let r = t.latencies.(index c) in
  r := ms :: !r

let latency_samples t c = List.rev !(t.latencies.(index c))

let latency_percentile t c p =
  if p < 0. || p > 1. then invalid_arg "Stats.latency_percentile";
  match !(t.latencies.(index c)) with
  | [] -> None
  | samples ->
      let sorted = List.sort Float.compare samples in
      let n = List.length sorted in
      let rank =
        min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1))))
      in
      Some (List.nth sorted rank)

let merge a b =
  let t = create () in
  for i = 0 to 7 do
    t.bytes.(i) <- a.bytes.(i) + b.bytes.(i);
    t.messages.(i) <- a.messages.(i) + b.messages.(i);
    t.latencies.(i) := !(b.latencies.(i)) @ !(a.latencies.(i))
  done;
  t

let pp ppf t =
  Format.fprintf ppf "@[<v>%-14s %10s %12s@," "category" "messages" "bytes";
  List.iter
    (fun c ->
      if messages t c > 0 then
        Format.fprintf ppf "%-14s %10d %12d@," (category_name c)
          (messages t c) (bytes t c))
    all_categories;
  Format.fprintf ppf "%-14s %10d %12d@]" "total" (total_messages t)
    (total_bytes t)
