(** Discrete-event simulation core.

    A priority queue of timestamped thunks; time advances only when events
    fire, so runs are deterministic and as fast as the host CPU. Simulated
    time is in milliseconds (matching the paper's reporting unit). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time (ms). *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays are
    clamped to 0. Events at equal times fire in scheduling order. *)

val schedule_at : t -> at:float -> (unit -> unit) -> unit

val schedule_cancellable : t -> delay:float -> (unit -> unit) ->
  (unit -> unit)
(** Like {!schedule}, returning a cancel thunk. A cancelled event is
    skipped without advancing the clock, so armed-but-unneeded timers
    (request timeouts, leases) do not stretch the simulated run. *)

val step : t -> bool
(** Fire the next event; [false] when the queue is empty. *)

val run : t -> unit
(** Run to quiescence. *)

val run_until : t -> float -> unit
(** Fire every event with a timestamp [<=] the given time, advancing the
    clock to exactly that time. *)

val pending : t -> int
