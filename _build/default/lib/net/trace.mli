(** Message traces: record every transmission on a network and render it
    as a time-ordered log or a two-party sequence chart.

    Useful for understanding the optimistic protocol's choreography
    (Figure 1 comes out of a trace of the quickstart example) and for
    asserting protocol shapes in tests without poking at aggregate
    statistics. *)

type entry = {
  at : float;  (** Simulated ms at which the send was issued. *)
  src : Net.address;
  dst : Net.address;
  category : Stats.category;
  size : int;
  attempt : int;  (** 0 = first transmission, >0 = retransmission. *)
}

type t

val attach : 'a Net.t -> t
(** Start recording (replaces any previously installed observer). *)

val entries : t -> entry list
(** Chronological. *)

val clear : t -> unit

val count : t -> ?category:Stats.category -> unit -> int

val pp_log : Format.formatter -> t -> unit
(** One line per transmission: time, endpoints, category, size. *)

val pp_sequence : Format.formatter -> t -> unit
(** A sequence chart between the two busiest hosts (arrows left/right);
    traffic involving other hosts is shown in log form beneath. *)
