type event = {
  at : float;
  seq : int;
  thunk : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  queue : event Pti_util.Pqueue.t;
  mutable clock : float;
  mutable next_seq : int;
}

let cmp a b =
  match Float.compare a.at b.at with 0 -> compare a.seq b.seq | c -> c

let create () =
  { queue = Pti_util.Pqueue.create ~cmp (); clock = 0.; next_seq = 0 }

let now t = t.clock

let push_event t ~at thunk =
  let at = if at < t.clock then t.clock else at in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let e = { at; seq; thunk; cancelled = false } in
  Pti_util.Pqueue.push t.queue e;
  e

let schedule_at t ~at thunk = ignore (push_event t ~at thunk)

let schedule t ~delay thunk =
  let delay = if delay < 0. then 0. else delay in
  schedule_at t ~at:(t.clock +. delay) thunk

let schedule_cancellable t ~delay thunk =
  let delay = if delay < 0. then 0. else delay in
  let e = push_event t ~at:(t.clock +. delay) thunk in
  fun () -> e.cancelled <- true

(* Cancelled events are discarded without touching the clock. *)
let rec step t =
  match Pti_util.Pqueue.pop t.queue with
  | None -> false
  | Some e when e.cancelled -> step t
  | Some e ->
      t.clock <- e.at;
      e.thunk ();
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Pti_util.Pqueue.peek t.queue with
    | Some e when e.cancelled -> ignore (Pti_util.Pqueue.pop t.queue)
    | Some e when e.at <= horizon -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon

let pending t = Pti_util.Pqueue.length t.queue
