type entry = {
  at : float;
  src : Net.address;
  dst : Net.address;
  category : Stats.category;
  size : int;
  attempt : int;
}

type t = { mutable log : entry list (* reversed *) }

let attach net =
  let t = { log = [] } in
  Net.on_send net (fun ~now ~src ~dst ~category ~size ~attempt ->
      t.log <- { at = now; src; dst; category; size; attempt } :: t.log);
  t

let entries t = List.rev t.log
let clear t = t.log <- []

let count t ?category () =
  match category with
  | None -> List.length t.log
  | Some c -> List.length (List.filter (fun e -> e.category = c) t.log)

let label e =
  Printf.sprintf "%s %dB%s"
    (Stats.category_name e.category)
    e.size
    (if e.attempt > 0 then Printf.sprintf " (retry %d)" e.attempt else "")

let pp_log ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%8.2f  %-12s -> %-12s %s@," e.at e.src e.dst
        (label e))
    (entries t);
  Format.fprintf ppf "@]"

(* The two hosts exchanging the most messages become the chart lanes. *)
let busiest_pair t =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let key = if e.src <= e.dst then (e.src, e.dst) else (e.dst, e.src) in
      Hashtbl.replace tally key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally key)))
    t.log;
  Hashtbl.fold
    (fun pair n best ->
      match best with
      | Some (_, m) when m >= n -> best
      | _ -> Some (pair, n))
    tally None
  |> Option.map fst

let pp_sequence ppf t =
  match busiest_pair t with
  | None -> Format.fprintf ppf "(no traffic)@."
  | Some (left, right) ->
      let lane_width = 30 in
      Format.fprintf ppf "@[<v>%8s  %-12s %s %12s@," "ms" left
        (String.make lane_width ' ')
        right;
      let others = ref [] in
      List.iter
        (fun e ->
          if e.src = left && e.dst = right then
            Format.fprintf ppf "%8.2f  %-12s|--%-*s-->|%12s@," e.at ""
              (lane_width - 6) (label e) ""
          else if e.src = right && e.dst = left then
            Format.fprintf ppf "%8.2f  %-12s|<--%-*s--|%12s@," e.at ""
              (lane_width - 6) (label e) ""
          else others := e :: !others)
        (entries t);
      (match List.rev !others with
      | [] -> ()
      | rest ->
          Format.fprintf ppf "@,other traffic:@,";
          List.iter
            (fun e ->
              Format.fprintf ppf "%8.2f  %-12s -> %-12s %s@," e.at e.src
                e.dst (label e))
            rest);
      Format.fprintf ppf "@]"
