lib/net/net.mli: Sim Stats
