lib/net/sim.mli:
