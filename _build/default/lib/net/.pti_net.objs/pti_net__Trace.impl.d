lib/net/trace.ml: Format Hashtbl List Net Option Printf Stats String
