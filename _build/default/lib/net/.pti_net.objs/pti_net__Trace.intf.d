lib/net/trace.mli: Format Net Stats
