lib/net/net.ml: Hashtbl Printf Pti_util Sim Stats
