lib/net/stats.ml: Array Float Format List
