lib/net/sim.ml: Float Pti_util
