type t =
  | Element of string * (string * string) list * t list
  | Text of string
  | Cdata of string
  | Comment of string

let elt ?(attrs = []) tag children = Element (tag, attrs, children)
let text s = Text s
let leaf ?attrs tag s = elt ?attrs tag [ Text s ]

let tag = function Element (n, _, _) -> Some n | Text _ | Cdata _ | Comment _ -> None

let attr name = function
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ | Cdata _ | Comment _ -> None

let attr_exn name x =
  match attr name x with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Xml.attr_exn: no attribute %S" name)

let children = function
  | Element (_, _, cs) -> cs
  | Text _ | Cdata _ | Comment _ -> []

let child name x =
  List.find_opt
    (function Element (n, _, _) -> String.equal n name | _ -> false)
    (children x)

let child_exn name x =
  match child name x with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Xml.child_exn: no child %S" name)

let childs name x =
  List.filter
    (function Element (n, _, _) -> String.equal n name | _ -> false)
    (children x)

let rec text_content = function
  | Text s | Cdata s -> s
  | Comment _ -> ""
  | Element (_, _, cs) -> String.concat "" (List.map text_content cs)

let rec path names x =
  match names with
  | [] -> Some x
  | n :: rest -> ( match child n x with None -> None | Some c -> path rest c)

let escape_with escape_quotes s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' when escape_quotes -> Buffer.add_string b "&quot;"
      | '\'' when escape_quotes -> Buffer.add_string b "&apos;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_text s = escape_with false s
let escape_attr s = escape_with true s

let add_attrs b attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_string b "=\"";
      Buffer.add_string b (escape_attr v);
      Buffer.add_char b '"')
    attrs

let rec add_compact b = function
  | Text s -> Buffer.add_string b (escape_text s)
  | Cdata s ->
      Buffer.add_string b "<![CDATA[";
      Buffer.add_string b s;
      Buffer.add_string b "]]>"
  | Comment s ->
      Buffer.add_string b "<!--";
      Buffer.add_string b s;
      Buffer.add_string b "-->"
  | Element (tag, attrs, cs) ->
      Buffer.add_char b '<';
      Buffer.add_string b tag;
      add_attrs b attrs;
      if cs = [] then Buffer.add_string b "/>"
      else begin
        Buffer.add_char b '>';
        List.iter (add_compact b) cs;
        Buffer.add_string b "</";
        Buffer.add_string b tag;
        Buffer.add_char b '>'
      end

let decl_string = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>"

let to_string ?(decl = false) x =
  let b = Buffer.create 256 in
  if decl then Buffer.add_string b decl_string;
  add_compact b x;
  Buffer.contents b

let to_string_pretty ?(decl = false) ?(indent = 2) x =
  let b = Buffer.create 256 in
  if decl then begin
    Buffer.add_string b decl_string;
    Buffer.add_char b '\n'
  end;
  let pad depth = Buffer.add_string b (String.make (depth * indent) ' ') in
  (* An element renders inline when all its children are character data. *)
  let inline_children cs =
    List.for_all (function Text _ | Cdata _ -> true | _ -> false) cs
  in
  let rec go depth node =
    match node with
    | Text s ->
        pad depth;
        Buffer.add_string b (escape_text s);
        Buffer.add_char b '\n'
    | Cdata s ->
        pad depth;
        Buffer.add_string b "<![CDATA[";
        Buffer.add_string b s;
        Buffer.add_string b "]]>\n"
    | Comment s ->
        pad depth;
        Buffer.add_string b "<!--";
        Buffer.add_string b s;
        Buffer.add_string b "-->\n"
    | Element (tag, attrs, []) ->
        pad depth;
        Buffer.add_char b '<';
        Buffer.add_string b tag;
        add_attrs b attrs;
        Buffer.add_string b "/>\n"
    | Element (tag, attrs, cs) when inline_children cs ->
        pad depth;
        Buffer.add_char b '<';
        Buffer.add_string b tag;
        add_attrs b attrs;
        Buffer.add_char b '>';
        List.iter (add_compact b) cs;
        Buffer.add_string b "</";
        Buffer.add_string b tag;
        Buffer.add_string b ">\n"
    | Element (tag, attrs, cs) ->
        pad depth;
        Buffer.add_char b '<';
        Buffer.add_string b tag;
        add_attrs b attrs;
        Buffer.add_string b ">\n";
        List.iter (go (depth + 1)) cs;
        pad depth;
        Buffer.add_string b "</";
        Buffer.add_string b tag;
        Buffer.add_string b ">\n"
  in
  go 0 x;
  Buffer.contents b

let size_bytes x = String.length (to_string x)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type error = { position : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "XML parse error at byte %d: %s" e.position e.message

exception Err of error

type state = { src : string; mutable pos : int }

let fail st message = raise (Err { position = st.pos; message })
let eof st = st.pos >= String.length st.src
let peek_char st = if eof st then '\000' else st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let skip_ws st =
  while
    (not (eof st))
    && match peek_char st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let is_name_start = function
  | 'A' .. 'Z' | 'a' .. 'z' | '_' | ':' -> true
  | _ -> false

let is_name_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | ':' | '-' | '.' -> true
  | _ -> false

let parse_name st =
  if not (is_name_start (peek_char st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek_char st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let parse_reference st =
  (* Called on '&'. *)
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek_char st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated entity reference";
  let name = String.sub st.src start (st.pos - start) in
  advance st;
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      if String.length name > 1 && name.[0] = '#' then begin
        let code =
          try
            if name.[1] = 'x' || name.[1] = 'X' then
              int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
            else int_of_string (String.sub name 1 (String.length name - 1))
          with Failure _ -> fail st "bad character reference"
        in
        if code < 0 || code > 0x10FFFF then fail st "character out of range";
        (* Encode as UTF-8. *)
        let b = Buffer.create 4 in
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        Buffer.contents b
      end
      else fail st (Printf.sprintf "unknown entity &%s;" name)

let parse_attr_value st =
  let quote = peek_char st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted value";
  advance st;
  let b = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else
      let c = peek_char st in
      if c = quote then advance st
      else if c = '&' then begin
        Buffer.add_string b (parse_reference st);
        go ()
      end
      else begin
        Buffer.add_char b c;
        advance st;
        go ()
      end
  in
  go ();
  Buffer.contents b

let parse_attrs st =
  let rec go acc =
    skip_ws st;
    if is_name_start (peek_char st) then begin
      let name = parse_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let value = parse_attr_value st in
      go ((name, value) :: acc)
    end
    else List.rev acc
  in
  go []

let skip_until st marker =
  let n = String.length st.src in
  let rec go () =
    if st.pos >= n then fail st (Printf.sprintf "expected %S" marker)
    else if looking_at st marker then st.pos <- st.pos + String.length marker
    else begin
      advance st;
      go ()
    end
  in
  go ()

let parse_cdata st =
  expect st "<![CDATA[";
  let start = st.pos in
  skip_until st "]]>";
  Cdata (String.sub st.src start (st.pos - 3 - start))

let parse_comment st =
  expect st "<!--";
  let start = st.pos in
  skip_until st "-->";
  Comment (String.sub st.src start (st.pos - 3 - start))

let rec parse_element st =
  expect st "<";
  let name = parse_name st in
  let attrs = parse_attrs st in
  skip_ws st;
  if looking_at st "/>" then begin
    expect st "/>";
    Element (name, attrs, [])
  end
  else begin
    expect st ">";
    let children = parse_content st in
    expect st "</";
    let close = parse_name st in
    if not (String.equal close name) then
      fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" close name);
    skip_ws st;
    expect st ">";
    Element (name, attrs, children)
  end

and parse_content st =
  let items = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      items := Text (Buffer.contents buf) :: !items;
      Buffer.clear buf
    end
  in
  let rec go () =
    if eof st then fail st "unterminated element"
    else if looking_at st "</" then flush_text ()
    else if looking_at st "<![CDATA[" then begin
      flush_text ();
      items := parse_cdata st :: !items;
      go ()
    end
    else if looking_at st "<!--" then begin
      flush_text ();
      items := parse_comment st :: !items;
      go ()
    end
    else if looking_at st "<?" then begin
      flush_text ();
      skip_until st "?>";
      go ()
    end
    else if peek_char st = '<' then begin
      flush_text ();
      items := parse_element st :: !items;
      go ()
    end
    else if peek_char st = '&' then begin
      Buffer.add_string buf (parse_reference st);
      go ()
    end
    else begin
      Buffer.add_char buf (peek_char st);
      advance st;
      go ()
    end
  in
  go ();
  List.rev !items

let parse_prolog st =
  let rec go () =
    skip_ws st;
    if looking_at st "<?" then begin
      skip_until st "?>";
      go ()
    end
    else if looking_at st "<!--" then begin
      ignore (parse_comment st);
      go ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_until st ">";
      go ()
    end
  in
  go ()

let parse s =
  let st = { src = s; pos = 0 } in
  try
    parse_prolog st;
    if eof st then Error { position = st.pos; message = "empty document" }
    else begin
      let root = parse_element st in
      (* Trailing comments / whitespace are allowed. *)
      let rec tail () =
        skip_ws st;
        if looking_at st "<!--" then begin
          ignore (parse_comment st);
          tail ()
        end
      in
      tail ();
      if not (eof st) then
        Error { position = st.pos; message = "trailing content after root" }
      else Ok root
    end
  with Err e -> Error e

let parse_exn s =
  match parse s with
  | Ok x -> x
  | Error e -> invalid_arg (Format.asprintf "%a" pp_error e)
