(** A small self-contained XML implementation.

    The paper ships type descriptions and hybrid object envelopes as XML
    messages (§5.2, §6.2); .NET's XML stack is replaced by this module. It
    supports the subset needed on the wire — elements, attributes, character
    data, CDATA, comments and processing instructions — with correct
    escaping and a tolerant parser. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (tag, attributes, children)] *)
  | Text of string  (** Character data (unescaped form). *)
  | Cdata of string  (** CDATA section contents. *)
  | Comment of string

(** {1 Construction helpers} *)

val elt : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t
val leaf : ?attrs:(string * string) list -> string -> string -> t
(** [leaf tag s] is [elt tag [text s]]. *)

(** {1 Accessors} *)

val tag : t -> string option
val attr : string -> t -> string option
val attr_exn : string -> t -> string
val children : t -> t list

val child : string -> t -> t option
(** First child element with the given tag. *)

val child_exn : string -> t -> t
val childs : string -> t -> t list
(** All child elements with the given tag, in document order. *)

val text_content : t -> string
(** Concatenation of all text/CDATA descendants. *)

val path : string list -> t -> t option
(** [path ["a";"b"] x] descends through first-matching children. *)

(** {1 Printing} *)

val escape_text : string -> string
val escape_attr : string -> string

val to_string : ?decl:bool -> t -> string
(** Compact, canonical single-line rendering. [decl] prepends the
    [<?xml version="1.0"?>] declaration (default [false]). *)

val to_string_pretty : ?decl:bool -> ?indent:int -> t -> string
(** Human-readable rendering — the paper stresses that the XML part of the
    envelope is human readable. *)

val size_bytes : t -> int
(** Size in bytes of the compact rendering; the network simulator charges
    messages by this. *)

(** {1 Parsing} *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (t, error) result
(** Parses one document (prolog and trailing whitespace allowed, comments
    and processing instructions skipped). Returns the root element. *)

val parse_exn : string -> t
(** @raise Invalid_argument on parse errors. *)
