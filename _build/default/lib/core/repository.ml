module S = Pti_util.Strutil

type t = (string, Pti_cts.Assembly.t) Hashtbl.t

let create () = Hashtbl.create 8
let add t ~path asm = Hashtbl.replace t path asm
let find t ~path = Hashtbl.find_opt t path

let find_by_name t name =
  Hashtbl.fold
    (fun path asm acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if S.equal_ci asm.Pti_cts.Assembly.asm_name name then
            Some (path, asm)
          else None)
    t None

let paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t []
let cardinal t = Hashtbl.length t

let path_for ~host ~assembly = Printf.sprintf "asm://%s/%s" host assembly

let parse_path p =
  if S.starts_with ~prefix:"asm://" p then
    let rest = String.sub p 6 (String.length p - 6) in
    match String.index_opt rest '/' with
    | Some i ->
        Some
          ( String.sub rest 0 i,
            String.sub rest (i + 1) (String.length rest - i - 1) )
    | None -> None
  else None
