lib/core/message.mli: Pti_net
