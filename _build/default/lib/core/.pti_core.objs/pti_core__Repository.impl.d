lib/core/repository.ml: Hashtbl Printf Pti_cts Pti_util String
