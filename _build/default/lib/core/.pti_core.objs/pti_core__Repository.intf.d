lib/core/repository.mli: Pti_cts
