lib/core/peer.mli: Assembly Format Message Pti_conformance Pti_cts Pti_net Pti_proxy Pti_serial Pti_typedesc Registry Value
