lib/core/message.ml: List Printf Pti_net String
