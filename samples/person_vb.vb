' The "same" Person module as team B writes it -- different language,
' namespace, casing and constructor order.
Assembly "team-b"
Namespace teamb

Class person
  Dim age As Integer
  Dim name As String

  Sub New(a As Integer, n As String)
    age = a
    name = n
  End Sub

  Function GETNAME() As String
    Return name
  End Function

  Sub setname(v As String)
    name = v
  End Sub

  Function getage() As Integer
    Return age
  End Function

  Sub SETAGE(v As Integer)
    age = v
  End Sub

  Function Greet() As String
    Return "Hello, " & name
  End Function
End Class
