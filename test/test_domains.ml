(* Multi-domain stress: the domain-safe surface claimed in HACKING
   ("Sharding and domain safety") under real parallelism — one
   [Metrics.t] shared by N reporting domains (counter conservation, no
   torn histogram snapshots), and one sharded [Peer.shared] flyweight
   block driven by one domain per shard through the full reception
   pipeline. Workload sizes are modest so the suite stays fast; the
   assertions are exact (conservation), not statistical. *)

module Metrics = Pti_obs.Metrics
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Workload = Pti_demo.Workload
module Driver = Pti_scale.Driver

let n_domains = 4

(* ------------------------------ metrics ----------------------------- *)

let test_counter_conservation () =
  let m = Metrics.create () in
  let c = Metrics.counter m "stress.count" in
  let per = 50_000 in
  let doms =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            (* Mixed steps so interleavings differ between domains. *)
            for i = 1 to per do
              Metrics.incr ~by:(1 + ((i + d) land 1)) c
            done))
  in
  List.iter Domain.join doms;
  let expected =
    (* Each domain contributes sum over i of (1 + ((i+d) land 1)). *)
    List.init n_domains (fun d ->
        let s = ref 0 in
        for i = 1 to per do
          s := !s + 1 + ((i + d) land 1)
        done;
        !s)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "no lost increments" expected (Metrics.counter_value c)

let test_histogram_no_tear () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 5.; 10. |] m "stress.lat" in
  let per = 20_000 in
  let stop = Atomic.make false in
  let writers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Metrics.observe h (float_of_int ((i + d) mod 13))
            done))
  in
  (* A reader snapshots concurrently: every snapshot must be internally
     consistent — bucket counts sum to the count, and a nonempty
     histogram always carries real min/max (a torn read would expose a
     count ahead of the buckets, or nan extrema with count > 0). *)
  let reader =
    Domain.spawn (fun () ->
        let torn = ref 0 in
        let reads = ref 0 in
        while not (Atomic.get stop) do
          (match Metrics.find m "stress.lat" with
          | Some (Metrics.Histogram s) ->
              incr reads;
              let bucket_sum =
                Array.fold_left (fun a (_, c) -> a + c) 0 s.Metrics.h_buckets
              in
              if bucket_sum <> s.Metrics.h_count then incr torn;
              if s.Metrics.h_count > 0 && Float.is_nan s.Metrics.h_min then
                incr torn
          | _ -> incr torn);
          Domain.cpu_relax ()
        done;
        (!torn, !reads))
  in
  List.iter Domain.join writers;
  Atomic.set stop true;
  let torn, reads = Domain.join reader in
  Alcotest.(check bool) "reader actually raced the writers" true (reads > 0);
  Alcotest.(check int) "no torn snapshots" 0 torn;
  match Metrics.find m "stress.lat" with
  | Some (Metrics.Histogram s) ->
      Alcotest.(check int) "observation conservation" (n_domains * per)
        s.Metrics.h_count;
      let bucket_sum =
        Array.fold_left (fun a (_, c) -> a + c) 0 s.Metrics.h_buckets
      in
      Alcotest.(check int) "final buckets sum to count" s.Metrics.h_count
        bucket_sum
  | _ -> Alcotest.fail "stress.lat missing"

(* ------------------------ sharded flyweight ------------------------- *)

(* One domain per shard runs a hub peer bound to that shard's slot, on
   its own simulated network with its own publishers; the only
   cross-domain state is the shared block. Every assembly is preloaded
   before the domains spawn, so the run stays on the documented
   domain-safe surface: registry *reads*, plus writes confined to each
   domain's own slot (tdesc cache, verdict cache, proxy wrapping). *)

let families = 4

let pick_shard_addrs sh shards =
  (* One hub address per shard, found by hashing candidates — the test
     must control which slot each domain exercises. *)
  let addr_for = Array.make shards None in
  let picked = ref 0 in
  let j = ref 0 in
  while !picked < shards do
    let a = "hub" ^ string_of_int !j in
    let s = Peer.shard_index sh a in
    (match addr_for.(s) with
    | None ->
        addr_for.(s) <- Some a;
        incr picked
    | Some _ -> ());
    incr j
  done;
  Array.map Option.get addr_for

let test_sharded_block_parallel_hubs () =
  let shards = n_domains in
  let sh = Peer.create_shared ~shards () in
  Alcotest.(check int) "shard count" shards (Peer.shard_count sh);
  (* Preload (single-domain phase): code loading is not domain-safe, so
     it all happens here, before any domain spawns. *)
  let boot_net = Net.create ~seed:1L () in
  let boot = Peer.create ~net:boot_net ~shared:sh "boot" in
  Peer.install_assembly boot (Workload.interest_assembly ());
  for f = 0 to families - 1 do
    Peer.install_assembly boot
      (Workload.family ~index:f ~flavor:Workload.Conformant)
  done;
  let addrs = pick_shard_addrs sh shards in
  let sends_per = 200 in
  let doms =
    Array.map
      (fun addr ->
        Domain.spawn (fun () ->
            let net = Net.create ~seed:7L () in
            let hub = Peer.create ~net ~shared:sh addr in
            let delivered = ref 0 in
            Peer.register_interest hub ~interest:Workload.interest_person
              (fun ~from:_ _ -> incr delivered);
            let pubs =
              Array.init families (fun f ->
                  let p = Peer.create ~net (addr ^ ".pub" ^ string_of_int f) in
                  Peer.publish_assembly p
                    (Workload.family ~index:f ~flavor:Workload.Conformant);
                  p)
            in
            for i = 1 to sends_per do
              let f = i mod families in
              let v =
                Workload.make_person
                  (Peer.registry pubs.(f))
                  ~index:f ~flavor:Workload.Conformant
                  ~name:("n" ^ string_of_int i)
                  ~age:i
              in
              Peer.send_value pubs.(f) ~dst:addr v
            done;
            Peer.run hub;
            !delivered))
      addrs
  in
  let total = Array.fold_left (fun acc d -> acc + Domain.join d) 0 doms in
  Alcotest.(check int) "every send delivered across all domains"
    (shards * sends_per) total;
  (* Each shard saw [families] distinct types: first check computes,
     the rest reuse — aggregated reuse must stay near 1, proving the
     verdict caches were neither corrupted nor thrashed. *)
  Alcotest.(check bool) "aggregate verdict reuse > 0.9" true
    (Peer.shared_reuse_rate sh > 0.9)

(* --------------------------- determinism ---------------------------- *)

let test_trace_hash_parity () =
  (* The sharded block must not perturb the deterministic simulation:
     equal seeds yield bit-equal trace hashes — at shards=1 (the layout
     every historical suite pins) and at shards=4. *)
  let base =
    {
      Driver.default_config with
      Driver.sessions = 500;
      seed = 11L;
      horizon_ms = 20_000.;
    }
  in
  let r1 = Driver.run base in
  let r2 = Driver.run base in
  Alcotest.(check int64) "shards=1 same-seed trace equality"
    r1.Driver.r_trace_hash r2.Driver.r_trace_hash;
  let cfg4 = { base with Driver.shards = 4 } in
  let a = Driver.run cfg4 in
  let b = Driver.run cfg4 in
  Alcotest.(check int64) "shards=4 same-seed trace equality"
    a.Driver.r_trace_hash b.Driver.r_trace_hash;
  Alcotest.(check int) "shards=4 delivers everything" 0 a.Driver.r_undelivered

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "domains"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter conservation" `Quick
            test_counter_conservation;
          Alcotest.test_case "histogram snapshots never tear" `Quick
            test_histogram_no_tear;
        ] );
      ( "flyweight",
        [
          Alcotest.test_case "one domain per shard, full pipeline" `Quick
            test_sharded_block_parallel_hubs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same-seed trace hashes, shards 1 and 4"
            `Quick test_trace_hash_parity;
        ] );
    ]
