(* Tests for the interleaving model checker: the schedule codec, the
   seeded fan-out regression (found + shrunk), DPOR/hash soundness and
   pruning power, strategy agreement, and the iteration-order
   determinism the explorer's replays depend on. *)

module Net = Pti_net.Net
module Sim = Pti_net.Sim
module Peer = Pti_core.Peer
module Schedule = Pti_mc.Schedule
module Strategy = Pti_mc.Strategy
module Scenario = Pti_mc.Scenario
module Explore = Pti_mc.Explore

let mk ?(objects = 2) ?(fanout_bug = false) kind () =
  Scenario.make (Scenario.spec ~objects ~fanout_bug kind)

(* ---------------------------------------------------------------- *)
(* Schedule codec                                                     *)
(* ---------------------------------------------------------------- *)

let test_schedule_codec () =
  Alcotest.(check string) "empty encodes as dash" "-" (Schedule.encode []);
  Alcotest.(check string) "dots" "0.2.1" (Schedule.encode [ 0; 2; 1 ]);
  let roundtrip s =
    match Schedule.decode (Schedule.encode s) with
    | Ok s' -> s'
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list int)) "roundtrip empty" [] (roundtrip []);
  Alcotest.(check (list int)) "roundtrip" [ 3; 0; 7 ] (roundtrip [ 3; 0; 7 ]);
  Alcotest.(check (list int)) "dash decodes empty" []
    (match Schedule.decode "-" with Ok s -> s | Error e -> Alcotest.fail e);
  (match Schedule.decode "1.x.2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk component accepted");
  match Schedule.decode "1.-2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative component accepted"

(* ---------------------------------------------------------------- *)
(* Clean scenarios: every interleaving is green                       *)
(* ---------------------------------------------------------------- *)

let exhaust ?(depth = 8) mk =
  Explore.run
    ~config:{ Explore.default_config with depth; budget = 50_000 }
    mk

let test_protocol_green () =
  let r = exhaust (mk Scenario.Protocol) in
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None);
  Alcotest.(check bool) "explored something" true (r.Explore.schedules >= 1)

let test_wire_green () =
  let r = exhaust (mk Scenario.Wire) in
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

let test_cluster_green () =
  let r =
    exhaust ~depth:3
      (fun () -> Scenario.make (Scenario.spec ~peers:3 ~objects:1 Scenario.Cluster))
  in
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check bool) "no violation" true (r.Explore.violation = None)

(* ---------------------------------------------------------------- *)
(* The reintroduced fan-out bug: found within budget, shrunk small    *)
(* ---------------------------------------------------------------- *)

let test_finds_fanout_bug () =
  let mk = mk Scenario.Protocol ~fanout_bug:true in
  let r =
    Explore.run
      ~config:{ Explore.default_config with depth = 8; budget = 500 }
      mk
  in
  match r.Explore.violation with
  | None -> Alcotest.fail "fan-out bug not found within budget"
  | Some (sched, vs) ->
      Alcotest.(check bool) "violations reported" true (vs <> []);
      Alcotest.(check bool) "fetch-economy fired" true
        (List.exists
           (fun v -> v.Pti_fault.Invariant.inv = "fetch-economy")
           vs);
      let minimal = Explore.shrink mk sched in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to <= 6 steps (got %d)" (List.length minimal))
        true
        (List.length minimal <= 6);
      Alcotest.(check bool) "minimal schedule still violates" true
        (Explore.run_schedule mk minimal <> [])

let test_bug_off_means_green () =
  (* The same world with the in-flight guards on must exhaust green —
     the regression really is the [share_inflight] flag. *)
  let r = exhaust (mk Scenario.Protocol ~fanout_bug:false) in
  Alcotest.(check bool) "guarded world green" true
    (r.Explore.violation = None && r.Explore.exhausted)

(* ---------------------------------------------------------------- *)
(* Pruning: sound (same verdict) and >= 5x cheaper                    *)
(* ---------------------------------------------------------------- *)

let test_pruning_sound_and_effective () =
  let mk = mk Scenario.Protocol ~objects:3 in
  let naive =
    Explore.run
      ~config:
        { Explore.default_config with
          depth = 10; budget = 100_000; dpor = false; state_hash = false }
      mk
  in
  let pruned =
    Explore.run
      ~config:{ Explore.default_config with depth = 10; budget = 100_000 }
      mk
  in
  Alcotest.(check bool) "naive exhausted" true naive.Explore.exhausted;
  Alcotest.(check bool) "pruned exhausted" true pruned.Explore.exhausted;
  Alcotest.(check bool) "same verdict" true
    (naive.Explore.violation = None && pruned.Explore.violation = None);
  Alcotest.(check bool)
    (Printf.sprintf "5x fewer schedules (%d naive vs %d pruned)"
       naive.Explore.schedules pruned.Explore.schedules)
    true
    (naive.Explore.schedules >= 5 * pruned.Explore.schedules)

let test_explorer_deterministic () =
  let run () =
    let r = exhaust (mk Scenario.Wire) in
    (r.Explore.schedules, r.Explore.sleep_pruned, r.Explore.hash_pruned)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same counts across runs" true (a = b)

(* ---------------------------------------------------------------- *)
(* Strategies                                                         *)
(* ---------------------------------------------------------------- *)

let test_replay_strategy_matches_run_schedule () =
  let mk = mk Scenario.Protocol in
  let sched = [ 1; 0; 1 ] in
  let via_schedule = Explore.run_schedule mk sched in
  let via_strategy = Explore.run_strategy mk (Strategy.replay sched) in
  Alcotest.(check bool) "same verdict" true
    ((via_schedule = []) = (via_strategy = []))

(* Random walks and the chaos harness's FIFO order must agree on the
   invariant verdict for any pinned seed: on the guarded world both are
   green, whatever the interleaving. *)
let prop_random_agrees_with_fifo =
  QCheck.Test.make ~name:"random-strategy verdict agrees with fifo" ~count:30
    QCheck.(map Int64.of_int small_nat)
    (fun seed ->
      let mk = mk Scenario.Protocol in
      let fifo = Explore.run_strategy mk Strategy.fifo in
      let rand = Explore.run_strategy mk (Strategy.random ~seed) in
      (fifo = []) = (rand = []))

(* ---------------------------------------------------------------- *)
(* Iteration-order determinism (what replays rely on)                 *)
(* ---------------------------------------------------------------- *)

let test_hosts_sorted_regardless_of_registration_order () =
  let build names =
    let net = Net.create ~jitter_ms:0. () in
    List.iter (fun n -> ignore (Peer.create ~net n)) names;
    Net.hosts net
  in
  let a = build [ "zeta"; "alpha"; "mid" ] in
  let b = build [ "mid"; "zeta"; "alpha" ] in
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ] a;
  Alcotest.(check (list string)) "order-independent" a b

let test_fresh_instances_fingerprint_equal () =
  let fp () = (Scenario.make (Scenario.spec Scenario.Wire)).Scenario.i_fingerprint () in
  Alcotest.(check bool) "equal specs, equal fingerprints" true (fp () = fp ())

let test_fingerprint_tracks_state () =
  let inst = mk Scenario.Protocol () in
  let before = inst.Scenario.i_fingerprint () in
  Net.run inst.Scenario.i_net;
  let after = inst.Scenario.i_fingerprint () in
  Alcotest.(check bool) "running the world changes the digest" true
    (before <> after)

(* ---------------------------------------------------------------- *)

let () =
  Alcotest.run "pti_mc"
    [
      ( "schedule",
        [ Alcotest.test_case "codec" `Quick test_schedule_codec ] );
      ( "explore",
        [
          Alcotest.test_case "protocol exhausts green" `Quick
            test_protocol_green;
          Alcotest.test_case "wire exhausts green" `Quick test_wire_green;
          Alcotest.test_case "cluster exhausts green" `Slow
            test_cluster_green;
          Alcotest.test_case "deterministic" `Quick
            test_explorer_deterministic;
        ] );
      ( "regression",
        [
          Alcotest.test_case "finds and shrinks the fan-out bug" `Quick
            test_finds_fanout_bug;
          Alcotest.test_case "guards on means green" `Quick
            test_bug_off_means_green;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "sound and >=5x effective" `Quick
            test_pruning_sound_and_effective;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "replay matches run_schedule" `Quick
            test_replay_strategy_matches_run_schedule;
          QCheck_alcotest.to_alcotest prop_random_agrees_with_fifo;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "hosts sorted" `Quick
            test_hosts_sorted_regardless_of_registration_order;
          Alcotest.test_case "fingerprints reproducible" `Quick
            test_fresh_instances_fingerprint_equal;
          Alcotest.test_case "fingerprint tracks state" `Quick
            test_fingerprint_tracks_state;
        ] );
    ]
