(* Tests for the static interop-hazard analyzer (pti lint). *)

module Diag = Pti_lint.Diagnostic
module Rules = Pti_lint.Rules
module Rule_set = Pti_lint.Rule_set
module Engine = Pti_lint.Engine
module Report = Pti_lint.Report
module Json = Pti_lint.Json
module Srcmap = Pti_idl.Srcmap
module Config = Pti_conformance.Config

(* Parse inline IDL into a lint source, with the same location adapter the
   CLI uses. *)
let source ?(file = "inline.idl") src =
  let sm = Srcmap.create () in
  match Pti_idl.Idl.parse_assembly ~assembly:"t" ~srcmap:sm src with
  | Error e ->
      Alcotest.failf "parse error: %s"
        (Format.asprintf "%a" Pti_idl.Idl.pp_error e)
  | Ok asm ->
      let locate subject =
        let l =
          match subject with
          | Diag.Type t -> Srcmap.type_loc sm t
          | Diag.Field (t, f) -> Srcmap.field_loc sm ~type_:t f
          | Diag.Method (t, m, arity) -> Srcmap.method_loc sm ~type_:t m ~arity
          | Diag.Ctor (t, arity) -> Srcmap.ctor_loc sm ~type_:t ~arity
        in
        Option.map
          (fun (l : Srcmap.loc) -> { Diag.line = l.Srcmap.line; col = l.Srcmap.col })
          l
      in
      { Rules.src_file = file; src_assembly = asm; src_locate = locate }

let run ?config ?near_distance ?rule_set srcs =
  Engine.run ?config ?near_distance ?rule_set (List.map source srcs)

let codes diags =
  List.sort_uniq String.compare (List.map (fun d -> d.Diag.code) diags)

let check_codes msg expected diags =
  Alcotest.(check (list string)) msg expected (codes diags)

(* ----------------------------- sources ------------------------------ *)

let amb_src =
  "namespace hz;\n\
   class Logger {\n\
  \  method warn(m : string) : void;\n\
  \  method warm(m : string) : void;\n\
   }\n"

let collision_src =
  "namespace hz;\n\
   class Price { field amount : int; }\n\
   class price { field amount : int; }\n\
   class Count {\n\
  \  method getTotal() : int;\n\
  \  method GetTotal(weight : int) : int;\n\
   }\n\
   class Shop {\n\
  \  field stock : int;\n\
  \  method STOCK() : int;\n\
   }\n"

let clean_src =
  "namespace hz;\n\
   interface INamed {\n\
  \  method getName() : string;\n\
   }\n\
   class Person implements hz.INamed {\n\
  \  field name : string;\n\
  \  field years : int;\n\
  \  ctor(n : string, a : int) { name = n; years = a; }\n\
  \  method getName() : string { return name; }\n\
  \  method rename(v : string) : void { name = v; }\n\
   }\n"

(* ------------------------------ rules ------------------------------- *)

let test_clean_is_clean () =
  check_codes "no hazards" [] (run [ clean_src ])

let test_ambiguous_binding () =
  (* Only visible once the name rule is relaxed: warn/warm at distance 1. *)
  let diags = run ~config:(Config.relaxed ~distance:1) [ amb_src ] in
  check_codes "PTI001 fires" [ "PTI001" ] diags;
  (match diags with
  | [ d ] ->
      Alcotest.(check string) "severity" "error"
        (Diag.severity_to_string d.Diag.severity);
      Alcotest.(check (option int)) "on the first viable method's line"
        (Some 3)
        (Option.map (fun (l : Diag.loc) -> l.Diag.line) d.Diag.loc)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  (* At the paper's distance 0 the binding is unambiguous; the pair is
     instead a near-miss (it would alias under a relaxed name rule). *)
  check_codes "downgrades to PTI004 at distance 0" [ "PTI004" ]
    (run [ amb_src ])

let test_permutation_ambiguity () =
  let src =
    "namespace hz;\n\
     class Mover {\n\
    \  ctor(src : string, dst : string) { }\n\
    \  method move(src : string, dst : string) : void;\n\
     }\n"
  in
  let diags = run [ src ] in
  check_codes "PTI002 fires" [ "PTI002" ] diags;
  Alcotest.(check int) "method and ctor each flagged" 2 (List.length diags);
  let neg =
    "namespace hz;\n\
     class Sender { method send(dest : string, retries : int) : void; }\n"
  in
  check_codes "mixed types are not permutable" [] (run [ neg ])

let test_case_collisions () =
  let diags = run [ collision_src ] in
  check_codes "PTI003 fires" [ "PTI003" ] diags;
  let sev s =
    List.length
      (List.filter
         (fun d -> Diag.severity_to_string d.Diag.severity = s)
         diags)
  in
  Alcotest.(check int) "type collision is an error" 1 (sev "error");
  Alcotest.(check int) "method case pair is a warning" 1 (sev "warning");
  Alcotest.(check int) "field/method pair is an info" 1 (sev "info")

let test_near_miss () =
  let src =
    "namespace hz;\n\
     class Api {\n\
    \  method getName() : string;\n\
    \  method getNane() : string;\n\
     }\n\
     class Person { field id : int; }\n\
     class Persom { field id : int; }\n"
  in
  let diags = run [ src ] in
  check_codes "PTI004 fires" [ "PTI004" ] diags;
  Alcotest.(check int) "method pair and type pair" 2 (List.length diags);
  (* A zero-width window (near = active distance) disables the rule. *)
  check_codes "empty window" [] (run ~near_distance:0 [ src ])

let test_supertype_cycle () =
  let src =
    "namespace hz;\n\
     class Alpha extends hz.Beta { }\n\
     class Beta extends hz.Alpha { }\n\
     class Ouro extends hz.Ouro { }\n"
  in
  let diags = run [ src ] in
  check_codes "PTI005 fires" [ "PTI005" ] diags;
  Alcotest.(check int) "one per distinct cycle" 2 (List.length diags);
  let neg =
    "namespace hz;\nclass Base { }\nclass Leaf extends hz.Base { }\n"
  in
  check_codes "linear chain is fine" [] (run [ neg ])

let test_unresolved_type () =
  let src =
    "namespace hz;\n\
     class Order {\n\
    \  field item : hz.Item;\n\
    \  method ship(addr : hz.Address) : hz.Receipt;\n\
     }\n"
  in
  let diags = run [ src ] in
  check_codes "PTI006 fires" [ "PTI006" ] diags;
  Alcotest.(check int) "field + param + return" 3 (List.length diags);
  (* Resolution is cross-input: describing hz.Item in a second file heals
     the field reference. *)
  let item = "namespace hz;\nclass Item { field sku : int; }\n" in
  let diags2 = run [ src; item ] in
  Alcotest.(check int) "field ref resolved via second input" 2
    (List.length diags2)

let test_ctor_rule () =
  let src =
    "namespace alpha;\n\
     class Event {\n\
    \  field id : int;\n\
    \  ctor(tag : string) { }\n\
    \  method kind() : int;\n\
     }\n\
     namespace beta;\n\
     class Event {\n\
    \  field id : int;\n\
    \  ctor(prio : int) { }\n\
    \  method kind() : int;\n\
     }\n"
  in
  let diags = run [ src ] in
  check_codes "PTI007 fires" [ "PTI007" ] diags;
  Alcotest.(check int) "both directions reported" 2 (List.length diags);
  (* With ctor checking off in the deployed config there is no gap to
     warn about. *)
  check_codes "not applicable without rule v" []
    (run ~config:{ Config.strict with Config.check_ctors = false } [ src ])

let test_shadowed_field () =
  let src =
    "namespace hz;\n\
     class Base { field id : int; }\n\
     class Child extends hz.Base { field id : int; }\n"
  in
  let diags = run [ src ] in
  check_codes "PTI008 fires" [ "PTI008" ] diags;
  (match diags with
  | [ d ] ->
      Alcotest.(check string) "subject is the shadowing field"
        "hz.Child" (Diag.subject_type d.Diag.subject)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  let neg =
    "namespace hz;\n\
     class Base { field id : int; }\n\
     class Child extends hz.Base { field label : string; }\n"
  in
  check_codes "new field is fine" [] (run [ neg ])

(* --------------------------- rule control --------------------------- *)

let test_rule_disable () =
  let rs =
    match Rule_set.apply_spec Rule_set.default "-PTI003" with
    | Ok rs -> rs
    | Error m -> Alcotest.fail m
  in
  check_codes "disabled rule is silent" [] (run ~rule_set:rs [ collision_src ]);
  (match Rule_set.apply_spec Rule_set.default "+PTI999" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown code accepted");
  (* Re-enabling wins over an earlier disable. *)
  let rs2 =
    match Rule_set.apply_spec rs "PTI003" with
    | Ok rs -> rs
    | Error m -> Alcotest.fail m
  in
  check_codes "re-enabled" [ "PTI003" ] (run ~rule_set:rs2 [ collision_src ])

let test_severity_override () =
  let rs =
    match Rule_set.apply_severity Rule_set.default "PTI003=info" with
    | Ok rs -> rs
    | Error m -> Alcotest.fail m
  in
  let diags = run ~rule_set:rs [ collision_src ] in
  Alcotest.(check bool) "all demoted to info" true
    (List.for_all (fun d -> d.Diag.severity = Diag.Info) diags);
  Alcotest.(check int) "no errors left, exit 0" 0 (Report.exit_code diags);
  match Rule_set.apply_severity Rule_set.default "PTI003=loud" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus severity accepted"

(* Keep the dependency footprint flat: a tiny substring check instead of
   pulling in Str. *)
let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_report_text () =
  let diags = run [ collision_src ] in
  let s = Report.summarize diags in
  Alcotest.(check (list int)) "summary counts" [ 1; 1; 1 ]
    [ s.Report.errors; s.Report.warnings; s.Report.infos ];
  Alcotest.(check int) "error-severity exit" 1 (Report.exit_code diags);
  Alcotest.(check int) "clean exit" 0 (Report.exit_code (run [ clean_src ]));
  let text = Report.to_text diags in
  Alcotest.(check bool) "text mentions the code" true
    (contains ~needle:"PTI003" text);
  Alcotest.(check bool) "text ends with a summary" true
    (contains ~needle:"1 error(s), 1 warning(s), 1 info(s)" text)

let test_json_output () =
  let diags = run [ collision_src ] in
  let json = Json.to_string (Report.to_json diags) in
  Alcotest.(check bool) "version tag" true (contains ~needle:"\"version\"" json);
  Alcotest.(check bool) "code present" true
    (contains ~needle:"\"PTI003\"" json);
  Alcotest.(check bool) "summary present" true
    (contains ~needle:"\"errors\": 1" json)

let test_json_escaping () =
  Alcotest.(check string) "string escapes"
    "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}"
    (Json.to_string ~pretty:false
       (Json.Obj [ ("k", Json.String "a\"b\\c\nd\001") ]));
  Alcotest.(check string) "empty containers" "{\"a\":[],\"b\":{}}"
    (Json.to_string ~pretty:false
       (Json.Obj [ ("a", Json.List []); ("b", Json.Obj []) ]))

(* ------------------------------ srcmap ------------------------------ *)

let test_srcmap () =
  let sm = Srcmap.create () in
  Srcmap.add_type sm ~type_:"hz.X" { Srcmap.line = 3; col = 5 };
  Srcmap.add_method sm ~type_:"hz.X" "go" ~arity:0 { Srcmap.line = 4; col = 3 };
  Srcmap.add_method sm ~type_:"hz.X" "go" ~arity:2 { Srcmap.line = 9; col = 3 };
  Alcotest.(check (option int)) "case-insensitive type lookup" (Some 3)
    (Option.map (fun (l : Srcmap.loc) -> l.Srcmap.line)
       (Srcmap.type_loc sm "HZ.x"));
  Alcotest.(check (option int)) "overloads keyed by arity" (Some 9)
    (Option.map (fun (l : Srcmap.loc) -> l.Srcmap.line)
       (Srcmap.method_loc sm ~type_:"hz.x" "GO" ~arity:2));
  Alcotest.(check (option int)) "missing member" None
    (Option.map (fun (l : Srcmap.loc) -> l.Srcmap.line)
       (Srcmap.field_loc sm ~type_:"hz.X" "nope"));
  (* First writer wins: a property's synthesized accessors keep the
     property's line even if a like-named member follows. *)
  Srcmap.add_type sm ~type_:"hz.X" { Srcmap.line = 99; col = 1 };
  Alcotest.(check (option int)) "first writer wins" (Some 3)
    (Option.map (fun (l : Srcmap.loc) -> l.Srcmap.line)
       (Srcmap.type_loc sm "hz.X"))

let test_vb_locations () =
  let sm = Srcmap.create () in
  let src =
    "Namespace hz\nClass Thing\n  Dim total As Integer\n\n  Function \
     total() As Integer\n    Return 0\n  End Function\nEnd Class\n"
  in
  (* Dim total + Function total: the intra-type field/method case pair
     should carry VB line numbers. *)
  match Pti_idl.Vbdl.parse_assembly ~assembly:"t" ~srcmap:sm src with
  | Error e ->
      Alcotest.failf "vb parse error: %s"
        (Format.asprintf "%a" Pti_idl.Vbdl.pp_error e)
  | Ok _ ->
      Alcotest.(check (option int)) "field line" (Some 3)
        (Option.map (fun (l : Srcmap.loc) -> l.Srcmap.line)
           (Srcmap.field_loc sm ~type_:"hz.Thing" "total"));
      Alcotest.(check (option int)) "method line" (Some 5)
        (Option.map (fun (l : Srcmap.loc) -> l.Srcmap.line)
           (Srcmap.method_loc sm ~type_:"hz.Thing" "total" ~arity:0))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "clean module is clean" `Quick test_clean_is_clean;
          Alcotest.test_case "PTI001 ambiguous binding" `Quick
            test_ambiguous_binding;
          Alcotest.test_case "PTI002 permutable arguments" `Quick
            test_permutation_ambiguity;
          Alcotest.test_case "PTI003 case collisions" `Quick
            test_case_collisions;
          Alcotest.test_case "PTI004 near misses" `Quick test_near_miss;
          Alcotest.test_case "PTI005 supertype cycles" `Quick
            test_supertype_cycle;
          Alcotest.test_case "PTI006 unresolved types" `Quick
            test_unresolved_type;
          Alcotest.test_case "PTI007 constructor rule" `Quick test_ctor_rule;
          Alcotest.test_case "PTI008 shadowed fields" `Quick
            test_shadowed_field;
        ] );
      ( "control",
        [
          Alcotest.test_case "rule enable/disable" `Quick test_rule_disable;
          Alcotest.test_case "severity override" `Quick test_severity_override;
        ] );
      ( "report",
        [
          Alcotest.test_case "text output" `Quick test_report_text;
          Alcotest.test_case "json output" `Quick test_json_output;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
        ] );
      ( "srcmap",
        [
          Alcotest.test_case "lookups" `Quick test_srcmap;
          Alcotest.test_case "vb line numbers" `Quick test_vb_locations;
        ] );
    ]
