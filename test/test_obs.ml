(* pti_obs: the bounded LRU cache, the ring buffer and the metrics
   registry. Unit tests pin the exact semantics the middleware relies on
   (recency order, keyed invalidation, counter accounting); qcheck
   properties check the invariants against a model over random operation
   sequences. *)

module Lru = Pti_obs.Lru
module Ring = Pti_obs.Ring
module Metrics = Pti_obs.Metrics

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl = 0 || at 0

(* ------------------------------- LRU -------------------------------- *)

let test_lru_basic () =
  let c = Lru.Str.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Lru.Str.capacity c);
  Alcotest.(check int) "empty" 0 (Lru.Str.length c);
  Lru.Str.put c "a" 1;
  Lru.Str.put c "b" 2;
  Alcotest.(check (option int)) "hit" (Some 1) (Lru.Str.find c "a");
  Alcotest.(check (option int)) "miss" None (Lru.Str.find c "z");
  Lru.Str.put c "a" 10;
  Alcotest.(check (option int)) "overwrite" (Some 10) (Lru.Str.find c "a");
  Alcotest.(check int) "length" 2 (Lru.Str.length c)

let test_lru_eviction_order () =
  let evicted = ref [] in
  let c =
    Lru.Str.create ~on_evict:(fun k _ -> evicted := k :: !evicted)
      ~capacity:3 ()
  in
  Lru.Str.put c "a" 1;
  Lru.Str.put c "b" 2;
  Lru.Str.put c "c" 3;
  (* Refresh "a": the LRU entry is now "b". *)
  ignore (Lru.Str.find c "a");
  Lru.Str.put c "d" 4;
  Alcotest.(check (list string)) "b evicted first" [ "b" ] !evicted;
  Lru.Str.put c "e" 5;
  Alcotest.(check (list string)) "then c" [ "c"; "b" ] !evicted;
  Alcotest.(check bool) "a survived (was refreshed)" true (Lru.Str.mem c "a");
  Alcotest.(check (list string))
    "to_list is MRU-first"
    [ "e"; "d"; "a" ]
    (List.map fst (Lru.Str.to_list c));
  let ctr = Lru.Str.counters c in
  Alcotest.(check int) "eviction counter" 2 ctr.Lru.evictions;
  Alcotest.(check int) "insertions" 5 ctr.Lru.insertions

let test_lru_peek_does_not_refresh () =
  let c = Lru.Str.create ~capacity:2 () in
  Lru.Str.put c "a" 1;
  Lru.Str.put c "b" 2;
  (* peek must not rescue "a" from eviction. *)
  Alcotest.(check (option int)) "peek sees a" (Some 1) (Lru.Str.peek c "a");
  Lru.Str.put c "c" 3;
  Alcotest.(check bool) "a evicted despite peek" false (Lru.Str.mem c "a");
  let ctr = Lru.Str.counters c in
  Alcotest.(check int) "peek is not a hit" 0 ctr.Lru.hits

let test_lru_invalidate_where () =
  let c = Lru.Str.create ~capacity:8 () in
  List.iter (fun k -> Lru.Str.put c k 0) [ "ax"; "ay"; "bx"; "by" ];
  let n = Lru.Str.invalidate_where c (fun k -> k.[0] = 'a') in
  Alcotest.(check int) "two dropped" 2 n;
  Alcotest.(check bool) "bx kept" true (Lru.Str.mem c "bx");
  Alcotest.(check bool) "ax gone" false (Lru.Str.mem c "ax");
  Alcotest.(check int) "none match" 0
    (Lru.Str.invalidate_where c (fun _ -> false));
  let ctr = Lru.Str.counters c in
  Alcotest.(check int) "invalidation counter" 2 ctr.Lru.invalidations

let test_lru_set_capacity () =
  let c = Lru.Str.create ~capacity:4 () in
  List.iter (fun k -> Lru.Str.put c k 0) [ "a"; "b"; "c"; "d" ];
  Lru.Str.set_capacity c 2;
  Alcotest.(check int) "shrunk" 2 (Lru.Str.length c);
  Alcotest.(check (list string))
    "most recent kept"
    [ "d"; "c" ]
    (List.map fst (Lru.Str.to_list c));
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.set_capacity: capacity must be >= 1") (fun () ->
      Lru.Str.set_capacity c 0);
  Alcotest.check_raises "create capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Lru.Str.create ~capacity:0 ()))

let test_lru_clear () =
  let evicted = ref [] in
  let c =
    Lru.Str.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~capacity:4 ()
  in
  Lru.Str.put c "a" 1;
  Lru.Str.put c "b" 2;
  Lru.Str.clear c;
  Alcotest.(check int) "empty after clear" 0 (Lru.Str.length c);
  (* Regression: [clear] used to reset the table without firing
     [on_evict], silently desyncing dependency bookkeeping hung off the
     callback (unlike [remove]/capacity eviction, which always fire). *)
  Alcotest.(check (list string))
    "clear fires on_evict per entry"
    [ "a"; "b" ]
    (List.sort String.compare !evicted);
  Lru.Str.remove c "nope";
  Lru.Str.put c "c" 3;
  Lru.Str.remove c "c";
  Alcotest.(check int) "remove fires on_evict too" 3 (List.length !evicted);
  (* Re-entrancy: the callback observes the already-emptied cache. *)
  let c2 = ref None in
  let seen_len = ref (-1) in
  let cache =
    Lru.Str.create
      ~on_evict:(fun _ _ ->
        match !c2 with
        | Some c -> seen_len := Lru.Str.length c
        | None -> ())
      ~capacity:4 ()
  in
  c2 := Some cache;
  Lru.Str.put cache "x" 1;
  Lru.Str.clear cache;
  Alcotest.(check int) "callback sees emptied cache" 0 !seen_len

(* qcheck: random put/find/remove/invalidate traces against an
   association-list model. The model keeps entries MRU-first, mirroring
   the recency discipline. *)

type op = Put of int * int | Find of int | Remove of int | Invalidate of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Put (k, v)) (int_bound 15) (int_bound 100));
        (3, map (fun k -> Find k) (int_bound 15));
        (1, map (fun k -> Remove k) (int_bound 15));
        (1, map (fun k -> Invalidate k) (int_bound 15));
      ])

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Put (k, v) -> Printf.sprintf "put %d %d" k v
             | Find k -> Printf.sprintf "find %d" k
             | Remove k -> Printf.sprintf "rm %d" k
             | Invalidate k -> Printf.sprintf "inv %d" k)
           ops))
    QCheck.Gen.(list_size (int_range 0 120) op_gen)

module Imap = Map.Make (Int)

let run_trace ~capacity ops =
  let c = Lru.Str.create ~capacity () in
  let key k = string_of_int k in
  (* Model: MRU-first list of (key, value). *)
  let model = ref [] in
  let model_put k v =
    model := (k, v) :: List.remove_assoc k !model;
    if List.length !model > capacity then
      model := List.filteri (fun i _ -> i < capacity) !model
  in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Put (k, v) ->
          Lru.Str.put c (key k) v;
          model_put k v
      | Find k -> (
          let got = Lru.Str.find c (key k) in
          match List.assoc_opt k !model with
          | Some v ->
              if got <> Some v then ok := false;
              (* find refreshes recency *)
              model := (k, v) :: List.remove_assoc k !model
          | None -> if got <> None then ok := false)
      | Remove k ->
          Lru.Str.remove c (key k);
          model := List.remove_assoc k !model
      | Invalidate k ->
          let p s = int_of_string s mod 4 = k mod 4 in
          let dropped = Lru.Str.invalidate_where c p in
          let before = List.length !model in
          model := List.filter (fun (mk, _) -> not (p (key mk))) !model;
          if dropped <> before - List.length !model then ok := false)
    ops;
  (c, !model, !ok)

let prop_lru_capacity_never_exceeded =
  QCheck.Test.make ~name:"lru: length <= capacity always" ~count:300
    QCheck.(pair (int_range 1 6) ops_arbitrary)
    (fun (capacity, ops) ->
      let c, _, _ = run_trace ~capacity ops in
      Lru.Str.length c <= capacity)

let prop_lru_matches_model =
  QCheck.Test.make
    ~name:"lru: contents and order match the MRU model" ~count:300
    QCheck.(pair (int_range 1 6) ops_arbitrary)
    (fun (capacity, ops) ->
      let c, model, ok = run_trace ~capacity ops in
      ok
      && List.map fst (Lru.Str.to_list c)
         = List.map (fun (k, _) -> string_of_int k) model)

let prop_lru_hit_after_put =
  QCheck.Test.make ~name:"lru: put k v then find k = Some v" ~count:300
    QCheck.(triple (int_range 1 6) ops_arbitrary (pair (int_bound 15) int))
    (fun (capacity, ops, (k, v)) ->
      let c, _, _ = run_trace ~capacity ops in
      Lru.Str.put c (string_of_int k) v;
      Lru.Str.find c (string_of_int k) = Some v)

let prop_lru_invalidate_sound =
  QCheck.Test.make
    ~name:"lru: invalidate_where drops exactly the matching keys" ~count:300
    QCheck.(pair (int_range 1 8) ops_arbitrary)
    (fun (capacity, ops) ->
      let c, _, _ = run_trace ~capacity ops in
      let before = List.map fst (Lru.Str.to_list c) in
      let p k = String.length k > 0 && Char.code k.[0] mod 2 = 0 in
      let n = Lru.Str.invalidate_where c p in
      let after = List.map fst (Lru.Str.to_list c) in
      List.for_all (fun k -> not (p k)) after
      && List.length before = List.length after + n
      && List.for_all (fun k -> p k || List.mem k after) before)

(* Regression: an [on_evict] callback that re-enters the cache used to
   corrupt the recency list. A sweep holding references to doomed nodes
   could unlink a node the callback had already dropped — detaching an
   already-detached node nulls the list head while the table stays
   populated, and the eviction loop's [assert false] trips on the next
   over-capacity insert. Dropping a dead node must be a no-op. *)

let test_lru_reentrant_evict_put () =
  let c = ref None in
  let cache =
    Lru.Str.create
      ~on_evict:(fun k _ ->
        match !c with
        | Some cache when k = "a" ->
            (* Insert while the eviction that doomed "a" is unwinding:
               this recurses into the eviction loop. *)
            Lru.Str.put cache "r" 99
        | _ -> ())
      ~capacity:2 ()
  in
  c := Some cache;
  Lru.Str.put cache "a" 1;
  Lru.Str.put cache "b" 2;
  (* Over capacity: evicts "a"; its callback inserts "r", which evicts
     "b" before the outer loop resumes. *)
  Lru.Str.put cache "c" 3;
  Alcotest.(check int) "within capacity" 2 (Lru.Str.length cache);
  Alcotest.(check (list string))
    "recency list agrees with the table" [ "r"; "c" ]
    (List.map fst (Lru.Str.to_list cache));
  Alcotest.(check int) "both eviction rounds counted" 2
    (Lru.Str.counters cache).Lru.evictions;
  (* Still usable: a later over-capacity insert must not assert. *)
  Lru.Str.put cache "z" 26;
  Alcotest.(check (option int))
    "usable after reentrant eviction" (Some 26)
    (Lru.Str.find cache "z")

let test_lru_reentrant_invalidate_remove () =
  let fired = ref [] in
  let c = ref None in
  let cache =
    Lru.Str.create
      ~on_evict:(fun k _ ->
        fired := k :: !fired;
        match !c with
        | Some cache when k = "a" ->
            (* Remove a key the sweep has also doomed but not yet
               reached: the sweep must treat the dead node as done. *)
            Lru.Str.remove cache "b"
        | _ -> ())
      ~capacity:3 ()
  in
  c := Some cache;
  (* Insertion order puts "a" at the tail, so the sweep drops it first
     while "b" is still pending in its doomed list. *)
  Lru.Str.put cache "a" 1;
  Lru.Str.put cache "b" 2;
  Lru.Str.put cache "keep" 0;
  let dropped =
    Lru.Str.invalidate_where cache (fun k -> k = "a" || k = "b")
  in
  Alcotest.(check int) "both doomed keys swept" 2 dropped;
  Alcotest.(check (list string))
    "each callback fired exactly once" [ "a"; "b" ]
    (List.sort compare !fired);
  Alcotest.(check (list string))
    "survivor intact" [ "keep" ]
    (List.map fst (Lru.Str.to_list cache));
  Alcotest.(check int) "no double-counted invalidations" 2
    (Lru.Str.counters cache).Lru.invalidations;
  (* The corrupted list used to orphan survivors and trip the eviction
     loop on later inserts; refill past capacity to prove it cannot. *)
  List.iter (fun k -> Lru.Str.put cache k 0) [ "x"; "y"; "z"; "w" ];
  Alcotest.(check int) "refill respects capacity" 3 (Lru.Str.length cache)

(* ------------------------------- Ring ------------------------------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:3 () in
  Alcotest.(check (list int)) "empty" [] (Ring.to_list r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check (list int)) "fifo" [ 1; 2 ] (Ring.to_list r);
  Ring.push r 3;
  Ring.push r 4;
  Alcotest.(check (list int)) "oldest displaced" [ 2; 3; 4 ] (Ring.to_list r);
  Alcotest.(check int) "dropped" 1 (Ring.dropped r);
  Alcotest.(check int) "length" 3 (Ring.length r);
  Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (Ring.to_list r);
  Alcotest.(check int) "dropped reset" 0 (Ring.dropped r);
  Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Ring.to_list r)

let prop_ring_keeps_last_capacity =
  QCheck.Test.make ~name:"ring: to_list = last capacity pushes" ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 0 60) int))
    (fun (capacity, xs) ->
      let r = Ring.create ~capacity () in
      List.iter (Ring.push r) xs;
      let n = List.length xs in
      let expected =
        List.filteri (fun i _ -> i >= n - capacity) xs
      in
      Ring.to_list r = expected
      && Ring.dropped r = max 0 (n - capacity)
      && Ring.length r = min n capacity)

let test_ring_rejects_nonpositive_capacity () =
  (* [Ring.to_list]'s walk assumes at least one live slot; a 0-capacity
     ring would reach its [assert false]. Rejected at construction. *)
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
      ignore (Ring.create ~capacity:0 ()));
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
      ignore (Ring.create ~capacity:(-3) ()))

(* ------------------------------ Metrics ----------------------------- *)

let test_metrics_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter value" 5 (Metrics.counter_value c);
  let c' = Metrics.counter m "a.count" in
  Metrics.incr c';
  Alcotest.(check int) "get-or-create shares the cell" 6
    (Metrics.counter_value c);
  let g = Metrics.gauge m "a.gauge" in
  Metrics.set_gauge g 2.5;
  Metrics.gauge_fn m "a.fn" (fun () -> 7.);
  Metrics.gauge_fn m "a.fn" (fun () -> 8.);
  (match Metrics.find m "a.fn" with
  | Some (Metrics.Gauge v) ->
      Alcotest.(check (float 0.)) "gauge_fn replaces" 8. v
  | _ -> Alcotest.fail "a.fn missing");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"a.count\" is a counter, not a gauge")
    (fun () -> ignore (Metrics.gauge m "a.count"));
  let names = List.map fst (Metrics.snapshot m) in
  Alcotest.(check (list string))
    "snapshot sorted"
    [ "a.count"; "a.fn"; "a.gauge" ]
    names

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.; 10.; 100. |] m "lat" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 5.; 50.; 5000. ];
  match Metrics.find m "lat" with
  | Some (Metrics.Histogram s) ->
      Alcotest.(check int) "count" 5 s.Metrics.h_count;
      Alcotest.(check (float 1e-6)) "sum" 5060.5 s.Metrics.h_sum;
      Alcotest.(check (float 0.)) "min" 0.5 s.Metrics.h_min;
      Alcotest.(check (float 0.)) "max" 5000. s.Metrics.h_max;
      Alcotest.(check (list (pair (float 0.) int)))
        "buckets"
        [ (1., 1); (10., 2); (100., 1); (infinity, 1) ]
        (Array.to_list s.Metrics.h_buckets);
      Alcotest.(check (option (float 0.)))
        "p50 estimate" (Some 10.)
        (Metrics.quantile s 0.5);
      Alcotest.(check (option (float 0.)))
        "overflow quantile reports observed max" (Some 5000.)
        (Metrics.quantile s 0.99)
  | _ -> Alcotest.fail "lat missing"

let snap_of m name =
  match Metrics.find m name with
  | Some (Metrics.Histogram s) -> s
  | _ -> Alcotest.fail (name ^ " missing")

(* Nearest-rank edge pins: rank = ceil(p * count) clamped to [1, count].
   The old round-based formula biased one rank high — on a two-entry
   histogram p50 (and even p0) reported the larger observation. *)
let test_metrics_quantile_edges () =
  let m = Metrics.create () in
  let h1 = Metrics.histogram ~buckets:[| 1.; 10. |] m "one" in
  Metrics.observe h1 5.;
  let s1 = snap_of m "one" in
  List.iter
    (fun p ->
      Alcotest.(check (option (float 0.)))
        (Printf.sprintf "1-entry p%g" (p *. 100.))
        (Some 10.) (Metrics.quantile s1 p))
    [ 0.0; 0.5; 1.0 ];
  let h2 = Metrics.histogram ~buckets:[| 1.; 10. |] m "two" in
  Metrics.observe h2 0.5;
  Metrics.observe h2 5.;
  let s2 = snap_of m "two" in
  Alcotest.(check (option (float 0.)))
    "2-entry p0 is the minimum's bucket" (Some 1.)
    (Metrics.quantile s2 0.0);
  Alcotest.(check (option (float 0.)))
    "2-entry p50 is the smaller observation's bucket" (Some 1.)
    (Metrics.quantile s2 0.5);
  Alcotest.(check (option (float 0.)))
    "2-entry p100 is the maximum's bucket" (Some 10.)
    (Metrics.quantile s2 1.0);
  (* p100 landing in the overflow bucket reports the observed max. *)
  let h3 = Metrics.histogram ~buckets:[| 1. |] m "ovf" in
  Metrics.observe h3 0.5;
  Metrics.observe h3 42.;
  let s3 = snap_of m "ovf" in
  Alcotest.(check (option (float 0.)))
    "overflow p100 reports observed max" (Some 42.)
    (Metrics.quantile s3 1.0);
  Alcotest.(check (option (float 0.)))
    "overflow histogram p0 stays in the finite bucket" (Some 1.)
    (Metrics.quantile s3 0.0)

(* Snapshotting mid-stream must not disturb later observations: the
   allocation-free bucket walk keeps no per-observe state, so quantile
   estimates after interleaved observe/snapshot rounds equal those of an
   uninterrupted run over the same values. *)
let test_metrics_histogram_interleaved_snapshots () =
  let buckets = [| 1.; 2.; 5.; 10.; 50. |] in
  let values =
    [ 0.3; 7.; 7.; 1.5; 120.; 4.; 4.; 0.9; 30.; 9.; 1.1; 0.2 ]
  in
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets m "lat" in
  List.iteri
    (fun i v ->
      Metrics.observe h v;
      if i mod 3 = 0 then
        (* Interleaved snapshot: read quantiles mid-stream. *)
        match Metrics.find m "lat" with
        | Some (Metrics.Histogram s) ->
            Alcotest.(check int) "running count" (i + 1) s.Metrics.h_count
        | _ -> Alcotest.fail "lat missing")
    values;
  let control = Metrics.create () in
  let hc = Metrics.histogram ~buckets control "lat" in
  List.iter (Metrics.observe hc) values;
  match (Metrics.find m "lat", Metrics.find control "lat") with
  | Some (Metrics.Histogram a), Some (Metrics.Histogram b) ->
      List.iter
        (fun q ->
          Alcotest.(check (option (float 0.)))
            (Printf.sprintf "q%.2f unaffected by snapshots" q)
            (Metrics.quantile b q) (Metrics.quantile a q))
        [ 0.25; 0.5; 0.9; 0.99 ];
      Alcotest.(check (float 0.)) "sums equal" b.Metrics.h_sum a.Metrics.h_sum;
      Alcotest.(check (list (pair (float 0.) int)))
        "bucket fill equal"
        (Array.to_list b.Metrics.h_buckets)
        (Array.to_list a.Metrics.h_buckets)
  | _ -> Alcotest.fail "histogram missing"

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter m "c");
  Metrics.set_gauge (Metrics.gauge m "g") 1.5;
  let h = Metrics.histogram ~buckets:[| 1. |] m "h" in
  Metrics.observe h 0.5;
  let json = Metrics.to_json (Metrics.snapshot m) in
  Alcotest.(check bool) "counter in json" true
    (contains ~needle:"\"c\":3" json);
  Alcotest.(check bool) "gauge in json" true
    (contains ~needle:"\"g\":1.5" json);
  Alcotest.(check bool) "histogram count in json" true
    (contains ~needle:"\"count\":1" json);
  (* An empty histogram has nan min/max: must still be valid JSON (null). *)
  let m2 = Metrics.create () in
  ignore (Metrics.histogram m2 "empty");
  let json2 = Metrics.to_json (Metrics.snapshot m2) in
  Alcotest.(check bool) "nan becomes null" true
    (contains ~needle:"null" json2)

let test_metrics_reset () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  let live = ref 3. in
  Metrics.gauge_fn m "fn" (fun () -> !live);
  Metrics.reset m;
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  live := 4.;
  match Metrics.find m "fn" with
  | Some (Metrics.Gauge v) ->
      Alcotest.(check (float 0.)) "gauge callback survives reset" 4. v
  | _ -> Alcotest.fail "fn missing"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "lru",
        [
          Alcotest.test_case "basic put/find" `Quick test_lru_basic;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "peek does not refresh" `Quick
            test_lru_peek_does_not_refresh;
          Alcotest.test_case "invalidate_where" `Quick
            test_lru_invalidate_where;
          Alcotest.test_case "set_capacity" `Quick test_lru_set_capacity;
          Alcotest.test_case "clear and remove" `Quick test_lru_clear;
          Alcotest.test_case "reentrant on_evict: put during eviction"
            `Quick test_lru_reentrant_evict_put;
          Alcotest.test_case "reentrant on_evict: remove during sweep"
            `Quick test_lru_reentrant_invalidate_remove;
          QCheck_alcotest.to_alcotest prop_lru_capacity_never_exceeded;
          QCheck_alcotest.to_alcotest prop_lru_matches_model;
          QCheck_alcotest.to_alcotest prop_lru_hit_after_put;
          QCheck_alcotest.to_alcotest prop_lru_invalidate_sound;
        ] );
      ( "ring",
        [
          Alcotest.test_case "push/wrap/clear" `Quick test_ring_basic;
          Alcotest.test_case "nonpositive capacity rejected" `Quick
            test_ring_rejects_nonpositive_capacity;
          QCheck_alcotest.to_alcotest prop_ring_keeps_last_capacity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_metrics_counters_and_gauges;
          Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram;
          Alcotest.test_case "quantile edge ranks" `Quick
            test_metrics_quantile_edges;
          Alcotest.test_case "histogram vs interleaved snapshots" `Quick
            test_metrics_histogram_interleaved_snapshots;
          Alcotest.test_case "json output" `Quick test_metrics_json;
          Alcotest.test_case "reset keeps registrations" `Quick
            test_metrics_reset;
        ] );
    ]
