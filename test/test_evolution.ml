(* The live schema-evolution battery (E15): the versioned,
   content-addressed store (CAS publish, pins, chains), conformance of
   additive revisions, version-aware verdict invalidation, and an
   upgrade under traffic on a live pair of peers. *)

open Pti_cts
module B = Builder
module E = Expr
module Repository = Pti_core.Repository
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Checker = Pti_conformance.Checker
module Td = Pti_typedesc.Type_description
module Workload = Pti_demo.Workload
module Demo = Pti_demo.Demo_types
module Cluster = Pti_cluster.Cluster
module Node = Pti_cluster.Node

let fam v = Workload.family_v ~version:v ~index:0 ~flavor:Workload.Conformant
let fam_name = (fam 1).Assembly.asm_name

let ok_exn = function
  | Ok ve -> ve
  | Error (Repository.Conflict _) -> Alcotest.fail "unexpected CAS conflict"

(* ------------------------- the store itself ------------------------- *)

let test_cas_chain_and_pins () =
  let r = Repository.create () in
  let pub ?expect v =
    Repository.publish_cas r ~host:"h" ~expect (fam v)
  in
  let ve1 = ok_exn (pub 1) in
  Alcotest.(check int) "first publish is v1" 1 ve1.Repository.ve_version;
  let ve2 = ok_exn (pub ~expect:ve1.Repository.ve_digest 2) in
  Alcotest.(check int) "CAS append is v2" 2 ve2.Repository.ve_version;
  (* A stale expect must lose, and report the real head. *)
  (match pub 3 with
  | Ok _ -> Alcotest.fail "stale CAS (expect=None) must conflict"
  | Error (Repository.Conflict { expected; head }) ->
      Alcotest.(check (option string)) "conflict echoes the stale expect"
        None expected;
      Alcotest.(check (option string)) "conflict reports the true head"
        (Some ve2.Repository.ve_digest) head);
  (* Republishing bytes already on the chain is idempotent. *)
  let again = ok_exn (pub 2) in
  Alcotest.(check string) "idempotent republish returns the entry"
    ve2.Repository.ve_digest again.Repository.ve_digest;
  Alcotest.(check int) "chain still has two entries" 2
    (List.length (Repository.chain r fam_name));
  (* Pinned resolution: latest, by version, by content digest. *)
  let dig pin =
    match Repository.resolve r ?pin fam_name with
    | Some ve -> ve.Repository.ve_digest
    | None -> Alcotest.fail "resolve came back empty"
  in
  Alcotest.(check string) "Latest is the head" ve2.Repository.ve_digest
    (dig None);
  Alcotest.(check string) "Version 1 pin" ve1.Repository.ve_digest
    (dig (Some (Repository.Version 1)));
  Alcotest.(check string) "Digest pin" ve1.Repository.ve_digest
    (dig (Some (Repository.Digest ve1.Repository.ve_digest)));
  (* The unversioned name serves the head; the versioned path still
     serves the old bytes (a mirror can serve what a receiver pinned). *)
  (match Repository.find_by_name r fam_name with
  | Some (_, asm) ->
      Alcotest.(check int) "find_by_name serves the head" 2
        asm.Assembly.asm_version
  | None -> Alcotest.fail "find_by_name lost the assembly");
  let v1_path =
    Repository.path_for_version ~host:"h" ~assembly:fam_name ~version:1
  in
  (match Repository.find r ~path:v1_path with
  | Some asm ->
      Alcotest.(check int) "versioned path serves the pinned bytes" 1
        asm.Assembly.asm_version
  | None -> Alcotest.fail "versioned path not served");
  match Repository.parse_versioned_path v1_path with
  | Some (host, name, Some v) ->
      Alcotest.(check string) "versioned path host" "h" host;
      Alcotest.(check string) "versioned path name" fam_name name;
      Alcotest.(check int) "versioned path version" 1 v
  | _ -> Alcotest.fail "versioned path did not parse"

let test_subscribers_see_every_extension () =
  let r = Repository.create () in
  let log = ref [] in
  Repository.subscribe r (fun ~name ~version ~digest:_ ->
      log := (name, version) :: !log);
  let ve1 = ok_exn (Repository.publish_cas r ~host:"h" ~expect:None (fam 1)) in
  let _ve2 =
    ok_exn
      (Repository.publish_cas r ~host:"h"
         ~expect:(Some ve1.Repository.ve_digest) (fam 2))
  in
  (* A mirror merge of an already-known entry is not an extension. *)
  let fresh =
    Repository.learn_version r ~version:1
      ~path:(Repository.path_for_version ~host:"m" ~assembly:fam_name ~version:1)
      (fam 1)
  in
  Alcotest.(check bool) "duplicate merge is not fresh" false fresh;
  let fresh3 =
    Repository.learn_version r ~version:3
      ~path:(Repository.path_for_version ~host:"m" ~assembly:fam_name ~version:3)
      (fam 3)
  in
  Alcotest.(check bool) "new merge is fresh" true fresh3;
  Alcotest.(check (list (pair string int)))
    "one notification per genuine extension, in order"
    [ (fam_name, 1); (fam_name, 2); (fam_name, 3) ]
    (List.rev !log)

(* --------------------- conformance of revisions --------------------- *)

let check_against ~interest_reg ~interest version =
  let reg = Registry.create () in
  Assembly.load reg (fam version);
  let resolver name =
    match Registry.find reg name with
    | Some cd -> Some (Td.of_class cd)
    | None ->
        Option.map Td.of_class (Registry.find interest_reg name)
  in
  let ch = Checker.create ~resolver () in
  let d n =
    match resolver n with
    | Some d -> d
    | None -> Alcotest.failf "unresolvable %s" n
  in
  let pname = Workload.person_name ~index:0 ~flavor:Workload.Conformant in
  Checker.check ch ~actual:(d pname) ~interest:(d interest)

(* The design theorem behind the wnews interest: an interest that demands
   a self-referential field (newsw.Person.spouse : newsw.Person) puts the
   sender's type inside its own invariant closure — rule ii then requires
   full mutual equivalence, so NO additive revision can ever conform
   again. The workload interest leaves [spouse] out, and the same v2
   revision conforms. The checker answers both questions correctly. *)
let test_additive_revision_conformance_matrix () =
  let wnews_reg = Registry.create () in
  Assembly.load wnews_reg (Workload.interest_assembly ());
  let newsw_reg = Registry.create () in
  Assembly.load newsw_reg (Demo.news_assembly ());
  let is_ok = function Checker.Conformant _ -> true | _ -> false in
  let vs_wnews v =
    check_against ~interest_reg:wnews_reg ~interest:Workload.interest_person v
  in
  let vs_newsw v =
    check_against ~interest_reg:newsw_reg ~interest:Demo.news_person v
  in
  Alcotest.(check bool) "v1 conforms to the workload interest" true
    (is_ok (vs_wnews 1));
  Alcotest.(check bool) "v2 still conforms: additive evolution is safe" true
    (is_ok (vs_wnews 2));
  Alcotest.(check bool) "v1 conforms to the recursive interest" true
    (is_ok (vs_newsw 1));
  match vs_newsw 2 with
  | Checker.Conformant _ ->
      Alcotest.fail
        "v2 must NOT conform to a self-referential interest (rule ii \
         freezes types in their own invariant closure)"
  | Checker.Not_conformant failures ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "the failure is the invariant spouse field" true
        (List.exists (fun f -> contains f.Checker.message "spouse") failures)

(* ----------------- version-aware verdict invalidation ---------------- *)

(* Two mirror item worlds: the holders reference them under different
   names, so the invariance check must resolve both — which is what
   records the name dependencies the invalidation is keyed on (equal
   names short-circuit without resolving). *)
let item_class ~ns ~version =
  let c =
    B.class_ ~ns:[ ns ] ~assembly:(ns ^ "-asm")
      ?guid:
        (if version <= 1 then None
         else
           Some
             (Pti_util.Guid.of_name
                (Printf.sprintf "%s-asm#v%d!Item" ns version)))
      "Item"
    |> B.ctor ~body:(E.set "tag" (E.Var "t")) [ ("t", Ty.String) ]
    |> B.property "tag" Ty.String
  in
  let c = if version <= 1 then c else c |> B.property "note" Ty.String in
  B.build c

let holder_class ~ns ~item name =
  B.class_ ~ns:[ ns ] ~assembly:(ns ^ "-asm") name
  |> B.ctor ~body:(E.Seq []) []
  |> B.field "it" (Ty.Named item)
  |> B.getter "getIt" ~field:"it" (Ty.Named item)
  |> B.setter "setIt" ~field:"it" (Ty.Named item)
  |> B.build

let test_v2_publish_keeps_unrelated_verdicts () =
  (* A mutable world the resolver reads through: publishing v2 swaps the
     binding for evo.Item, exactly like a repository upgrade would. *)
  let version = ref 1 in
  let classes () =
    let reg = Registry.create () in
    Assembly.load reg
      (Assembly.make ~name:"evoa-asm" [ item_class ~ns:"evoa" ~version:!version ]);
    Assembly.load reg
      (Assembly.make ~name:"evob-asm" [ item_class ~ns:"evob" ~version:!version ]);
    Assembly.load reg
      (Assembly.make ~name:"a-asm"
         [ holder_class ~ns:"aw" ~item:"evoa.Item" "Holder" ]);
    Assembly.load reg
      (Assembly.make ~name:"b-asm"
         [ holder_class ~ns:"bw" ~item:"evob.Item" "Holder" ]);
    reg
  in
  let resolver name = Option.map Td.of_class (Registry.find (classes ()) name) in
  let ch = Checker.create ~resolver () in
  let d n = Option.get (resolver n) in
  let check_holders () =
    Checker.check ch ~actual:(d "aw.Holder") ~interest:(d "bw.Holder")
  in
  (match check_holders () with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant _ -> Alcotest.fail "holders must conform at v1");
  let computes_after_first = (Checker.stats ch).Checker.top_computes in
  (* Re-announcing the SAME bytes (same witness GUID) must not drop the
     verdict: it is a statement about exactly those bytes. *)
  let v1_guid = (d "evoa.Item").Td.ty_guid in
  let dropped = Checker.note_new_type ~witness:v1_guid ch "evoa.Item" in
  Alcotest.(check int) "same-witness announcement drops nothing" 0 dropped;
  ignore (check_holders ());
  Alcotest.(check int) "verdict answered from cache" computes_after_first
    (Checker.stats ch).Checker.top_computes;
  (* Publish v2: different bytes, different GUID. The verdict resolved
     evo.Item at v1, so it is stale and must be dropped... *)
  version := 2;
  let v2_guid = (d "evoa.Item").Td.ty_guid in
  let dropped = Checker.note_new_type ~witness:v2_guid ch "evoa.Item" in
  Alcotest.(check bool) "v2 announcement drops the dependent verdict" true
    (dropped >= 1);
  (* ... and the recomputation sees v2 and still conforms (the revision
     is additive and the field stays invariant on the same name). *)
  (match check_holders () with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant _ ->
      Alcotest.fail "holders must still conform after the upgrade");
  Alcotest.(check int) "recomputed, not served stale"
    (computes_after_first + 1)
    (Checker.stats ch).Checker.top_computes

(* --------------------- upgrade under live traffic -------------------- *)

let test_upgrade_under_traffic () =
  let net = Net.create ~seed:7L () in
  let alice = Peer.create ~net "alice" in
  let bob = Peer.create ~net "bob" in
  Peer.install_assembly bob (Workload.interest_assembly ());
  let got = ref [] in
  Peer.register_interest bob ~interest:Workload.interest_person
    (fun ~from:_ v -> got := v :: !got);
  let ve1 = ok_exn (Peer.publish_assembly_cas alice (fam 1)) in
  let send name age =
    let v =
      Workload.make_person (Peer.registry alice) ~index:0
        ~flavor:Workload.Conformant ~name ~age
    in
    Peer.send_value alice ~dst:"bob" v;
    Net.run net
  in
  send "old" 30;
  let ve2 =
    ok_exn
      (Peer.publish_assembly_cas ~expect:ve1.Repository.ve_digest alice (fam 2))
  in
  Alcotest.(check int) "upgrade lands as v2" 2 ve2.Repository.ve_version;
  send "new" 31;
  let rejected =
    List.exists
      (function Peer.Rejected _ -> true | _ -> false)
      (Peer.events bob)
  in
  Alcotest.(check bool) "no delivery was rejected across the upgrade" false
    rejected;
  let rec obj_of = function
    | Value.Vobj o -> Some o
    | Value.Vproxy p -> obj_of p.Value.px_target
    | _ -> None
  in
  let email_of v =
    match obj_of v with
    | None -> Alcotest.fail "delivery is not an object"
    | Some o -> Value.get_field o "email"
  in
  match List.rev !got with
  | [ old_v; new_v ] ->
      Alcotest.(check bool) "pre-upgrade delivery decodes at v1 (no email)"
        true
        (email_of old_v = None);
      (match email_of new_v with
      | Some (Value.Vstring s) ->
          Alcotest.(check string) "post-upgrade delivery carries the v2 field"
            "new@v2" s
      | _ -> Alcotest.fail "post-upgrade delivery lost the v2 field")
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

(* ------------------------------ QCheck ------------------------------ *)

(* CAS linearizes: publishers with possibly-stale views of the head race
   over one chain; whatever the interleaving, every success lands at a
   unique consecutive version, no success is ever lost, and every
   conflict reports the digest that really was at the head. *)
let prop_cas_linearizes =
  QCheck.Test.make ~name:"CAS publish linearizes (no lost updates)"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 16) (int_bound 2))
    (fun schedule ->
      let r = Repository.create () in
      let believed = Array.make 3 None in
      let content = ref 0 in
      let oks = ref [] in
      let sound = ref true in
      List.iter
        (fun p ->
          incr content;
          let asm = fam !content in
          let head_before =
            Option.map
              (fun ve -> ve.Repository.ve_digest)
              (Repository.resolve r fam_name)
          in
          match Repository.publish_cas r ~host:"h" ~expect:believed.(p) asm with
          | Ok ve ->
              if believed.(p) <> head_before then sound := false;
              oks := ve :: !oks;
              believed.(p) <- Some ve.Repository.ve_digest
          | Error (Repository.Conflict { head; _ }) ->
              if head <> head_before then sound := false;
              believed.(p) <- head)
        schedule;
      let chain = Repository.chain r fam_name in
      let versions = List.map (fun ve -> ve.Repository.ve_version) chain in
      let digests = List.map (fun ve -> ve.Repository.ve_digest) chain in
      !sound
      && List.length chain = List.length !oks
      && versions = List.init (List.length chain) (fun i -> i + 1)
      && List.length (List.sort_uniq compare digests) = List.length digests
      && List.for_all
           (fun ve -> List.mem ve.Repository.ve_digest digests)
           !oks)

(* Content addressing: the digest is a function of the canonical bytes —
   equal parameters give equal digests, distinct revisions/families give
   distinct ones. *)
let prop_digest_content_addressed =
  let params =
    QCheck.(
      triple (int_range 1 3) (int_range 0 7)
        (int_bound 4
        |> map (function
             | 0 -> Workload.Conformant
             | 1 -> Workload.Trap_missing
             | 2 -> Workload.Trap_arity
             | 3 -> Workload.Trap_fieldtype
             | _ -> Workload.Typo 1)))
  in
  QCheck.Test.make ~name:"digest is content-addressed (injective on params)"
    ~count:200
    QCheck.(pair params params)
    (fun ((v1, i1, f1), (v2, i2, f2)) ->
      let a = Workload.family_v ~version:v1 ~index:i1 ~flavor:f1 in
      let b = Workload.family_v ~version:v2 ~index:i2 ~flavor:f2 in
      let same_params = v1 = v2 && i1 = i2 && f1 = f2 in
      same_params = (Repository.digest_of a = Repository.digest_of b))

(* Pinned resolution is stable across gossip convergence: however many
   rounds it takes the chain to spread, a mirror answers a version pin
   with exactly the origin's digest for that version. *)
let prop_pins_stable_across_gossip =
  QCheck.Test.make ~name:"resolve(pin) stable across gossip convergence"
    ~count:25
    QCheck.(pair (int_range 1 3) (int_range 3 8))
    (fun (depth, rounds) ->
      let net = Net.create ~seed:11L () in
      let addrs = [ "n0"; "n1"; "n2" ] in
      let c = Cluster.create ~seed:5L ~net addrs in
      let origin = Cluster.node c "n0" in
      let entries =
        List.init depth (fun i ->
            let expect =
              Option.map
                (fun ve -> ve.Repository.ve_digest)
                (Repository.resolve (Peer.repository (Cluster.peer c "n0"))
                   fam_name)
            in
            match Node.publish_cas ?expect origin (fam (i + 1)) with
            | Ok ve -> ve
            | Error _ -> QCheck.Test.fail_report "sequential CAS conflicted")
      in
      Cluster.run_rounds c rounds;
      List.for_all
        (fun a ->
          let repo = Peer.repository (Cluster.peer c a) in
          List.for_all
            (fun ve ->
              match
                Repository.resolve repo
                  ~pin:(Repository.Version ve.Repository.ve_version) fam_name
              with
              | Some got ->
                  String.equal got.Repository.ve_digest ve.Repository.ve_digest
              | None -> false)
            entries
          &&
          match Repository.resolve repo fam_name with
          | Some head -> head.Repository.ve_version = depth
          | None -> false)
        addrs)

let () =
  Alcotest.run "evolution"
    [
      ( "store",
        [
          Alcotest.test_case "CAS chain and pins" `Quick
            test_cas_chain_and_pins;
          Alcotest.test_case "subscribers see every extension" `Quick
            test_subscribers_see_every_extension;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "additive revision conformance matrix" `Quick
            test_additive_revision_conformance_matrix;
          Alcotest.test_case "v2 publish keeps unrelated verdicts" `Quick
            test_v2_publish_keeps_unrelated_verdicts;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "upgrade under live traffic" `Quick
            test_upgrade_under_traffic;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_cas_linearizes;
          QCheck_alcotest.to_alcotest prop_digest_content_addressed;
          QCheck_alcotest.to_alcotest prop_pins_stable_across_gossip;
        ] );
    ]
