(* Tests for the serialization stack: binary, SOAP, assembly codec,
   hybrid envelope. *)

open Pti_cts
module Demo = Pti_demo.Demo_types
module Bin = Pti_serial.Bin_ser
module Soap = Pti_serial.Soap_ser
module Env = Pti_serial.Envelope
module Axml = Pti_serial.Assembly_xml
module Bio = Pti_serial.Bytes_io
module Xml = Pti_xml.Xml
module E = Expr

let reg () =
  Demo.fresh_registry [ Demo.news_assembly (); Demo.social_assembly () ]

(* ----------------------------- bytes_io ---------------------------- *)

let test_bytes_io_roundtrip () =
  let w = Bio.Writer.create () in
  Bio.Writer.varint w 0;
  Bio.Writer.varint w 127;
  Bio.Writer.varint w 128;
  Bio.Writer.varint w 300_000;
  Bio.Writer.zigzag w (-1);
  Bio.Writer.zigzag w 12345;
  Bio.Writer.zigzag w (-99999);
  Bio.Writer.f64 w 3.14159;
  Bio.Writer.string w "hello";
  Bio.Writer.bool w true;
  let r = Bio.Reader.create (Bio.Writer.contents w) in
  Alcotest.(check int) "v0" 0 (Bio.Reader.varint r);
  Alcotest.(check int) "v127" 127 (Bio.Reader.varint r);
  Alcotest.(check int) "v128" 128 (Bio.Reader.varint r);
  Alcotest.(check int) "v300k" 300_000 (Bio.Reader.varint r);
  Alcotest.(check int) "z-1" (-1) (Bio.Reader.zigzag r);
  Alcotest.(check int) "z12345" 12345 (Bio.Reader.zigzag r);
  Alcotest.(check int) "z-99999" (-99999) (Bio.Reader.zigzag r);
  Alcotest.(check (float 1e-12)) "f64" 3.14159 (Bio.Reader.f64 r);
  Alcotest.(check string) "string" "hello" (Bio.Reader.string r);
  Alcotest.(check bool) "bool" true (Bio.Reader.bool r);
  Alcotest.(check bool) "at_end" true (Bio.Reader.at_end r)

let test_bytes_io_underflow () =
  let r = Bio.Reader.create "\xff" in
  match Bio.Reader.string r with
  | _ -> Alcotest.fail "expected underflow"
  | exception Bio.Reader.Underflow _ -> ()

(* ----------------------------- values ------------------------------ *)

let sample_person r =
  let p = Demo.make_news_person r ~name:"Ser" ~age:7 in
  let home =
    Eval.construct r Demo.news_address
      [ Value.Vstring "1 Main St"; Value.Vstring "Springfield" ]
  in
  ignore (Eval.call r p "setHome" [ home ]);
  p

let cyclic_pair r =
  let a = Demo.make_news_person r ~name:"A" ~age:1 in
  let b = Demo.make_news_person r ~name:"B" ~age:2 in
  ignore (Eval.call r a "setSpouse" [ b ]);
  ignore (Eval.call r b "setSpouse" [ a ]);
  a

let roundtrip_codec encode decode r v =
  match decode r (encode v) with
  | Ok v' -> v'
  | Error _ -> Alcotest.fail "decode failed"

let check_person_roundtrip r v' =
  Alcotest.(check bool) "deep equal" true (Value.equal_deep
    (Value.Vstring "Ser") (Eval.call r v' "getName" []));
  let home = Eval.call r v' "getHome" [] in
  Alcotest.(check bool) "nested object" true
    (Value.equal_deep (Value.Vstring "Springfield")
       (Eval.call r home "getCity" []))

let test_bin_roundtrip () =
  let r = reg () in
  let v = sample_person r in
  let v' = roundtrip_codec Bin.encode Bin.decode r v in
  check_person_roundtrip r v';
  Alcotest.(check bool) "whole graph equal" true (Value.equal_deep v v')

let test_soap_roundtrip () =
  let r = reg () in
  let v = sample_person r in
  let v' = roundtrip_codec Soap.encode Soap.decode r v in
  check_person_roundtrip r v';
  Alcotest.(check bool) "whole graph equal" true (Value.equal_deep v v')

let test_cycles_both_codecs () =
  let r = reg () in
  let v = cyclic_pair r in
  let check v' =
    let spouse = Eval.call r v' "getSpouse" [] in
    let back = Eval.call r spouse "getSpouse" [] in
    match back, v' with
    | Value.Vobj o1, Value.Vobj o2 ->
        Alcotest.(check bool) "cycle identity" true (o1 == o2)
    | _ -> Alcotest.fail "expected objects"
  in
  check (roundtrip_codec Bin.encode Bin.decode r v);
  check (roundtrip_codec Soap.encode Soap.decode r v)

let test_shared_reference_not_duplicated () =
  let r = reg () in
  let shared = Demo.make_news_person r ~name:"S" ~age:0 in
  let a = Demo.make_news_person r ~name:"A" ~age:1 in
  let b = Demo.make_news_person r ~name:"B" ~age:2 in
  ignore (Eval.call r a "setSpouse" [ shared ]);
  ignore (Eval.call r b "setSpouse" [ shared ]);
  let arr =
    Value.Varr { Value.elem_ty = Ty.Named Demo.news_person; items = [| a; b |] }
  in
  let check v' =
    match v' with
    | Value.Varr { Value.items = [| a'; b' |]; _ } -> (
        match Eval.call r a' "getSpouse" [], Eval.call r b' "getSpouse" [] with
        | Value.Vobj s1, Value.Vobj s2 ->
            Alcotest.(check bool) "sharing preserved" true (s1 == s2)
        | _ -> Alcotest.fail "expected spouse objects")
    | _ -> Alcotest.fail "expected a 2-array"
  in
  check (roundtrip_codec Bin.encode Bin.decode r arr);
  check (roundtrip_codec Soap.encode Soap.decode r arr)

let test_primitives_all_codecs () =
  let r = Registry.create () in
  let values =
    [
      Value.Vnull; Value.Vbool true; Value.Vbool false; Value.Vint 0;
      Value.Vint (-123456); Value.Vint (max_int / 4);
      Value.Vfloat 0.; Value.Vfloat (-1.5e300); Value.Vfloat infinity;
      Value.Vstring ""; Value.Vstring "héllo <&> \"w\"";
      Value.Vchar 'x'; Value.Vchar '\000';
      Value.Varr { Value.elem_ty = Ty.Int; items = [| Value.Vint 1; Value.Vint 2 |] };
      Value.Varr { Value.elem_ty = Ty.String; items = [||] };
    ]
  in
  List.iter
    (fun v ->
      let vb = roundtrip_codec Bin.encode Bin.decode r v in
      Alcotest.(check bool) "bin prim" true (Value.equal_deep v vb);
      let vs = roundtrip_codec Soap.encode Soap.decode r v in
      Alcotest.(check bool) "soap prim" true (Value.equal_deep v vs))
    values

let test_unknown_type_errors () =
  let full = reg () in
  let empty = Registry.create () in
  let v = sample_person full in
  (match Bin.decode empty (Bin.encode v) with
  | Error (Bin.Unknown_type t) ->
      Alcotest.(check string) "bin names the type" Demo.news_person t
  | _ -> Alcotest.fail "bin should fail with Unknown_type");
  match Soap.decode empty (Soap.encode v) with
  | Error (Soap.Unknown_type _) -> ()
  | _ -> Alcotest.fail "soap should fail with Unknown_type"

let test_malformed_binary () =
  let r = reg () in
  List.iter
    (fun s ->
      match Bin.decode r s with
      | Error (Bin.Malformed _) -> ()
      | _ -> Alcotest.failf "should be malformed: %S" s)
    [ ""; "XXXX"; "PTIB\x01"; "PTIB\x01\x63"; "PTIB\x01\x02\x01extra" ]

let test_class_names_without_decoding () =
  let r = reg () in
  let v = sample_person r in
  (match Bin.class_names (Bin.encode v) with
  | Ok names ->
      Alcotest.(check bool) "person listed" true
        (List.mem Demo.news_person names);
      Alcotest.(check bool) "address listed" true
        (List.mem Demo.news_address names)
  | Error _ -> Alcotest.fail "class_names failed");
  let names = Soap.class_names (Soap.encode_xml v) in
  Alcotest.(check bool) "soap person listed" true
    (List.mem Demo.news_person names)

let test_proxy_serializes_as_target () =
  let r = reg () in
  let p = sample_person r in
  let proxy =
    Value.Vproxy
      { Value.px_interface = "x.Y"; px_target = p;
        px_invoke = (fun _ _ -> Value.Vnull) }
  in
  Alcotest.(check string) "same bytes as target" (Bin.encode p)
    (Bin.encode proxy)

(* --------------------------- assembly codec ------------------------ *)

let test_expr_xml_roundtrip () =
  let exprs =
    [
      E.null; E.int 42; E.str "a<b&c"; E.bool true;
      E.Const (E.Cfloat 2.5); E.Const (E.Cchar 'q'); E.This; E.Var "x";
      E.Let ("t", E.int 1, E.Binop (E.Add, E.Var "t", E.int 2));
      E.Assign ("x", E.int 9);
      E.Field_get (E.This, "name");
      E.Field_set (E.This, "name", E.str "n");
      E.Call (E.This, "m", [ E.int 1; E.str "s" ]);
      E.Static_call ("a.B", "m", [ E.int 1 ]);
      E.New ("a.B", [ E.null ]);
      E.New_array (Ty.Int, [ E.int 1; E.int 2 ]);
      E.Index_get (E.Var "a", E.int 0);
      E.Index_set (E.Var "a", E.int 0, E.int 5);
      E.Array_length (E.Var "a");
      E.If (E.bool true, E.int 1, E.int 2);
      E.While (E.bool false, E.null);
      E.Seq [ E.int 1; E.int 2 ];
      E.Unop (E.Not, E.bool false);
      E.Unop (E.Neg, E.int 3);
      E.Throw (E.str "boom");
      E.Try (E.Throw (E.int 1), "e", E.Var "e");
    ]
  in
  List.iter
    (fun e ->
      match Axml.expr_of_xml (Axml.expr_to_xml e) with
      | Ok e' ->
          Alcotest.(check string) "expr roundtrip" (E.to_string e)
            (E.to_string e')
      | Error msg -> Alcotest.failf "expr codec failed: %s" msg)
    exprs

let test_assembly_xml_roundtrip () =
  List.iter
    (fun asm ->
      let s = Axml.to_string asm in
      match Axml.of_string s with
      | Error msg -> Alcotest.failf "assembly parse failed: %s" msg
      | Ok asm' ->
          Alcotest.(check string) "name" asm.Assembly.asm_name
            asm'.Assembly.asm_name;
          Alcotest.(check bool) "classes equal" true
            (asm.Assembly.asm_classes = asm'.Assembly.asm_classes))
    [
      Demo.news_assembly (); Demo.social_assembly (); Demo.printer_assembly ();
      Demo.trap_assembly ();
    ]

let test_assembly_roundtrip_still_runs () =
  (* Code that crossed the wire must still execute. *)
  let asm = Demo.news_assembly () in
  let asm' =
    match Axml.of_string (Axml.to_string asm) with
    | Ok a -> a
    | Error m -> Alcotest.failf "parse: %s" m
  in
  let r = Demo.fresh_registry [ asm' ] in
  let p = Demo.make_news_person r ~name:"Wire" ~age:1 in
  match Eval.call r p "greet" [] with
  | Value.Vstring s -> Alcotest.(check string) "greet" "Hello, Wire" s
  | _ -> Alcotest.fail "greet failed after roundtrip"

(* --------------------------- envelope ------------------------------ *)

let test_envelope_roundtrip () =
  let r = reg () in
  let v = sample_person r in
  List.iter
    (fun codec ->
      let env =
        Env.make r ~codec
          ~download_path:(fun ~assembly -> "asm://host/" ^ assembly)
          v
      in
      Alcotest.(check bool) "lists both classes" true
        (List.length env.Env.env_types = 2);
      let env' =
        match Env.of_string (Env.to_string env) with
        | Ok e -> e
        | Error e -> Alcotest.failf "envelope parse: %a" Env.pp_error e
      in
      Alcotest.(check bool) "same types" true
        (List.map (fun e -> e.Env.te_name) env'.Env.env_types
        = List.map (fun e -> e.Env.te_name) env.Env.env_types);
      match Env.decode_payload r env' with
      | Ok v' -> Alcotest.(check bool) "payload" true (Value.equal_deep v v')
      | Error e -> Alcotest.failf "payload decode: %a" Env.pp_error e)
    [ Env.Soap; Env.Binary ]

let test_envelope_root_first () =
  let r = reg () in
  let v = sample_person r in
  let env =
    Env.make r ~codec:Env.Binary
      ~download_path:(fun ~assembly -> assembly)
      v
  in
  match env.Env.env_types with
  | first :: _ ->
      Alcotest.(check string) "root type first" Demo.news_person
        first.Env.te_name
  | [] -> Alcotest.fail "no types"

let test_envelope_unknown_class_on_sender () =
  let r = reg () in
  let stranger =
    Value.Vobj
      { Value.oid = Value.fresh_oid (); cls = "ghost.Type";
        fields = Hashtbl.create 1 }
  in
  match
    Env.make r ~codec:Env.Binary ~download_path:(fun ~assembly -> assembly)
      stranger
  with
  | _ -> Alcotest.fail "unregistered class should be refused"
  | exception Invalid_argument _ -> ()

let test_envelope_decode_requires_types () =
  let full = reg () in
  let v = sample_person full in
  let env =
    Env.make full ~codec:Env.Binary ~download_path:(fun ~assembly -> assembly) v
  in
  let empty = Registry.create () in
  match Env.decode_payload empty env with
  | Error (Env.Unknown_type _) -> ()
  | _ -> Alcotest.fail "decode without types should fail"

(* Regression: the pre-length-prefix canonical string joined fields with
   0x00/0x01 separators, but a binary payload is arbitrary bytes — these
   two distinct envelopes rendered the exact same canonical string
   (field text migrating across a separator), i.e. a digest-collision
   blind spot for corruption detection. *)
let test_envelope_digest_collision () =
  let entry path =
    {
      Env.te_name = "n";
      te_guid = Pti_util.Guid.of_name "n";
      te_assembly = "a";
      te_version = 1;
      te_download_path = path;
    }
  in
  let a =
    { Env.env_types = [ entry "p" ];
      env_payload = Env.Pbinary "x\x00binary:y" }
  in
  let b =
    { Env.env_types = [ entry "p\x00binary:x" ];
      env_payload = Env.Pbinary "y" }
  in
  Alcotest.(check bool) "distinct envelopes" true (a <> b);
  Alcotest.(check bool) "digests differ" false
    (String.equal (Env.digest a) (Env.digest b))

(* Golden emission order: the root's class first, then the remaining
   entries sorted by qualified name — independent of stdlib hash-table
   iteration order, so envelope bytes and digests are stable across
   OCaml releases. *)
let test_envelope_golden_order () =
  let r = reg () in
  let author = sample_person r in
  let ev = Demo.make_news_event r ~headline:"h" ~author ~priority:1 in
  let v =
    Value.Varr
      { Value.elem_ty = Ty.Named "object"; items = [| ev; author |] }
  in
  let env =
    Env.make r ~codec:Env.Binary ~download_path:(fun ~assembly -> assembly) v
  in
  Alcotest.(check (list string))
    "root class first, tail sorted by name"
    [ "newsw.NewsEvent"; "newsw.Address"; "newsw.Person" ]
    (List.map (fun e -> e.Env.te_name) env.Env.env_types)

let test_envelope_malformed () =
  List.iter
    (fun s ->
      match Env.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" s)
    [
      "";
      "<envelope><payload encoding=\"weird\">x</payload></envelope>";
      "<envelope><payload encoding=\"binary\">!!</payload></envelope>";
      "<envelope/>";
      "<notenvelope/>";
      "<envelope><type name=\"a\" guid=\"bad\" assembly=\"x\" \
       downloadPath=\"p\"/><payload encoding=\"binary\"></payload></envelope>";
    ]

(* Random object graphs for codec property tests. *)
let gen_value reg =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      if depth = 0 then
        oneof
          [
            return Value.Vnull;
            map (fun b -> Value.Vbool b) bool;
            map (fun i -> Value.Vint i) small_signed_int;
            map (fun s -> Value.Vstring s) (string_size (int_bound 10));
          ]
      else
        frequency
          [
            (2, self 0);
            ( 3,
              map2
                (fun name age ->
                  let p =
                    Demo.make_news_person reg ~name ~age
                  in
                  p)
                (string_size (int_bound 8))
                small_nat );
            ( 1,
              map
                (fun items ->
                  Value.Varr
                    {
                      Value.elem_ty = Ty.Named "object";
                      items = Array.of_list items;
                    })
                (list_size (int_bound 4) (self (depth - 1))) );
          ])
    3

let prop_bin_roundtrip =
  let r = reg () in
  QCheck.Test.make ~name:"binary codec roundtrip on random graphs" ~count:100
    (QCheck.make (gen_value r))
    (fun v ->
      match Bin.decode r (Bin.encode v) with
      | Ok v' -> Value.equal_deep v v'
      | Error _ -> false)

let prop_soap_roundtrip =
  let r = reg () in
  QCheck.Test.make ~name:"soap codec roundtrip on random graphs" ~count:100
    (QCheck.make (gen_value r))
    (fun v ->
      match Soap.decode r (Soap.encode v) with
      | Ok v' -> Value.equal_deep v v'
      | Error _ -> false)

let prop_envelope_roundtrip =
  let r = reg () in
  QCheck.Test.make ~name:"envelope roundtrip on random graphs" ~count:60
    (QCheck.make (gen_value r))
    (fun v ->
      let env =
        Env.make r ~codec:Env.Binary ~download_path:(fun ~assembly -> assembly) v
      in
      match Env.of_string (Env.to_string env) with
      | Error _ -> false
      | Ok env' -> (
          match Env.decode_payload r env' with
          | Ok v' -> Value.equal_deep v v'
          | Error _ -> false))

(* A single flipped byte anywhere in a wire string must never decode
   into a mangled value. For the binary codec the answer is strictly
   [Error]: every byte is covered by the magic, the FNV checksum or the
   checksummed body, and the per-byte absorption step of FNV-1a is a
   bijection, so any substitution changes the hash. *)
let prop_bin_flip_always_detected =
  let r = reg () in
  let wire =
    Bin.encode (Demo.make_news_person r ~name:"Ada Lovelace" ~age:36)
  in
  QCheck.Test.make ~name:"binary codec detects any single byte flip"
    ~count:500
    QCheck.(pair (int_bound (String.length wire - 1)) (1 -- 255))
    (fun (pos, x) ->
      let b = Bytes.of_string wire in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
      match Bin.decode r (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> false)

(* Envelopes are XML, where a flip can land in insignificant syntax
   (whitespace, a quote style) and re-parse to the same document — so
   the guarantee is: decode fails, or the value is semantically intact.
   Exercised for both payload codecs. *)
let prop_envelope_flip_never_mangles =
  let r = reg () in
  let original = Demo.make_news_person r ~name:"Ada Lovelace" ~age:36 in
  let wire codec =
    Env.to_string
      (Env.make r ~codec ~download_path:(fun ~assembly -> assembly) original)
  in
  let soap_wire = wire Env.Soap in
  let bin_wire = wire Env.Binary in
  QCheck.Test.make
    ~name:"envelope flip: decode fails or the value is intact" ~count:600
    QCheck.(triple bool (int_bound 99999) (1 -- 255))
    (fun (use_soap, pos, x) ->
      let wire = if use_soap then soap_wire else bin_wire in
      let pos = pos mod String.length wire in
      let b = Bytes.of_string wire in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
      match Env.of_string (Bytes.to_string b) with
      | Error _ -> true
      | Ok env -> (
          match Env.decode_payload r env with
          | Error _ -> true
          | Ok v -> Value.equal_deep original v))

(* ------------------------ handle envelopes ------------------------- *)

module Ht = Pti_serial.Handle_table
module Bf = Pti_serial.Batch_frame

let mk_env r v = Env.make r ~codec:Env.Binary ~download_path:(fun ~assembly -> assembly) v

let type_names (env : Env.t) = List.map (fun e -> e.Env.te_name) env.Env.env_types

(* First send binds, second send refs; a cold receiver NAKs the refs and
   resolves after install — the full negotiation cycle at the codec
   level. *)
let test_handle_bind_then_ref () =
  let r = reg () in
  let v = sample_person r in
  let env = mk_env r v in
  let stab = Ht.create_sender () in
  let form e =
    match Ht.obtain stab e with `Fresh h -> `Bind h | `Known h -> `Ref h
  in
  let wire1 = Env.to_string_h env ~form in
  let rtab = Ht.create_receiver ~capacity:8 in
  let resolve h = Ht.resolve rtab h in
  (match Env.of_string_h ~resolve wire1 with
  | Ok (env', binds) ->
      Alcotest.(check int) "first send binds every entry" 2 (List.length binds);
      List.iter (fun (h, e) -> Ht.install rtab h e) binds;
      Alcotest.(check (list string)) "same types" (type_names env)
        (type_names env');
      (match Env.decode_payload r env' with
      | Ok v' -> Alcotest.(check bool) "payload" true (Value.equal_deep v v')
      | Error e -> Alcotest.failf "decode: %a" Env.pp_error e)
  | Error e -> Alcotest.failf "bind parse: %a" Env.pp_error e);
  let wire2 = Env.to_string_h env ~form in
  Alcotest.(check bool) "ref form is smaller on the wire" true
    (String.length wire2 < String.length wire1);
  (match Env.of_string_h ~resolve wire2 with
  | Ok (env', binds) ->
      Alcotest.(check int) "refs carry no bindings" 0 (List.length binds);
      Alcotest.(check (list string)) "resolved types" (type_names env)
        (type_names env')
  | Error e -> Alcotest.failf "ref parse: %a" Env.pp_error e);
  (* Cold receiver: wire-intact, but the refs are unknown. *)
  let cold = Ht.create_receiver ~capacity:8 in
  Alcotest.(check bool) "wire_ok on unknown handles" true (Env.wire_ok wire2);
  match Env.of_string_h ~resolve:(fun h -> Ht.resolve cold h) wire2 with
  | Error (Env.Unknown_handles hs) ->
      Alcotest.(check int) "both handles NAKed" 2 (List.length hs)
  | Ok _ -> Alcotest.fail "cold table resolved refs"
  | Error e -> Alcotest.failf "expected Unknown_handles, got %a" Env.pp_error e

(* A binding that drifted (same handle, different entry) must be caught
   by the semantic digest — degradation can lose time, never types. *)
let test_handle_drifted_binding_rejected () =
  let r = reg () in
  let v = sample_person r in
  let env = mk_env r v in
  let stab = Ht.create_sender () in
  let form e =
    match Ht.obtain stab e with `Fresh h -> `Bind h | `Known h -> `Ref h
  in
  let wire1 = Env.to_string_h env ~form in
  let rtab = Ht.create_receiver ~capacity:8 in
  (match Env.of_string_h ~resolve:(fun h -> Ht.resolve rtab h) wire1 with
  | Ok (_, binds) -> List.iter (fun (h, e) -> Ht.install rtab h e) binds
  | Error e -> Alcotest.failf "bind parse: %a" Env.pp_error e);
  (* Swap the two learned bindings: handles resolve, to the wrong
     entries. *)
  (match
     (Ht.resolve rtab 1, Ht.resolve rtab 2)
   with
  | Some e1, Some e2 ->
      Ht.install rtab 1 e2;
      Ht.install rtab 2 e1
  | _ -> Alcotest.fail "bindings not installed");
  let wire2 = Env.to_string_h env ~form in
  match Env.of_string_h ~resolve:(fun h -> Ht.resolve rtab h) wire2 with
  | Error (Env.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "drifted bindings delivered a mis-typed envelope"
  | Error e -> Alcotest.failf "expected Corrupt, got %a" Env.pp_error e

(* The XML handle form stays accepted on decode: the interop fallback
   for peers that do not speak the compact PTIE binary frame. *)
let test_handle_xml_fallback_accepted () =
  let r = reg () in
  let v = sample_person r in
  let env = mk_env r v in
  let stab = Ht.create_sender () in
  let form e =
    match Ht.obtain stab e with `Fresh h -> `Bind h | `Known h -> `Ref h
  in
  let xml_bind = Env.to_string_h_xml env ~form in
  let xml_ref = Env.to_string_h_xml env ~form in
  Alcotest.(check bool) "binary ref beats the xml fallback on the wire" true
    (String.length (Env.to_string_h env ~form)
    < String.length xml_ref);
  let rtab = Ht.create_receiver ~capacity:8 in
  (match Env.of_string_h ~resolve:(Ht.resolve rtab) xml_bind with
  | Ok (env', binds) ->
      List.iter (fun (h, e) -> Ht.install rtab h e) binds;
      Alcotest.(check (list string)) "xml bind parses" (type_names env)
        (type_names env')
  | Error e -> Alcotest.failf "xml bind parse: %a" Env.pp_error e);
  Alcotest.(check bool) "xml wire_ok" true (Env.wire_ok xml_ref);
  match Env.of_string_h ~resolve:(Ht.resolve rtab) xml_ref with
  | Ok (env', binds) ->
      Alcotest.(check int) "xml refs carry no bindings" 0 (List.length binds);
      Alcotest.(check (list string)) "xml refs resolve" (type_names env)
        (type_names env')
  | Error e -> Alcotest.failf "xml ref parse: %a" Env.pp_error e

(* The PTIE frame is checksummed end to end: no single byte flip can
   parse — not even by falling back to the XML path on a damaged
   magic. *)
let prop_binary_envelope_flip_always_detected =
  QCheck.Test.make ~name:"binary envelope: any single byte flip is detected"
    ~count:300
    QCheck.(pair (int_bound 100_000) (int_range 1 255))
    (fun (pos, x) ->
      let r = reg () in
      let env = mk_env r (sample_person r) in
      let stab = Ht.create_sender () in
      let form e =
        match Ht.obtain stab e with `Fresh h -> `Bind h | `Known h -> `Ref h
      in
      let s = Env.to_string_h env ~form in
      let pos = pos mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
      match Env.of_string_h ~resolve:(fun _ -> None) (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> false)

(* The negotiation state machine under arbitrary interleavings of sends,
   receiver evictions and renegotiations: every envelope either parses
   to exactly the sender's types or NAKs — never a wrong type, and a
   NAK always recovers after re-binding. *)
let prop_handle_negotiation_state_machine =
  QCheck.Test.make ~count:200
    ~name:"handle negotiation: evictions only ever degrade, never mis-type"
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 2) bool))
    (fun script ->
      let r = reg () in
      let author = sample_person r in
      let values =
        [|
          author;
          Demo.make_news_event r ~headline:"h" ~author ~priority:1;
          Value.Varr
            { Value.elem_ty = Ty.Named "object"; items = [| author |] };
        |]
      in
      let stab = Ht.create_sender () in
      (* Tiny receiver table: multi-type envelopes evict each other's
         bindings, on top of the scripted explicit clears. *)
      let rtab = Ht.create_receiver ~capacity:3 in
      let resolve h = Ht.resolve rtab h in
      let form e =
        match Ht.obtain stab e with `Fresh h -> `Bind h | `Known h -> `Ref h
      in
      List.for_all
        (fun (which, evict) ->
          if evict then Ht.clear_receiver rtab;
          let env = mk_env r values.(which) in
          let wire = Env.to_string_h env ~form in
          let check_parsed (env', binds) =
            List.iter (fun (h, e) -> Ht.install rtab h e) binds;
            type_names env' = type_names env
            &&
            match Env.decode_payload r env' with
            | Ok v' -> Value.equal_deep values.(which) v'
            | Error _ -> false
          in
          match Env.of_string_h ~resolve wire with
          | Ok parsed -> check_parsed parsed
          | Error (Env.Unknown_handles hs) -> (
              (* Renegotiate: the sender re-binds the NAKed handles and
                 the receiver reprocesses. Must succeed now. *)
              List.for_all
                (fun h ->
                  match Ht.entry_for stab h with
                  | Some e ->
                      Ht.install rtab h e;
                      true
                  | None -> false)
                hs
              &&
              match Env.of_string_h ~resolve wire with
              | Ok parsed -> check_parsed parsed
              | Error _ -> false)
          | Error _ -> false)
        script)

(* --------------------------- batch frames -------------------------- *)

let test_batch_frame_roundtrip () =
  let parts =
    [
      { Bf.p_envelope = "envelope-one"; p_tdescs = [ "d1"; "d2" ];
        p_assemblies = [] };
      { Bf.p_envelope = "envelope-two"; p_tdescs = [];
        p_assemblies = [ "asm-bytes" ] };
    ]
  in
  let piggyback = [ ("digest", "ping"); ("delta", "\x00bin\xff") ] in
  let frame = Bf.encode { Bf.parts; piggyback } in
  Alcotest.(check bool) "intact" true (Bf.intact frame);
  match Bf.decode frame with
  | Ok t ->
      Alcotest.(check int) "parts" 2 (List.length t.Bf.parts);
      Alcotest.(check bool) "parts roundtrip" true (t.Bf.parts = parts);
      Alcotest.(check bool) "piggyback roundtrip" true
        (t.Bf.piggyback = piggyback)
  | Error e -> Alcotest.failf "decode: %s" e

let prop_batch_frame_flip_always_detected =
  QCheck.Test.make ~count:300
    ~name:"batch frame: any single byte flip is detected"
    QCheck.(pair (int_bound 10_000) (int_range 1 255))
    (fun (pos, x) ->
      let frame =
        Bf.encode
          {
            Bf.parts =
              [ { Bf.p_envelope = "abcdef"; p_tdescs = [ "t" ];
                  p_assemblies = [ "a" ] } ];
            piggyback = [ ("k", "v") ];
          }
      in
      let pos = pos mod String.length frame in
      let b = Bytes.of_string frame in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
      let frame' = Bytes.to_string b in
      (not (Bf.intact frame'))
      && match Bf.decode frame' with Error _ -> true | Ok _ -> false)

let test_bind_frame_roundtrip_and_corruption () =
  let r = reg () in
  let env = mk_env r (sample_person r) in
  let binds = List.mapi (fun i e -> (i + 1, e)) env.Env.env_types in
  let frame = Ht.encode_bindings binds in
  Alcotest.(check bool) "intact" true (Ht.bindings_intact frame);
  (match Ht.decode_bindings frame with
  | Ok binds' -> Alcotest.(check bool) "roundtrip" true (binds = binds')
  | Error e -> Alcotest.failf "decode: %s" e);
  (* Flip every byte position in turn: all must be caught. *)
  for pos = 0 to String.length frame - 1 do
    let b = Bytes.of_string frame in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x41));
    let frame' = Bytes.to_string b in
    if Ht.bindings_intact frame' then
      Alcotest.failf "flip at %d passed bindings_intact" pos;
    match Ht.decode_bindings frame' with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "flip at %d decoded" pos
  done

(* ----------------------------- framing ----------------------------- *)

module Framing = Pti_serial.Framing

(* Drain every complete frame currently poppable. *)
let drain dec =
  let rec go acc =
    match Framing.Decoder.pop dec with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error e -> Error e
  in
  go []

let test_framing_split_at_every_boundary () =
  let payloads = [ ""; "x"; String.make 300 'y'; "tail" ] in
  let wire = String.concat "" (List.map Framing.encode payloads) in
  (* For every split point: frames completed by the prefix pop early,
     and prefix-frames + suffix-frames = all frames, in order. *)
  for i = 0 to String.length wire do
    let dec = Framing.Decoder.create () in
    Framing.Decoder.feed dec (String.sub wire 0 i);
    let first =
      match drain dec with Ok l -> l | Error e -> Alcotest.failf "%s" e
    in
    Framing.Decoder.feed dec (String.sub wire i (String.length wire - i));
    let second =
      match drain dec with Ok l -> l | Error e -> Alcotest.failf "%s" e
    in
    Alcotest.(check (list string))
      (Printf.sprintf "split at %d" i)
      payloads (first @ second)
  done

let test_framing_byte_at_a_time () =
  let payloads = [ "a"; String.make 200 'b'; "" ] in
  let wire = String.concat "" (List.map Framing.encode payloads) in
  let dec = Framing.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      Framing.Decoder.feed dec (String.make 1 c);
      match drain dec with
      | Ok l -> got := !got @ l
      | Error e -> Alcotest.failf "byte feed: %s" e)
    wire;
  Alcotest.(check (list string)) "all frames" payloads !got;
  Alcotest.(check int) "nothing buffered" 0 (Framing.Decoder.buffered dec)

let test_framing_oversize_rejected () =
  let dec = Framing.Decoder.create ~max_frame:10 () in
  Framing.Decoder.feed dec (Framing.encode (String.make 11 'z'));
  match Framing.Decoder.pop dec with
  | Error e ->
      Alcotest.(check bool) "mentions limit" true
        (String.length e > 0
        && String.length e >= 5
        && String.sub e 0 5 = "frame")
  | Ok _ -> Alcotest.fail "oversize frame accepted"

let test_framing_unterminated_varint () =
  let dec = Framing.Decoder.create () in
  Framing.Decoder.feed dec (String.make 11 '\xff');
  match Framing.Decoder.pop dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "runaway varint accepted"

let test_framing_overhead () =
  Alcotest.(check int) "1-byte prefix" 1 (Framing.frame_overhead 0);
  Alcotest.(check int) "1-byte prefix max" 1 (Framing.frame_overhead 127);
  Alcotest.(check int) "2-byte prefix" 2 (Framing.frame_overhead 128);
  Alcotest.(check int) "3-byte prefix" 3 (Framing.frame_overhead 20_000);
  List.iter
    (fun n ->
      let p = String.make n 'q' in
      Alcotest.(check int)
        (Printf.sprintf "encode length %d" n)
        (n + Framing.frame_overhead n)
        (String.length (Framing.encode p)))
    [ 0; 1; 127; 128; 300 ]

(* Random payload lists survive random re-chunking of the byte stream. *)
let prop_framing_rechunk_roundtrip =
  QCheck.Test.make ~name:"framing roundtrip under random chunking" ~count:200
    QCheck.(pair (small_list (string_of_size Gen.(0 -- 400))) (0 -- 1_000_000))
    (fun (payloads, seed) ->
      let wire = String.concat "" (List.map Framing.encode payloads) in
      let st = Random.State.make [| seed |] in
      let dec = Framing.Decoder.create () in
      let got = ref [] in
      let pos = ref 0 in
      let ok = ref true in
      while !pos < String.length wire && !ok do
        let n =
          1 + Random.State.int st (max 1 (String.length wire - !pos))
        in
        Framing.Decoder.feed dec ~off:!pos ~len:n wire;
        pos := !pos + n;
        match drain dec with
        | Ok l -> got := !got @ l
        | Error _ -> ok := false
      done;
      !ok && !got = payloads && Framing.Decoder.buffered dec = 0)

let () =
  Alcotest.run "serial"
    [
      ( "bytes_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_bytes_io_roundtrip;
          Alcotest.test_case "underflow" `Quick test_bytes_io_underflow;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "binary roundtrip" `Quick test_bin_roundtrip;
          Alcotest.test_case "soap roundtrip" `Quick test_soap_roundtrip;
          Alcotest.test_case "cycles" `Quick test_cycles_both_codecs;
          Alcotest.test_case "shared references" `Quick
            test_shared_reference_not_duplicated;
          Alcotest.test_case "primitives" `Quick test_primitives_all_codecs;
          Alcotest.test_case "unknown types" `Quick test_unknown_type_errors;
          Alcotest.test_case "malformed binary" `Quick test_malformed_binary;
          Alcotest.test_case "class names probe" `Quick
            test_class_names_without_decoding;
          Alcotest.test_case "proxy encodes as target" `Quick
            test_proxy_serializes_as_target;
        ] );
      ( "assembly-codec",
        [
          Alcotest.test_case "expr roundtrip" `Quick test_expr_xml_roundtrip;
          Alcotest.test_case "assembly roundtrip" `Quick
            test_assembly_xml_roundtrip;
          Alcotest.test_case "code still runs after wire" `Quick
            test_assembly_roundtrip_still_runs;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "roundtrip both codecs" `Quick
            test_envelope_roundtrip;
          Alcotest.test_case "root type first" `Quick test_envelope_root_first;
          Alcotest.test_case "sender must know classes" `Quick
            test_envelope_unknown_class_on_sender;
          Alcotest.test_case "decode needs loaded types" `Quick
            test_envelope_decode_requires_types;
          Alcotest.test_case "malformed" `Quick test_envelope_malformed;
          Alcotest.test_case "digest collision regression" `Quick
            test_envelope_digest_collision;
          Alcotest.test_case "golden emission order" `Quick
            test_envelope_golden_order;
        ] );
      ( "handles",
        [
          Alcotest.test_case "bind then ref" `Quick test_handle_bind_then_ref;
          Alcotest.test_case "drifted binding rejected" `Quick
            test_handle_drifted_binding_rejected;
          Alcotest.test_case "xml fallback accepted" `Quick
            test_handle_xml_fallback_accepted;
          QCheck_alcotest.to_alcotest prop_binary_envelope_flip_always_detected;
          QCheck_alcotest.to_alcotest prop_handle_negotiation_state_machine;
        ] );
      ( "batch",
        [
          Alcotest.test_case "frame roundtrip" `Quick
            test_batch_frame_roundtrip;
          Alcotest.test_case "bind frame roundtrip + corruption" `Quick
            test_bind_frame_roundtrip_and_corruption;
          QCheck_alcotest.to_alcotest prop_batch_frame_flip_always_detected;
        ] );
      ( "framing",
        [
          Alcotest.test_case "split at every byte boundary" `Quick
            test_framing_split_at_every_boundary;
          Alcotest.test_case "byte-at-a-time feed" `Quick
            test_framing_byte_at_a_time;
          Alcotest.test_case "oversize frame rejected" `Quick
            test_framing_oversize_rejected;
          Alcotest.test_case "unterminated varint rejected" `Quick
            test_framing_unterminated_varint;
          Alcotest.test_case "prefix overhead" `Quick test_framing_overhead;
          QCheck_alcotest.to_alcotest prop_framing_rechunk_roundtrip;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bin_roundtrip;
          QCheck_alcotest.to_alcotest prop_soap_roundtrip;
          QCheck_alcotest.to_alcotest prop_envelope_roundtrip;
          QCheck_alcotest.to_alcotest prop_bin_flip_always_detected;
          QCheck_alcotest.to_alcotest prop_envelope_flip_never_mangles;
        ] );
    ]
