(* Tests for the serialization stack: binary, SOAP, assembly codec,
   hybrid envelope. *)

open Pti_cts
module Demo = Pti_demo.Demo_types
module Bin = Pti_serial.Bin_ser
module Soap = Pti_serial.Soap_ser
module Env = Pti_serial.Envelope
module Axml = Pti_serial.Assembly_xml
module Bio = Pti_serial.Bytes_io
module Xml = Pti_xml.Xml
module E = Expr

let reg () =
  Demo.fresh_registry [ Demo.news_assembly (); Demo.social_assembly () ]

(* ----------------------------- bytes_io ---------------------------- *)

let test_bytes_io_roundtrip () =
  let w = Bio.Writer.create () in
  Bio.Writer.varint w 0;
  Bio.Writer.varint w 127;
  Bio.Writer.varint w 128;
  Bio.Writer.varint w 300_000;
  Bio.Writer.zigzag w (-1);
  Bio.Writer.zigzag w 12345;
  Bio.Writer.zigzag w (-99999);
  Bio.Writer.f64 w 3.14159;
  Bio.Writer.string w "hello";
  Bio.Writer.bool w true;
  let r = Bio.Reader.create (Bio.Writer.contents w) in
  Alcotest.(check int) "v0" 0 (Bio.Reader.varint r);
  Alcotest.(check int) "v127" 127 (Bio.Reader.varint r);
  Alcotest.(check int) "v128" 128 (Bio.Reader.varint r);
  Alcotest.(check int) "v300k" 300_000 (Bio.Reader.varint r);
  Alcotest.(check int) "z-1" (-1) (Bio.Reader.zigzag r);
  Alcotest.(check int) "z12345" 12345 (Bio.Reader.zigzag r);
  Alcotest.(check int) "z-99999" (-99999) (Bio.Reader.zigzag r);
  Alcotest.(check (float 1e-12)) "f64" 3.14159 (Bio.Reader.f64 r);
  Alcotest.(check string) "string" "hello" (Bio.Reader.string r);
  Alcotest.(check bool) "bool" true (Bio.Reader.bool r);
  Alcotest.(check bool) "at_end" true (Bio.Reader.at_end r)

let test_bytes_io_underflow () =
  let r = Bio.Reader.create "\xff" in
  match Bio.Reader.string r with
  | _ -> Alcotest.fail "expected underflow"
  | exception Bio.Reader.Underflow _ -> ()

(* ----------------------------- values ------------------------------ *)

let sample_person r =
  let p = Demo.make_news_person r ~name:"Ser" ~age:7 in
  let home =
    Eval.construct r Demo.news_address
      [ Value.Vstring "1 Main St"; Value.Vstring "Springfield" ]
  in
  ignore (Eval.call r p "setHome" [ home ]);
  p

let cyclic_pair r =
  let a = Demo.make_news_person r ~name:"A" ~age:1 in
  let b = Demo.make_news_person r ~name:"B" ~age:2 in
  ignore (Eval.call r a "setSpouse" [ b ]);
  ignore (Eval.call r b "setSpouse" [ a ]);
  a

let roundtrip_codec encode decode r v =
  match decode r (encode v) with
  | Ok v' -> v'
  | Error _ -> Alcotest.fail "decode failed"

let check_person_roundtrip r v' =
  Alcotest.(check bool) "deep equal" true (Value.equal_deep
    (Value.Vstring "Ser") (Eval.call r v' "getName" []));
  let home = Eval.call r v' "getHome" [] in
  Alcotest.(check bool) "nested object" true
    (Value.equal_deep (Value.Vstring "Springfield")
       (Eval.call r home "getCity" []))

let test_bin_roundtrip () =
  let r = reg () in
  let v = sample_person r in
  let v' = roundtrip_codec Bin.encode Bin.decode r v in
  check_person_roundtrip r v';
  Alcotest.(check bool) "whole graph equal" true (Value.equal_deep v v')

let test_soap_roundtrip () =
  let r = reg () in
  let v = sample_person r in
  let v' = roundtrip_codec Soap.encode Soap.decode r v in
  check_person_roundtrip r v';
  Alcotest.(check bool) "whole graph equal" true (Value.equal_deep v v')

let test_cycles_both_codecs () =
  let r = reg () in
  let v = cyclic_pair r in
  let check v' =
    let spouse = Eval.call r v' "getSpouse" [] in
    let back = Eval.call r spouse "getSpouse" [] in
    match back, v' with
    | Value.Vobj o1, Value.Vobj o2 ->
        Alcotest.(check bool) "cycle identity" true (o1 == o2)
    | _ -> Alcotest.fail "expected objects"
  in
  check (roundtrip_codec Bin.encode Bin.decode r v);
  check (roundtrip_codec Soap.encode Soap.decode r v)

let test_shared_reference_not_duplicated () =
  let r = reg () in
  let shared = Demo.make_news_person r ~name:"S" ~age:0 in
  let a = Demo.make_news_person r ~name:"A" ~age:1 in
  let b = Demo.make_news_person r ~name:"B" ~age:2 in
  ignore (Eval.call r a "setSpouse" [ shared ]);
  ignore (Eval.call r b "setSpouse" [ shared ]);
  let arr =
    Value.Varr { Value.elem_ty = Ty.Named Demo.news_person; items = [| a; b |] }
  in
  let check v' =
    match v' with
    | Value.Varr { Value.items = [| a'; b' |]; _ } -> (
        match Eval.call r a' "getSpouse" [], Eval.call r b' "getSpouse" [] with
        | Value.Vobj s1, Value.Vobj s2 ->
            Alcotest.(check bool) "sharing preserved" true (s1 == s2)
        | _ -> Alcotest.fail "expected spouse objects")
    | _ -> Alcotest.fail "expected a 2-array"
  in
  check (roundtrip_codec Bin.encode Bin.decode r arr);
  check (roundtrip_codec Soap.encode Soap.decode r arr)

let test_primitives_all_codecs () =
  let r = Registry.create () in
  let values =
    [
      Value.Vnull; Value.Vbool true; Value.Vbool false; Value.Vint 0;
      Value.Vint (-123456); Value.Vint (max_int / 4);
      Value.Vfloat 0.; Value.Vfloat (-1.5e300); Value.Vfloat infinity;
      Value.Vstring ""; Value.Vstring "héllo <&> \"w\"";
      Value.Vchar 'x'; Value.Vchar '\000';
      Value.Varr { Value.elem_ty = Ty.Int; items = [| Value.Vint 1; Value.Vint 2 |] };
      Value.Varr { Value.elem_ty = Ty.String; items = [||] };
    ]
  in
  List.iter
    (fun v ->
      let vb = roundtrip_codec Bin.encode Bin.decode r v in
      Alcotest.(check bool) "bin prim" true (Value.equal_deep v vb);
      let vs = roundtrip_codec Soap.encode Soap.decode r v in
      Alcotest.(check bool) "soap prim" true (Value.equal_deep v vs))
    values

let test_unknown_type_errors () =
  let full = reg () in
  let empty = Registry.create () in
  let v = sample_person full in
  (match Bin.decode empty (Bin.encode v) with
  | Error (Bin.Unknown_type t) ->
      Alcotest.(check string) "bin names the type" Demo.news_person t
  | _ -> Alcotest.fail "bin should fail with Unknown_type");
  match Soap.decode empty (Soap.encode v) with
  | Error (Soap.Unknown_type _) -> ()
  | _ -> Alcotest.fail "soap should fail with Unknown_type"

let test_malformed_binary () =
  let r = reg () in
  List.iter
    (fun s ->
      match Bin.decode r s with
      | Error (Bin.Malformed _) -> ()
      | _ -> Alcotest.failf "should be malformed: %S" s)
    [ ""; "XXXX"; "PTIB\x01"; "PTIB\x01\x63"; "PTIB\x01\x02\x01extra" ]

let test_class_names_without_decoding () =
  let r = reg () in
  let v = sample_person r in
  (match Bin.class_names (Bin.encode v) with
  | Ok names ->
      Alcotest.(check bool) "person listed" true
        (List.mem Demo.news_person names);
      Alcotest.(check bool) "address listed" true
        (List.mem Demo.news_address names)
  | Error _ -> Alcotest.fail "class_names failed");
  let names = Soap.class_names (Soap.encode_xml v) in
  Alcotest.(check bool) "soap person listed" true
    (List.mem Demo.news_person names)

let test_proxy_serializes_as_target () =
  let r = reg () in
  let p = sample_person r in
  let proxy =
    Value.Vproxy
      { Value.px_interface = "x.Y"; px_target = p;
        px_invoke = (fun _ _ -> Value.Vnull) }
  in
  Alcotest.(check string) "same bytes as target" (Bin.encode p)
    (Bin.encode proxy)

(* --------------------------- assembly codec ------------------------ *)

let test_expr_xml_roundtrip () =
  let exprs =
    [
      E.null; E.int 42; E.str "a<b&c"; E.bool true;
      E.Const (E.Cfloat 2.5); E.Const (E.Cchar 'q'); E.This; E.Var "x";
      E.Let ("t", E.int 1, E.Binop (E.Add, E.Var "t", E.int 2));
      E.Assign ("x", E.int 9);
      E.Field_get (E.This, "name");
      E.Field_set (E.This, "name", E.str "n");
      E.Call (E.This, "m", [ E.int 1; E.str "s" ]);
      E.Static_call ("a.B", "m", [ E.int 1 ]);
      E.New ("a.B", [ E.null ]);
      E.New_array (Ty.Int, [ E.int 1; E.int 2 ]);
      E.Index_get (E.Var "a", E.int 0);
      E.Index_set (E.Var "a", E.int 0, E.int 5);
      E.Array_length (E.Var "a");
      E.If (E.bool true, E.int 1, E.int 2);
      E.While (E.bool false, E.null);
      E.Seq [ E.int 1; E.int 2 ];
      E.Unop (E.Not, E.bool false);
      E.Unop (E.Neg, E.int 3);
      E.Throw (E.str "boom");
      E.Try (E.Throw (E.int 1), "e", E.Var "e");
    ]
  in
  List.iter
    (fun e ->
      match Axml.expr_of_xml (Axml.expr_to_xml e) with
      | Ok e' ->
          Alcotest.(check string) "expr roundtrip" (E.to_string e)
            (E.to_string e')
      | Error msg -> Alcotest.failf "expr codec failed: %s" msg)
    exprs

let test_assembly_xml_roundtrip () =
  List.iter
    (fun asm ->
      let s = Axml.to_string asm in
      match Axml.of_string s with
      | Error msg -> Alcotest.failf "assembly parse failed: %s" msg
      | Ok asm' ->
          Alcotest.(check string) "name" asm.Assembly.asm_name
            asm'.Assembly.asm_name;
          Alcotest.(check bool) "classes equal" true
            (asm.Assembly.asm_classes = asm'.Assembly.asm_classes))
    [
      Demo.news_assembly (); Demo.social_assembly (); Demo.printer_assembly ();
      Demo.trap_assembly ();
    ]

let test_assembly_roundtrip_still_runs () =
  (* Code that crossed the wire must still execute. *)
  let asm = Demo.news_assembly () in
  let asm' =
    match Axml.of_string (Axml.to_string asm) with
    | Ok a -> a
    | Error m -> Alcotest.failf "parse: %s" m
  in
  let r = Demo.fresh_registry [ asm' ] in
  let p = Demo.make_news_person r ~name:"Wire" ~age:1 in
  match Eval.call r p "greet" [] with
  | Value.Vstring s -> Alcotest.(check string) "greet" "Hello, Wire" s
  | _ -> Alcotest.fail "greet failed after roundtrip"

(* --------------------------- envelope ------------------------------ *)

let test_envelope_roundtrip () =
  let r = reg () in
  let v = sample_person r in
  List.iter
    (fun codec ->
      let env =
        Env.make r ~codec
          ~download_path:(fun ~assembly -> "asm://host/" ^ assembly)
          v
      in
      Alcotest.(check bool) "lists both classes" true
        (List.length env.Env.env_types = 2);
      let env' =
        match Env.of_string (Env.to_string env) with
        | Ok e -> e
        | Error e -> Alcotest.failf "envelope parse: %a" Env.pp_error e
      in
      Alcotest.(check bool) "same types" true
        (List.map (fun e -> e.Env.te_name) env'.Env.env_types
        = List.map (fun e -> e.Env.te_name) env.Env.env_types);
      match Env.decode_payload r env' with
      | Ok v' -> Alcotest.(check bool) "payload" true (Value.equal_deep v v')
      | Error e -> Alcotest.failf "payload decode: %a" Env.pp_error e)
    [ Env.Soap; Env.Binary ]

let test_envelope_root_first () =
  let r = reg () in
  let v = sample_person r in
  let env =
    Env.make r ~codec:Env.Binary
      ~download_path:(fun ~assembly -> assembly)
      v
  in
  match env.Env.env_types with
  | first :: _ ->
      Alcotest.(check string) "root type first" Demo.news_person
        first.Env.te_name
  | [] -> Alcotest.fail "no types"

let test_envelope_unknown_class_on_sender () =
  let r = reg () in
  let stranger =
    Value.Vobj
      { Value.oid = Value.fresh_oid (); cls = "ghost.Type";
        fields = Hashtbl.create 1 }
  in
  match
    Env.make r ~codec:Env.Binary ~download_path:(fun ~assembly -> assembly)
      stranger
  with
  | _ -> Alcotest.fail "unregistered class should be refused"
  | exception Invalid_argument _ -> ()

let test_envelope_decode_requires_types () =
  let full = reg () in
  let v = sample_person full in
  let env =
    Env.make full ~codec:Env.Binary ~download_path:(fun ~assembly -> assembly) v
  in
  let empty = Registry.create () in
  match Env.decode_payload empty env with
  | Error (Env.Unknown_type _) -> ()
  | _ -> Alcotest.fail "decode without types should fail"

let test_envelope_malformed () =
  List.iter
    (fun s ->
      match Env.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" s)
    [
      "";
      "<envelope><payload encoding=\"weird\">x</payload></envelope>";
      "<envelope><payload encoding=\"binary\">!!</payload></envelope>";
      "<envelope/>";
      "<notenvelope/>";
      "<envelope><type name=\"a\" guid=\"bad\" assembly=\"x\" \
       downloadPath=\"p\"/><payload encoding=\"binary\"></payload></envelope>";
    ]

(* Random object graphs for codec property tests. *)
let gen_value reg =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      if depth = 0 then
        oneof
          [
            return Value.Vnull;
            map (fun b -> Value.Vbool b) bool;
            map (fun i -> Value.Vint i) small_signed_int;
            map (fun s -> Value.Vstring s) (string_size (int_bound 10));
          ]
      else
        frequency
          [
            (2, self 0);
            ( 3,
              map2
                (fun name age ->
                  let p =
                    Demo.make_news_person reg ~name ~age
                  in
                  p)
                (string_size (int_bound 8))
                small_nat );
            ( 1,
              map
                (fun items ->
                  Value.Varr
                    {
                      Value.elem_ty = Ty.Named "object";
                      items = Array.of_list items;
                    })
                (list_size (int_bound 4) (self (depth - 1))) );
          ])
    3

let prop_bin_roundtrip =
  let r = reg () in
  QCheck.Test.make ~name:"binary codec roundtrip on random graphs" ~count:100
    (QCheck.make (gen_value r))
    (fun v ->
      match Bin.decode r (Bin.encode v) with
      | Ok v' -> Value.equal_deep v v'
      | Error _ -> false)

let prop_soap_roundtrip =
  let r = reg () in
  QCheck.Test.make ~name:"soap codec roundtrip on random graphs" ~count:100
    (QCheck.make (gen_value r))
    (fun v ->
      match Soap.decode r (Soap.encode v) with
      | Ok v' -> Value.equal_deep v v'
      | Error _ -> false)

let prop_envelope_roundtrip =
  let r = reg () in
  QCheck.Test.make ~name:"envelope roundtrip on random graphs" ~count:60
    (QCheck.make (gen_value r))
    (fun v ->
      let env =
        Env.make r ~codec:Env.Binary ~download_path:(fun ~assembly -> assembly) v
      in
      match Env.of_string (Env.to_string env) with
      | Error _ -> false
      | Ok env' -> (
          match Env.decode_payload r env' with
          | Ok v' -> Value.equal_deep v v'
          | Error _ -> false))

(* A single flipped byte anywhere in a wire string must never decode
   into a mangled value. For the binary codec the answer is strictly
   [Error]: every byte is covered by the magic, the FNV checksum or the
   checksummed body, and the per-byte absorption step of FNV-1a is a
   bijection, so any substitution changes the hash. *)
let prop_bin_flip_always_detected =
  let r = reg () in
  let wire =
    Bin.encode (Demo.make_news_person r ~name:"Ada Lovelace" ~age:36)
  in
  QCheck.Test.make ~name:"binary codec detects any single byte flip"
    ~count:500
    QCheck.(pair (int_bound (String.length wire - 1)) (1 -- 255))
    (fun (pos, x) ->
      let b = Bytes.of_string wire in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
      match Bin.decode r (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> false)

(* Envelopes are XML, where a flip can land in insignificant syntax
   (whitespace, a quote style) and re-parse to the same document — so
   the guarantee is: decode fails, or the value is semantically intact.
   Exercised for both payload codecs. *)
let prop_envelope_flip_never_mangles =
  let r = reg () in
  let original = Demo.make_news_person r ~name:"Ada Lovelace" ~age:36 in
  let wire codec =
    Env.to_string
      (Env.make r ~codec ~download_path:(fun ~assembly -> assembly) original)
  in
  let soap_wire = wire Env.Soap in
  let bin_wire = wire Env.Binary in
  QCheck.Test.make
    ~name:"envelope flip: decode fails or the value is intact" ~count:600
    QCheck.(triple bool (int_bound 99999) (1 -- 255))
    (fun (use_soap, pos, x) ->
      let wire = if use_soap then soap_wire else bin_wire in
      let pos = pos mod String.length wire in
      let b = Bytes.of_string wire in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
      match Env.of_string (Bytes.to_string b) with
      | Error _ -> true
      | Ok env -> (
          match Env.decode_payload r env with
          | Error _ -> true
          | Ok v -> Value.equal_deep original v))

let () =
  Alcotest.run "serial"
    [
      ( "bytes_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_bytes_io_roundtrip;
          Alcotest.test_case "underflow" `Quick test_bytes_io_underflow;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "binary roundtrip" `Quick test_bin_roundtrip;
          Alcotest.test_case "soap roundtrip" `Quick test_soap_roundtrip;
          Alcotest.test_case "cycles" `Quick test_cycles_both_codecs;
          Alcotest.test_case "shared references" `Quick
            test_shared_reference_not_duplicated;
          Alcotest.test_case "primitives" `Quick test_primitives_all_codecs;
          Alcotest.test_case "unknown types" `Quick test_unknown_type_errors;
          Alcotest.test_case "malformed binary" `Quick test_malformed_binary;
          Alcotest.test_case "class names probe" `Quick
            test_class_names_without_decoding;
          Alcotest.test_case "proxy encodes as target" `Quick
            test_proxy_serializes_as_target;
        ] );
      ( "assembly-codec",
        [
          Alcotest.test_case "expr roundtrip" `Quick test_expr_xml_roundtrip;
          Alcotest.test_case "assembly roundtrip" `Quick
            test_assembly_xml_roundtrip;
          Alcotest.test_case "code still runs after wire" `Quick
            test_assembly_roundtrip_still_runs;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "roundtrip both codecs" `Quick
            test_envelope_roundtrip;
          Alcotest.test_case "root type first" `Quick test_envelope_root_first;
          Alcotest.test_case "sender must know classes" `Quick
            test_envelope_unknown_class_on_sender;
          Alcotest.test_case "decode needs loaded types" `Quick
            test_envelope_decode_requires_types;
          Alcotest.test_case "malformed" `Quick test_envelope_malformed;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bin_roundtrip;
          QCheck_alcotest.to_alcotest prop_soap_roundtrip;
          QCheck_alcotest.to_alcotest prop_envelope_roundtrip;
          QCheck_alcotest.to_alcotest prop_bin_flip_always_detected;
          QCheck_alcotest.to_alcotest prop_envelope_flip_never_mangles;
        ] );
    ]
