(* pti_scale: the workload generators (zipf, churn) are pure functions
   of the seed, and the driver's whole run — counts, caches, trace hash
   — replays identically under an equal seed. The flash-crowd dedup and
   handle-table pool claims in the report are checked here at a size
   small enough for the test suite. *)

module Splitmix = Pti_util.Splitmix
module Zipf = Pti_scale.Zipf
module Churn = Pti_scale.Churn
module Driver = Pti_scale.Driver
module Peer = Pti_core.Peer
module Metrics = Pti_obs.Metrics

(* ------------------------------ zipf ------------------------------- *)

let seed_gen = QCheck.(map Int64.of_int (int_range 0 1_000_000))

let prop_zipf_seed_determinism =
  QCheck.Test.make ~name:"zipf: equal seeds draw equal rank sequences"
    ~count:100
    QCheck.(pair seed_gen (int_range 1 64))
    (fun (seed, n) ->
      let z = Zipf.create ~n ~s:1.1 in
      let draw seed =
        let rng = Splitmix.create seed in
        List.init 200 (fun _ -> Zipf.sample z rng)
      in
      draw seed = draw seed)

let prop_zipf_pmf_monotone =
  QCheck.Test.make ~name:"zipf: pmf strictly decreasing in rank (s > 0)"
    ~count:100
    QCheck.(pair (int_range 2 128) (float_range 0.1 3.0))
    (fun (n, s) ->
      let z = Zipf.create ~n ~s in
      let ok = ref true in
      for r = 0 to n - 2 do
        if not (Zipf.pmf z r > Zipf.pmf z (r + 1)) then ok := false
      done;
      !ok)

let prop_zipf_sample_in_range =
  QCheck.Test.make ~name:"zipf: samples land in [0; n)" ~count:100
    QCheck.(pair seed_gen (int_range 1 32))
    (fun (seed, n) ->
      let z = Zipf.create ~n ~s:0.9 in
      let rng = Splitmix.create seed in
      let ok = ref true in
      for _ = 1 to 500 do
        let r = Zipf.sample z rng in
        if r < 0 || r >= n then ok := false
      done;
      !ok)

let prop_zipf_empirical_rank_order =
  (* With a pronounced exponent, rank 0 must empirically out-draw the
     tail rank over a modest sample — the popularity skew the caches
     rely on actually shows up in the draws. *)
  QCheck.Test.make ~name:"zipf: rank 0 out-draws the tail empirically"
    ~count:50
    QCheck.(pair seed_gen (int_range 4 32))
    (fun (seed, n) ->
      let z = Zipf.create ~n ~s:1.5 in
      let rng = Splitmix.create seed in
      let counts = Array.make n 0 in
      for _ = 1 to 2000 do
        let r = Zipf.sample z rng in
        counts.(r) <- counts.(r) + 1
      done;
      counts.(0) > counts.(n - 1))

(* ------------------------------ churn ------------------------------ *)

let churn_gen =
  QCheck.(triple seed_gen (int_range 1 200) (float_range 0.0 4.0))

let prop_churn_conserves_sessions =
  QCheck.Test.make
    ~name:"churn: one arrival and one departure per session" ~count:100
    churn_gen
    (fun (seed, sessions, churn) ->
      let rng = Splitmix.create seed in
      let tl = Churn.build ~sessions ~churn ~horizon_ms:60_000. rng in
      let arrivals = ref 0 and departures = ref 0 in
      for i = 0 to Churn.length tl - 1 do
        match Churn.event tl i with
        | Churn.Arrive _ -> incr arrivals
        | Churn.Depart _ -> incr departures
      done;
      Churn.length tl = 2 * sessions
      && !arrivals = sessions
      && !departures = sessions)

let prop_churn_live_count_sane =
  QCheck.Test.make
    ~name:"churn: live count never negative, ends at zero" ~count:100
    churn_gen
    (fun (seed, sessions, churn) ->
      let rng = Splitmix.create seed in
      let tl = Churn.build ~sessions ~churn ~horizon_ms:60_000. rng in
      let live = ref 0 and ok = ref true in
      for i = 0 to Churn.length tl - 1 do
        (match Churn.event tl i with
        | Churn.Arrive _ -> incr live
        | Churn.Depart _ -> decr live);
        if !live < 0 then ok := false
      done;
      !ok && !live = 0)

let prop_churn_ordered_within_horizon =
  QCheck.Test.make
    ~name:"churn: timestamps sorted; every life within the horizon"
    ~count:100 churn_gen
    (fun (seed, sessions, churn) ->
      let horizon_ms = 60_000. in
      let rng = Splitmix.create seed in
      let tl = Churn.build ~sessions ~churn ~horizon_ms rng in
      let sorted = ref true in
      for i = 1 to Churn.length tl - 1 do
        if Churn.at tl i < Churn.at tl (i - 1) then sorted := false
      done;
      let lives_ok = ref true in
      for id = 0 to sessions - 1 do
        let a = Churn.arrive_ms tl id and d = Churn.depart_ms tl id in
        if not (0. <= a && a < d && d <= horizon_ms) then lives_ok := false
      done;
      !sorted && !lives_ok)

let prop_churn_zero_means_immortal =
  QCheck.Test.make ~name:"churn 0: every session departs at the horizon"
    ~count:100
    QCheck.(pair seed_gen (int_range 1 100))
    (fun (seed, sessions) ->
      let horizon_ms = 60_000. in
      let rng = Splitmix.create seed in
      let tl = Churn.build ~sessions ~churn:0. ~horizon_ms rng in
      let ok = ref true in
      for id = 0 to sessions - 1 do
        if Churn.depart_ms tl id <> horizon_ms then ok := false
      done;
      !ok)

(* ------------------------------ driver ----------------------------- *)

let small_config =
  {
    Driver.default_config with
    Driver.sessions = 400;
    flash_at_ms = Some 30_000.;
    seed = 9L;
  }

let test_driver_deterministic_trace () =
  let a = Driver.run small_config and b = Driver.run small_config in
  Alcotest.(check int64)
    "equal seeds, equal trace hashes" a.Driver.r_trace_hash
    b.Driver.r_trace_hash;
  Alcotest.(check int) "equal delivery counts" a.Driver.r_deliveries
    b.Driver.r_deliveries;
  let c = Driver.run { small_config with Driver.seed = 10L } in
  Alcotest.(check bool) "different seed, different trace" true
    (c.Driver.r_trace_hash <> a.Driver.r_trace_hash)

let test_driver_healthy_run () =
  let r = Driver.run small_config in
  Alcotest.(check int) "every session arrived" small_config.Driver.sessions
    r.Driver.r_arrived;
  Alcotest.(check int) "every session departed" small_config.Driver.sessions
    r.Driver.r_departed;
  Alcotest.(check bool) "conformant traffic delivered" true
    (r.Driver.r_deliveries > 0);
  Alcotest.(check bool) "trap families rejected" true
    (r.Driver.r_rejections > 0);
  Alcotest.(check int) "nothing left in flight" 0 r.Driver.r_undelivered

let test_driver_flash_dedup () =
  (* The flash crowd thundering-herds one brand-new type at every live
     session; the in-flight dedup must collapse its fetches to
     O(shards), not O(sessions). The hot assembly carries two classes
     (Person + Address), so allow 2 description fetches per shard. *)
  let shards = 2 in
  let r = Driver.run { small_config with Driver.shards } in
  Alcotest.(check bool) "flash reached a crowd" true
    (r.Driver.r_flash_sends > 50);
  Alcotest.(check bool) "flash tdesc fetches O(shards)" true
    (r.Driver.r_flash_tdesc_fetches <= 2 * shards);
  Alcotest.(check bool) "flash assembly fetches O(shards)" true
    (r.Driver.r_flash_asm_fetches <= shards)

let test_driver_pool_recycled () =
  let r = Driver.run small_config in
  Alcotest.(check bool) "handle tables parked for reuse" true
    (r.Driver.r_pool_recycled > 0)

let test_driver_metrics_namespace () =
  let m = Metrics.create () in
  let _ = Driver.run ~metrics:m { small_config with Driver.sessions = 100 } in
  let get name =
    match Metrics.find m name with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  (match get "scale.deliveries" with
  | Metrics.Counter n -> Alcotest.(check bool) "deliveries counted" true (n > 0)
  | _ -> Alcotest.fail "scale.deliveries not a counter");
  (match get "scale.latency_ms" with
  | Metrics.Histogram h ->
      Alcotest.(check bool) "latencies observed" true (h.Metrics.h_count > 0)
  | _ -> Alcotest.fail "scale.latency_ms not a histogram");
  match get "scale.sessions.live" with
  | Metrics.Gauge v ->
      Alcotest.(check (float 0.)) "no sessions live at quiescence" 0. v
  | _ -> Alcotest.fail "scale.sessions.live not a gauge"

let test_shared_pool_roundtrip () =
  (* The flyweight block parks released receiver handle tables and hands
     them back to the next peer that needs one. *)
  let sh = Peer.create_shared ~handle_table_capacity:8 () in
  let net = Pti_net.Net.create ~seed:3L () in
  let a = Peer.create ~shared:sh ~handles:true ~net "a"
  and b = Peer.create ~shared:sh ~handles:true ~net "b" in
  Alcotest.(check int) "pool starts empty" 0 (Peer.shared_pool_size sh);
  Peer.install_assembly a (Pti_demo.Demo_types.news_assembly ());
  let person name age =
    Pti_demo.Demo_types.make_news_person (Peer.registry a) ~name ~age
  in
  Peer.register_interest b ~interest:Pti_demo.Demo_types.news_person
    (fun ~from:_ _ -> ());
  Peer.send_value a ~dst:"b" (person "n" 1);
  Pti_net.Net.run net;
  Peer.release_handle_tables b;
  Alcotest.(check bool) "receiver table parked" true
    (Peer.shared_pool_size sh > 0);
  let before = Peer.shared_pool_size sh in
  let c = Peer.create ~shared:sh ~handles:true ~net "c" in
  Peer.register_interest c ~interest:Pti_demo.Demo_types.news_person
    (fun ~from:_ _ -> ());
  Peer.send_value a ~dst:"c" (person "m" 2);
  Pti_net.Net.run net;
  Alcotest.(check int) "new receiver drew from the pool" (before - 1)
    (Peer.shared_pool_size sh)

let test_report_json_shape () =
  let r = Driver.run { small_config with Driver.sessions = 50 } in
  let js = Driver.report_to_json ~wall_ms:1.5 r in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json mentions %s" needle)
        true
        (let len = String.length js and nlen = String.length needle in
         let rec scan i =
           i + nlen <= len && (String.sub js i nlen = needle || scan (i + 1))
         in
         scan 0))
    [
      "\"sessions\"";
      "\"deliveries\"";
      "\"deliveries_per_sec\"";
      "\"flash_tdesc_fetches\"";
      "\"trace_hash\"";
      "\"wall_ms\"";
    ]

let () =
  Alcotest.run "scale"
    [
      ( "zipf",
        [
          QCheck_alcotest.to_alcotest prop_zipf_seed_determinism;
          QCheck_alcotest.to_alcotest prop_zipf_pmf_monotone;
          QCheck_alcotest.to_alcotest prop_zipf_sample_in_range;
          QCheck_alcotest.to_alcotest prop_zipf_empirical_rank_order;
        ] );
      ( "churn",
        [
          QCheck_alcotest.to_alcotest prop_churn_conserves_sessions;
          QCheck_alcotest.to_alcotest prop_churn_live_count_sane;
          QCheck_alcotest.to_alcotest prop_churn_ordered_within_horizon;
          QCheck_alcotest.to_alcotest prop_churn_zero_means_immortal;
        ] );
      ( "driver",
        [
          Alcotest.test_case "same seed, same trace" `Quick
            test_driver_deterministic_trace;
          Alcotest.test_case "healthy run" `Quick test_driver_healthy_run;
          Alcotest.test_case "flash dedup O(shards)" `Quick
            test_driver_flash_dedup;
          Alcotest.test_case "pool recycled at teardown" `Quick
            test_driver_pool_recycled;
          Alcotest.test_case "scale.* metrics namespace" `Quick
            test_driver_metrics_namespace;
          Alcotest.test_case "report json shape" `Quick test_report_json_shape;
        ] );
      ( "flyweight",
        [
          Alcotest.test_case "handle-table pool round-trip" `Quick
            test_shared_pool_roundtrip;
        ] );
    ]
