(* Cross-cutting property and fuzz tests: parsers never crash on junk,
   conformance is deterministic and complete, the protocol conserves
   objects, whole-system determinism. *)

open Pti_cts
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Mapping = Pti_conformance.Mapping
module Xml = Pti_xml.Xml
module Bin = Pti_serial.Bin_ser
module Idl = Pti_idl.Idl
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Stats = Pti_net.Stats
module Demo = Pti_demo.Demo_types
module Workload = Pti_demo.Workload

(* ----------------------------- fuzzing ----------------------------- *)

let junk_gen = QCheck.string_of_size (QCheck.Gen.int_bound 200)

let prop_xml_parser_total =
  QCheck.Test.make ~name:"xml parser never raises on junk" ~count:500 junk_gen
    (fun s ->
      match Xml.parse s with Ok _ -> true | Error _ -> true)

let prop_xml_parser_on_mutated_document =
  (* Take a real document, flip one byte: must still return, and parse
     failures must carry a position within the input. *)
  let doc =
    Td.to_xml_string
      (Td.of_class
         (Registry.find_exn
            (Demo.fresh_registry [ Demo.news_assembly () ])
            Demo.news_person))
  in
  QCheck.Test.make ~name:"xml parser total on mutated documents" ~count:300
    QCheck.(pair (int_bound (String.length doc - 1)) (int_bound 255))
    (fun (pos, byte) ->
      let b = Bytes.of_string doc in
      Bytes.set b pos (Char.chr byte);
      match Xml.parse (Bytes.to_string b) with
      | Ok _ -> true
      | Error e -> e.Xml.position >= 0 && e.Xml.position <= String.length doc)

let prop_bin_decoder_total =
  let reg = Demo.fresh_registry [ Demo.news_assembly () ] in
  QCheck.Test.make ~name:"binary decoder never raises on junk" ~count:500
    junk_gen
    (fun s ->
      match Bin.decode reg ("PTIB\x02" ^ s) with
      | Ok _ | Error _ -> true)

let prop_tdesc_decoder_total =
  QCheck.Test.make ~name:"type-description decoder total on junk" ~count:300
    junk_gen
    (fun s -> match Td.of_xml_string s with Ok _ | Error _ -> true)

let prop_idl_parser_total =
  QCheck.Test.make ~name:"idl parser never raises on junk" ~count:500 junk_gen
    (fun s -> match Idl.parse_classes s with Ok _ | Error _ -> true)

let prop_idl_parser_total_on_mutations =
  let src =
    "assembly \"a\";\nnamespace n;\nclass Person { field name : string; \
     method getName() : string { return name; } }"
  in
  QCheck.Test.make ~name:"idl parser total on mutated source" ~count:300
    QCheck.(pair (int_bound (String.length src - 1)) printable_char)
    (fun (pos, c) ->
      let b = Bytes.of_string src in
      Bytes.set b pos c;
      match Idl.parse_classes (Bytes.to_string b) with
      | Ok _ | Error _ -> true)

(* ----------------------- conformance properties -------------------- *)

let population_registry =
  let reg = Registry.create () in
  Assembly.load reg (Demo.news_assembly ());
  for i = 0 to 9 do
    Assembly.load reg (Workload.family ~index:i ~flavor:Workload.Conformant)
  done;
  reg

let pop_resolver = Td.registry_resolver population_registry

let prop_conformant_families_conform =
  QCheck.Test.make ~name:"every conformant family conforms to the interest"
    ~count:10
    QCheck.(int_bound 9)
    (fun i ->
      let checker = Checker.create ~resolver:pop_resolver () in
      let actual =
        Option.get
          (pop_resolver
             (Workload.person_name ~index:i ~flavor:Workload.Conformant))
      in
      let interest = Option.get (pop_resolver Demo.news_person) in
      Checker.verdict_ok (Checker.check checker ~actual ~interest))

let prop_conformance_deterministic =
  QCheck.Test.make ~name:"conformance verdict independent of checker instance"
    ~count:20
    QCheck.(pair (int_bound 9) (int_bound 9))
    (fun (i, j) ->
      let actual =
        Option.get
          (pop_resolver
             (Workload.person_name ~index:i ~flavor:Workload.Conformant))
      in
      let interest =
        Option.get
          (pop_resolver
             (Workload.person_name ~index:j ~flavor:Workload.Conformant))
      in
      let v1 =
        Checker.verdict_ok
          (Checker.check (Checker.create ~resolver:pop_resolver ()) ~actual
             ~interest)
      in
      let v2 =
        Checker.verdict_ok
          (Checker.check (Checker.create ~resolver:pop_resolver ()) ~actual
             ~interest)
      in
      v1 = v2)

let prop_family_pairs_transitive_instance =
  (* family_i <= news.Person and news.Person <= family_j, so family_i <=
     family_j must hold too (sampled transitivity of the relation on this
     population). *)
  QCheck.Test.make ~name:"transitivity instances across the population"
    ~count:25
    QCheck.(pair (int_bound 9) (int_bound 9))
    (fun (i, j) ->
      let checker = Checker.create ~resolver:pop_resolver () in
      let d k =
        Option.get
          (pop_resolver
             (Workload.person_name ~index:k ~flavor:Workload.Conformant))
      in
      let news = Option.get (pop_resolver Demo.news_person) in
      let ( <= ) a b = Checker.verdict_ok (Checker.check checker ~actual:a ~interest:b) in
      (* Premises hold by construction; the conclusion must. *)
      if d i <= news && news <= d j then d i <= d j else QCheck.assume_fail ())

let prop_mapping_complete =
  QCheck.Test.make ~name:"conformant mapping covers every interest method"
    ~count:10
    QCheck.(int_bound 9)
    (fun i ->
      let checker = Checker.create ~resolver:pop_resolver () in
      let actual =
        Option.get
          (pop_resolver
             (Workload.person_name ~index:i ~flavor:Workload.Conformant))
      in
      let interest = Option.get (pop_resolver Demo.news_person) in
      match Checker.check checker ~actual ~interest with
      | Checker.Not_conformant _ -> false
      | Checker.Conformant m ->
          m.Mapping.identity
          || List.for_all
               (fun (md : Td.method_desc) ->
                 Mapping.find m ~name:md.Td.md_name
                   ~arity:(Td.method_arity md)
                 <> None)
               interest.Td.ty_methods)

let prop_permutations_are_bijections =
  QCheck.Test.make ~name:"every mapping permutation is a bijection" ~count:10
    QCheck.(int_bound 9)
    (fun i ->
      let checker = Checker.create ~resolver:pop_resolver () in
      let actual =
        Option.get
          (pop_resolver
             (Workload.person_name ~index:i ~flavor:Workload.Conformant))
      in
      let interest = Option.get (pop_resolver Demo.news_person) in
      match Checker.check checker ~actual ~interest with
      | Checker.Not_conformant _ -> false
      | Checker.Conformant m ->
          List.for_all
            (fun mm ->
              let p = mm.Mapping.mm_perm in
              let n = Array.length p in
              let seen = Array.make n false in
              Array.for_all
                (fun i ->
                  i >= 0 && i < n
                  &&
                  if seen.(i) then false
                  else begin
                    seen.(i) <- true;
                    true
                  end)
                p)
            m.Mapping.methods)

(* ------------------------- protocol properties --------------------- *)

let run_protocol ~objects ~distinct ~nonconf ~seed =
  let net = Net.create ~seed () in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  let flavors =
    Array.init distinct (fun i ->
        if i < nonconf then Workload.Trap_missing else Workload.Conformant)
  in
  Array.iteri
    (fun i flavor ->
      Peer.publish_assembly sender (Workload.family ~index:i ~flavor))
    flavors;
  for n = 0 to objects - 1 do
    let index = n mod distinct in
    let v =
      Workload.make_person (Peer.registry sender) ~index
        ~flavor:flavors.(index)
        ~name:(Printf.sprintf "p%d" n) ~age:n
    in
    Peer.send_value sender ~dst:"receiver" v;
    Net.run net
  done;
  let delivered, rejected, failed =
    List.fold_left
      (fun (d, r, f) ev ->
        match ev with
        | Peer.Delivered _ -> (d + 1, r, f)
        | Peer.Rejected _ -> (d, r + 1, f)
        | Peer.Decode_failed _ | Peer.Load_failed _
        | Peer.Corrupt_rejected _ -> (d, r, f + 1))
      (0, 0, 0) (Peer.events receiver)
  in
  (delivered, rejected, failed, Stats.total_bytes (Net.stats net))

let protocol_params =
  QCheck.make
    QCheck.Gen.(
      let* distinct = int_range 1 8 in
      let* nonconf = int_bound distinct in
      let* objects = int_range 1 25 in
      return (objects, distinct, nonconf))

let prop_protocol_conserves_objects =
  QCheck.Test.make ~name:"delivered + rejected = objects sent" ~count:25
    protocol_params
    (fun (objects, distinct, nonconf) ->
      let delivered, rejected, failed, _ =
        run_protocol ~objects ~distinct ~nonconf ~seed:3L
      in
      failed = 0 && delivered + rejected = objects)

let prop_protocol_deterministic =
  QCheck.Test.make ~name:"identical runs transfer identical bytes" ~count:10
    protocol_params
    (fun (objects, distinct, nonconf) ->
      let r1 = run_protocol ~objects ~distinct ~nonconf ~seed:11L in
      let r2 = run_protocol ~objects ~distinct ~nonconf ~seed:11L in
      r1 = r2)

let prop_protocol_delivery_counts_match_conformance =
  QCheck.Test.make ~name:"exactly the conformant objects are delivered"
    ~count:20 protocol_params
    (fun (objects, distinct, nonconf) ->
      let delivered, rejected, _, _ =
        run_protocol ~objects ~distinct ~nonconf ~seed:7L
      in
      let expected_rejected =
        (* objects whose index mod distinct < nonconf *)
        let count = ref 0 in
        for n = 0 to objects - 1 do
          if n mod distinct < nonconf then incr count
        done;
        !count
      in
      rejected = expected_rejected && delivered = objects - expected_rejected)

let () =
  Alcotest.run "properties"
    [
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_xml_parser_total;
          QCheck_alcotest.to_alcotest prop_xml_parser_on_mutated_document;
          QCheck_alcotest.to_alcotest prop_bin_decoder_total;
          QCheck_alcotest.to_alcotest prop_tdesc_decoder_total;
          QCheck_alcotest.to_alcotest prop_idl_parser_total;
          QCheck_alcotest.to_alcotest prop_idl_parser_total_on_mutations;
        ] );
      ( "conformance",
        [
          QCheck_alcotest.to_alcotest prop_conformant_families_conform;
          QCheck_alcotest.to_alcotest prop_conformance_deterministic;
          QCheck_alcotest.to_alcotest prop_family_pairs_transitive_instance;
          QCheck_alcotest.to_alcotest prop_mapping_complete;
          QCheck_alcotest.to_alcotest prop_permutations_are_bijections;
        ] );
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_protocol_conserves_objects;
          QCheck_alcotest.to_alcotest prop_protocol_deterministic;
          QCheck_alcotest.to_alcotest
            prop_protocol_delivery_counts_match_conformance;
        ] );
    ]
