(* Tests for the fault-injection layer and the chaos harness. *)

module Splitmix = Pti_util.Splitmix
module Net = Pti_net.Net
module Sim = Pti_net.Sim
module Stats = Pti_net.Stats
module Fault_plan = Pti_fault.Fault_plan
module Corruptor = Pti_fault.Corruptor
module Invariant = Pti_fault.Invariant
module Chaos = Pti_fault.Chaos
module Message = Pti_core.Message

(* ---------------------------------------------------------------- *)
(* Fault_plan: window and selector semantics                          *)
(* ---------------------------------------------------------------- *)

let w start stop sel act =
  { Fault_plan.w_start = start; w_stop = stop; w_sel = sel; w_act = act }

let test_window_boundaries () =
  let win = w 10. 20. Fault_plan.Any Fault_plan.Down in
  let active now =
    Fault_plan.window_active win ~now ~src:"a" ~dst:"b"
  in
  Alcotest.(check bool) "before" false (active 9.999);
  Alcotest.(check bool) "start is inclusive" true (active 10.);
  Alcotest.(check bool) "inside" true (active 15.);
  Alcotest.(check bool) "stop is exclusive" false (active 20.);
  Alcotest.(check bool) "after" false (active 25.)

let test_selectors () =
  let m sel src dst = Fault_plan.selector_matches sel ~src ~dst in
  Alcotest.(check bool) "any" true (m Fault_plan.Any "x" "y");
  Alcotest.(check bool) "between fwd" true
    (m (Fault_plan.Between ("a", "b")) "a" "b");
  Alcotest.(check bool) "between is unordered" true
    (m (Fault_plan.Between ("a", "b")) "b" "a");
  Alcotest.(check bool) "between other" false
    (m (Fault_plan.Between ("a", "b")) "a" "c");
  Alcotest.(check bool) "from" true (m (Fault_plan.From_host "a") "a" "z");
  Alcotest.(check bool) "from other" false
    (m (Fault_plan.From_host "a") "z" "a");
  Alcotest.(check bool) "to" true (m (Fault_plan.To_host "a") "z" "a");
  Alcotest.(check bool) "touching src" true
    (m (Fault_plan.Touching "a") "a" "z");
  Alcotest.(check bool) "touching dst" true
    (m (Fault_plan.Touching "a") "z" "a");
  Alcotest.(check bool) "touching neither" false
    (m (Fault_plan.Touching "a") "y" "z")

let test_horizon () =
  Alcotest.(check (float 1e-9)) "empty" 0.
    (Fault_plan.horizon { Fault_plan.windows = [] });
  Alcotest.(check (float 1e-9)) "max stop" 90.
    (Fault_plan.horizon
       {
         Fault_plan.windows =
           [
             w 0. 90. Fault_plan.Any Fault_plan.Down;
             w 10. 20. Fault_plan.Any (Fault_plan.Loss 0.5);
           ];
       })

let test_hooks_compile () =
  let rng = Splitmix.create 7L in
  let plan =
    {
      Fault_plan.windows =
        [
          w 10. 20. Fault_plan.Any (Fault_plan.Loss 1.0);
          w 30. 40. (Fault_plan.From_host "a") (Fault_plan.Duplicate 1.0);
          w 50. 60. Fault_plan.Any (Fault_plan.Reorder 25.);
          w 70. 80. Fault_plan.Any Fault_plan.Down;
        ];
    }
  in
  let hooks =
    Fault_plan.hooks plan ~rng ~corrupt:(fun _ _ -> None)
  in
  Alcotest.(check bool) "loss inside" true
    (hooks.Net.fh_drop ~now:15. ~src:"a" ~dst:"b");
  Alcotest.(check bool) "loss outside" false
    (hooks.Net.fh_drop ~now:25. ~src:"a" ~dst:"b");
  Alcotest.(check int) "duplicate on matching link" 1
    (hooks.Net.fh_duplicates ~now:35. ~src:"a" ~dst:"b");
  Alcotest.(check int) "duplicate selector-gated" 0
    (hooks.Net.fh_duplicates ~now:35. ~src:"b" ~dst:"a");
  Alcotest.(check bool) "reorder adds delay" true
    (hooks.Net.fh_delay ~now:55. ~src:"a" ~dst:"b" > 0.);
  Alcotest.(check (float 1e-9)) "no delay outside" 0.
    (hooks.Net.fh_delay ~now:65. ~src:"a" ~dst:"b");
  Alcotest.(check bool) "down inside" true
    (hooks.Net.fh_down ~now:75. ~src:"a" ~dst:"b");
  Alcotest.(check bool) "down outside" false
    (hooks.Net.fh_down ~now:85. ~src:"a" ~dst:"b")

let test_random_plan_profiles () =
  (* Generated plans respect their profile's action vocabulary and stay
     inside the horizon-derived bounds; generation is deterministic. *)
  let hosts = [ "a"; "b"; "c" ] in
  let gen profile seed =
    Fault_plan.random ~profile ~hosts ~horizon_ms:500. (Splitmix.create seed)
  in
  List.iter
    (fun (profile, forbidden) ->
      for seed = 1 to 20 do
        let plan = gen profile (Int64.of_int seed) in
        Alcotest.(check bool) "non-empty" true (plan.Fault_plan.windows <> []);
        List.iter
          (fun win ->
            Alcotest.(check bool) "start >= 0" true
              (win.Fault_plan.w_start >= 0.);
            Alcotest.(check bool) "stop > start" true
              (win.Fault_plan.w_stop > win.Fault_plan.w_start);
            Alcotest.(check bool) "window below ARQ span" true
              (win.Fault_plan.w_stop -. win.Fault_plan.w_start < 480.);
            Alcotest.(check bool) "action allowed for profile" false
              (forbidden win.Fault_plan.w_act))
          plan.Fault_plan.windows
      done;
      let p1 = gen profile 42L and p2 = gen profile 42L in
      Alcotest.(check bool) "deterministic" true (p1 = p2))
    [
      ( Fault_plan.Lossy,
        function Fault_plan.Down | Fault_plan.Corrupt _ -> true | _ -> false );
      (Fault_plan.Flaky, function Fault_plan.Corrupt _ -> true | _ -> false);
      ( Fault_plan.Byzantine_wire,
        function Fault_plan.Down | Fault_plan.Loss _ -> true | _ -> false );
    ]

(* ---------------------------------------------------------------- *)
(* Injected faults drive the network counters                         *)
(* ---------------------------------------------------------------- *)

let burst_world plan =
  let net = Net.create ~seed:5L () in
  let delivered = ref 0 in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ _ -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> incr delivered);
  Net.set_fault_hooks net
    (Some
       (Fault_plan.hooks plan
          ~rng:(Splitmix.create 11L)
          ~corrupt:(fun _ _ -> None)));
  let sim = Net.sim net in
  for i = 0 to 19 do
    Sim.schedule_at sim
      ~at:(float_of_int (i * 10))
      (fun () ->
        Net.send net ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:10 ())
  done;
  Net.run net;
  (net, !delivered)

let test_loss_window_counts_drops () =
  let plan =
    { Fault_plan.windows = [ w 50. 150. Fault_plan.Any (Fault_plan.Loss 1.0) ] }
  in
  let net, delivered = burst_world plan in
  (* Sends at 50..140 ms fall inside the window: exactly 10 drops. *)
  Alcotest.(check int) "injected drops" 10 (Net.injected_drops net);
  Alcotest.(check int) "delivered the rest" 10 delivered

let test_duplicate_window_counts_copies () =
  let plan =
    {
      Fault_plan.windows =
        [ w 50. 150. Fault_plan.Any (Fault_plan.Duplicate 1.0) ];
    }
  in
  let net, delivered = burst_world plan in
  Alcotest.(check int) "injected duplicates" 10 (Net.injected_duplicates net);
  (* Without ARQ there is no dedup: the copies all arrive. *)
  Alcotest.(check int) "double delivery without ARQ" 30 delivered

let test_down_window_heals_itself () =
  let plan =
    { Fault_plan.windows = [ w 50. 150. Fault_plan.Any Fault_plan.Down ] }
  in
  let _net, delivered = burst_world plan in
  Alcotest.(check int) "only windowed sends die" 10 delivered

(* ---------------------------------------------------------------- *)
(* Corruptor                                                          *)
(* ---------------------------------------------------------------- *)

let test_flip_byte_changes_string () =
  let rng = Splitmix.create 3L in
  for _ = 1 to 100 do
    let s = "hello, wire" in
    Alcotest.(check bool) "differs" true (Corruptor.flip_byte rng s <> s)
  done;
  Alcotest.(check string) "empty unchanged" "" (Corruptor.flip_byte rng "")

let test_corrupt_message_targets_payloads () =
  let rng = Splitmix.create 3L in
  let some m = Corruptor.corrupt_message rng m <> None in
  Alcotest.(check bool) "obj msg" true
    (some (Message.Obj_msg { envelope = "<e/>"; tdescs = []; assemblies = [] }));
  Alcotest.(check bool) "tdesc reply with body" true
    (some
       (Message.Tdesc_reply { type_name = "t"; desc = Some "<d/>"; token = 1 }));
  Alcotest.(check bool) "negative tdesc reply untouched" false
    (some (Message.Tdesc_reply { type_name = "t"; desc = None; token = 1 }));
  Alcotest.(check bool) "gossip body" true
    (some (Message.Gossip { kind = "digest"; body = "token\t1\n" }));
  Alcotest.(check bool) "requests untouched" false
    (some (Message.Tdesc_request { type_name = "t"; token = 1; binary_ok = false; version = 0 }))

(* ---------------------------------------------------------------- *)
(* Invariant checks are data-in, violations-out                       *)
(* ---------------------------------------------------------------- *)

let test_invariant_units () =
  Alcotest.(check int) "conservation holds" 0
    (List.length
       (Invariant.conservation ~sent:5 ~delivered:3 ~rejected:1 ~failed:0
          ~net_lost:1));
  Alcotest.(check int) "conservation broken" 1
    (List.length
       (Invariant.conservation ~sent:5 ~delivered:3 ~rejected:1 ~failed:0
          ~net_lost:0));
  Alcotest.(check int) "exactly once holds" 0
    (List.length (Invariant.exactly_once ~delivered_keys:[ "a"; "b" ]));
  Alcotest.(check int) "duplicate apply caught" 1
    (List.length (Invariant.exactly_once ~delivered_keys:[ "a"; "b"; "a" ]));
  Alcotest.(check int) "mangled value caught" 1
    (List.length
       (Invariant.no_mangle
          ~expected:[ ("k", ("ada", 36)) ]
          ~got:[ ("k", ("adb", 36)) ]));
  Alcotest.(check int) "trap delivery caught" 1
    (List.length
       (Invariant.trap_never_delivered ~trap_keys:[ "t" ]
          ~delivered_keys:[ "t" ]));
  Alcotest.(check int) "verdict flip caught" 1
    (List.length
       (Invariant.verdict_stability [ ("x", "conformant", "not-conformant") ]));
  Alcotest.(check int) "suspect member caught" 1
    (List.length
       (Invariant.membership_converged [ ("n0", [ ("n1", "suspect") ]) ]));
  Alcotest.(check int) "count divergence caught" 1
    (List.length (Invariant.metrics_match_trace [ ("obj", 4, 5) ]))

(* ---------------------------------------------------------------- *)
(* Shrinking                                                          *)
(* ---------------------------------------------------------------- *)

let test_shrink_candidates_are_smaller () =
  let plan =
    {
      Fault_plan.windows =
        List.init 5 (fun i ->
            w (float_of_int (i * 10))
              (float_of_int ((i * 10) + 5))
              Fault_plan.Any Fault_plan.Down);
    }
  in
  let cands = Fault_plan.shrink_candidates plan in
  Alcotest.(check bool) "has candidates" true (cands <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "strictly smaller" true
        (List.length c.Fault_plan.windows < 5))
    cands;
  Alcotest.(check int) "singleton has none" 0
    (List.length
       (Fault_plan.shrink_candidates
          { Fault_plan.windows = [ w 0. 1. Fault_plan.Any Fault_plan.Down ] }))

let test_shrink_finds_minimal_failing_plan () =
  (* Six windows, one culprit: greedy ddmin must isolate it, and every
     intermediate plan it accepts must still fail. *)
  let culprit = w 30. 40. Fault_plan.Any (Fault_plan.Corrupt 0.9) in
  let noise i =
    w (float_of_int (i * 10))
      (float_of_int ((i * 10) + 5))
      Fault_plan.Any (Fault_plan.Loss 0.1)
  in
  let plan =
    { Fault_plan.windows = List.init 5 noise @ [ culprit ] }
  in
  let checked = ref 0 in
  let fails p =
    incr checked;
    List.exists
      (fun x -> match x.Fault_plan.w_act with
        | Fault_plan.Corrupt _ -> true
        | _ -> false)
      p.Fault_plan.windows
  in
  let minimal = Fault_plan.shrink ~fails plan in
  Alcotest.(check bool) "shrinker ran" true (!checked > 0);
  Alcotest.(check int) "down to one window" 1
    (List.length minimal.Fault_plan.windows);
  Alcotest.(check bool) "it is the culprit" true
    (List.hd minimal.Fault_plan.windows = culprit);
  Alcotest.(check bool) "still failing" true (fails minimal)

(* ---------------------------------------------------------------- *)
(* Chaos integration                                                  *)
(* ---------------------------------------------------------------- *)

let no_violations what (r : Chaos.run_result) =
  Alcotest.(check int)
    (what ^ ": no invariant violations")
    0
    (List.length r.Chaos.r_violations)

(* A saturating corruption window over the whole run, against the full
   cluster (ARQ + frame integrity + digests + mirrors): corruption is
   detected — never absorbed — and every conformant object still lands. *)
let test_corruption_detected_and_recovered () =
  let horizon = 2000. in
  let plan =
    {
      Fault_plan.windows =
        [ w 0. horizon Fault_plan.Any (Fault_plan.Corrupt 0.5) ];
    }
  in
  let config =
    {
      Chaos.c_profile = Fault_plan.Byzantine_wire;
      c_cluster = true;
      c_objects = 8;
      c_frame_integrity = true;
      c_wire = false;
      c_upgrade = false;
    }
  in
  let r = Chaos.run_one ~plan config ~seed:1234L in
  no_violations "byzantine cluster" r;
  Alcotest.(check bool) "corruption actually hit the wire" true
    (r.Chaos.r_corrupted_frames > 0);
  Alcotest.(check bool) "corruption detected somewhere" true
    (r.Chaos.r_corrupt_rejects > 0 || r.Chaos.r_integrity_drops > 0);
  (* 6 of 8 objects are conformant; the other 2 must be rejected as
     traps, not lost to corruption. *)
  Alcotest.(check int) "all conformant objects delivered" 6
    r.Chaos.r_delivered;
  Alcotest.(check int) "traps rejected" 2 r.Chaos.r_rejected

(* Without the frame filter the corrupt envelope reaches the peer, whose
   own digest check classifies it — detection without recovery. *)
let test_corruption_detected_at_peer_without_frame_filter () =
  let plan =
    {
      Fault_plan.windows =
        [ w 0. 2000. Fault_plan.Any (Fault_plan.Corrupt 0.5) ];
    }
  in
  let config =
    {
      Chaos.c_profile = Fault_plan.Byzantine_wire;
      c_cluster = false;
      c_objects = 8;
      c_frame_integrity = false;
      c_wire = false;
      c_upgrade = false;
    }
  in
  let r = Chaos.run_one ~plan config ~seed:99L in
  no_violations "no frame filter" r;
  Alcotest.(check bool) "peer-level rejections recorded" true
    (r.Chaos.r_corrupt_rejects > 0);
  Alcotest.(check bool) "corrupt objects are failed, not mangled" true
    (r.Chaos.r_failed > 0);
  Alcotest.(check bool) "some delivery still happened" true
    (r.Chaos.r_delivered > 0)

let test_chaos_run_deterministic () =
  let config = Chaos.default_config in
  let r1 = Chaos.run_one config ~seed:777L in
  let r2 = Chaos.run_one config ~seed:777L in
  Alcotest.(check bool) "same seed, same world" true
    (r1.Chaos.r_delivered = r2.Chaos.r_delivered
    && r1.Chaos.r_retransmissions = r2.Chaos.r_retransmissions
    && r1.Chaos.r_plan = r2.Chaos.r_plan
    && r1.Chaos.r_corrupted_frames = r2.Chaos.r_corrupted_frames)

(* The 200-schedule smoke the CI also runs: every invariant green. *)
let test_chaos_smoke_200 () =
  let s =
    Chaos.run_many
      { Chaos.default_config with c_profile = Fault_plan.Lossy }
      ~runs:200 ~seed:42L
  in
  Alcotest.(check int) "no failing schedules" 0 (List.length s.Chaos.s_failures);
  Alcotest.(check int) "all conformant objects delivered" (200 * 6)
    s.Chaos.s_delivered

let test_chaos_cluster_profiles_smoke () =
  List.iter
    (fun profile ->
      let s =
        Chaos.run_many
          {
            Chaos.c_profile = profile;
            c_cluster = true;
            c_objects = 8;
            c_frame_integrity = true;
            c_wire = false;
            c_upgrade = false;
          }
          ~runs:25 ~seed:7L
      in
      Alcotest.(check int)
        (Fault_plan.profile_name profile ^ ": no failing schedules")
        0
        (List.length s.Chaos.s_failures))
    [ Fault_plan.Lossy; Fault_plan.Flaky; Fault_plan.Byzantine_wire ]

(* Wire-efficiency features under faults: handles + batching + binary
   tdescs on, receiver handle tables dropped mid-run. The run must
   degrade through renegotiation (NAK -> re-bind -> reprocess), and the
   usual invariants — conservation, no mangling, trap rejection — must
   hold exactly as in classic mode. *)
let test_chaos_wire_renegotiates () =
  let config = { Chaos.default_config with c_wire = true } in
  let r = Chaos.run_one config ~seed:777L in
  no_violations "wire mode" r;
  Alcotest.(check bool) "table drop forced renegotiation" true
    (r.Chaos.r_renegotiations > 0);
  Alcotest.(check int) "all conformant objects delivered" 6
    r.Chaos.r_delivered

let test_chaos_wire_profiles_smoke () =
  List.iter
    (fun (cluster, profile) ->
      let s =
        Chaos.run_many
          {
            Chaos.c_profile = profile;
            c_cluster = cluster;
            c_objects = 8;
            c_frame_integrity = true;
            c_wire = true;
            c_upgrade = false;
          }
          ~runs:25 ~seed:21L
      in
      Alcotest.(check int)
        (Fault_plan.profile_name profile ^ ": no failing wire schedules")
        0
        (List.length s.Chaos.s_failures))
    [ (false, Fault_plan.Lossy); (true, Fault_plan.Byzantine_wire) ]

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "window boundaries" `Quick test_window_boundaries;
          Alcotest.test_case "selectors" `Quick test_selectors;
          Alcotest.test_case "horizon" `Quick test_horizon;
          Alcotest.test_case "hooks compile" `Quick test_hooks_compile;
          Alcotest.test_case "profile generation" `Quick
            test_random_plan_profiles;
        ] );
      ( "injection",
        [
          Alcotest.test_case "loss window" `Quick test_loss_window_counts_drops;
          Alcotest.test_case "duplicate window" `Quick
            test_duplicate_window_counts_copies;
          Alcotest.test_case "down window self-heals" `Quick
            test_down_window_heals_itself;
        ] );
      ( "corruptor",
        [
          Alcotest.test_case "flip changes bytes" `Quick
            test_flip_byte_changes_string;
          Alcotest.test_case "targets payloads only" `Quick
            test_corrupt_message_targets_payloads;
        ] );
      ( "invariants",
        [ Alcotest.test_case "unit checks" `Quick test_invariant_units ] );
      ( "shrink",
        [
          Alcotest.test_case "candidates smaller" `Quick
            test_shrink_candidates_are_smaller;
          Alcotest.test_case "isolates the culprit" `Quick
            test_shrink_finds_minimal_failing_plan;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "corruption detected and recovered" `Quick
            test_corruption_detected_and_recovered;
          Alcotest.test_case "peer-level detection sans frame filter" `Quick
            test_corruption_detected_at_peer_without_frame_filter;
          Alcotest.test_case "deterministic" `Quick test_chaos_run_deterministic;
          Alcotest.test_case "200-schedule smoke" `Slow test_chaos_smoke_200;
          Alcotest.test_case "cluster profiles smoke" `Slow
            test_chaos_cluster_profiles_smoke;
          Alcotest.test_case "wire mode renegotiates" `Quick
            test_chaos_wire_renegotiates;
          Alcotest.test_case "wire profiles smoke" `Slow
            test_chaos_wire_profiles_smoke;
        ] );
    ]
