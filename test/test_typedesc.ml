(* Tests for type descriptions (§5): creation by introspection, XML codec,
   equality / equivalence / fingerprints, resolvers. *)

open Pti_cts
module Td = Pti_typedesc.Type_description
module Demo = Pti_demo.Demo_types
module B = Builder

let registry =
  Demo.fresh_registry
    [ Demo.news_assembly (); Demo.social_assembly (); Demo.typo_assembly () ]

let person_desc () = Td.of_class (Registry.find_exn registry Demo.news_person)

let test_of_class_projects_structure () =
  let d = person_desc () in
  Alcotest.(check string) "name" "Person" d.Td.ty_name;
  Alcotest.(check (list string)) "namespace" [ "newsw" ] d.Td.ty_namespace;
  Alcotest.(check string) "assembly" "news-asm" d.Td.ty_assembly;
  Alcotest.(check int) "fields" 4 (List.length d.Td.ty_fields);
  Alcotest.(check int) "ctors" 1 (List.length d.Td.ty_ctors);
  Alcotest.(check bool) "methods present" true (List.length d.Td.ty_methods >= 10)

let test_qualified_name () =
  Alcotest.(check string) "qname" Demo.news_person
    (Td.qualified_name (person_desc ()))

let test_no_recursion_in_description () =
  (* §5.2: descriptions reference other types by name only. This is a
     structural property of the type itself (fields are Ty.t), asserted
     here by checking the XML stays flat. *)
  let x = Td.to_xml (person_desc ()) in
  let rec depth n node =
    match node with
    | Pti_xml.Xml.Element (_, _, cs) ->
        List.fold_left (fun acc c -> max acc (depth (n + 1) c)) n cs
    | _ -> n
  in
  Alcotest.(check bool) "flat (<=3 levels)" true (depth 1 x <= 3)

let test_xml_roundtrip_all_demo_types () =
  List.iter
    (fun cd ->
      let d = Td.of_class cd in
      match Td.of_xml_string (Td.to_xml_string d) with
      | Ok d' ->
          Alcotest.(check bool)
            ("roundtrip " ^ Td.qualified_name d)
            true (d = d')
      | Error msg ->
          Alcotest.failf "roundtrip %s failed: %s" (Td.qualified_name d) msg)
    (Registry.all registry)

let test_xml_pretty_parses_too () =
  let d = person_desc () in
  match Td.of_xml_string (Td.to_xml_string ~pretty:true d) with
  | Ok d' ->
      Alcotest.(check string) "same fingerprint" (Td.fingerprint d)
        (Td.fingerprint d')
  | Error msg -> Alcotest.failf "pretty parse failed: %s" msg

let test_of_xml_rejects_malformed () =
  List.iter
    (fun s ->
      match Td.of_xml_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject: %s" s)
    [
      "";
      "<notATypeDescription/>";
      "<typeDescription name=\"X\"/>";
      (* missing guid etc. *)
      "<typeDescription name=\"X\" namespace=\"\" guid=\"nope\" \
       kind=\"class\" assembly=\"a\"/>";
      "<typeDescription name=\"X\" namespace=\"\" \
       guid=\"00000000-0000-0000-0000-000000000001\" kind=\"sometimes\" \
       assembly=\"a\"/>";
    ]

let test_equals_is_guid_identity () =
  let d1 = person_desc () in
  let d2 = Td.of_class (Registry.find_exn registry Demo.social_person) in
  Alcotest.(check bool) "same guid equal" true (Td.equals d1 d1);
  Alcotest.(check bool) "different guid unequal" false (Td.equals d1 d2)

let test_fingerprint_ignores_identity_and_order () =
  let d = person_desc () in
  (* Changing guid/assembly does not change the fingerprint. *)
  let rng = Pti_util.Splitmix.create 5L in
  let d2 =
    { d with Td.ty_guid = Pti_util.Guid.make rng; ty_assembly = "other" }
  in
  Alcotest.(check string) "identity-free" (Td.fingerprint d) (Td.fingerprint d2);
  (* Member order does not matter. *)
  let d3 = { d with Td.ty_methods = List.rev d.Td.ty_methods } in
  Alcotest.(check string) "order-free" (Td.fingerprint d) (Td.fingerprint d3);
  (* Structure does matter. *)
  let d4 = { d with Td.ty_fields = List.tl d.Td.ty_fields } in
  Alcotest.(check bool) "structure-sensitive" false
    (Td.fingerprint d = Td.fingerprint d4)

let test_equivalent_across_assemblies () =
  let mk asm =
    B.class_ ~ns:[ "eqv" ] ~assembly:asm "Pair"
    |> B.property "left" Ty.Int
    |> B.property "right" Ty.Int
    |> B.build
  in
  let a = Td.of_class (mk "one") and b = Td.of_class (mk "two") in
  Alcotest.(check bool) "equivalent" true (Td.equivalent a b);
  Alcotest.(check bool) "not equal" false (Td.equals a b)

let test_to_class_strips_everything () =
  let cd = Td.to_class (person_desc ()) in
  Alcotest.(check bool) "no bodies" true
    (List.for_all (fun m -> m.Meta.m_body = None) cd.Meta.td_methods);
  Alcotest.(check bool) "validates" true (Meta.validate cd = Ok ())

let test_resolvers () =
  let r = Td.registry_resolver registry in
  Alcotest.(check bool) "registry hit" true (r Demo.news_person <> None);
  Alcotest.(check bool) "registry miss" true (r "no.Such" = None);
  let t = Td.table_resolver [ person_desc () ] in
  Alcotest.(check bool) "table ci hit" true (t "NEWSW.PERSON" <> None);
  let chained = Td.chain t (fun _ -> Some (person_desc ())) in
  Alcotest.(check bool) "chain falls back" true (chained "anything" <> None)

let test_size_bytes_positive_and_stable () =
  let d = person_desc () in
  let s1 = Td.size_bytes d and s2 = Td.size_bytes d in
  Alcotest.(check bool) "positive" true (s1 > 0);
  Alcotest.(check int) "stable" s1 s2

let prop_fingerprint_shuffle_invariant =
  QCheck.Test.make ~name:"fingerprint invariant under member shuffles"
    ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Pti_util.Splitmix.create (Int64.of_int seed) in
      let d = person_desc () in
      let shuffle l =
        let a = Array.of_list l in
        Pti_util.Splitmix.shuffle rng a;
        Array.to_list a
      in
      let d' =
        {
          d with
          Td.ty_methods = shuffle d.Td.ty_methods;
          ty_fields = shuffle d.Td.ty_fields;
          ty_interfaces = shuffle d.Td.ty_interfaces;
        }
      in
      Td.fingerprint d = Td.fingerprint d')

let prop_xml_roundtrip_preserves_fingerprint =
  QCheck.Test.make ~name:"xml roundtrip preserves fingerprint" ~count:20
    QCheck.(int_bound (List.length (Registry.all registry) - 1))
    (fun i ->
      let cd = List.nth (Registry.all registry) i in
      let d = Td.of_class cd in
      match Td.of_xml_string (Td.to_xml_string d) with
      | Ok d' -> Td.fingerprint d = Td.fingerprint d'
      | Error _ -> false)

(* --------------------------- binary codec -------------------------- *)

let test_binary_roundtrip_all_demo_types () =
  List.iter
    (fun cd ->
      let d = Td.of_class cd in
      let s = Td.to_binary_string d in
      Alcotest.(check bool) "tagged binary" true (Td.is_binary s);
      Alcotest.(check bool) "smaller than xml" true
        (String.length s < String.length (Td.to_xml_string d));
      match Td.of_binary_string s with
      | Ok d' ->
          Alcotest.(check bool)
            ("binary roundtrip " ^ Td.qualified_name d)
            true
            (d = d')
      | Error e -> Alcotest.failf "%s: %s" (Td.qualified_name d) e)
    (Registry.all registry)

let test_of_wire_string_dispatches () =
  let d = person_desc () in
  (match Td.of_wire_string (Td.to_binary_string d) with
  | Ok d' -> Alcotest.(check bool) "binary wire" true (d = d')
  | Error e -> Alcotest.failf "binary: %s" e);
  match Td.of_wire_string (Td.to_xml_string d) with
  | Ok d' ->
      Alcotest.(check string) "xml wire" (Td.fingerprint d) (Td.fingerprint d')
  | Error e -> Alcotest.failf "xml: %s" e

let prop_binary_flip_always_detected =
  QCheck.Test.make ~name:"binary tdesc: any single byte flip is detected"
    ~count:300
    QCheck.(pair (int_bound 100_000) (int_range 1 255))
    (fun (pos, x) ->
      let s = Td.to_binary_string (person_desc ()) in
      let pos = pos mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
      match Td.of_binary_string (Bytes.to_string b) with
      | Error _ -> true
      | Ok d' ->
          (* A flip inside the magic makes [of_wire_string] fall back to
             the XML parser, which must also reject; a flip that decodes
             is only acceptable if nothing observable changed (cannot
             happen with a checksummed body, but keep the property
             honest). *)
          d' = person_desc ())

let () =
  Alcotest.run "typedesc"
    [
      ( "creation",
        [
          Alcotest.test_case "of_class structure" `Quick
            test_of_class_projects_structure;
          Alcotest.test_case "qualified name" `Quick test_qualified_name;
          Alcotest.test_case "non-recursive" `Quick
            test_no_recursion_in_description;
          Alcotest.test_case "to_class" `Quick test_to_class_strips_everything;
        ] );
      ( "xml",
        [
          Alcotest.test_case "roundtrip all demo types" `Quick
            test_xml_roundtrip_all_demo_types;
          Alcotest.test_case "pretty parses" `Quick test_xml_pretty_parses_too;
          Alcotest.test_case "malformed rejected" `Quick
            test_of_xml_rejects_malformed;
          Alcotest.test_case "size" `Quick test_size_bytes_positive_and_stable;
        ] );
      ( "identity",
        [
          Alcotest.test_case "equals = guid" `Quick
            test_equals_is_guid_identity;
          Alcotest.test_case "fingerprint" `Quick
            test_fingerprint_ignores_identity_and_order;
          Alcotest.test_case "equivalence" `Quick
            test_equivalent_across_assemblies;
        ] );
      ("resolvers", [ Alcotest.test_case "kinds" `Quick test_resolvers ]);
      ( "binary",
        [
          Alcotest.test_case "roundtrip all demo types" `Quick
            test_binary_roundtrip_all_demo_types;
          Alcotest.test_case "of_wire_string dispatches" `Quick
            test_of_wire_string_dispatches;
          QCheck_alcotest.to_alcotest prop_binary_flip_always_detected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_fingerprint_shuffle_invariant;
          QCheck_alcotest.to_alcotest prop_xml_roundtrip_preserves_fingerprint;
        ] );
    ]
