(* Tests of the pti_cluster subsystem: membership, anti-entropy gossip,
   replicated repositories and mirror failover — plus the repository
   determinism and peer-knob satellites that back them. *)

open Pti_cts
module Peer = Pti_core.Peer
module Message = Pti_core.Message
module Repository = Pti_core.Repository
module Net = Pti_net.Net
module Sim = Pti_net.Sim
module Stats = Pti_net.Stats
module Metrics = Pti_obs.Metrics
module Proxy = Pti_proxy.Dynamic_proxy
module Demo = Pti_demo.Demo_types
module Cluster = Pti_cluster.Cluster
module Node = Pti_cluster.Node
module Digest = Pti_cluster.Digest

let social_asm = "social-asm"

let make_net () = Net.create ~seed:7L ()

let get_string = function
  | Value.Vstring s -> s
  | v -> Alcotest.failf "expected a string, got %s" (Value.type_name v)

(* ---------------------------------------------------------------- *)
(* Digest codec                                                       *)
(* ---------------------------------------------------------------- *)

let test_digest_roundtrip () =
  let m =
    {
      Digest.g_token = 42;
      g_types = [ ("news.Person", "0123"); ("social.Event", "4567") ];
      g_chains = [ ("wl-0", [ (1, "0123"); (2, "89ab") ]) ];
      g_paths = [ ("asm://a/x", "x"); ("asm://b/x", "x") ];
      g_members = [ "a"; "b"; "c" ];
      g_descs = [ "<td>\nmultiline\tbody</td>"; "" ];
    }
  in
  match Digest.decode (Digest.encode m) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok m' ->
      Alcotest.(check int) "token" m.Digest.g_token m'.Digest.g_token;
      Alcotest.(check (list (pair string string)))
        "types" m.Digest.g_types m'.Digest.g_types;
      Alcotest.(check (list (pair string string)))
        "paths" m.Digest.g_paths m'.Digest.g_paths;
      Alcotest.(check (list string)) "members" m.Digest.g_members
        m'.Digest.g_members;
      Alcotest.(check (list string)) "descs" m.Digest.g_descs
        m'.Digest.g_descs

let test_digest_decode_total () =
  List.iter
    (fun junk ->
      match Digest.decode junk with
      | Ok _ | Error _ -> ())
    [ "garbage"; "token\tnope"; "desc\t-3\n"; "desc\t100000\nshort"; "\t\t\t" ]

(* ---------------------------------------------------------------- *)
(* Membership                                                         *)
(* ---------------------------------------------------------------- *)

let addrs3 = [ "n1"; "n2"; "n3" ]

let test_membership_bootstrap () =
  let net = make_net () in
  let c = Cluster.create ~net addrs3 in
  let n1 = Cluster.node c "n1" in
  Alcotest.(check (list string)) "roster minus self" [ "n2"; "n3" ]
    (Node.alive n1);
  Alcotest.(check (option bool)) "no self entry" None
    (Option.map (fun _ -> true) (Node.status n1 "n1"))

let test_crash_detected_then_heal_recovers () =
  let net = make_net () in
  let c = Cluster.create ~net ~probe_timeout_ms:100. [ "n1"; "n2" ] in
  let n1 = Cluster.node c "n1" in
  Cluster.run_rounds c 2;
  Alcotest.(check (option string)) "alive while traffic flows"
    (Some "alive")
    (Option.map Node.status_name (Node.status n1 "n2"));
  Cluster.crash c "n2";
  (* Two unanswered probes: alive -> suspect -> dead. *)
  Cluster.run_rounds c 1;
  Alcotest.(check (option string)) "suspect after one silent probe"
    (Some "suspect")
    (Option.map Node.status_name (Node.status n1 "n2"));
  Cluster.run_rounds c 1;
  Alcotest.(check (option string)) "dead after two" (Some "dead")
    (Option.map Node.status_name (Node.status n1 "n2"));
  (* Heal: only direct contact resurrects. *)
  Cluster.heal c "n2";
  Cluster.run_rounds c 2;
  Alcotest.(check (option string)) "alive again after heal" (Some "alive")
    (Option.map Node.status_name (Node.status n1 "n2"))

(* ---------------------------------------------------------------- *)
(* Gossip dissemination                                               *)
(* ---------------------------------------------------------------- *)

let test_gossip_spreads_types_and_paths () =
  let net = make_net () in
  let c = Cluster.create ~net ~factor:1 addrs3 in
  Node.publish (Cluster.node c "n1") (Demo.social_assembly ());
  (* Nobody but n1 knows the social types or where their code lives. *)
  Alcotest.(check (option bool)) "n3 ignorant before gossip" None
    (Option.map
       (fun _ -> true)
       (Peer.local_description (Cluster.peer c "n3") Demo.social_person));
  Cluster.run_rounds c 6;
  let n3 = Cluster.node c "n3" in
  Alcotest.(check bool) "n3 knows the description" true
    (Peer.local_description (Cluster.peer c "n3") Demo.social_person <> None);
  Alcotest.(check (list string)) "n3 knows the download path"
    [ "asm://n1/" ^ social_asm ]
    (Node.known_mirrors n3 social_asm);
  Alcotest.(check bool) "rounds counted" true (Node.gossip_rounds n3 >= 6);
  Alcotest.(check bool) "digest bytes counted" true
    (Node.digest_bytes n3 > 0);
  (* The exchange round-trips also feed RTT estimates somewhere. *)
  Alcotest.(check bool) "some rtt observed" true
    (List.exists
       (fun n -> Stats.rtts (Node.stats n) <> [])
       (Cluster.nodes c))

let test_gossip_is_deterministic () =
  let run () =
    let net = make_net () in
    let c = Cluster.create ~net ~factor:1 addrs3 in
    Node.publish (Cluster.node c "n1") (Demo.social_assembly ());
    Cluster.run_rounds c 4;
    ( Stats.bytes (Net.stats net) Stats.Gossip,
      List.map (fun n -> Node.digest_bytes n) (Cluster.nodes c) )
  in
  Alcotest.(check (pair int (list int))) "identical gossip traffic"
    (run ()) (run ())

(* ---------------------------------------------------------------- *)
(* Replication                                                        *)
(* ---------------------------------------------------------------- *)

let test_placement_deterministic_and_sized () =
  let net = make_net () in
  let c = Cluster.create ~net [ "n1"; "n2"; "n3"; "n4" ] in
  let n1 = Cluster.node c "n1" in
  let p2 = Node.placement n1 ~assembly:"some-asm" 2 in
  Alcotest.(check int) "k replicas" 2 (List.length p2);
  Alcotest.(check (list string)) "stable order" p2
    (Node.placement n1 ~assembly:"some-asm" 2);
  Alcotest.(check bool) "never self" true (not (List.mem "n1" p2));
  (* Dead members are skipped. *)
  List.iter (fun a -> Node.mark n1 a Node.Dead) p2;
  let p2' = Node.placement n1 ~assembly:"some-asm" 2 in
  Alcotest.(check bool) "avoids the dead" true
    (List.for_all (fun a -> not (List.mem a p2)) p2')

let test_publish_replicates () =
  let net = make_net () in
  let c = Cluster.create ~net ~factor:2 addrs3 in
  let n1 = Cluster.node c "n1" in
  let holder =
    match Node.placement n1 ~assembly:social_asm 1 with
    | [ h ] -> h
    | l -> Alcotest.failf "expected 1 holder, got %d" (List.length l)
  in
  Node.publish n1 (Demo.social_assembly ());
  Cluster.run c;
  (* The holder serves the bytes without loading the code. *)
  let holder_repo = Peer.repository (Cluster.peer c holder) in
  Alcotest.(check bool) "mirror copy served" true
    (Repository.find holder_repo
       ~path:(Repository.path_for ~host:holder ~assembly:social_asm)
    <> None);
  Alcotest.(check bool) "mirror did not load the code" true
    (Registry.find (Peer.registry (Cluster.peer c holder)) Demo.social_person
    = None);
  Alcotest.(check int) "publisher knows both mirrors" 2
    (List.length (Node.known_mirrors n1 social_asm))

(* ---------------------------------------------------------------- *)
(* Mirror ranking                                                     *)
(* ---------------------------------------------------------------- *)

let test_mirror_ranking_policy () =
  let net = make_net () in
  let c = Cluster.create ~net [ "n1"; "n2"; "n3" ] in
  let n1 = Cluster.node c "n1" in
  (* n2 and n3 each serve a mirror of news-asm; gossip teaches n1 both. *)
  List.iter
    (fun host ->
      Peer.serve_assembly (Cluster.peer c host) (Demo.news_assembly ()))
    [ "n2"; "n3" ];
  Cluster.run_rounds c 6;
  Alcotest.(check (list string)) "all mirrors known"
    [ "asm://n2/news-asm"; "asm://n3/news-asm" ]
    (Node.known_mirrors n1 "news-asm");
  (* A healthy advertised host leads the candidate order. *)
  Alcotest.(check (list string)) "healthy advertised first"
    [ "asm://n2/news-asm"; "asm://n3/news-asm" ]
    (Node.rank n1 ~assembly:"news-asm" ~advertised:"asm://n2/news-asm");
  (* A dead advertised host becomes the last resort. *)
  Node.mark n1 "n2" Node.Dead;
  Alcotest.(check (list string)) "dead advertised demoted"
    [ "asm://n3/news-asm"; "asm://n2/news-asm" ]
    (Node.rank n1 ~assembly:"news-asm" ~advertised:"asm://n2/news-asm");
  (* With a fresh advertised path, the suspect mirror ranks below the
     healthy one. *)
  Node.mark n1 "n2" Node.Suspect;
  Alcotest.(check (list string)) "suspect ranked below alive"
    [ "asm://n3/news-asm"; "asm://n2/news-asm" ]
    (Node.rank n1 ~assembly:"news-asm" ~advertised:"asm://n9/news-asm"
    |> List.filter (fun p -> p <> "asm://n9/news-asm"))

(* ---------------------------------------------------------------- *)
(* Fetch pipeline knobs                                               *)
(* ---------------------------------------------------------------- *)

let test_fetch_retries_and_backoff () =
  (* The provider host vanishes just as the code download starts: the
     pipeline retries under backoff, then gives up — counters tell the
     story. *)
  let net = Net.create ~seed:8L () in
  let sender = Peer.create ~net "sender" in
  let receiver =
    Peer.create ~net ~request_timeout_ms:50. ~fetch_retries:2
      ~fetch_backoff_ms:10. "receiver"
  in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> Alcotest.fail "must not deliver without code");
  let alice =
    Demo.make_social_person (Peer.registry sender) ~name:"Alice" ~age:30
  in
  Peer.send_value sender ~dst:"receiver" alice;
  (* Envelope and description exchange land normally; the link dies the
     instant the first assembly request hits the wire. *)
  Net.on_send net (fun ~now:_ ~src:_ ~dst:_ ~category ~size:_ ~attempt:_ ->
      if category = Stats.Asm_request then
        Net.partition net "sender" "receiver");
  Net.run net;
  Alcotest.(check int) "three attempts on the wire" 3
    (Peer.fetch_attempts receiver);
  Alcotest.(check int) "two retries" 2 (Peer.fetch_retries receiver);
  Alcotest.(check int) "no mirrors, no failover" 0
    (Peer.fetch_failovers receiver);
  Alcotest.(check bool) "degraded to a load failure" true
    (List.exists
       (function Peer.Load_failed _ -> true | _ -> false)
       (Peer.events receiver))

let test_repository_find_by_name_deterministic () =
  let repo = Repository.create () in
  let asm = Demo.news_assembly () in
  (* Insert in an order unlike the lexicographic one. *)
  List.iter
    (fun p -> Repository.add repo ~path:p asm)
    [ "asm://zeta/news-asm"; "asm://alpha/news-asm"; "asm://mid/news-asm" ];
  (match Repository.find_by_name repo "news-asm" with
  | Some (path, _) ->
      Alcotest.(check string) "lexicographically smallest path"
        "asm://alpha/news-asm" path
  | None -> Alcotest.fail "assembly not found");
  Alcotest.(check (list string)) "all mirrors enumerated, sorted"
    [ "asm://alpha/news-asm"; "asm://mid/news-asm"; "asm://zeta/news-asm" ]
    (Repository.mirror_paths repo "news-asm");
  Alcotest.(check int) "entries are (path, name)" 3
    (List.length
       (List.filter
          (fun (_, n) -> n = "news-asm")
          (Repository.entries repo)))

(* ---------------------------------------------------------------- *)
(* The acceptance integration test: crash the origin, deliver anyway   *)
(* ---------------------------------------------------------------- *)

let test_failover_survives_origin_crash () =
  let net = make_net () in
  let metrics = Metrics.create () in
  let addrs = [ "origin"; "east"; "west"; "south" ] in
  let c =
    Cluster.create ~net ~metrics ~factor:2 ~request_timeout_ms:200.
      ~probe_timeout_ms:100. addrs
  in
  let origin = Cluster.node c "origin" in
  (* Where does the single replica land? Pick the relay and receiver
     among the hosts that do NOT hold a copy, so the receiver is forced
     through the failover path. *)
  let holder =
    match Node.placement origin ~assembly:social_asm 1 with
    | [ h ] -> h
    | l -> Alcotest.failf "expected one holder, got %d" (List.length l)
  in
  let relay, receiver =
    match List.filter (fun a -> a <> "origin" && a <> holder) addrs with
    | [ a; b ] -> (a, b)
    | l -> Alcotest.failf "expected two spares, got %d" (List.length l)
  in
  Node.publish origin (Demo.social_assembly ());
  (* Prime the relay: it receives one object from the origin, thereby
     loading the social code and remembering the origin's advertised
     download path — the path it will re-advertise after the crash. *)
  let relay_peer = Cluster.peer c relay in
  Peer.install_assembly relay_peer (Demo.news_assembly ());
  Peer.register_interest relay_peer ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  Demo.make_social_person (Peer.registry (Cluster.peer c "origin"))
    ~name:"Seed" ~age:1
  |> Peer.send_value (Cluster.peer c "origin") ~dst:relay;
  Cluster.run c;
  Alcotest.(check bool) "relay primed" true
    (Registry.find (Peer.registry relay_peer) Demo.social_person <> None);
  (* Gossip spreads the mirror paths (origin's and the holder's). *)
  Cluster.run_rounds c 5;
  let receiver_node = Cluster.node c receiver in
  Alcotest.(check bool) "receiver knows both mirrors" true
    (List.length (Node.known_mirrors receiver_node social_asm) >= 2);
  (* Crash the origin mid-run. No gossip round follows: the receiver
     still believes the origin alive, so the advertised path is tried
     first and MUST fail over. *)
  Cluster.crash c "origin";
  let receiver_peer = Cluster.peer c receiver in
  Peer.install_assembly receiver_peer (Demo.news_assembly ());
  let delivered = ref [] in
  Peer.register_interest receiver_peer ~interest:Demo.news_person
    (fun ~from:_ v -> delivered := v :: !delivered);
  let n_objects = 5 in
  for i = 1 to n_objects do
    Demo.make_social_person (Peer.registry relay_peer)
      ~name:(Printf.sprintf "p%d" i) ~age:i
    |> Peer.send_value relay_peer ~dst:receiver
  done;
  Cluster.run c;
  (* 100% conformant deliveries despite the dead origin... *)
  Alcotest.(check int) "all objects delivered" n_objects
    (List.length !delivered);
  let name =
    Proxy.invoke (Peer.registry receiver_peer) (List.hd !delivered)
      "getName" []
    |> get_string
  in
  Alcotest.(check bool) "delivery is conformant (proxy answers)" true
    (String.length name > 0);
  (* ...and it went through the failover machinery. *)
  Alcotest.(check bool) "failovers happened" true
    (Peer.fetch_failovers receiver_peer > 0);
  match Metrics.find metrics (Printf.sprintf "cluster.%s.fetch.failovers" receiver) with
  | Some (Metrics.Gauge g) ->
      Alcotest.(check bool) "cluster.*.fetch.failovers > 0" true (g > 0.)
  | _ -> Alcotest.fail "cluster fetch.failovers metric missing"

let () =
  Alcotest.run "pti_cluster"
    [
      ( "digest",
        [
          Alcotest.test_case "roundtrip" `Quick test_digest_roundtrip;
          Alcotest.test_case "decode is total" `Quick test_digest_decode_total;
        ] );
      ( "membership",
        [
          Alcotest.test_case "bootstrap roster" `Quick test_membership_bootstrap;
          Alcotest.test_case "crash detected, heal recovers" `Quick
            test_crash_detected_then_heal_recovers;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "spreads types and paths" `Quick
            test_gossip_spreads_types_and_paths;
          Alcotest.test_case "deterministic" `Quick test_gossip_is_deterministic;
        ] );
      ( "replication",
        [
          Alcotest.test_case "placement deterministic" `Quick
            test_placement_deterministic_and_sized;
          Alcotest.test_case "publish pushes mirrors" `Quick
            test_publish_replicates;
          Alcotest.test_case "ranking inputs" `Quick test_mirror_ranking_policy;
        ] );
      ( "fetch",
        [
          Alcotest.test_case "retries and backoff" `Quick
            test_fetch_retries_and_backoff;
          Alcotest.test_case "repository determinism" `Quick
            test_repository_find_by_name_deterministic;
          Alcotest.test_case "failover survives origin crash" `Quick
            test_failover_survives_origin_crash;
        ] );
    ]
