(* Tests for the implicit structural conformance rules (Figure 2). *)

open Pti_cts
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Config = Pti_conformance.Config
module Mapping = Pti_conformance.Mapping
module Demo = Pti_demo.Demo_types
module B = Builder
module E = Expr

let all_assemblies =
  [
    Demo.news_assembly (); Demo.social_assembly (); Demo.bogus_assembly ();
    Demo.trap_assembly (); Demo.typo_assembly (); Demo.printer_assembly ();
    Demo.printsvc_assembly ();
  ]

let registry = Demo.fresh_registry all_assemblies

let resolver = Td.registry_resolver registry

let desc name = Option.get (resolver name)

let make_checker ?config () = Checker.create ?config ~resolver ()

let check ?config ~actual ~interest () =
  Checker.check (make_checker ?config ())
    ~actual:(desc actual) ~interest:(desc interest)

let assert_conformant ?config ~actual ~interest () =
  match check ?config ~actual ~interest () with
  | Checker.Conformant m -> m
  | Checker.Not_conformant fs ->
      Alcotest.failf "%s should conform to %s but: %s" actual interest
        (String.concat "; "
           (List.map (fun f -> f.Checker.message) fs))

let assert_not_conformant ?config ~actual ~interest () =
  match check ?config ~actual ~interest () with
  | Checker.Not_conformant _ -> ()
  | Checker.Conformant _ ->
      Alcotest.failf "%s should NOT conform to %s" actual interest

(* ------------------------------------------------------------------ *)

let test_reflexive () =
  List.iter
    (fun name ->
      let m = assert_conformant ~actual:name ~interest:name () in
      Alcotest.(check bool) (name ^ " identity") true m.Mapping.identity)
    [ Demo.news_person; Demo.social_person; Demo.news_event; Demo.printer ]

let test_social_conforms_to_news () =
  let m =
    assert_conformant ~actual:Demo.social_person ~interest:Demo.news_person ()
  in
  Alcotest.(check bool) "not identity" false m.Mapping.identity;
  (* Every interest method got a translation. *)
  let interest_d = desc Demo.news_person in
  Alcotest.(check int)
    "all methods mapped"
    (List.length interest_d.Td.ty_methods)
    (List.length m.Mapping.methods);
  (* greet/0 maps to GREET. *)
  match Mapping.find m ~name:"greet" ~arity:0 with
  | None -> Alcotest.fail "no mapping for greet/0"
  | Some mm ->
      Alcotest.(check string) "maps to GREET" "greet"
        (String.lowercase_ascii mm.Mapping.mm_actual_name)

let test_news_conforms_to_social () =
  (* The relation is symmetric for this pair (structures mirror). *)
  ignore
    (assert_conformant ~actual:Demo.news_person ~interest:Demo.social_person ())

let test_events_conform () =
  ignore
    (assert_conformant ~actual:Demo.social_event ~interest:Demo.news_event ());
  ignore
    (assert_conformant ~actual:Demo.news_event ~interest:Demo.social_event ())

let test_printers_conform () =
  ignore (assert_conformant ~actual:Demo.printer ~interest:Demo.printsvc ());
  ignore (assert_conformant ~actual:Demo.printsvc ~interest:Demo.printer ())

let test_bogus_rejected () =
  assert_not_conformant ~actual:Demo.bogus_person ~interest:Demo.news_person ()

let test_trap_rejected_by_full_rules () =
  assert_not_conformant ~actual:Demo.trap_person ~interest:Demo.news_person ()

let test_trap_accepted_by_name_only () =
  ignore
    (assert_conformant ~config:Config.name_only ~actual:Demo.trap_person
       ~interest:Demo.news_person ())

let test_name_rule_strict () =
  (* Persom is one edit away: rejected at distance 0... *)
  assert_not_conformant ~actual:Demo.typo_person ~interest:Demo.news_person ();
  (* ...accepted at distance 1. *)
  ignore
    (assert_conformant
       ~config:(Config.relaxed ~distance:1)
       ~actual:Demo.typo_person ~interest:Demo.news_person ())

let test_wildcards () =
  (* An interest type named Pers* with matching structure. *)
  let iface =
    B.class_ ~ns:[ "query" ] ~assembly:"query-asm" "Pers_star"
    |> B.property "name" Ty.String
    |> B.build
  in
  (* Patch the name directly: '*' is not a valid identifier, so bypass the
     builder validation through the description layer. *)
  let d = Td.of_class iface in
  let d = { d with Td.ty_name = "Pers*"; ty_fields = []; ty_ctors = [] } in
  let checker = make_checker ~config:Config.with_wildcards () in
  (match Checker.check checker ~actual:(desc Demo.news_person) ~interest:d with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant fs ->
      Alcotest.failf "wildcard should match: %s"
        (String.concat "; " (List.map (fun f -> f.Checker.message) fs)));
  (* The same name does not conform without wildcards. *)
  let strict = make_checker () in
  match Checker.check strict ~actual:(desc Demo.news_person) ~interest:d with
  | Checker.Not_conformant _ -> ()
  | Checker.Conformant _ -> Alcotest.fail "wildcard matched under strict rules"

let test_permutation_in_mapping () =
  (* socialw ctor is (int, string) against newsw (string, int): covered via
     ctor aspect; method-level permutation exercised with bespoke types. *)
  let a =
    B.class_ ~ns:[ "pa" ] ~assembly:"pa" "Calc"
    |> B.method_ "combine"
         [ ("s", Ty.String); ("n", Ty.Int) ]
         Ty.String
         ~body:(E.Binop (E.Concat, E.Var "s", E.Call (E.Var "n", "toString", [])))
    |> B.build
  in
  let b =
    B.class_ ~ns:[ "pb" ] ~assembly:"pb" "calc"
    |> B.method_ "COMBINE"
         [ ("n", Ty.Int); ("s", Ty.String) ]
         Ty.String
         ~body:(E.Binop (E.Concat, E.Var "s", E.Call (E.Var "n", "toString", [])))
    |> B.build
  in
  let local = Td.table_resolver [ Td.of_class a; Td.of_class b ] in
  let checker = Checker.create ~resolver:local () in
  match
    Checker.check checker ~actual:(Td.of_class b) ~interest:(Td.of_class a)
  with
  | Checker.Not_conformant fs ->
      Alcotest.failf "permuted method should conform: %s"
        (String.concat "; " (List.map (fun f -> f.Checker.message) fs))
  | Checker.Conformant m -> (
      match Mapping.find m ~name:"combine" ~arity:2 with
      | None -> Alcotest.fail "no mapping for combine/2"
      | Some mm ->
          (* Actual position 0 (int) takes caller arg 1; position 1 takes 0. *)
          Alcotest.(check (array int))
            "permutation" [| 1; 0 |] mm.Mapping.mm_perm)

let test_permutations_disabled () =
  let a =
    B.class_ ~ns:[ "pa" ] ~assembly:"pa" "Calc"
    |> B.method_ "combine" [ ("s", Ty.String); ("n", Ty.Int) ] Ty.Void
    |> B.build
  in
  let b =
    B.class_ ~ns:[ "pb" ] ~assembly:"pb" "calc"
    |> B.method_ "combine" [ ("n", Ty.Int); ("s", Ty.String) ] Ty.Void
    |> B.build
  in
  let local = Td.table_resolver [ Td.of_class a; Td.of_class b ] in
  let config = { Config.strict with Config.consider_permutations = false } in
  let checker = Checker.create ~config ~resolver:local () in
  match
    Checker.check checker ~actual:(Td.of_class b) ~interest:(Td.of_class a)
  with
  | Checker.Not_conformant _ -> ()
  | Checker.Conformant _ ->
      Alcotest.fail "permutation matched with permutations disabled"

let test_explicit_conformance () =
  (* A class explicitly implementing an interface conforms to it via the
     explicit short-circuit even when structure alone would not suffice
     (the interface's method set is a subset). *)
  let iface =
    B.interface_ ~ns:[ "ex" ] ~assembly:"ex" "INamed"
    |> B.abstract_method "getName" [] Ty.String
    |> B.build
  in
  let impl =
    B.class_ ~ns:[ "ex" ] ~assembly:"ex" "Badge"
         ~interfaces:[ "ex.INamed" ]
    |> B.property "name" Ty.String
    |> B.field "serial" Ty.Int
    |> B.build
  in
  let local = Td.table_resolver [ Td.of_class iface; Td.of_class impl ] in
  let checker = Checker.create ~resolver:local () in
  Alcotest.(check bool)
    "explicit" true
    (Checker.explicit_conforms checker ~actual:(Td.of_class impl)
       ~interest:(Td.of_class iface));
  match
    Checker.check checker ~actual:(Td.of_class impl)
      ~interest:(Td.of_class iface)
  with
  | Checker.Conformant m ->
      Alcotest.(check bool) "identity" true m.Mapping.identity
  | Checker.Not_conformant _ -> Alcotest.fail "explicit subtype should conform"

let test_equivalence_identity_mapping () =
  (* Same structure registered under two GUIDs (different assemblies). *)
  let mk asm =
    B.class_ ~ns:[ "eq" ] ~assembly:asm "Point"
    |> B.property "x" Ty.Int
    |> B.property "y" Ty.Int
    |> B.build
  in
  let a = mk "asm-a" and b = mk "asm-b" in
  Alcotest.(check bool)
    "distinct guids" false
    (Pti_util.Guid.equal a.Meta.td_guid b.Meta.td_guid);
  let local = Td.table_resolver [ Td.of_class a; Td.of_class b ] in
  let checker = Checker.create ~resolver:local () in
  match
    Checker.check checker ~actual:(Td.of_class b) ~interest:(Td.of_class a)
  with
  | Checker.Conformant m ->
      Alcotest.(check bool) "identity" true m.Mapping.identity
  | Checker.Not_conformant _ -> Alcotest.fail "equivalent types should conform"

let test_supertype_aspect () =
  (* Interest has a superclass the actual lacks: rejected. *)
  let base =
    B.class_ ~ns:[ "sa" ] ~assembly:"sa" "Base"
    |> B.property "id" Ty.Int |> B.build
  in
  let derived =
    B.class_ ~ns:[ "sa" ] ~assembly:"sa" "Thing" ~super:"sa.Base"
    |> B.property "name" Ty.String
    |> B.build
  in
  let flat =
    B.class_ ~ns:[ "sb" ] ~assembly:"sb" "thing"
    |> B.property "name" Ty.String
    |> B.build
  in
  let local =
    Td.table_resolver
      [ Td.of_class base; Td.of_class derived; Td.of_class flat ]
  in
  let checker = Checker.create ~resolver:local () in
  (match
     Checker.check checker ~actual:(Td.of_class flat)
       ~interest:(Td.of_class derived)
   with
  | Checker.Not_conformant _ -> ()
  | Checker.Conformant _ -> Alcotest.fail "missing superclass should reject");
  (* With a conformant superclass on the actual side it passes. *)
  let base2 =
    B.class_ ~ns:[ "sb" ] ~assembly:"sb" "base"
    |> B.property "id" Ty.Int |> B.build
  in
  let flat2 =
    B.class_ ~ns:[ "sb" ] ~assembly:"sb" "thing2" ~super:"sb.base"
    |> B.property "name" Ty.String
    |> B.build
  in
  (* Rename so the name rule still matches "Thing". *)
  let flat2_d = { (Td.of_class flat2) with Td.ty_name = "thing" } in
  let local2 =
    Td.table_resolver
      [ Td.of_class base; Td.of_class derived; Td.of_class base2; flat2_d ]
  in
  let checker2 = Checker.create ~resolver:local2 () in
  match
    Checker.check checker2 ~actual:flat2_d ~interest:(Td.of_class derived)
  with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant fs ->
      Alcotest.failf "conformant superclass should pass: %s"
        (String.concat "; " (List.map (fun f -> f.Checker.message) fs))

let test_field_type_invariance () =
  (* Same field name, different (non-conformant) field type: rejected. *)
  let a =
    B.class_ ~ns:[ "fa" ] ~assembly:"fa" "Box"
    |> B.field "content" Ty.String |> B.build
  in
  let b =
    B.class_ ~ns:[ "fb" ] ~assembly:"fb" "box"
    |> B.field "content" Ty.Int |> B.build
  in
  let local = Td.table_resolver [ Td.of_class a; Td.of_class b ] in
  let checker = Checker.create ~resolver:local () in
  match
    Checker.check checker ~actual:(Td.of_class b) ~interest:(Td.of_class a)
  with
  | Checker.Not_conformant _ -> ()
  | Checker.Conformant _ -> Alcotest.fail "int field cannot match string field"

let test_modifier_mismatch () =
  let a =
    B.class_ ~ns:[ "ma" ] ~assembly:"ma" "Svc"
    |> B.method_ "ping" [] Ty.Int ~body:(E.int 1)
    |> B.build
  in
  let static_mods = { Meta.public_mods with Meta.static = true } in
  let b =
    B.class_ ~ns:[ "mb" ] ~assembly:"mb" "svc"
    |> B.method_ ~mods:static_mods "ping" [] Ty.Int ~body:(E.int 1)
    |> B.build
  in
  let local = Td.table_resolver [ Td.of_class a; Td.of_class b ] in
  let checker = Checker.create ~resolver:local () in
  (match
     Checker.check checker ~actual:(Td.of_class b) ~interest:(Td.of_class a)
   with
  | Checker.Not_conformant _ -> ()
  | Checker.Conformant _ -> Alcotest.fail "static mismatch should reject");
  (* And passes when modifier checking is off. *)
  let config = { Config.strict with Config.check_modifiers = false } in
  let lax = Checker.create ~config ~resolver:local () in
  match Checker.check lax ~actual:(Td.of_class b) ~interest:(Td.of_class a) with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant _ -> Alcotest.fail "should pass without modifiers"

let test_ambiguity_policies () =
  (* Within one class, case-insensitive duplicate method names are invalid,
     so ambiguity only arises under a relaxed name distance: the interest's
     [pick] matches both [pica] (distance 1) and [pick] (distance 0). *)
  let a =
    B.class_ ~ns:[ "aa" ] ~assembly:"aa" "Chooser"
    |> B.method_ "pick" [ ("x", Ty.Int) ] Ty.Int ~body:(E.Var "x")
    |> B.build
  in
  let b =
    B.class_ ~ns:[ "ab" ] ~assembly:"ab" "chooser"
    |> B.method_ "pica" [ ("x", Ty.Int) ] Ty.Int ~body:(E.Var "x")
    |> B.method_ "pick" [ ("y", Ty.Int) ] Ty.Int
         ~body:(E.Binop (E.Add, E.Var "y", E.int 1))
    |> B.build
  in
  let local = Td.table_resolver [ Td.of_class a; Td.of_class b ] in
  let relaxed = Config.relaxed ~distance:1 in
  let first = Checker.create ~config:relaxed ~resolver:local () in
  (match
     Checker.check first ~actual:(Td.of_class b) ~interest:(Td.of_class a)
   with
  | Checker.Conformant m ->
      let mm = Option.get (Mapping.find m ~name:"pick" ~arity:1) in
      Alcotest.(check string) "first match wins" "pica"
        mm.Mapping.mm_actual_name
  | Checker.Not_conformant _ -> Alcotest.fail "first-match should conform");
  let reject =
    Checker.create
      ~config:{ relaxed with Config.ambiguity = Config.Reject_ambiguous }
      ~resolver:local ()
  in
  (match
     Checker.check reject ~actual:(Td.of_class b) ~interest:(Td.of_class a)
   with
  | Checker.Not_conformant _ -> ()
  | Checker.Conformant _ -> Alcotest.fail "reject-ambiguous should reject");
  let best =
    Checker.create
      ~config:{ relaxed with Config.ambiguity = Config.Best_score }
      ~resolver:local ()
  in
  match
    Checker.check best ~actual:(Td.of_class b) ~interest:(Td.of_class a)
  with
  | Checker.Conformant m ->
      let mm = Option.get (Mapping.find m ~name:"pick" ~arity:1) in
      Alcotest.(check string) "best score prefers the exact name" "pick"
        mm.Mapping.mm_actual_name
  | Checker.Not_conformant _ -> Alcotest.fail "best-score should conform"

let test_recursive_types_coinduction () =
  (* Person.spouse : Person on both sides — must terminate and conform. *)
  ignore
    (assert_conformant ~actual:Demo.social_person ~interest:Demo.news_person ());
  (* Mutually recursive pair across two worlds. *)
  let a1 =
    B.class_ ~ns:[ "ra" ] ~assembly:"ra" "Ping"
    |> B.field "other" (Ty.Named "ra.Pong")
    |> B.build
  in
  let a2 =
    B.class_ ~ns:[ "ra" ] ~assembly:"ra" "Pong"
    |> B.field "other" (Ty.Named "ra.Ping")
    |> B.build
  in
  let b1 =
    B.class_ ~ns:[ "rb" ] ~assembly:"rb" "ping"
    |> B.field "other" (Ty.Named "rb.pong")
    |> B.build
  in
  let b2 =
    B.class_ ~ns:[ "rb" ] ~assembly:"rb" "pong"
    |> B.field "other" (Ty.Named "rb.ping")
    |> B.build
  in
  let local =
    Td.table_resolver
      [ Td.of_class a1; Td.of_class a2; Td.of_class b1; Td.of_class b2 ]
  in
  let checker = Checker.create ~resolver:local () in
  match
    Checker.check checker ~actual:(Td.of_class b1) ~interest:(Td.of_class a1)
  with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant fs ->
      Alcotest.failf "mutual recursion should conform: %s"
        (String.concat "; " (List.map (fun f -> f.Checker.message) fs))

let test_unresolvable_reference_rejects () =
  let a =
    B.class_ ~ns:[ "ua" ] ~assembly:"ua" "Holder"
    |> B.field "x" (Ty.Named "ua.Missing")
    |> B.build
  in
  let b =
    B.class_ ~ns:[ "ub" ] ~assembly:"ub" "holder"
    |> B.field "x" (Ty.Named "ub.AlsoMissing")
    |> B.build
  in
  let local = Td.table_resolver [ Td.of_class a; Td.of_class b ] in
  let checker = Checker.create ~resolver:local () in
  match
    Checker.check checker ~actual:(Td.of_class b) ~interest:(Td.of_class a)
  with
  | Checker.Not_conformant _ -> ()
  | Checker.Conformant _ ->
      Alcotest.fail "unresolvable field types should reject"

let test_interface_as_interest () =
  (* A class conforms to an interface interest when the (ci) names match
     and every interface method is matched; interfaces have no fields or
     ctors, so those aspects are vacuous. *)
  let iface =
    B.interface_ ~ns:[ "ii" ] ~assembly:"ii" "person"
    |> B.abstract_method "getName" [] Ty.String
    |> B.abstract_method "older" [ ("y", Ty.Int) ] Ty.Int
    |> B.build
  in
  let local =
    Td.table_resolver [ Td.of_class iface; desc Demo.news_person ]
  in
  let checker = Checker.create ~resolver:local () in
  match
    Checker.check checker ~actual:(desc Demo.news_person)
      ~interest:(Td.of_class iface)
  with
  | Checker.Conformant m ->
      Alcotest.(check int) "two methods mapped" 2
        (List.length m.Mapping.methods)
  | Checker.Not_conformant fs ->
      Alcotest.failf "class should conform to interface interest: %s"
        (String.concat "; " (List.map (fun f -> f.Checker.message) fs))

let test_array_field_types () =
  let a =
    B.class_ ~ns:[ "ar" ] ~assembly:"ar" "Roster"
    |> B.field "names" (Ty.Array Ty.String)
    |> B.build
  in
  let b =
    B.class_ ~ns:[ "br" ] ~assembly:"br" "roster"
    |> B.field "names" (Ty.Array Ty.String)
    |> B.build
  in
  let c =
    B.class_ ~ns:[ "cr" ] ~assembly:"cr" "roster"
    |> B.field "names" (Ty.Array Ty.Int)
    |> B.build
  in
  let local =
    Td.table_resolver [ Td.of_class a; Td.of_class b; Td.of_class c ]
  in
  let checker = Checker.create ~resolver:local () in
  Alcotest.(check bool) "same array type conforms" true
    (Checker.verdict_ok
       (Checker.check checker ~actual:(Td.of_class b)
          ~interest:(Td.of_class a)));
  Alcotest.(check bool) "different element type rejected" false
    (Checker.verdict_ok
       (Checker.check checker ~actual:(Td.of_class c)
          ~interest:(Td.of_class a)))

let test_question_mark_wildcard () =
  let d = desc Demo.news_person in
  let interest = { d with Td.ty_name = "Pers?n"; ty_fields = [];
                   ty_ctors = []; ty_methods = [] } in
  let checker = make_checker ~config:Config.with_wildcards () in
  match Checker.check checker ~actual:(desc Demo.social_person) ~interest with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant _ -> Alcotest.fail "'?' wildcard should match"

let test_deep_explicit_chain () =
  (* Explicit conformance walks several levels of declared supertypes. *)
  let l0 = B.class_ ~ns:[ "dc" ] ~assembly:"dc" "Root" |> B.build in
  let l1 =
    B.class_ ~ns:[ "dc" ] ~assembly:"dc" "Mid" ~super:"dc.Root" |> B.build
  in
  let l2 =
    B.class_ ~ns:[ "dc" ] ~assembly:"dc" "Leaf" ~super:"dc.Mid" |> B.build
  in
  let local =
    Td.table_resolver [ Td.of_class l0; Td.of_class l1; Td.of_class l2 ]
  in
  let checker = Checker.create ~resolver:local () in
  Alcotest.(check bool) "leaf <=e root" true
    (Checker.explicit_conforms checker ~actual:(Td.of_class l2)
       ~interest:(Td.of_class l0));
  Alcotest.(check bool) "root !<=e leaf" false
    (Checker.explicit_conforms checker ~actual:(Td.of_class l0)
       ~interest:(Td.of_class l2));
  (* And the full rules pick it up via the shortcut despite the name
     mismatch (Leaf vs Root). *)
  Alcotest.(check bool) "shortcut beats the name rule" true
    (Checker.verdict_ok
       (Checker.check checker ~actual:(Td.of_class l2)
          ~interest:(Td.of_class l0)))

let test_cache_and_stats () =
  let checker = make_checker () in
  let a = desc Demo.social_person and i = desc Demo.news_person in
  ignore (Checker.check checker ~actual:a ~interest:i);
  let s1 = Checker.stats checker in
  ignore (Checker.check checker ~actual:a ~interest:i);
  let s2 = Checker.stats checker in
  Alcotest.(check int) "two checks" 2 s2.Checker.checks;
  Alcotest.(check bool) "cache hit on repeat" true
    (s2.Checker.cache_hits > s1.Checker.cache_hits);
  Alcotest.(check bool)
    "second check did no extra pair work" true
    (s2.Checker.pair_checks - s1.Checker.pair_checks <= 1)

let test_name_rule_direct () =
  let checker = make_checker () in
  Alcotest.(check bool) "case-insensitive equal" true
    (Checker.names_conform checker ~interest_name:"Person" "pERSON");
  Alcotest.(check bool) "distance 1 rejected" false
    (Checker.names_conform checker ~interest_name:"Person" "Persom");
  Alcotest.(check bool) "namespace ignored" true
    (Checker.names_conform checker ~interest_name:"a.b.Person" "c.Person");
  let ns_checker =
    make_checker
      ~config:{ Config.strict with Config.compare_namespaces = true } ()
  in
  Alcotest.(check bool) "namespaces compared when asked" false
    (Checker.names_conform ns_checker ~interest_name:"a.b.Person" "c.Person")

let test_primitive_ty_conformance () =
  let checker = make_checker () in
  Alcotest.(check bool) "int<=int" true
    (Checker.check_ty checker ~actual:Ty.Int ~interest:Ty.Int);
  Alcotest.(check bool) "int<=float" false
    (Checker.check_ty checker ~actual:Ty.Int ~interest:Ty.Float);
  Alcotest.(check bool) "string[]<=string[]" true
    (Checker.check_ty checker ~actual:(Ty.Array Ty.String)
       ~interest:(Ty.Array Ty.String));
  Alcotest.(check bool) "named recursion" true
    (Checker.check_ty checker
       ~actual:(Ty.Named Demo.social_person)
       ~interest:(Ty.Named Demo.news_person))

(* clear_cache empties the verdict cache (so the next check recomputes
   pair work) while the stats counters keep accumulating. *)
let test_clear_cache () =
  let checker = make_checker () in
  let actual = desc Demo.social_person and interest = desc Demo.news_person in
  ignore (Checker.check checker ~actual ~interest);
  ignore (Checker.check checker ~actual ~interest);
  let warm = Checker.stats checker in
  Checker.clear_cache checker;
  let s3 = Checker.stats checker in
  Alcotest.(check int) "counters survive clear_cache" warm.Checker.checks
    s3.Checker.checks;
  ignore (Checker.check checker ~actual ~interest);
  let s4 = Checker.stats checker in
  Alcotest.(check bool) "after clear_cache the pair is recomputed" true
    (s4.Checker.pair_checks > s3.Checker.pair_checks);
  Alcotest.(check int) "checks keep counting" (s3.Checker.checks + 1)
    s4.Checker.checks

(* Keyed invalidation (the clear_cache replacement): a new type
   description must drop exactly the verdicts that depended on that name —
   including verdicts that failed because the name did not resolve — and
   nothing else. *)
let test_keyed_invalidation () =
  let tbl = Hashtbl.create 8 in
  let put cd =
    Hashtbl.replace tbl
      (String.lowercase_ascii (Meta.qualified_name cd))
      (Td.of_class cd)
  in
  let res name = Hashtbl.find_opt tbl (String.lowercase_ascii name) in
  let checker = Checker.create ~resolver:res () in
  let addr ns =
    B.class_ ~ns:[ ns ] ~assembly:"t" "Addr"
    |> B.field "street" Ty.String
    |> B.build
  in
  let person ns addr_ns =
    B.class_ ~ns:[ ns ] ~assembly:"t" "Person"
    |> B.field "home" (Ty.Named (addr_ns ^ ".Addr"))
    |> B.build
  in
  let interest = person "q" "q" and actual = person "p" "p" in
  put (addr "q");
  put interest;
  put actual;
  (* p.Addr is deliberately absent: the verdict fails on the miss. *)
  let d cd = Td.of_class cd in
  (match Checker.check checker ~actual:(d actual) ~interest:(d interest) with
  | Checker.Not_conformant _ -> ()
  | Checker.Conformant _ ->
      Alcotest.fail "should not conform while p.Addr is unknown");
  Alcotest.(check int) "unrelated name invalidates nothing" 0
    (Checker.note_new_type checker "other.Thing");
  let s1 = Checker.stats checker in
  ignore (Checker.check checker ~actual:(d actual) ~interest:(d interest));
  let s2 = Checker.stats checker in
  Alcotest.(check int)
    "verdict survives the unrelated arrival (no recompute)"
    s1.Checker.top_computes s2.Checker.top_computes;
  Alcotest.(check bool) "repeat is a cache hit" true
    (s2.Checker.top_hits > s1.Checker.top_hits);
  (* The missing dependency arrives: the stale negative verdict must go. *)
  put (addr "p");
  Alcotest.(check bool) "dependent verdict invalidated" true
    (Checker.note_new_type checker "p.Addr" >= 1);
  match Checker.check checker ~actual:(d actual) ~interest:(d interest) with
  | Checker.Conformant _ -> ()
  | Checker.Not_conformant _ ->
      Alcotest.fail "must conform once p.Addr resolves"

(* Capacity pressure: the verdict cache is a bounded LRU now. *)
let test_cache_capacity () =
  let checker = Checker.create ~cache_capacity:1 ~resolver () in
  let a = desc Demo.social_person and i = desc Demo.news_person in
  ignore (Checker.check checker ~actual:a ~interest:i);
  (* A second distinct pair displaces the first (capacity 1)... *)
  ignore
    (Checker.check checker ~actual:(desc Demo.trap_person) ~interest:i);
  ignore (Checker.check checker ~actual:a ~interest:i);
  let s = Checker.stats checker in
  Alcotest.(check int) "capacity reported" 1 s.Checker.cache_capacity;
  Alcotest.(check bool) "bounded" true (s.Checker.cache_size <= 1);
  let c = Checker.cache_counters checker in
  Alcotest.(check bool) "evictions counted" true (c.Pti_obs.Lru.evictions >= 1)

(* Property: conformance of the demo pair is stable under checker reuse
   and declaration-order permutations of the interest's methods. *)
let prop_method_order_irrelevant =
  QCheck.Test.make ~name:"method declaration order irrelevant" ~count:30
    QCheck.(int_bound 1000)
    (fun seed ->
      let rng = Pti_util.Splitmix.create (Int64.of_int seed) in
      let d = desc Demo.news_person in
      let methods = Array.of_list d.Td.ty_methods in
      Pti_util.Splitmix.shuffle rng methods;
      let shuffled = { d with Td.ty_methods = Array.to_list methods } in
      let checker = make_checker () in
      Checker.verdict_ok
        (Checker.check checker ~actual:(desc Demo.social_person)
           ~interest:shuffled))

let prop_equivalence_reflexive_on_population =
  QCheck.Test.make ~name:"every type equivalent to itself" ~count:1
    QCheck.unit
    (fun () ->
      List.for_all
        (fun cd ->
          let d = Td.of_class cd in
          Td.equivalent d d)
        (Registry.all registry))

let () =
  Alcotest.run "conformance"
    [
      ( "rules",
        [
          Alcotest.test_case "reflexive" `Quick test_reflexive;
          Alcotest.test_case "social => news person" `Quick
            test_social_conforms_to_news;
          Alcotest.test_case "news => social person" `Quick
            test_news_conforms_to_social;
          Alcotest.test_case "events conform both ways" `Quick
            test_events_conform;
          Alcotest.test_case "printer types conform" `Quick
            test_printers_conform;
          Alcotest.test_case "missing members rejected" `Quick
            test_bogus_rejected;
          Alcotest.test_case "trap rejected by full rules" `Quick
            test_trap_rejected_by_full_rules;
          Alcotest.test_case "trap accepted by name-only rules" `Quick
            test_trap_accepted_by_name_only;
          Alcotest.test_case "levenshtein threshold" `Quick
            test_name_rule_strict;
          Alcotest.test_case "wildcards" `Quick test_wildcards;
          Alcotest.test_case "argument permutation" `Quick
            test_permutation_in_mapping;
          Alcotest.test_case "permutations disabled" `Quick
            test_permutations_disabled;
          Alcotest.test_case "explicit conformance" `Quick
            test_explicit_conformance;
          Alcotest.test_case "equivalence" `Quick
            test_equivalence_identity_mapping;
          Alcotest.test_case "supertype aspect" `Quick test_supertype_aspect;
          Alcotest.test_case "field type invariance" `Quick
            test_field_type_invariance;
          Alcotest.test_case "modifier mismatch" `Quick test_modifier_mismatch;
          Alcotest.test_case "ambiguity policies" `Quick
            test_ambiguity_policies;
          Alcotest.test_case "co-inductive recursion" `Quick
            test_recursive_types_coinduction;
          Alcotest.test_case "unresolvable references" `Quick
            test_unresolvable_reference_rejects;
          Alcotest.test_case "interface as interest" `Quick
            test_interface_as_interest;
          Alcotest.test_case "array field types" `Quick test_array_field_types;
          Alcotest.test_case "'?' wildcard" `Quick test_question_mark_wildcard;
          Alcotest.test_case "deep explicit chain" `Quick
            test_deep_explicit_chain;
          Alcotest.test_case "cache and stats" `Quick test_cache_and_stats;
          Alcotest.test_case "clear_cache" `Quick test_clear_cache;
          Alcotest.test_case "keyed invalidation" `Quick
            test_keyed_invalidation;
          Alcotest.test_case "cache capacity" `Quick test_cache_capacity;
          Alcotest.test_case "name rule" `Quick test_name_rule_direct;
          Alcotest.test_case "type reference conformance" `Quick
            test_primitive_ty_conformance;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_method_order_irrelevant;
          QCheck_alcotest.to_alcotest prop_equivalence_reflexive_on_population;
        ] );
    ]
