(* Unit and property tests for the pti_util substrate. *)

module Lev = Pti_util.Levenshtein
module Guid = Pti_util.Guid
module B64 = Pti_util.Base64
module Pq = Pti_util.Pqueue
module S = Pti_util.Strutil
module Sm = Pti_util.Splitmix

(* ------------------------------- levenshtein ---------------------- *)

let test_lev_basics () =
  Alcotest.(check int) "identical" 0 (Lev.distance "kitten" "kitten");
  Alcotest.(check int) "kitten/sitting" 3 (Lev.distance "kitten" "sitting");
  Alcotest.(check int) "empty left" 3 (Lev.distance "" "abc");
  Alcotest.(check int) "empty right" 3 (Lev.distance "abc" "");
  Alcotest.(check int) "case matters" 1 (Lev.distance "Person" "person");
  Alcotest.(check int) "ci" 0 (Lev.distance_ci "Person" "pERSON")

let test_lev_within () =
  Alcotest.(check bool) "exact within 0" true (Lev.within ~limit:0 "abc" "ABC");
  Alcotest.(check bool) "distance 1 not within 0" false
    (Lev.within ~limit:0 "abc" "abd");
  Alcotest.(check bool) "distance 1 within 1" true
    (Lev.within ~limit:1 "Person" "Persom");
  Alcotest.(check bool) "length gap prunes" false
    (Lev.within ~limit:2 "a" "aaaa");
  Alcotest.(check bool) "negative limit rejected" true
    (try
       ignore (Lev.within ~limit:(-1) "a" "b");
       false
     with Invalid_argument _ -> true)

let test_similarity () =
  Alcotest.(check (float 1e-9)) "equal" 1. (Lev.similarity "abc" "ABC");
  Alcotest.(check (float 1e-9)) "empty pair" 1. (Lev.similarity "" "");
  Alcotest.(check bool) "different lower" true (Lev.similarity "abc" "xyz" < 0.5)

let test_wildcards () =
  Alcotest.(check bool) "star" true (Lev.wildcard_match ~pattern:"Pers*" "Person");
  Alcotest.(check bool) "star empty" true (Lev.wildcard_match ~pattern:"Person*" "person");
  Alcotest.(check bool) "question" true (Lev.wildcard_match ~pattern:"Pers?n" "person");
  Alcotest.(check bool) "question strict" false
    (Lev.wildcard_match ~pattern:"Pers?n" "persoon");
  Alcotest.(check bool) "inner star" true
    (Lev.wildcard_match ~pattern:"get*name" "getPersonName");
  Alcotest.(check bool) "no match" false
    (Lev.wildcard_match ~pattern:"set*" "getName");
  Alcotest.(check bool) "all-star" true (Lev.wildcard_match ~pattern:"*" "")

let prop_lev_metric =
  QCheck.Test.make ~name:"levenshtein is a metric" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 12))
              (string_of_size (QCheck.Gen.int_bound 12)))
    (fun (a, b) ->
      let d = Lev.distance a b in
      d = Lev.distance b a
      && (d = 0) = (a = b)
      && d <= max (String.length a) (String.length b))

let prop_lev_triangle =
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
    QCheck.(triple (string_of_size (QCheck.Gen.int_bound 8))
              (string_of_size (QCheck.Gen.int_bound 8))
              (string_of_size (QCheck.Gen.int_bound 8)))
    (fun (a, b, c) ->
      Lev.distance a c <= Lev.distance a b + Lev.distance b c)

let prop_within_agrees =
  QCheck.Test.make ~name:"within agrees with distance_ci" ~count:300
    QCheck.(triple (string_of_size (QCheck.Gen.int_bound 10))
              (string_of_size (QCheck.Gen.int_bound 10))
              (int_bound 4))
    (fun (a, b, limit) ->
      Lev.within ~limit a b = (Lev.distance_ci a b <= limit))

(* ------------------------------- guid ----------------------------- *)

let test_guid_roundtrip () =
  let rng = Sm.create 99L in
  for _ = 1 to 50 do
    let g = Guid.make rng in
    let s = Guid.to_string g in
    Alcotest.(check int) "canonical length" 36 (String.length s);
    match Guid.of_string s with
    | Some g' -> Alcotest.(check bool) "roundtrip" true (Guid.equal g g')
    | None -> Alcotest.fail "parse of rendered guid failed"
  done

let test_guid_of_name_deterministic () =
  let a = Guid.of_name "demo.Person" and b = Guid.of_name "demo.Person" in
  Alcotest.(check bool) "equal" true (Guid.equal a b);
  let c = Guid.of_name "demo.person" in
  Alcotest.(check bool) "case-sensitive input differs" false (Guid.equal a c)

let test_guid_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Guid.of_string s = None))
    [
      ""; "xyz"; "00000000000000000000000000000000";
      "0000000-00000-0000-0000-000000000000";
      "gggggggg-0000-0000-0000-000000000000";
    ]

let test_guid_nil () =
  Alcotest.(check string) "nil rendering"
    "00000000-0000-0000-0000-000000000000" (Guid.to_string Guid.nil)

(* ------------------------------- base64 --------------------------- *)

let test_base64_vectors () =
  (* RFC 4648 test vectors. *)
  List.iter
    (fun (plain, enc) ->
      Alcotest.(check string) ("encode " ^ plain) enc (B64.encode plain);
      Alcotest.(check string) ("decode " ^ enc) plain (B64.decode_exn enc))
    [
      ("", ""); ("f", "Zg=="); ("fo", "Zm8="); ("foo", "Zm9v");
      ("foob", "Zm9vYg=="); ("fooba", "Zm9vYmE="); ("foobar", "Zm9vYmFy");
    ]

let test_base64_whitespace () =
  Alcotest.(check string) "wrapped input" "foobar"
    (B64.decode_exn "Zm9v\nYmFy")

let test_base64_malformed () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (B64.decode s = None))
    [ "Zg="; "Z"; "Zm9v!"; "====" ]

let prop_base64_roundtrip =
  QCheck.Test.make ~name:"base64 roundtrip" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun s -> B64.decode (B64.encode s) = Some s)

(* Roundtrip must survive whitespace injected at arbitrary positions in
   the encoded form (the decoder skips blanks, as wrapped MIME bodies
   require). *)
let prop_base64_whitespace_roundtrip =
  QCheck.Test.make ~name:"base64 roundtrip with embedded whitespace"
    ~count:300
    QCheck.(
      triple
        (string_of_size (QCheck.Gen.int_bound 48))
        (small_list (pair small_nat (oneofl [ ' '; '\n'; '\t'; '\r' ])))
        unit)
    (fun (s, blanks, ()) ->
      let enc = B64.encode s in
      let enc =
        List.fold_left
          (fun acc (pos, c) ->
            let pos = if String.length acc = 0 then 0
              else pos mod (String.length acc + 1) in
            String.sub acc 0 pos ^ String.make 1 c
            ^ String.sub acc pos (String.length acc - pos))
          enc blanks
      in
      B64.decode enc = Some s)

(* Inputs of length 0/1/2 mod 3 exercise every padding width (0, "==",
   "="); the encoded form must always be a multiple of four and decode
   back exactly. *)
let prop_base64_padding_lengths =
  QCheck.Test.make ~name:"base64 all padding lengths" ~count:300
    QCheck.(pair (int_bound 63) (string_of_size (QCheck.Gen.return 0)))
    (fun (n, _) ->
      List.for_all
        (fun len ->
          let s = String.init len (fun i -> Char.chr ((i * 7 + n) land 0xff)) in
          let enc = B64.encode s in
          String.length enc mod 4 = 0 && B64.decode enc = Some s)
        [ n; n + 1; n + 2 ])

(* Anything after the first '=' other than more padding (or blanks) must
   be rejected: "Zg==Zg==" style concatenations are not valid base64. *)
let prop_base64_reject_after_pad =
  QCheck.Test.make ~name:"base64 rejects data after padding" ~count:300
    QCheck.(pair (string_of_size QCheck.Gen.(1 -- 24)) (int_bound 63))
    (fun (s, n) ->
      QCheck.assume (String.length s mod 3 <> 0);
      let enc = B64.encode s in
      (* enc ends in at least one '='; graft a valid alphabet char on. *)
      let alphabet =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
      in
      let c = alphabet.[n mod 64] in
      B64.decode (enc ^ String.make 1 c) = None
      && B64.decode (enc ^ String.make 1 c ^ "===") = None)

(* ------------------------------- pqueue --------------------------- *)

let test_pqueue_orders () =
  let q = Pq.create ~cmp:compare () in
  List.iter (Pq.push q) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Pq.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_pqueue_empty () =
  let q = Pq.create ~cmp:compare () in
  Alcotest.(check bool) "is_empty" true (Pq.is_empty q);
  Alcotest.(check (option int)) "pop" None (Pq.pop q);
  Alcotest.(check (option int)) "peek" None (Pq.peek q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:200
    QCheck.(list int)
    (fun l ->
      let q = Pq.create ~cmp:compare () in
      List.iter (Pq.push q) l;
      let rec drain acc =
        match Pq.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare l)

(* Regression: the old implementation seeded empty slots with
   [Obj.magic 0], which is unsound for float elements under the
   flat-float-array representation (a forged immediate in a float array
   is a crash or a garbage read on access). Exercise floats through
   create/push/grow/pop/clear. *)
let test_pqueue_floats () =
  let q = Pq.create ~initial_capacity:1 ~cmp:compare () in
  List.iter (Pq.push q) [ 5.5; 1.25; -3.0; 9.75; 0.0; 2.5 ];
  Alcotest.(check (option (float 0.))) "peek min" (Some (-3.0)) (Pq.peek q);
  let rec drain acc =
    match Pq.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list (float 0.)))
    "floats drain sorted"
    [ -3.0; 0.0; 1.25; 2.5; 5.5; 9.75 ]
    (drain []);
  (* Reuse after full drain, then clear mid-fill, then fill again. *)
  List.iter (Pq.push q) [ 2.0; 1.0 ];
  Pq.clear q;
  Alcotest.(check bool) "empty after clear" true (Pq.is_empty q);
  List.iter (Pq.push q) [ 4.0; 3.0 ];
  Alcotest.(check (list (float 0.))) "post-clear drain" [ 3.0; 4.0 ] (drain [])

let prop_pqueue_sorts_floats =
  QCheck.Test.make ~name:"pqueue drains floats sorted" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun l ->
      let q = Pq.create ~initial_capacity:1 ~cmp:compare () in
      List.iter (Pq.push q) l;
      let rec drain acc =
        match Pq.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare l)

(* ------------------------------- strutil --------------------------- *)

let test_strutil () =
  Alcotest.(check bool) "starts_with" true (S.starts_with ~prefix:"asm" "asm://x");
  Alcotest.(check bool) "starts_with no" false (S.starts_with ~prefix:"x" "asm");
  Alcotest.(check (list string)) "split" [ "a"; "b"; "" ] (S.split_on '.' "a.b.");
  Alcotest.(check string) "join" "a.b" (S.join "." [ "a"; "b" ]);
  Alcotest.(check bool) "equal_ci" true (S.equal_ci "ABC" "abc");
  Alcotest.(check bool) "identifier" true (S.is_identifier "get_Name2");
  Alcotest.(check bool) "identifier no" false (S.is_identifier "2abc");
  Alcotest.(check bool) "identifier empty" false (S.is_identifier "");
  Alcotest.(check int) "common prefix" 3 (S.common_prefix_length "abcde" "abcx");
  Alcotest.(check string) "truncate short" "abc" (S.truncate_middle ~max:10 "abc");
  let t = S.truncate_middle ~max:9 "abcdefghijklmno" in
  Alcotest.(check int) "truncate length" 9 (String.length t);
  Alcotest.(check bool) "truncate ellipsis" true
    (String.length t >= 3 && String.sub t 3 3 = "...")

(* ------------------------------- splitmix --------------------------- *)

let test_splitmix_deterministic () =
  let a = Sm.create 7L and b = Sm.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "streams agree" (Sm.next64 a) (Sm.next64 b)
  done

let test_splitmix_ranges () =
  let rng = Sm.create 11L in
  for _ = 1 to 1000 do
    let v = Sm.int rng 10 in
    Alcotest.(check bool) "0<=v<10" true (v >= 0 && v < 10);
    let f = Sm.float rng in
    Alcotest.(check bool) "0<=f<1" true (f >= 0. && f < 1.)
  done

let test_splitmix_split_diverges () =
  let parent = Sm.create 5L in
  let child = Sm.split parent in
  (* The child stream is not a shifted copy of the parent's. *)
  let a = List.init 20 (fun _ -> Sm.next64 parent) in
  let b = List.init 20 (fun _ -> Sm.next64 child) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let prop_guid_string_roundtrip =
  QCheck.Test.make ~name:"guid of_string/to_string roundtrip" ~count:200
    QCheck.(pair int int)
    (fun (a, b) ->
      let rng = Sm.create (Int64.of_int ((a * 65599) + b)) in
      let g = Guid.make rng in
      match Guid.of_string (String.uppercase_ascii (Guid.to_string g)) with
      | Some g' -> Guid.equal g g'
      | None -> false)

let test_splitmix_shuffle_permutes () =
  let rng = Sm.create 3L in
  let arr = Array.init 50 (fun i -> i) in
  Sm.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let () =
  Alcotest.run "util"
    [
      ( "levenshtein",
        [
          Alcotest.test_case "basics" `Quick test_lev_basics;
          Alcotest.test_case "within" `Quick test_lev_within;
          Alcotest.test_case "similarity" `Quick test_similarity;
          Alcotest.test_case "wildcards" `Quick test_wildcards;
          QCheck_alcotest.to_alcotest prop_lev_metric;
          QCheck_alcotest.to_alcotest prop_lev_triangle;
          QCheck_alcotest.to_alcotest prop_within_agrees;
        ] );
      ( "guid",
        [
          Alcotest.test_case "roundtrip" `Quick test_guid_roundtrip;
          Alcotest.test_case "of_name deterministic" `Quick
            test_guid_of_name_deterministic;
          Alcotest.test_case "malformed" `Quick test_guid_malformed;
          Alcotest.test_case "nil" `Quick test_guid_nil;
        ] );
      ( "base64",
        [
          Alcotest.test_case "rfc vectors" `Quick test_base64_vectors;
          Alcotest.test_case "whitespace" `Quick test_base64_whitespace;
          Alcotest.test_case "malformed" `Quick test_base64_malformed;
          QCheck_alcotest.to_alcotest prop_base64_roundtrip;
          QCheck_alcotest.to_alcotest prop_base64_whitespace_roundtrip;
          QCheck_alcotest.to_alcotest prop_base64_padding_lengths;
          QCheck_alcotest.to_alcotest prop_base64_reject_after_pad;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "orders" `Quick test_pqueue_orders;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "floats" `Quick test_pqueue_floats;
          QCheck_alcotest.to_alcotest prop_pqueue_sorts;
          QCheck_alcotest.to_alcotest prop_pqueue_sorts_floats;
        ] );
      ("strutil", [ Alcotest.test_case "helpers" `Quick test_strutil ]);
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "ranges" `Quick test_splitmix_ranges;
          Alcotest.test_case "shuffle" `Quick test_splitmix_shuffle_permutes;
          Alcotest.test_case "split diverges" `Quick
            test_splitmix_split_diverges;
          QCheck_alcotest.to_alcotest prop_guid_string_roundtrip;
        ] );
    ]
