(* Tests for the discrete-event network simulator. *)

module Sim = Pti_net.Sim
module Net = Pti_net.Net
module Stats = Pti_net.Stats

let test_sim_ordering () =
  let sim = Sim.create () in
  let trace = ref [] in
  Sim.schedule sim ~delay:5. (fun () -> trace := "c" :: !trace);
  Sim.schedule sim ~delay:1. (fun () -> trace := "a" :: !trace);
  Sim.schedule sim ~delay:3. (fun () -> trace := "b" :: !trace);
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !trace);
  Alcotest.(check (float 1e-9)) "clock at last event" 5. (Sim.now sim)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let trace = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~delay:1. (fun () -> trace := i :: !trace)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !trace)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let trace = ref [] in
  Sim.schedule sim ~delay:1. (fun () ->
      trace := "outer" :: !trace;
      Sim.schedule sim ~delay:1. (fun () -> trace := "inner" :: !trace));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ]
    (List.rev !trace);
  Alcotest.(check (float 1e-9)) "clock" 2. (Sim.now sim)

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~delay:1. (fun () -> incr fired);
  Sim.schedule sim ~delay:10. (fun () -> incr fired);
  Sim.run_until sim 5.;
  Alcotest.(check int) "only early events" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock advanced to horizon" 5. (Sim.now sim);
  Alcotest.(check int) "one pending" 1 (Sim.pending sim)

let test_sim_negative_delay_clamped () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule sim ~delay:5. (fun () ->
      Sim.schedule sim ~delay:(-3.) (fun () -> fired := true));
  Sim.run sim;
  Alcotest.(check bool) "fired" true !fired;
  Alcotest.(check (float 1e-9)) "no time travel" 5. (Sim.now sim)

let test_net_latency_and_bandwidth () =
  let net = Net.create ~default_latency_ms:2. ~default_bandwidth_bpms:100. () in
  let arrival = ref nan in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net ~src:_ () ->
      arrival := Net.now_ms net);
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:300 ();
  Net.run net;
  (* 2 ms latency + 300/100 ms serialization. *)
  Alcotest.(check (float 1e-9)) "delivery time" 5. !arrival

let test_net_link_override () =
  let net = Net.create ~default_latency_ms:1. ~default_bandwidth_bpms:1e9 () in
  let arrival = ref nan in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net ~src:_ () ->
      arrival := Net.now_ms net);
  Net.set_link net "a" "b" ~latency_ms:50. ~bandwidth_bpms:1e9;
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:0 ();
  Net.run net;
  Alcotest.(check bool) "link latency used" true (!arrival >= 50.)

let test_net_stats_accounting () =
  let net = Net.create () in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:100 ();
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:50 ();
  Net.send net ~src:"b" ~dst:"a" ~category:Stats.Tdesc_reply ~size:30 ();
  Net.run net;
  let s = Net.stats net in
  Alcotest.(check int) "obj msgs" 2 (Stats.messages s Stats.Object_msg);
  Alcotest.(check int) "obj bytes" 150 (Stats.bytes s Stats.Object_msg);
  Alcotest.(check int) "tdesc bytes" 30 (Stats.bytes s Stats.Tdesc_reply);
  Alcotest.(check int) "total" 180 (Stats.total_bytes s);
  Alcotest.(check int) "total msgs" 3 (Stats.total_messages s)

let test_net_partition () =
  let net = Net.create () in
  let delivered = ref 0 in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> incr delivered);
  Net.partition net "a" "b";
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 ();
  Net.run net;
  Alcotest.(check int) "dropped" 0 !delivered;
  Alcotest.(check int) "counted" 1 (Net.dropped_messages net);
  Net.heal net "a" "b";
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 ();
  Net.run net;
  Alcotest.(check int) "healed" 1 !delivered

let test_net_drop_rate () =
  let net = Net.create ~drop_rate:1.0 () in
  let delivered = ref 0 in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> incr delivered);
  for _ = 1 to 10 do
    Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 ()
  done;
  Net.run net;
  Alcotest.(check int) "all dropped" 0 !delivered;
  Alcotest.(check int) "all counted" 10 (Net.dropped_messages net)

let test_net_unknown_host () =
  let net = Net.create () in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  (match Net.send net ~src:"a" ~dst:"ghost" ~category:Stats.Control ~size:1 () with
  | _ -> Alcotest.fail "unknown host should raise"
  | exception Invalid_argument _ -> ());
  match Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ()) with
  | _ -> Alcotest.fail "duplicate host should raise"
  | exception Invalid_argument _ -> ()

let test_reliable_survives_loss () =
  (* 30% loss, reliability on: everything still arrives exactly once. *)
  let net =
    Net.create ~drop_rate:0.3 ~reliability:Net.default_reliability ~seed:99L ()
  in
  let got = ref [] in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ (_ : int) -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ i -> got := i :: !got);
  for i = 1 to 50 do
    Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:10 i
  done;
  Net.run net;
  Alcotest.(check (list int)) "all delivered exactly once"
    (List.init 50 (fun i -> i + 1))
    (List.sort compare !got);
  Alcotest.(check bool) "retransmissions happened" true
    (Net.retransmissions net > 0);
  Alcotest.(check int) "nothing abandoned" 0 (Net.lost_messages net)

let test_reliable_gives_up_on_partition () =
  let reliability = { Net.default_reliability with Net.max_retries = 2 } in
  let net = Net.create ~reliability ~seed:4L () in
  let delivered = ref 0 in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> incr delivered);
  Net.partition net "a" "b";
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 ();
  Net.run net;
  Alcotest.(check int) "never delivered" 0 !delivered;
  Alcotest.(check int) "abandoned after retries" 1 (Net.lost_messages net);
  Alcotest.(check int) "3 attempts" 3 (Net.dropped_messages net)

let test_reliable_delivers_after_heal () =
  (* A partition shorter than the retry budget only delays delivery. *)
  let reliability =
    { Net.retransmit_ms = 10.; max_retries = 10; ack_bytes = 16 }
  in
  let net = Net.create ~reliability ~seed:4L () in
  let delivered_at = ref nan in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net ~src:_ () ->
      delivered_at := Net.now_ms net);
  Net.partition net "a" "b";
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 ();
  (* Heal at t=35ms, while retries are still scheduled. *)
  Pti_net.Sim.schedule (Net.sim net) ~delay:35. (fun () -> Net.heal net "a" "b");
  Net.run net;
  Alcotest.(check bool) "delivered after heal" true (!delivered_at >= 35.);
  Alcotest.(check int) "not abandoned" 0 (Net.lost_messages net)

let test_partition_kills_in_flight () =
  (* A cut severs messages already on the wire, not just future sends. *)
  let net = Net.create ~default_latency_ms:10. () in
  let delivered = ref 0 in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> incr delivered);
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 ();
  (* The message lands at t=10; the cable is cut at t=5. *)
  Pti_net.Sim.schedule (Net.sim net) ~delay:5. (fun () ->
      Net.partition net "a" "b");
  Net.run net;
  Alcotest.(check int) "in-flight message lost" 0 !delivered;
  Alcotest.(check int) "counted as dropped" 1 (Net.dropped_messages net);
  Net.heal net "a" "b";
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 ();
  Net.run net;
  Alcotest.(check int) "healed link carries traffic" 1 !delivered

let test_reliable_partition_kills_in_flight_then_recovers () =
  (* Under ARQ the in-flight loss is repaired by retransmission once the
     link heals: exactly-once delivery, nothing abandoned. *)
  let reliability =
    { Net.retransmit_ms = 30.; max_retries = 10; ack_bytes = 16 }
  in
  let net = Net.create ~reliability ~default_latency_ms:10. ~seed:4L () in
  let deliveries = ref 0 in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> incr deliveries);
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 ();
  Pti_net.Sim.schedule (Net.sim net) ~delay:5. (fun () ->
      Net.partition net "a" "b");
  Pti_net.Sim.schedule (Net.sim net) ~delay:50. (fun () ->
      Net.heal net "a" "b");
  Net.run net;
  Alcotest.(check int) "delivered exactly once after heal" 1 !deliveries;
  Alcotest.(check bool) "first attempt lost in flight" true
    (Net.dropped_messages net >= 1);
  Alcotest.(check int) "not abandoned" 0 (Net.lost_messages net)

let test_reliable_charges_retransmissions () =
  let net =
    Net.create ~drop_rate:0.5
      ~reliability:Net.default_reliability ~seed:2L ()
  in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> ());
  for _ = 1 to 20 do
    Net.send net ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:100 ()
  done;
  Net.run net;
  let s = Net.stats net in
  (* More bytes than the 20 * 100 a loss-free run would charge. *)
  Alcotest.(check bool) "loss costs bytes" true
    (Stats.bytes s Stats.Object_msg > 2000);
  Alcotest.(check bool) "acks charged as control" true
    (Stats.bytes s Stats.Control > 0)

let test_trace_records_and_renders () =
  let net = Net.create () in
  let trace = Pti_net.Trace.attach net in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:100 ();
  Net.send net ~src:"b" ~dst:"a" ~category:Stats.Control ~size:5 ();
  Net.run net;
  Alcotest.(check int) "two entries" 2 (Pti_net.Trace.count trace ());
  Alcotest.(check int) "filtered" 1
    (Pti_net.Trace.count trace ~category:Stats.Object_msg ());
  (match Pti_net.Trace.entries trace with
  | [ e1; e2 ] ->
      Alcotest.(check string) "first src" "a" e1.Pti_net.Trace.src;
      Alcotest.(check string) "second src" "b" e2.Pti_net.Trace.src;
      Alcotest.(check int) "attempt 0" 0 e1.Pti_net.Trace.attempt
  | _ -> Alcotest.fail "expected two entries");
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    ln > 0 && go 0
  in
  let log = Format.asprintf "%a" Pti_net.Trace.pp_log trace in
  Alcotest.(check bool) "log mentions category" true (contains log "object");
  let seq = Format.asprintf "%a" Pti_net.Trace.pp_sequence trace in
  Alcotest.(check bool) "sequence has arrows" true
    (String.length seq > 0 && String.contains seq '>');
  Pti_net.Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (Pti_net.Trace.count trace ())

let test_trace_records_retransmissions () =
  let net =
    Net.create ~drop_rate:1.0
      ~reliability:{ Net.default_reliability with Net.max_retries = 2 }
      ~seed:1L ()
  in
  let trace = Pti_net.Trace.attach net in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 ();
  Net.run net;
  Alcotest.(check int) "3 attempts traced" 3 (Pti_net.Trace.count trace ());
  Alcotest.(check bool) "attempt numbers grow" true
    (List.map (fun e -> e.Pti_net.Trace.attempt) (Pti_net.Trace.entries trace)
    = [ 0; 1; 2 ])

let test_latency_percentiles () =
  let net = Net.create ~default_latency_ms:10. ~default_bandwidth_bpms:1e9 () in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ () -> ());
  for _ = 1 to 9 do
    Net.send net ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:0 ()
  done;
  Net.run net;
  let s = Net.stats net in
  Alcotest.(check int) "samples" 9
    (List.length (Stats.latency_samples s Stats.Object_msg));
  (match Stats.latency_percentile s Stats.Object_msg 0.5 with
  | Some p -> Alcotest.(check (float 1e-9)) "median" 10. p
  | None -> Alcotest.fail "no median");
  Alcotest.(check (option (float 1e-9))) "empty category" None
    (Stats.latency_percentile s Stats.Control 0.5);
  (* Under loss + reliability, latencies include the retry waits. *)
  let lossy =
    Net.create ~drop_rate:0.5 ~reliability:Net.default_reliability ~seed:3L ()
  in
  Net.add_host lossy "a" ~handler:(fun ~net:_ ~src:_ () -> ());
  Net.add_host lossy "b" ~handler:(fun ~net:_ ~src:_ () -> ());
  for _ = 1 to 20 do
    Net.send lossy ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:0 ()
  done;
  Net.run lossy;
  match Stats.latency_percentile (Net.stats lossy) Stats.Object_msg 0.95 with
  | Some p95 -> Alcotest.(check bool) "p95 includes retries" true (p95 >= 50.)
  | None -> Alcotest.fail "no p95"

(* Exact nearest-rank pins for the sorted-array memo: 100 known samples,
   then a 101st that must invalidate the cached sort. *)
let test_latency_percentile_pins () =
  let s = Stats.create () in
  (* 1..100 inserted out of order (evens first, then odds) so the test
     actually exercises the sort. *)
  for i = 1 to 100 do
    Stats.record_latency s Stats.Object_msg
      ~ms:(float_of_int (if i <= 50 then 2 * i else (2 * (i - 50)) - 1))
  done;
  let p q =
    match Stats.latency_percentile s Stats.Object_msg q with
    | Some v -> v
    | None -> Alcotest.fail "no percentile"
  in
  Alcotest.(check (float 1e-9)) "p0 = min" 1. (p 0.);
  Alcotest.(check (float 1e-9)) "p50 (rank 50 of 0..99)" 51. (p 0.5);
  Alcotest.(check (float 1e-9)) "p99" 99. (p 0.99);
  Alcotest.(check (float 1e-9)) "p100 = max" 100. (p 1.0);
  (* Repeated queries hit the memo; a fresh sample must invalidate it. *)
  Alcotest.(check (float 1e-9)) "repeat query stable" 51. (p 0.5);
  Stats.record_latency s Stats.Object_msg ~ms:0.5;
  Alcotest.(check (float 1e-9)) "new sample shifts the median" 50. (p 0.5);
  Alcotest.(check (float 1e-9)) "new sample is the min" 0.5 (p 0.)

(* Regression for the incremental sorted memo: interleaving inserts and
   percentile queries must agree with a from-scratch sort at every step.
   The old memo went stale here — a query between two insert batches
   cached a sorted view the next batch then had to merge into, and a bug
   in the tail merge shows up as a percentile computed over yesterday's
   samples. *)
let test_latency_percentile_interleaved () =
  let s = Stats.create () in
  let rng = Pti_util.Splitmix.create 77L in
  let all = ref [] in
  let reference q =
    let a = Array.of_list !all in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (int_of_float (Float.round (q *. float_of_int (n - 1)))))
  in
  let quantiles = [ 0.; 0.25; 0.5; 0.9; 0.99; 1.0 ] in
  for batch = 1 to 12 do
    (* Uneven batch sizes, including a singleton, so the merge sees
       tails both shorter and longer than the sorted prefix. *)
    let size = if batch mod 3 = 0 then 1 else 7 * batch in
    for _ = 1 to size do
      let v = Pti_util.Splitmix.float rng *. 100. in
      all := v :: !all;
      Stats.record_latency s Stats.Object_msg ~ms:v
    done;
    List.iter
      (fun q ->
        match Stats.latency_percentile s Stats.Object_msg q with
        | Some v ->
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "batch %d q%.2f matches full re-sort" batch q)
              (reference q) v
        | None -> Alcotest.fail "percentile vanished")
      quantiles
  done

let test_stats_metrics_registry () =
  let m = Pti_obs.Metrics.create () in
  let s = Stats.create ~metrics:m () in
  Stats.record_latency s Stats.Object_msg ~ms:3.;
  Stats.record s Stats.Object_msg ~bytes:42;
  (match Pti_obs.Metrics.find m "net.latency_ms.object" with
  | Some (Pti_obs.Metrics.Histogram h) ->
      Alcotest.(check int) "histogram fed" 1 h.Pti_obs.Metrics.h_count
  | _ -> Alcotest.fail "net.latency_ms.object missing");
  match Pti_obs.Metrics.find m "net.bytes.object" with
  | Some (Pti_obs.Metrics.Gauge v) ->
      Alcotest.(check (float 0.)) "bytes gauge live" 42. v
  | _ -> Alcotest.fail "net.bytes.object missing"

let test_stats_merge_reset () =
  let a = Stats.create () and b = Stats.create () in
  Stats.record a Stats.Object_msg ~bytes:10;
  Stats.record b Stats.Object_msg ~bytes:5;
  Stats.record b Stats.Control ~bytes:1;
  let m = Stats.merge a b in
  Alcotest.(check int) "merged bytes" 15 (Stats.bytes m Stats.Object_msg);
  Alcotest.(check int) "merged total" 16 (Stats.total_bytes m);
  Stats.reset a;
  Alcotest.(check int) "reset" 0 (Stats.total_bytes a)

let test_determinism () =
  (* Two identically-seeded networks with jitter produce identical
     delivery times. *)
  let run () =
    let net = Net.create ~jitter_ms:2. ~seed:123L () in
    let times = ref [] in
    Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ () -> ());
    Net.add_host net "b" ~handler:(fun ~net ~src:_ () ->
        times := Net.now_ms net :: !times);
    for i = 1 to 20 do
      Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:i ()
    done;
    Net.run net;
    !times
  in
  Alcotest.(check (list (float 1e-12))) "deterministic" (run ()) (run ())

(* ---------------------------------------------------------------- *)
(* Crash/restart: remove_host + re-registration                       *)
(* ---------------------------------------------------------------- *)

let test_remove_host_and_restart () =
  let net = Net.create () in
  let got = ref [] in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ _ -> ());
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ s -> got := s :: !got);
  Alcotest.check_raises "duplicate add still refuses"
    (Invalid_argument "Net.add_host: duplicate address \"b\"") (fun () ->
      Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ _ -> ()));
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 "before";
  Net.run net;
  (* Crash: the host disappears; frames addressed to it are silently
     dropped (it was known once), not a programming error. *)
  Net.remove_host net "b";
  let dropped0 = Net.dropped_messages net in
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 "while down";
  Net.run net;
  Alcotest.(check bool) "dropped while down" true
    (Net.dropped_messages net > dropped0);
  (* Restart: re-registration under the same address is legal again. *)
  Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ s -> got := s :: !got);
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Control ~size:1 "after";
  Net.run net;
  Alcotest.(check (list string)) "messages around the crash"
    [ "before"; "after" ] (List.rev !got);
  (* A host that never existed is still a programming error. *)
  Alcotest.check_raises "never-known dst raises"
    (Invalid_argument "Net.send: unknown host \"zed\"") (fun () ->
      Net.send net ~src:"a" ~dst:"zed" ~category:Stats.Control ~size:1 "x")

let test_arq_redelivers_across_restart () =
  (* A message sent while the destination is down is retransmitted until
     the host comes back — crash/restart inside the ARQ retry budget
     loses nothing. *)
  let net =
    Net.create
      ~reliability:{ Net.retransmit_ms = 10.; max_retries = 10; ack_bytes = 4 }
      ()
  in
  let sim = Net.sim net in
  let got = ref [] in
  let handler ~net:_ ~src:_ s = got := s :: !got in
  Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ _ -> ());
  Net.add_host net "b" ~handler;
  Net.remove_host net "b";
  Net.send net ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:10 "m";
  Sim.schedule sim ~delay:35. (fun () -> Net.add_host net "b" ~handler);
  Net.run net;
  Alcotest.(check (list string)) "redelivered after restart" [ "m" ] !got;
  Alcotest.(check int) "nothing lost" 0 (Net.lost_for net Stats.Object_msg)

(* ---------------------------------------------------------------- *)
(* Model-based ARQ property                                           *)
(* ---------------------------------------------------------------- *)

(* Random loss (data and acks alike — both directions share the coin),
   many messages: the ARQ layer must deliver each payload at most once,
   account for every message as delivered or lost, and charge each
   attempt's bytes. *)
let prop_arq_model =
  QCheck.Test.make
    ~name:"ARQ model: exactly-once, conservation, charged retransmissions"
    ~count:60
    QCheck.(triple (int_bound 899) (1 -- 25) small_int)
    (fun (drop_pm, n, seed) ->
      let drop_rate = float_of_int drop_pm /. 1000. in
      let net =
        Net.create ~drop_rate
          ~reliability:
            { Net.retransmit_ms = 20.; max_retries = 6; ack_bytes = 4 }
          ~seed:(Int64.of_int seed) ()
      in
      let delivered : (int, int) Hashtbl.t = Hashtbl.create 16 in
      Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ _ -> ());
      Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ i ->
          Hashtbl.replace delivered i
            (1 + Option.value ~default:0 (Hashtbl.find_opt delivered i)));
      for i = 1 to n do
        Net.send net ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:100 i
      done;
      Net.run net;
      let doubly =
        Hashtbl.fold (fun _ c acc -> acc || c > 1) delivered false
      in
      let lost = Net.lost_for net Stats.Object_msg in
      let attempts = n + Net.retransmissions net in
      (not doubly)
      && Hashtbl.length delivered + lost = n
      && Stats.bytes (Net.stats net) Stats.Object_msg = attempts * 100)

(* Injected duplication on top of loss: extra copies of data frames (and
   their extra acks) must never double-deliver. *)
let prop_arq_duplication_exactly_once =
  QCheck.Test.make ~name:"ARQ under injected duplication stays exactly-once"
    ~count:40
    QCheck.(pair (int_bound 500) small_int)
    (fun (drop_pm, seed) ->
      let net =
        Net.create
          ~drop_rate:(float_of_int drop_pm /. 1000.)
          ~reliability:
            { Net.retransmit_ms = 20.; max_retries = 6; ack_bytes = 4 }
          ~seed:(Int64.of_int seed) ()
      in
      Net.set_fault_hooks net
        (Some
           {
             Net.no_faults with
             Net.fh_duplicates = (fun ~now:_ ~src:_ ~dst:_ -> 1);
           });
      let n = 15 in
      let delivered : (int, int) Hashtbl.t = Hashtbl.create 16 in
      Net.add_host net "a" ~handler:(fun ~net:_ ~src:_ _ -> ());
      Net.add_host net "b" ~handler:(fun ~net:_ ~src:_ i ->
          Hashtbl.replace delivered i
            (1 + Option.value ~default:0 (Hashtbl.find_opt delivered i)));
      for i = 1 to n do
        Net.send net ~src:"a" ~dst:"b" ~category:Stats.Object_msg ~size:10 i
      done;
      Net.run net;
      let doubly =
        Hashtbl.fold (fun _ c acc -> acc || c > 1) delivered false
      in
      (not doubly)
      && Hashtbl.length delivered + Net.lost_for net Stats.Object_msg = n)

(* ---------------------------------------------------------------- *)
(* Clock: sim passthrough pin + monotonic timer wheel                 *)
(* ---------------------------------------------------------------- *)

module Clock = Pti_net.Clock

(* The regression test promised by clock.mli: scheduling through a
   sim-backed Clock must leave the simulator's pending-event set
   bit-identical (same labels, same timestamps, same sequence numbers)
   to scheduling against Sim directly — the model checker's schedules
   and fingerprints are keyed on exactly that set. *)
let test_clock_sim_labels_verbatim () =
  let direct = Sim.create () in
  let wrapped_sim = Sim.create () in
  let clock = Clock.of_sim wrapped_sim in
  let trace_a = ref [] and trace_b = ref [] in
  let record tr tag () = tr := tag :: !tr in
  (* Same schedule sequence on both sides. *)
  Sim.schedule direct
    ~label:(Sim.Timer { owner = "a"; info = "req-timeout#1" })
    ~delay:25. (record trace_a "timer");
  Sim.schedule direct
    ~label:(Sim.Act { owner = "a"; info = "batch-flush" })
    ~delay:5. (record trace_a "act");
  Sim.schedule direct
    ~label:(Sim.Timer { owner = "b"; info = "lease" })
    ~delay:25. (record trace_a "timer2");
  Clock.schedule clock
    ~label:(Clock.Timer { owner = "a"; info = "req-timeout#1" })
    ~delay_ms:25. (record trace_b "timer");
  Clock.schedule clock
    ~label:(Clock.Act { owner = "a"; info = "batch-flush" })
    ~delay_ms:5. (record trace_b "act");
  Clock.schedule clock
    ~label:(Clock.Timer { owner = "b"; info = "lease" })
    ~delay_ms:25. (record trace_b "timer2");
  let summarize sim =
    List.map
      (fun { Sim.i_at; i_seq; i_label } ->
        Format.asprintf "%g/%d/%a" i_at i_seq Sim.pp_label i_label)
      (Sim.pending_events sim)
  in
  Alcotest.(check (list string))
    "pending-event sets identical" (summarize direct)
    (summarize wrapped_sim);
  Sim.run direct;
  Sim.run wrapped_sim;
  Alcotest.(check (list string))
    "firing order identical" (List.rev !trace_a) (List.rev !trace_b)

let test_clock_sim_passthrough () =
  let sim = Sim.create () in
  let clock = Clock.of_sim sim in
  Alcotest.(check bool) "is_sim" true (Clock.is_sim clock);
  Alcotest.(check bool) "sim exposed" true
    (match Clock.sim clock with Some s -> s == sim | None -> false);
  Clock.schedule clock
    ~label:(Clock.Act { owner = "x"; info = "a" })
    ~delay_ms:3.
    (fun () -> ());
  Alcotest.(check int) "tick is a no-op" 0 (Clock.tick clock);
  Alcotest.(check bool) "no monotonic deadline" true
    (Clock.next_due_ms clock = None);
  Alcotest.(check int) "no monotonic pending" 0 (Clock.pending clock);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "now_ms tracks Sim.now" (Sim.now sim)
    (Clock.now_ms clock)

let fake_clock start =
  let now = ref start in
  let clock = Clock.monotonic ~now:(fun () -> !now) () in
  (clock, now)

let test_clock_monotonic_order () =
  let clock, now = fake_clock 1000. in
  let trace = ref [] in
  let record tag () = trace := tag :: !trace in
  let lbl i = Clock.Timer { owner = "t"; info = i } in
  Clock.schedule clock ~label:(lbl "late") ~delay_ms:20. (record "late");
  Clock.schedule clock ~label:(lbl "early") ~delay_ms:5. (record "early");
  Clock.schedule clock ~label:(lbl "tie-1") ~delay_ms:10. (record "tie-1");
  Clock.schedule clock ~label:(lbl "tie-2") ~delay_ms:10. (record "tie-2");
  Alcotest.(check int) "all pending" 4 (Clock.pending clock);
  Alcotest.(check int) "nothing due yet" 0 (Clock.tick clock);
  now := 1012.;
  Alcotest.(check int) "three due" 3 (Clock.tick clock);
  Alcotest.(check (list string))
    "deadline then schedule order"
    [ "early"; "tie-1"; "tie-2" ]
    (List.rev !trace);
  now := 1050.;
  Alcotest.(check int) "last fires" 1 (Clock.tick clock);
  Alcotest.(check int) "drained" 0 (Clock.pending clock)

let test_clock_monotonic_reentrant_tick () =
  let clock, now = fake_clock 0. in
  let trace = ref [] in
  let lbl i = Clock.Act { owner = "t"; info = i } in
  Clock.schedule clock ~label:(lbl "outer") ~delay_ms:5. (fun () ->
      trace := "outer" :: !trace;
      (* Already due when scheduled — must fire within this same tick. *)
      Clock.schedule clock ~label:(lbl "inner") ~delay_ms:0. (fun () ->
          trace := "inner" :: !trace));
  now := 10.;
  Alcotest.(check int) "both fire in one tick" 2 (Clock.tick clock);
  Alcotest.(check (list string)) "outer before inner" [ "outer"; "inner" ]
    (List.rev !trace)

let test_clock_monotonic_cancel_idempotent () =
  let clock, now = fake_clock 0. in
  let fired = ref 0 in
  let lbl = Clock.Timer { owner = "t"; info = "guard" } in
  let cancel =
    Clock.schedule_cancellable clock ~label:lbl ~delay_ms:5. (fun () ->
        incr fired)
  in
  Clock.schedule clock ~label:lbl ~delay_ms:5. (fun () -> incr fired);
  cancel ();
  cancel ();
  (* second cancel must be harmless *)
  now := 20.;
  Alcotest.(check int) "only the live timer fires" 1 (Clock.tick clock);
  Alcotest.(check int) "fired once" 1 !fired

let test_clock_monotonic_next_due () =
  let clock, now = fake_clock 100. in
  Alcotest.(check bool) "empty -> None" true (Clock.next_due_ms clock = None);
  Clock.schedule clock
    ~label:(Clock.Timer { owner = "t"; info = "g" })
    ~delay_ms:10.
    (fun () -> ());
  (match Clock.next_due_ms clock with
  | Some d -> Alcotest.(check (float 1e-9)) "due in 10ms" 10. d
  | None -> Alcotest.fail "expected a deadline");
  now := 125.;
  Alcotest.(check bool) "overdue -> Some 0." true
    (Clock.next_due_ms clock = Some 0.);
  ignore (Clock.tick clock);
  Alcotest.(check bool) "drained -> None" true (Clock.next_due_ms clock = None)

let test_clock_monotonic_clamped () =
  let clock, now = fake_clock 1000. in
  Alcotest.(check (float 1e-9)) "private epoch" 0. (Clock.now_ms clock);
  now := 1040.;
  Alcotest.(check (float 1e-9)) "advances" 40. (Clock.now_ms clock);
  now := 900.;
  (* system clock stepped backwards *)
  Alcotest.(check (float 1e-9)) "never goes backwards" 40.
    (Clock.now_ms clock);
  now := 1060.;
  Alcotest.(check (float 1e-9)) "resumes" 60. (Clock.now_ms clock)

(* ---------------------------------------------------------------- *)
(* Arq: pure reliability bookkeeping                                  *)
(* ---------------------------------------------------------------- *)

module Arq = Pti_net.Arq

let test_arq_backoff_schedule () =
  let p = { Arq.retransmit_ms = 50.; max_retries = 8; ack_bytes = 16 } in
  Alcotest.(check (float 1e-9)) "attempt 0" 50. (Arq.backoff_ms p ~attempt:0);
  Alcotest.(check (float 1e-9)) "attempt 1" 100. (Arq.backoff_ms p ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 4" 800. (Arq.backoff_ms p ~attempt:4);
  Alcotest.(check (float 1e-9)) "capped at 32x" 1600.
    (Arq.backoff_ms p ~attempt:5);
  Alcotest.(check (float 1e-9)) "stays capped" 1600.
    (Arq.backoff_ms p ~attempt:40)

let test_arq_give_up_boundary () =
  let p = { Arq.default with Arq.max_retries = 3 } in
  Alcotest.(check bool) "within budget" false (Arq.give_up p ~attempt:3);
  Alcotest.(check bool) "one past budget" true (Arq.give_up p ~attempt:4)

let test_arq_ledger () =
  let l = Arq.Ledger.create () in
  Alcotest.(check int) "first id" 0 (Arq.Ledger.fresh_id l);
  Alcotest.(check int) "second id" 1 (Arq.Ledger.fresh_id l);
  Alcotest.(check int) "issued" 2 (Arq.Ledger.issued l);
  Alcotest.(check bool) "not acked yet" false (Arq.Ledger.is_acked l 0);
  Arq.Ledger.mark_acked l 0;
  Alcotest.(check bool) "acked" true (Arq.Ledger.is_acked l 0);
  Alcotest.(check bool) "ack is per-id" false (Arq.Ledger.is_acked l 1);
  Alcotest.(check bool) "not delivered yet" false (Arq.Ledger.is_delivered l 1);
  Arq.Ledger.mark_delivered l 1;
  Alcotest.(check bool) "delivered" true (Arq.Ledger.is_delivered l 1);
  Alcotest.(check bool) "delivery is per-id" false (Arq.Ledger.is_delivered l 0)

let () =
  Alcotest.run "net"
    [
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick
            test_sim_nested_scheduling;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "negative delay" `Quick
            test_sim_negative_delay_clamped;
        ] );
      ( "net",
        [
          Alcotest.test_case "latency+bandwidth" `Quick
            test_net_latency_and_bandwidth;
          Alcotest.test_case "link override" `Quick test_net_link_override;
          Alcotest.test_case "stats" `Quick test_net_stats_accounting;
          Alcotest.test_case "partition" `Quick test_net_partition;
          Alcotest.test_case "drop rate" `Quick test_net_drop_rate;
          Alcotest.test_case "unknown host" `Quick test_net_unknown_host;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "survives loss" `Quick test_reliable_survives_loss;
          Alcotest.test_case "gives up on partition" `Quick
            test_reliable_gives_up_on_partition;
          Alcotest.test_case "delivers after heal" `Quick
            test_reliable_delivers_after_heal;
          Alcotest.test_case "partition kills in-flight" `Quick
            test_partition_kills_in_flight;
          Alcotest.test_case "in-flight loss repaired after heal" `Quick
            test_reliable_partition_kills_in_flight_then_recovers;
          Alcotest.test_case "retransmissions charged" `Quick
            test_reliable_charges_retransmissions;
        ] );
      ( "crash-restart",
        [
          Alcotest.test_case "remove_host + re-add" `Quick
            test_remove_host_and_restart;
          Alcotest.test_case "ARQ redelivers across restart" `Quick
            test_arq_redelivers_across_restart;
        ] );
      ( "arq-model",
        [
          QCheck_alcotest.to_alcotest prop_arq_model;
          QCheck_alcotest.to_alcotest prop_arq_duplication_exactly_once;
        ] );
      ( "clock",
        [
          Alcotest.test_case "sim labels verbatim" `Quick
            test_clock_sim_labels_verbatim;
          Alcotest.test_case "sim passthrough" `Quick
            test_clock_sim_passthrough;
          Alcotest.test_case "monotonic firing order" `Quick
            test_clock_monotonic_order;
          Alcotest.test_case "re-entrant tick" `Quick
            test_clock_monotonic_reentrant_tick;
          Alcotest.test_case "cancel idempotent" `Quick
            test_clock_monotonic_cancel_idempotent;
          Alcotest.test_case "next_due_ms" `Quick
            test_clock_monotonic_next_due;
          Alcotest.test_case "clamped non-decreasing" `Quick
            test_clock_monotonic_clamped;
        ] );
      ( "arq-policy",
        [
          Alcotest.test_case "backoff schedule" `Quick
            test_arq_backoff_schedule;
          Alcotest.test_case "give_up boundary" `Quick
            test_arq_give_up_boundary;
          Alcotest.test_case "ledger" `Quick test_arq_ledger;
        ] );
      ( "stats",
        [
          Alcotest.test_case "merge+reset" `Quick test_stats_merge_reset;
          Alcotest.test_case "latency percentiles" `Quick
            test_latency_percentiles;
          Alcotest.test_case "percentile pins and memo" `Quick
            test_latency_percentile_pins;
          Alcotest.test_case "percentiles under interleaved inserts" `Quick
            test_latency_percentile_interleaved;
          Alcotest.test_case "metrics registry" `Quick
            test_stats_metrics_registry;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records and renders" `Quick
            test_trace_records_and_renders;
          Alcotest.test_case "records retransmissions" `Quick
            test_trace_records_retransmissions;
        ] );
    ]
