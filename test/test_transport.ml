(* Tests for the pluggable transport fabric: stream loopback exchange,
   fault middleware on real sockets, partitions, and a forked
   two-process publish -> conform -> invoke run over unix sockets.

   Everything here drives kernel sockets; where the environment cannot
   provide them (no AF_UNIX/AF_INET, no fork) the tests skip cleanly
   instead of failing. *)

module Transport = Pti_transport.Transport
module Stats = Pti_net.Stats
module Peer = Pti_core.Peer
module Message_wire = Pti_core.Message_wire
module Demo = Pti_demo.Demo_types
module Value = Pti_cts.Value
module Proxy = Pti_proxy.Dynamic_proxy

let string_codec =
  {
    Transport.c_encode = (fun s -> s);
    c_decode =
      (fun s ->
        if String.length s > 0 && s.[0] = '!' then Error "poisoned frame"
        else Ok s);
  }

(* Socket support probe: skip rather than fail on exotic sandboxes. *)
let skip_unless_sockets domain =
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | fd -> Unix.close fd
  | exception Unix.Unix_error _ -> Alcotest.skip ()

let fresh_unix_fabric ?reliability () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pti-ttest-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  (try Unix.mkdir dir 0o700
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (Transport.create_unix ~dir ?reliability ~codec:string_codec (), dir)

let fabric_of_kind = function
  | Transport.Unix_socket ->
      skip_unless_sockets Unix.PF_UNIX;
      fst (fresh_unix_fabric ())
  | Transport.Tcp ->
      skip_unless_sockets Unix.PF_INET;
      Transport.create_tcp ~codec:string_codec ()
  | Transport.Sim -> invalid_arg "stream kinds only"

(* Both endpoints live on one fabric: the poll loop services the
   listener and the dialed connection in the same process. *)
let wire_pair tr ~on_b =
  let a = Transport.add_endpoint tr "a" ~handler:(fun ~src:_ _ -> ()) in
  let _b = Transport.add_endpoint tr "b" ~handler:on_b in
  (match Transport.listen_spec tr "b" with
  | Some spec -> Transport.register_remote tr "b" spec
  | None -> Alcotest.fail "endpoint b has no listen spec");
  a

let test_stream_loopback kind () =
  let tr = fabric_of_kind kind in
  let got = ref [] in
  let events = ref [] in
  Transport.on_conn_event tr (fun e -> events := e :: !events);
  let a = wire_pair tr ~on_b:(fun ~src s -> got := (src, s) :: !got) in
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:5 "hello";
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:5 "world";
  let ok =
    Transport.drive_until tr
      ~deadline_ms:(Transport.now_ms tr +. 10_000.)
      (fun () -> List.length !got = 2)
  in
  Alcotest.(check bool) "both delivered" true ok;
  Alcotest.(check (list (pair string string)))
    "payloads in order, src attributed"
    [ ("a", "hello"); ("a", "world") ]
    (List.rev !got);
  (* Receive-side accounting counts actual framed bytes. *)
  Alcotest.(check bool) "rx bytes counted" true
    (Transport.received_bytes tr Stats.Object_msg > 10);
  Alcotest.(check bool) "tx bytes counted" true
    (Stats.total_bytes (Transport.stats tr) > 10);
  Alcotest.(check bool) "connection events seen" true
    (List.exists (function Transport.Connected _ -> true | _ -> false)
       !events);
  Transport.close tr

let test_stream_fault_middleware () =
  skip_unless_sockets Unix.PF_UNIX;
  let tr = fst (fresh_unix_fabric ()) in
  let got = ref 0 in
  let a = wire_pair tr ~on_b:(fun ~src:_ _ -> incr got) in
  let dropping = ref true in
  Transport.set_fault_hooks tr
    (Some
       {
         Pti_net.Net.no_faults with
         Pti_net.Net.fh_drop = (fun ~now:_ ~src:_ ~dst:_ -> !dropping);
       });
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:1 "x";
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:1 "y";
  ignore
    (Transport.drive_until tr
       ~deadline_ms:(Transport.now_ms tr +. 500.)
       (fun () -> false));
  Alcotest.(check int) "both eaten by middleware" 2
    (Transport.injected_drops tr);
  Alcotest.(check int) "nothing delivered" 0 !got;
  dropping := false;
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:1 "z";
  let ok =
    Transport.drive_until tr
      ~deadline_ms:(Transport.now_ms tr +. 10_000.)
      (fun () -> !got = 1)
  in
  Alcotest.(check bool) "delivered once hooks stand down" true ok;
  Transport.close tr

let test_stream_corruption_and_integrity () =
  skip_unless_sockets Unix.PF_UNIX;
  let tr = fst (fresh_unix_fabric ()) in
  let got = ref 0 in
  let a = wire_pair tr ~on_b:(fun ~src:_ _ -> incr got) in
  (* Corrupt every frame into the codec's poison pattern: the send side
     counts the mangling, the receive side counts the codec rejecting
     it — wire damage never reaches the handler. *)
  Transport.set_fault_hooks tr
    (Some
       {
         Pti_net.Net.no_faults with
         Pti_net.Net.fh_corrupt =
           (fun ~now:_ ~src:_ ~dst:_ s -> Some ("!" ^ s));
       });
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:1 "m";
  ignore
    (Transport.drive_until tr
       ~deadline_ms:(Transport.now_ms tr +. 10_000.)
       (fun () -> Transport.integrity_drops tr = 1));
  Alcotest.(check int) "corruption charged at send" 1
    (Transport.corrupted_frames tr);
  Alcotest.(check int) "undecodable frame dropped at receive" 1
    (Transport.integrity_drops tr);
  Alcotest.(check int) "handler never saw it" 0 !got;
  (* An application-level integrity predicate screens decoded values the
     same way. *)
  Transport.set_fault_hooks tr None;
  Transport.set_integrity tr (Some (fun s -> s <> "tainted"));
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:7 "tainted";
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:5 "clean";
  let ok =
    Transport.drive_until tr
      ~deadline_ms:(Transport.now_ms tr +. 10_000.)
      (fun () -> !got = 1)
  in
  Alcotest.(check bool) "clean value delivered" true ok;
  Alcotest.(check int) "tainted value screened" 2
    (Transport.integrity_drops tr);
  Transport.close tr

let test_stream_partition_heal () =
  skip_unless_sockets Unix.PF_UNIX;
  let tr = fst (fresh_unix_fabric ()) in
  let got = ref [] in
  let a = wire_pair tr ~on_b:(fun ~src:_ s -> got := s :: !got) in
  Transport.partition tr "a" "b";
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:4 "lost";
  ignore
    (Transport.drive_until tr
       ~deadline_ms:(Transport.now_ms tr +. 300.)
       (fun () -> false));
  Alcotest.(check (list string)) "severed link delivers nothing" [] !got;
  Alcotest.(check bool) "drop accounted" true
    (Transport.dropped_messages tr >= 1);
  Transport.heal tr "a" "b";
  Transport.send a ~dst:"b" ~category:Stats.Object_msg ~size:5 "after";
  let ok =
    Transport.drive_until tr
      ~deadline_ms:(Transport.now_ms tr +. 10_000.)
      (fun () -> !got = [ "after" ])
  in
  Alcotest.(check bool) "healed link delivers" true ok;
  Transport.close tr

(* ------------------------------------------------------------------ *)
(* Two processes over a unix socket: publish -> conform -> invoke      *)
(* ------------------------------------------------------------------ *)

let objects = 3

(* Receiver child: interest in the social family it has never seen
   (forcing the publish/fetch/conform subprotocol against the sender),
   plus an exported greeter the sender will invoke remotely. *)
let forked_receiver tr =
  let hung_up = ref false in
  Transport.on_conn_event tr (function
    | Transport.Disconnected _ -> hung_up := true
    | Transport.Connected _ -> ());
  let peer = Peer.create ~transport:tr "receiver" in
  let delivered = ref 0 in
  Peer.register_interest peer ~interest:Demo.social_person (fun ~from:_ _ ->
      incr delivered);
  (* First export on a fresh peer => rr_id 0: the sender reconstructs
     the ref without a side channel. *)
  Peer.install_assembly peer (Demo.news_assembly ());
  ignore
    (Peer.export peer
       (Demo.make_news_person (Peer.registry peer) ~name:"greeter" ~age:9));
  let announced = ref false in
  let done_ () =
    if (not !announced) && !delivered >= objects then begin
      announced := true;
      Peer.send_gossip peer ~dst:"sender" ~kind:"test-done" ~body:""
    end;
    !announced && !hung_up
  in
  ignore
    (Transport.drive_until tr
       ~deadline_ms:(Transport.now_ms tr +. 30_000.)
       done_);
  Transport.close tr;
  if !delivered = objects then 0 else 1

let forked_sender tr =
  let sender = Peer.create ~transport:tr "sender" in
  let receiver_done = ref false in
  Peer.set_gossip_handler sender (fun ~src:_ ~kind ~body:_ ->
      if kind = "test-done" then receiver_done := true);
  Peer.install_assembly sender (Demo.news_assembly ());
  Peer.install_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly sender (Demo.social_assembly ());
  for n = 1 to objects do
    Peer.send_value sender ~dst:"receiver"
      (Demo.make_social_person (Peer.registry sender)
         ~name:(Printf.sprintf "s%d" n) ~age:n);
    ignore (Transport.poll tr ~timeout_ms:0.)
  done;
  let rref =
    { Peer.rr_host = "receiver"; rr_id = 0; rr_class = Demo.news_person }
  in
  let greeting =
    match Peer.acquire sender rref ~interest:Demo.news_person with
    | Error e -> Error ("acquire: " ^ e)
    | Ok proxy -> (
        match Proxy.invoke (Peer.registry sender) proxy "greet" [] with
        | Value.Vstring s -> Ok s
        | v -> Error ("greet returned " ^ Value.to_string v)
        | exception e -> Error ("greet raised " ^ Printexc.to_string e))
  in
  let all_done =
    Transport.drive_until tr
      ~deadline_ms:(Transport.now_ms tr +. 30_000.)
      (fun () -> !receiver_done)
  in
  Transport.close tr;
  match greeting with
  | Ok "Hello, greeter" when all_done -> 0
  | Ok s -> Printf.eprintf "unexpected greeting %S\n%!" s; 1
  | Error e -> Printf.eprintf "invoke failed: %s\n%!" e; 1

let test_forked_unix_protocol () =
  skip_unless_sockets Unix.PF_UNIX;
  (match Unix.fork () with
  | exception Unix.Unix_error _ -> Alcotest.skip ()
  | 0 -> Stdlib.exit 0
  | pid -> ignore (Unix.waitpid [] pid));
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pti-fork-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let spec = Filename.concat dir "receiver.sock" in
  (* Dial retries absorb the race between the parent's first connect and
     the child's bind. *)
  let reliability =
    { Pti_net.Arq.retransmit_ms = 50.; max_retries = 8; ack_bytes = 16 }
  in
  let fabric () =
    Transport.create_unix ~dir ~reliability ~codec:Message_wire.codec ()
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let status =
        try
          let tr = fabric () in
          Transport.set_bind tr "receiver" spec;
          forked_receiver tr
        with _ -> 2
      in
      Stdlib.exit status
  | pid ->
      let sender_status =
        try
          let tr = fabric () in
          Transport.register_remote tr "receiver" spec;
          forked_sender tr
        with e ->
          Printf.eprintf "sender raised %s\n%!" (Printexc.to_string e);
          2
      in
      let _, child_st = Unix.waitpid [] pid in
      let child_status =
        match child_st with Unix.WEXITED n -> n | _ -> 2
      in
      (try Unix.unlink spec with Unix.Unix_error _ -> ());
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      Alcotest.(check int) "sender side clean" 0 sender_status;
      Alcotest.(check int) "receiver side clean" 0 child_status

let () =
  Random.self_init ();
  Alcotest.run "transport"
    [
      ( "stream-loopback",
        [
          Alcotest.test_case "unix exchange" `Quick
            (test_stream_loopback Transport.Unix_socket);
          Alcotest.test_case "tcp exchange" `Quick
            (test_stream_loopback Transport.Tcp);
        ] );
      ( "stream-faults",
        [
          Alcotest.test_case "drop middleware" `Quick
            test_stream_fault_middleware;
          Alcotest.test_case "corruption + integrity" `Quick
            test_stream_corruption_and_integrity;
          Alcotest.test_case "partition + heal" `Quick
            test_stream_partition_heal;
        ] );
      ( "two-process",
        [
          Alcotest.test_case "unix publish/conform/invoke" `Quick
            test_forked_unix_protocol;
        ] );
    ]
