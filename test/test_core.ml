(* End-to-end tests of the optimistic transport protocol (Figure 1) and the
   pass-by-reference remoting layer. *)

open Pti_cts
module Peer = Pti_core.Peer
module Message = Pti_core.Message
module Net = Pti_net.Net
module Stats = Pti_net.Stats
module Proxy = Pti_proxy.Dynamic_proxy
module Demo = Pti_demo.Demo_types

let make_net () = Net.create ~seed:7L ()

(* A world where the sender publishes social types, the receiver registered
   an interest in its own news types. *)
let two_peers ?mode ?codec () =
  let net = make_net () in
  let sender = Peer.create ?mode ?codec ~net "sender" in
  let receiver = Peer.create ?mode ?codec ~net "receiver" in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  (net, sender, receiver)

let get_string = function
  | Value.Vstring s -> s
  | v -> Alcotest.failf "expected a string, got %s" (Value.type_name v)

let get_int = function
  | Value.Vint i -> i
  | v -> Alcotest.failf "expected an int, got %s" (Value.type_name v)

let test_pass_by_value_conformant () =
  let net, sender, receiver = two_peers () in
  let received = ref [] in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ v -> received := v :: !received);
  let alice =
    Demo.make_social_person (Peer.registry sender) ~name:"Alice" ~age:30
  in
  Peer.send_value sender ~dst:"receiver" alice;
  Net.run net;
  match !received with
  | [ v ] ->
      (* The proxy answers the receiver's vocabulary. *)
      let name =
        Proxy.invoke (Peer.registry receiver) v "getName" [] |> get_string
      in
      Alcotest.(check string) "name through proxy" "Alice" name;
      let greeting =
        Proxy.invoke (Peer.registry receiver) v "greet" [] |> get_string
      in
      Alcotest.(check string) "greet through proxy" "Hello, Alice" greeting;
      let older =
        Proxy.invoke (Peer.registry receiver) v "older" [ Value.Vint 5 ]
        |> get_int
      in
      Alcotest.(check int) "older through proxy" 35 older
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

let test_non_conformant_rejected_without_code_download () =
  let net = make_net () in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  Peer.publish_assembly sender (Demo.bogus_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> Alcotest.fail "bogus person must not be delivered");
  let bogus =
    Eval.construct (Peer.registry sender) Demo.bogus_person
      [ Value.Vstring "Mallory" ]
  in
  Peer.send_value sender ~dst:"receiver" bogus;
  Net.run net;
  (* Rejected... *)
  (match Peer.events receiver with
  | [ Peer.Rejected { type_name; _ } ] ->
      Alcotest.(check string) "rejected type" Demo.bogus_person type_name
  | evs ->
      Alcotest.failf "expected one rejection, got: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Peer.pp_event) evs)));
  (* ...and, crucially, no assembly bytes moved (the optimistic saving). *)
  let stats = Net.stats net in
  Alcotest.(check int) "no assembly requests" 0
    (Stats.messages stats Stats.Asm_request);
  Alcotest.(check int) "no assembly bytes" 0
    (Stats.bytes stats Stats.Asm_reply);
  (* Type descriptions did travel (that is the probe). *)
  Alcotest.(check bool) "tdescs travelled" true
    (Stats.bytes stats Stats.Tdesc_reply > 0)

let test_known_guid_skips_all_fetches () =
  (* Receiver already has the sender's exact assembly: no tdesc, no code. *)
  let net = make_net () in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  let asm = Demo.social_assembly () in
  Peer.publish_assembly sender asm;
  Peer.install_assembly receiver asm;
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  let bob =
    Demo.make_social_person (Peer.registry sender) ~name:"Bob" ~age:41
  in
  Peer.send_value sender ~dst:"receiver" bob;
  Net.run net;
  let stats = Net.stats net in
  Alcotest.(check int) "no tdesc traffic" 0
    (Stats.messages stats Stats.Tdesc_request);
  Alcotest.(check int) "no asm traffic" 0
    (Stats.messages stats Stats.Asm_request);
  match Peer.events receiver with
  | [ Peer.Delivered _ ] -> ()
  | evs -> Alcotest.failf "expected delivery, got %d events" (List.length evs)

let test_second_send_uses_cached_code () =
  let net, sender, receiver = two_peers () in
  let count = ref 0 in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> incr count);
  let p1 =
    Demo.make_social_person (Peer.registry sender) ~name:"One" ~age:1
  in
  Peer.send_value sender ~dst:"receiver" p1;
  Net.run net;
  let stats = Net.stats net in
  let asm_after_first = Stats.messages stats Stats.Asm_request in
  let tdesc_after_first = Stats.messages stats Stats.Tdesc_request in
  Alcotest.(check bool) "first send downloaded code" true (asm_after_first > 0);
  let p2 =
    Demo.make_social_person (Peer.registry sender) ~name:"Two" ~age:2
  in
  Peer.send_value sender ~dst:"receiver" p2;
  Net.run net;
  Alcotest.(check int) "no new assembly fetch"
    asm_after_first
    (Stats.messages stats Stats.Asm_request);
  Alcotest.(check int) "no new tdesc fetch"
    tdesc_after_first
    (Stats.messages stats Stats.Tdesc_request);
  Alcotest.(check int) "both delivered" 2 !count

(* The observability refactor, end to end: repeated-type traffic must show
   rising cache-hit counters (through the shared metrics registry) while
   generating zero additional tdesc/assembly bytes. *)
let test_repeat_traffic_cache_counters () =
  let module Workload = Pti_demo.Workload in
  let module Checker = Pti_conformance.Checker in
  let module Metrics = Pti_obs.Metrics in
  let net = make_net () in
  let metrics = Metrics.create () in
  let sender = Peer.create ~net ~metrics "sender" in
  let receiver = Peer.create ~net ~metrics "receiver" in
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  for i = 0 to 2 do
    Peer.publish_assembly sender
      (Workload.family ~index:i ~flavor:Workload.Conformant)
  done;
  let send index n =
    let v =
      Workload.make_person (Peer.registry sender) ~index
        ~flavor:Workload.Conformant
        ~name:(Printf.sprintf "p%d" n)
        ~age:n
    in
    Peer.send_value sender ~dst:"receiver" v;
    Net.run net
  in
  (* Warm-up: one object of each of the three types pulls code once. *)
  for i = 0 to 2 do
    send i i
  done;
  let s = Net.stats net in
  let code_bytes () =
    Stats.bytes s Stats.Tdesc_request
    + Stats.bytes s Stats.Tdesc_reply
    + Stats.bytes s Stats.Asm_request
    + Stats.bytes s Stats.Asm_reply
  in
  let warm_bytes = code_bytes () in
  let st0 = Checker.stats (Peer.checker receiver) in
  (* Nine more objects over the same three types. *)
  for n = 3 to 11 do
    send (n mod 3) n
  done;
  Alcotest.(check int) "zero additional tdesc/assembly bytes" warm_bytes
    (code_bytes ());
  let st1 = Checker.stats (Peer.checker receiver) in
  Alcotest.(check int) "no further verdict computes" st0.Checker.top_computes
    st1.Checker.top_computes;
  Alcotest.(check int) "every repeat hit the verdict cache"
    (st0.Checker.top_hits + 9) st1.Checker.top_hits;
  (* The same counters surface through the shared registry. *)
  match Metrics.find metrics "peer.receiver.checker.top_hits" with
  | Some (Metrics.Gauge v) ->
      Alcotest.(check (float 0.)) "metrics gauge agrees"
        (float_of_int st1.Checker.top_hits)
        v
  | _ -> Alcotest.fail "peer.receiver.checker.top_hits not registered"

(* Regression for the over-invalidation bug: a new (unrelated) type
   description arriving at the peer used to clear the whole verdict
   cache; it must now leave unrelated verdicts in place. *)
let test_new_type_preserves_unrelated_verdicts () =
  let module Workload = Pti_demo.Workload in
  let module Checker = Pti_conformance.Checker in
  let net = make_net () in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  let send index n =
    let v =
      Workload.make_person (Peer.registry sender) ~index
        ~flavor:Workload.Conformant
        ~name:(Printf.sprintf "p%d" n)
        ~age:n
    in
    Peer.send_value sender ~dst:"receiver" v;
    Net.run net
  in
  Peer.publish_assembly sender
    (Workload.family ~index:0 ~flavor:Workload.Conformant);
  send 0 0;
  let st1 = Checker.stats (Peer.checker receiver) in
  (* A brand-new type arrives (descriptions and all)... *)
  Peer.publish_assembly sender
    (Workload.family ~index:5 ~flavor:Workload.Conformant);
  send 5 1;
  (* ...and the old type's verdict must still be cached. *)
  send 0 2;
  let st2 = Checker.stats (Peer.checker receiver) in
  Alcotest.(check int) "only the new type computed a verdict"
    (st1.Checker.top_computes + 1)
    st2.Checker.top_computes;
  Alcotest.(check int) "nothing depended on the new names" 0
    st2.Checker.invalidated;
  Alcotest.(check bool) "the repeat was a cache hit" true
    (st2.Checker.top_hits > st1.Checker.top_hits)

(* The event log is a bounded ring now. *)
let test_event_log_bounded () =
  let net = make_net () in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net ~event_log_capacity:4 "receiver" in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  for n = 1 to 6 do
    let v =
      Demo.make_social_person (Peer.registry sender)
        ~name:(Printf.sprintf "p%d" n)
        ~age:n
    in
    Peer.send_value sender ~dst:"receiver" v;
    Net.run net
  done;
  let events = Peer.events receiver in
  Alcotest.(check int) "ring keeps the last 4" 4 (List.length events);
  Alcotest.(check int) "two displaced" 2 (Peer.events_dropped receiver);
  (match events with
  | Peer.Delivered { value; _ } :: _ ->
      (* Chronological: the oldest kept event is delivery #3. *)
      let name =
        Proxy.invoke (Peer.registry receiver) value "getName" []
      in
      (match name with
      | Value.Vstring s -> Alcotest.(check string) "oldest kept" "p3" s
      | _ -> Alcotest.fail "getName")
  | _ -> Alcotest.fail "expected Delivered events");
  Peer.clear_events receiver;
  Alcotest.(check int) "cleared" 0 (List.length (Peer.events receiver));
  Alcotest.(check int) "dropped reset" 0 (Peer.events_dropped receiver)

let test_eager_mode_ships_everything () =
  let net, sender, receiver = two_peers ~mode:Peer.Eager () in
  let count = ref 0 in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> incr count);
  let p =
    Demo.make_social_person (Peer.registry sender) ~name:"Eve" ~age:9
  in
  Peer.send_value sender ~dst:"receiver" p;
  Net.run net;
  Alcotest.(check int) "delivered" 1 !count;
  let stats = Net.stats net in
  (* Everything inline: no subprotocol round-trips at all... *)
  Alcotest.(check int) "no tdesc round-trips" 0
    (Stats.messages stats Stats.Tdesc_request);
  Alcotest.(check int) "no asm round-trips" 0
    (Stats.messages stats Stats.Asm_request);
  (* ...but the object message is much fatter than the optimistic one. *)
  let eager_bytes = Stats.bytes stats Stats.Object_msg in
  let net2, sender2, receiver2 = two_peers () in
  Peer.register_interest receiver2 ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  let p2 =
    Demo.make_social_person (Peer.registry sender2) ~name:"Eve" ~age:9
  in
  Peer.send_value sender2 ~dst:"receiver" p2;
  Net.run net2;
  let optimistic_obj_bytes =
    Stats.bytes (Net.stats net2) Stats.Object_msg
  in
  Alcotest.(check bool) "eager object message is heavier" true
    (eager_bytes > 2 * optimistic_obj_bytes)

let test_soap_codec_roundtrip_through_protocol () =
  let net, sender, receiver = two_peers ~codec:Pti_serial.Envelope.Soap () in
  let received = ref None in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ v -> received := Some v);
  let carol =
    Demo.make_social_person (Peer.registry sender) ~name:"Carol" ~age:27
  in
  Peer.send_value sender ~dst:"receiver" carol;
  Net.run net;
  match !received with
  | Some v ->
      let name =
        Proxy.invoke (Peer.registry receiver) v "getName" [] |> get_string
      in
      Alcotest.(check string) "soap payload decoded" "Carol" name
  | None -> Alcotest.fail "no delivery via SOAP codec"

let test_nested_object_graph_travels () =
  let net, sender, receiver = two_peers () in
  Peer.register_interest receiver ~interest:Demo.news_event
    (fun ~from:_ _ -> ());
  let reg = Peer.registry sender in
  let author = Demo.make_social_person reg ~name:"Dan" ~age:50 in
  let event =
    Demo.make_social_event reg ~headline:"Types unify!" ~author ~priority:1
  in
  Peer.send_value sender ~dst:"receiver" event;
  Net.run net;
  match Peer.events receiver with
  | [ Peer.Delivered { value; _ } ] ->
      let summary =
        Proxy.invoke (Peer.registry receiver) value "summary" [] |> get_string
      in
      Alcotest.(check string) "summary" "Types unify! (by Dan)" summary;
      (* getAuthor returns a nested object re-wrapped as newsw.Person. *)
      let author' = Proxy.invoke (Peer.registry receiver) value "getAuthor" [] in
      let name =
        Proxy.invoke (Peer.registry receiver) author' "getName" []
        |> get_string
      in
      Alcotest.(check string) "nested author name" "Dan" name
  | evs ->
      Alcotest.failf "expected delivery, got: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Peer.pp_event) evs))

let test_cycle_in_object_graph () =
  let net, sender, receiver = two_peers () in
  let received = ref None in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ v -> received := Some v);
  let reg = Peer.registry sender in
  let a = Demo.make_social_person reg ~name:"A" ~age:1 in
  let b = Demo.make_social_person reg ~name:"B" ~age:2 in
  ignore (Eval.call reg a "setspouse" [ b ]);
  ignore (Eval.call reg b "setspouse" [ a ]);
  Peer.send_value sender ~dst:"receiver" a;
  Net.run net;
  match !received with
  | Some v ->
      let rreg = Peer.registry receiver in
      let spouse = Proxy.invoke rreg v "getSpouse" [] in
      let back = Proxy.invoke rreg spouse "getSpouse" [] in
      let name = Proxy.invoke rreg back "getName" [] |> get_string in
      Alcotest.(check string) "cycle preserved" "A" name;
      (* Identity: the spouse loop must come back to the same object. *)
      (match Proxy.unwrap back, Proxy.unwrap v with
      | Value.Vobj o1, Value.Vobj o2 ->
          Alcotest.(check bool) "physical identity" true (o1 == o2)
      | _ -> Alcotest.fail "expected objects at both ends of the cycle")
  | None -> Alcotest.fail "cyclic graph not delivered"

let test_missing_assembly_fails_gracefully () =
  let net = make_net () in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  (* Sender loads the social types but does NOT publish the assembly. *)
  Peer.install_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> Alcotest.fail "must not deliver without code");
  let p = Demo.make_social_person (Peer.registry sender) ~name:"X" ~age:0 in
  Peer.send_value sender ~dst:"receiver" p;
  Net.run net;
  let failures =
    List.filter
      (function Peer.Load_failed _ | Peer.Decode_failed _ -> true | _ -> false)
      (Peer.events receiver)
  in
  Alcotest.(check bool) "failure recorded" true (failures <> [])

let test_burst_of_new_type_objects () =
  (* Two objects of a brand-new type sent back-to-back, with the network
     only run afterwards: both reception pipelines run concurrently. Both
     must deliver; the duplicated in-flight fetches are a known cost of
     optimism (the assembly load is idempotent for identical bytes). *)
  let net, sender, receiver = two_peers () in
  let count = ref 0 in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> incr count);
  let reg = Peer.registry sender in
  Peer.send_value sender ~dst:"receiver"
    (Demo.make_social_person reg ~name:"B1" ~age:1);
  Peer.send_value sender ~dst:"receiver"
    (Demo.make_social_person reg ~name:"B2" ~age:2);
  Net.run net;
  Alcotest.(check int) "both delivered" 2 !count;
  let failures =
    List.filter
      (function
        | Peer.Load_failed _ | Peer.Decode_failed _ -> true | _ -> false)
      (Peer.events receiver)
  in
  Alcotest.(check (list pass)) "no failures" [] failures

let test_interest_listing_and_removal () =
  let net, sender, receiver = two_peers () in
  let hits = ref 0 in
  let id =
    Peer.register_interest_id receiver ~interest:Demo.news_person
      (fun ~from:_ _ -> incr hits)
  in
  Alcotest.(check (list string)) "listed" [ Demo.news_person ]
    (Peer.interests receiver);
  Peer.send_value sender ~dst:"receiver"
    (Demo.make_social_person (Peer.registry sender) ~name:"X" ~age:0);
  Net.run net;
  Alcotest.(check int) "hit while registered" 1 !hits;
  Peer.unregister_interest receiver id;
  Peer.unregister_interest receiver id;
  Alcotest.(check (list string)) "unlisted" [] (Peer.interests receiver);
  Peer.send_value sender ~dst:"receiver"
    (Demo.make_social_person (Peer.registry sender) ~name:"Y" ~age:0);
  Net.run net;
  Alcotest.(check int) "no hit after removal" 1 !hits

let test_protocol_over_lossy_reliable_network () =
  (* The whole Figure-1 pipeline (object, tdesc round-trips, assembly
     download) completes over a 25%-lossy link once the ARQ layer is on. *)
  let net =
    Net.create ~drop_rate:0.25 ~reliability:Net.default_reliability ~seed:13L
      ()
  in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  let count = ref 0 in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> incr count);
  for i = 1 to 5 do
    Peer.send_value sender ~dst:"receiver"
      (Demo.make_social_person (Peer.registry sender)
         ~name:(Printf.sprintf "L%d" i) ~age:i)
  done;
  Net.run net;
  Alcotest.(check int) "all delivered despite loss" 5 !count;
  Alcotest.(check bool) "loss actually happened" true
    (Net.dropped_messages net > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (Net.retransmissions net > 0)

let test_request_timeout_degrades_to_rejection () =
  (* The object arrives, then the link dies: the description request is
     lost and (without an ARQ layer) never answered. The request timeout
     turns the stalled pipeline into a rejection. *)
  let net, sender, receiver = two_peers () in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> Alcotest.fail "must not deliver without descriptions");
  Peer.send_value sender ~dst:"receiver"
    (Demo.make_social_person (Peer.registry sender) ~name:"T" ~age:1);
  (* Let the envelope land (~1.3 ms), then cut the link. *)
  Pti_net.Sim.run_until (Net.sim net) 2.;
  Net.partition net "sender" "receiver";
  Net.run net;
  Alcotest.(check bool) "timeout advanced the clock" true
    (Net.now_ms net >= 10_000.);
  match
    List.filter (function Peer.Rejected _ -> true | _ -> false)
      (Peer.events receiver)
  with
  | [ Peer.Rejected { reason; _ } ] ->
      Alcotest.(check string) "reason" "type description unavailable" reason
  | _ -> Alcotest.fail "expected exactly one rejection"

let test_primitive_payload_goes_to_sink () =
  let net = make_net () in
  let sender = Peer.create ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  let got = ref None in
  Peer.set_default_sink receiver (fun ~from:_ v -> got := Some v);
  Peer.send_value sender ~dst:"receiver" (Value.Vint 42);
  Net.run net;
  match !got with
  | Some (Value.Vint 42) -> ()
  | _ -> Alcotest.fail "primitive payload lost"

(* ------------------------------------------------------------------ *)
(* Pass-by-reference                                                    *)
(* ------------------------------------------------------------------ *)

let test_remote_invocation_conformant () =
  let net = make_net () in
  let lender = Peer.create ~net "lender" in
  let borrower = Peer.create ~net "borrower" in
  Peer.publish_assembly lender (Demo.printer_assembly ());
  Peer.publish_assembly borrower (Demo.printsvc_assembly ());
  let obj = Demo.make_printer (Peer.registry lender) ~label:"hp-1" in
  let rref = Peer.export lender obj in
  match Peer.acquire borrower rref ~interest:Demo.printsvc with
  | Error e -> Alcotest.failf "acquire failed: %s" e
  | Ok proxy ->
      (* Borrower speaks its own vocabulary: PRINT / GETPRINTED. *)
      let n1 =
        Proxy.invoke (Peer.registry borrower) proxy "PRINT"
          [ Value.Vstring "doc-a" ]
        |> get_int
      in
      let n2 =
        Proxy.invoke (Peer.registry borrower) proxy "PRINT"
          [ Value.Vstring "doc-b" ]
        |> get_int
      in
      Alcotest.(check int) "first print" 1 n1;
      Alcotest.(check int) "second print" 2 n2;
      (* State lives on the lender (pass-by-reference, not a copy). *)
      let printed =
        Eval.call (Peer.registry lender) obj "getPrinted" [] |> get_int
      in
      Alcotest.(check int) "lender-side state" 2 printed

let test_remote_invocation_error_propagates () =
  let net = make_net () in
  let lender = Peer.create ~net "lender" in
  let borrower = Peer.create ~net "borrower" in
  Peer.publish_assembly lender (Demo.printer_assembly ());
  Peer.publish_assembly borrower (Demo.printer_assembly ());
  let obj = Demo.make_printer (Peer.registry lender) ~label:"hp-2" in
  let rref = Peer.export lender obj in
  match Peer.acquire borrower rref ~interest:Demo.printer with
  | Error e -> Alcotest.failf "acquire failed: %s" e
  | Ok proxy -> (
      match
        Proxy.invoke (Peer.registry borrower) proxy "shred"
          [ Value.Vstring "doc" ]
      with
      | _ -> Alcotest.fail "unknown remote method should raise"
      | exception Eval.Runtime_error _ -> ())

let test_acquire_non_conformant_fails () =
  let net = make_net () in
  let lender = Peer.create ~net "lender" in
  let borrower = Peer.create ~net "borrower" in
  Peer.publish_assembly lender (Demo.trap_assembly ());
  Peer.publish_assembly borrower (Demo.printsvc_assembly ());
  let trap = Demo.make_trap_person (Peer.registry lender) in
  let rref = Peer.export lender trap in
  match Peer.acquire borrower rref ~interest:Demo.printsvc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trap type must not conform to printer interest"

let test_remote_invocation_with_object_argument () =
  (* The borrower passes one of ITS OWN objects as an invocation argument:
     the argument travels as an envelope, and the lender downloads the
     borrower's code to decode it — the full pipeline in both
     directions. *)
  let net = make_net () in
  let lender = Peer.create ~net "lender" in
  let borrower = Peer.create ~net "borrower" in
  Peer.publish_assembly lender (Demo.news_assembly ());
  (* Borrower publishes (not merely installs) so the lender can fetch. *)
  Peer.publish_assembly borrower (Demo.social_assembly ());
  Peer.install_assembly borrower (Demo.news_assembly ());
  let target = Demo.make_news_person (Peer.registry lender) ~name:"L" ~age:9 in
  let rref = Peer.export lender target in
  match Peer.acquire borrower rref ~interest:Demo.news_person with
  | Error e -> Alcotest.failf "acquire failed: %s" e
  | Ok proxy ->
      let spouse =
        Demo.make_social_person (Peer.registry borrower) ~name:"S" ~age:8
      in
      (* setSpouse(social person) — lender must download social-asm. *)
      ignore
        (Proxy.invoke (Peer.registry borrower) proxy "setSpouse" [ spouse ]);
      Alcotest.(check bool) "lender loaded the borrower's code" true
        (Registry.mem (Peer.registry lender) Demo.social_person);
      (* The value landed on the lender's object. *)
      let got = Eval.call (Peer.registry lender) target "getSpouse" [] in
      Alcotest.(check string) "spouse name on the lender" "S"
        (Eval.call (Peer.registry lender) got "getname" [] |> get_string);
      (* And the result of getSpouse round-trips back by value. *)
      let back = Proxy.invoke (Peer.registry borrower) proxy "getSpouse" [] in
      Alcotest.(check string) "spouse comes back by value" "S"
        (Eval.call (Peer.registry borrower) back "getname" [] |> get_string)

let test_eager_mode_rejection_still_pays () =
  (* Under the eager baseline a non-conformant object still ships all its
     code — the waste the optimistic protocol avoids (cf. E5b). *)
  let net = make_net () in
  let sender = Peer.create ~mode:Peer.Eager ~net "sender" in
  let receiver = Peer.create ~mode:Peer.Eager ~net "receiver" in
  Peer.publish_assembly sender (Demo.trap_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> Alcotest.fail "trap must not be delivered");
  Peer.send_value sender ~dst:"receiver"
    (Demo.make_trap_person (Peer.registry sender));
  Net.run net;
  (match Peer.events receiver with
  | [ Peer.Rejected _ ] -> ()
  | evs -> Alcotest.failf "expected rejection, got %d events" (List.length evs));
  (* The code was nevertheless loaded (shipped inline). *)
  Alcotest.(check bool) "wasted code transfer" true
    (Registry.mem (Peer.registry receiver) Demo.trap_person);
  let obj_bytes = Stats.bytes (Net.stats net) Stats.Object_msg in
  Alcotest.(check bool) "fat object message" true
    (obj_bytes > 3 * String.length (Pti_serial.Assembly_xml.to_string (Demo.trap_assembly ())) / 4)

let test_fetch_type_description () =
  let net = make_net () in
  let a = Peer.create ~net "a" in
  let b = Peer.create ~net "b" in
  Peer.publish_assembly b (Demo.news_assembly ());
  (match Peer.fetch_type_description a ~from:"b" Demo.news_person with
  | Some d ->
      Alcotest.(check string) "fetched name" "Person" d.Pti_typedesc.Type_description.ty_name
  | None -> Alcotest.fail "description fetch failed");
  (* Unknown type comes back as None, not a crash. *)
  match Peer.fetch_type_description a ~from:"b" "no.such.Type" with
  | None -> ()
  | Some _ -> Alcotest.fail "unknown type should yield None"

(* ------------------------------------------------------------------ *)
(* Wire messages                                                        *)
(* ------------------------------------------------------------------ *)

let test_message_sizes_and_categories () =
  let open Message in
  let cases =
    [
      (Obj_msg { envelope = "abcd"; tdescs = [ "xy" ]; assemblies = [ "z" ] },
       Stats.Object_msg, 16 + 4 + 2 + 1);
      (Tdesc_request { type_name = "a.B"; token = 1; binary_ok = false; version = 0 },
       Stats.Tdesc_request,
       16 + 3);
      (Tdesc_reply { type_name = "a.B"; desc = Some "dddd"; token = 1 },
       Stats.Tdesc_reply, 16 + 3 + 4);
      (Tdesc_reply { type_name = "a.B"; desc = None; token = 1 },
       Stats.Tdesc_reply, 16 + 3);
      (Asm_request { path = "asm://h/x"; token = 2 }, Stats.Asm_request,
       16 + 9);
      (Asm_reply { path = "asm://h/x"; assembly = Some "aa"; token = 2 },
       Stats.Asm_reply, 16 + 9 + 2);
      (Invoke_request { target = 3; meth = "m"; args = "aaaa"; token = 4 },
       Stats.Invoke_request, 16 + 8 + 1 + 4);
      (Invoke_reply { token = 4; result = Some "rr"; error = None },
       Stats.Invoke_reply, 16 + 2);
    ]
  in
  List.iter
    (fun (msg, cat, expected_size) ->
      Alcotest.(check bool)
        ("category of " ^ describe msg)
        true
        (category msg = cat);
      Alcotest.(check int) ("size of " ^ describe msg) expected_size (size msg))
    cases

let test_message_describe_is_informative () =
  let open Message in
  let d = describe (Tdesc_request { type_name = "x.Y"; token = 9; binary_ok = false; version = 0 }) in
  Alcotest.(check bool) "mentions the type" true
    (Pti_util.Strutil.starts_with ~prefix:"tdesc-req(x.Y)" d)

(* ------------------------- wire efficiency ------------------------- *)

(* One world with the wire knobs set, sending [n] same-type objects. *)
let wire_world ?handles ?batch_bytes ?tdesc_binary n =
  let net = make_net () in
  let sender = Peer.create ?handles ?batch_bytes ?tdesc_binary ~net "sender" in
  let receiver =
    Peer.create ?handles ?batch_bytes ?tdesc_binary ~net "receiver"
  in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  let received = ref 0 in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> incr received);
  for i = 1 to n do
    let v =
      Demo.make_social_person (Peer.registry sender)
        ~name:(Printf.sprintf "p%d" i) ~age:(20 + i)
    in
    Peer.send_value sender ~dst:"receiver" v;
    Net.run net
  done;
  (net, sender, receiver, !received)

let test_handles_shrink_repeat_traffic () =
  let n = 12 in
  let _, _, _, plain_received = wire_world n in
  let net_p, _, _, _ = wire_world n in
  let plain_bytes = Stats.bytes (Net.stats net_p) Stats.Object_msg in
  let net_h, sender, _, received = wire_world ~handles:true n in
  Alcotest.(check int) "all delivered with handles" plain_received received;
  Alcotest.(check int) "all delivered" n received;
  (* Every distinct entry binds exactly once (on the first envelope) and
     is a handle ref on all later ones. *)
  let entries = Peer.handle_misses sender in
  Alcotest.(check bool) "first envelope binds" true (entries >= 1);
  Alcotest.(check int) "refs for every later entry" (entries * (n - 1))
    (Peer.handle_hits sender);
  Alcotest.(check int) "no renegotiation on a quiet link" 0
    (Peer.renegotiations sender);
  let handle_bytes = Stats.bytes (Net.stats net_h) Stats.Object_msg in
  Alcotest.(check bool)
    (Printf.sprintf "handles shrink object traffic (%d < %d)" handle_bytes
       plain_bytes)
    true (handle_bytes < plain_bytes)

let test_handle_table_drop_renegotiates () =
  let net = make_net () in
  let sender = Peer.create ~handles:true ~net "sender" in
  let receiver = Peer.create ~handles:true ~net "receiver" in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  let got = ref [] in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ v -> got := v :: !got);
  let send name =
    Peer.send_value sender ~dst:"receiver"
      (Demo.make_social_person (Peer.registry sender) ~name ~age:44);
    Net.run net
  in
  send "before";
  (* Simulate receiver restart: learned bindings gone, sender unaware. *)
  Peer.drop_handle_tables receiver;
  send "after";
  Alcotest.(check int) "both delivered" 2 (List.length !got);
  Alcotest.(check int) "exactly one NAK round" 1
    (Peer.renegotiations receiver);
  (* The renegotiated delivery is intact, not just present. *)
  let names =
    List.filter_map
      (fun v ->
        match Proxy.invoke (Peer.registry receiver) v "getName" [] with
        | Value.Vstring s -> Some s
        | _ -> None)
      !got
    |> List.sort compare
  in
  Alcotest.(check (list string)) "names intact" [ "after"; "before" ] names

let test_batching_coalesces_same_instant () =
  let net = make_net () in
  let sender = Peer.create ~batch_bytes:65536 ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  let received = ref 0 in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> incr received);
  (* Five sends before the simulation runs: one instant, one frame. *)
  for i = 1 to 5 do
    Peer.send_value sender ~dst:"receiver"
      (Demo.make_social_person (Peer.registry sender)
         ~name:(Printf.sprintf "b%d" i) ~age:i)
  done;
  Net.run net;
  Alcotest.(check int) "all delivered" 5 !received;
  Alcotest.(check int) "one batch frame" 1 (Peer.batch_messages sender);
  Alcotest.(check int) "five envelopes inside" 5 (Peer.batch_envelopes sender);
  Alcotest.(check bool) "framing overhead saved" true
    (Peer.batch_bytes_saved sender > 0);
  Alcotest.(check int) "one object message on the wire" 1
    (Stats.messages (Net.stats net) Stats.Object_msg)

let test_batch_budget_bounds_frames () =
  let net = make_net () in
  (* A budget smaller than two envelopes: every send flushes its own
     frame immediately. *)
  let sender = Peer.create ~batch_bytes:1 ~net "sender" in
  let receiver = Peer.create ~net "receiver" in
  Peer.publish_assembly sender (Demo.social_assembly ());
  Peer.publish_assembly receiver (Demo.news_assembly ());
  let received = ref 0 in
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> incr received);
  for i = 1 to 4 do
    Peer.send_value sender ~dst:"receiver"
      (Demo.make_social_person (Peer.registry sender)
         ~name:(Printf.sprintf "s%d" i) ~age:i)
  done;
  Net.run net;
  Alcotest.(check int) "all delivered" 4 !received;
  Alcotest.(check int) "one frame per send under a tiny budget" 4
    (Peer.batch_messages sender)

let test_tdesc_binary_negotiated () =
  let run ~tdesc_binary =
    let net = make_net () in
    let sender = Peer.create ~net "sender" in
    let receiver = Peer.create ~tdesc_binary ~net "receiver" in
    Peer.publish_assembly sender (Demo.social_assembly ());
    Peer.publish_assembly receiver (Demo.news_assembly ());
    let received = ref 0 in
    Peer.register_interest receiver ~interest:Demo.news_person
      (fun ~from:_ _ -> incr received);
    Peer.send_value sender ~dst:"receiver"
      (Demo.make_social_person (Peer.registry sender) ~name:"T" ~age:1);
    Net.run net;
    (!received, Stats.bytes (Net.stats net) Stats.Tdesc_reply)
  in
  let xml_received, xml_bytes = run ~tdesc_binary:false in
  let bin_received, bin_bytes = run ~tdesc_binary:true in
  Alcotest.(check int) "xml delivered" 1 xml_received;
  Alcotest.(check int) "binary delivered" 1 bin_received;
  Alcotest.(check bool)
    (Printf.sprintf "binary tdesc replies are smaller (%d < %d)" bin_bytes
       xml_bytes)
    true (bin_bytes < xml_bytes)

let () =
  Alcotest.run "core-protocol"
    [
      ( "pass-by-value",
        [
          Alcotest.test_case "conformant object delivered via proxy" `Quick
            test_pass_by_value_conformant;
          Alcotest.test_case "non-conformant rejected before code download"
            `Quick test_non_conformant_rejected_without_code_download;
          Alcotest.test_case "known GUID skips all fetches" `Quick
            test_known_guid_skips_all_fetches;
          Alcotest.test_case "repeat sends reuse cached code" `Quick
            test_second_send_uses_cached_code;
          Alcotest.test_case "eager baseline ships everything" `Quick
            test_eager_mode_ships_everything;
          Alcotest.test_case "SOAP codec end-to-end" `Quick
            test_soap_codec_roundtrip_through_protocol;
          Alcotest.test_case "nested object graph" `Quick
            test_nested_object_graph_travels;
          Alcotest.test_case "cyclic object graph" `Quick
            test_cycle_in_object_graph;
          Alcotest.test_case "missing assembly fails gracefully" `Quick
            test_missing_assembly_fails_gracefully;
          Alcotest.test_case "burst of new-type objects" `Quick
            test_burst_of_new_type_objects;
          Alcotest.test_case "interest listing and removal" `Quick
            test_interest_listing_and_removal;
          Alcotest.test_case "protocol over lossy reliable network" `Quick
            test_protocol_over_lossy_reliable_network;
          Alcotest.test_case "request timeout degrades to rejection" `Quick
            test_request_timeout_degrades_to_rejection;
          Alcotest.test_case "primitive payloads reach the sink" `Quick
            test_primitive_payload_goes_to_sink;
        ] );
      ( "observability",
        [
          Alcotest.test_case "repeat traffic raises cache counters" `Quick
            test_repeat_traffic_cache_counters;
          Alcotest.test_case "new type keeps unrelated verdicts" `Quick
            test_new_type_preserves_unrelated_verdicts;
          Alcotest.test_case "event log is a bounded ring" `Quick
            test_event_log_bounded;
        ] );
      ( "messages",
        [
          Alcotest.test_case "sizes and categories" `Quick
            test_message_sizes_and_categories;
          Alcotest.test_case "describe" `Quick
            test_message_describe_is_informative;
        ] );
      ( "wire-efficiency",
        [
          Alcotest.test_case "handles shrink repeat traffic" `Quick
            test_handles_shrink_repeat_traffic;
          Alcotest.test_case "table drop renegotiates" `Quick
            test_handle_table_drop_renegotiates;
          Alcotest.test_case "batching coalesces same instant" `Quick
            test_batching_coalesces_same_instant;
          Alcotest.test_case "tiny budget bounds frames" `Quick
            test_batch_budget_bounds_frames;
          Alcotest.test_case "binary tdesc negotiated" `Quick
            test_tdesc_binary_negotiated;
        ] );
      ( "pass-by-reference",
        [
          Alcotest.test_case "remote invocation through conformant proxy"
            `Quick test_remote_invocation_conformant;
          Alcotest.test_case "remote errors propagate" `Quick
            test_remote_invocation_error_propagates;
          Alcotest.test_case "non-conformant acquire fails" `Quick
            test_acquire_non_conformant_fails;
          Alcotest.test_case "type description fetch" `Quick
            test_fetch_type_description;
          Alcotest.test_case "object argument downloads code" `Quick
            test_remote_invocation_with_object_argument;
          Alcotest.test_case "eager rejection still pays" `Quick
            test_eager_mode_rejection_still_pays;
        ] );
    ]
