(* pti — command-line driver for the type-interoperability middleware.

   Subcommands:
     describe   parse an IDL file and print a type's XML description
     check      implicit structural conformance between two IDL types
     lint       static interop-hazard analysis over IDL files
     protocol   run the optimistic-vs-eager transfer experiment
     stats      run the workload and print the metrics-registry snapshot
     demo       run the quickstart Person scenario

   Every command evaluates to its exit status: check exits 1 when the
   verdict is NOT CONFORMANT (or the behavioral probe diverges), lint
   exits 1 when any error-severity diagnostic fires. *)

open Cmdliner
open Pti_cts
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Config = Pti_conformance.Config
module Mapping = Pti_conformance.Mapping
module Idl = Pti_idl.Idl
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Stats = Pti_net.Stats
module Demo = Pti_demo.Demo_types
module Workload = Pti_demo.Workload
module Metrics = Pti_obs.Metrics
module Chaos = Pti_fault.Chaos
module Transport = Pti_transport.Transport
module Message_wire = Pti_core.Message_wire
module Proxy = Pti_proxy.Dynamic_proxy
module Scale_driver = Pti_scale.Driver
module Repository = Pti_core.Repository

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error msg -> Error msg

(* .vb files go through the VB front end, everything else through the
   C#-flavoured one; both produce the same CTS metadata. The side table
   maps declarations back to source lines for lint diagnostics. *)
let load_located path =
  match read_file path with
  | Error msg -> Error msg
  | Ok src -> (
      let srcmap = Pti_idl.Srcmap.create () in
      if Filename.check_suffix path ".vb" then
        match
          Pti_idl.Vbdl.parse_assembly ~assembly:(Filename.basename path)
            ~srcmap src
        with
        | Ok asm -> Ok (asm, srcmap)
        | Error e ->
            Error (Format.asprintf "%s: %a" path Pti_idl.Vbdl.pp_error e)
      else
        match
          Idl.parse_assembly ~assembly:(Filename.basename path) ~srcmap src
        with
        | Ok asm -> Ok (asm, srcmap)
        | Error e -> Error (Format.asprintf "%s: %a" path Idl.pp_error e))

let load_idl path = Result.map fst (load_located path)

let pick_class asm type_name =
  match type_name with
  | Some n -> (
      match Assembly.find_class asm n with
      | Some cd -> Ok cd
      | None ->
          Error
            (Printf.sprintf "type %S not found (available: %s)" n
               (String.concat ", " (Assembly.class_names asm))))
  | None -> (
      match asm.Assembly.asm_classes with
      | [ cd ] -> Ok cd
      | [] -> Error "the file defines no types"
      | cds ->
          Error
            (Printf.sprintf "several types defined; pick one with --type (%s)"
               (String.concat ", "
                  (List.map Meta.qualified_name cds))))

(* ----------------------------- describe ---------------------------- *)

let describe_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"IDL source file.")
  in
  let type_name =
    Arg.(value & opt (some string) None
         & info [ "type"; "t" ] ~docv:"NAME"
             ~doc:"Qualified name of the type to describe.")
  in
  let run file type_name =
    match load_idl file with
    | Error msg -> `Error (false, msg)
    | Ok asm -> (
        match pick_class asm type_name with
        | Error msg -> `Error (false, msg)
        | Ok cd ->
            print_string (Td.to_xml_string ~pretty:true (Td.of_class cd));
            `Ok 0)
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Print the XML type description (§5.2) of an IDL-defined type.")
    Term.(ret (const run $ file $ type_name))

(* ------------------------------ check ------------------------------ *)

let check_cmd =
  let interest_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"INTEREST_FILE" ~doc:"IDL file of the type of interest.")
  in
  let actual_file =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"ACTUAL_FILE" ~doc:"IDL file of the candidate type.")
  in
  let interest_type =
    Arg.(value & opt (some string) None
         & info [ "interest-type" ] ~docv:"NAME" ~doc:"Type of interest.")
  in
  let actual_type =
    Arg.(value & opt (some string) None
         & info [ "actual-type" ] ~docv:"NAME" ~doc:"Candidate type.")
  in
  let distance =
    Arg.(value & opt int 0
         & info [ "distance"; "d" ] ~docv:"N"
             ~doc:"Levenshtein threshold for the name rule (paper: 0).")
  in
  let wildcards =
    Arg.(value & flag
         & info [ "wildcards" ] ~doc:"Allow * and ? in interest names.")
  in
  let name_only =
    Arg.(value & flag
         & info [ "name-only" ]
             ~doc:"Use the weak name-only rule (unsafe; see E6).")
  in
  let probe =
    Arg.(value & flag
         & info [ "probe" ]
             ~doc:"After a structural match, run the behavioral probe \
                   (§4.1, primitive methods only).")
  in
  let run interest_file actual_file interest_type actual_type distance
      wildcards name_only probe =
    let ( let* ) r f = match r with Error m -> `Error (false, m) | Ok v -> f v in
    let* interest_asm = load_idl interest_file in
    let* actual_asm = load_idl actual_file in
    let* interest_cd = pick_class interest_asm interest_type in
    let* actual_cd = pick_class actual_asm actual_type in
    let config =
      let base = if name_only then Config.name_only else Config.strict in
      { base with Config.name_distance = distance;
        allow_wildcards = wildcards }
    in
    (* Same-named classes from both files may collide; that's fine, the
       resolver only needs descriptions. *)
    let descs =
      List.map Td.of_class
        (interest_asm.Assembly.asm_classes @ actual_asm.Assembly.asm_classes)
    in
    let checker =
      Checker.create ~config ~resolver:(Td.table_resolver descs) ()
    in
    let interest = Td.of_class interest_cd and actual = Td.of_class actual_cd in
    match Checker.check checker ~actual ~interest with
    | Checker.Conformant m ->
        Format.printf "CONFORMANT: %s can be used as %s@."
          (Td.qualified_name actual)
          (Td.qualified_name interest);
        if not m.Mapping.identity then Format.printf "%a@." Mapping.pp m;
        if probe then begin
          let preg = Registry.create () in
          match
            Assembly.load preg interest_asm;
            Assembly.load preg actual_asm
          with
          | () ->
              let report =
                Pti_conformance.Behavioral.probe preg ~actual:actual_cd
                  ~interest:interest_cd ~mapping:m ()
              in
              Format.printf "%a@." Pti_conformance.Behavioral.pp_report report;
              let agree = Pti_conformance.Behavioral.conformant report in
              Format.printf "behavioral: %s@."
                (if agree then "AGREE on all probed methods" else "DIVERGENT");
              `Ok (if agree then 0 else 1)
          | exception Registry.Duplicate name ->
              Format.printf
                "behavioral probe skipped: type %s defined by both files@."
                name;
              `Ok 0
        end
        else `Ok 0
    | Checker.Not_conformant fs ->
        Format.printf "NOT CONFORMANT: %s cannot be used as %s@."
          (Td.qualified_name actual)
          (Td.qualified_name interest);
        List.iter (fun f -> Format.printf "  - %a@." Checker.pp_failure f) fs;
        `Ok 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check implicit structural conformance between two IDL types.")
    Term.(
      ret
        (const run $ interest_file $ actual_file $ interest_type $ actual_type
        $ distance $ wildcards $ name_only $ probe))

(* ------------------------------ lint ------------------------------- *)

(* Adapt a parsed file to the lint engine's notion of an input: the
   assembly plus a best-effort subject -> source-line mapping. Member
   lookups fall back to the enclosing type's line. *)
let lint_source path =
  match load_located path with
  | Error msg -> Error msg
  | Ok (asm, sm) ->
      let module Sm = Pti_idl.Srcmap in
      let locate subject =
        let fallback ty l =
          match l with Some _ -> l | None -> Sm.type_loc sm ty
        in
        let l =
          match subject with
          | Pti_lint.Diagnostic.Type t -> Sm.type_loc sm t
          | Pti_lint.Diagnostic.Field (t, f) ->
              fallback t (Sm.field_loc sm ~type_:t f)
          | Pti_lint.Diagnostic.Method (t, m, arity) ->
              fallback t (Sm.method_loc sm ~type_:t m ~arity)
          | Pti_lint.Diagnostic.Ctor (t, arity) ->
              fallback t (Sm.ctor_loc sm ~type_:t ~arity)
        in
        Option.map
          (fun (l : Sm.loc) ->
            { Pti_lint.Diagnostic.line = l.Sm.line; col = l.Sm.col })
          l
      in
      Ok
        {
          Pti_lint.Rules.src_file = path;
          src_assembly = asm;
          src_locate = locate;
        }

let lint_cmd =
  let files =
    Arg.(value & pos_all file []
         & info [] ~docv:"FILE" ~doc:"IDL source files (.idl/.vb) to analyze.")
  in
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let rule_specs =
    Arg.(value & opt_all string []
         & info [ "rule"; "r" ] ~docv:"[+|-]CODE"
             ~doc:"Enable (+CODE or CODE) or disable (-CODE) a rule; \
                   repeatable, applied left to right. Spell disables \
                   glued, e.g. $(b,--rule=-PTI004), so the leading dash \
                   is not taken for an option.")
  in
  let severity_specs =
    Arg.(value & opt_all string []
         & info [ "severity" ] ~docv:"CODE=LEVEL"
             ~doc:"Force every diagnostic of a rule to $(b,error), \
                   $(b,warning) or $(b,info); repeatable.")
  in
  let distance =
    Arg.(value & opt int 0
         & info [ "distance"; "d" ] ~docv:"N"
             ~doc:"Levenshtein threshold of the name rule the hazards are \
                   judged against (paper: 0).")
  in
  let near =
    Arg.(value & opt int 2
         & info [ "near" ] ~docv:"N"
             ~doc:"Near-miss window for PTI004: warn about names within \
                   edit distance N but above --distance.")
  in
  let wildcards =
    Arg.(value & flag
         & info [ "wildcards" ] ~doc:"Allow * and ? in interest names.")
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list-rules" ] ~doc:"List the rule catalogue and exit.")
  in
  let run files format rule_specs severity_specs distance near wildcards
      list_rules =
    if list_rules then begin
      List.iter
        (fun (r : Pti_lint.Rules.rule) ->
          Printf.printf "%s %-25s %-8s %s [%s]\n" r.Pti_lint.Rules.code
            r.Pti_lint.Rules.name
            (Pti_lint.Diagnostic.severity_to_string
               r.Pti_lint.Rules.default_severity)
            r.Pti_lint.Rules.doc r.Pti_lint.Rules.paper)
        Pti_lint.Rules.all;
      `Ok 0
    end
    else if files = [] then
      `Error (true, "no input files (use --list-rules to see the catalogue)")
    else
      let apply f set specs =
        List.fold_left
          (fun acc spec ->
            match acc with Error _ -> acc | Ok s -> f s spec)
          (Ok set) specs
      in
      let rule_set =
        Result.bind
          (apply Pti_lint.Rule_set.apply_spec Pti_lint.Rule_set.default
             rule_specs)
          (fun s -> apply Pti_lint.Rule_set.apply_severity s severity_specs)
      in
      match rule_set with
      | Error msg -> `Error (false, msg)
      | Ok rule_set -> (
          let sources =
            List.fold_left
              (fun acc path ->
                match (acc, lint_source path) with
                | Error _, _ -> acc
                | _, Error msg -> Error msg
                | Ok ss, Ok s -> Ok (s :: ss))
              (Ok []) files
          in
          match sources with
          | Error msg -> `Error (false, msg)
          | Ok sources ->
              let sources = List.rev sources in
              let config =
                {
                  Config.strict with
                  Config.name_distance = distance;
                  allow_wildcards = wildcards;
                }
              in
              let diags =
                Pti_lint.Engine.run ~config ~near_distance:near ~rule_set
                  sources
              in
              (match format with
              | `Text -> print_string (Pti_lint.Report.to_text diags)
              | `Json ->
                  print_endline
                    (Pti_lint.Json.to_string (Pti_lint.Report.to_json diags)));
              `Ok (Pti_lint.Report.exit_code diags))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze IDL files for interop hazards (ambiguous \
             bindings, case collisions, unresolved types, ...). Exits 1 \
             when any error-severity diagnostic fires.")
    Term.(
      ret
        (const run $ files $ format $ rule_specs $ severity_specs $ distance
        $ near $ wildcards $ list_rules))

(* ----------------------------- protocol ---------------------------- *)

(* Shared synthetic-workload runner behind [pti protocol] and [pti stats]:
   one network, a sender publishing K type families, a receiver with one
   interest, [objects] transfers round-robin over the families. Every
   component reports through the single [metrics] registry. *)
let run_workload ~mode ~objects ~distinct ~nonconf ~metrics
    ?(handles = false) ?batch_bytes ?(tdesc_binary = false)
    ?tdesc_cache_capacity ?checker_cache_capacity () =
  let net = Net.create ~seed:17L ~metrics () in
  let sender =
    Peer.create ~mode ~net ~metrics ~handles ?batch_bytes ~tdesc_binary
      ?tdesc_cache_capacity ?checker_cache_capacity "sender"
  in
  let receiver =
    Peer.create ~mode ~net ~metrics ~handles ?batch_bytes ~tdesc_binary
      ?tdesc_cache_capacity ?checker_cache_capacity "receiver"
  in
  Peer.install_assembly receiver (Demo.news_assembly ());
  Peer.register_interest receiver ~interest:Demo.news_person
    (fun ~from:_ _ -> ());
  let flavors =
    Array.init distinct (fun i ->
        if i < nonconf then Workload.Trap_missing else Workload.Conformant)
  in
  Array.iteri
    (fun i flavor ->
      Peer.publish_assembly sender (Workload.family ~index:i ~flavor))
    flavors;
  for n = 0 to objects - 1 do
    let index = n mod distinct in
    let v =
      Workload.make_person (Peer.registry sender) ~index
        ~flavor:flavors.(index)
        ~name:(Printf.sprintf "p%d" n) ~age:n
    in
    Peer.send_value sender ~dst:"receiver" v;
    Net.run net
  done;
  let delivered, rejected =
    List.fold_left
      (fun (d, r) ev ->
        match ev with
        | Peer.Delivered _ -> (d + 1, r)
        | Peer.Rejected _ -> (d, r + 1)
        | Peer.Decode_failed _ | Peer.Load_failed _
        | Peer.Corrupt_rejected _ -> (d, r))
      (0, 0) (Peer.events receiver)
  in
  (net, sender, delivered, rejected)

(* -------------------- protocol over real sockets ------------------- *)

(* Cross-process variant of the workload: the same publish -> conform ->
   deliver pipeline, plus one remote invocation, but over a unix-domain
   or TCP stream fabric. Default layout forks a receiver child; --listen
   / --connect split the two roles across terminals (or machines, for
   tcp). *)

let receiver_addr = "receiver"
let sender_addr = "sender"

(* Dial retries absorb the bind race in forked mode: the sender may try
   to connect before the child's listener exists. *)
let stream_reliability =
  { Pti_net.Arq.retransmit_ms = 50.; max_retries = 8; ack_bytes = 16 }

let stream_fabric kind ?dir ~metrics () =
  match kind with
  | Transport.Unix_socket ->
      Transport.create_unix ?dir ~reliability:stream_reliability ~metrics
        ~codec:Message_wire.codec ()
  | Transport.Tcp ->
      Transport.create_tcp ~reliability:stream_reliability ~metrics
        ~codec:Message_wire.codec ()
  | Transport.Sim -> invalid_arg "stream_fabric: sim is not a stream"

(* How many of the [objects] sends carry a trap (non-conformant) family,
   i.e. must terminate as Rejected rather than Delivered. *)
let expected_rejects ~objects ~distinct ~nonconf =
  let r = ref 0 in
  for n = 0 to objects - 1 do
    if n mod distinct < nonconf then incr r
  done;
  !r

(* The receiver role: serve conformance-checked deliveries and the final
   remote invocation until the sender hangs up (or a deadline passes).
   Returns the exit status; prints its own summary line. *)
let protocol_receiver tr ~mode ~objects ~distinct ~nonconf ~handles
    ?batch_bytes ~tdesc_binary () =
  let hung_up = ref false in
  Transport.on_conn_event tr (function
    | Transport.Disconnected _ -> hung_up := true
    | Transport.Connected _ -> ());
  let peer =
    Peer.create ~mode ~handles ?batch_bytes ~tdesc_binary ~transport:tr
      receiver_addr
  in
  let delivered = ref 0 in
  Peer.install_assembly peer (Demo.news_assembly ());
  Peer.register_interest peer ~interest:Demo.news_person (fun ~from:_ _ ->
      incr delivered);
  (* First export on a fresh peer: the sender reconstructs this ref as
     {host=receiver; id=0; class=newsw.Person} without any side channel. *)
  ignore
    (Peer.export peer
       (Demo.make_news_person (Peer.registry peer) ~name:"greeter" ~age:99));
  let rejects = expected_rejects ~objects ~distinct ~nonconf in
  let rejected () =
    List.length
      (List.filter
         (function Peer.Rejected _ -> true | _ -> false)
         (Peer.events peer))
  in
  (* Once every send has reached a terminal verdict, tell the sender —
     it must keep serving assembly fetches until then, and only then may
     it hang up. Its disconnect is our signal to stop driving. *)
  let announced = ref false in
  let done_ () =
    if (not !announced) && !delivered + rejected () >= objects then begin
      announced := true;
      Peer.send_gossip peer ~dst:sender_addr ~kind:"protocol-done"
        ~body:(string_of_int !delivered)
    end;
    !announced && !hung_up
  in
  ignore
    (Transport.drive_until tr
       ~deadline_ms:(Transport.now_ms tr +. 60_000.)
       done_);
  Format.printf
    "receiver: delivered=%d/%d rejected=%d/%d rx-bytes=%d integrity-drops=%d@."
    !delivered (objects - rejects) (rejected ()) rejects
    (Transport.total_received_bytes tr)
    (Transport.integrity_drops tr);
  Transport.close tr;
  if !delivered = objects - rejects && rejected () = rejects then 0 else 1

(* The sender role: publish the families, stream the objects, then
   acquire the receiver's exported greeter and invoke it — the reply
   doubles as an end-to-end barrier (stream delivery is in-order, so a
   served invocation proves every earlier frame was processed). *)
let protocol_sender tr ~mode ~objects ~distinct ~nonconf ~handles
    ?batch_bytes ~tdesc_binary () =
  let started = Unix.gettimeofday () in
  let sender =
    Peer.create ~mode ~handles ?batch_bytes ~tdesc_binary ~transport:tr
      sender_addr
  in
  let receiver_done = ref false in
  Peer.set_gossip_handler sender (fun ~src:_ ~kind ~body:_ ->
      if kind = "protocol-done" then receiver_done := true);
  Peer.install_assembly sender (Demo.news_assembly ());
  let flavors =
    Array.init distinct (fun i ->
        if i < nonconf then Workload.Trap_missing else Workload.Conformant)
  in
  Array.iteri
    (fun i flavor ->
      Peer.publish_assembly sender (Workload.family ~index:i ~flavor))
    flavors;
  for n = 0 to objects - 1 do
    let index = n mod distinct in
    let v =
      Workload.make_person (Peer.registry sender) ~index
        ~flavor:flavors.(index)
        ~name:(Printf.sprintf "p%d" n) ~age:n
    in
    Peer.send_value sender ~dst:receiver_addr v;
    (* Interleave polling so subprotocol requests (tdesc/assembly
       fetches) are served while the workload streams. *)
    ignore (Transport.poll tr ~timeout_ms:0.)
  done;
  let rref =
    { Peer.rr_host = receiver_addr; rr_id = 0; rr_class = Demo.news_person }
  in
  let greeting =
    match Peer.acquire sender rref ~interest:Demo.news_person with
    | Error e -> Error ("acquire: " ^ e)
    | Ok proxy -> (
        match Proxy.invoke (Peer.registry sender) proxy "greet" [] with
        | Value.Vstring s -> Ok s
        | v -> Error ("greet returned " ^ Value.to_string v)
        | exception Eval.Runtime_error m -> Error ("greet: " ^ m))
  in
  (* Keep serving fetches until the receiver confirms every object hit a
     terminal verdict; only then is it safe to hang up. *)
  let all_done =
    Transport.drive_until tr
      ~deadline_ms:(Transport.now_ms tr +. 30_000.)
      (fun () -> !receiver_done)
  in
  let wall_ms = 1000. *. (Unix.gettimeofday () -. started) in
  let stats = Transport.stats tr in
  Format.printf "sender: objects=%d wall=%.1f ms tx-bytes=%d reconnects=%d@."
    objects wall_ms (Stats.total_bytes stats)
    (Transport.retransmissions tr);
  Format.printf "%a@." Stats.pp stats;
  if handles then
    Format.printf "handles: hits=%d misses=%d renegotiations=%d@."
      (Peer.handle_hits sender) (Peer.handle_misses sender)
      (Peer.renegotiations sender);
  if batch_bytes <> None then
    Format.printf "batching: frames=%d envelopes=%d bytes-saved=%d@."
      (Peer.batch_messages sender)
      (Peer.batch_envelopes sender)
      (Peer.batch_bytes_saved sender);
  (match greeting with
  | Ok s -> Format.printf "remote greet() = %S@." s
  | Error e -> Format.printf "remote greet FAILED: %s@." e);
  if not all_done then
    Format.printf "receiver never confirmed completion@.";
  (* Hanging up is the receiver's signal to stop driving. *)
  Transport.close tr;
  match greeting with Ok _ when all_done -> 0 | _ -> 1

let run_stream_protocol kind ~mode ~objects ~distinct ~nonconf ~handles
    ?batch_bytes ~tdesc_binary ~listen ~connect () =
  let sender_side tr =
    protocol_sender tr ~mode ~objects ~distinct ~nonconf ~handles
      ?batch_bytes ~tdesc_binary ()
  and receiver_side tr =
    protocol_receiver tr ~mode ~objects ~distinct ~nonconf ~handles
      ?batch_bytes ~tdesc_binary ()
  in
  match (listen, connect) with
  | Some _, Some _ -> `Error (false, "--listen and --connect are exclusive")
  | Some spec, None ->
      let tr = stream_fabric kind ~metrics:(Metrics.create ()) () in
      Transport.set_bind tr receiver_addr spec;
      `Ok (receiver_side tr)
  | None, Some spec ->
      let tr = stream_fabric kind ~metrics:(Metrics.create ()) () in
      Transport.register_remote tr receiver_addr spec;
      `Ok (sender_side tr)
  | None, None ->
      (* Forked loopback: child = receiver, parent = sender. Unix
         sockets rendezvous on a fresh temp directory; TCP pre-opens the
         listener before forking so there is no port race. *)
      flush stdout;
      flush stderr;
      let fork_with ~child ~parent =
        match Unix.fork () with
        | 0 ->
            let status = try child () with _ -> 2 in
            Stdlib.exit status
        | pid ->
            let sender_status = try parent () with _ -> 2 in
            let _, child_st = Unix.waitpid [] pid in
            let child_status =
              match child_st with Unix.WEXITED n -> n | _ -> 2
            in
            `Ok (max sender_status child_status)
      in
      (match kind with
      | Transport.Unix_socket ->
          let dir =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "pti-proto-%d" (Unix.getpid ()))
          in
          (try Unix.mkdir dir 0o700
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let spec = Filename.concat dir (receiver_addr ^ ".sock") in
          fork_with
            ~child:(fun () ->
              let tr = stream_fabric kind ~dir ~metrics:(Metrics.create ()) () in
              Transport.set_bind tr receiver_addr spec;
              receiver_side tr)
            ~parent:(fun () ->
              let tr = stream_fabric kind ~dir ~metrics:(Metrics.create ()) () in
              Transport.register_remote tr receiver_addr spec;
              let s = sender_side tr in
              (try Unix.rmdir dir with Unix.Unix_error _ -> ());
              s)
      | Transport.Tcp ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
          Unix.listen fd 16;
          let spec =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (ip, port) ->
                Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
            | _ -> assert false
          in
          fork_with
            ~child:(fun () ->
              let tr = stream_fabric kind ~metrics:(Metrics.create ()) () in
              Transport.set_bind_fd tr receiver_addr fd;
              receiver_side tr)
            ~parent:(fun () ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              let tr = stream_fabric kind ~metrics:(Metrics.create ()) () in
              Transport.register_remote tr receiver_addr spec;
              sender_side tr)
      | Transport.Sim -> assert false)

let transport_conv =
  let parse s =
    match Transport.kind_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown transport %S (sim|unix|tcp)" s))
  in
  let print ppf k = Format.pp_print_string ppf (Transport.kind_name k) in
  Arg.conv (parse, print)

let transport_arg =
  Arg.(value
       & opt transport_conv Transport.Sim
       & info [ "transport" ] ~docv:"BACKEND"
           ~doc:"Network backend: $(b,sim) (in-process deterministic \
                 simulator), $(b,unix) (unix-domain stream sockets) or \
                 $(b,tcp). The stream backends run the same protocol \
                 cross-process: by default the command forks a receiver \
                 child; use $(b,--listen)/$(b,--connect) to run the two \
                 roles yourself.")

let listen_arg =
  Arg.(value & opt (some string) None
       & info [ "listen" ] ~docv:"SPEC"
           ~doc:"Run only the receiver role, listening at SPEC (a socket \
                 path for $(b,--transport unix), $(i,host:port) for \
                 $(b,tcp)).")

let connect_arg =
  Arg.(value & opt (some string) None
       & info [ "connect" ] ~docv:"SPEC"
           ~doc:"Run only the sender role, dialing a receiver started \
                 with $(b,--listen) at SPEC.")

let workload_args =
  let objects =
    Arg.(value & opt int 60
         & info [ "objects"; "n" ] ~docv:"N" ~doc:"Objects to transfer.")
  in
  let distinct =
    Arg.(value & opt int 10
         & info [ "distinct"; "k" ] ~docv:"K" ~doc:"Distinct event types.")
  in
  let nonconf =
    Arg.(value & opt int 0
         & info [ "nonconf" ] ~docv:"M"
             ~doc:"How many of the K types are non-conformant.")
  in
  let eager =
    Arg.(value & flag
         & info [ "eager" ] ~doc:"Use the eager baseline instead of the \
                                  optimistic protocol.")
  in
  (objects, distinct, nonconf, eager)

let validate_workload objects distinct nonconf =
  objects > 0 && distinct > 0 && nonconf >= 0 && nonconf <= distinct

let protocol_cmd =
  let objects, distinct, nonconf, eager = workload_args in
  let show_metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Also print the metrics-registry snapshot (caches, \
                   latency histograms, checker counters).")
  in
  let handles =
    Arg.(value & flag
         & info [ "handles" ]
             ~doc:"Negotiate per-link type handles: repeat type entries \
                   ship as small integers after first use.")
  in
  let batch_bytes =
    Arg.(value & opt (some int) None
         & info [ "batch-bytes" ] ~docv:"B"
             ~doc:"Coalesce same-instant sends to one destination into \
                   framed batches of at most B bytes.")
  in
  let tdesc_binary =
    Arg.(value & flag
         & info [ "tdesc-binary" ]
             ~doc:"Request type descriptions in the compact binary codec \
                   (XML stays the fallback).")
  in
  let run objects distinct nonconf eager show_metrics handles batch_bytes
      tdesc_binary transport listen connect =
    if not (validate_workload objects distinct nonconf) then
      `Error (false, "need objects > 0 and 0 <= nonconf <= distinct > 0")
    else begin
      let mode = if eager then Peer.Eager else Peer.Optimistic in
      match transport with
      | Transport.Unix_socket | Transport.Tcp ->
          run_stream_protocol transport ~mode ~objects ~distinct ~nonconf
            ~handles ?batch_bytes ~tdesc_binary ~listen ~connect ()
      | Transport.Sim when listen <> None || connect <> None ->
          `Error (false, "--listen/--connect need --transport unix or tcp")
      | Transport.Sim ->
          let metrics = Metrics.create () in
          let net, sender, delivered, rejected =
            run_workload ~mode ~objects ~distinct ~nonconf ~metrics ~handles
              ?batch_bytes ~tdesc_binary ()
          in
          Format.printf
            "mode=%s objects=%d distinct=%d nonconf=%d@.delivered=%d \
             rejected=%d completion=%.1f ms@.%a@."
            (if eager then "eager" else "optimistic")
            objects distinct nonconf delivered rejected (Net.now_ms net)
            Stats.pp (Net.stats net);
          if handles then
            Format.printf "handles: hits=%d misses=%d renegotiations=%d@."
              (Peer.handle_hits sender)
              (Peer.handle_misses sender)
              (Peer.renegotiations sender);
          if batch_bytes <> None then
            Format.printf "batching: frames=%d envelopes=%d bytes-saved=%d@."
              (Peer.batch_messages sender)
              (Peer.batch_envelopes sender)
              (Peer.batch_bytes_saved sender);
          if show_metrics then
            Format.printf "@.%a@." Metrics.pp (Metrics.snapshot metrics);
          `Ok 0
    end
  in
  Cmd.v
    (Cmd.info "protocol"
       ~doc:"Transfer a synthetic workload and report wire traffic (E5). \
             With $(b,--transport unix) or $(b,tcp) the same workload \
             runs cross-process over real sockets, finishing with a \
             remote invocation as an end-to-end barrier.")
    Term.(
      ret
        (const run $ objects $ distinct $ nonconf $ eager $ show_metrics
        $ handles $ batch_bytes $ tdesc_binary $ transport_arg $ listen_arg
        $ connect_arg))

(* ------------------------------ stats ------------------------------ *)

let stats_cmd =
  let objects, distinct, nonconf, eager = workload_args in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the snapshot as one JSON object.")
  in
  let tdesc_cache =
    Arg.(value & opt (some int) None
         & info [ "tdesc-cache" ] ~docv:"N"
             ~doc:"Capacity of each peer's type-description cache.")
  in
  let checker_cache =
    Arg.(value & opt (some int) None
         & info [ "checker-cache" ] ~docv:"N"
             ~doc:"Capacity of each peer's conformance-verdict cache.")
  in
  let scale =
    Arg.(value & opt (some int) None
         & info [ "scale" ] ~docv:"N"
             ~doc:"Instead of the two-peer workload, drive the scale \
                   simulator with N sessions and snapshot its registry — \
                   the $(b,scale.*) namespace (session/send/delivery \
                   counters, the scale.latency_ms histogram, cache-rate \
                   gauges) alongside the usual net.* and peer.* metrics.")
  in
  let run objects distinct nonconf eager json tdesc_cache checker_cache scale =
    match scale with
    | Some sessions when sessions > 0 ->
        let metrics = Metrics.create () in
        let cfg = { Scale_driver.default_config with sessions } in
        ignore (Scale_driver.run ~metrics cfg);
        let snap = Metrics.snapshot metrics in
        if json then print_endline (Metrics.to_json snap)
        else Format.printf "%a@." Metrics.pp snap;
        `Ok 0
    | Some _ -> `Error (false, "--scale needs a positive session count")
    | None ->
        if not (validate_workload objects distinct nonconf) then
          `Error (false, "need objects > 0 and 0 <= nonconf <= distinct > 0")
        else begin
          let mode = if eager then Peer.Eager else Peer.Optimistic in
          let metrics = Metrics.create () in
          let _net, _sender, _delivered, _rejected =
            run_workload ~mode ~objects ~distinct ~nonconf ~metrics
              ?tdesc_cache_capacity:tdesc_cache
              ?checker_cache_capacity:checker_cache ()
          in
          let snap = Metrics.snapshot metrics in
          if json then print_endline (Metrics.to_json snap)
          else Format.printf "%a@." Metrics.pp snap;
          `Ok 0
        end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run the protocol workload (or, with $(b,--scale), the \
             population-scale simulator) against one shared metrics \
             registry and print the full snapshot: per-peer cache \
             hit/miss/eviction counters, checker verdict-cache reuse, \
             network latency histograms, traffic gauges and the scale.* \
             namespace.")
    Term.(
      ret
        (const run $ objects $ distinct $ nonconf $ eager $ json $ tdesc_cache
        $ checker_cache $ scale))

(* ------------------------------ scale ------------------------------ *)

(* One scale run with wall-clock timing; JSON rows accumulate so --sweep
   emits the whole E14 curve in a single file. *)
let scale_run_one cfg =
  let started = Unix.gettimeofday () in
  let report = Scale_driver.run cfg in
  let wall_ms = 1000. *. (Unix.gettimeofday () -. started) in
  (report, wall_ms)

let scale_cmd =
  let sessions =
    Arg.(value & opt int 10_000
         & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent-session population.")
  in
  let families =
    Arg.(value & opt int 16
         & info [ "families" ] ~docv:"K"
             ~doc:"Distinct type families in the zipf popularity curve.")
  in
  let trap_families =
    Arg.(value & opt int 2
         & info [ "trap-families" ] ~docv:"M"
             ~doc:"Least-popular ranks that are non-conformant traps \
                   (rejected before any code download).")
  in
  let sends =
    Arg.(value & opt int 2
         & info [ "sends" ] ~docv:"S"
             ~doc:"Envelopes per session over its lifetime.")
  in
  let zipf =
    Arg.(value & opt float 1.1
         & info [ "zipf" ] ~docv:"EXP"
             ~doc:"Zipf popularity exponent (0 = uniform).")
  in
  let churn =
    Arg.(value & opt float 0.5
         & info [ "churn" ] ~docv:"C"
             ~doc:"Session turnover: 0 = immortal sessions, larger = \
                   shorter exponential lifetimes.")
  in
  let flash_at =
    Arg.(value & opt (some float) None
         & info [ "flash-at" ] ~docv:"MS"
             ~doc:"Simulated instant at which a brand-new hot type \
                   thunders over every live session (exercises in-flight \
                   fetch dedup at scale).")
  in
  let upgrade_at =
    Arg.(value & opt (some float) None
         & info [ "upgrade-at" ] ~docv:"MS"
             ~doc:"Simulated instant at which the hottest family (zipf \
                   rank 0) is CAS-republished at schema v2 under \
                   sustained traffic (E15): in-flight sends keep \
                   decoding at v1 by pinned revision, later sends \
                   travel at v2, and the run must still end with zero \
                   undelivered.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Workload seed; equal seeds give bit-identical traces.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"R"
             ~doc:"Receiving endpoints sharing the one flyweight block. \
                   The block's caches are sharded by destination hash \
                   into the same count, so each endpoint's descriptions \
                   and verdicts live in their own slot; 1 (default) is \
                   bit-identical to the historical single-cache block.")
  in
  let horizon =
    Arg.(value & opt float 60_000.
         & info [ "horizon-ms" ] ~docv:"MS" ~doc:"Simulated run length.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the report(s) as JSON to FILE ($(b,-) for stdout).")
  in
  let sweep =
    Arg.(value & opt (some string) None
         & info [ "sweep" ] ~docv:"N1,N2,..."
             ~doc:"Run once per population size and report the whole \
                   curve (E14); overrides $(b,--sessions).")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"CI mode: run twice and fail (exit 1) unless deliveries \
                   are nonzero, nothing is left undelivered, same-seed \
                   trace hashes agree, and a flash crowd collapsed to \
                   O(shards) fetches.")
  in
  let min_reuse =
    Arg.(value & opt (some float) None
         & info [ "min-reuse" ] ~docv:"R"
             ~doc:"Fail (exit 1) unless the run's aggregate verdict \
                   reuse rate is at least R — the hub fan-out guard \
                   against E5e-style reuse collapse.")
  in
  let expect_trace =
    Arg.(value & opt (some string) None
         & info [ "expect-trace" ] ~docv:"HEX"
             ~doc:"Fail (exit 1) unless the run's trace hash equals HEX \
                   (lowercase hex, as printed) — pins shards=1 parity \
                   across refactors.")
  in
  let run sessions families trap_families sends zipf churn flash_at
      upgrade_at seed shards horizon json_out sweep smoke min_reuse
      expect_trace =
    let cfg =
      {
        Scale_driver.sessions;
        families;
        trap_families;
        sends_per_session = sends;
        zipf_s = zipf;
        churn;
        flash_at_ms = flash_at;
        upgrade_at_ms = upgrade_at;
        seed = Int64.of_int seed;
        shards;
        horizon_ms = horizon;
      }
    in
    let sizes =
      match sweep with
      | None -> Ok [ sessions ]
      | Some s -> (
          try
            Ok
              (String.split_on_char ',' s
              |> List.filter (fun x -> String.trim x <> "")
              |> List.map (fun x -> int_of_string (String.trim x)))
          with Failure _ -> Error (Printf.sprintf "bad --sweep list %S" s))
    in
    match sizes with
    | Error e -> `Error (false, e)
    | Ok [] -> `Error (false, "--sweep needs at least one size")
    | Ok sizes -> (
        try
          (* With --json - the JSON owns stdout; human reports move to
             stderr so the output stays machine-parseable in a pipe. *)
          let human =
            if json_out = Some "-" then Format.err_formatter
            else Format.std_formatter
          in
          let rows =
            List.map
              (fun n ->
                let cfg = { cfg with Scale_driver.sessions = n } in
                let report, wall_ms = scale_run_one cfg in
                Format.fprintf human "%a@.wall %.0f ms@.@."
                  Scale_driver.pp_report report wall_ms;
                let ok =
                  if not smoke then true
                  else begin
                    let r = report in
                    let rerun, _ = scale_run_one cfg in
                    let dedup_ok =
                      match cfg.Scale_driver.flash_at_ms with
                      | None -> true
                      | Some _ ->
                          r.Scale_driver.r_flash_sends > 0
                          && r.Scale_driver.r_flash_tdesc_fetches
                             <= 4 * cfg.Scale_driver.shards
                          && r.Scale_driver.r_flash_asm_fetches
                             <= 2 * cfg.Scale_driver.shards
                    in
                    let upgrade_ok =
                      match cfg.Scale_driver.upgrade_at_ms with
                      | None -> true
                      | Some _ ->
                          r.Scale_driver.r_upgraded_version >= 2
                          && r.Scale_driver.r_upgrade_sends > 0
                    in
                    let checks =
                      [
                        (r.Scale_driver.r_deliveries > 0, "no deliveries");
                        (r.Scale_driver.r_undelivered = 0,
                         "conformant sends left undelivered");
                        (Int64.equal r.Scale_driver.r_trace_hash
                           rerun.Scale_driver.r_trace_hash,
                         "same-seed trace hashes differ");
                        (dedup_ok, "flash-crowd fetches not O(shards)");
                        (upgrade_ok,
                         "upgrade did not land (chain head < v2 or no \
                          post-upgrade traffic)");
                      ]
                    in
                    List.fold_left
                      (fun acc (ok, msg) ->
                        if not ok then
                          Format.fprintf human "SMOKE FAIL (n=%d): %s@." n
                            msg;
                        acc && ok)
                      true checks
                  end
                in
                let gates = ref true in
                (match min_reuse with
                | None -> ()
                | Some threshold ->
                    if
                      report.Scale_driver.r_verdict_reuse_rate < threshold
                    then begin
                      Format.fprintf human
                        "GATE FAIL (n=%d): verdict reuse %.4f < %g@." n
                        report.Scale_driver.r_verdict_reuse_rate threshold;
                      gates := false
                    end);
                (match expect_trace with
                | None -> ()
                | Some hex ->
                    let got =
                      Printf.sprintf "%Lx" report.Scale_driver.r_trace_hash
                    in
                    if not (String.equal (String.lowercase_ascii hex) got)
                    then begin
                      Format.fprintf human
                        "GATE FAIL (n=%d): trace %s, expected %s@." n got
                        hex;
                      gates := false
                    end);
                (Scale_driver.report_to_json ~wall_ms report, ok && !gates))
              sizes
          in
          let all_ok = List.for_all snd rows in
          (match json_out with
          | None -> ()
          | Some dst ->
              let body =
                Printf.sprintf
                  "{\"experiment\":\"E14-scale\",\"runs\":[%s]}\n"
                  (String.concat "," (List.map fst rows))
              in
              if dst = "-" then print_string body
              else begin
                let oc = open_out dst in
                output_string oc body;
                close_out oc;
                Format.printf "wrote %s@." dst
              end);
          if smoke then
            Format.fprintf human "scale smoke: %s@."
              (if all_ok then "OK" else "FAILED");
          `Ok (if all_ok then 0 else 1)
        with Invalid_argument e -> `Error (false, e))
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Drive the deterministic population-scale workload simulator: \
             zipf type popularity, session churn and optional flash \
             crowds over lightweight sessions that share one flyweight \
             peer block. Reports sustained deliveries/sec, latency \
             percentiles, cache hit/reuse rates, flash-crowd dedup \
             fan-in and the run's trace hash (equal seeds, equal \
             hashes).")
    Term.(
      ret
        (const run $ sessions $ families $ trap_families $ sends $ zipf
        $ churn $ flash_at $ upgrade_at $ seed $ shards $ horizon $ json_out
        $ sweep $ smoke $ min_reuse $ expect_trace))

(* ----------------------------- compile ----------------------------- *)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Definition-language source (.idl/.vb).")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"OUT"
             ~doc:"Output path for the assembly XML (default: stdout).")
  in
  let run file output =
    match load_idl file with
    | Error msg -> `Error (false, msg)
    | Ok asm -> (
        let xml = Pti_serial.Assembly_xml.to_string asm in
        match output with
        | None ->
            print_endline xml;
            `Ok 0
        | Some path ->
            let oc = open_out_bin path in
            output_string oc xml;
            close_out oc;
            Printf.printf "wrote %s (%d classes, %d bytes)\n" path
              (List.length asm.Assembly.asm_classes)
              (String.length xml);
            `Ok 0)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile a definition-language source into assembly XML (the \
             code-download wire format).")
    Term.(ret (const run $ file $ output))

(* ------------------------------- run -------------------------------- *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"ASSEMBLY"
             ~doc:"Assembly XML file (from 'pti compile') or a source file.")
  in
  let cls =
    Arg.(required & opt (some string) None
         & info [ "class"; "c" ] ~docv:"NAME" ~doc:"Class to instantiate.")
  in
  let meth =
    Arg.(required & opt (some string) None
         & info [ "method"; "m" ] ~docv:"NAME" ~doc:"Method to invoke.")
  in
  let ctor_args =
    Arg.(value & opt_all string []
         & info [ "new" ] ~docv:"ARG"
             ~doc:"Constructor argument (repeatable; int/bool/float parsed, \
                   else string).")
  in
  let meth_args =
    Arg.(value & opt_all string []
         & info [ "arg" ] ~docv:"ARG" ~doc:"Method argument (repeatable).")
  in
  let parse_value s =
    match int_of_string_opt s with
    | Some i -> Value.Vint i
    | None -> (
        match bool_of_string_opt s with
        | Some b -> Value.Vbool b
        | None -> (
            match float_of_string_opt s with
            | Some f -> Value.Vfloat f
            | None -> Value.Vstring s))
  in
  let load path =
    if Filename.check_suffix path ".xml" then
      match read_file path with
      | Error msg -> Error msg
      | Ok src -> (
          match Pti_serial.Assembly_xml.of_string src with
          | Ok asm -> Ok asm
          | Error msg -> Error (path ^ ": " ^ msg))
    else load_idl path
  in
  let run file cls meth ctor_args meth_args =
    match load file with
    | Error msg -> `Error (false, msg)
    | Ok asm -> (
        let reg = Registry.create () in
        match Assembly.load reg asm with
        | exception Registry.Duplicate name ->
            `Error (false, "duplicate type " ^ name)
        | () -> (
            match
              let obj =
                Eval.construct reg cls (List.map parse_value ctor_args)
              in
              Eval.call reg obj meth (List.map parse_value meth_args)
            with
            | result ->
                print_endline (Value.to_string result);
                `Ok 0
            | exception Eval.Runtime_error msg -> `Error (false, msg)))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Instantiate a class from an assembly and invoke one method.")
    Term.(ret (const run $ file $ cls $ meth $ ctor_args $ meth_args))

(* ------------------------------ cluster ---------------------------- *)

let cluster_cmd =
  let peers =
    Arg.(value & opt int 4
         & info [ "peers" ] ~docv:"N" ~doc:"Cluster size (at least 3).")
  in
  let factor =
    Arg.(value & opt int 2
         & info [ "factor" ] ~docv:"K"
             ~doc:"Replication factor: total copies of each published \
                   assembly, publisher included.")
  in
  let objects =
    Arg.(value & opt int 20
         & info [ "objects"; "n" ] ~docv:"N" ~doc:"Objects to transfer.")
  in
  let distinct =
    Arg.(value & opt int 4
         & info [ "distinct"; "k" ] ~docv:"K" ~doc:"Distinct event types.")
  in
  let rounds =
    Arg.(value & opt int 3
         & info [ "rounds" ] ~docv:"R"
             ~doc:"Anti-entropy gossip rounds before the transfer phase.")
  in
  let crash_origin =
    Arg.(value & flag
         & info [ "crash-origin" ]
             ~doc:"Partition the publishing peer from everyone after the \
                   gossip phase: deliveries must go through mirror \
                   failover.")
  in
  let eager =
    Arg.(value & flag
         & info [ "eager" ] ~doc:"Use the eager baseline instead of the \
                                  optimistic protocol.")
  in
  let show_metrics =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Also print the metrics-registry \
                                    snapshot (cluster.* included).")
  in
  let upgrade =
    Arg.(value & flag
         & info [ "upgrade" ]
             ~doc:"Midway through the transfer phase, CAS-republish the \
                   first family at schema v2 on the origin's version \
                   chain. Anti-entropy gossip must converge every node \
                   on the two-entry chain, mirrors keep serving v1 to \
                   old receivers, and every object must still be \
                   delivered.")
  in
  let run peers factor objects distinct rounds crash_origin eager
      show_metrics upgrade transport =
    if peers < 3 then `Error (false, "need --peers >= 3 (origin, relay, receiver)")
    else if factor < 1 || factor > peers then
      `Error (false, "need 1 <= --factor <= --peers")
    else if not (validate_workload objects distinct 0) then
      `Error (false, "need objects > 0 and distinct > 0")
    else if upgrade && crash_origin then
      `Error (false, "--upgrade needs the origin alive (drop --crash-origin)")
    else begin
      let module Cluster = Pti_cluster.Cluster in
      let module Node = Pti_cluster.Node in
      let mode = if eager then Peer.Eager else Peer.Optimistic in
      let metrics = Metrics.create () in
      (* sim: the deterministic simulator. unix/tcp: every node on one
         in-process stream fabric — each peer gets a real listening
         socket and traffic crosses the kernel. *)
      let tr =
        match transport with
        | Transport.Sim -> Transport.of_net (Net.create ~seed:17L ~metrics ())
        | k -> stream_fabric k ~metrics ()
      in
      let addrs = List.init peers (fun i -> Printf.sprintf "p%d" (i + 1)) in
      let c =
        Cluster.create ~mode ~metrics ~factor ~request_timeout_ms:500.
          ~probe_timeout_ms:250. ~transport:tr addrs
      in
      let origin = List.hd addrs in
      let origin_node = Cluster.node c origin in
      let families =
        Array.init distinct (fun i ->
            Workload.family ~index:i ~flavor:Workload.Conformant)
      in
      (* Which hosts end up holding replicas? Route the transfer through
         hosts that do not, so --crash-origin exercises failover rather
         than the local fast path. *)
      let holders =
        Array.to_list families
        |> List.concat_map (fun asm ->
               Node.placement origin_node
                 ~assembly:asm.Assembly.asm_name (factor - 1))
        |> List.sort_uniq compare
      in
      let spare = List.filter (fun a -> a <> origin && not (List.mem a holders)) addrs in
      let relay, receiver =
        match (spare, List.rev addrs) with
        | a :: b :: _, _ -> (a, b)
        | [ a ], last :: _ when last <> a -> (a, last)
        | _, last :: prev :: _ -> (prev, last)
        | _ -> assert false
      in
      Array.iter (fun asm -> Node.publish origin_node asm) families;
      (* Prime the relay: one object per family from the origin loads the
         code there and records the origin's advertised paths. *)
      let relay_peer = Cluster.peer c relay in
      Peer.install_assembly relay_peer (Workload.interest_assembly ());
      Peer.register_interest relay_peer ~interest:Workload.interest_person
        (fun ~from:_ _ -> ());
      Array.iteri
        (fun i _ ->
          let v =
            Workload.make_person
              (Peer.registry (Cluster.peer c origin))
              ~index:i ~flavor:Workload.Conformant
              ~name:(Printf.sprintf "seed%d" i) ~age:i
          in
          Peer.send_value (Cluster.peer c origin) ~dst:relay v)
        families;
      Cluster.run c;
      Cluster.run_rounds c rounds;
      if crash_origin then Cluster.crash c origin;
      let receiver_peer = Cluster.peer c receiver in
      Peer.install_assembly receiver_peer (Workload.interest_assembly ());
      let delivered = ref 0 in
      Peer.register_interest receiver_peer ~interest:Workload.interest_person
        (fun ~from:_ _ -> incr delivered);
      (* --upgrade: flip the first family to v2 on the origin's chain
         halfway through, then let gossip spread the new chain entry
         while the remaining (v1-built) objects keep flowing. *)
      let upgraded = ref None in
      for n = 0 to objects - 1 do
        if upgrade && n = objects / 2 then begin
          (match Node.publish_cas origin_node families.(0) with
          | Error _ -> ()
          | Ok ve1 -> (
              let v2 =
                Workload.family_v ~version:2 ~index:0
                  ~flavor:Workload.Conformant
              in
              match
                Node.publish_cas ~expect:ve1.Repository.ve_digest origin_node
                  v2
              with
              | Ok ve2 -> upgraded := Some ve2
              | Error _ -> ()));
          Transport.run tr;
          Cluster.run_rounds c 2
        end;
        let index = n mod distinct in
        let v =
          Workload.make_person (Peer.registry relay_peer) ~index
            ~flavor:Workload.Conformant
            ~name:(Printf.sprintf "p%d" n) ~age:n
        in
        Peer.send_value relay_peer ~dst:receiver v;
        Transport.run tr
      done;
      let upgrade_converged =
        if not upgrade then true
        else begin
          Cluster.run_rounds c rounds;
          match !upgraded with
          | None -> false
          | Some ve ->
              List.for_all
                (fun a ->
                  match
                    Repository.resolve
                      (Peer.repository (Cluster.peer c a))
                      families.(0).Assembly.asm_name
                  with
                  | Some head ->
                      head.Repository.ve_version = ve.Repository.ve_version
                  | None -> false)
                addrs
        end
      in
      let rejected =
        List.length
          (List.filter
             (function Peer.Rejected _ -> true | _ -> false)
             (Peer.events receiver_peer))
      in
      Format.printf
        "cluster: peers=%d factor=%d rounds=%d mode=%s crash-origin=%b@."
        peers factor rounds
        (if eager then "eager" else "optimistic")
        crash_origin;
      Format.printf "roles: origin=%s relay=%s receiver=%s holders=[%s]@."
        origin relay receiver (String.concat ", " holders);
      Format.printf
        "delivered=%d/%d rejected=%d completion=%.1f ms@." !delivered objects
        rejected (Transport.now_ms tr);
      Format.printf
        "receiver: fetch attempts=%d retries=%d failovers=%d known \
         mirrors(first family)=%d@."
        (Peer.fetch_attempts receiver_peer)
        (Peer.fetch_retries receiver_peer)
        (Peer.fetch_failovers receiver_peer)
        (List.length
           (Node.known_mirrors (Cluster.node c receiver)
              families.(0).Assembly.asm_name));
      Format.printf "receiver membership: %s@."
        (String.concat ", "
           (List.map
              (fun (a, st) ->
                Printf.sprintf "%s=%s" a (Node.status_name st))
              (Node.members (Cluster.node c receiver))));
      let total f = List.fold_left (fun acc n -> acc + f n) 0 (Cluster.nodes c) in
      Format.printf "gossip: rounds=%d digest-bytes=%d@."
        (total Node.gossip_rounds) (total Node.digest_bytes);
      if upgrade then
        Format.printf "upgrade: chain head %s, converged on all %d nodes: %b@."
          (match !upgraded with
          | Some ve -> Printf.sprintf "v%d" ve.Repository.ve_version
          | None -> "lost (CAS conflict)")
          peers upgrade_converged;
      Format.printf "%a@." Stats.pp (Transport.stats tr);
      if show_metrics then
        Format.printf "@.%a@." Metrics.pp (Metrics.snapshot metrics);
      Transport.close tr;
      `Ok (if !delivered = objects && upgrade_converged then 0 else 1)
    end
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Run a replicated N-peer scenario: gossip spreads type \
             descriptions and mirror paths, assemblies are placed with \
             factor-K replication, and (with $(b,--crash-origin)) \
             deliveries survive the publisher's crash through mirror \
             failover. Exits 1 unless every object is delivered. With \
             $(b,--transport unix) or $(b,tcp) every node listens on a \
             real socket and all traffic crosses the kernel.")
    Term.(
      ret
        (const run $ peers $ factor $ objects $ distinct $ rounds
        $ crash_origin $ eager $ show_metrics $ upgrade $ transport_arg))

(* ------------------------------ publish ---------------------------- *)

let publish_cmd =
  let cas =
    Arg.(value & flag
         & info [ "cas" ]
             ~doc:"Publish through the compare-and-set version chain: \
                   each revision names the digest it expects at the \
                   head, a mismatch is a $(b,Conflict) (lost race), and \
                   every superseded revision stays resolvable by \
                   version pin or content digest. Without this flag the \
                   assembly is published the classic way (no chain).")
  in
  let revisions =
    Arg.(value & opt int 2
         & info [ "revisions" ] ~docv:"N"
             ~doc:"Revisions to chain with $(b,--cas) (v2+ add an email \
                   field to the family's Person).")
  in
  let run cas revisions =
    if revisions < 1 then `Error (false, "--revisions must be at least 1")
    else begin
      let net = Net.create () in
      let peer = Peer.create ~net "repo" in
      let repo = Peer.repository peer in
      let v1 = Workload.family ~index:0 ~flavor:Workload.Conformant in
      let name = v1.Assembly.asm_name in
      if not cas then begin
        Peer.publish_assembly peer v1;
        (match Repository.find_by_name repo name with
        | Some (path, _) -> Format.printf "published %s at %s@." name path
        | None -> ());
        `Ok 0
      end
      else begin
        let expect = ref None in
        let ok = ref true in
        for v = 1 to revisions do
          let asm =
            Workload.family_v ~version:v ~index:0
              ~flavor:Workload.Conformant
          in
          match Peer.publish_assembly_cas ?expect:!expect peer asm with
          | Ok ve ->
              Format.printf "cas v%d: digest %s at %s@."
                ve.Repository.ve_version ve.Repository.ve_digest
                ve.Repository.ve_path;
              expect := Some ve.Repository.ve_digest
          | Error (Repository.Conflict { expected; head }) ->
              ok := false;
              Format.printf "cas v%d: CONFLICT (expected %s, head %s)@." v
                (Option.value ~default:"<empty>" expected)
                (Option.value ~default:"<empty>" head)
        done;
        (* A deliberately stale writer: expecting the original head must
           lose once the chain has moved past it. *)
        (if revisions > 1 then
           let stale =
             Workload.family_v ~version:(revisions + 1) ~index:0
               ~flavor:Workload.Conformant
           in
           let first =
             match Repository.chain repo name with
             | ve :: _ -> Some ve.Repository.ve_digest
             | [] -> None
           in
           match Peer.publish_assembly_cas ?expect:first peer stale with
           | Ok _ ->
               ok := false;
               Format.printf "stale cas: unexpectedly won@."
           | Error (Repository.Conflict _) ->
               Format.printf "stale cas: conflict, as it must@.");
        Format.printf "chain %s: [%s]@." name
          (String.concat "; "
             (List.map
                (fun ve ->
                  Printf.sprintf "v%d=%s" ve.Repository.ve_version
                    (String.sub ve.Repository.ve_digest 0 8))
                (Repository.chain repo name)));
        List.iter
          (fun ve ->
            match
              Repository.resolve
                ~pin:(Repository.Version ve.Repository.ve_version) repo name
            with
            | Some got
              when String.equal got.Repository.ve_digest
                     ve.Repository.ve_digest ->
                ()
            | _ ->
                ok := false;
                Format.printf "pin v%d: does not resolve@."
                  ve.Repository.ve_version)
          (Repository.chain repo name);
        `Ok (if !ok then 0 else 1)
      end
    end
  in
  Cmd.v
    (Cmd.info "publish"
       ~doc:"Publish the demo workload family into a repository and \
             print where it landed. With $(b,--cas), drive the \
             content-addressed version chain: chain N revisions by \
             compare-and-set, show that a stale expectation loses with \
             a conflict, and that every revision stays resolvable by \
             version pin. Exits 1 if any CAS outcome deviates.")
    Term.(ret (const run $ cas $ revisions))

(* ------------------------------- demo ------------------------------ *)

let demo_cmd =
  let run () =
    let net = Net.create () in
    let sender = Peer.create ~net "sender" in
    let receiver = Peer.create ~net "receiver" in
    Peer.publish_assembly sender (Demo.social_assembly ());
    Peer.publish_assembly receiver (Demo.news_assembly ());
    Peer.register_interest receiver ~interest:Demo.news_person
      (fun ~from person ->
        Format.printf "receiver got %s from %s@." (Value.type_name person) from;
        match Eval.call (Peer.registry receiver) person "greet" [] with
        | Value.Vstring s -> Format.printf "  greet() = %S@." s
        | _ -> ());
    let alice =
      Demo.make_social_person (Peer.registry sender) ~name:"Alice" ~age:30
    in
    Peer.send_value sender ~dst:"receiver" alice;
    Net.run net;
    Format.printf "%a@." Stats.pp (Net.stats net);
    `Ok 0
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the §3.1 Person quickstart scenario.")
    Term.(ret (const run $ const ()))

(* ------------------------------- chaos ----------------------------- *)

let chaos_cmd =
  let runs =
    Arg.(value & opt int 20
         & info [ "runs" ] ~docv:"N" ~doc:"Seeded schedules to execute.")
  in
  let seed =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Root seed; per-run seeds derive from it. A failing \
                   run reports its own seed for direct reproduction.")
  in
  let profile =
    let parse s =
      match Pti_fault.Fault_plan.profile_of_string s with
      | Some p -> Ok p
      | None ->
          Error (`Msg (Printf.sprintf
                         "unknown profile %S (lossy|flaky|byzantine-wire)" s))
    in
    let print ppf p =
      Format.pp_print_string ppf (Pti_fault.Fault_plan.profile_name p)
    in
    Arg.(value
         & opt (conv (parse, print)) Pti_fault.Fault_plan.Lossy
         & info [ "profile" ] ~docv:"PROFILE"
             ~doc:"Fault profile: $(b,lossy) (burst loss, duplication, \
                   reordering), $(b,flaky) (link flaps and crash windows \
                   on top of loss) or $(b,byzantine-wire) (byte \
                   corruption).")
  in
  let cluster =
    Arg.(value & flag
         & info [ "cluster" ]
             ~doc:"Run each schedule against a replicated 4-node cluster \
                   (gossip, mirrors, membership re-convergence) instead \
                   of two peers.")
  in
  let objects =
    Arg.(value & opt int 8
         & info [ "objects"; "n" ] ~docv:"N" ~doc:"Objects sent per run.")
  in
  let wire =
    Arg.(value & flag
         & info [ "wire" ]
             ~doc:"Enable the wire-efficiency features (negotiated type \
                   handles, envelope batching, binary tdesc codec) and \
                   additionally drop the receiver's handle tables \
                   mid-run: the run must degrade through renegotiation, \
                   never deliver a mis-typed payload.")
  in
  let upgrade =
    Arg.(value & flag
         & info [ "upgrade" ]
             ~doc:"Live schema evolution under faults: halfway through \
                   each run's send window, the first family is \
                   CAS-republished at v2 on the sender's version chain. \
                   Later sends of that family must decode at v2, \
                   in-flight v1 sends at v1 — the upgrade-safety \
                   invariant rejects any cross-decode.")
  in
  let run runs seed profile cluster objects wire upgrade =
    if runs < 1 then `Error (false, "--runs must be at least 1")
    else if objects < 1 then `Error (false, "--objects must be at least 1")
    else begin
      let config =
        {
          Chaos.c_profile = profile;
          c_cluster = cluster;
          c_objects = objects;
          c_frame_integrity = true;
          c_wire = wire;
          c_upgrade = upgrade;
        }
      in
      let summary = Chaos.run_many config ~runs ~seed in
      Format.printf "%a@." Chaos.pp_summary summary;
      (match summary.Chaos.s_failures with
      | [] -> ()
      | first :: _ ->
          Format.printf "reproduce with: pti chaos --runs 1 --seed %Ld \
                         --profile %s --objects %d%s%s%s@."
            first.Chaos.r_seed
            (Pti_fault.Fault_plan.profile_name profile)
            objects
            (if cluster then " --cluster" else "")
            (if wire then " --wire" else "")
            (if upgrade then " --upgrade" else ""));
      `Ok (if summary.Chaos.s_failures = [] then 0 else 1)
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Execute N seeded fault schedules against the protocol and \
             check its invariants (delivery conservation, exactly-once, \
             no mangled values, trap rejection, verdict stability, \
             membership convergence, metrics-vs-trace). Faults are \
             armed as transport middleware on the deterministic sim \
             backend — the same hook record the socket backends accept, \
             but with reproducible seeded schedules. A failing schedule \
             is shrunk to a minimal reproducing plan. Exits 1 on any \
             invariant violation.")
    Term.(
      ret
        (const run $ runs $ seed $ profile $ cluster $ objects $ wire
        $ upgrade))

(* ------------------------------ explore ---------------------------- *)

let explore_cmd =
  let scenario =
    let parse s =
      match Pti_mc.Scenario.kind_of_string s with
      | Some k -> Ok k
      | None ->
          Error (`Msg (Printf.sprintf
                         "unknown scenario %S \
                          (protocol|cluster|wire|evolution)" s))
    in
    let print ppf k =
      Format.pp_print_string ppf (Pti_mc.Scenario.kind_name k)
    in
    Arg.(value
         & opt (conv (parse, print)) Pti_mc.Scenario.Protocol
         & info [ "scenario" ] ~docv:"SCENARIO"
             ~doc:"World to explore: $(b,protocol) (two peers, classic \
                   wire), $(b,cluster) (replicated repositories with \
                   gossip ticks as explorable actions), $(b,wire) \
                   (handle negotiation, batching, binary tdescs, and a \
                   handle-table drop as explorable actions) or \
                   $(b,evolution) (a v2 CAS publication of the one \
                   family in play as an explorable action racing the \
                   sends and type subprotocols; every delivery must \
                   decode at the revision it negotiated).")
  in
  let peers =
    Arg.(value & opt int 3
         & info [ "peers" ] ~docv:"N"
             ~doc:"Cluster size (cluster scenario only).")
  in
  let objects =
    Arg.(value & opt int 2
         & info [ "objects"; "n" ] ~docv:"N" ~doc:"Objects sent.")
  in
  let depth =
    Arg.(value & opt int 8
         & info [ "depth" ] ~docv:"D"
             ~doc:"Choice points per schedule; beyond the bound the \
                   remaining events run FIFO.")
  in
  let budget =
    Arg.(value & opt int 20_000
         & info [ "budget" ] ~docv:"N"
             ~doc:"Maximum terminal states to evaluate.")
  in
  let max_seconds =
    Arg.(value & opt float 300.
         & info [ "max-seconds" ] ~docv:"S"
             ~doc:"Wall-clock bound for the whole exploration.")
  in
  let schedule =
    Arg.(value & opt (some string) None
         & info [ "schedule" ] ~docv:"REPLAY"
             ~doc:"Skip exploration: replay this one schedule (as \
                   printed on failure; $(b,-) is the empty/FIFO \
                   schedule) and check the invariants.")
  in
  let no_dpor =
    Arg.(value & flag
         & info [ "no-dpor" ] ~doc:"Disable sleep-set pruning.")
  in
  let no_hash =
    Arg.(value & flag
         & info [ "no-hash" ] ~doc:"Disable visited-state hash pruning.")
  in
  let fanout_bug =
    Arg.(value & flag
         & info [ "fanout-bug" ]
             ~doc:"Create the receiver without the shared in-flight \
                   fetch guards — the historical fan-out bug — so the \
                   explorer has a known violation to find.")
  in
  let cas_bug =
    Arg.(value & flag
         & info [ "cas-bug" ]
             ~doc:"Evolution scenario: publish v2 by advancing the \
                   chain head directly instead of through the atomic \
                   CAS + registry upgrade — the historical torn publish \
                   — so the explorer has a known upgrade-safety \
                   violation to find.")
  in
  let run scenario peers objects depth budget max_seconds schedule no_dpor
      no_hash fanout_bug cas_bug =
    if peers < 2 then `Error (false, "--peers must be at least 2")
    else if objects < 1 then `Error (false, "--objects must be at least 1")
    else if depth < 1 then `Error (false, "--depth must be at least 1")
    else begin
      let module Mc = Pti_mc.Scenario in
      let spec = Mc.spec ~peers ~objects ~fanout_bug ~cas_bug scenario in
      let mk () = Mc.make spec in
      let repro_flags extra =
        Printf.sprintf
          "pti explore --scenario %s --peers %d --objects %d --depth %d%s%s%s"
          (Mc.kind_name scenario) peers objects depth
          (if fanout_bug then " --fanout-bug" else "")
          (if cas_bug then " --cas-bug" else "")
          extra
      in
      match schedule with
      | Some s -> begin
          match Pti_mc.Schedule.decode s with
          | Error msg -> `Error (false, msg)
          | Ok choices -> begin
              match Pti_mc.Explore.run_schedule mk choices with
              | [] ->
                  Format.printf "schedule %s: all invariants hold@."
                    (Pti_mc.Schedule.encode choices);
                  `Ok 0
              | vs ->
                  Format.printf "schedule %s: %d violation(s)@."
                    (Pti_mc.Schedule.encode choices)
                    (List.length vs);
                  List.iter
                    (fun v ->
                      Format.printf "  %a@."
                        Pti_fault.Invariant.pp_violation v)
                    vs;
                  Format.printf "reproduce with: %s@."
                    (repro_flags
                       (Printf.sprintf " --schedule %s"
                          (Pti_mc.Schedule.encode choices)));
                  `Ok 1
            end
        end
      | None ->
          let config =
            {
              Pti_mc.Explore.depth;
              budget;
              dpor = not no_dpor;
              state_hash = not no_hash;
              max_seconds;
            }
          in
          let result = Pti_mc.Explore.run ~config mk in
          Format.printf "%a@." Pti_mc.Explore.pp_result result;
          (match result.Pti_mc.Explore.violation with
          | None -> `Ok 0
          | Some (sched, _) ->
              let minimal = Pti_mc.Explore.shrink mk sched in
              Format.printf "shrunk to %d step(s): %s@."
                (List.length minimal)
                (Pti_mc.Schedule.encode minimal);
              Format.printf "reproduce with: %s@."
                (repro_flags
                   (Printf.sprintf " --schedule %s"
                      (Pti_mc.Schedule.encode minimal)));
              `Ok 1)
    end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Systematically explore message/action interleavings of a \
             closed fault-free scenario with a stateless DFS model \
             checker (sleep-set DPOR + visited-state hashing), checking \
             the chaos invariant set at every terminal state. The \
             explorer is pinned to the sim transport backend — only the \
             simulator exposes the deterministic enabled-event set it \
             schedules against. A failing schedule is ddmin-shrunk to a \
             minimal replayable $(b,--schedule) string. Exits 1 on any \
             violation.")
    Term.(ret
            (const run $ scenario $ peers $ objects $ depth $ budget
             $ max_seconds $ schedule $ no_dpor $ no_hash $ fanout_bug
             $ cas_bug))

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "pti" ~version:"1.0.0"
      ~doc:"Pragmatic type interoperability middleware (ICDCS 2003 \
            reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            describe_cmd; check_cmd; lint_cmd; compile_cmd; run_cmd;
            protocol_cmd; stats_cmd; scale_cmd; cluster_cmd; publish_cmd;
            demo_cmd; chaos_cmd; explore_cmd;
          ]))
