(** Type descriptions (§5): the code-free representation of a type that
    travels instead of the implementation.

    A description carries the type's identity (GUID), its structure — name,
    namespace, supertype and interface names, field types, method and
    constructor signatures — and the assembly (download unit) implementing
    it. Deliberately {e non-recursive}: field/parameter types are referenced
    by name only, so a description stays small and the receiver can reuse
    descriptions it already holds (§5.2). *)

open Pti_cts

type param_desc = { pd_name : string; pd_ty : Ty.t }

type method_desc = {
  md_name : string;
  md_params : param_desc list;
  md_return : Ty.t;
  md_mods : Meta.member_mods;
}

type field_desc = {
  fd_name : string;
  fd_ty : Ty.t;
  fd_mods : Meta.member_mods;
}

type ctor_desc = { cd_params : param_desc list; cd_mods : Meta.member_mods }

type t = {
  ty_name : string;
  ty_namespace : string list;
  ty_guid : Pti_util.Guid.t;
  ty_kind : Meta.kind;
  ty_super : string option;
  ty_interfaces : string list;
  ty_fields : field_desc list;
  ty_ctors : ctor_desc list;
  ty_methods : method_desc list;
  ty_assembly : string;
}

val of_class : Meta.class_def -> t
(** Introspection: project a loaded class onto its description. *)

val to_class : t -> Meta.class_def
(** The body-less skeleton (for tests and diagnostics; not loadable code). *)

val qualified_name : t -> string

val equals : t -> t -> bool
(** Type {e equality} of the conformance rules: GUID identity. *)

val fingerprint : t -> string
(** Canonical digest of the structure, case-normalized, excluding GUID and
    assembly. Members are sorted, so declaration order does not matter. *)

val equivalent : t -> t -> bool
(** Type {e equivalence}: identical structure regardless of identity —
    [fingerprint] equality. *)

val method_arity : method_desc -> int
val signature : method_desc -> string

(** {1 Sizes} *)

val size_bytes : t -> int
(** Size of the XML rendering — what the simulator charges for a
    description transfer. *)

(** {1 XML codec (§5.2)} *)

val to_xml : t -> Pti_xml.Xml.t
val of_xml : Pti_xml.Xml.t -> (t, string) result
val to_xml_string : ?pretty:bool -> t -> string
val of_xml_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit

(** {1 Binary codec}

    Compact wire form negotiated per link ([Tdesc_request.binary_ok]);
    XML remains the default and the interop fallback. Checksummed like
    every binary frame, so wire corruption surfaces as an [Error], never
    as a mangled description. *)

val to_binary_string : t -> string
val of_binary_string : string -> (t, string) result

val is_binary : string -> bool
(** True iff the string starts with the binary-codec magic. *)

val of_wire_string : string -> (t, string) result
(** Self-describing parse: {!of_binary_string} when the magic matches,
    {!of_xml_string} otherwise. *)

(** {1 Resolvers} *)

type resolver = string -> t option
(** How the conformance checker looks up descriptions of referenced types
    (supertypes, field types, parameter types) by qualified name. On a peer
    this is backed by the description cache plus a network fetch. *)

val registry_resolver : Registry.t -> resolver
(** Resolver over locally loaded code — the local/offline case. *)

val table_resolver : t list -> resolver
(** Resolver over an explicit list of descriptions (case-insensitive). *)

val chain : resolver -> resolver -> resolver
(** Try the first, fall back to the second. *)
