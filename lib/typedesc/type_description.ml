open Pti_cts
module Xml = Pti_xml.Xml
module Guid = Pti_util.Guid
module S = Pti_util.Strutil

type param_desc = { pd_name : string; pd_ty : Ty.t }

type method_desc = {
  md_name : string;
  md_params : param_desc list;
  md_return : Ty.t;
  md_mods : Meta.member_mods;
}

type field_desc = {
  fd_name : string;
  fd_ty : Ty.t;
  fd_mods : Meta.member_mods;
}

type ctor_desc = { cd_params : param_desc list; cd_mods : Meta.member_mods }

type t = {
  ty_name : string;
  ty_namespace : string list;
  ty_guid : Guid.t;
  ty_kind : Meta.kind;
  ty_super : string option;
  ty_interfaces : string list;
  ty_fields : field_desc list;
  ty_ctors : ctor_desc list;
  ty_methods : method_desc list;
  ty_assembly : string;
}

let param_of_meta p = { pd_name = p.Meta.param_name; pd_ty = p.Meta.param_ty }

let of_class (cd : Meta.class_def) =
  {
    ty_name = cd.Meta.td_name;
    ty_namespace = cd.Meta.td_namespace;
    ty_guid = cd.Meta.td_guid;
    ty_kind = cd.Meta.td_kind;
    ty_super = cd.Meta.td_super;
    ty_interfaces = cd.Meta.td_interfaces;
    ty_fields =
      List.map
        (fun f ->
          { fd_name = f.Meta.f_name; fd_ty = f.Meta.f_ty;
            fd_mods = f.Meta.f_mods })
        cd.Meta.td_fields;
    ty_ctors =
      List.map
        (fun c ->
          { cd_params = List.map param_of_meta c.Meta.c_params;
            cd_mods = c.Meta.c_mods })
        cd.Meta.td_ctors;
    ty_methods =
      List.map
        (fun m ->
          {
            md_name = m.Meta.m_name;
            md_params = List.map param_of_meta m.Meta.m_params;
            md_return = m.Meta.m_return;
            md_mods = m.Meta.m_mods;
          })
        cd.Meta.td_methods;
    ty_assembly = cd.Meta.td_assembly;
  }

let to_class t =
  {
    Meta.td_name = t.ty_name;
    td_namespace = t.ty_namespace;
    td_guid = t.ty_guid;
    td_kind = t.ty_kind;
    td_super = t.ty_super;
    td_interfaces = t.ty_interfaces;
    td_fields =
      List.map
        (fun f ->
          { Meta.f_name = f.fd_name; f_ty = f.fd_ty; f_mods = f.fd_mods;
            f_init = None })
        t.ty_fields;
    td_ctors =
      List.map
        (fun c ->
          {
            Meta.c_params =
              List.map
                (fun p -> { Meta.param_name = p.pd_name; param_ty = p.pd_ty })
                c.cd_params;
            c_mods = c.cd_mods;
            c_body = None;
          })
        t.ty_ctors;
    td_methods =
      List.map
        (fun m ->
          {
            Meta.m_name = m.md_name;
            m_params =
              List.map
                (fun p -> { Meta.param_name = p.pd_name; param_ty = p.pd_ty })
                m.md_params;
            m_return = m.md_return;
            m_mods = m.md_mods;
            m_body = None;
          })
        t.ty_methods;
    td_assembly = t.ty_assembly;
  }

let qualified_name t =
  match t.ty_namespace with
  | [] -> t.ty_name
  | ns -> String.concat "." ns ^ "." ^ t.ty_name

let equals a b = Guid.equal a.ty_guid b.ty_guid

let method_arity m = List.length m.md_params

let signature m =
  Printf.sprintf "%s(%s) : %s" m.md_name
    (String.concat ", "
       (List.map (fun p -> Ty.to_string p.pd_ty) m.md_params))
    (Ty.to_string m.md_return)

(* --- fingerprint ------------------------------------------------------ *)

let mods_key (m : Meta.member_mods) =
  Printf.sprintf "%s%c%c"
    (Meta.visibility_to_string m.Meta.visibility)
    (if m.Meta.static then 's' else '-')
    (if m.Meta.virtual_ then 'v' else '-')

let ty_key ty = String.lowercase_ascii (Ty.to_string ty)

let fingerprint t =
  let b = Buffer.create 256 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\n'
  in
  add (String.lowercase_ascii (qualified_name t));
  add (Meta.kind_to_string t.ty_kind);
  add
    (match t.ty_super with
    | None -> "-"
    | Some s -> String.lowercase_ascii s);
  List.iter add
    (List.sort compare (List.map String.lowercase_ascii t.ty_interfaces));
  let field_keys =
    List.sort compare
      (List.map
         (fun f ->
           Printf.sprintf "f:%s:%s:%s"
             (String.lowercase_ascii f.fd_name)
             (ty_key f.fd_ty) (mods_key f.fd_mods))
         t.ty_fields)
  in
  List.iter add field_keys;
  let params_key ps =
    (* Parameter order is *not* part of the fingerprint beyond multiset:
       conformance considers permutations, so equivalence must too. *)
    String.concat ","
      (List.sort compare (List.map (fun p -> ty_key p.pd_ty) ps))
  in
  let ctor_keys =
    List.sort compare
      (List.map
         (fun c ->
           Printf.sprintf "c:(%s):%s" (params_key c.cd_params)
             (mods_key c.cd_mods))
         t.ty_ctors)
  in
  List.iter add ctor_keys;
  let method_keys =
    List.sort compare
      (List.map
         (fun m ->
           Printf.sprintf "m:%s:(%s):%s:%s"
             (String.lowercase_ascii m.md_name)
             (params_key m.md_params) (ty_key m.md_return)
             (mods_key m.md_mods))
         t.ty_methods)
  in
  List.iter add method_keys;
  (* Digest the canonical text so fingerprints are small, stable keys. *)
  Digest.to_hex (Digest.string (Buffer.contents b))

let equivalent a b = String.equal (fingerprint a) (fingerprint b)

(* --- XML codec -------------------------------------------------------- *)

let mods_attrs (m : Meta.member_mods) =
  [
    ("visibility", Meta.visibility_to_string m.Meta.visibility);
    ("static", string_of_bool m.Meta.static);
    ("virtual", string_of_bool m.Meta.virtual_);
  ]

let params_to_xml ps =
  List.map
    (fun p ->
      Xml.elt "param"
        ~attrs:[ ("name", p.pd_name); ("type", Ty.to_string p.pd_ty) ]
        [])
    ps

let to_xml t =
  let open Xml in
  elt "typeDescription"
    ~attrs:
      [
        ("name", t.ty_name);
        ("namespace", String.concat "." t.ty_namespace);
        ("guid", Guid.to_string t.ty_guid);
        ("kind", Meta.kind_to_string t.ty_kind);
        ("assembly", t.ty_assembly);
      ]
    (List.concat
       [
         (match t.ty_super with
         | None -> []
         | Some s -> [ elt "super" ~attrs:[ ("name", s) ] [] ]);
         List.map
           (fun i -> elt "interface" ~attrs:[ ("name", i) ] [])
           t.ty_interfaces;
         List.map
           (fun f ->
             elt "field"
               ~attrs:
                 (("name", f.fd_name) :: ("type", Ty.to_string f.fd_ty)
                 :: mods_attrs f.fd_mods)
               [])
           t.ty_fields;
         List.map
           (fun c ->
             elt "constructor" ~attrs:(mods_attrs c.cd_mods)
               (params_to_xml c.cd_params))
           t.ty_ctors;
         List.map
           (fun m ->
             elt "method"
               ~attrs:
                 (("name", m.md_name)
                 :: ("return", Ty.to_string m.md_return)
                 :: mods_attrs m.md_mods)
               (params_to_xml m.md_params))
           t.ty_methods;
       ])

let ( let* ) = Result.bind

let attr_req name x =
  match Xml.attr name x with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing attribute %S" name)

let ty_attr name x =
  let* s = attr_req name x in
  match Ty.of_string s with
  | Some ty -> Ok ty
  | None -> Error (Printf.sprintf "bad type reference %S" s)

let bool_attr name x =
  let* s = attr_req name x in
  match bool_of_string_opt s with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "bad boolean %S for %S" s name)

let mods_of_xml x =
  let* vis_s = attr_req "visibility" x in
  let* visibility =
    match Meta.visibility_of_string vis_s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad visibility %S" vis_s)
  in
  let* static = bool_attr "static" x in
  let* virtual_ = bool_attr "virtual" x in
  Ok { Meta.visibility; static; virtual_ }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let params_of_xml x =
  map_result
    (fun p ->
      let* name = attr_req "name" p in
      let* ty = ty_attr "type" p in
      Ok { pd_name = name; pd_ty = ty })
    (Xml.childs "param" x)

let of_xml x =
  match Xml.tag x with
  | Some "typeDescription" ->
      let* name = attr_req "name" x in
      let* ns_s = attr_req "namespace" x in
      let ty_namespace = if ns_s = "" then [] else S.split_on '.' ns_s in
      let* guid_s = attr_req "guid" x in
      let* ty_guid =
        match Guid.of_string guid_s with
        | Some g -> Ok g
        | None -> Error (Printf.sprintf "bad guid %S" guid_s)
      in
      let* kind_s = attr_req "kind" x in
      let* ty_kind =
        match Meta.kind_of_string kind_s with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "bad kind %S" kind_s)
      in
      let* ty_assembly = attr_req "assembly" x in
      let* ty_super =
        match Xml.child "super" x with
        | None -> Ok None
        | Some s ->
            let* n = attr_req "name" s in
            Ok (Some n)
      in
      let* ty_interfaces =
        map_result (attr_req "name") (Xml.childs "interface" x)
      in
      let* ty_fields =
        map_result
          (fun f ->
            let* fd_name = attr_req "name" f in
            let* fd_ty = ty_attr "type" f in
            let* fd_mods = mods_of_xml f in
            Ok { fd_name; fd_ty; fd_mods })
          (Xml.childs "field" x)
      in
      let* ty_ctors =
        map_result
          (fun c ->
            let* cd_params = params_of_xml c in
            let* cd_mods = mods_of_xml c in
            Ok { cd_params; cd_mods })
          (Xml.childs "constructor" x)
      in
      let* ty_methods =
        map_result
          (fun m ->
            let* md_name = attr_req "name" m in
            let* md_return = ty_attr "return" m in
            let* md_params = params_of_xml m in
            let* md_mods = mods_of_xml m in
            Ok { md_name; md_params; md_return; md_mods })
          (Xml.childs "method" x)
      in
      Ok
        {
          ty_name = name;
          ty_namespace;
          ty_guid;
          ty_kind;
          ty_super;
          ty_interfaces;
          ty_fields;
          ty_ctors;
          ty_methods;
          ty_assembly;
        }
  | Some other -> Error (Printf.sprintf "expected <typeDescription>, got <%s>" other)
  | None -> Error "expected an element"

(* The compact wire rendering carries an integrity digest; the pretty
   rendering is for display and stays digest-free (whitespace would not
   survive a canonical re-render). *)
let to_xml_string ?(pretty = false) t =
  if pretty then Xml.to_string_pretty (to_xml t)
  else Xml.to_string (Pti_xml.Digest_attr.add (to_xml t))

let of_xml_string s =
  match Xml.parse s with
  | Error e -> Error (Format.asprintf "%a" Xml.pp_error e)
  | Ok x -> (
      match Pti_xml.Digest_attr.verify x with
      | Error e -> Error ("corrupt type description: " ^ e)
      | Ok x -> of_xml x)

let size_bytes t = Xml.size_bytes (to_xml t)

(* --- compact binary codec -------------------------------------------- *)

(* Negotiated per link as a wire-efficiency measure: a description in
   this form is a fraction of its XML rendering. XML stays the default
   and the interop fallback — a reply is self-describing by its magic.
   Same integrity discipline as the other binary frames: magic, 8-byte
   FNV-1a checksum of the body, body. *)

module W = Pti_serial.Bytes_io.Writer
module R = Pti_serial.Bytes_io.Reader

let binary_magic = "PTID\x01"
let binary_header_len = String.length binary_magic + 8

let w_mods w (m : Meta.member_mods) =
  W.string w (Meta.visibility_to_string m.Meta.visibility);
  W.bool w m.Meta.static;
  W.bool w m.Meta.virtual_

let w_ty w ty = W.string w (Ty.to_string ty)

let w_params w ps =
  W.varint w (List.length ps);
  List.iter
    (fun p ->
      W.string w p.pd_name;
      w_ty w p.pd_ty)
    ps

let w_list w f l =
  W.varint w (List.length l);
  List.iter (f w) l

let to_binary_string t =
  let w = W.create () in
  W.string w t.ty_name;
  w_list w W.string t.ty_namespace;
  W.string w (Guid.to_string t.ty_guid);
  W.string w (Meta.kind_to_string t.ty_kind);
  W.string w t.ty_assembly;
  (match t.ty_super with
  | None -> W.bool w false
  | Some s ->
      W.bool w true;
      W.string w s);
  w_list w W.string t.ty_interfaces;
  w_list w
    (fun w f ->
      W.string w f.fd_name;
      w_ty w f.fd_ty;
      w_mods w f.fd_mods)
    t.ty_fields;
  w_list w
    (fun w c ->
      w_params w c.cd_params;
      w_mods w c.cd_mods)
    t.ty_ctors;
  w_list w
    (fun w m ->
      W.string w m.md_name;
      w_params w m.md_params;
      w_ty w m.md_return;
      w_mods w m.md_mods)
    t.ty_methods;
  let body = W.contents w in
  binary_magic ^ Pti_util.Fnv.hash_bytes body ^ body

let is_binary s =
  String.length s >= String.length binary_magic
  && String.equal (String.sub s 0 (String.length binary_magic)) binary_magic

exception Bad of string

let of_binary_string s =
  if String.length s < binary_header_len then Error "truncated binary tdesc"
  else if not (is_binary s) then Error "bad binary tdesc magic"
  else
    let sum = String.sub s (String.length binary_magic) 8 in
    let body =
      String.sub s binary_header_len (String.length s - binary_header_len)
    in
    if not (String.equal sum (Pti_util.Fnv.hash_bytes body)) then
      Error "corrupt type description: checksum mismatch"
    else
      try
        let r = R.create body in
        let r_list f =
          let n = R.varint r in
          if n < 0 || n > 100_000 then raise (Bad "bad list length");
          let rec go acc k =
            if k = 0 then List.rev acc else go (f () :: acc) (k - 1)
          in
          go [] n
        in
        let r_ty () =
          let s = R.string r in
          match Ty.of_string s with
          | Some ty -> ty
          | None -> raise (Bad (Printf.sprintf "bad type %S" s))
        in
        let r_mods () =
          let v = R.string r in
          let visibility =
            match Meta.visibility_of_string v with
            | Some v -> v
            | None -> raise (Bad (Printf.sprintf "bad visibility %S" v))
          in
          let static = R.bool r in
          let virtual_ = R.bool r in
          { Meta.visibility; static; virtual_ }
        in
        let r_params () =
          r_list (fun () ->
              let pd_name = R.string r in
              let pd_ty = r_ty () in
              { pd_name; pd_ty })
        in
        let ty_name = R.string r in
        let ty_namespace = r_list (fun () -> R.string r) in
        let guid_s = R.string r in
        let ty_guid =
          match Guid.of_string guid_s with
          | Some g -> g
          | None -> raise (Bad (Printf.sprintf "bad guid %S" guid_s))
        in
        let kind_s = R.string r in
        let ty_kind =
          match Meta.kind_of_string kind_s with
          | Some k -> k
          | None -> raise (Bad (Printf.sprintf "bad kind %S" kind_s))
        in
        let ty_assembly = R.string r in
        let ty_super = if R.bool r then Some (R.string r) else None in
        let ty_interfaces = r_list (fun () -> R.string r) in
        let ty_fields =
          r_list (fun () ->
              let fd_name = R.string r in
              let fd_ty = r_ty () in
              let fd_mods = r_mods () in
              { fd_name; fd_ty; fd_mods })
        in
        let ty_ctors =
          r_list (fun () ->
              let cd_params = r_params () in
              let cd_mods = r_mods () in
              { cd_params; cd_mods })
        in
        let ty_methods =
          r_list (fun () ->
              let md_name = R.string r in
              let md_params = r_params () in
              let md_return = r_ty () in
              let md_mods = r_mods () in
              { md_name; md_params; md_return; md_mods })
        in
        if not (R.at_end r) then Error "trailing bytes in binary tdesc"
        else
          Ok
            {
              ty_name;
              ty_namespace;
              ty_guid;
              ty_kind;
              ty_super;
              ty_interfaces;
              ty_fields;
              ty_ctors;
              ty_methods;
              ty_assembly;
            }
      with
      | Bad m -> Error m
      | R.Underflow m -> Error ("truncated binary tdesc: " ^ m)

(* Self-describing parse: binary by magic, XML otherwise. *)
let of_wire_string s = if is_binary s then of_binary_string s else of_xml_string s

let pp ppf t =
  Format.fprintf ppf "@[<v>%s %s [%a] asm=%s@,"
    (Meta.kind_to_string t.ty_kind)
    (qualified_name t) Guid.pp t.ty_guid t.ty_assembly;
  (match t.ty_super with
  | Some s -> Format.fprintf ppf "  super %s@," s
  | None -> ());
  List.iter (fun i -> Format.fprintf ppf "  implements %s@," i) t.ty_interfaces;
  List.iter
    (fun f ->
      Format.fprintf ppf "  field %s : %s@," f.fd_name (Ty.to_string f.fd_ty))
    t.ty_fields;
  List.iter
    (fun c ->
      Format.fprintf ppf "  ctor(%s)@,"
        (String.concat ", "
           (List.map (fun p -> Ty.to_string p.pd_ty) c.cd_params)))
    t.ty_ctors;
  List.iter (fun m -> Format.fprintf ppf "  method %s@," (signature m))
    t.ty_methods;
  Format.fprintf ppf "@]"

type resolver = string -> t option

let registry_resolver reg name =
  Option.map of_class (Registry.find reg name)

let table_resolver descs name =
  List.find_opt (fun d -> S.equal_ci (qualified_name d) name) descs

let chain r1 r2 name = match r1 name with Some d -> Some d | None -> r2 name
