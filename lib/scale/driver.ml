module Splitmix = Pti_util.Splitmix
module Fnv = Pti_util.Fnv
module Metrics = Pti_obs.Metrics
module Net = Pti_net.Net
module Sim = Pti_net.Sim
module Stats = Pti_net.Stats
module Peer = Pti_core.Peer
module Message = Pti_core.Message
module Checker = Pti_conformance.Checker
module Lru = Pti_obs.Lru
module Workload = Pti_demo.Workload

type config = {
  sessions : int;
  families : int;
  trap_families : int;
  sends_per_session : int;
  zipf_s : float;
  churn : float;
  flash_at_ms : float option;
  upgrade_at_ms : float option;
  seed : int64;
  shards : int;
  horizon_ms : float;
}

let default_config =
  {
    sessions = 10_000;
    families = 16;
    trap_families = 2;
    sends_per_session = 2;
    zipf_s = 1.1;
    churn = 0.5;
    flash_at_ms = None;
    upgrade_at_ms = None;
    seed = 42L;
    shards = 1;
    horizon_ms = 60_000.;
  }

type report = {
  r_config : config;
  r_arrived : int;
  r_departed : int;
  r_sends : int;
  r_deliveries : int;
  r_rejections : int;
  r_undelivered : int;
  r_tdesc_fetches : int;
  r_asm_fetches : int;
  r_flash_sends : int;
  r_flash_tdesc_fetches : int;
  r_flash_asm_fetches : int;
  r_upgraded_version : int;
  r_upgrade_sends : int;
  r_duration_ms : float;
  r_deliveries_per_sec : float;
  r_mean_ms : float;
  r_p50_ms : float;
  r_p99_ms : float;
  r_tdesc_hit_rate : float;
  r_verdict_reuse_rate : float;
  r_pool_recycled : int;
  r_trace_hash : int64;
}

(* A session is the flyweight pattern's client-facing sliver: everything
   type- and code-related lives in the one shared Peer block; what's
   left per session fits in five words. *)
type session = {
  s_id : int;
  s_shard : int;
  mutable s_fam : int;  (* zipf rank, sampled at arrival; -1 before *)
  mutable s_alive : bool;
  mutable s_sent : int;
}

let shard_addr i = "shard" ^ string_of_int i
let pub_addr i = "pub" ^ string_of_int i

(* Sender address -> family index ("pub<k>"). *)
let fam_of_addr a =
  match int_of_string_opt (String.sub a 3 (String.length a - 3)) with
  | Some k -> k
  | None -> invalid_arg ("Driver: unexpected sender " ^ a)

(* Delivery latencies at population scale sit in the single-digit-ms
   band (sim latency + fetch stalls), well under the Metrics defaults'
   granularity. *)
let latency_buckets =
  [| 0.5; 1.; 1.5; 2.; 2.5; 3.; 4.; 5.; 7.5; 10.; 15.; 20.; 30.; 50.;
     75.; 100.; 250.; 1000. |]

let validate cfg =
  if cfg.sessions <= 0 then invalid_arg "scale: sessions must be positive";
  if cfg.families <= 0 then invalid_arg "scale: families must be positive";
  if cfg.trap_families < 0 || cfg.trap_families >= cfg.families then
    invalid_arg "scale: trap families must leave at least one conformant rank";
  if cfg.sends_per_session < 0 then invalid_arg "scale: sends must be >= 0";
  if cfg.shards <= 0 then invalid_arg "scale: shards must be positive";
  if cfg.horizon_ms <= 0. then invalid_arg "scale: horizon must be positive"

let run ?metrics cfg =
  validate cfg;
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let net : Message.t Net.t = Net.create ~seed:cfg.seed ~metrics:m () in
  let sim = Net.sim net in
  let master = Splitmix.create cfg.seed in
  let rng_timeline = Splitmix.split master in
  let rng_family = Splitmix.split master in
  let zipf = Zipf.create ~n:cfg.families ~s:cfg.zipf_s in
  let timeline =
    Churn.build ~sessions:cfg.sessions ~churn:cfg.churn
      ~horizon_ms:cfg.horizon_ms rng_timeline
  in
  (* One flyweight block behind every shard, itself sharded by
     destination hash: sessions aimed at one shard address share that
     shard's descriptions and verdicts, and hot shards cannot evict
     each other's entries. With one shard ([--shards 1], the default)
     this is the historical single-cache block, bit-identical. *)
  let shared = Peer.create_shared ~shards:cfg.shards () in
  let shards =
    Array.init cfg.shards (fun i ->
        Peer.create ~net ~metrics:m ~shared ~handles:true
          ~event_log_capacity:64 (shard_addr i))
  in
  Peer.install_assembly shards.(0) (Workload.interest_assembly ());
  let flavors =
    Array.init cfg.families (fun i ->
        if i < cfg.families - cfg.trap_families then Workload.Conformant
        else Workload.Trap_missing)
  in
  let pubs =
    Array.init cfg.families (fun i ->
        let p =
          Peer.create ~net ~metrics:m ~handles:true ~event_log_capacity:64
            (pub_addr i)
        in
        Peer.publish_assembly p (Workload.family ~index:i ~flavor:flavors.(i));
        p)
  in
  (* scale.* instrumentation. *)
  let c_arrived = Metrics.counter m "scale.sessions.arrived" in
  let c_departed = Metrics.counter m "scale.sessions.departed" in
  let c_sends = Metrics.counter m "scale.sends" in
  let c_deliveries = Metrics.counter m "scale.deliveries" in
  let c_flash_sends = Metrics.counter m "scale.flash.sends" in
  let c_flash_tdesc = Metrics.counter m "scale.flash.tdesc_fetches" in
  let c_flash_asm = Metrics.counter m "scale.flash.asm_fetches" in
  let c_tdesc_req = Metrics.counter m "scale.fetch.tdesc_requests" in
  let c_asm_req = Metrics.counter m "scale.fetch.asm_requests" in
  let hist = Metrics.histogram ~buckets:latency_buckets m "scale.latency_ms" in
  Metrics.set_gauge (Metrics.gauge m "scale.sessions")
    (float_of_int cfg.sessions);
  Metrics.gauge_fn m "scale.sessions.live" (fun () ->
      float_of_int
        (Metrics.counter_value c_arrived - Metrics.counter_value c_departed));
  Metrics.gauge_fn m "scale.cache.tdesc_hit_rate" (fun () ->
      let c = Peer.shared_tdesc_cache_counters shared in
      let total = c.Lru.hits + c.Lru.misses in
      if total = 0 then 0. else float_of_int c.Lru.hits /. float_of_int total);
  Metrics.gauge_fn m "scale.cache.verdict_reuse_rate" (fun () ->
      Peer.shared_reuse_rate shared);
  Metrics.gauge_fn m "scale.pool.recycled" (fun () ->
      float_of_int (Peer.shared_pool_size shared));
  (* Rolling trace hash: every externally visible workload event, in
     simulation order. Bit-identical across same-seed runs. *)
  let trace = ref (Fnv.hash64 "pti-scale-trace") in
  let tr fmt = Printf.ksprintf (fun s -> trace := Fnv.hash64 ~init:!trace s) fmt in
  (* Flash-crowd fetch attribution by destination address: requests the
     shards aim at the hot publisher are herd fetches. *)
  let hot_addr = ref "" in
  Net.on_send net (fun ~now:_ ~src:_ ~dst ~category ~size:_ ~attempt ->
      if attempt = 0 then
        match category with
        | Stats.Tdesc_request ->
            Metrics.incr c_tdesc_req;
            if String.equal dst !hot_addr then Metrics.incr c_flash_tdesc
        | Stats.Asm_request ->
            Metrics.incr c_asm_req;
            if String.equal dst !hot_addr then Metrics.incr c_flash_asm
        | _ -> ());
  let sessions =
    Array.init cfg.sessions (fun id ->
        {
          s_id = id;
          s_shard = id mod cfg.shards;
          s_fam = -1;
          s_alive = false;
          s_sent = 0;
        })
  in
  (* Conformant in-flight sends awaiting delivery, FIFO per
     (family, shard): deliveries of one family through one shard cannot
     reorder, so head-of-queue is always the envelope being delivered. *)
  let pending : (int, float Queue.t) Hashtbl.t =
    Hashtbl.create (4 * cfg.families)
  in
  let pending_q fam shard =
    let key = (fam * cfg.shards) + shard in
    match Hashtbl.find_opt pending key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add pending key q;
        q
  in
  Array.iteri
    (fun si shard ->
      Peer.register_interest shard ~interest:Workload.interest_person
        (fun ~from _value ->
          let fam = fam_of_addr from in
          let q = pending_q fam si in
          match Queue.take_opt q with
          | None -> ()  (* counted as a delivery regardless *)
          | Some t0 ->
              let now = Sim.now sim in
              Metrics.incr c_deliveries;
              Metrics.observe hist (now -. t0);
              tr "V|%d|%d|%.6f" fam si now))
    shards;
  let act info = Sim.Act { owner = "scale"; info } in
  let flavor_conformant = function
    | Workload.Conformant | Workload.Typo _ -> true
    | Workload.Trap_missing | Workload.Trap_arity | Workload.Trap_fieldtype ->
        false
  in
  let upgraded_version = ref 0 in
  let c_upgrade_sends = Metrics.counter m "scale.upgrade.sends" in
  let send_from pub ~fam ~flavor s value_name =
    let v =
      Workload.make_person (Peer.registry pub) ~index:fam ~flavor
        ~name:value_name ~age:(s.s_id land 0x3FFFFFFF)
    in
    Peer.send_value pub ~dst:(shard_addr s.s_shard) v;
    Metrics.incr c_sends;
    if fam = 0 && !upgraded_version > 1 then Metrics.incr c_upgrade_sends;
    if flavor_conformant flavor then
      Queue.push (Sim.now sim) (pending_q fam s.s_shard);
    tr "S|%d|%d|%.6f" fam s.s_shard (Sim.now sim)
  in
  let rec schedule_send s k =
    (* k-th of n sends at arrival + (k+1)/(n+1) of the lifetime: evenly
       inside the session's life, touching neither endpoint. *)
    let n = cfg.sends_per_session in
    let arr = Churn.arrive_ms timeline s.s_id
    and dep = Churn.depart_ms timeline s.s_id in
    let at = arr +. (float_of_int (k + 1) /. float_of_int (n + 1)) *. (dep -. arr) in
    Sim.schedule_at sim ~label:(act "session-send") ~at (fun () ->
        let fam = s.s_fam in
        send_from pubs.(fam) ~fam ~flavor:flavors.(fam) s
          ("p" ^ string_of_int s.s_id);
        s.s_sent <- s.s_sent + 1;
        if k + 1 < n then schedule_send s (k + 1))
  in
  (* The churn timeline replays through a single lazy cursor: one pending
     simulator event regardless of population size. *)
  let rec schedule_cursor i =
    if i < Churn.length timeline then
      Sim.schedule_at sim ~label:(act "timeline") ~at:(Churn.at timeline i)
        (fun () ->
          (match Churn.event timeline i with
          | Churn.Arrive id ->
              let s = sessions.(id) in
              s.s_alive <- true;
              s.s_fam <- Zipf.sample zipf rng_family;
              Metrics.incr c_arrived;
              tr "A|%d|%d" id s.s_fam;
              if cfg.sends_per_session > 0 then schedule_send s 0
          | Churn.Depart id ->
              let s = sessions.(id) in
              s.s_alive <- false;
              Metrics.incr c_departed;
              tr "D|%d" id);
          schedule_cursor (i + 1))
  in
  schedule_cursor 0;
  (* Flash crowd: a brand-new hot type appears and every live session
     receives it in the same instant. The herd of unknown-type envelopes
     hits the shards' in-flight dedup; the wire must see O(shards)
     fetches, not O(live sessions). *)
  (match cfg.flash_at_ms with
  | None -> ()
  | Some at ->
      Sim.schedule_at sim ~label:(act "flash-crowd") ~at (fun () ->
          let idx = cfg.families in
          let pub =
            Peer.create ~net ~metrics:m ~handles:true ~event_log_capacity:64
              (pub_addr idx)
          in
          Peer.publish_assembly pub
            (Workload.family ~index:idx ~flavor:Workload.Conformant);
          hot_addr := pub_addr idx;
          tr "FLASH|%.6f" (Sim.now sim);
          Array.iter
            (fun s ->
              if s.s_alive then begin
                send_from pub ~fam:idx ~flavor:Workload.Conformant s "hot";
                Metrics.incr c_flash_sends
              end)
            sessions));
  (* Rolling upgrade (E15): CAS-republish the hottest family at schema
     v2 while its traffic keeps flowing. The family first lands on the
     publisher's version chain as v1 (same bytes it already serves —
     idempotent), then v2 compare-and-sets over that head. From this
     instant new sends construct and ship v2 (pinned to its chain
     version and GUID); envelopes already in flight keep decoding
     against v1 by GUID; receivers upgrade on first v2 contact and keep
     conforming — the run must still quiesce with zero undelivered. *)
  (match cfg.upgrade_at_ms with
  | None -> ()
  | Some at ->
      Sim.schedule_at sim ~label:(act "upgrade") ~at (fun () ->
          let fam = 0 in
          let pub = pubs.(fam) in
          let v1 = Workload.family ~index:fam ~flavor:flavors.(fam) in
          match Peer.publish_assembly_cas pub v1 with
          | Error _ -> tr "U|%d|conflict|%.6f" fam (Sim.now sim)
          | Ok ve1 -> (
              let v2 =
                Workload.family_v ~version:2 ~index:fam
                  ~flavor:flavors.(fam)
              in
              match
                Peer.publish_assembly_cas
                  ~expect:ve1.Pti_core.Repository.ve_digest pub v2
              with
              | Error _ -> tr "U|%d|conflict|%.6f" fam (Sim.now sim)
              | Ok ve2 ->
                  upgraded_version := ve2.Pti_core.Repository.ve_version;
                  tr "U|%d|%d|%.6f" fam
                    ve2.Pti_core.Repository.ve_version (Sim.now sim))));
  Net.run net;
  let duration_ms = Sim.now sim in
  (* Teardown: park every shard's learned handle tables in the shared
     pool (sorted shard order — pool contents are part of the trace). *)
  Array.iter Peer.release_handle_tables shards;
  (* Fold each peer's final fingerprint in: the trace hash then attests
     not just the event sequence but the end state it produced. *)
  Array.iter (fun p -> tr "P|%Ld" (Peer.fingerprint p)) shards;
  Array.iter (fun p -> tr "P|%Ld" (Peer.fingerprint p)) pubs;
  let rejections =
    Array.fold_left
      (fun acc shard ->
        match
          Metrics.find m ("peer." ^ Peer.address shard ^ ".rejected")
        with
        | Some (Metrics.Counter n) -> acc + n
        | _ -> acc)
      0 shards
  in
  Metrics.set_gauge (Metrics.gauge m "scale.rejections")
    (float_of_int rejections);
  let undelivered =
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) pending 0
  in
  let deliveries = Metrics.counter_value c_deliveries in
  let dps =
    if duration_ms <= 0. then 0.
    else float_of_int deliveries /. (duration_ms /. 1000.)
  in
  Metrics.set_gauge (Metrics.gauge m "scale.deliveries_per_sec") dps;
  let hs =
    match Metrics.find m "scale.latency_ms" with
    | Some (Metrics.Histogram h) -> Some h
    | _ -> None
  in
  let q p = match hs with
    | Some h -> (match Metrics.quantile h p with Some v -> v | None -> 0.)
    | None -> 0.
  in
  let mean_ms =
    match hs with
    | Some h when h.Metrics.h_count > 0 ->
        h.Metrics.h_sum /. float_of_int h.Metrics.h_count
    | _ -> 0.
  in
  let tc = Peer.shared_tdesc_cache_counters shared in
  let tdesc_total = tc.Lru.hits + tc.Lru.misses in
  {
    r_config = cfg;
    r_arrived = Metrics.counter_value c_arrived;
    r_departed = Metrics.counter_value c_departed;
    r_sends = Metrics.counter_value c_sends;
    r_deliveries = deliveries;
    r_rejections = rejections;
    r_undelivered = undelivered;
    r_tdesc_fetches = Metrics.counter_value c_tdesc_req;
    r_asm_fetches = Metrics.counter_value c_asm_req;
    r_flash_sends = Metrics.counter_value c_flash_sends;
    r_flash_tdesc_fetches = Metrics.counter_value c_flash_tdesc;
    r_flash_asm_fetches = Metrics.counter_value c_flash_asm;
    r_upgraded_version = !upgraded_version;
    r_upgrade_sends = Metrics.counter_value c_upgrade_sends;
    r_duration_ms = duration_ms;
    r_deliveries_per_sec = dps;
    r_mean_ms = mean_ms;
    r_p50_ms = q 0.5;
    r_p99_ms = q 0.99;
    r_tdesc_hit_rate =
      (if tdesc_total = 0 then 0.
       else float_of_int tc.Lru.hits /. float_of_int tdesc_total);
    r_verdict_reuse_rate = Peer.shared_reuse_rate shared;
    r_pool_recycled = Peer.shared_pool_size shared;
    r_trace_hash = !trace;
  }

let report_to_json ?wall_ms r =
  let b = Buffer.create 512 in
  let f = Metrics.json_float in
  Buffer.add_string b
    (Printf.sprintf
       "{\"sessions\":%d,\"families\":%d,\"trap_families\":%d,\
        \"sends_per_session\":%d,\"zipf_s\":%s,\"churn\":%s,\
        \"flash_at_ms\":%s,\"seed\":%Ld,\"shards\":%d,\"horizon_ms\":%s"
       r.r_config.sessions r.r_config.families r.r_config.trap_families
       r.r_config.sends_per_session (f r.r_config.zipf_s) (f r.r_config.churn)
       (match r.r_config.flash_at_ms with None -> "null" | Some v -> f v)
       r.r_config.seed r.r_config.shards (f r.r_config.horizon_ms));
  Buffer.add_string b
    (Printf.sprintf ",\"upgrade_at_ms\":%s"
       (match r.r_config.upgrade_at_ms with None -> "null" | Some v -> f v));
  Buffer.add_string b
    (Printf.sprintf
       ",\"arrived\":%d,\"departed\":%d,\"sends\":%d,\"deliveries\":%d,\
        \"rejections\":%d,\"undelivered\":%d,\"tdesc_fetches\":%d,\
        \"asm_fetches\":%d,\"flash_sends\":%d,\"flash_tdesc_fetches\":%d,\
        \"flash_asm_fetches\":%d,\"upgraded_version\":%d,\"upgrade_sends\":%d"
       r.r_arrived r.r_departed r.r_sends r.r_deliveries r.r_rejections
       r.r_undelivered r.r_tdesc_fetches r.r_asm_fetches r.r_flash_sends
       r.r_flash_tdesc_fetches r.r_flash_asm_fetches r.r_upgraded_version
       r.r_upgrade_sends);
  Buffer.add_string b
    (Printf.sprintf
       ",\"duration_ms\":%s,\"deliveries_per_sec\":%s,\"latency_mean_ms\":%s,\
        \"latency_p50_ms\":%s,\"latency_p99_ms\":%s,\"tdesc_hit_rate\":%s,\
        \"verdict_reuse_rate\":%s,\"pool_recycled\":%d,\"trace_hash\":\"%Lx\""
       (f r.r_duration_ms) (f r.r_deliveries_per_sec) (f r.r_mean_ms)
       (f r.r_p50_ms) (f r.r_p99_ms) (f r.r_tdesc_hit_rate)
       (f r.r_verdict_reuse_rate) r.r_pool_recycled r.r_trace_hash);
  (match wall_ms with
  | Some w -> Buffer.add_string b (Printf.sprintf ",\"wall_ms\":%s" (f w))
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>sessions %d (arrived %d, departed %d) over %.0f ms simulated@,\
     sends %d -> delivered %d, rejected %d, undelivered %d@,\
     sustained %.0f deliveries/sec (sim); latency mean %.2f p50<=%.2f \
     p99<=%.2f ms@,\
     fetches: %d tdesc, %d assembly; tdesc cache hit rate %.4f; verdict \
     reuse %.4f@,\
     flash: %d sends -> %d tdesc + %d assembly fetches@,"
    r.r_config.sessions r.r_arrived r.r_departed r.r_duration_ms r.r_sends
    r.r_deliveries r.r_rejections r.r_undelivered r.r_deliveries_per_sec
    r.r_mean_ms r.r_p50_ms r.r_p99_ms r.r_tdesc_fetches r.r_asm_fetches
    r.r_tdesc_hit_rate r.r_verdict_reuse_rate r.r_flash_sends
    r.r_flash_tdesc_fetches r.r_flash_asm_fetches;
  if r.r_upgraded_version > 0 then
    Format.fprintf ppf "upgrade: head v%d, %d sends at the new schema@,"
      r.r_upgraded_version r.r_upgrade_sends;
  Format.fprintf ppf "pool recycled %d; trace %Lx@]" r.r_pool_recycled
    r.r_trace_hash
