(** The deterministic million-session workload driver.

    Models a large population of lightweight interop {e sessions}
    against the existing stack: a handful of shard peers — all threading
    {e one} {!Pti_core.Peer.shared} flyweight block (registry, served
    code, tdesc cache, verdict cache, handle-table pool), built with as
    many cache shards as there are shard endpoints so each endpoint's
    working set lives in the slot its address hashes to — receive
    envelopes published by per-family publisher peers over the simulated
    network. Sessions are small records (id, family, shard, liveness):
    their arrivals, departures and sends replay a precomputed {!Churn}
    timeline, with type popularity drawn from a {!Zipf} curve, so the
    entire run — including the rolling FNV-1a trace hash — is a pure
    function of the seed.

    An optional flash-crowd event introduces a brand-new hot type at a
    chosen instant and has {e every live session} receive it at once,
    thundering-herding the shards' reception pipelines: the in-flight
    fetch dedup must collapse the herd to O(shards) type-description and
    assembly fetches, which the report exposes for CI to assert. *)

type config = {
  sessions : int;
  families : int;  (** Distinct type families in the zipf population. *)
  trap_families : int;
      (** How many of the {e least popular} ranks are non-conformant
          traps (rejected before any code download). Placed at the tail
          so the hot ranks exercise the caches, not the reject path. *)
  sends_per_session : int;  (** Envelopes per session over its life. *)
  zipf_s : float;  (** Popularity exponent; 0 = uniform. *)
  churn : float;
      (** Session turnover: 0 = immortal (all depart at the horizon);
          larger = shorter exponential lifetimes. See {!Churn.build}. *)
  flash_at_ms : float option;  (** Flash-crowd instant, if any. *)
  upgrade_at_ms : float option;
      (** Rolling-upgrade instant (E15), if any: the hottest family
          (zipf rank 0) is CAS-republished at schema v2 under sustained
          traffic. Sends already in flight keep decoding against v1 by
          GUID pin; later sends carry v2; old receivers keep conforming
          (revisions only add members) — the run must still end with
          zero undelivered. *)
  seed : int64;
  shards : int;
      (** Receiving endpoints sharing the flyweight block — also the
          block's cache shard count ({!Pti_core.Peer.create_shared}'s
          [~shards]), so destination working sets are isolated. 1 (the
          default) reproduces the historical single-cache block
          bit-identically. *)
  horizon_ms : float;  (** Simulated run length. *)
}

val default_config : config
(** 10^4 sessions, 16 families (2 traps), 2 sends/session, zipf 1.1,
    churn 0.5, no flash, seed 42, 1 shard, 60 s horizon. *)

type report = {
  r_config : config;
  r_arrived : int;
  r_departed : int;
  r_sends : int;
  r_deliveries : int;
  r_rejections : int;  (** Trap-family envelopes refused pre-download. *)
  r_undelivered : int;
      (** Conformant sends still pending at quiescence (0 on a healthy
          run; nonzero means the pipeline stalled somewhere). *)
  r_tdesc_fetches : int;  (** Type-description requests on the wire. *)
  r_asm_fetches : int;  (** Assembly download requests on the wire. *)
  r_flash_sends : int;
  r_flash_tdesc_fetches : int;
      (** Description fetches attributable to the flash-crowd type —
          O(shards), not O(sessions), when the in-flight dedup holds. *)
  r_flash_asm_fetches : int;
  r_upgraded_version : int;
      (** Chain head version of the upgraded family after the run (0 =
          no upgrade was scheduled or the CAS lost). *)
  r_upgrade_sends : int;
      (** Sends of the upgraded family issued {e after} the upgrade
          instant — traffic that travelled at v2. *)
  r_duration_ms : float;  (** Simulated time at quiescence. *)
  r_deliveries_per_sec : float;  (** Sustained, in simulated time. *)
  r_mean_ms : float;
  r_p50_ms : float;  (** From the [scale.latency_ms] histogram. *)
  r_p99_ms : float;
  r_tdesc_hit_rate : float;  (** Shared description-cache hit rate. *)
  r_verdict_reuse_rate : float;
      (** {!Pti_core.Peer.shared_reuse_rate}: verdict reuse aggregated
          across every cache shard's checker. *)
  r_pool_recycled : int;  (** Handle tables parked for reuse at teardown. *)
  r_trace_hash : int64;
      (** Rolling FNV-1a over every arrival, departure, send and
          delivery, folded with each peer's final {!Pti_core.Peer.fingerprint}.
          Equal seeds (and configs) must yield equal hashes. *)
}

val run : ?metrics:Pti_obs.Metrics.t -> config -> report
(** Execute one run to quiescence on the simulated transport. When
    [metrics] is given, the driver reports under the [scale.*] namespace
    (counters, [scale.latency_ms] histogram, cache-rate gauges) in that
    registry — [pti stats --scale] and the bench read it there. *)

val report_to_json : ?wall_ms:float -> report -> string
(** One JSON object; [wall_ms] (host wall-clock, measured by the caller)
    is included as ["wall_ms"] when given. Field names are documented in
    EXPERIMENTS.md (E14). *)

val pp_report : Format.formatter -> report -> unit
