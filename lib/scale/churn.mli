(** Session churn: a precomputed arrival/departure timeline.

    Sessions arrive over the first half of the simulated horizon
    (uniformly) and live until the horizon or, with churn, an
    exponentially distributed fraction of their remaining window. The
    whole timeline is materialized up front in packed arrays sorted by
    [(time, event code)], so the driver replays it with a single cursor
    and no mid-run RNG draws — determinism is decided here, once. *)

type timeline

type event = Arrive of int | Depart of int  (** Session id. *)

val build :
  sessions:int -> churn:float -> horizon_ms:float -> Pti_util.Splitmix.t ->
  timeline
(** [churn = 0.] (immortal sessions): every session departs exactly at
    the horizon. [churn > 0.] draws each lifetime from an exponential
    with mean [remaining-window / churn] (clamped to the window), so
    larger values turn the population over faster.
    @raise Invalid_argument when [sessions <= 0], [churn < 0.] or
    [horizon_ms <= 0.]. *)

val length : timeline -> int
(** Always [2 * sessions]: one arrival and one departure per session. *)

val at : timeline -> int -> float
(** Timestamp of the [i]-th event; non-decreasing in [i]. *)

val event : timeline -> int -> event

val horizon_ms : timeline -> float

val arrive_ms : timeline -> int -> float
(** Arrival time of session [id]. *)

val depart_ms : timeline -> int -> float
(** Departure time of session [id]; always in
    [(arrive_ms id, horizon_ms]]. *)
