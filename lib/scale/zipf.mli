(** Zipf-distributed type popularity.

    The population-scale workload assumes a few types account for most
    of the traffic — the regime where the paper's caches (type
    descriptions, conformance verdicts, downloaded code) pay off. Rank
    [r] (0-based) is sampled with probability proportional to
    [1 / (r+1)^s]; [s = 0] degenerates to uniform, [s ~ 1] is the
    classic web-popularity curve. *)

type t

val create : n:int -> s:float -> t
(** [n] ranks, exponent [s >= 0].
    @raise Invalid_argument when [n <= 0] or [s < 0]. *)

val size : t -> int

val pmf : t -> int -> float
(** Probability of rank [r] (strictly decreasing in [r] for [s > 0]). *)

val sample : t -> Pti_util.Splitmix.t -> int
(** One rank in [\[0; n)], by binary search over the cumulative weights
    — one RNG draw per sample, so the draw sequence (and thus the whole
    workload) is a pure function of the generator's seed. *)
