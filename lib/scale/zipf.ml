module Splitmix = Pti_util.Splitmix

type t = {
  n : int;
  s : float;
  cum : float array;  (* cum.(r) = P(rank <= r); cum.(n-1) = 1. *)
}

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be non-negative";
  let w = Array.init n (fun r -> 1. /. (float_of_int (r + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. w in
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for r = 0 to n - 1 do
    acc := !acc +. (w.(r) /. total);
    cum.(r) <- !acc
  done;
  cum.(n - 1) <- 1.;  (* guard against rounding shortfall *)
  { n; s; cum }

let size t = t.n

let pmf t r =
  if r < 0 || r >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if r = 0 then t.cum.(0) else t.cum.(r) -. t.cum.(r - 1)

let sample t rng =
  let u = Splitmix.float rng in
  (* Smallest r with cum.(r) > u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
