module Splitmix = Pti_util.Splitmix

type event = Arrive of int | Depart of int

type timeline = {
  horizon : float;
  arrive : float array;  (* by session id *)
  depart : float array;  (* by session id *)
  (* The merged schedule, sorted by (time, code). Code [2*id] is the
     arrival, [2*id + 1] the departure: a session's arrival always
     precedes its departure at equal timestamps, and ties across
     sessions break on the code — never on allocation or hash order. *)
  ev_at : float array;
  ev_code : int array;
}

(* Sessions arrive over the first half of the horizon; the second half
   is pure steady-state + drain, which keeps "sustained deliveries/sec"
   honest (the window is never all ramp-up). *)
let arrival_fraction = 0.5

let build ~sessions ~churn ~horizon_ms rng =
  if sessions <= 0 then invalid_arg "Churn.build: sessions must be positive";
  if churn < 0. then invalid_arg "Churn.build: churn must be non-negative";
  if horizon_ms <= 0. then invalid_arg "Churn.build: horizon must be positive";
  let arrive = Array.make sessions 0. in
  let depart = Array.make sessions 0. in
  for id = 0 to sessions - 1 do
    let t_arr = Splitmix.float rng *. (horizon_ms *. arrival_fraction) in
    let window = horizon_ms -. t_arr in
    let life =
      if churn <= 0. then window
      else begin
        let mean = window /. churn in
        let u = Splitmix.float rng in
        (* Exp(mean), clamped into (0, window]: every session departs by
           the horizon, so arrivals and departures always balance. *)
        Float.min window (Float.max 1e-3 (-.mean *. log (1. -. u)))
      end
    in
    arrive.(id) <- t_arr;
    depart.(id) <- t_arr +. life
  done;
  let n = 2 * sessions in
  let idx = Array.init n (fun i -> i) in
  let time_of code = if code land 1 = 0 then arrive.(code / 2) else depart.(code / 2) in
  Array.sort
    (fun a b ->
      let c = Float.compare (time_of a) (time_of b) in
      if c <> 0 then c else compare a b)
    idx;
  let ev_at = Array.map time_of idx in
  { horizon = horizon_ms; arrive; depart; ev_at; ev_code = idx }

let length tl = Array.length tl.ev_code
let at tl i = tl.ev_at.(i)

let event tl i =
  let code = tl.ev_code.(i) in
  if code land 1 = 0 then Arrive (code / 2) else Depart (code / 2)

let horizon_ms tl = tl.horizon
let arrive_ms tl id = tl.arrive.(id)
let depart_ms tl id = tl.depart.(id)
