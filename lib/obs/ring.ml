type 'a t = {
  buf : 'a option array;
  mutable start : int;  (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { buf = Array.make capacity None; start = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped

let push t x =
  let cap = Array.length t.buf in
  if t.len < cap then begin
    t.buf.((t.start + t.len) mod cap) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest slot and advance the window. *)
    t.buf.(t.start) <- Some x;
    t.start <- (t.start + 1) mod cap;
    t.dropped <- t.dropped + 1
  end

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    match t.buf.((t.start + i) mod cap) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter t (fun x -> acc := x :: !acc);
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
