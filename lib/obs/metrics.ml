(* Domain-safety model (see HACKING, "Sharding and domain safety"):
   counters are [Atomic.t] cells, gauge and histogram writes are guarded
   by a per-instrument mutex, and the registry table itself by a
   registry-wide mutex — so any number of domains may report through one
   [t] concurrently. Snapshots merge per-instrument state under the same
   locks, so a snapshot taken mid-traffic is internally consistent (a
   histogram's bucket counts always sum to its count; sum/min/max belong
   to the same prefix of observations): it never tears. *)

type hist = {
  h_mu : Mutex.t;
  bounds : float array;  (* finite upper bounds, strictly increasing *)
  counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable sum : float;
  mutable count : int;
  mutable minv : float;
  mutable maxv : float;
}

type gauge_cell = { g_mu : Mutex.t; mutable g_v : float }

type instrument =
  | Icounter of int Atomic.t
  | Igauge of gauge_cell
  | Igauge_fn of (unit -> float) ref
  | Ihist of hist

type t = { mu : Mutex.t; tbl : (string, instrument) Hashtbl.t }
type counter = int Atomic.t
type gauge = gauge_cell
type histogram = hist

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }
let default = create ()

let kind_name = function
  | Icounter _ -> "counter"
  | Igauge _ -> "gauge"
  | Igauge_fn _ -> "gauge"
  | Ihist _ -> "histogram"

(* Get-or-create under the registry mutex: two domains racing to create
   the same name must agree on one cell. *)
let with_registry t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let counter t name =
  with_registry t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Icounter r) -> r
      | Some i ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is a %s, not a counter" name
               (kind_name i))
      | None ->
          let r = Atomic.make 0 in
          Hashtbl.replace t.tbl name (Icounter r);
          r)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c

let gauge t name =
  with_registry t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Igauge r) -> r
      | Some i ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is a %s, not a gauge" name
               (kind_name i))
      | None ->
          let r = { g_mu = Mutex.create (); g_v = 0. } in
          Hashtbl.replace t.tbl name (Igauge r);
          r)

let set_gauge g v =
  Mutex.lock g.g_mu;
  g.g_v <- v;
  Mutex.unlock g.g_mu

let gauge_fn t name f =
  with_registry t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Igauge_fn r) -> r := f
      | Some (Icounter _ | Igauge _ | Ihist _ as i) ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is a %s, not a gauge callback" name
               (kind_name i))
      | None -> Hashtbl.replace t.tbl name (Igauge_fn (ref f)))

let default_buckets =
  [| 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 2500. |]

let histogram ?(buckets = default_buckets) t name =
  with_registry t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Ihist h) -> h
      | Some i ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is a %s, not a histogram" name
               (kind_name i))
      | None ->
          let n = Array.length buckets in
          if n = 0 then invalid_arg "Metrics.histogram: no buckets";
          for i = 1 to n - 1 do
            if buckets.(i) <= buckets.(i - 1) then
              invalid_arg
                "Metrics.histogram: buckets must be strictly increasing"
          done;
          let h =
            {
              h_mu = Mutex.create ();
              bounds = Array.copy buckets;
              counts = Array.make (n + 1) 0;
              sum = 0.;
              count = 0;
              minv = nan;
              maxv = nan;
            }
          in
          Hashtbl.replace t.tbl name (Ihist h);
          h)

let observe h v =
  (* First bucket whose upper bound admits [v]; the overflow bucket is
     index [Array.length bounds]. A plain loop, not a local recursive
     function: this is the one call made per sample on the hot path and
     must not allocate (a closure here shows up at 10^6 inserts) — the
     mutex guard keeps it that way (lock/unlock allocate nothing). *)
  Mutex.lock h.h_mu;
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do i := !i + 1 done;
  let i = !i in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1;
  if h.count = 1 then begin
    h.minv <- v;
    h.maxv <- v
  end
  else begin
    if v < h.minv then h.minv <- v;
    if v > h.maxv then h.maxv <- v
  end;
  Mutex.unlock h.h_mu

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) array;
}

let quantile hs p =
  if p < 0. || p > 1. then invalid_arg "Metrics.quantile";
  if hs.h_count = 0 then None
  else begin
    (* Nearest-rank: the smallest rank r (1-based) with r/count >= p,
       i.e. ceil(p * count), clamped to [1, count] so p = 0.0 reports
       the minimum's bucket and p = 1.0 the maximum's. (The previous
       round-based formula biased one rank high — the median of a
       two-entry histogram landed on the larger observation.) *)
    let target =
      let r = int_of_float (Float.ceil (p *. float_of_int hs.h_count)) in
      min hs.h_count (max 1 r)
    in
    let n = Array.length hs.h_buckets in
    let rec scan i cum =
      if i >= n then Some hs.h_max
      else
        let bound, c = hs.h_buckets.(i) in
        let cum = cum + c in
        if cum >= target then
          Some (if bound = infinity then hs.h_max else bound)
        else scan (i + 1) cum
    in
    scan 0 0
  end

type value = Counter of int | Gauge of float | Histogram of hist_snapshot
type snapshot = (string * value) list

let snap_hist h =
  (* Under the instrument mutex: bucket counts, sum, count and min/max
     all describe the same prefix of observations — a snapshot racing
     [observe] on another domain can never tear. *)
  Mutex.lock h.h_mu;
  let n = Array.length h.bounds in
  let s =
    {
      h_count = h.count;
      h_sum = h.sum;
      h_min = h.minv;
      h_max = h.maxv;
      h_buckets =
        Array.init (n + 1) (fun i ->
            ((if i = n then infinity else h.bounds.(i)), h.counts.(i)));
    }
  in
  Mutex.unlock h.h_mu;
  s

let snap_instrument = function
  | Icounter r -> Counter (Atomic.get r)
  | Igauge g ->
      Mutex.lock g.g_mu;
      let v = g.g_v in
      Mutex.unlock g.g_mu;
      Gauge v
  | Igauge_fn f -> Gauge (!f ())
  | Ihist h -> Histogram (snap_hist h)

let snapshot t =
  (* Collect the instrument list under the registry mutex, then merge
     each instrument's state under its own lock — gauge callbacks run
     outside the registry lock, so a probe may itself read metrics. *)
  let instruments =
    with_registry t (fun () ->
        Hashtbl.fold (fun name i acc -> (name, i) :: acc) t.tbl [])
  in
  List.map (fun (name, i) -> (name, snap_instrument i)) instruments
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name =
  let i = with_registry t (fun () -> Hashtbl.find_opt t.tbl name) in
  Option.map snap_instrument i

let pp ppf (s : snapshot) =
  let fmt_float v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.3f" v
  in
  Format.fprintf ppf "@[<v>%-44s %14s@," "metric" "value";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Format.fprintf ppf "%-44s %14d@," name c
      | Gauge g -> Format.fprintf ppf "%-44s %14s@," name (fmt_float g)
      | Histogram h ->
          let q p =
            match quantile h p with Some v -> fmt_float v | None -> "-"
          in
          Format.fprintf ppf
            "%-44s %14s  (mean %s, p50<=%s, p95<=%s, max %s)@," name
            (Printf.sprintf "%dx" h.h_count)
            (if h.h_count = 0 then "-"
             else fmt_float (h.h_sum /. float_of_int h.h_count))
            (q 0.5) (q 0.95)
            (if h.h_count = 0 then "-" else fmt_float h.h_max))
    s;
  Format.fprintf ppf "@]"

let json_float v =
  if Float.is_nan v then "null"
  else if v = infinity then "\"inf\""
  else if v = neg_infinity then "\"-inf\""
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json (s : snapshot) =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape name));
      match v with
      | Counter c -> Buffer.add_string b (string_of_int c)
      | Gauge g -> Buffer.add_string b (json_float g)
      | Histogram h ->
          Buffer.add_string b
            (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":["
               h.h_count (json_float h.h_sum) (json_float h.h_min)
               (json_float h.h_max));
          Array.iteri
            (fun i (le, c) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "[%s,%d]" (json_float le) c))
            h.h_buckets;
          Buffer.add_string b "]}")
    s;
  Buffer.add_char b '}';
  Buffer.contents b

let reset t =
  let instruments =
    with_registry t (fun () ->
        Hashtbl.fold (fun _ i acc -> i :: acc) t.tbl [])
  in
  List.iter
    (fun i ->
      match i with
      | Icounter r -> Atomic.set r 0
      | Igauge g -> set_gauge g 0.
      | Igauge_fn _ -> ()
      | Ihist h ->
          Mutex.lock h.h_mu;
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.sum <- 0.;
          h.count <- 0;
          h.minv <- nan;
          h.maxv <- nan;
          Mutex.unlock h.h_mu)
    instruments
