(** Bounded LRU caches with built-in accounting.

    Every cache the middleware keeps — type descriptions, conformance
    verdicts, download paths, assembly-name lookups — goes through this
    functor, so each one is bounded (no unbounded [Hashtbl] growth under
    type churn), observable (hit/miss/eviction/invalidation counters) and
    invalidatable by key predicate rather than wholesale [clear].

    Recency: {!S.find} and {!S.put} refresh an entry; {!S.peek} and
    {!S.mem} do not. When the cache is full, {!S.put} of a new key evicts
    the least recently used entry (and reports it to [on_evict]). *)

(** Shared across all instantiations so callers can surface counters from
    heterogeneous caches uniformly (e.g. as metrics gauges). *)
type counters = {
  hits : int;  (** [find] calls answered from the cache. *)
  misses : int;  (** [find] calls that came back empty. *)
  evictions : int;  (** Entries displaced by capacity pressure. *)
  invalidations : int;  (** Entries dropped by {!S.invalidate_where},
                            {!S.remove} or {!S.clear}. *)
  insertions : int;  (** [put] calls that added a new key. *)
}

val hit_rate : counters -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type key
  type 'a t

  val create : ?on_evict:(key -> 'a -> unit) -> capacity:int -> unit -> 'a t
  (** [on_evict] fires for entries displaced by capacity pressure or
      dropped by {!invalidate_where}/{!remove}/{!clear}.
      @raise Invalid_argument when [capacity < 1]. *)

  val capacity : 'a t -> int
  val set_capacity : 'a t -> int -> unit
  (** Shrinking evicts least-recently-used entries down to the new bound.
      @raise Invalid_argument when the new capacity is [< 1]. *)

  val length : 'a t -> int
  val mem : 'a t -> key -> bool
  val find : 'a t -> key -> 'a option
  val peek : 'a t -> key -> 'a option
  val put : 'a t -> key -> 'a -> unit
  val remove : 'a t -> key -> unit
  val invalidate_where : 'a t -> (key -> bool) -> int
  (** Drop every entry whose key satisfies the predicate; returns how many
      were dropped. This is the keyed replacement for clearing a whole
      cache when one input changes. *)

  val clear : 'a t -> unit
  (** Empties the cache, counting every entry as an invalidation and
      firing [on_evict] once per entry (same contract as {!remove}), so
      dependency bookkeeping hung off the callback stays in sync. *)

  val fold : 'a t -> init:'b -> f:(key -> 'a -> 'b -> 'b) -> 'b
  val to_list : 'a t -> (key * 'a) list
  (** Most recently used first. *)

  val counters : 'a t -> counters
end

module Make (K : KEY) : S with type key = K.t

module Str : S with type key = string
(** The common case: string-keyed caches. *)
