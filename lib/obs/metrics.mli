(** A process-wide metrics registry: named counters, gauges and
    fixed-bucket histograms every layer reports through, with one
    [snapshot]/[pp]/[to_json] surface.

    Naming scheme (see HACKING.md): dot-separated lowercase paths,
    [<layer>.<instance>.<object>.<measure>] — e.g.
    [peer.receiver.tdesc_cache.hits], [net.latency_ms.object],
    [checker.cache.evictions]. Instruments are get-or-create by name:
    asking twice for the same counter returns the same cell; asking for an
    existing name with a different instrument kind raises
    [Invalid_argument]. Gauge callbacks ({!gauge_fn}) replace a previous
    callback under the same name, so a re-created subsystem can re-bind
    its probes.

    {b Domain safety.} A registry may be shared across OCaml 5 domains:
    counters are [Atomic.t] cells, gauge and histogram writes are
    guarded by a per-instrument mutex (the histogram hot path stays
    allocation-free), and registration by a registry-wide mutex.
    {!snapshot} merges instrument state under the same locks, so a
    snapshot taken while other domains report is internally consistent —
    a histogram's bucket counts always sum to its count. Gauge
    {e callbacks} run on the snapshotting domain and are only as safe as
    the state they probe. *)

type t

val create : unit -> t

val default : t
(** The shared process-wide registry, for callers that do not thread an
    explicit one. *)

(** {1 Instruments} *)

type counter

val counter : t -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit

val gauge_fn : t -> string -> (unit -> float) -> unit
(** A probe evaluated at snapshot time — how cache counters and sizes are
    surfaced without copying them on every update. *)

type histogram

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are the finite upper bounds, strictly increasing; an
    implicit overflow bucket catches the rest. Defaults to
    {!default_buckets}. A histogram re-requested by name keeps its
    original buckets. *)

val default_buckets : float array
(** Latency-flavoured: 0.25 … 2500 (ms). *)

val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [nan] when empty. *)
  h_max : float;  (** [nan] when empty. *)
  h_buckets : (float * int) array;
      (** (upper bound, count) per bucket; the last bound is [infinity]. *)
}

val quantile : hist_snapshot -> float -> float option
(** Bucket-resolution estimate: the upper bound of the bucket holding the
    p-quantile observation (the observed max for the overflow bucket),
    with the nearest-rank rule — rank [ceil(p * count)] clamped to
    [[1, count]], so [p = 0.0] reports the minimum's bucket and
    [p = 1.0] the maximum's on histograms of any size. [None] when the
    histogram is empty. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : t -> snapshot
val find : t -> string -> value option
(** Snapshot-time lookup of a single metric. *)

val pp : Format.formatter -> snapshot -> unit
(** Aligned name/value table; histograms show count, mean and estimated
    p50/p95/max. *)

val to_json : snapshot -> string
(** One JSON object keyed by metric name; histograms become
    [{"count":…,"sum":…,"min":…,"max":…,"buckets":[[le,count],…]}]. *)

val json_float : float -> string
(** The float rendering {!to_json} uses ([null] for NaN, quoted
    infinities, integral floats without a fraction) — shared with every
    other JSON emitter in the repo so reports stay style-uniform. *)

val reset : t -> unit
(** Zeroes counters, gauges and histograms; keeps registrations (including
    gauge callbacks). *)
