(** Fixed-capacity ring buffer: pushing past the capacity overwrites the
    oldest element. Used to bound append-mostly logs (peer event logs)
    that were previously unbounded lists. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Appends; silently displaces the oldest element when full. *)

val dropped : 'a t -> int
(** How many elements have been displaced since creation/[clear]. *)

val to_list : 'a t -> 'a list
(** Oldest first (chronological for a log). *)

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest first. *)

val clear : 'a t -> unit
(** Empties the buffer and resets {!dropped}. *)
