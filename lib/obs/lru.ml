type counters = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  insertions : int;
}

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0. else float_of_int c.hits /. float_of_int total

module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type key
  type 'a t

  val create : ?on_evict:(key -> 'a -> unit) -> capacity:int -> unit -> 'a t
  val capacity : 'a t -> int
  val set_capacity : 'a t -> int -> unit
  val length : 'a t -> int
  val mem : 'a t -> key -> bool
  val find : 'a t -> key -> 'a option
  val peek : 'a t -> key -> 'a option
  val put : 'a t -> key -> 'a -> unit
  val remove : 'a t -> key -> unit
  val invalidate_where : 'a t -> (key -> bool) -> int
  val clear : 'a t -> unit
  val fold : 'a t -> init:'b -> f:(key -> 'a -> 'b -> 'b) -> 'b
  val to_list : 'a t -> (key * 'a) list
  val counters : 'a t -> counters
end

module Make (K : KEY) : S with type key = K.t = struct
  module H = Hashtbl.Make (K)

  type key = K.t

  (* Intrusive doubly-linked list ordered by recency (head = most recent);
     the hashtable points straight at the nodes, so every operation is
     O(1) except the predicate sweeps. *)
  type 'a node = {
    nkey : key;
    mutable nval : 'a;
    mutable prev : 'a node option;  (* towards the head / more recent *)
    mutable next : 'a node option;  (* towards the tail / less recent *)
    (* Cleared by [drop] before the [on_evict] callback runs: a callback
       that re-enters this LRU (insert, find, even removal of another
       doomed key) may race a sweep still holding a reference to this
       node — dropping a dead node a second time must be a no-op, not a
       recency-list corruption (unlinking an already-detached node used
       to null the list head while the table stayed populated, tripping
       the eviction loop's [assert false]). *)
    mutable alive : bool;
  }

  type 'a t = {
    tbl : 'a node H.t;
    mutable head : 'a node option;
    mutable tail : 'a node option;
    mutable cap : int;
    on_evict : (key -> 'a -> unit) option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    mutable invalidations : int;
    mutable insertions : int;
  }

  let create ?on_evict ~capacity () =
    if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
    {
      tbl = H.create (min capacity 64);
      head = None;
      tail = None;
      cap = capacity;
      on_evict;
      hits = 0;
      misses = 0;
      evictions = 0;
      invalidations = 0;
      insertions = 0;
    }

  let capacity t = t.cap
  let length t = H.length t.tbl
  let mem t k = H.mem t.tbl k

  let unlink t n =
    (match n.prev with
    | Some p -> p.next <- n.next
    | None -> t.head <- n.next);
    (match n.next with
    | Some s -> s.prev <- n.prev
    | None -> t.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.prev <- None;
    n.next <- t.head;
    (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let touch t n =
    match n.prev with
    | None -> ()  (* already the head *)
    | Some _ ->
        unlink t n;
        push_front t n

  let drop ?(count_eviction = false) t n =
    if n.alive then begin
      n.alive <- false;
      unlink t n;
      H.remove t.tbl n.nkey;
      if count_eviction then t.evictions <- t.evictions + 1
      else t.invalidations <- t.invalidations + 1;
      (* The callback runs last, with the node fully detached and the
         table already consistent: it may freely re-enter this LRU. *)
      match t.on_evict with Some f -> f n.nkey n.nval | None -> ()
    end

  let evict_over_capacity t =
    while H.length t.tbl > t.cap do
      match t.tail with
      | Some n -> drop ~count_eviction:true t n
      | None -> assert false
    done

  let set_capacity t c =
    if c < 1 then invalid_arg "Lru.set_capacity: capacity must be >= 1";
    t.cap <- c;
    evict_over_capacity t

  let find t k =
    match H.find_opt t.tbl k with
    | Some n ->
        t.hits <- t.hits + 1;
        touch t n;
        Some n.nval
    | None ->
        t.misses <- t.misses + 1;
        None

  let peek t k = Option.map (fun n -> n.nval) (H.find_opt t.tbl k)

  let put t k v =
    match H.find_opt t.tbl k with
    | Some n ->
        n.nval <- v;
        touch t n
    | None ->
        let n = { nkey = k; nval = v; prev = None; next = None; alive = true } in
        H.replace t.tbl k n;
        push_front t n;
        t.insertions <- t.insertions + 1;
        evict_over_capacity t

  let remove t k =
    match H.find_opt t.tbl k with Some n -> drop t n | None -> ()

  let invalidate_where t pred =
    (* Collect first: the predicate must not observe a half-swept list. *)
    let doomed = ref [] in
    let rec walk = function
      | None -> ()
      | Some n ->
          if pred n.nkey then doomed := n :: !doomed;
          walk n.next
    in
    walk t.head;
    List.iter (fun n -> drop t n) !doomed;
    List.length !doomed

  let clear t =
    (* [clear] must honour [on_evict] exactly like [drop] does: callers
       (e.g. the checker's resolver-dep index) rely on the callback for
       bookkeeping, and skipping it on bulk invalidation desyncs them.
       Snapshot the entries first so the callback never observes a
       half-swept list. *)
    let entries =
      let rec walk acc = function
        | None -> List.rev acc
        | Some n ->
            (* Dead before any callback fires: a callback re-entering
               [remove]/[put] must never resurrect or re-drop them. *)
            n.alive <- false;
            walk ((n.nkey, n.nval) :: acc) n.next
      in
      walk [] t.head
    in
    t.invalidations <- t.invalidations + H.length t.tbl;
    H.reset t.tbl;
    t.head <- None;
    t.tail <- None;
    match t.on_evict with
    | Some f -> List.iter (fun (k, v) -> f k v) entries
    | None -> ()

  let fold t ~init ~f =
    let rec go acc = function
      | None -> acc
      | Some n -> go (f n.nkey n.nval acc) n.next
    in
    go init t.head

  let to_list t =
    List.rev (fold t ~init:[] ~f:(fun k v acc -> (k, v) :: acc))

  let counters t =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      invalidations = t.invalidations;
      insertions = t.insertions;
    }
end

module Str = Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)
