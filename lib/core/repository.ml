module S = Pti_util.Strutil
module Fnv = Pti_util.Fnv
module Lru = Pti_obs.Lru

type version_entry = {
  ve_version : int;
  ve_digest : string;
  ve_path : string;
  ve_assembly : Pti_cts.Assembly.t;
}

type pin = Latest | Version of int | Digest of string

type cas_error =
  | Conflict of { expected : string option; head : string option }

type t = {
  by_path : (string, Pti_cts.Assembly.t) Hashtbl.t;
  (* Memo over the linear by-name scan; keyed by lowercased assembly
     name. Invalidated wholesale on [add] (adds are rare, lookups hot). *)
  by_name : (string * Pti_cts.Assembly.t) Lru.Str.t;
  (* Per-name version chains, keyed by lowercased assembly name, kept
     ascending by (version, digest) and deduplicated by digest — so two
     mirrors that learned the same entries in different orders hold
     byte-identical chains. *)
  chains : (string, version_entry list) Hashtbl.t;
  mutable subs : (name:string -> version:int -> digest:string -> unit) list;
}

let create ?(by_name_capacity = 256) () =
  {
    by_path = Hashtbl.create 8;
    by_name = Lru.Str.create ~capacity:by_name_capacity ();
    chains = Hashtbl.create 8;
    subs = [];
  }

let digest_of asm = Fnv.hash_hex (Pti_serial.Assembly_xml.to_string asm)

let path_for ~host ~assembly = Printf.sprintf "asm://%s/%s" host assembly

let path_for_version ~host ~assembly ~version =
  Printf.sprintf "asm://%s/%s@v%d" host assembly version

let parse_path p =
  if S.starts_with ~prefix:"asm://" p then
    let rest = String.sub p 6 (String.length p - 6) in
    match String.index_opt rest '/' with
    | Some i ->
        Some
          ( String.sub rest 0 i,
            String.sub rest (i + 1) (String.length rest - i - 1) )
    | None -> None
  else None

let split_version assembly =
  match String.rindex_opt assembly '@' with
  | Some i
    when i + 1 < String.length assembly && assembly.[i + 1] = 'v' -> (
      let n = String.sub assembly (i + 2) (String.length assembly - i - 2) in
      match int_of_string_opt n with
      | Some v when v > 0 -> (String.sub assembly 0 i, Some v)
      | _ -> (assembly, None))
  | _ -> (assembly, None)

let parse_versioned_path p =
  match parse_path p with
  | None -> None
  | Some (host, assembly) ->
      let name, v = split_version assembly in
      Some (host, name, v)

let chain_key name = String.lowercase_ascii name
let chain t name = Option.value ~default:[] (Hashtbl.find_opt t.chains (chain_key name))

let chain_head t name =
  match chain t name with [] -> None | es -> Some (List.nth es (List.length es - 1))

let notify t ~name ~version ~digest =
  List.iter (fun f -> f ~name ~version ~digest) (List.rev t.subs)

let subscribe t f = t.subs <- f :: t.subs

(* Insert an entry keeping the chain ascending by (version, digest) and
   deduplicated by digest. Returns [true] when the entry was new. *)
let chain_insert t name entry =
  let key = chain_key name in
  let es = chain t key in
  if List.exists (fun e -> String.equal e.ve_digest entry.ve_digest) es then
    false
  else begin
    let es =
      List.merge
        (fun a b -> compare (a.ve_version, a.ve_digest) (b.ve_version, b.ve_digest))
        es [ entry ]
    in
    Hashtbl.replace t.chains key es;
    true
  end

let add t ~path asm =
  Hashtbl.replace t.by_path path asm;
  (* A replaced path can change which assembly a name resolves to; the
     memo cannot tell, so drop it entirely. *)
  Lru.Str.clear t.by_name;
  (* Mirror-side learning: an explicitly versioned path folds the bytes
     into the name's chain (content addressing dedupes re-learns).
     Unversioned adds keep their legacy replace-the-binding semantics
     untouched — only evolution-aware flows produce [@v] paths. *)
  match parse_versioned_path path with
  | Some (_, _, Some version) ->
      let name = asm.Pti_cts.Assembly.asm_name in
      let digest = digest_of asm in
      let entry =
        { ve_version = version; ve_digest = digest; ve_path = path;
          ve_assembly = asm }
      in
      if chain_insert t name entry then notify t ~name ~version ~digest
  | _ -> ()

let learn_version t ~version ~path asm =
  let name = asm.Pti_cts.Assembly.asm_name in
  let digest = digest_of asm in
  let entry =
    { ve_version = version; ve_digest = digest; ve_path = path;
      ve_assembly = asm }
  in
  let fresh = chain_insert t name entry in
  if fresh then begin
    Hashtbl.replace t.by_path path asm;
    Lru.Str.clear t.by_name;
    notify t ~name ~version ~digest
  end;
  fresh

let publish_cas t ~host ~expect asm =
  let name = asm.Pti_cts.Assembly.asm_name in
  let head = chain_head t name in
  let head_digest = Option.map (fun e -> e.ve_digest) head in
  (* Idempotence: bytes already on the chain succeed regardless of
     [expect] — a retried publish must not conflict with itself. *)
  let existing =
    List.find_opt
      (fun e ->
        String.equal e.ve_digest (digest_of asm)
        || String.equal e.ve_digest
             (digest_of
                { asm with
                  Pti_cts.Assembly.asm_version = e.ve_version }))
      (chain t name)
  in
  match existing with
  | Some e -> Ok e
  | None ->
      if not (Option.equal String.equal expect head_digest) then
        Error (Conflict { expected = expect; head = head_digest })
      else begin
        let version =
          match head with None -> 1 | Some h -> h.ve_version + 1
        in
        let asm = { asm with Pti_cts.Assembly.asm_version = version } in
        let digest = digest_of asm in
        let path = path_for_version ~host ~assembly:name ~version in
        let entry =
          { ve_version = version; ve_digest = digest; ve_path = path;
            ve_assembly = asm }
        in
        ignore (chain_insert t name entry);
        Hashtbl.replace t.by_path path asm;
        (* The canonical unversioned path always serves the head, so
           pre-evolution senders and fetches keep working untouched. *)
        Hashtbl.replace t.by_path (path_for ~host ~assembly:name) asm;
        Lru.Str.clear t.by_name;
        notify t ~name ~version ~digest;
        Ok entry
      end

let resolve t ?(pin = Latest) name =
  match pin with
  | Latest -> chain_head t name
  | Version v -> List.find_opt (fun e -> e.ve_version = v) (chain t name)
  | Digest d ->
      List.find_opt (fun e -> String.equal e.ve_digest d) (chain t name)

let chain_digests t =
  Hashtbl.fold
    (fun name es acc ->
      (name, List.map (fun e -> (e.ve_version, e.ve_digest)) es) :: acc)
    t.chains []
  |> List.sort compare

let find t ~path =
  match Hashtbl.find_opt t.by_path path with
  | Some asm -> Some asm
  | None -> (
      (* A versioned path with no direct binding is served from the
         chain: any mirror holding the bytes answers, whatever path it
         learned them under. *)
      match parse_versioned_path path with
      | Some (_, name, Some v) ->
          Option.map (fun e -> e.ve_assembly) (resolve t ~pin:(Version v) name)
      | _ -> None)

let find_by_name t name =
  let key = String.lowercase_ascii name in
  match Lru.Str.find t.by_name key with
  | Some hit -> Some hit
  | None ->
      let scan =
        (* A version chain is authoritative: its head is the latest
           published version, wherever older versions are still bound. *)
        match chain_head t name with
        | Some e -> Some (e.ve_path, e.ve_assembly)
        | None ->
            (* Deterministic winner: the lexicographically smallest path,
               not whatever hash order yields first — mirror selection and
               tests must be reproducible across runs. *)
            Hashtbl.fold
              (fun path asm acc ->
                if S.equal_ci asm.Pti_cts.Assembly.asm_name name then
                  match acc with
                  | Some (best, _) when best <= path -> acc
                  | _ -> Some (path, asm)
                else acc)
              t.by_path None
      in
      (match scan with
      | Some hit -> Lru.Str.put t.by_name key hit
      | None -> ());
      scan

let mirror_paths t name =
  Hashtbl.fold
    (fun path asm acc ->
      if S.equal_ci asm.Pti_cts.Assembly.asm_name name then path :: acc
      else acc)
    t.by_path []
  |> List.sort compare

let entries t =
  Hashtbl.fold
    (fun path asm acc -> (path, asm.Pti_cts.Assembly.asm_name) :: acc)
    t.by_path []
  |> List.sort compare

let lookup_counters t = Lru.Str.counters t.by_name
let paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t.by_path []
let cardinal t = Hashtbl.length t.by_path
