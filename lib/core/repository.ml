module S = Pti_util.Strutil
module Lru = Pti_obs.Lru

type t = {
  by_path : (string, Pti_cts.Assembly.t) Hashtbl.t;
  (* Memo over the linear by-name scan; keyed by lowercased assembly
     name. Invalidated wholesale on [add] (adds are rare, lookups hot). *)
  by_name : (string * Pti_cts.Assembly.t) Lru.Str.t;
}

let create ?(by_name_capacity = 256) () =
  {
    by_path = Hashtbl.create 8;
    by_name = Lru.Str.create ~capacity:by_name_capacity ();
  }

let add t ~path asm =
  Hashtbl.replace t.by_path path asm;
  (* A replaced path can change which assembly a name resolves to; the
     memo cannot tell, so drop it entirely. *)
  Lru.Str.clear t.by_name

let find t ~path = Hashtbl.find_opt t.by_path path

let find_by_name t name =
  let key = String.lowercase_ascii name in
  match Lru.Str.find t.by_name key with
  | Some hit -> Some hit
  | None ->
      (* Deterministic winner: the lexicographically smallest path, not
         whatever hash order yields first — mirror selection and tests
         must be reproducible across runs. *)
      let scan =
        Hashtbl.fold
          (fun path asm acc ->
            if S.equal_ci asm.Pti_cts.Assembly.asm_name name then
              match acc with
              | Some (best, _) when best <= path -> acc
              | _ -> Some (path, asm)
            else acc)
          t.by_path None
      in
      (match scan with
      | Some hit -> Lru.Str.put t.by_name key hit
      | None -> ());
      scan

let mirror_paths t name =
  Hashtbl.fold
    (fun path asm acc ->
      if S.equal_ci asm.Pti_cts.Assembly.asm_name name then path :: acc
      else acc)
    t.by_path []
  |> List.sort compare

let entries t =
  Hashtbl.fold
    (fun path asm acc -> (path, asm.Pti_cts.Assembly.asm_name) :: acc)
    t.by_path []
  |> List.sort compare

let lookup_counters t = Lru.Str.counters t.by_name
let paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t.by_path []
let cardinal t = Hashtbl.length t.by_path

let path_for ~host ~assembly = Printf.sprintf "asm://%s/%s" host assembly

let parse_path p =
  if S.starts_with ~prefix:"asm://" p then
    let rest = String.sub p 6 (String.length p - 6) in
    match String.index_opt rest '/' with
    | Some i ->
        Some
          ( String.sub rest 0 i,
            String.sub rest (i + 1) (String.length rest - i - 1) )
    | None -> None
  else None
