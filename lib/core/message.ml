type t =
  | Obj_msg of {
      envelope : string;
      tdescs : string list;
      assemblies : string list;
    }
  | Obj_batch of { frame : string }
  | Tdesc_request of {
      type_name : string;
      token : int;
      binary_ok : bool;
      version : int;
          (* Pin to this chain version of the type's assembly; 0 = the
             responder's latest (pre-evolution behavior). *)
    }
  | Tdesc_reply of { type_name : string; desc : string option; token : int }
  | Asm_request of { path : string; token : int }
  | Asm_reply of { path : string; assembly : string option; token : int }
  | Invoke_request of {
      target : int;
      meth : string;
      args : string;
      token : int;
    }
  | Invoke_reply of {
      token : int;
      result : string option;
      error : string option;
    }
  | Gossip of { kind : string; body : string }
  | Handle_nak of { handles : int list }
  | Handle_bind of { frame : string }

let category = function
  | Obj_msg _ -> Pti_net.Stats.Object_msg
  | Obj_batch _ -> Pti_net.Stats.Object_msg
  | Tdesc_request _ -> Pti_net.Stats.Tdesc_request
  | Tdesc_reply _ -> Pti_net.Stats.Tdesc_reply
  | Asm_request _ -> Pti_net.Stats.Asm_request
  | Asm_reply _ -> Pti_net.Stats.Asm_reply
  | Invoke_request _ -> Pti_net.Stats.Invoke_request
  | Invoke_reply _ -> Pti_net.Stats.Invoke_reply
  | Gossip _ -> Pti_net.Stats.Gossip
  | Handle_nak _ | Handle_bind _ -> Pti_net.Stats.Handle_ctl

let framing = 16

let opt_len = function None -> 0 | Some s -> String.length s

let size = function
  | Obj_msg { envelope; tdescs; assemblies } ->
      framing + String.length envelope
      + List.fold_left (fun a s -> a + String.length s) 0 tdescs
      + List.fold_left (fun a s -> a + String.length s) 0 assemblies
  | Obj_batch { frame } -> framing + String.length frame
  | Tdesc_request { type_name; _ } -> framing + String.length type_name
  | Tdesc_reply { type_name; desc; _ } ->
      framing + String.length type_name + opt_len desc
  | Asm_request { path; _ } -> framing + String.length path
  | Asm_reply { path; assembly; _ } ->
      framing + String.length path + opt_len assembly
  | Invoke_request { meth; args; _ } ->
      framing + 8 + String.length meth + String.length args
  | Invoke_reply { result; error; _ } ->
      framing + opt_len result + opt_len error
  | Gossip { kind; body } -> framing + String.length kind + String.length body
  | Handle_nak { handles } -> framing + (2 * List.length handles)
  | Handle_bind { frame } -> framing + String.length frame

let describe = function
  | Obj_msg { envelope; tdescs; assemblies } ->
      Printf.sprintf "obj(%dB env, %d tdescs, %d assemblies)"
        (String.length envelope) (List.length tdescs) (List.length assemblies)
  | Tdesc_request { type_name; token; version; _ } ->
      if version > 0 then
        Printf.sprintf "tdesc-req(%s@v%d)#%d" type_name version token
      else Printf.sprintf "tdesc-req(%s)#%d" type_name token
  | Tdesc_reply { type_name; desc; token } ->
      Printf.sprintf "tdesc-reply(%s,%s)#%d" type_name
        (if desc = None then "miss" else "hit")
        token
  | Asm_request { path; token } -> Printf.sprintf "asm-req(%s)#%d" path token
  | Asm_reply { path; assembly; token } ->
      Printf.sprintf "asm-reply(%s,%s)#%d" path
        (if assembly = None then "miss" else "hit")
        token
  | Invoke_request { target; meth; token; _ } ->
      Printf.sprintf "invoke(%d.%s)#%d" target meth token
  | Invoke_reply { token; error; _ } ->
      Printf.sprintf "invoke-reply%s#%d"
        (match error with Some e -> "!" ^ e | None -> "")
        token
  | Obj_batch { frame } -> Printf.sprintf "obj-batch(%dB)" (String.length frame)
  | Gossip { kind; body } ->
      Printf.sprintf "gossip(%s,%dB)" kind (String.length body)
  | Handle_nak { handles } ->
      Printf.sprintf "handle-nak[%s]"
        (String.concat ";" (List.map string_of_int handles))
  | Handle_bind { frame } ->
      Printf.sprintf "handle-bind(%dB)" (String.length frame)
