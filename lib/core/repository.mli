(** Assembly repository: the store behind download paths.

    Each peer publishes the assemblies it authored under paths of the form
    [asm://<host>/<assembly-name>]; envelope type entries carry these paths
    so any receiver knows where to fetch code (§6.1).

    The store is {e versioned and content-addressed}: every assembly a
    name has ever resolved to lives on that name's version chain, keyed by
    the FNV-1a digest of its canonical XML bytes. {!publish_cas} extends a
    chain by compare-and-set over the head digest — concurrent publishers
    cannot silently lose each other's update — and {!resolve} answers a
    pinned ([Version]/[Digest]) or [Latest] lookup, so mirrors can serve
    any version a receiver negotiated while new senders pick up the head. *)

type t

val create : ?by_name_capacity:int -> unit -> t
(** [by_name_capacity] bounds the name-lookup memo (default 256). *)

val add : t -> path:string -> Pti_cts.Assembly.t -> unit
(** Replaces an existing binding (a newer version). Mirror-side learning:
    when [path] carries a [@v<N>] version suffix, the assembly is also
    folded into its name's version chain, keyed by content digest, so a
    mirror that learned v1 and v2 in either order converges on the same
    chain. Unversioned adds keep their legacy semantics untouched. *)

val find : t -> path:string -> Pti_cts.Assembly.t option
(** Exact path lookup. A versioned path [asm://h/name@v<N>] that has no
    direct binding falls back to the name's chain entry for version [N] —
    a mirror serves any version it has, whatever path it learned it
    under. *)

val find_by_name : t -> string -> (string * Pti_cts.Assembly.t) option
(** Path and assembly for an assembly name (case-insensitive). A name
    with a version chain resolves to the chain head (latest version);
    otherwise, when the assembly is registered under several paths
    (mirrors), the lexicographically smallest path wins —
    deterministically, independent of hash order. Successful lookups are
    memoized in a bounded LRU; [add] invalidates the memo. *)

(** {1 Version chains} *)

type version_entry = {
  ve_version : int;  (** Position on the chain, 1-based. *)
  ve_digest : string;  (** FNV-1a hex of the canonical assembly bytes. *)
  ve_path : string;  (** Download path the entry was published under. *)
  ve_assembly : Pti_cts.Assembly.t;
}

type pin =
  | Latest
  | Version of int
  | Digest of string
      (** Content-addressed: exactly the bytes with this digest. *)

type cas_error =
  | Conflict of { expected : string option; head : string option }
      (** The chain head moved: [expected] is what the caller believed,
          [head] is the digest actually at the head ([None] = empty). *)

val digest_of : Pti_cts.Assembly.t -> string
(** FNV-1a 64-bit hex over the canonical XML serialization — the content
    address used everywhere a version is named. Injective on canonical
    bytes up to hash collision; the chain additionally stores the bytes,
    so equal digests with different content would be caught on merge. *)

val publish_cas :
  t ->
  host:string ->
  expect:string option ->
  Pti_cts.Assembly.t ->
  (version_entry, cas_error) result
(** Compare-and-set publish. [expect] must equal the current head digest
    of the assembly's name chain ([None] for a first publish). On success
    the assembly is stamped with the next version number, appended to the
    chain, and bound under both its versioned path
    [asm://host/name@v<N>] and the canonical unversioned path (which thus
    always serves the head). Republishing bytes already on the chain is
    idempotent and returns the existing entry regardless of [expect].
    Subscribers are notified after the chain is extended. *)

val resolve : t -> ?pin:pin -> string -> version_entry option
(** Resolve a name (case-insensitive) against its version chain. [Latest]
    (default) returns the head. Names without a chain resolve to [None] —
    use {!find_by_name} for the legacy path-scan fallback. *)

val chain : t -> string -> version_entry list
(** The full chain for a name, ascending by version ([] if none). *)

val chain_digests : t -> (string * (int * string) list) list
(** Every chain as [(name, [(version, digest); ...])], names sorted,
    versions ascending — the raw material of an anti-entropy chain
    digest. Names are the lowercased assembly names. *)

val learn_version :
  t -> version:int -> path:string -> Pti_cts.Assembly.t -> bool
(** Mirror-side chain merge: insert the assembly at [version] on its
    name's chain, keyed by content digest. Returns [true] if the entry
    was new. Merging the same set of (version, assembly) pairs in any
    order yields the same chain, so gossip convergence is order-free.
    Also binds [path] so the mirror can serve the bytes. Subscribers are
    notified of genuinely new entries. *)

val subscribe : t -> (name:string -> version:int -> digest:string -> unit) -> unit
(** Change notification: called after every chain extension (local CAS
    publish or mirror merge), with the assembly's name as published. *)

val mirror_paths : t -> string -> string list
(** Every path the named assembly (case-insensitive) is registered
    under, sorted. An assembly replicated across hosts has one entry per
    mirror. *)

val entries : t -> (string * string) list
(** All [(path, assembly-name)] bindings, sorted by path — the raw
    material of an anti-entropy digest. *)

val lookup_counters : t -> Pti_obs.Lru.counters
(** Accounting of the name-lookup memo. *)

val paths : t -> string list
val cardinal : t -> int

val path_for : host:string -> assembly:string -> string
(** The canonical [asm://host/assembly] download path. *)

val path_for_version : host:string -> assembly:string -> version:int -> string
(** The versioned [asm://host/assembly@v<N>] download path. *)

val parse_path : string -> (string * string) option
(** [Some (host, assembly)] for a canonical path; a versioned path parses
    to its unversioned assembly name plus suffix (use
    {!parse_versioned_path} to split the version out). *)

val parse_versioned_path : string -> (string * string * int option) option
(** [Some (host, assembly, Some v)] for [asm://host/assembly@v<N>],
    [Some (host, assembly, None)] for the canonical form. *)
