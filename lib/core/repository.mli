(** Assembly repository: the store behind download paths.

    Each peer publishes the assemblies it authored under paths of the form
    [asm://<host>/<assembly-name>]; envelope type entries carry these paths
    so any receiver knows where to fetch code (§6.1). *)

type t

val create : ?by_name_capacity:int -> unit -> t
(** [by_name_capacity] bounds the name-lookup memo (default 256). *)

val add : t -> path:string -> Pti_cts.Assembly.t -> unit
(** Replaces an existing binding (a newer version). *)

val find : t -> path:string -> Pti_cts.Assembly.t option
val find_by_name : t -> string -> (string * Pti_cts.Assembly.t) option
(** Path and assembly for an assembly name (case-insensitive). When the
    assembly is registered under several paths (mirrors), the
    lexicographically smallest path wins — deterministically, independent
    of hash order. Successful lookups are memoized in a bounded LRU;
    [add] invalidates the memo. *)

val mirror_paths : t -> string -> string list
(** Every path the named assembly (case-insensitive) is registered
    under, sorted. An assembly replicated across hosts has one entry per
    mirror. *)

val entries : t -> (string * string) list
(** All [(path, assembly-name)] bindings, sorted by path — the raw
    material of an anti-entropy digest. *)

val lookup_counters : t -> Pti_obs.Lru.counters
(** Accounting of the name-lookup memo. *)

val paths : t -> string list
val cardinal : t -> int

val path_for : host:string -> assembly:string -> string
(** The canonical [asm://host/assembly] download path. *)

val parse_path : string -> (string * string) option
(** [Some (host, assembly)] for a canonical path. *)
