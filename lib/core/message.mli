(** Wire messages of the type-interoperability protocol (Figure 1).

    Every payload travels in its actual wire rendering (XML text), so the
    [size] charged to the network simulator is the honest byte count. *)

type t =
  | Obj_msg of {
      envelope : string;  (** Hybrid envelope XML (Figure 3). *)
      tdescs : string list;
          (** Inlined type descriptions — empty under the optimistic
              protocol, populated by the eager baseline. *)
      assemblies : string list;  (** Inlined code — eager baseline only. *)
    }
  | Obj_batch of { frame : string }
      (** Several coalesced [Obj_msg] payloads (plus opportunistic
          gossip piggyback) in one checksummed {!Pti_serial.Batch_frame},
          amortising per-message framing and ack overhead. *)
  | Tdesc_request of {
      type_name : string;
      token : int;
      binary_ok : bool;
      version : int;
          (** Pin to this chain version of the type's assembly; [0] = the
              responder's latest (pre-evolution behavior, absent on the
              wire). *)
    }
      (** [binary_ok] advertises that the requester accepts the compact
          binary type-description codec in the reply; responders fall
          back to XML for peers that do not. *)
  | Tdesc_reply of { type_name : string; desc : string option; token : int }
      (** [None]: the queried host does not know the type either. *)
  | Asm_request of { path : string; token : int }
  | Asm_reply of { path : string; assembly : string option; token : int }
  | Invoke_request of {
      target : int;  (** Exported object id on the destination host. *)
      meth : string;  (** Actual-side method name (translated by caller). *)
      args : string;  (** Envelope XML carrying the argument values. *)
      token : int;
    }
  | Invoke_reply of {
      token : int;
      result : string option;  (** Envelope XML of the return value. *)
      error : string option;
    }
  | Gossip of { kind : string; body : string }
      (** Cluster background traffic ([pti_cluster]): membership
          announcements, anti-entropy digests, replica pushes. [kind]
          discriminates; [body] is the codec-specific payload. The core
          peer only routes these — semantics live in the cluster layer. *)
  | Handle_nak of { handles : int list }
      (** The receiver could not resolve these negotiated type handles
          (cold cache, restart, eviction): ask the sender to re-bind. *)
  | Handle_bind of { frame : string }
      (** Renegotiated handle bindings in a checksummed
          {!Pti_serial.Handle_table} bind frame. *)

val category : t -> Pti_net.Stats.category

val size : t -> int
(** Payload bytes plus a small fixed framing overhead. *)

val describe : t -> string
(** One-line rendering for logs. *)
