open Pti_cts
module Net = Pti_net.Net
module Transport = Pti_transport.Transport
module Td = Pti_typedesc.Type_description
module Checker = Pti_conformance.Checker
module Config = Pti_conformance.Config
module Mapping = Pti_conformance.Mapping
module Proxy = Pti_proxy.Dynamic_proxy
module Envelope = Pti_serial.Envelope
module Assembly_xml = Pti_serial.Assembly_xml
module Ht = Pti_serial.Handle_table
module Bf = Pti_serial.Batch_frame
module S = Pti_util.Strutil
module Lru = Pti_obs.Lru
module Ring = Pti_obs.Ring
module Metrics = Pti_obs.Metrics

let log_src = Logs.Src.create "pti.peer" ~doc:"Type-interoperability peer"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Optimistic | Eager

type event =
  | Delivered of { interest : string; from : string; value : Value.value }
  | Rejected of { type_name : string; from : string; reason : string }
  | Decode_failed of { from : string; reason : string }
  | Load_failed of { assembly : string; reason : string }
  | Corrupt_rejected of { from : string; what : string; reason : string }

let pp_event ppf = function
  | Delivered { interest; from; value } ->
      Format.fprintf ppf "delivered %s from %s: %s" interest from
        (Value.type_name value)
  | Rejected { type_name; from; reason } ->
      Format.fprintf ppf "rejected %s from %s: %s" type_name from reason
  | Decode_failed { from; reason } ->
      Format.fprintf ppf "decode failed (from %s): %s" from reason
  | Load_failed { assembly; reason } ->
      Format.fprintf ppf "load of %s failed: %s" assembly reason
  | Corrupt_rejected { from; what; reason } ->
      Format.fprintf ppf "corrupt %s rejected (from %s): %s" what from reason

type remote_ref = { rr_host : string; rr_id : int; rr_class : string }

(* Per-outcome event counters surfaced through the metrics registry. *)
type event_counters = {
  mc_delivered : Metrics.counter;
  mc_rejected : Metrics.counter;
  mc_decode_failed : Metrics.counter;
  mc_load_failed : Metrics.counter;
  mc_fetch_attempts : Metrics.counter;
  mc_fetch_retries : Metrics.counter;
  mc_fetch_failovers : Metrics.counter;
  mc_corrupt_rejects : Metrics.counter;
}

(* Wire-efficiency accounting: negotiated type handles and envelope
   batching (see HACKING, "Wire efficiency"). *)
type wire_counters = {
  mc_handle_hits : Metrics.counter;  (* refs shipped instead of entries *)
  mc_handle_misses : Metrics.counter;  (* first-use binds shipped *)
  mc_renegotiations : Metrics.counter;  (* NAKs sent for unknown handles *)
  mc_batch_messages : Metrics.counter;
  mc_batch_envelopes : Metrics.counter;
  mc_batch_bytes_saved : Metrics.counter;
}

(* An envelope whose handle refs could not be resolved waits here while
   the sender re-binds them; it is reprocessed on [Handle_bind], and
   dropped (with a [Decode_failed]) if the renegotiation times out or
   the retry budget runs dry. Correctness never depends on the handle
   optimisation: the full-entry path is always available. *)
type parked = {
  pk_envelope : string;
  pk_tdescs : string list;
  pk_assemblies : string list;
  pk_retries : int;  (* remaining renegotiation attempts *)
  mutable pk_cancel : unit -> unit;
}

(* Same-destination object sends coalescing within one simulator
   instant; flushed by a delay-0 event (which the simulator orders after
   all sends already queued at this instant) or as soon as the byte
   budget fills. *)
type batch_buf = {
  mutable bb_parts : Bf.part list;  (* reversed *)
  mutable bb_standalone : int;  (* what the parts would cost as Obj_msg *)
  mutable bb_bytes : int;  (* accumulated part payload bytes *)
  mutable bb_scheduled : bool;
}

(* The flyweight: every piece of peer state that is intrinsically about
   *types and code*, not about one endpoint's conversations. A classic
   peer owns a private block (bit-identical to the historical layout);
   the scale driver allocates ONE block and threads it through millions
   of lightweight sessions, so the registry, the served-assembly
   repository, the tdesc cache, the checker's verdict cache and the
   receiver handle-table pool are paid for once per process, not once
   per session. Everything conversational (interests, pending
   continuations, event log, batches) stays per-[t]. *)
(* One shard of the flyweight block: the caches whose eviction and
   contention behavior are per-destination. [create_shared ~shards:k]
   builds [k] of these; a peer binds at construction to the slot
   selected by FNV-1a of its own (destination) address, so every
   session talking *to* one destination shares that destination's
   verdicts and descriptions, while hot destinations in different
   shards cannot evict each other's entries — and domains serving
   disjoint shards never touch the same mutable cache. With the
   default [shards = 1] every peer binds slot 0 and the block behaves
   bit-identically to the historical unsharded layout. *)
type slot = {
  sl_tdesc_cache : Td.t Lru.Str.t;
  sl_checker : Checker.t;
  sl_known_paths : string Lru.Str.t;  (* assembly name -> path *)
  sl_px : Proxy.context;
  (* Newest version cached under a [name@vN] tdesc-cache key, by
     lowercased qualified type name: the checker's resolver falls back to
     it when the bare name has no binding, so nested (e.g. recursive)
     type references inside a version-pinned envelope still resolve. *)
  sl_desc_versions : (string, int) Hashtbl.t;
  (* Recycled receiver handle tables: a departing session's per-link
     tables are cleared and parked here; the next arriving session draws
     from the pool instead of allocating. FIFO, so recycling order is a
     pure function of departure order (determinism audit). *)
  sl_ht_pool : Ht.receiver Queue.t;
}

type shared = {
  (* Registry, repository and the loaded-version ledger stay
     block-global: they hold the code itself (one GUID -> one class,
     whatever shard asked), are read-mostly in steady state, and code
     loading is documented as a single-domain operation (see HACKING,
     "Sharding and domain safety"). *)
  sh_reg : Registry.t;
  sh_repo : Repository.t;
  (* Highest assembly version loaded as live code, by lowercased assembly
     name: decides whether a fetched revision upgrades the live bindings
     or is shadow-registered (GUID-only) for in-flight old envelopes. *)
  sh_loaded_versions : (string, int) Hashtbl.t;
  sh_ht_capacity : int;
  sh_slots : slot array;  (* length = shard count, always >= 1 *)
}

type t = {
  addr : string;
  tr : Message.t Transport.t;
  (* Filled right after construction (the endpoint handler closes over
     [t]); always [Some] once [create] returns. *)
  mutable ep : Message.t Transport.endpoint option;
  sh : shared;
  (* The shard this address hashes to, bound once at construction: the
     hot path never recomputes the hash. *)
  sl : slot;
  peer_mode : mode;
  codec : Envelope.codec;
  mutable interests :
    (int * string * (from:string -> Value.value -> unit)) list;
  mutable next_interest : int;
  mutable default_sink : (from:string -> Value.value -> unit) option;
  exported : (int, Value.value) Hashtbl.t;
  mutable next_export : int;
  mutable next_token : int;
  (* Continuation, timeout-cancel thunk, remaining corrupt-reply
     re-requests for this pending subprotocol exchange. Description
     requests also remember the chain version they were pinned to (0 =
     latest) so a corrupt-reply re-request re-asks for the same
     revision. *)
  tdesc_conts :
    (int, (Td.t option -> unit) * (unit -> unit) * (int * int)) Hashtbl.t;
  asm_conts :
    (int, (Assembly.t option -> unit) * (unit -> unit) * int) Hashtbl.t;
  invoke_conts : (int, (Value.value, string) result -> unit) Hashtbl.t;
  (* In-flight fetch dedup: concurrent requests for the same type
     description (keyed host|name) or assembly (keyed by name) join the
     outstanding exchange instead of issuing their own. Without this a
     batch of same-type envelopes arriving in one tick fans out into one
     probe + one code download *per envelope*. *)
  tdesc_inflight : (string, (Td.t option -> unit) list ref) Hashtbl.t;
  asm_inflight :
    (string, ((string * Assembly.t) option -> unit) list ref) Hashtbl.t;
  (* Regression flag: [false] reintroduces the fan-out bug the guards
     above fixed, for the model checker's known-bug test. *)
  share_inflight : bool;
  event_log : event Ring.t;
  metrics : Metrics.t;
  evt_ctrs : event_counters;
  request_timeout_ms : float;
  fetch_retries : int;  (* extra attempts per download path *)
  fetch_backoff_ms : float;  (* base of the exponential retry backoff *)
  (* Cluster hooks: ranked alternative download paths for an assembly,
     and the recipient of Gossip messages. The core peer stays ignorant
     of membership and replication — pti_cluster installs both. *)
  mutable mirror_provider :
    (assembly:string -> advertised:string -> string list) option;
  mutable gossip_handler :
    (src:string -> kind:string -> body:string -> unit) option;
  (* Wire-efficiency layer. Sending handle-encoded envelopes and batches
     is opt-in per peer; receiving either is unconditional, so a link
     between a negotiating sender and a classic receiver still works
     (XML full envelopes remain the interop fallback). *)
  handles : bool;
  batch_bytes : int option;
  tdesc_binary : bool;
  h_send : (string, Ht.sender) Hashtbl.t;  (* dst -> assigned handles *)
  h_recv : (string, Ht.receiver) Hashtbl.t;  (* src -> learned bindings *)
  parked : (string, parked list ref) Hashtbl.t;  (* src -> waiting *)
  batches : (string, batch_buf) Hashtbl.t;  (* dst -> open batch *)
  mutable piggyback_provider : (dst:string -> (string * string) list) option;
  wire_ctrs : wire_counters;
}

let address t = t.addr
let registry t = t.sh.sh_reg
let checker t = t.sl.sl_checker
let proxy_context t = t.sl.sl_px
let mode t = t.peer_mode
let transport t = t.tr
let now_ms t = Transport.now_ms t.tr

let net t =
  match Transport.sim_net t.tr with
  | Some n -> n
  | None ->
      invalid_arg
        "Peer.net: peer runs on a socket transport, not the simulated network"

let endpoint t =
  match t.ep with Some e -> e | None -> assert false

let schedule_timer t ~info ~delay_ms f =
  Transport.timer t.tr ~owner:t.addr ~info ~delay_ms f

let metrics t = t.metrics
let events t = Ring.to_list t.event_log
let clear_events t = Ring.clear t.event_log
let events_dropped t = Ring.dropped t.event_log
let tdesc_cache_size t = Lru.Str.length t.sl.sl_tdesc_cache
let tdesc_cache_counters t = Lru.Str.counters t.sl.sl_tdesc_cache
let exported_count t = Hashtbl.length t.exported
let repository t = t.sh.sh_repo
let fetch_attempts t = Metrics.counter_value t.evt_ctrs.mc_fetch_attempts
let fetch_retries t = Metrics.counter_value t.evt_ctrs.mc_fetch_retries
let fetch_failovers t = Metrics.counter_value t.evt_ctrs.mc_fetch_failovers
let corrupt_rejects t = Metrics.counter_value t.evt_ctrs.mc_corrupt_rejects
let handle_hits t = Metrics.counter_value t.wire_ctrs.mc_handle_hits
let handle_misses t = Metrics.counter_value t.wire_ctrs.mc_handle_misses
let renegotiations t = Metrics.counter_value t.wire_ctrs.mc_renegotiations
let batch_messages t = Metrics.counter_value t.wire_ctrs.mc_batch_messages
let batch_envelopes t = Metrics.counter_value t.wire_ctrs.mc_batch_envelopes

let batch_bytes_saved t =
  Metrics.counter_value t.wire_ctrs.mc_batch_bytes_saved

let drop_handle_tables t =
  (* Receiver side only: forgetting learned bindings exercises the NAK /
     re-bind path (the chaos harness uses this), while the sender keeps
     its assignments so re-binds reuse the same numbers. *)
  Hashtbl.iter (fun _ r -> Ht.clear_receiver r) t.h_recv

let release_handle_tables t =
  (* Session teardown: cleared receiver tables go back to the shared
     pool for the next arrival. Returned in sorted-correspondent order —
     pool contents must be a pure function of departure order, never of
     hash-bucket layout (same-seed runs hash-compare traces). *)
  Hashtbl.fold (fun src _ acc -> src :: acc) t.h_recv []
  |> List.sort String.compare
  |> List.iter (fun src ->
         match Hashtbl.find_opt t.h_recv src with
         | Some r ->
             Ht.clear_receiver r;
             Queue.add r t.sl.sl_ht_pool
         | None -> ());
  Hashtbl.reset t.h_recv;
  Hashtbl.reset t.h_send

let run t = Transport.run t.tr

let log_event t e =
  Log.debug (fun m -> m "[%s] %a" t.addr pp_event e);
  Ring.push t.event_log e;
  Metrics.incr
    (match e with
    | Delivered _ -> t.evt_ctrs.mc_delivered
    | Rejected _ -> t.evt_ctrs.mc_rejected
    | Decode_failed _ -> t.evt_ctrs.mc_decode_failed
    | Load_failed _ -> t.evt_ctrs.mc_load_failed
    | Corrupt_rejected _ -> t.evt_ctrs.mc_corrupt_rejects)

let lc = String.lowercase_ascii

(* Description lookup: local code first, then the description cache. *)
let local_desc t name =
  match Registry.find t.sh.sh_reg name with
  | Some cd -> Some (Td.of_class cd)
  | None -> Lru.Str.find t.sl.sl_tdesc_cache (lc name)

let cache_desc ?(version = 0) t d =
  if version > 0 then begin
    (* Version-pinned entry, keyed [name@vN]: it never shadows (or
       overturns) an existing bare-name binding. But when the bare name
       has NO binding, the checker's resolver serves the newest
       versioned entry instead — so becoming that newest entry is new
       knowledge, and verdicts that failed on the missing name must be
       re-derived (the GUID witness keeps any verdict that already
       resolved this very description). *)
    let nm = lc (Td.qualified_name d) in
    let key = Printf.sprintf "%s@v%d" nm version in
    if not (Lru.Str.mem t.sl.sl_tdesc_cache key) then begin
      Lru.Str.put t.sl.sl_tdesc_cache key d;
      let newest =
        match Hashtbl.find_opt t.sl.sl_desc_versions nm with
        | Some v -> version > v
        | None -> true
      in
      if newest then begin
        Hashtbl.replace t.sl.sl_desc_versions nm version;
        if not (Lru.Str.mem t.sl.sl_tdesc_cache nm) then
          ignore
            (Checker.note_new_type ~witness:d.Td.ty_guid t.sl.sl_checker
               (Td.qualified_name d))
      end
    end
  end
  else begin
    let key = lc (Td.qualified_name d) in
    if not (Lru.Str.mem t.sl.sl_tdesc_cache key) then begin
      Lru.Str.put t.sl.sl_tdesc_cache key d;
      (* New knowledge can overturn verdicts that failed on this missing
         type — and only those. The GUID witness additionally keeps any
         verdict that already resolved this very description. *)
      ignore
        (Checker.note_new_type ~witness:d.Td.ty_guid t.sl.sl_checker
           (Td.qualified_name d))
    end
  end

(* Qualified names a description refers to — what else we may need. *)
let refs_of_desc (d : Td.t) =
  let tys = ref [] in
  let add ty = tys := Ty.named_roots ty @ !tys in
  Option.iter (fun s -> tys := s :: !tys) d.Td.ty_super;
  tys := d.Td.ty_interfaces @ !tys;
  List.iter (fun f -> add f.Td.fd_ty) d.Td.ty_fields;
  List.iter
    (fun (m : Td.method_desc) ->
      add m.Td.md_return;
      List.iter (fun p -> add p.Td.pd_ty) m.Td.md_params)
    d.Td.ty_methods;
  List.iter
    (fun (c : Td.ctor_desc) ->
      List.iter (fun p -> add p.Td.pd_ty) c.Td.cd_params)
    d.Td.ty_ctors;
  List.sort_uniq S.compare_ci !tys

let fresh_token t =
  let k = t.next_token in
  t.next_token <- k + 1;
  k

let send t ~dst msg =
  Log.debug (fun m -> m "[%s] -> %s: %s" t.addr dst (Message.describe msg));
  (* [Message.describe] includes subprotocol tokens, so concurrently
     pending deliveries get distinguishable event labels — the model
     checker's sleep sets identify events by label. *)
  Transport.send (endpoint t) ~info:(Message.describe msg) ~dst
    ~category:(Message.category msg) ~size:(Message.size msg) msg

(* ---------------------------------------------------------------- *)
(* Asynchronous fetch plumbing                                        *)
(* ---------------------------------------------------------------- *)

(* Subprotocol requests carry a timeout: if the reply never arrives (lost
   on an unreliable lossy link, or the peer is gone), the continuation
   fires with [None] so the reception pipeline degrades to a rejection
   instead of stalling forever. *)
let default_request_timeout_ms = 10_000.

let arm_timeout t conts token =
  let cancel =
    Transport.timer_cancellable t.tr ~owner:t.addr
      ~info:(Printf.sprintf "request-timeout#%d" token)
      ~delay_ms:t.request_timeout_ms
      (fun () ->
        match Hashtbl.find_opt conts token with
        | None -> ()
        | Some (k, _, _) ->
            Hashtbl.remove conts token;
            k None)
  in
  (* Fill in the cancel thunk next to the continuation. *)
  match Hashtbl.find_opt conts token with
  | Some (k, _, retries) -> Hashtbl.replace conts token (k, cancel, retries)
  | None -> ()

(* [retries] is the corrupt-reply budget: a reply that arrives but fails
   to parse is treated as wire damage and re-requested that many times
   before the continuation degrades to [None]. Fresh requests start from
   the peer's [fetch_retries] knob. *)
let request_tdesc ?retries ?(version = 0) t ~from name k =
  let token = fresh_token t in
  let retries = Option.value ~default:t.fetch_retries retries in
  Hashtbl.replace t.tdesc_conts token (k, (fun () -> ()), (retries, version));
  arm_timeout t t.tdesc_conts token;
  send t ~dst:from
    (Message.Tdesc_request
       { type_name = name; token; binary_ok = t.tdesc_binary; version })

(* Like [request_tdesc], but concurrent requests for the same name from
   the same host share one wire exchange: later callers just enqueue
   their continuation on the outstanding one. The inflight entry stays
   until the (possibly retried) exchange resolves, so corrupt-reply
   re-requests keep absorbing new callers too. *)
let request_tdesc_shared ?(version = 0) t ~from name k =
  if not t.share_inflight then request_tdesc ~version t ~from name k
  else
  let key =
    from ^ "|" ^ lc name
    ^ if version > 0 then Printf.sprintf "@v%d" version else ""
  in
  match Hashtbl.find_opt t.tdesc_inflight key with
  | Some waiters -> waiters := k :: !waiters
  | None ->
      let waiters = ref [ k ] in
      Hashtbl.add t.tdesc_inflight key waiters;
      request_tdesc ~version t ~from name (fun resp ->
          Hashtbl.remove t.tdesc_inflight key;
          List.iter (fun k -> k resp) (List.rev !waiters))

let request_assembly t ~host ~path k =
  let token = fresh_token t in
  Hashtbl.replace t.asm_conts token (k, (fun () -> ()), 0);
  arm_timeout t t.asm_conts token;
  send t ~dst:host (Message.Asm_request { path; token })

(* Fetch the transitive closure of descriptions for [names] from [from],
   then continue with [k]. Names already resolvable locally are free.
   [pins] (keyed by lowercased name) pins a name to the chain version and
   GUID its envelope entry declared: a pinned name only resolves locally
   to that exact description, and is otherwise fetched version-pinned, so
   a concurrent upgrade can never substitute a different revision. *)
let ensure_descs ?(pins = []) t ~from names k =
  let outstanding = ref 0 in
  let visited = Hashtbl.create 16 in
  let finished = ref false in
  let pin_of key = List.assoc_opt key pins in
  let local key name =
    match pin_of key with
    | Some (v, guid) when v > 0 -> (
        match Registry.find_by_guid t.sh.sh_reg guid with
        | Some cd -> Some (Td.of_class cd)
        | None -> (
            match
              Lru.Str.find t.sl.sl_tdesc_cache (Printf.sprintf "%s@v%d" key v)
            with
            | Some d -> Some d
            | None -> (
                (* A bare cached description still satisfies the pin when
                   it is the pinned revision. *)
                match local_desc t name with
                | Some d when Pti_util.Guid.equal d.Td.ty_guid guid -> Some d
                | _ -> None)))
    | _ -> local_desc t name
  in
  let rec need name =
    let key = lc name in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      match local key name with
      | Some d -> List.iter need (refs_of_desc d)
      | None ->
          incr outstanding;
          let version = match pin_of key with Some (v, _) -> v | None -> 0 in
          request_tdesc_shared ~version t ~from name (fun resp ->
              (match resp with
              | Some d ->
                  cache_desc ~version t d;
                  List.iter need (refs_of_desc d)
              | None -> ());
              decr outstanding;
              check_done ())
    end
  and check_done () =
    if !outstanding = 0 && not !finished then begin
      finished := true;
      k ()
    end
  in
  List.iter need names;
  check_done ()

(* Candidate download paths for an assembly: the cluster's mirror
   provider when installed (it ranks by liveness and observed latency,
   and positions the advertised path per policy), else just the
   advertised path. Order-preserving dedup; the advertised path is
   always a candidate of last resort. *)
let fetch_candidates t ~asm_name ~advertised =
  let raw =
    match t.mirror_provider with
    | None -> [ advertised ]
    | Some provider ->
        let ranked = provider ~assembly:asm_name ~advertised in
        if List.exists (String.equal advertised) ranked then ranked
        else ranked @ [ advertised ]
  in
  let seen = Hashtbl.create 4 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p then false
      else begin
        Hashtbl.add seen p ();
        true
      end)
    raw

(* One assembly through the failover pipeline: try each candidate path
   in turn, retrying a candidate [fetch_retries] times under exponential
   backoff before failing over to the next. [k] gets the source path
   alongside the assembly so the caller can remember where the bytes
   actually came from. *)
let fetch_assembly_uncached t ~asm_name ~advertised k =
  let candidates = fetch_candidates t ~asm_name ~advertised in
      let rec try_candidate ~first = function
        | [] -> k None
        | path :: rest ->
            if not first then Metrics.incr t.evt_ctrs.mc_fetch_failovers;
            let host =
              match Repository.parse_path path with
              | Some (host, _) -> host
              | None -> (* malformed path: the sender-side convention *) t.addr
            in
            let rec attempt n =
              Metrics.incr t.evt_ctrs.mc_fetch_attempts;
              request_assembly t ~host ~path (function
                | Some asm ->
                    Lru.Str.put t.sl.sl_known_paths (lc asm_name) path;
                    k (Some (path, asm))
                | None ->
                    if n < t.fetch_retries then begin
                      Metrics.incr t.evt_ctrs.mc_fetch_retries;
                      let delay =
                        t.fetch_backoff_ms *. (2. ** float_of_int n)
                      in
                      Transport.timer t.tr ~owner:t.addr
                        ~info:("fetch-backoff " ^ asm_name) ~delay_ms:delay
                        (fun () -> attempt (n + 1))
                    end
                    else try_candidate ~first:false rest)
            in
            attempt 0
      in
      try_candidate ~first:true candidates

(* The failover pipeline behind an in-flight guard: a local mirror copy
   short-circuits the network entirely, and concurrent fetches of the
   same assembly share one download. A versioned advertised path pins
   both the local short-circuit and the in-flight dedup to that chain
   revision — a concurrent fetch of a different revision is a different
   download. *)
let fetch_assembly_failover t ~asm_name ~advertised k =
  let pin =
    match Repository.parse_versioned_path advertised with
    | Some (_, _, Some v) -> Some v
    | _ -> None
  in
  let local =
    match pin with
    | Some v -> (
        match
          Repository.resolve t.sh.sh_repo ~pin:(Repository.Version v) asm_name
        with
        | Some ve -> Some (ve.Repository.ve_path, ve.Repository.ve_assembly)
        | None -> None)
    | None -> Repository.find_by_name t.sh.sh_repo asm_name
  in
  match local with
  | Some (path, asm) -> k (Some (path, asm))
  | None when not t.share_inflight ->
      fetch_assembly_uncached t ~asm_name ~advertised k
  | None -> (
      let key =
        lc asm_name
        ^ match pin with Some v -> Printf.sprintf "@v%d" v | None -> ""
      in
      match Hashtbl.find_opt t.asm_inflight key with
      | Some waiters -> waiters := k :: !waiters
      | None ->
          let waiters = ref [ k ] in
          Hashtbl.add t.asm_inflight key waiters;
          fetch_assembly_uncached t ~asm_name ~advertised (fun resp ->
              Hashtbl.remove t.asm_inflight key;
              List.iter (fun k -> k resp) (List.rev !waiters)))

exception Load_error of string * string  (* assembly, reason *)

(* Promote an assembly to the live revision: names rebind, old GUIDs stay
   reachable, and the checker drops exactly the verdicts bound to the
   superseded definitions (same-witness verdicts survive). *)
let upgrade_assembly_local t asm =
  Assembly.upgrade t.sh.sh_reg asm;
  List.iter
    (fun cd ->
      ignore
        (Checker.note_new_type ~witness:cd.Meta.td_guid t.sl.sl_checker
           (Meta.qualified_name cd)))
    asm.Assembly.asm_classes

(* Version-aware code loading. A first load (or a same-version reload)
   registers classically; a strictly newer revision of an assembly we
   already run upgrades the live bindings; a strictly older one is
   shadow-registered — its GUIDs resolve for in-flight old envelopes,
   but the names keep pointing at the newer live revision. *)
let load_assembly t asm =
  let key = lc asm.Assembly.asm_name in
  let v = asm.Assembly.asm_version in
  try
    match Hashtbl.find_opt t.sh.sh_loaded_versions key with
    | None ->
        Assembly.load t.sh.sh_reg asm;
        Hashtbl.replace t.sh.sh_loaded_versions key v
    | Some prev when v > prev ->
        upgrade_assembly_local t asm;
        Hashtbl.replace t.sh.sh_loaded_versions key v
    | Some prev when v < prev -> Assembly.shadow t.sh.sh_reg asm
    | Some _ -> Assembly.load t.sh.sh_reg asm
  with Registry.Duplicate name ->
    raise
      (Load_error
         ( asm.Assembly.asm_name,
           Printf.sprintf "type %s collides with an existing definition" name
         ))

(* Download and load every assembly needed by the envelope's type entries
   whose GUIDs are not yet loaded. [k] receives [Ok ()] or a reason. *)
let ensure_assemblies t (env : Envelope.t) k =
  (* Remember advertised download paths. *)
  List.iter
    (fun (e : Envelope.type_entry) ->
      Lru.Str.put t.sl.sl_known_paths (lc e.Envelope.te_assembly)
        e.Envelope.te_download_path)
    env.Envelope.env_types;
  let needed =
    env.Envelope.env_types
    |> List.filter (fun (e : Envelope.type_entry) ->
           not (Registry.mem_guid t.sh.sh_reg e.Envelope.te_guid))
    |> List.map (fun (e : Envelope.type_entry) ->
           (e.Envelope.te_assembly, e.Envelope.te_download_path))
    |> List.sort_uniq compare
  in
  let outstanding = ref 0 in
  let failed = ref None in
  let finished = ref false in
  let check_done () =
    if !outstanding = 0 && not !finished then begin
      finished := true;
      match !failed with None -> k (Ok ()) | Some reason -> k (Error reason)
    end
  in
  let fetch (asm_name, path) =
    incr outstanding;
    fetch_assembly_failover t ~asm_name ~advertised:path (fun resp ->
        (match resp with
        | Some (_, asm) -> (
            try load_assembly t asm with
            | Load_error (a, reason) ->
                log_event t (Load_failed { assembly = a; reason });
                if !failed = None then failed := Some reason
            | Invalid_argument reason ->
                log_event t (Load_failed { assembly = asm_name; reason });
                if !failed = None then failed := Some reason)
        | None ->
            let reason =
              Printf.sprintf "assembly %s not available at %s" asm_name path
            in
            log_event t (Load_failed { assembly = asm_name; reason });
            if !failed = None then failed := Some reason);
        decr outstanding;
        check_done ())
  in
  List.iter fetch needed;
  check_done ()

(* ---------------------------------------------------------------- *)
(* Pass-by-value reception (Figure 1)                                 *)
(* ---------------------------------------------------------------- *)

let deliver_primitive t ~from value =
  match t.default_sink with
  | Some sink -> sink ~from value
  | None ->
      log_event t
        (Delivered { interest = "(sink)"; from; value })

(* Which interests accept the root type, and with what mapping? *)
let matching_interests t (root : Td.t) =
  List.filter_map
    (fun (_, interest, cb) ->
      match local_desc t interest with
      | None -> None
      | Some interest_d -> (
          match Checker.check t.sl.sl_checker ~actual:root ~interest:interest_d with
          | Checker.Conformant m -> Some (interest, cb, m)
          | Checker.Not_conformant _ -> None))
    t.interests

let first_failure t (root : Td.t) =
  (* For the rejection log: report the first interest's failure detail. *)
  match t.interests with
  | [] -> "no registered interest"
  | (_, interest, _) :: _ -> (
      match local_desc t interest with
      | None -> Printf.sprintf "interest %s not loaded locally" interest
      | Some interest_d -> (
          match Checker.check t.sl.sl_checker ~actual:root ~interest:interest_d with
          | Checker.Conformant _ -> "conformant (race)"
          | Checker.Not_conformant [] -> "not conformant"
          | Checker.Not_conformant (f :: _) -> f.Checker.message))

(* Root description pinned to the sender's actual revision: the envelope
   entry names the GUID the sender serialized against, so conformance is
   judged against that description — not whatever the bare name happens
   to resolve to after a local upgrade raced the delivery. *)
let env_desc t (env : Envelope.t) name =
  match
    List.find_opt
      (fun (e : Envelope.type_entry) -> S.equal_ci e.Envelope.te_name name)
      env.Envelope.env_types
  with
  | None -> local_desc t name
  | Some e -> (
      match Registry.find_by_guid t.sh.sh_reg e.Envelope.te_guid with
      | Some cd -> Some (Td.of_class cd)
      | None -> (
          let versioned =
            if e.Envelope.te_version > 0 then
              Lru.Str.find t.sl.sl_tdesc_cache
                (Printf.sprintf "%s@v%d" (lc name) e.Envelope.te_version)
            else None
          in
          match versioned with Some d -> Some d | None -> local_desc t name))

let decode_and_deliver t ~from (env : Envelope.t) root_name =
  match Envelope.decode_payload t.sh.sh_reg env with
  | Error (Envelope.Corrupt reason) ->
      log_event t (Corrupt_rejected { from; what = "payload"; reason })
  | Error e ->
      log_event t
        (Decode_failed { from; reason = Format.asprintf "%a" Envelope.pp_error e })
  | Ok value -> (
      match env_desc t env root_name with
      | None ->
          log_event t
            (Decode_failed
               { from; reason = "root type vanished after decode" })
      | Some root ->
          let matches = matching_interests t root in
          if matches = [] then
            log_event t
              (Rejected
                 { type_name = root_name; from; reason = first_failure t root })
          else
            List.iter
              (fun (interest, cb, m) ->
                let delivered =
                  if m.Mapping.identity then value
                  else Proxy.wrap t.sl.sl_px ~interest ~mapping:m value
                in
                log_event t (Delivered { interest; from; value = delivered });
                cb ~from delivered)
              matches)

(* Per-link handle tables, created lazily per correspondent. *)
let sender_table t dst =
  match Hashtbl.find_opt t.h_send dst with
  | Some s -> s
  | None ->
      let s = Ht.create_sender () in
      Hashtbl.add t.h_send dst s;
      s

let recv_table t src =
  match Hashtbl.find_opt t.h_recv src with
  | Some r -> r
  | None ->
      (* Pool first: all tables in a shared block have the same capacity,
         so a recycled one is interchangeable with a fresh one. *)
      let r =
        match Queue.take_opt t.sl.sl_ht_pool with
        | Some r -> r
        | None -> Ht.create_receiver ~capacity:t.sh.sh_ht_capacity
      in
      Hashtbl.add t.h_recv src r;
      r

(* Hold an envelope with unresolved handle refs until the sender's
   [Handle_bind] arrives; a timed-out renegotiation surfaces as a
   [Decode_failed], never a silent drop. *)
let park_envelope t ~from ~budget msg_env tdescs assemblies =
  let lst =
    match Hashtbl.find_opt t.parked from with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.parked from r;
        r
  in
  let pk =
    {
      pk_envelope = msg_env;
      pk_tdescs = tdescs;
      pk_assemblies = assemblies;
      pk_retries = budget - 1;
      pk_cancel = (fun () -> ());
    }
  in
  pk.pk_cancel <-
    Transport.timer_cancellable t.tr ~owner:t.addr
      ~info:("renego-timeout " ^ from) ~delay_ms:t.request_timeout_ms
      (fun () ->
        if List.memq pk !lst then begin
          lst := List.filter (fun p -> p != pk) !lst;
          log_event t
            (Decode_failed { from; reason = "handle renegotiation timed out" })
        end);
  lst := pk :: !lst

let process_envelope t ~from (env : Envelope.t) tdescs assemblies =
  (
      (* Eager extras: load whatever was shipped inline. *)
      List.iter
        (fun s -> match Td.of_wire_string s with
          | Ok d -> cache_desc t d
          | Error _ -> ())
        tdescs;
      List.iter
        (fun s ->
          match Assembly_xml.of_string s with
          | Ok asm -> (
              try load_assembly t asm with
              | Load_error (a, reason) ->
                  log_event t (Load_failed { assembly = a; reason })
              | Invalid_argument reason ->
                  log_event t (Load_failed { assembly = "?"; reason }))
          | Error reason -> log_event t (Load_failed { assembly = "?"; reason }))
        assemblies;
      match env.Envelope.env_types with
      | [] -> (
          (* No objects in the graph: nothing to conform, just decode. *)
          match Envelope.decode_payload t.sh.sh_reg env with
          | Ok v -> deliver_primitive t ~from v
          | Error (Envelope.Corrupt reason) ->
              log_event t (Corrupt_rejected { from; what = "payload"; reason })
          | Error e ->
              log_event t
                (Decode_failed
                   { from; reason = Format.asprintf "%a" Envelope.pp_error e }))
      | root_entry :: _ ->
          let root_name = root_entry.Envelope.te_name in
          let all_names =
            List.map (fun (e : Envelope.type_entry) -> e.Envelope.te_name)
              env.Envelope.env_types
          in
          let all_known_by_guid =
            List.for_all
              (fun (e : Envelope.type_entry) ->
                Registry.mem_guid t.sh.sh_reg e.Envelope.te_guid)
              env.Envelope.env_types
          in
          if all_known_by_guid then
            (* Optimistic fast path: everything already loaded. *)
            decode_and_deliver t ~from env root_name
          else
            (* Step 2-3: pull type information, check the rules. Entries
               stamped with a chain version pin the fetch to that exact
               revision. *)
            let pins =
              List.filter_map
                (fun (e : Envelope.type_entry) ->
                  if e.Envelope.te_version > 0 then
                    Some
                      ( lc e.Envelope.te_name,
                        (e.Envelope.te_version, e.Envelope.te_guid) )
                  else None)
                env.Envelope.env_types
            in
            ensure_descs ~pins t ~from all_names (fun () ->
                match env_desc t env root_name with
                | None ->
                    log_event t
                      (Rejected
                         {
                           type_name = root_name;
                           from;
                           reason = "type description unavailable";
                         })
                | Some root ->
                    let matches = matching_interests t root in
                    if matches = [] then
                      log_event t
                        (Rejected
                           {
                             type_name = root_name;
                             from;
                             reason = first_failure t root;
                           })
                    else
                      (* Step 4-5: conformant — download the code. *)
                      ensure_assemblies t env (function
                        | Ok () -> decode_and_deliver t ~from env root_name
                        | Error reason ->
                            log_event t (Decode_failed { from; reason }))))

(* Parse an incoming object envelope — classic or handle-encoded — and
   run it through the reception pipeline. Unknown handles are NAKed and
   the envelope parked; [renego_budget] bounds how many rounds of
   renegotiation one envelope may trigger. *)
let handle_envelope ?renego_budget t ~from (msg_env : string) tdescs
    assemblies =
  let budget =
    match renego_budget with Some b -> b | None -> t.fetch_retries + 1
  in
  let rtab = recv_table t from in
  match Envelope.of_string_h ~resolve:(fun h -> Ht.resolve rtab h) msg_env with
  | Error (Envelope.Corrupt reason) ->
      (* The digest caught wire damage before any value was built. There
         is no resend protocol for object messages at this layer —
         frame-level integrity + ARQ (Net.set_integrity) is what turns
         this into a retransmission. *)
      log_event t (Corrupt_rejected { from; what = "envelope"; reason })
  | Error (Envelope.Unknown_handles handles) ->
      if budget <= 0 then
        log_event t
          (Decode_failed
             { from; reason = "handle renegotiation budget exhausted" })
      else begin
        (* Wire-intact but the link table has drifted (cold start,
           eviction, corruption-induced drop): ask the sender to re-bind
           and hold the envelope. Degraded, never mis-typed. *)
        park_envelope t ~from ~budget msg_env tdescs assemblies;
        Metrics.incr t.wire_ctrs.mc_renegotiations;
        send t ~dst:from (Message.Handle_nak { handles })
      end
  | Error e ->
      log_event t
        (Decode_failed { from; reason = Format.asprintf "%a" Envelope.pp_error e })
  | Ok (env, bindings) ->
      List.iter (fun (h, e) -> Ht.install rtab h e) bindings;
      process_envelope t ~from env tdescs assemblies

(* ---------------------------------------------------------------- *)
(* Remote invocation (pass-by-reference)                              *)
(* ---------------------------------------------------------------- *)

let download_path t ~assembly =
  match Lru.Str.find t.sl.sl_known_paths (lc assembly) with
  | Some p -> p
  | None -> Repository.path_for ~host:t.addr ~assembly

(* Chain version stamped into outgoing type entries: the published head
   for assemblies on this repository's version chain, 0 (absent on the
   wire) for everything else — so pre-evolution traffic is unchanged. *)
let assembly_version t ~assembly =
  match Repository.resolve t.sh.sh_repo assembly with
  | Some ve -> ve.Repository.ve_version
  | None -> 0

let make_args_envelope t args =
  Envelope.make t.sh.sh_reg ~codec:t.codec
    ~version_of:(fun ~assembly -> assembly_version t ~assembly)
    ~download_path:(fun ~assembly -> download_path t ~assembly)
    (Value.Varr { Value.elem_ty = Ty.Named "object"; items = Array.of_list args })

(* Receive a value envelope outside the interest pipeline (invocation
   arguments and results): fetch missing assemblies, decode, continue. *)
let receive_value_envelope t ~from:_ env k =
  ensure_assemblies t env (function
    | Error reason -> k (Error reason)
    | Ok () -> (
        match Envelope.decode_payload t.sh.sh_reg env with
        | Ok v -> k (Ok v)
        | Error e -> k (Error (Format.asprintf "%a" Envelope.pp_error e))))

let handle_invoke t ~from ~target ~meth ~args_xml ~token =
  let reply result error =
    send t ~dst:from (Message.Invoke_reply { token; result; error })
  in
  match Hashtbl.find_opt t.exported target with
  | None -> reply None (Some (Printf.sprintf "no exported object %d" target))
  | Some recv -> (
      match Envelope.of_string args_xml with
      | Error e -> reply None (Some (Format.asprintf "%a" Envelope.pp_error e))
      | Ok env ->
          receive_value_envelope t ~from env (function
            | Error reason -> reply None (Some reason)
            | Ok (Value.Varr a) -> (
                let args = Array.to_list a.Value.items in
                match Eval.call t.sh.sh_reg recv meth args with
                | result ->
                    let renv =
                      Envelope.make t.sh.sh_reg ~codec:t.codec
                        ~version_of:(fun ~assembly ->
                          assembly_version t ~assembly)
                        ~download_path:(fun ~assembly ->
                          download_path t ~assembly)
                        result
                    in
                    reply (Some (Envelope.to_string renv)) None
                | exception Eval.Runtime_error msg -> reply None (Some msg))
            | Ok _ -> reply None (Some "malformed argument payload")))

(* ---------------------------------------------------------------- *)
(* Network handler                                                    *)
(* ---------------------------------------------------------------- *)

let handle t ~src msg =
  Log.debug (fun m -> m "[%s] <- %s: %s" t.addr src (Message.describe msg));
  match msg with
  | Message.Obj_msg { envelope; tdescs; assemblies } ->
      handle_envelope t ~from:src envelope tdescs assemblies
  | Message.Obj_batch { frame } -> (
      match Bf.decode frame with
      | Error reason ->
          log_event t (Corrupt_rejected { from = src; what = "batch"; reason })
      | Ok { Bf.parts; piggyback } ->
          List.iter
            (fun (p : Bf.part) ->
              handle_envelope t ~from:src p.Bf.p_envelope p.Bf.p_tdescs
                p.Bf.p_assemblies)
            parts;
          List.iter
            (fun (kind, body) ->
              match t.gossip_handler with
              | Some f -> f ~src ~kind ~body
              | None -> ())
            piggyback)
  | Message.Handle_nak { handles } -> (
      (* The other end lost bindings we assigned on this link: re-send
         them. Unknown handles (e.g. after our own restart) are simply
         omitted — the receiver's park times out and the next fresh send
         re-binds from scratch. *)
      let stab = sender_table t src in
      let binds =
        List.filter_map
          (fun h -> Option.map (fun e -> (h, e)) (Ht.entry_for stab h))
          handles
      in
      match binds with
      | [] -> ()
      | _ ->
          send t ~dst:src
            (Message.Handle_bind { frame = Ht.encode_bindings binds }))
  | Message.Handle_bind { frame } -> (
      match Ht.decode_bindings frame with
      | Error reason ->
          log_event t
            (Corrupt_rejected { from = src; what = "handle-bind"; reason })
      | Ok bindings -> (
          let rtab = recv_table t src in
          List.iter (fun (h, e) -> Ht.install rtab h e) bindings;
          match Hashtbl.find_opt t.parked src with
          | None -> ()
          | Some lst ->
              let waiting = List.rev !lst in
              lst := [];
              List.iter
                (fun pk ->
                  pk.pk_cancel ();
                  handle_envelope ~renego_budget:pk.pk_retries t ~from:src
                    pk.pk_envelope pk.pk_tdescs pk.pk_assemblies)
                waiting))
  | Message.Tdesc_request { type_name; token; binary_ok; version } ->
      (* A pinned request is answered from the repository's version
         chains — the description exactly as published at that revision —
         falling back to the version-pinned cache, then best-effort to
         the bare resolution (a peer with no chain knowledge answers as
         before; the requester's GUID pin still vets what comes back). *)
      let pinned () =
        let rec scan = function
          | [] -> None
          | (asm_name, _) :: rest -> (
              match
                Repository.resolve t.sh.sh_repo
                  ~pin:(Repository.Version version) asm_name
              with
              | Some ve -> (
                  match
                    Assembly.find_class ve.Repository.ve_assembly type_name
                  with
                  | Some cd -> Some (Td.of_class cd)
                  | None -> scan rest)
              | None -> scan rest)
        in
        match scan (Repository.chain_digests t.sh.sh_repo) with
        | Some _ as d -> d
        | None -> (
            match
              Lru.Str.find t.sl.sl_tdesc_cache
                (Printf.sprintf "%s@v%d" (lc type_name) version)
            with
            | Some _ as d -> d
            | None -> local_desc t type_name)
      in
      let resolved =
        if version > 0 then pinned () else local_desc t type_name
      in
      let desc =
        Option.map
          (fun d ->
            if binary_ok then Td.to_binary_string d else Td.to_xml_string d)
          resolved
      in
      send t ~dst:src (Message.Tdesc_reply { type_name; desc; token })
  | Message.Tdesc_reply { type_name; desc; token } -> (
      match Hashtbl.find_opt t.tdesc_conts token with
      | None -> ()
      | Some (k, cancel_timeout, (retries, version)) -> (
          Hashtbl.remove t.tdesc_conts token;
          cancel_timeout ();
          match desc with
          | None -> k None
          | Some s -> (
              match Td.of_wire_string s with
              | Ok d -> k (Some d)
              | Error reason ->
                  (* The sender had the description but what arrived does
                     not parse: wire corruption. Re-ask within budget. *)
                  log_event t
                    (Corrupt_rejected { from = src; what = "tdesc"; reason });
                  if retries > 0 then
                    (* Back off before re-asking so the re-request can
                       outlive a corruption burst. *)
                    Transport.timer t.tr ~owner:t.addr
                      ~info:("tdesc-reask " ^ type_name)
                      ~delay_ms:t.fetch_backoff_ms
                      (fun () ->
                        request_tdesc ~retries:(retries - 1) ~version t
                          ~from:src type_name k)
                  else k None)))
  | Message.Asm_request { path; token } ->
      let assembly =
        Option.map Assembly_xml.to_string (Repository.find t.sh.sh_repo ~path)
      in
      send t ~dst:src (Message.Asm_reply { path; assembly; token })
  | Message.Asm_reply { assembly; token; _ } -> (
      match Hashtbl.find_opt t.asm_conts token with
      | None -> ()
      | Some (k, cancel_timeout, _) -> (
          Hashtbl.remove t.asm_conts token;
          cancel_timeout ();
          match assembly with
          | None -> k None
          | Some s -> (
              match Assembly_xml.of_string s with
              | Ok a -> k (Some a)
              | Error reason ->
                  (* Corrupt assembly bytes: reject and let the failover
                     pipeline retry this path / move to the next mirror. *)
                  log_event t
                    (Corrupt_rejected
                       { from = src; what = "assembly"; reason });
                  k None)))
  | Message.Invoke_request { target; meth; args; token } ->
      handle_invoke t ~from:src ~target ~meth ~args_xml:args ~token
  | Message.Invoke_reply { token; result; error } -> (
      match Hashtbl.find_opt t.invoke_conts token with
      | None -> ()
      | Some k -> (
          Hashtbl.remove t.invoke_conts token;
          match error with
          | Some e -> k (Error e)
          | None -> (
              match result with
              | None -> k (Error "empty reply")
              | Some xml -> (
                  match Envelope.of_string xml with
                  | Error e ->
                      k (Error (Format.asprintf "%a" Envelope.pp_error e))
                  | Ok env ->
                      receive_value_envelope t ~from:src env (function
                        | Ok v -> k (Ok v)
                        | Error reason -> k (Error reason))))))
  | Message.Gossip { kind; body } -> (
      (* Routed, not interpreted: semantics live in pti_cluster. *)
      match t.gossip_handler with
      | Some f -> f ~src ~kind ~body
      | None -> ())

(* ---------------------------------------------------------------- *)
(* Construction                                                       *)
(* ---------------------------------------------------------------- *)

(* Bind the peer's cache and outcome counters into its metrics registry
   under [peer.<addr>.*] (see HACKING.md for the naming scheme). Cache
   counters are gauge callbacks reading the live LRU accounting, so a
   snapshot is always current without per-operation bookkeeping. *)
let bind_metrics m ~addr ~tdesc_cache ~known_paths ~event_log ~checker =
  let p name = Printf.sprintf "peer.%s.%s" addr name in
  let lru_gauges obj cache =
    let g name f =
      Metrics.gauge_fn m (p (obj ^ "." ^ name)) (fun () ->
          float_of_int (f (Lru.Str.counters cache)))
    in
    g "hits" (fun c -> c.Lru.hits);
    g "misses" (fun c -> c.Lru.misses);
    g "evictions" (fun c -> c.Lru.evictions);
    g "invalidations" (fun c -> c.Lru.invalidations);
    Metrics.gauge_fn m (p (obj ^ ".size")) (fun () ->
        float_of_int (Lru.Str.length cache));
    Metrics.gauge_fn m (p (obj ^ ".capacity")) (fun () ->
        float_of_int (Lru.Str.capacity cache))
  in
  lru_gauges "tdesc_cache" tdesc_cache;
  lru_gauges "known_paths" known_paths;
  Metrics.gauge_fn m (p "events.dropped") (fun () ->
      float_of_int (Ring.dropped event_log));
  let ck name f =
    Metrics.gauge_fn m (p ("checker." ^ name)) (fun () ->
        float_of_int (f (Checker.stats checker)))
  in
  ck "checks" (fun s -> s.Checker.checks);
  ck "cache_hits" (fun s -> s.Checker.cache_hits);
  ck "cache_misses" (fun s -> s.Checker.cache_misses);
  ck "cache_evictions" (fun s -> s.Checker.cache_evictions);
  ck "cache_size" (fun s -> s.Checker.cache_size);
  ck "top_hits" (fun s -> s.Checker.top_hits);
  ck "top_computes" (fun s -> s.Checker.top_computes);
  ck "invalidated" (fun s -> s.Checker.invalidated);
  ck "resolver_misses" (fun s -> s.Checker.resolver_misses);
  {
    mc_delivered = Metrics.counter m (p "delivered");
    mc_rejected = Metrics.counter m (p "rejected");
    mc_decode_failed = Metrics.counter m (p "decode_failed");
    mc_load_failed = Metrics.counter m (p "load_failed");
    mc_fetch_attempts = Metrics.counter m (p "fetch.attempts");
    mc_fetch_retries = Metrics.counter m (p "fetch.retries");
    mc_fetch_failovers = Metrics.counter m (p "fetch.failovers");
    mc_corrupt_rejects = Metrics.counter m (p "corrupt_rejects");
  }

(* Wire-efficiency counters: handle negotiation under [serial.<addr>.*]
   (it accounts serializer bytes), batching under [peer.<addr>.*]. *)
let bind_wire_metrics m ~addr =
  let s name = Printf.sprintf "serial.%s.handle.%s" addr name in
  let p name = Printf.sprintf "peer.%s.batch.%s" addr name in
  {
    mc_handle_hits = Metrics.counter m (s "hits");
    mc_handle_misses = Metrics.counter m (s "misses");
    mc_renegotiations = Metrics.counter m (s "renegotiations");
    mc_batch_messages = Metrics.counter m (p "messages");
    mc_batch_envelopes = Metrics.counter m (p "envelopes");
    mc_batch_bytes_saved = Metrics.counter m (p "bytes_saved");
  }

(* Build one flyweight block. A classic peer calls this privately from
   [create]; the scale driver calls it once and hands the block to every
   session it spawns. *)
let create_shared ?(config = Config.strict) ?(tdesc_cache_capacity = 512)
    ?(known_paths_capacity = 512) ?checker_cache_capacity
    ?(handle_table_capacity = 512) ?(shards = 1) () =
  if shards < 1 then invalid_arg "Peer.create_shared: shards must be >= 1";
  let reg = Registry.create () in
  (* Capacity-aware per-shard sizing: the block-wide cache budget is
     split across shards (ceiling division, floor 1), so [~shards:k]
     costs what one block did while each shard's working set is
     isolated — a hot destination can only evict entries inside its own
     shard, never another's verdicts. *)
  let per cap = max 1 ((cap + shards - 1) / shards) in
  let make_slot _ =
    let tdesc_cache =
      Lru.Str.create ~capacity:(per tdesc_cache_capacity) ()
    in
    let desc_versions = Hashtbl.create 16 in
    let resolver name =
      match Registry.find reg name with
      | Some cd -> Some (Td.of_class cd)
      | None -> (
          let key = lc name in
          match Lru.Str.find tdesc_cache key with
          | Some d -> Some d
          | None -> (
              (* No bare binding: serve the newest version-pinned entry, so
                 nested references inside pinned envelopes resolve. *)
              match Hashtbl.find_opt desc_versions key with
              | Some v ->
                  Lru.Str.find tdesc_cache (Printf.sprintf "%s@v%d" key v)
              | None -> None))
    in
    let checker =
      Checker.create ~config
        ?cache_capacity:(Option.map per checker_cache_capacity)
        ~resolver ()
    in
    {
      sl_tdesc_cache = tdesc_cache;
      sl_checker = checker;
      sl_known_paths = Lru.Str.create ~capacity:(per known_paths_capacity) ();
      sl_px = Proxy.create_context reg checker;
      sl_desc_versions = desc_versions;
      sl_ht_pool = Queue.create ();
    }
  in
  {
    sh_reg = reg;
    sh_repo = Repository.create ();
    sh_loaded_versions = Hashtbl.create 16;
    sh_ht_capacity = handle_table_capacity;
    sh_slots = Array.init shards make_slot;
  }

let shard_count sh = Array.length sh.sh_slots

let shard_index sh addr =
  let k = Array.length sh.sh_slots in
  if k = 1 then 0
  else
    Int64.to_int
      (Int64.unsigned_rem (Pti_util.Fnv.hash64 addr) (Int64.of_int k))

let slot_of sh addr = sh.sh_slots.(shard_index sh addr)
let shared t = t.sh
let shared_registry sh = sh.sh_reg
let shared_repository sh = sh.sh_repo
let shared_checker sh = sh.sh_slots.(0).sl_checker

let shared_tdesc_cache_counters sh =
  Array.fold_left
    (fun (acc : Lru.counters) sl ->
      let c = Lru.Str.counters sl.sl_tdesc_cache in
      {
        Lru.hits = acc.Lru.hits + c.Lru.hits;
        misses = acc.Lru.misses + c.Lru.misses;
        evictions = acc.Lru.evictions + c.Lru.evictions;
        invalidations = acc.Lru.invalidations + c.Lru.invalidations;
        insertions = acc.Lru.insertions + c.Lru.insertions;
      })
    {
      Lru.hits = 0;
      misses = 0;
      evictions = 0;
      invalidations = 0;
      insertions = 0;
    }
    sh.sh_slots

let shared_tdesc_cache_size sh =
  Array.fold_left
    (fun n sl -> n + Lru.Str.length sl.sl_tdesc_cache)
    0 sh.sh_slots

let shared_pool_size sh =
  Array.fold_left (fun n sl -> n + Queue.length sl.sl_ht_pool) 0 sh.sh_slots

let shared_reuse_rate sh =
  (* Top-level verdict reuse aggregated across every shard's checker —
     the per-shard [Checker.reuse_rate]s weighted by check volume. *)
  let hits, total =
    Array.fold_left
      (fun (h, tot) sl ->
        let s = Checker.stats sl.sl_checker in
        ( h + s.Checker.top_hits,
          tot + s.Checker.top_hits + s.Checker.top_computes ))
      (0, 0) sh.sh_slots
  in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let create ?(mode = Optimistic) ?(codec = Envelope.Binary)
    ?(config = Config.strict) ?metrics:m
    ?(tdesc_cache_capacity = 512) ?(known_paths_capacity = 512)
    ?(event_log_capacity = 4096) ?checker_cache_capacity
    ?(request_timeout_ms = default_request_timeout_ms)
    ?(fetch_retries = 0) ?(fetch_backoff_ms = 250.) ?(handles = false)
    ?batch_bytes ?(tdesc_binary = false) ?(handle_table_capacity = 512)
    ?(share_inflight = true) ?shared ?net:network ?transport addr =
  (* Exactly one of [~net] (the historical simulated-network form, kept
     so the deterministic suites construct peers unchanged) or
     [~transport] (any backend). *)
  let tr =
    match (network, transport) with
    | Some n, None -> Transport.of_net n
    | None, Some tr -> tr
    | Some _, Some _ ->
        invalid_arg "Peer.create: pass either ~net or ~transport, not both"
    | None, None -> invalid_arg "Peer.create: a ~net or ~transport is required"
  in
  let sh =
    match shared with
    | Some sh -> sh
    | None ->
        create_shared ~config ~tdesc_cache_capacity ~known_paths_capacity
          ?checker_cache_capacity ~handle_table_capacity ()
  in
  let sl = slot_of sh addr in
  let event_log = Ring.create ~capacity:event_log_capacity () in
  let m = match m with Some m -> m | None -> Metrics.create () in
  let evt_ctrs =
    bind_metrics m ~addr ~tdesc_cache:sl.sl_tdesc_cache
      ~known_paths:sl.sl_known_paths ~event_log ~checker:sl.sl_checker
  in
  let t =
    {
      addr;
      tr;
      ep = None;
      sh;
      sl;
      peer_mode = mode;
      codec;
      interests = [];
      next_interest = 0;
      default_sink = None;
      exported = Hashtbl.create 8;
      next_export = 0;
      next_token = 0;
      tdesc_conts = Hashtbl.create 8;
      asm_conts = Hashtbl.create 8;
      invoke_conts = Hashtbl.create 8;
      tdesc_inflight = Hashtbl.create 16;
      asm_inflight = Hashtbl.create 8;
      share_inflight;
      event_log;
      metrics = m;
      evt_ctrs;
      request_timeout_ms;
      fetch_retries;
      fetch_backoff_ms;
      mirror_provider = None;
      gossip_handler = None;
      handles;
      batch_bytes;
      tdesc_binary;
      h_send = Hashtbl.create 8;
      h_recv = Hashtbl.create 8;
      parked = Hashtbl.create 8;
      batches = Hashtbl.create 8;
      piggyback_provider = None;
      wire_ctrs = bind_wire_metrics m ~addr;
    }
  in
  t.ep <- Some (Transport.add_endpoint tr addr ~handler:(fun ~src msg -> handle t ~src msg));
  t

let record_loaded_version t asm =
  let key = lc asm.Assembly.asm_name in
  let v = asm.Assembly.asm_version in
  match Hashtbl.find_opt t.sh.sh_loaded_versions key with
  | Some prev when prev >= v -> ()
  | _ -> Hashtbl.replace t.sh.sh_loaded_versions key v

let publish_assembly t asm =
  Assembly.load t.sh.sh_reg asm;
  record_loaded_version t asm;
  let path =
    Repository.path_for ~host:t.addr ~assembly:asm.Assembly.asm_name
  in
  Repository.add t.sh.sh_repo ~path asm;
  Lru.Str.put t.sl.sl_known_paths (lc asm.Assembly.asm_name) path

(* Compare-and-set publish onto the repository's version chain. On
   success the new revision becomes the live code (old GUIDs stay
   registered so in-flight envelopes still decode version-pinned), the
   checker drops exactly the verdicts bound to superseded revisions
   (same-witness verdicts survive), and the advertised download path
   moves to the new head. *)
let publish_assembly_cas ?expect t asm =
  match Repository.publish_cas t.sh.sh_repo ~host:t.addr ~expect asm with
  | Error _ as e -> e
  | Ok ve ->
      let asm' = ve.Repository.ve_assembly in
      upgrade_assembly_local t asm';
      record_loaded_version t asm';
      Lru.Str.put t.sl.sl_known_paths
        (lc asm'.Assembly.asm_name)
        ve.Repository.ve_path;
      Ok ve

let install_assembly t asm =
  Assembly.load t.sh.sh_reg asm;
  record_loaded_version t asm

let serve_assembly t ?path asm =
  let path =
    match path with
    | Some p -> p
    | None ->
        Repository.path_for ~host:t.addr ~assembly:asm.Assembly.asm_name
  in
  Repository.add t.sh.sh_repo ~path asm

(* ---------------------------------------------------------------- *)
(* Cluster hooks                                                      *)
(* ---------------------------------------------------------------- *)

let set_mirror_provider t f = t.mirror_provider <- Some f
let set_gossip_handler t f = t.gossip_handler <- Some f
let set_piggyback_provider t f = t.piggyback_provider <- Some f

let send_gossip t ~dst ~kind ~body =
  send t ~dst (Message.Gossip { kind; body })

let learn_description t d = cache_desc t d
let local_description t name = local_desc t name

let known_descriptions t =
  (* Locally loaded code first; cached descriptions fill in types we
     know about but cannot execute. One entry per (lowercased) name. *)
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun cd ->
      Hashtbl.replace tbl
        (lc (Meta.qualified_name cd))
        (Meta.qualified_name cd, cd.Meta.td_guid))
    (Registry.all t.sh.sh_reg);
  Lru.Str.fold t.sl.sl_tdesc_cache ~init:()
    ~f:(fun key d () ->
      (* Version-pinned slots (keyed [name@vN]) are link-local decode
         aids, not knowledge to gossip. *)
      if
        String.equal key (lc (Td.qualified_name d))
        && not (Hashtbl.mem tbl key)
      then Hashtbl.replace tbl key (Td.qualified_name d, d.Td.ty_guid));
  Hashtbl.fold (fun _ entry acc -> entry :: acc) tbl []
  |> List.sort compare

type interest_id = int

let register_interest_id t ~interest cb =
  let id = t.next_interest in
  t.next_interest <- id + 1;
  t.interests <- t.interests @ [ (id, interest, cb) ];
  id

let register_interest t ~interest cb = ignore (register_interest_id t ~interest cb)

let unregister_interest t id =
  t.interests <- List.filter (fun (i, _, _) -> i <> id) t.interests

let interests t = List.map (fun (_, name, _) -> name) t.interests

let set_default_sink t sink = t.default_sink <- Some sink

(* Render an outgoing envelope, consulting this link's handle table when
   negotiation is on: known entries ship as bare refs, first uses as
   binds. *)
let encode_envelope t ~dst env =
  if not t.handles then Envelope.to_string env
  else begin
    let stab = sender_table t dst in
    Envelope.to_string_h env ~form:(fun e ->
        match Ht.obtain stab e with
        | `Known h ->
            Metrics.incr t.wire_ctrs.mc_handle_hits;
            `Ref h
        | `Fresh h ->
            Metrics.incr t.wire_ctrs.mc_handle_misses;
            `Bind h)
  end

(* Ship the open batch for [dst] as one framed message, with any gossip
   the cluster layer wants to piggyback on it. *)
let flush_batch t ~dst =
  match Hashtbl.find_opt t.batches dst with
  | None -> ()
  | Some bb ->
      Hashtbl.remove t.batches dst;
      let parts = List.rev bb.bb_parts in
      if parts <> [] then begin
        let piggyback =
          match t.piggyback_provider with Some f -> f ~dst | None -> []
        in
        let msg = Message.Obj_batch { frame = Bf.encode { Bf.parts; piggyback } } in
        Metrics.incr t.wire_ctrs.mc_batch_messages;
        Metrics.incr ~by:(List.length parts) t.wire_ctrs.mc_batch_envelopes;
        let saved = bb.bb_standalone - Message.size msg in
        if saved > 0 then
          Metrics.incr ~by:saved t.wire_ctrs.mc_batch_bytes_saved;
        send t ~dst msg
      end

let flush_batches t =
  (* Sorted: flush order decides wire order, and Hashtbl iteration order
     would make that depend on hashing (schedule replay needs it to be a
     pure function of peer state). *)
  Hashtbl.fold (fun dst _ acc -> dst :: acc) t.batches []
  |> List.sort String.compare
  |> List.iter (fun dst -> flush_batch t ~dst)

(* ---------------------------------------------------------------- *)
(* State fingerprint (model-checker hash pruning)                     *)
(* ---------------------------------------------------------------- *)

(* FNV-1a digest of everything observable about this peer: loaded code,
   served assemblies, cached descriptions, the event log, registered
   interests, pending subprotocol exchanges, parked envelopes, open
   batches and per-link handle tables. Every table is rendered in
   sorted order so the digest is a pure function of peer state, not of
   hash-bucket layout. Two simulation states with equal digests (for
   every peer, plus equal pending-event sets) behave identically under
   any future schedule — the model checker prunes on that. *)
let fingerprint t =
  let buf = Buffer.create 1024 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let sorted_keys tbl render =
    Hashtbl.fold (fun k v acc -> render k v :: acc) tbl []
    |> List.sort String.compare
    |> List.iter (fun s -> add "%s" s)
  in
  add "peer %s" t.addr;
  Registry.all t.sh.sh_reg
  |> List.map Meta.qualified_name
  |> List.sort String.compare
  |> List.iter (fun n -> add "reg %s" n);
  Repository.entries t.sh.sh_repo
  |> List.sort compare
  |> List.iter (fun (path, name) -> add "repo %s %s" path name);
  Lru.Str.fold t.sl.sl_tdesc_cache ~init:[] ~f:(fun key _ acc -> key :: acc)
  |> List.sort String.compare
  |> List.iter (fun key -> add "tdesc %s" key);
  List.iter (fun e -> add "evt %s" (Format.asprintf "%a" pp_event e))
    (Ring.to_list t.event_log);
  List.iter (fun (id, name, _) -> add "interest %d %s" id name) t.interests;
  add "exported %d" (Hashtbl.length t.exported);
  sorted_keys t.tdesc_conts (fun tok _ -> Printf.sprintf "tcont %d" tok);
  sorted_keys t.asm_conts (fun tok _ -> Printf.sprintf "acont %d" tok);
  sorted_keys t.invoke_conts (fun tok _ -> Printf.sprintf "icont %d" tok);
  sorted_keys t.tdesc_inflight (fun key w ->
      Printf.sprintf "tinf %s %d" key (List.length !w));
  sorted_keys t.asm_inflight (fun key w ->
      Printf.sprintf "ainf %s %d" key (List.length !w));
  sorted_keys t.parked (fun src lst ->
      Printf.sprintf "parked %s %d" src (List.length !lst));
  sorted_keys t.batches (fun dst bb ->
      Printf.sprintf "batch %s %d %d" dst (List.length bb.bb_parts)
        bb.bb_bytes);
  sorted_keys t.h_send (fun dst s ->
      Printf.sprintf "hsend %s %Lx" dst (Ht.fingerprint_sender s));
  sorted_keys t.h_recv (fun src r ->
      Printf.sprintf "hrecv %s %Lx" src (Ht.fingerprint_receiver r));
  Pti_util.Fnv.hash64 (Buffer.contents buf)

(* Queue one object message into [dst]'s open batch; flush when the byte
   budget fills, else by a delay-0 event — the simulator orders it after
   every send already issued at this instant, so same-tick sends
   coalesce. *)
let enqueue_part t ~dst ~budget envelope tdescs assemblies =
  let bb =
    match Hashtbl.find_opt t.batches dst with
    | Some bb -> bb
    | None ->
        let bb =
          { bb_parts = []; bb_standalone = 0; bb_bytes = 0;
            bb_scheduled = false }
        in
        Hashtbl.add t.batches dst bb;
        bb
  in
  bb.bb_parts <-
    { Bf.p_envelope = envelope; p_tdescs = tdescs; p_assemblies = assemblies }
    :: bb.bb_parts;
  bb.bb_standalone <-
    bb.bb_standalone
    + Message.size (Message.Obj_msg { envelope; tdescs; assemblies });
  bb.bb_bytes <-
    bb.bb_bytes + String.length envelope
    + List.fold_left (fun a s -> a + String.length s) 0 tdescs
    + List.fold_left (fun a s -> a + String.length s) 0 assemblies;
  if bb.bb_bytes >= budget then flush_batch t ~dst
  else if not bb.bb_scheduled then begin
    bb.bb_scheduled <- true;
    Transport.act t.tr ~owner:t.addr ~info:("batch-flush " ^ dst) ~delay_ms:0.
      (fun () -> flush_batch t ~dst)
  end

let send_value t ~dst value =
  let env =
    Envelope.make t.sh.sh_reg ~codec:t.codec
      ~version_of:(fun ~assembly -> assembly_version t ~assembly)
      ~download_path:(fun ~assembly -> download_path t ~assembly)
      value
  in
  let envelope = encode_envelope t ~dst env in
  let tdescs, assemblies =
    match t.peer_mode with
    | Optimistic -> ([], [])
    | Eager ->
        (* Ship descriptions and code for every class in the graph, plus
           the transitive closure their assemblies bundle anyway. *)
        let names = Envelope.required_classes env in
        let descs =
          List.filter_map
            (fun n -> Option.map Td.to_xml_string (local_desc t n))
            names
        in
        let asm_names =
          List.filter_map
            (fun n ->
              Option.map
                (fun cd -> cd.Meta.td_assembly)
                (Registry.find t.sh.sh_reg n))
            names
          |> List.sort_uniq S.compare_ci
        in
        let asms =
          List.filter_map
            (fun a ->
              Option.map
                (fun (_, asm) -> Assembly_xml.to_string asm)
                (Repository.find_by_name t.sh.sh_repo a))
            asm_names
        in
        (descs, asms)
  in
  match t.batch_bytes with
  | Some budget -> enqueue_part t ~dst ~budget envelope tdescs assemblies
  | None -> send t ~dst (Message.Obj_msg { envelope; tdescs; assemblies })

(* ---------------------------------------------------------------- *)
(* Synchronous helpers (drive the shared simulation)                  *)
(* ---------------------------------------------------------------- *)

(* Sim: step the shared simulation until the predicate holds or the
   event queue drains (historical behavior, unchanged). Streams: poll
   the fabric with a real deadline scaled from the request timeout, so
   a lost reply degrades instead of spinning forever. *)
let drive_until t pred =
  match Transport.sim_net t.tr with
  | Some _ -> Transport.drive_until t.tr pred
  | None ->
      let deadline =
        Transport.now_ms t.tr +. Float.max 1_000. (3. *. t.request_timeout_ms)
      in
      Transport.drive_until t.tr ~deadline_ms:deadline pred

let fetch_type_description t ~from name =
  match local_desc t name with
  | Some d -> Some d
  | None ->
      let result = ref None in
      let got = ref false in
      request_tdesc_shared t ~from name (fun resp ->
          (match resp with
          | Some d -> cache_desc t d
          | None -> ());
          result := resp;
          got := true);
      ignore (drive_until t (fun () -> !got));
      !result

let export t value =
  match value with
  | Value.Vobj o ->
      let id = t.next_export in
      t.next_export <- id + 1;
      Hashtbl.replace t.exported id value;
      { rr_host = t.addr; rr_id = id; rr_class = o.Value.cls }
  | _ -> invalid_arg "Peer.export: only objects can be exported"

(* Synchronous remote invocation used by remote proxies. *)
let remote_invoke t ~host ~target ~meth args =
  let env = make_args_envelope t args in
  let token = fresh_token t in
  let outcome = ref None in
  Hashtbl.replace t.invoke_conts token (fun r -> outcome := Some r);
  send t ~dst:host
    (Message.Invoke_request
       { target; meth; args = Envelope.to_string env; token });
  ignore (drive_until t (fun () -> !outcome <> None));
  match !outcome with
  | Some (Ok v) -> v
  | Some (Error e) -> raise (Eval.Runtime_error ("remote: " ^ e))
  | None -> raise (Eval.Runtime_error "remote invocation lost (network idle)")

let acquire t rref ~interest =
  (* 1. obtain the remote type's description (and its closure). *)
  let got = ref false in
  ensure_descs t ~from:rref.rr_host [ rref.rr_class ] (fun () -> got := true);
  ignore (drive_until t (fun () -> !got));
  match local_desc t rref.rr_class with
  | None ->
      Error
        (Printf.sprintf "type %s unknown at %s" rref.rr_class rref.rr_host)
  | Some actual_d -> (
      match local_desc t interest with
      | None -> Error (Printf.sprintf "interest type %s not loaded" interest)
      | Some interest_d -> (
          (* 2. the rules check. *)
          match Checker.check t.sl.sl_checker ~actual:actual_d ~interest:interest_d with
          | Checker.Not_conformant fs ->
              Error
                (match fs with
                | f :: _ -> f.Checker.message
                | [] -> "not conformant")
          | Checker.Conformant mapping ->
              (* 3. a remote dynamic proxy translating client-side. *)
              let px_invoke name args =
                let meth, actual_args =
                  match
                    Mapping.find mapping ~name ~arity:(List.length args)
                  with
                  | Some mm ->
                      ( mm.Mapping.mm_actual_name,
                        Mapping.permute args mm.Mapping.mm_perm )
                  | None -> (name, args)
                in
                remote_invoke t ~host:rref.rr_host ~target:rref.rr_id ~meth
                  (List.map Proxy.unwrap actual_args)
              in
              Ok
                (Value.Vproxy
                   {
                     Value.px_interface = interest;
                     px_target = Value.Vnull;
                     px_invoke;
                   })))
