(* Binary wire codec for [Message.t] — the stream transports' payload
   format.

   On the simulated network messages travel as in-memory values and
   only their declared [Message.size] is charged; a socket needs real
   bytes. One tag byte per constructor, then [Bytes_io] primitives
   (varints, length-prefixed strings, option bools). A leading magic
   guards against framing drift; damage inside a field surfaces as a
   reader underflow and decodes to [Error], which the transport counts
   as an integrity drop — the envelope/batch checksums underneath
   still protect semantic content exactly as on the sim. *)

module W = Pti_serial.Bytes_io.Writer
module R = Pti_serial.Bytes_io.Reader
module Framing = Pti_serial.Framing

let magic = "PTIM\x01"

let opt w = function
  | None -> W.bool w false
  | Some s ->
      W.bool w true;
      W.string w s

let read_opt r = if R.bool r then Some (R.string r) else None

let encode (m : Message.t) =
  let w = W.create () in
  W.raw w magic;
  (match m with
  | Message.Obj_msg { envelope; tdescs; assemblies } ->
      W.u8 w 0;
      W.string w envelope;
      Framing.write_string_list w tdescs;
      Framing.write_string_list w assemblies
  | Message.Obj_batch { frame } ->
      W.u8 w 1;
      W.string w frame
  | Message.Tdesc_request { type_name; token; binary_ok; version } ->
      W.u8 w 2;
      W.string w type_name;
      W.varint w token;
      W.bool w binary_ok;
      (* Version 0 is omitted so pre-evolution frames are unchanged;
         decoders probe for the trailing field with [at_end]. *)
      if version > 0 then W.varint w version
  | Message.Tdesc_reply { type_name; desc; token } ->
      W.u8 w 3;
      W.string w type_name;
      opt w desc;
      W.varint w token
  | Message.Asm_request { path; token } ->
      W.u8 w 4;
      W.string w path;
      W.varint w token
  | Message.Asm_reply { path; assembly; token } ->
      W.u8 w 5;
      W.string w path;
      opt w assembly;
      W.varint w token
  | Message.Invoke_request { target; meth; args; token } ->
      W.u8 w 6;
      W.zigzag w target;
      W.string w meth;
      W.string w args;
      W.varint w token
  | Message.Invoke_reply { token; result; error } ->
      W.u8 w 7;
      W.varint w token;
      opt w result;
      opt w error
  | Message.Gossip { kind; body } ->
      W.u8 w 8;
      W.string w kind;
      W.string w body
  | Message.Handle_nak { handles } ->
      W.u8 w 9;
      W.varint w (List.length handles);
      List.iter (W.varint w) handles
  | Message.Handle_bind { frame } ->
      W.u8 w 10;
      W.string w frame);
  W.contents w

let decode s : (Message.t, string) result =
  try
    let r = R.create s in
    R.expect_magic r magic;
    let msg =
      match R.u8 r with
      | 0 ->
          let envelope = R.string r in
          let tdescs = Framing.read_string_list r in
          let assemblies = Framing.read_string_list r in
          Message.Obj_msg { envelope; tdescs; assemblies }
      | 1 -> Message.Obj_batch { frame = R.string r }
      | 2 ->
          let type_name = R.string r in
          let token = R.varint r in
          let binary_ok = R.bool r in
          let version = if R.at_end r then 0 else R.varint r in
          Message.Tdesc_request { type_name; token; binary_ok; version }
      | 3 ->
          let type_name = R.string r in
          let desc = read_opt r in
          let token = R.varint r in
          Message.Tdesc_reply { type_name; desc; token }
      | 4 ->
          let path = R.string r in
          let token = R.varint r in
          Message.Asm_request { path; token }
      | 5 ->
          let path = R.string r in
          let assembly = read_opt r in
          let token = R.varint r in
          Message.Asm_reply { path; assembly; token }
      | 6 ->
          let target = R.zigzag r in
          let meth = R.string r in
          let args = R.string r in
          let token = R.varint r in
          Message.Invoke_request { target; meth; args; token }
      | 7 ->
          let token = R.varint r in
          let result = read_opt r in
          let error = read_opt r in
          Message.Invoke_reply { token; result; error }
      | 8 ->
          let kind = R.string r in
          let body = R.string r in
          Message.Gossip { kind; body }
      | 9 ->
          let n = R.varint r in
          if n < 0 || n > 100_000 then failwith "bad handle count";
          let rec go acc k =
            if k = 0 then List.rev acc else go (R.varint r :: acc) (k - 1)
          in
          Message.Handle_nak { handles = go [] n }
      | 10 -> Message.Handle_bind { frame = R.string r }
      | tag -> failwith (Printf.sprintf "unknown message tag %d" tag)
    in
    if R.at_end r then Ok msg else Error "trailing bytes in message"
  with
  | R.Underflow m -> Error m
  | Failure m -> Error m

let codec : Message.t Pti_transport.Transport.codec =
  { c_encode = encode; c_decode = decode }
