(** A middleware peer: one host of the distributed system, implementing the
    optimistic transport protocol of Figure 1.

    Pass-by-value reception pipeline (optimistic mode):
    {ol
    {- an {!Message.Obj_msg} arrives carrying only the hybrid envelope
       (object payload + type names/GUIDs/download paths);}
    {- if every type in the envelope is already loaded (GUID hit), decode
       immediately;}
    {- otherwise fetch the type {e descriptions} (and, transitively, the
       descriptions they reference) from the sender;}
    {- run the implicit-structural-conformance check against each locally
       registered {e type of interest};}
    {- only if some interest conforms, download the missing {e assemblies}
       from their advertised download paths, load them, decode the payload
       and deliver it — wrapped in a dynamic proxy when the conformant type
       is not identical.}}

    Non-conformant objects are rejected {e before} any code is downloaded —
    the network saving the paper claims. The eager baseline ships
    descriptions and assemblies inline with every object instead.

    Pass-by-reference: {!export} publishes an object; {!acquire} fetches the
    remote type's description, checks conformance against a local interest
    type, and returns a proxy whose invocations become
    {!Message.Invoke_request} round-trips (arguments and results travel as
    envelopes through the same pipeline). *)

open Pti_cts

type mode = Optimistic | Eager

type event =
  | Delivered of { interest : string; from : string; value : Value.value }
  | Rejected of { type_name : string; from : string; reason : string }
  | Decode_failed of { from : string; reason : string }
  | Load_failed of { assembly : string; reason : string }
  | Corrupt_rejected of { from : string; what : string; reason : string }
      (** An integrity check caught wire damage: [what] is ["envelope"],
          ["payload"], ["tdesc"] or ["assembly"]. Corrupt subprotocol
          replies are re-requested (tdescs re-ask the sender up to
          [fetch_retries] times; assemblies go back through the
          retry/failover pipeline); corrupt object envelopes are dropped
          here and recovered, if at all, by frame-level integrity + ARQ
          ({!Pti_net.Net.set_integrity}). *)

val pp_event : Format.formatter -> event -> unit

type t

type shared
(** The flyweight block: the type/code side of a peer — class registry,
    served-assembly repository, type-description cache, conformance
    checker (with its verdict cache), advertised-path cache, proxy
    context and the receiver handle-table pool. A classic {!create}
    allocates a private block (historical behavior, bit-identical); the
    scale driver ([pti_scale]) allocates {e one} block and threads it
    through 10^5–10^6 lightweight sessions so this state is paid for
    once per process. Conversation state (interests, pending exchanges,
    event log, batches, wire counters) is never shared.

    The cache side of the block is {e sharded} by destination address:
    [create_shared ~shards:k] splits the description cache, checker
    (verdict cache), advertised-path cache and handle-table pool into
    [k] independent shards; each peer binds at construction to the
    shard selected by FNV-1a of its address. Registry, repository and
    the loaded-version ledger stay block-global (code loading is a
    single-domain operation — see HACKING, "Sharding and domain
    safety"); steady-state reception on peers of different shards
    touches disjoint mutable state and may run on different domains.
    The default [shards = 1] is bit-identical to the unsharded
    layout. *)

val create_shared : ?config:Pti_conformance.Config.t ->
  ?tdesc_cache_capacity:int -> ?known_paths_capacity:int ->
  ?checker_cache_capacity:int -> ?handle_table_capacity:int ->
  ?shards:int -> unit -> shared
(** Same defaults as {!create}'s corresponding optional arguments.
    [shards] (default 1) must be >= 1; the cache capacities are
    block-wide budgets split evenly across shards (ceiling division,
    floor 1 entry), so raising [shards] never raises the block's total
    cache cost. @raise Invalid_argument when [shards < 1]. *)

val shared : t -> shared
val shared_registry : shared -> Registry.t
val shared_repository : shared -> Repository.t

val shared_checker : shared -> Pti_conformance.Checker.t
(** Shard 0's checker — the whole block's checker when [shards = 1].
    For block-wide verdict-reuse accounting across every shard use
    {!shared_reuse_rate}. *)

val shard_count : shared -> int

val shard_index : shared -> string -> int
(** The shard the given destination address hashes to:
    [FNV-1a(addr) mod shard_count] (0 when the block is unsharded). *)

val shared_tdesc_cache_counters : shared -> Pti_obs.Lru.counters
(** Hit/miss/eviction accounting of the shared description cache,
    summed across shards — the cache-reuse curve the scale bench
    reports. *)

val shared_tdesc_cache_size : shared -> int
(** Entries across all shards. *)

val shared_pool_size : shared -> int
(** Receiver handle tables currently parked for reuse, across all
    shards (grown by {!release_handle_tables}, drained by lazy
    per-link table creation). *)

val shared_reuse_rate : shared -> float
(** Fraction of top-level conformance checks answered by a verdict
    cache, aggregated over every shard's checker (per-shard
    {!Pti_conformance.Checker.reuse_rate} weighted by check volume);
    0 before any check. *)

val release_handle_tables : t -> unit
(** Session teardown: clear this peer's learned (receiver) handle tables
    and return them to the shared pool, and forget its sender
    assignments. Tables are returned in sorted-correspondent order so
    the pool's contents are a deterministic function of departure
    order. The peer remains usable; its next envelope from a given
    correspondent draws a table from the pool again. *)

val create : ?mode:mode -> ?codec:Pti_serial.Envelope.codec ->
  ?config:Pti_conformance.Config.t -> ?metrics:Pti_obs.Metrics.t ->
  ?tdesc_cache_capacity:int -> ?known_paths_capacity:int ->
  ?event_log_capacity:int -> ?checker_cache_capacity:int ->
  ?request_timeout_ms:float -> ?fetch_retries:int ->
  ?fetch_backoff_ms:float -> ?handles:bool -> ?batch_bytes:int ->
  ?tdesc_binary:bool -> ?handle_table_capacity:int ->
  ?share_inflight:bool -> ?shared:shared ->
  ?net:Message.t Pti_net.Net.t ->
  ?transport:Message.t Pti_transport.Transport.t -> string -> t
(** [create ~net address] (or [create ~transport address]) registers the
    peer on the network. Exactly one of [net] / [transport] is required:
    [~net] is the historical simulated-network form (internally wrapped
    in a sim {!Pti_transport.Transport.t}, bit-identical behavior);
    [~transport] accepts any backend — the same peer then runs over the
    simulator, Unix-domain sockets or TCP unchanged. Defaults:
    optimistic mode, binary payload codec, strict conformance rules.

    Every cache the peer keeps is bounded and observable: the type
    description cache (default 512 entries), the advertised
    download-path cache (512), the event log (ring of 4096) and the
    conformance verdict cache ({!Pti_conformance.Checker.create}'s
    default). The peer reports through [metrics] (fresh registry when
    omitted) under [peer.<address>.*] names.

    [request_timeout_ms] (default 10000) bounds how long a tdesc or
    assembly subprotocol request waits for its reply before the pipeline
    degrades (or, for downloads, fails over). [fetch_retries] (default
    0) re-asks a download path that many extra times before moving to
    the next mirror, waiting [fetch_backoff_ms * 2^n] (default base
    250ms) before retry [n+1].

    Wire-efficiency knobs (all off by default; see HACKING, "Wire
    efficiency"): [handles] sends handle-encoded envelopes on every
    link (receiving them is always supported); [batch_bytes] coalesces
    same-destination object sends within one simulation instant into
    {!Message.Obj_batch} frames of roughly that many payload bytes;
    [tdesc_binary] requests the compact binary type-description codec
    in {!Message.Tdesc_request}s; [handle_table_capacity] (default 512)
    bounds each per-link receiver handle table.

    [share_inflight:false] disables the in-flight fetch dedup guards —
    reintroducing the historical fan-out bug (one tdesc probe and one
    code download {e per envelope} of a same-typed burst) so the model
    checker's known-bug regression can assert it finds them. Leave it
    at the default [true] everywhere else.

    [shared] threads an existing flyweight block through this peer
    instead of allocating a private one; the block-shaping arguments
    ([config], [tdesc_cache_capacity], [known_paths_capacity],
    [checker_cache_capacity], [handle_table_capacity]) are then ignored
    — the block was already shaped by {!create_shared}. *)

val address : t -> string
val registry : t -> Registry.t
val checker : t -> Pti_conformance.Checker.t
val proxy_context : t -> Pti_proxy.Dynamic_proxy.context
val mode : t -> mode

val net : t -> Message.t Pti_net.Net.t
(** The wrapped simulated network.
    @raise Invalid_argument on a socket-backed peer — use {!transport}. *)

val transport : t -> Message.t Pti_transport.Transport.t
(** The transport fabric the peer drives (any backend). *)

val now_ms : t -> float
(** The transport clock's current time: simulated ms on the sim
    backend, monotonic wall ms on sockets. Layers above the peer (the
    cluster's RTT EWMAs, gossip timestamps) must read time here, never
    from [Sim] directly, to be correct on real transports. *)

val schedule_timer : t -> info:string -> delay_ms:float ->
  (unit -> unit) -> unit
(** Schedule a guard timer owned by this peer's address on the
    transport clock — on the sim backend this produces the exact
    [Sim.Timer] label the model checker keys on. *)

(** {1 Code} *)

val publish_assembly : t -> Assembly.t -> unit
(** Load locally and serve under [asm://<address>/<name>]. *)

val publish_assembly_cas : ?expect:string -> t -> Assembly.t ->
  (Repository.version_entry, Repository.cas_error) result
(** Compare-and-set publish onto this host's version chain (see
    {!Repository.publish_cas}): [expect] is the required current head
    digest; omitted, the chain must still be empty (first publish).
    On success the revision is stamped with the next chain version,
    served versioned {e and} as the new unversioned head, loaded as the
    live code via {!Registry.upgrade} (old GUIDs stay registered so
    in-flight envelopes keep decoding against the revision they were
    serialized with), and the checker's verdict cache is invalidated
    witness-aware — verdicts about unchanged descriptions survive. *)

val install_assembly : t -> Assembly.t -> unit
(** Load locally without serving it. *)

val serve_assembly : t -> ?path:string -> Assembly.t -> unit
(** Serve the assembly from this host's repository {e without} loading
    it into the local registry — the mirror role: a host can hand out
    bytes it never executes. [path] defaults to
    [asm://<address>/<name>]. *)

val repository : t -> Repository.t
(** The assemblies this host serves. *)

val download_path : t -> assembly:string -> string

(** {1 Cluster hooks}

    The peer knows nothing of membership, replication or gossip
    semantics; [pti_cluster] installs these. *)

val set_mirror_provider :
  t -> (assembly:string -> advertised:string -> string list) -> unit
(** Ranked candidate download paths for an assembly whose envelope
    advertised [advertised]. The failover pipeline tries them in order
    (the advertised path is appended as a last resort if the provider
    omits it); without a provider only the advertised path is tried. *)

val set_gossip_handler :
  t -> (src:string -> kind:string -> body:string -> unit) -> unit
(** Receives every {!Message.Gossip} addressed to this host. Without a
    handler gossip is silently dropped. *)

val send_gossip : t -> dst:string -> kind:string -> body:string -> unit

val set_piggyback_provider :
  t -> (dst:string -> (string * string) list) -> unit
(** Called when an {!Message.Obj_batch} is about to ship to [dst]:
    returns [(kind, body)] gossip pairs to piggyback on the frame for
    free (they are handed to the receiver's gossip handler). Without a
    provider batches carry no piggyback. *)

val learn_description : t -> Pti_typedesc.Type_description.t -> unit
(** Insert a type description into the peer's cache as if it had been
    fetched — how gossip disseminates type metadata off the hot path. *)

val local_description :
  t -> string -> Pti_typedesc.Type_description.t option
(** Locally resolvable description: loaded code first, then the cache. *)

val known_descriptions : t -> (string * Pti_util.Guid.t) list
(** Every type this host can describe — loaded classes plus cached
    descriptions — as [(qualified name, GUID)], sorted, one entry per
    case-insensitive name. The raw material of a gossip digest. *)

(** {1 Pass-by-value} *)

val register_interest : t -> interest:string ->
  (from:string -> Value.value -> unit) -> unit
(** Declare a type of interest (its class/interface must be loaded locally)
    and the callback receiving conformant objects. Several interests may
    match one object; each matching callback fires. *)

type interest_id

val register_interest_id : t -> interest:string ->
  (from:string -> Value.value -> unit) -> interest_id
(** Like {!register_interest} but returns a handle for
    {!unregister_interest} (used by pub/sub unsubscription). *)

val unregister_interest : t -> interest_id -> unit
(** Idempotent. *)

val interests : t -> string list
(** The currently registered interest type names, registration order. *)

val set_default_sink : t -> (from:string -> Value.value -> unit) -> unit
(** Receives payloads that carry no objects (primitives, arrays of
    primitives), which have no type to match interests against. *)

val send_value : t -> dst:string -> Value.value -> unit
(** Ship an object graph by value. Every class in the graph must be loaded
    on this peer. Delivery happens as the simulation runs. *)

(** {1 Pass-by-reference} *)

type remote_ref = { rr_host : string; rr_id : int; rr_class : string }

val export : t -> Value.value -> remote_ref
(** Publish an object for remote invocation.
    @raise Invalid_argument if the value is not an object. *)

val acquire : t -> remote_ref -> interest:string ->
  (Value.value, string) result
(** Synchronously (driving the simulation) fetch the remote type's
    description, check conformance against the local [interest] type and
    return an invokable remote proxy. Invocations on the proxy are
    synchronous remote calls. *)

(** {1 Introspection for tests and benchmarks} *)

val events : t -> event list
(** Chronological. *)

val clear_events : t -> unit
(** Also resets {!events_dropped}. *)

val events_dropped : t -> int
(** Events displaced from the bounded log since creation/{!clear_events}. *)

val metrics : t -> Pti_obs.Metrics.t
(** The registry this peer reports through ([peer.<address>.*]). *)

val tdesc_cache_size : t -> int
val tdesc_cache_counters : t -> Pti_obs.Lru.counters
val exported_count : t -> int

val fetch_attempts : t -> int
(** Assembly download requests put on the wire (all paths, all tries). *)

val fetch_retries : t -> int
(** Re-asks of a path that had already failed at least once. *)

val fetch_failovers : t -> int
(** Times the pipeline moved on to the next mirror after exhausting a
    path's retries. Also surfaced as [peer.<address>.fetch.failovers]. *)

val corrupt_rejects : t -> int
(** Corrupt envelopes/payloads/tdescs/assemblies rejected by integrity
    checks. Also surfaced as [peer.<address>.corrupt_rejects]. *)

(** {2 Wire efficiency} *)

val handle_hits : t -> int
(** Type entries shipped as bare handle refs instead of full entries.
    Also surfaced as [serial.<address>.handle.hits]. *)

val handle_misses : t -> int
(** First-use binds shipped (full entry + assigned handle). Also
    [serial.<address>.handle.misses]. *)

val renegotiations : t -> int
(** {!Message.Handle_nak}s this peer sent for unknown handles — the
    degraded-but-correct path after table loss. Also
    [serial.<address>.handle.renegotiations]. *)

val batch_messages : t -> int
(** {!Message.Obj_batch} frames shipped. [peer.<address>.batch.messages]. *)

val batch_envelopes : t -> int
(** Object envelopes carried inside batch frames.
    [peer.<address>.batch.envelopes]. *)

val batch_bytes_saved : t -> int
(** Standalone-message bytes minus batched bytes, accumulated.
    [peer.<address>.batch.bytes_saved]. *)

val drop_handle_tables : t -> unit
(** Forget every learned (receiver-side) handle binding — simulates a
    restart/eviction; subsequent handle refs NAK and renegotiate. The
    chaos harness uses this to prove degradation never mis-types. *)

val flush_batches : t -> unit
(** Ship every open batch immediately (normally the delay-0 flush event
    does this); useful at simulation shutdown. Batches flush in sorted
    destination order (deterministic wire order). *)

val fingerprint : t -> int64
(** FNV-1a digest of the peer's observable state: loaded code, served
    assemblies, cached descriptions, event log, interests, pending
    subprotocol exchanges, parked envelopes, open batches and per-link
    handle tables — rendered in sorted order, so the digest is
    independent of hash-bucket layout. The model checker hashes these
    (plus the pending-event set) to prune schedules that reconverged to
    an already-explored state. *)

val fetch_type_description : t -> from:string -> string ->
  Pti_typedesc.Type_description.t option
(** Synchronous description fetch (drives the simulation); [None] when the
    queried host does not know the type. *)

val run : t -> unit
(** Convenience: run the shared network simulation to quiescence. *)
