let attr_name = "digest"

let strip = function
  | Xml.Element (tag, attrs, children) ->
      Xml.Element
        (tag, List.filter (fun (k, _) -> k <> attr_name) attrs, children)
  | other -> other

let canonical x = Xml.to_string (strip x)

let add x =
  match strip x with
  | Xml.Element (tag, attrs, children) as stripped ->
      Xml.Element
        (tag, (attr_name, Pti_util.Fnv.hash_hex (Xml.to_string stripped)) :: attrs,
         children)
  | other -> other

let verify x =
  match x with
  | Xml.Element (_, attrs, _) -> (
      match List.assoc_opt attr_name attrs with
      | None -> Ok x
      | Some d ->
          if String.equal d (Pti_util.Fnv.hash_hex (canonical x)) then
            Ok (strip x)
          else Error "digest mismatch")
  | other -> Ok other
