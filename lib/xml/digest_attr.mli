(** Integrity digests for XML wire documents.

    A document element gains a [digest] attribute holding the FNV-1a
    hash of its canonical (compact, digest-free) rendering. The reader
    recomputes the hash from the {e parsed} tree, so verification is
    position-independent: any byte flip that survives parsing but
    changes what was said mismatches the digest, and any flip that
    breaks parsing fails earlier. Documents without the attribute are
    accepted unchecked (pre-digest writers, pretty-printed display
    output).

    Only compact renderings should carry digests: the parser preserves
    whitespace text nodes, so a pretty-printed document would not
    re-render to its canonical form. *)

val attr_name : string
(** ["digest"]. *)

val add : Xml.t -> Xml.t
(** The element with a freshly computed [digest] attribute (replacing
    any present). Non-elements pass through. *)

val verify : Xml.t -> (Xml.t, string) result
(** [Ok] with the digest attribute stripped when absent or matching;
    [Error] describing the mismatch otherwise. *)
