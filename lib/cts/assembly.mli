(** Assemblies: the unit of code distribution.

    In the paper, once types conform the receiver downloads the *assembly*
    implementing the sender's type from a download path carried in the
    envelope (§6.1). An assembly bundles class definitions (with bodies)
    plus the names of assemblies it depends on. *)

type t = {
  asm_name : string;
  asm_version : int;
  asm_classes : Meta.class_def list;
  asm_requires : string list;  (** Names of prerequisite assemblies. *)
}

val make : ?version:int -> ?requires:string list -> name:string ->
  Meta.class_def list -> t
(** Stamps every class's [td_assembly] with [name] and validates each.
    @raise Invalid_argument on validation failure. *)

val class_names : t -> string list
(** Qualified names, sorted. *)

val find_class : t -> string -> Meta.class_def option

val load : Registry.t -> t -> unit
(** Registers every class; idempotent for identical definitions.
    @raise Registry.Duplicate on a conflicting definition. *)

val upgrade : Registry.t -> t -> unit
(** Schema evolution: {!Registry.upgrade} every class — each qualified
    name now resolves to this assembly's definition while previously
    registered versions stay reachable by GUID.
    @raise Registry.Duplicate on a GUID collision. *)

val shadow : Registry.t -> t -> unit
(** {!Registry.shadow} every class: reachable by GUID, names left to
    whatever newer revision holds them — loading an {e older} revision
    than the live one. @raise Registry.Duplicate on a GUID collision. *)

val size_bytes : t -> int
(** Approximate on-the-wire size: metadata surface plus body node counts.
    The network simulator charges assembly downloads by this — assemblies
    must dwarf type descriptions, which is what makes the optimistic
    protocol worthwhile. *)

val external_dependencies : t -> string list
(** Qualified type names referenced but not defined by this assembly. *)
