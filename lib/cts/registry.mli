(** Per-host registry of loaded type definitions.

    Each peer owns a registry; loading an assembly (downloaded code)
    registers its classes. Lookup is by case-insensitive qualified name or
    by GUID, mirroring the two identities the paper uses (names for the
    structural rules, GUIDs for equality). *)

type t

exception Duplicate of string
(** Raised when registering a second, structurally different class under a
    qualified name (or GUID) already taken. Re-registering the identical
    definition is idempotent. *)

val create : unit -> t

val register : t -> Meta.class_def -> unit
(** @raise Duplicate, @raise Invalid_argument if {!Meta.validate} fails. *)

val upgrade : t -> Meta.class_def -> unit
(** Schema evolution: bind the class's qualified name to this (newer)
    definition, {e keeping} any previously registered definition
    reachable by its GUID — in-flight envelopes stamped with the old
    version's GUID keep resolving while new lookups by name see the new
    version. Upgrading to the identical definition is idempotent.
    @raise Duplicate if the new GUID is already bound to a different
    definition, @raise Invalid_argument if {!Meta.validate} fails. *)

val shadow : t -> Meta.class_def -> unit
(** The downgrade-safe counterpart of {!upgrade}: make the definition
    reachable by GUID {e without} disturbing what its qualified name
    resolves to (the name is bound only if nothing holds it yet) — how
    a host already running a newer revision absorbs the older classes
    an in-flight envelope still decodes against. Idempotent on the
    identical definition.
    @raise Duplicate if the GUID is bound to a different definition,
    @raise Invalid_argument if {!Meta.validate} fails. *)

val find : t -> string -> Meta.class_def option
(** Case-insensitive qualified-name lookup. *)

val find_exn : t -> string -> Meta.class_def
(** @raise Not_found *)

val find_by_guid : t -> Pti_util.Guid.t -> Meta.class_def option
val mem : t -> string -> bool
val mem_guid : t -> Pti_util.Guid.t -> bool
val all : t -> Meta.class_def list
val cardinal : t -> int

val copy : t -> t
(** Snapshot; used by tests to fork peer states. *)

(** {1 Hierarchy queries} *)

val super_chain : t -> Meta.class_def -> Meta.class_def list
(** Superclasses from the immediate parent outwards. Unresolvable or cyclic
    links terminate the chain. *)

val all_interfaces : t -> Meta.class_def -> Meta.class_def list
(** Transitive closure of implemented/extended interfaces (deduplicated). *)

val is_subtype : t -> sub:string -> super:string -> bool
(** Declared (explicit) subtyping: reflexive-transitive closure over
    superclass and interface edges, by case-insensitive qualified name. *)

val find_method : t -> Meta.class_def -> string -> int ->
  (Meta.class_def * Meta.method_def) option
(** [find_method t cd name arity] resolves a method by case-insensitive name
    and arity along the superclass chain (virtual dispatch resolution). *)

val find_field : t -> Meta.class_def -> string ->
  (Meta.class_def * Meta.field_def) option

val all_fields : t -> Meta.class_def -> Meta.field_def list
(** Inherited then own fields, shadowed names keeping the most-derived. *)

val missing_dependencies : t -> Meta.class_def -> string list
(** Qualified names referenced by the class (super, interfaces, field types,
    signatures) that are not yet registered — what a peer must still
    download before the class is usable. *)
