module S = Pti_util.Strutil

type t = {
  asm_name : string;
  asm_version : int;
  asm_classes : Meta.class_def list;
  asm_requires : string list;
}

let make ?(version = 1) ?(requires = []) ~name classes =
  let classes =
    List.map (fun cd -> { cd with Meta.td_assembly = name }) classes
  in
  List.iter
    (fun cd ->
      match Meta.validate cd with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Assembly.make: " ^ msg))
    classes;
  { asm_name = name; asm_version = version; asm_classes = classes;
    asm_requires = requires }

let class_names t =
  List.sort S.compare_ci (List.map Meta.qualified_name t.asm_classes)

let find_class t name =
  List.find_opt
    (fun cd -> S.equal_ci (Meta.qualified_name cd) name)
    t.asm_classes

let load reg t = List.iter (Registry.register reg) t.asm_classes
let upgrade reg t = List.iter (Registry.upgrade reg) t.asm_classes
let shadow reg t = List.iter (Registry.shadow reg) t.asm_classes

let class_size cd =
  let ty_size ty = String.length (Ty.to_string ty) in
  let param_size p =
    String.length p.Meta.param_name + ty_size p.Meta.param_ty
  in
  let body_size = function None -> 0 | Some e -> 8 * Expr.size e in
  let field f =
    String.length f.Meta.f_name + ty_size f.Meta.f_ty + 4
    + body_size f.Meta.f_init
  in
  let meth m =
    String.length m.Meta.m_name
    + List.fold_left (fun a p -> a + param_size p) 0 m.Meta.m_params
    + ty_size m.Meta.m_return + 4 + body_size m.Meta.m_body
  in
  let ctor c =
    List.fold_left (fun a p -> a + param_size p) 0 c.Meta.c_params
    + 4 + body_size c.Meta.c_body
  in
  String.length (Meta.qualified_name cd)
  + 16 (* guid *)
  + (match cd.Meta.td_super with None -> 0 | Some s -> String.length s)
  + List.fold_left (fun a i -> a + String.length i) 0 cd.Meta.td_interfaces
  + List.fold_left (fun a f -> a + field f) 0 cd.Meta.td_fields
  + List.fold_left (fun a m -> a + meth m) 0 cd.Meta.td_methods
  + List.fold_left (fun a c -> a + ctor c) 0 cd.Meta.td_ctors
  + 32 (* framing *)

let size_bytes t =
  String.length t.asm_name + 8
  + List.fold_left (fun a n -> a + String.length n + 2) 0 t.asm_requires
  + List.fold_left (fun a cd -> a + class_size cd) 0 t.asm_classes

let external_dependencies t =
  let own = List.map (fun cd -> Meta.qualified_name cd) t.asm_classes in
  let is_own n = List.exists (fun o -> S.equal_ci o n) own in
  t.asm_classes
  |> List.concat_map Introspect.referenced_types
  |> List.filter (fun n -> not (is_own n))
  |> List.sort_uniq S.compare_ci
