module S = Pti_util.Strutil
module Guid = Pti_util.Guid

type t = {
  by_name : (string, Meta.class_def) Hashtbl.t;  (* key: lowercased qname *)
  by_guid : (Guid.t, Meta.class_def) Hashtbl.t;
}

exception Duplicate of string

let create () = { by_name = Hashtbl.create 64; by_guid = Hashtbl.create 64 }

let key cd = String.lowercase_ascii (Meta.qualified_name cd)

let register t cd =
  (match Meta.validate cd with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Registry.register: " ^ msg));
  let k = key cd in
  match Hashtbl.find_opt t.by_name k with
  | Some existing when existing = cd -> ()
  | Some _ -> raise (Duplicate (Meta.qualified_name cd))
  | None ->
      if Hashtbl.mem t.by_guid cd.Meta.td_guid then
        raise (Duplicate (Meta.qualified_name cd));
      Hashtbl.replace t.by_name k cd;
      Hashtbl.replace t.by_guid cd.Meta.td_guid cd

(* Live schema evolution: the new definition takes over the qualified
   name, while any previous definition stays reachable by its GUID — an
   in-flight envelope stamped with the old GUID still resolves, which is
   what keeps a rolling upgrade from mis-typing deliveries. *)
let upgrade t cd =
  (match Meta.validate cd with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Registry.upgrade: " ^ msg));
  (match Hashtbl.find_opt t.by_guid cd.Meta.td_guid with
  | Some existing when existing = cd -> ()
  | Some _ -> raise (Duplicate (Meta.qualified_name cd))
  | None -> ());
  Hashtbl.replace t.by_name (key cd) cd;
  Hashtbl.replace t.by_guid cd.Meta.td_guid cd

(* The downgrade-safe counterpart: make the definition reachable by GUID
   without disturbing whatever the name currently resolves to — how a
   receiver that already runs v2 absorbs the v1 classes an in-flight old
   envelope still decodes against. The name is bound only when nothing
   holds it yet. *)
let shadow t cd =
  (match Meta.validate cd with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Registry.shadow: " ^ msg));
  match Hashtbl.find_opt t.by_guid cd.Meta.td_guid with
  | Some existing when existing = cd -> ()
  | Some _ -> raise (Duplicate (Meta.qualified_name cd))
  | None ->
      Hashtbl.replace t.by_guid cd.Meta.td_guid cd;
      if not (Hashtbl.mem t.by_name (key cd)) then
        Hashtbl.replace t.by_name (key cd) cd

let find t name = Hashtbl.find_opt t.by_name (String.lowercase_ascii name)

let find_exn t name =
  match find t name with Some cd -> cd | None -> raise Not_found

let find_by_guid t guid = Hashtbl.find_opt t.by_guid guid
let mem t name = find t name <> None
let mem_guid t guid = Hashtbl.mem t.by_guid guid
let all t = Hashtbl.fold (fun _ cd acc -> cd :: acc) t.by_name []
let cardinal t = Hashtbl.length t.by_name

let copy t =
  { by_name = Hashtbl.copy t.by_name; by_guid = Hashtbl.copy t.by_guid }

let super_chain t cd =
  let rec go seen cd acc =
    match cd.Meta.td_super with
    | None -> List.rev acc
    | Some super_name -> (
        let k = String.lowercase_ascii super_name in
        if List.mem k seen then List.rev acc
        else
          match find t super_name with
          | None -> List.rev acc
          | Some super -> go (k :: seen) super (super :: acc))
  in
  go [ key cd ] cd []

let all_interfaces t cd =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec visit_iface name =
    let k = String.lowercase_ascii name in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      match find t name with
      | None -> ()
      | Some icd ->
          acc := icd :: !acc;
          List.iter visit_iface icd.Meta.td_interfaces
    end
  in
  let visit_class cd = List.iter visit_iface cd.Meta.td_interfaces in
  visit_class cd;
  List.iter visit_class (super_chain t cd);
  List.rev !acc

let is_subtype t ~sub ~super =
  if S.equal_ci sub super then true
  else
    match find t sub with
    | None -> false
    | Some cd ->
        let names =
          List.map Meta.qualified_name (super_chain t cd)
          @ List.map Meta.qualified_name (all_interfaces t cd)
        in
        List.exists (fun n -> S.equal_ci n super) names

let find_method t cd name arity =
  let matches m =
    S.equal_ci m.Meta.m_name name && Meta.arity m = arity
  in
  let rec go cd =
    match List.find_opt matches cd.Meta.td_methods with
    | Some m -> Some (cd, m)
    | None -> (
        match cd.Meta.td_super with
        | None -> None
        | Some s -> ( match find t s with None -> None | Some sc -> go sc))
  in
  go cd

let find_field t cd name =
  let matches f = S.equal_ci f.Meta.f_name name in
  let rec go cd =
    match List.find_opt matches cd.Meta.td_fields with
    | Some f -> Some (cd, f)
    | None -> (
        match cd.Meta.td_super with
        | None -> None
        | Some s -> ( match find t s with None -> None | Some sc -> go sc))
  in
  go cd

let all_fields t cd =
  let chain = List.rev (cd :: super_chain t cd) in
  (* Base class first; a derived field shadows a base field of same name. *)
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun c ->
      List.iter
        (fun f ->
          let k = String.lowercase_ascii f.Meta.f_name in
          if Hashtbl.mem seen k then
            (* Replace the shadowed entry in place. *)
            out :=
              List.map
                (fun g ->
                  if S.equal_ci g.Meta.f_name f.Meta.f_name then f else g)
                !out
          else begin
            Hashtbl.add seen k ();
            out := !out @ [ f ]
          end)
        c.Meta.td_fields)
    chain;
  !out

let missing_dependencies t cd =
  let wanted = Hashtbl.create 8 in
  let add_ty ty =
    List.iter
      (fun n ->
        let k = String.lowercase_ascii n in
        if (not (Hashtbl.mem wanted k)) && not (mem t n) then
          Hashtbl.add wanted k n)
      (Ty.named_roots ty)
  in
  let add_name n = add_ty (Ty.Named n) in
  Option.iter add_name cd.Meta.td_super;
  List.iter add_name cd.Meta.td_interfaces;
  List.iter (fun f -> add_ty f.Meta.f_ty) cd.Meta.td_fields;
  List.iter
    (fun m ->
      add_ty m.Meta.m_return;
      List.iter (fun p -> add_ty p.Meta.param_ty) m.Meta.m_params)
    cd.Meta.td_methods;
  List.iter
    (fun c -> List.iter (fun p -> add_ty p.Meta.param_ty) c.Meta.c_params)
    cd.Meta.td_ctors;
  Hashtbl.fold (fun _ n acc -> n :: acc) wanted []
