(** Pure invariant checks over chaos-run observations.

    Each check takes plain data collected by {!Chaos} and returns the
    violations it found; an empty list means the invariant holds. The
    checks know nothing about the network or scheduler, which keeps
    them unit-testable with hand-built observations. *)

type violation = { inv : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val conservation :
  sent:int ->
  delivered:int ->
  rejected:int ->
  failed:int ->
  net_lost:int ->
  violation list
(** Every sent object is accounted for exactly once:
    [delivered + rejected + failed + net_lost = sent]. *)

val exactly_once : delivered_keys:string list -> violation list
(** No object key appears twice in the delivered list (no duplicate
    apply under ARQ or injected duplication). *)

val no_mangle :
  expected:(string * (string * int)) list ->
  got:(string * (string * int)) list ->
  violation list
(** Every delivered object's observable fields match what the sender
    published for that key — a corrupted payload must be rejected, never
    applied with mangled contents. Keys present in [got] but absent from
    [expected] are violations too. *)

val trap_never_delivered :
  trap_keys:string list -> delivered_keys:string list -> violation list
(** Objects published with trap (non-conformant) types must never reach
    delivery, faults or not. *)

val verdict_stability : (string * string * string) list -> violation list
(** [(type_name, before, after)] triples: the checker verdict for a type
    must not change when its cache is cleared and the check re-runs. *)

val membership_converged :
  (string * (string * string) list) list -> violation list
(** [(observer, [(member, status)])] rows after partitions heal and
    gossip settles: every node must see every member [alive]. *)

val handle_degradation :
  tables_dropped:bool -> renegotiations:int -> violation list
(** When the receiver's negotiated handle tables were dropped mid-run,
    at least one renegotiation (NAK) must have been observed: handle
    refs arriving after the loss can only be parked and re-bound, never
    resolved against stale state. Vacuously holds when nothing was
    dropped. *)

val fetch_economy :
  label:string -> actual:int -> allowed:int -> violation list
(** On a fault-free run the in-flight dedup guards bound subprotocol
    traffic by the number of distinct descriptions/assemblies needed,
    not by envelope count: [actual <= allowed] or the historical fetch
    fan-out bug is back. [label] names the traffic being counted in the
    violation message. *)

val upgrade_safety :
  negotiated:(string * int) list ->
  decoded:(string * int) list ->
  violation list
(** Live schema evolution must never cross-decode: [(key, version)]
    pairs recorded at send time ([negotiated] — the chain-head revision
    the envelope pinned) versus observed at delivery ([decoded] — which
    revision's fields the value actually carries). Any delivery whose
    decoded revision differs from the negotiated one — an in-flight v1
    payload read with the v2 description, or a post-upgrade v2 payload
    read with a stale cached v1 description — is a violation. *)

val metrics_match_trace : (string * int * int) list -> violation list
(** [(label, metric_count, trace_count)] pairs that must agree — the
    metrics registry and the trace recorder watched the same run. *)
