(* Generic delta-debugging list minimisation (ddmin, simplified): try
   each half of the list first (big steps), then each single-element
   removal, keeping any candidate that still fails; stop at a fixpoint.
   The result is 1-minimal up to the candidate set — removing any one
   remaining element no longer reproduces the failure.

   Shared by the fault-plan shrinker (elements = fault windows) and the
   model checker's schedule shrinker (elements = schedule choices). *)

let candidates xs =
  let len = List.length xs in
  if len <= 1 then []
  else
    let mid = len / 2 in
    let front = List.filteri (fun i _ -> i < mid) xs in
    let back = List.filteri (fun i _ -> i >= mid) xs in
    let removals = List.init len (fun i -> List.filteri (fun j _ -> j <> i) xs) in
    [ front; back ] @ removals

let rec ddmin ~fails xs =
  match List.find_opt fails (candidates xs) with
  | Some smaller -> ddmin ~fails smaller
  | None -> xs
