module Splitmix = Pti_util.Splitmix
module Net = Pti_net.Net
module Sim = Pti_net.Sim
module Transport = Pti_transport.Transport
module Stats = Pti_net.Stats
module Trace = Pti_net.Trace
module Metrics = Pti_obs.Metrics
module Peer = Pti_core.Peer
module Checker = Pti_conformance.Checker
module Workload = Pti_demo.Workload
module Value = Pti_cts.Value
module Cluster = Pti_cluster.Cluster
module Node = Pti_cluster.Node

type config = {
  c_profile : Fault_plan.profile;
  c_cluster : bool;
  c_objects : int;
  c_frame_integrity : bool;
  c_wire : bool;
  c_upgrade : bool;
}

let default_config =
  {
    c_profile = Fault_plan.Lossy;
    c_cluster = false;
    c_objects = 8;
    c_frame_integrity = true;
    c_wire = false;
    c_upgrade = false;
  }

type run_result = {
  r_seed : int64;
  r_plan : Fault_plan.t;
  r_sent : int;
  r_delivered : int;
  r_rejected : int;
  r_failed : int;
  r_corrupt_rejects : int;
  r_net_lost : int;
  r_retransmissions : int;
  r_injected_drops : int;
  r_corrupted_frames : int;
  r_integrity_drops : int;
  r_renegotiations : int;
  r_violations : Invariant.violation list;
}

(* The ARQ span (retransmit_ms * max_retries = 480 ms) deliberately
   exceeds the longest fault window any profile generates, so a retried
   message always gets attempts outside the window. *)
let chaos_reliability =
  { Net.retransmit_ms = 40.; max_retries = 12; ack_bytes = 16 }

let send_spacing_ms = 60.
let first_send_ms = 10.

(* One family per index; the last one is a trap (non-conformant), so
   every run exercises the reject path too. *)
let families =
  [
    (0, Workload.Conformant);
    (1, Workload.Conformant);
    (2, Workload.Conformant);
    (3, Workload.Trap_missing);
  ]

let rec obj_of = function
  | Value.Vobj o -> Some o
  | Value.Vproxy p -> obj_of p.Value.px_target
  | _ -> None

let name_age v =
  match obj_of v with
  | None -> None
  | Some o -> (
      match (Value.get_field o "name", Value.get_field o "age") with
      | Some (Value.Vstring n), Some (Value.Vint a) -> Some (n, a)
      | _ -> None)

(* A corrupt batch frame loses the (single, at chaos pacing) envelope it
   carried, so it is terminal like a corrupt envelope. A corrupt
   handle-bind frame is NOT: the parked envelope it was meant to revive
   accounts for itself (renegotiation timeout -> [Decode_failed]). *)
let is_terminal_failure = function
  | Peer.Decode_failed _ | Peer.Load_failed _ -> true
  | Peer.Corrupt_rejected { what = "envelope" | "payload" | "batch"; _ } ->
      true
  | _ -> false

let run_one ?plan config ~seed =
  let root = Splitmix.create seed in
  let net_seed = Splitmix.next64 root in
  let plan_seed = Splitmix.next64 root in
  let hook_seed = Splitmix.next64 root in
  let cluster_seed = Splitmix.next64 root in
  let metrics = Metrics.create () in
  let net =
    Net.create ~jitter_ms:2.0 ~reliability:chaos_reliability ~seed:net_seed
      ~metrics ()
  in
  let sim = Net.sim net in
  (* One shared facade over the sim: peers attach to it, and the fault
     hooks arm through it — the same middleware seam the socket
     backends use. The mc/trace machinery stays on the raw net
     (sim-only escape hatch). *)
  let tr = Transport.of_net net in
  let trace = Trace.attach net in
  let hosts =
    if config.c_cluster then [ "n0"; "n1"; "n2"; "n3" ] else [ "alice"; "bob" ]
  in
  let horizon_ms =
    first_send_ms +. (send_spacing_ms *. float_of_int config.c_objects) +. 100.
  in
  let plan =
    match plan with
    | Some p -> p
    | None ->
        Fault_plan.random ~profile:config.c_profile ~hosts ~horizon_ms
          (Splitmix.create plan_seed)
  in
  (* Wire mode turns on every wire-efficiency feature at once: handle
     negotiation, envelope batching and the binary tdesc codec, all
     under the same faults as the classic path. *)
  let handles = config.c_wire in
  let batch_bytes = if config.c_wire then Some 4096 else None in
  let tdesc_binary = config.c_wire in
  let cluster, sender, receiver, peers =
    if config.c_cluster then begin
      let cl =
        Cluster.create ~factor:2 ~seed:cluster_seed ~request_timeout_ms:800.
          ~fetch_retries:3 ~fetch_backoff_ms:150. ~probe_timeout_ms:300.
          ~handles ?batch_bytes ~tdesc_binary ~transport:tr hosts
      in
      ( Some cl,
        Cluster.peer cl "n0",
        Cluster.peer cl "n3",
        List.map (Cluster.peer cl) hosts )
    end
    else begin
      let mk a =
        Peer.create ~metrics ~request_timeout_ms:800. ~fetch_retries:3
          ~fetch_backoff_ms:150. ~handles ?batch_bytes ~tdesc_binary
          ~transport:tr a
      in
      let alice = mk "alice" in
      let bob = mk "bob" in
      (None, alice, bob, [ alice; bob ])
    end
  in
  let receiver_addr = Peer.address receiver in
  (* Publish the workload families on the sender (replicated to mirrors
     in cluster mode); the receiver only knows the interest type. *)
  List.iter
    (fun (index, flavor) ->
      let asm = Workload.family ~index ~flavor in
      match cluster with
      | Some cl -> Node.publish (Cluster.node cl "n0") asm
      | None -> Peer.publish_assembly sender asm)
    families;
  Peer.install_assembly receiver (Workload.interest_assembly ());
  Peer.register_interest receiver ~interest:Workload.interest_person
    (fun ~from:_ _ -> ());
  (* Pace the sends across the fault horizon. Values are constructed at
     send time, not schedule time: under [c_upgrade] the hottest family
     changes schema mid-window, and sends after the flip must carry v2
     instances built from the then-live class definition. *)
  let expected = ref [] in
  let trap_keys = ref [] in
  let negotiated = ref [] in
  let family_version = ref 1 in
  for i = 0 to config.c_objects - 1 do
    let index = i mod List.length families in
    let _, flavor = List.nth families index in
    let name = Printf.sprintf "p%d" i in
    let age = 20 + i in
    (match flavor with
    | Workload.Conformant -> expected := (name, (name, age)) :: !expected
    | _ -> trap_keys := name :: !trap_keys);
    Sim.schedule_at sim
      ~at:(first_send_ms +. (send_spacing_ms *. float_of_int i))
      (fun () ->
        let v =
          Workload.make_person (Peer.registry sender) ~index ~flavor ~name ~age
        in
        (match flavor with
        | Workload.Conformant ->
            let ver = if index = 0 then !family_version else 1 in
            negotiated := (name, ver) :: !negotiated
        | _ -> ());
        Peer.send_value sender ~dst:receiver_addr v)
  done;
  (* Live upgrade: halfway through the send window, CAS family 0 onto
     its version chain (seeding v1 first) and republish it at v2. Sends
     already in flight stay pinned to v1; later sends travel at v2. *)
  if config.c_upgrade then
    Sim.schedule_at sim
      ~at:
        (first_send_ms
        +. (send_spacing_ms *. float_of_int (config.c_objects / 2))
        -. 25.)
      (fun () ->
        let publish ?expect asm =
          match cluster with
          | Some cl -> Node.publish_cas ?expect (Cluster.node cl "n0") asm
          | None -> Peer.publish_assembly_cas ?expect sender asm
        in
        let v1 = Workload.family ~index:0 ~flavor:Workload.Conformant in
        match publish v1 with
        | Error _ -> ()
        | Ok ve1 -> (
            let v2 =
              Workload.family_v ~version:2 ~index:0
                ~flavor:Workload.Conformant
            in
            match publish ~expect:ve1.Pti_core.Repository.ve_digest v2 with
            | Error _ -> ()
            | Ok ve2 -> family_version := ve2.Pti_core.Repository.ve_version));
  (* Wire mode: lose the receiver's learned handle bindings shortly
     before the last send, so refs still in flight (and the final send)
     arrive against a cold table and must renegotiate. *)
  let tables_dropped = config.c_wire && config.c_objects >= 5 in
  if tables_dropped then
    Sim.schedule_at sim
      ~at:
        (first_send_ms
        +. (send_spacing_ms *. float_of_int (config.c_objects - 1))
        -. 30.)
      (fun () -> Peer.drop_handle_tables receiver);
  (* Cluster mode: gossip keeps ticking through the fault horizon, so
     crash windows are noticed (suspect/dead) and healed ones re-adopted. *)
  (match cluster with
  | None -> ()
  | Some cl ->
      List.iteri
        (fun ni node ->
          let rounds = int_of_float (horizon_ms /. 100.) + 4 in
          for r = 0 to rounds - 1 do
            Sim.schedule_at sim
              ~at:(40. +. (100. *. float_of_int r) +. (7. *. float_of_int ni))
              (fun () -> Node.tick node)
          done)
        (Cluster.nodes cl));
  (* Arm the faults and run the world. *)
  let hook_rng = Splitmix.create hook_seed in
  Transport.set_fault_hooks tr
    (Some (Fault_plan.hooks plan ~rng:hook_rng ~corrupt:Corruptor.corrupt_message));
  if config.c_frame_integrity then
    Transport.set_integrity tr (Some Corruptor.frame_intact);
  Transport.run tr;
  (* Heal: all windows are behind us once the run quiesces; give gossip
     a few quiet rounds to re-converge, then snapshot membership. *)
  let membership_violations =
    match cluster with
    | None -> []
    | Some cl ->
        Cluster.run_rounds cl 6;
        let rows =
          List.map
            (fun a ->
              let node = Cluster.node cl a in
              ( a,
                List.filter_map
                  (fun (m, st) ->
                    if List.mem m hosts then Some (m, Node.status_name st)
                    else None)
                  (Node.members node) ))
            hosts
        in
        Invariant.membership_converged rows
  in
  (* Collect the receiver's terminal events. *)
  let events = Peer.events receiver in
  let delivered_vals =
    List.filter_map
      (function Peer.Delivered { value; _ } -> Some value | _ -> None)
      events
  in
  let rejected =
    List.length
      (List.filter (function Peer.Rejected _ -> true | _ -> false) events)
  in
  let failed = List.length (List.filter is_terminal_failure events) in
  let got =
    List.map
      (fun v ->
        match name_age v with
        | Some (n, a) -> (n, (n, a))
        | None -> ("<unextractable:" ^ Value.type_name v ^ ">", ("?", -1)))
      delivered_vals
  in
  let delivered_keys = List.map fst got in
  (* Which schema revision did each delivery actually decode against?
     The v2-only [email] field (with its initializer) is the witness:
     present iff the value was built from the v2 description. *)
  let decoded =
    List.filter_map
      (fun v ->
        match obj_of v with
        | None -> None
        | Some o ->
            let key =
              match Value.get_field o "name" with
              | Some (Value.Vstring n) -> n
              | _ -> "<unextractable:" ^ Value.type_name v ^ ">"
            in
            let dv =
              match Value.get_field o "email" with Some _ -> 2 | None -> 1
            in
            Some (key, dv))
      delivered_vals
  in
  (* Verdict stability: re-checking after a cache clear must agree. *)
  let checker = Peer.checker receiver in
  let verdict_str v =
    if Checker.verdict_ok v then "conformant" else "not-conformant"
  in
  let triples =
    List.filter_map
      (fun (index, flavor) ->
        let tn = Workload.person_name ~index ~flavor in
        match
          ( Peer.local_description receiver tn,
            Peer.local_description receiver Workload.interest_person )
        with
        | Some actual, Some interest ->
            let before = verdict_str (Checker.check checker ~actual ~interest) in
            Checker.clear_cache checker;
            let after = verdict_str (Checker.check checker ~actual ~interest) in
            Some (tn, before, after)
        | _ -> None)
      families
  in
  (* Metrics-vs-trace: the stats registry and the trace recorder watched
     the same wire. Control is excluded: acks are charged, not traced. *)
  let stats = Net.stats net in
  let count_pairs =
    List.filter_map
      (fun c ->
        if c = Stats.Control then None
        else
          Some
            ( Stats.category_name c,
              Stats.messages stats c,
              Trace.count trace ~category:c () ))
      Stats.all_categories
  in
  let net_lost = Net.lost_for net Stats.Object_msg in
  let violations =
    Invariant.conservation ~sent:config.c_objects
      ~delivered:(List.length delivered_vals) ~rejected ~failed ~net_lost
    @ Invariant.exactly_once ~delivered_keys
    @ Invariant.no_mangle ~expected:!expected ~got
    @ Invariant.trap_never_delivered ~trap_keys:!trap_keys ~delivered_keys
    @ Invariant.upgrade_safety ~negotiated:!negotiated ~decoded
    @ Invariant.verdict_stability triples
    @ membership_violations
    @ Invariant.handle_degradation ~tables_dropped
        ~renegotiations:(Peer.renegotiations receiver)
    @ Invariant.metrics_match_trace count_pairs
  in
  {
    r_seed = seed;
    r_plan = plan;
    r_sent = config.c_objects;
    r_delivered = List.length delivered_vals;
    r_rejected = rejected;
    r_failed = failed;
    r_corrupt_rejects =
      List.fold_left (fun acc p -> acc + Peer.corrupt_rejects p) 0 peers;
    r_net_lost = net_lost;
    r_retransmissions = Transport.retransmissions tr;
    r_injected_drops = Transport.injected_drops tr;
    r_corrupted_frames = Transport.corrupted_frames tr;
    r_integrity_drops = Transport.integrity_drops tr;
    r_renegotiations = Peer.renegotiations receiver;
    r_violations = violations;
  }

let shrink config ~seed plan0 =
  Fault_plan.shrink
    ~fails:(fun plan -> (run_one ~plan config ~seed).r_violations <> [])
    plan0

type summary = {
  s_runs : int;
  s_sent : int;
  s_delivered : int;
  s_rejected : int;
  s_failed : int;
  s_net_lost : int;
  s_corrupt_rejects : int;
  s_retransmissions : int;
  s_failures : run_result list;
  s_shrunk : (run_result * run_result) option;
}

let run_many config ~runs ~seed =
  let root = Splitmix.create seed in
  let results = ref [] in
  for _ = 1 to runs do
    let s = Splitmix.next64 root in
    results := run_one config ~seed:s :: !results
  done;
  let results = List.rev !results in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let failures = List.filter (fun r -> r.r_violations <> []) results in
  let shrunk =
    match failures with
    | [] -> None
    | f :: _ ->
        let minimal = shrink config ~seed:f.r_seed f.r_plan in
        Some (f, run_one ~plan:minimal config ~seed:f.r_seed)
  in
  {
    s_runs = runs;
    s_sent = sum (fun r -> r.r_sent);
    s_delivered = sum (fun r -> r.r_delivered);
    s_rejected = sum (fun r -> r.r_rejected);
    s_failed = sum (fun r -> r.r_failed);
    s_net_lost = sum (fun r -> r.r_net_lost);
    s_corrupt_rejects = sum (fun r -> r.r_corrupt_rejects);
    s_retransmissions = sum (fun r -> r.r_retransmissions);
    s_failures = failures;
    s_shrunk = shrunk;
  }

let pp_run ppf r =
  Format.fprintf ppf
    "@[<v>seed %Ld: sent %d, delivered %d, rejected %d, failed %d, net-lost \
     %d@,\
     retransmissions %d, injected drops %d, corrupted frames %d, integrity \
     drops %d, corrupt rejects %d, renegotiations %d@,\
     plan:@,\
     %a@]"
    r.r_seed r.r_sent r.r_delivered r.r_rejected r.r_failed r.r_net_lost
    r.r_retransmissions r.r_injected_drops r.r_corrupted_frames
    r.r_integrity_drops r.r_corrupt_rejects r.r_renegotiations Fault_plan.pp
    r.r_plan;
  if r.r_violations <> [] then begin
    Format.fprintf ppf "@\nviolations:";
    List.iter
      (fun v -> Format.fprintf ppf "@\n  %a" Invariant.pp_violation v)
      r.r_violations
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d runs: sent %d, delivered %d (%.1f%%), rejected %d, failed %d, \
     net-lost %d@,\
     corrupt rejects %d, retransmissions %d, invariant failures %d@]"
    s.s_runs s.s_sent s.s_delivered
    (if s.s_sent = 0 then 100.
     else 100. *. float_of_int s.s_delivered /. float_of_int s.s_sent)
    s.s_rejected s.s_failed s.s_net_lost s.s_corrupt_rejects
    s.s_retransmissions
    (List.length s.s_failures);
  match s.s_shrunk with
  | None -> ()
  | Some (orig, min_rerun) ->
      Format.fprintf ppf
        "@\n@\nfirst failure (reproduce with --seed %Ld):@\n%a" orig.r_seed
        pp_run orig;
      Format.fprintf ppf "@\n@\nminimal reproducing plan (same seed):@\n%a"
        pp_run min_rerun
