(** Byte-level corruption of protocol messages.

    Only payload-bearing fields are mangled — object envelopes, batch
    frames, handle-bind frames, type description replies, assembly
    replies and gossip bodies. Requests carry no integrity digest;
    flipping a [type_name] in flight would manifest as an undetectable
    failed lookup rather than a detectable corruption, which is not the
    property under test. *)

module Splitmix = Pti_util.Splitmix

val flip_byte : Splitmix.t -> string -> string
(** Flip one random byte (XOR with a random non-zero value). The result
    always differs from the input; empty strings come back unchanged. *)

val corrupt_message : Splitmix.t -> Pti_core.Message.t -> Pti_core.Message.t option
(** [Some] with one payload byte flipped for payload-bearing messages;
    [None] for requests, acks and other non-payload traffic. *)

val frame_intact : Pti_core.Message.t -> bool
(** Integrity predicate for {!Pti_net.Net.set_integrity}: an [Obj_msg]
    whose envelope fails its wire digest, an [Obj_batch] whose frame
    checksum mismatches, or a [Handle_bind] with a damaged bind frame is
    rejected at the frame level (so ARQ retransmits it); every other
    message is waved through to the peer, whose digest checks classify
    and count it. A handle-encoded envelope with merely {e unresolvable}
    handles is wire-intact and passes — renegotiation, not
    retransmission, is the cure for that. *)
