module Splitmix = Pti_util.Splitmix
module Message = Pti_core.Message

let flip_byte rng s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let i = Splitmix.int rng n in
    let b = Bytes.of_string s in
    let x = 1 + Splitmix.int rng 255 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor x));
    Bytes.to_string b
  end

let corrupt_message rng (m : Message.t) : Message.t option =
  match m with
  | Message.Obj_msg o ->
      Some (Message.Obj_msg { o with envelope = flip_byte rng o.envelope })
  | Message.Obj_batch { frame } ->
      Some (Message.Obj_batch { frame = flip_byte rng frame })
  | Message.Handle_bind { frame } ->
      Some (Message.Handle_bind { frame = flip_byte rng frame })
  | Message.Tdesc_reply ({ desc = Some d; _ } as r) ->
      Some (Message.Tdesc_reply { r with desc = Some (flip_byte rng d) })
  | Message.Asm_reply ({ assembly = Some a; _ } as r) ->
      Some (Message.Asm_reply { r with assembly = Some (flip_byte rng a) })
  | Message.Gossip g -> Some (Message.Gossip { g with body = flip_byte rng g.body })
  | _ -> None

let frame_intact (m : Message.t) =
  match m with
  | Message.Obj_msg { envelope; _ } ->
      (* [wire_ok], not a full parse: a handle-encoded envelope whose
         refs the receiver cannot resolve yet is wire-intact — dropping
         it here would defeat renegotiation. *)
      Pti_serial.Envelope.wire_ok envelope
  | Message.Obj_batch { frame } -> Pti_serial.Batch_frame.intact frame
  | Message.Handle_bind { frame } -> Pti_serial.Handle_table.bindings_intact frame
  | _ -> true
