module Splitmix = Pti_util.Splitmix
module Message = Pti_core.Message

let flip_byte rng s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let i = Splitmix.int rng n in
    let b = Bytes.of_string s in
    let x = 1 + Splitmix.int rng 255 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor x));
    Bytes.to_string b
  end

let corrupt_message rng (m : Message.t) : Message.t option =
  match m with
  | Message.Obj_msg o ->
      Some (Message.Obj_msg { o with envelope = flip_byte rng o.envelope })
  | Message.Tdesc_reply ({ desc = Some d; _ } as r) ->
      Some (Message.Tdesc_reply { r with desc = Some (flip_byte rng d) })
  | Message.Asm_reply ({ assembly = Some a; _ } as r) ->
      Some (Message.Asm_reply { r with assembly = Some (flip_byte rng a) })
  | Message.Gossip g -> Some (Message.Gossip { g with body = flip_byte rng g.body })
  | _ -> None

let frame_intact (m : Message.t) =
  match m with
  | Message.Obj_msg { envelope; _ } -> (
      match Pti_serial.Envelope.of_string envelope with
      | Ok _ -> true
      | Error _ -> false)
  | _ -> true
