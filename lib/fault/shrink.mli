(** Generic list minimisation by delta debugging.

    Extracted from the fault-plan shrinker so the model checker can
    minimise schedules with the same algorithm. *)

val ddmin : fails:('a list -> bool) -> 'a list -> 'a list
(** [ddmin ~fails xs] assumes [fails xs = true] and greedily removes
    elements — halves first, then single removals — keeping any smaller
    list for which [fails] still holds, until no candidate fails. The
    result is 1-minimal: dropping any single remaining element makes the
    failure disappear. [fails] is re-run on every candidate, so it must
    be deterministic (seeded runs, replayed schedules). *)

val candidates : 'a list -> 'a list list
(** One shrinking step's candidates (both halves, then each
    single-element removal); empty for lists of length [<= 1]. Exposed
    for shrinkers that interleave their own candidate kinds. *)
